// Update-path throughput: the batched PPO update (one autograd graph per
// minibatch, PpoConfig::batchedUpdate) vs the sequential per-transition
// reference, at minibatch sizes {1, 8, 32, 64}.
//
// Both modes run the full PpoTrainer::update — GAE, advantage
// normalization, shuffled minibatches, backward, gradient clipping, Adam —
// over the same pre-collected transition buffer with identically seeded
// policies, so the measured difference is purely the graph-construction
// strategy. The parity suite (ctest -L parity) guarantees the two modes
// produce the same gradients to 1e-9.
//
//   CRL_BENCH_TRANSITIONS — buffer size per update (default 256)
//   CRL_BENCH_REPS        — timed update() calls per point (default 3)
//   --json                — machine-readable output (bench/harness.h)
//
// What to expect (single core, arena + fused kernels + SIMD cores — see
// README "Update-path arena and fused kernels"): the FCNN baseline's
// sequential update is dominated by per-transition graph-building overhead,
// so batching it wins big (~1.9-2x at minibatch 32). The GNN towers pay the
// shared kernel floor both modes run — the SIMD-dispatched matmul/attention
// cores plus the scalar softmax exp — leaving GCN-FC at ~1.5x and GAT-FC at
// ~1.5-1.8x at minibatch 32, rising with B as per-op overhead amortizes.
// Against the PR 2 binary (same bench, old substrate), the batched update
// itself is ~1.4x (GCN) / ~1.5x (GAT) faster at minibatch 32, with
// allocations per minibatch down ~45x (bench_arena has the exact A/B).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "circuit/opamp.h"
#include "circuit/rfpa.h"
#include "harness.h"

using namespace crl;

namespace {

constexpr int kMaxSteps = 30;

/// Human-table destination; main() points it at stderr in --json mode.
std::FILE* tout = stdout;

struct Workload {
  const char* name;
  core::PolicyKind kind;
  bool opamp;  ///< two-stage op-amp at Fine vs GaN RF PA at Coarse
};

std::unique_ptr<envs::SizingEnv> makeEnv(const Workload& w,
                                         std::shared_ptr<void>* keepAlive) {
  if (w.opamp) {
    auto amp = std::make_shared<circuit::TwoStageOpAmp>();
    *keepAlive = amp;
    return std::make_unique<envs::SizingEnv>(
        *amp, envs::SizingEnvConfig{.maxSteps = kMaxSteps});
  }
  auto pa = std::make_shared<circuit::GanRfPa>();
  *keepAlive = pa;
  return std::make_unique<envs::SizingEnv>(
      *pa, envs::SizingEnvConfig{.maxSteps = kMaxSteps,
                                 .fidelity = circuit::Fidelity::Coarse});
}

/// Cost per update() call for one (minibatch, mode) point — thin wrapper
/// over the shared bench::measureUpdateCost plumbing.
bench::UpdateCost measureUpdate(rl::Env& env, const Workload& w,
                                std::vector<rl::Transition>& buffer,
                                int minibatch, bool batched, bool arena,
                                int reps) {
  rl::PpoConfig cfg;
  cfg.minibatchSize = minibatch;
  cfg.updateEpochs = 2;
  cfg.batchedUpdate = batched;
  cfg.arenaUpdate = arena;
  return bench::measureUpdateCost(env, w.kind, buffer, cfg, reps);
}

void runWorkload(const Workload& w, int transitions, int reps,
                 bench::BenchJson& json) {
  std::shared_ptr<void> keepAlive;
  auto env = makeEnv(w, &keepAlive);
  util::Rng initRng(3);
  auto policy = core::makePolicy(w.kind, *env, initRng);
  std::vector<rl::Transition> buffer =
      bench::collectTransitions(*env, *policy, transitions, kMaxSteps);

  std::fprintf(tout, "\n== %s (policy: %s, %d transitions, %d epochs per update) ==\n",
              w.name, policy->name(), transitions, 2);
  std::fprintf(tout, "%-10s %16s %16s %10s %12s %12s\n", "minibatch",
              "sequential s/upd", "batched s/upd", "speedup", "allocs/mb",
              "KiB/mb");

  for (int mb : {1, 8, 32, 64}) {
    const bench::UpdateCost seq = measureUpdate(*env, w, buffer, mb, false, true, reps);
    const bench::UpdateCost bat = measureUpdate(*env, w, buffer, mb, true, true, reps);
    std::fprintf(tout, "%-10d %16.4f %16.4f %9.2fx %12.1f %12.1f\n", mb,
                seq.seconds, bat.seconds, seq.seconds / bat.seconds,
                bat.allocsPerMinibatch, bat.bytesPerMinibatch / 1024.0);
    const std::string mbs = std::to_string(mb);
    json.record({{"bench", "batched_update"},
                 {"workload", w.name},
                 {"config", "mb" + mbs + "-sequential"},
                 {"unit", "seconds_per_update"}},
                seq.seconds);
    json.record({{"bench", "batched_update"},
                 {"workload", w.name},
                 {"config", "mb" + mbs + "-batched"},
                 {"unit", "seconds_per_update"}},
                bat.seconds);
    json.record({{"bench", "batched_update"},
                 {"workload", w.name},
                 {"config", "mb" + mbs + "-speedup"},
                 {"unit", "ratio"}},
                seq.seconds / bat.seconds);
    json.record({{"bench", "batched_update"},
                 {"workload", w.name},
                 {"config", "mb" + mbs + "-batched"},
                 {"unit", "allocs_per_minibatch"}},
                bat.allocsPerMinibatch);
    json.record({{"bench", "batched_update"},
                 {"workload", w.name},
                 {"config", "mb" + mbs + "-batched"},
                 {"unit", "bytes_per_minibatch"}},
                bat.bytesPerMinibatch);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int transitions = 256;
  if (const char* v = std::getenv("CRL_BENCH_TRANSITIONS")) transitions = std::atoi(v);
  transitions = std::max(transitions, 64);
  int reps = 3;
  if (const char* v = std::getenv("CRL_BENCH_REPS")) reps = std::atoi(v);
  reps = std::max(reps, 1);

  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  tout = json.tableStream();
  std::fprintf(tout, "batched PPO update benchmark\n");
  // Three update-path profiles: the FCNN baseline is per-op-overhead bound
  // (batching pays the most), the GCN/GAT towers add the shared libm/matmul
  // kernel floor both modes pay equally (see README "Batched PPO update").
  runWorkload({"opamp-fcnn", core::PolicyKind::BaselineA, true}, transitions, reps,
              json);
  runWorkload({"opamp-fine", core::PolicyKind::GcnFc, true}, transitions, reps,
              json);
  runWorkload({"rfpa-coarse", core::PolicyKind::GatFc, false}, transitions, reps,
              json);
  std::fprintf(tout, "\npeak RSS: %.1f MiB\n", bench::peakRssMib());
  json.record({{"bench", "batched_update"},
               {"workload", "all"},
               {"config", "process"},
               {"unit", "peak_rss_mib"}},
              bench::peakRssMib());
  json.flush();
  return 0;
}
