// Update-path throughput: the batched PPO update (one autograd graph per
// minibatch, PpoConfig::batchedUpdate) vs the sequential per-transition
// reference, at minibatch sizes {1, 8, 32, 64}.
//
// Both modes run the full PpoTrainer::update — GAE, advantage
// normalization, shuffled minibatches, backward, gradient clipping, Adam —
// over the same pre-collected transition buffer with identically seeded
// policies, so the measured difference is purely the graph-construction
// strategy. The parity suite (ctest -L parity) guarantees the two modes
// produce the same gradients to 1e-9.
//
//   CRL_BENCH_TRANSITIONS — buffer size per update (default 256)
//   CRL_BENCH_REPS        — timed update() calls per point (default 3)
//   --json                — machine-readable output (bench/harness.h)
//
// What to expect (single core): the FCNN baseline's sequential update is
// dominated by per-transition graph-building overhead, so batching it wins
// big (~2.1x at minibatch 32). The GNN towers pay a large cost floor that
// batching cannot remove because both modes run the identical kernels on
// the identical element count: std::tanh over the [B*n x hidden] node
// embeddings (~0.5 ms of a ~3 ms minibatch iteration at B=32 on the
// op-amp) plus the vectorized weight matmuls. That floor caps GCN-FC at
// ~1.5x and GAT-FC at ~1.7x at minibatch 32, rising with B as the
// remaining per-op overhead amortizes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "circuit/opamp.h"
#include "circuit/rfpa.h"
#include "harness.h"

using namespace crl;

namespace {

constexpr int kMaxSteps = 30;

/// Human-table destination; main() points it at stderr in --json mode.
std::FILE* tout = stdout;

struct Workload {
  const char* name;
  core::PolicyKind kind;
  bool opamp;  ///< two-stage op-amp at Fine vs GaN RF PA at Coarse
};

std::unique_ptr<envs::SizingEnv> makeEnv(const Workload& w,
                                         std::shared_ptr<void>* keepAlive) {
  if (w.opamp) {
    auto amp = std::make_shared<circuit::TwoStageOpAmp>();
    *keepAlive = amp;
    return std::make_unique<envs::SizingEnv>(
        *amp, envs::SizingEnvConfig{.maxSteps = kMaxSteps});
  }
  auto pa = std::make_shared<circuit::GanRfPa>();
  *keepAlive = pa;
  return std::make_unique<envs::SizingEnv>(
      *pa, envs::SizingEnvConfig{.maxSteps = kMaxSteps,
                                 .fidelity = circuit::Fidelity::Coarse});
}

/// Roll the policy in the env (inference mode) to fill a transition buffer.
std::vector<rl::Transition> collectBuffer(rl::Env& env,
                                          const core::MultimodalPolicy& policy,
                                          int transitions) {
  std::vector<rl::Transition> buffer;
  buffer.reserve(static_cast<std::size_t>(transitions));
  util::Rng envRng(7), actRng(13);
  rl::Observation obs = env.reset(envRng);
  int age = 0;
  while (static_cast<int>(buffer.size()) < transitions) {
    rl::Transition tr;
    rl::SampledAction act;
    {
      nn::NoGradGuard inference;
      rl::PolicyOutput out = policy.forward(obs);
      act = rl::sampleAction(out.logits.value(), actRng);
      tr.obs = obs;
      tr.columns = act.columns;
      tr.logProb = act.logProb;
      tr.value = out.value.item();
    }
    rl::StepResult res = env.step(act.actions);
    ++age;
    tr.reward = res.reward;
    const bool terminal = res.done || age >= kMaxSteps;
    tr.terminal = terminal;
    buffer.push_back(std::move(tr));
    if (terminal) {
      obs = env.reset(envRng);
      age = 0;
    } else {
      obs = std::move(res.obs);
    }
  }
  return buffer;
}

/// Seconds per update() call over `reps` repetitions (after one warmup
/// update that builds and caches the batch plans).
double secondsPerUpdate(rl::Env& env, const Workload& w,
                        std::vector<rl::Transition>& buffer, int minibatch,
                        bool batched, int reps) {
  util::Rng initRng(3);
  auto policy = core::makePolicy(w.kind, env, initRng);
  rl::PpoConfig cfg;
  cfg.minibatchSize = minibatch;
  cfg.updateEpochs = 2;
  cfg.batchedUpdate = batched;
  rl::PpoTrainer trainer(env, *policy, cfg, util::Rng(11));
  trainer.update(buffer);  // warmup: plan caches, allocator steady state
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) trainer.update(buffer);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return dt / reps;
}

void runWorkload(const Workload& w, int transitions, int reps,
                 bench::BenchJson& json) {
  std::shared_ptr<void> keepAlive;
  auto env = makeEnv(w, &keepAlive);
  util::Rng initRng(3);
  auto policy = core::makePolicy(w.kind, *env, initRng);
  std::vector<rl::Transition> buffer = collectBuffer(*env, *policy, transitions);

  std::fprintf(tout, "\n== %s (policy: %s, %d transitions, %d epochs per update) ==\n",
              w.name, policy->name(), transitions, 2);
  std::fprintf(tout, "%-10s %16s %16s %10s\n", "minibatch", "sequential s/upd",
              "batched s/upd", "speedup");

  for (int mb : {1, 8, 32, 64}) {
    const double seq = secondsPerUpdate(*env, w, buffer, mb, false, reps);
    const double bat = secondsPerUpdate(*env, w, buffer, mb, true, reps);
    std::fprintf(tout, "%-10d %16.4f %16.4f %9.2fx\n", mb, seq, bat, seq / bat);
    const std::string mbs = std::to_string(mb);
    json.record({{"bench", "batched_update"},
                 {"workload", w.name},
                 {"config", "mb" + mbs + "-sequential"},
                 {"unit", "seconds_per_update"}},
                seq);
    json.record({{"bench", "batched_update"},
                 {"workload", w.name},
                 {"config", "mb" + mbs + "-batched"},
                 {"unit", "seconds_per_update"}},
                bat);
    json.record({{"bench", "batched_update"},
                 {"workload", w.name},
                 {"config", "mb" + mbs + "-speedup"},
                 {"unit", "ratio"}},
                seq / bat);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int transitions = 256;
  if (const char* v = std::getenv("CRL_BENCH_TRANSITIONS")) transitions = std::atoi(v);
  transitions = std::max(transitions, 64);
  int reps = 3;
  if (const char* v = std::getenv("CRL_BENCH_REPS")) reps = std::atoi(v);
  reps = std::max(reps, 1);

  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  tout = json.tableStream();
  std::fprintf(tout, "batched PPO update benchmark\n");
  // Three update-path profiles: the FCNN baseline is per-op-overhead bound
  // (batching pays the most), the GCN/GAT towers add the shared libm/matmul
  // kernel floor both modes pay equally (see README "Batched PPO update").
  runWorkload({"opamp-fcnn", core::PolicyKind::BaselineA, true}, transitions, reps,
              json);
  runWorkload({"opamp-fine", core::PolicyKind::GcnFc, true}, transitions, reps,
              json);
  runWorkload({"rfpa-coarse", core::PolicyKind::GatFc, false}, transitions, reps,
              json);
  json.flush();
  return 0;
}
