// Calibration probe: samples the design spaces and reports the achievable
// spec distributions (and coarse-vs-fine agreement for the RF PA). Used to
// verify that the Table 1 sampling spaces are reachable in our simulator.
#include <cstdio>
#include <cstdlib>

#include "circuit/opamp.h"
#include "circuit/rfpa.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace crl;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 200;
  util::Rng rng(1);

  {
    circuit::TwoStageOpAmp amp;
    util::RunningStats gain, ugbw, pm, power;
    int valid = 0, fail = 0;
    for (int i = 0; i < n; ++i) {
      auto p = amp.designSpace().sample(rng);
      auto m = amp.measureAt(p, circuit::Fidelity::Fine);
      if (!m.valid) {
        ++fail;
        continue;
      }
      ++valid;
      gain.add(m.specs[0]);
      ugbw.add(m.specs[1]);
      pm.add(m.specs[2]);
      power.add(m.specs[3]);
    }
    std::printf("== op-amp: valid %d/%d ==\n", valid, n);
    std::printf("gain  mean %.1f  min %.2f  max %.1f\n", gain.mean(), gain.min(), gain.max());
    std::printf("ugbw  mean %.3g  min %.3g  max %.3g\n", ugbw.mean(), ugbw.min(), ugbw.max());
    std::printf("pm    mean %.1f  min %.1f  max %.1f\n", pm.mean(), pm.min(), pm.max());
    std::printf("power mean %.3g  min %.3g  max %.3g\n", power.mean(), power.min(), power.max());
    std::printf("pm>=55 fraction: n/a here; fails=%d\n", fail);
    // Feasibility probes: smallest sizing (low power corner).
    std::vector<double> lo(15);
    for (int i = 0; i < 7; ++i) { lo[2*i] = 1.0; lo[2*i+1] = 2.0; }
    lo[14] = 10.0;
    auto mlo = amp.measureAt(lo, circuit::Fidelity::Fine);
    std::printf("min-size: valid=%d gain=%.1f ugbw=%.3g pm=%.1f pwr=%.3g\n",
                mlo.valid, mlo.specs[0], mlo.specs[1], mlo.specs[2], mlo.specs[3]);
  }

  {
    circuit::GanRfPa pa;
    util::RunningStats eff, pout, ratioE, ratioP;
    int valid = 0, coarseValid = 0;
    for (int i = 0; i < n / 2; ++i) {
      auto p = pa.designSpace().sample(rng);
      auto fine = pa.measureAt(p, circuit::Fidelity::Fine);
      auto coarse = pa.measureAt(p, circuit::Fidelity::Coarse);
      if (fine.valid) {
        ++valid;
        eff.add(fine.specs[0]);
        pout.add(fine.specs[1]);
        if (coarse.valid) {
          ++coarseValid;
          ratioE.add(coarse.specs[0] / fine.specs[0]);
          ratioP.add(coarse.specs[1] / fine.specs[1]);
        }
      }
    }
    std::printf("== rf-pa: fine valid %d/%d, coarse valid %d ==\n", valid, n / 2, coarseValid);
    std::printf("eff   mean %.3f  min %.3f  max %.3f\n", eff.mean(), eff.min(), eff.max());
    std::printf("pout  mean %.3f  min %.3f  max %.3f\n", pout.mean(), pout.min(), pout.max());
    std::printf("coarse/fine eff  mean %.3f sd %.3f | pout mean %.3f sd %.3f\n",
                ratioE.mean(), ratioE.stddev(), ratioP.mean(), ratioP.stddev());
  }
  return 0;
}
