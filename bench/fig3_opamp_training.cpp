// Figure 3, top row: P2S policy-training curves on the two-stage Op-Amp
// (mean episode reward, mean episode length, deployment accuracy) for
// GAT-FC, GCN-FC, Baseline A (AutoCkt-style FCNN) and Baseline B
// (GCN-RL-style, no spec pathway). Also saves the trained GAT-FC/GCN-FC
// policies for the downstream Fig. 5/6 and Table 2 harnesses.
//
// Seeds are independent runs: CRL_SEED_WORKERS > 1 trains them concurrently
// with per-seed results (curves, CSVs, accuracies) identical to the serial
// loop. When seeds run serially, CRL_SPICE_WORKERS > 1 instead parallelizes
// inside each SPICE evaluation (bit-identical results either way).
// `--json` emits the final per-seed metrics as machine-readable rows.
#include "harness.h"

#include "circuit/opamp.h"

using namespace crl;

int main(int argc, char** argv) {
  auto scale = bench::Scale::fromEnv();
  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  std::FILE* tout = json.tableStream();
  const int episodes = scale.episodes(1800);
  const int evalEvery = std::max(100, episodes / 5);
  // Seed fan-out only exists with >1 seed; otherwise the seed-worker knob is
  // moot and the in-evaluation session keeps its workers.
  const std::size_t seedWorkers =
      scale.seeds > 1 ? bench::seedWorkersFromEnv() : 1;
  const std::size_t spiceWorkers =
      seedWorkers > 1 ? 1 : spice::SimSession::workersFromEnv();
  std::fprintf(tout, "== Fig. 3 (two-stage Op-Amp): %d episodes x %d seed(s) ==\n",
               episodes, scale.seeds);
  std::fprintf(tout, "(paper scale: 3.5e4 episodes, 6 seeds; max episode length 50;\n"
                     " seed workers: %zu, spice workers: %zu)\n\n",
               seedWorkers, spiceWorkers);

  util::TextTable table({"method", "seed", "final mean reward", "final mean length",
                         "deploy accuracy"});
  for (auto kind : bench::fig3Methods()) {
    const std::string method = core::policyKindName(kind);
    std::vector<bench::TrainOutcome> outs(static_cast<std::size_t>(scale.seeds));
    bench::forEachSeed(scale.seeds, seedWorkers, [&](int seed) {
      circuit::TwoStageOpAmp amp;
      spice::SimSession session(spiceWorkers);
      amp.setSession(&session);
      envs::SizingEnv env(amp, {.maxSteps = 50});
      util::Rng initRng(100 + static_cast<std::uint64_t>(seed));
      auto policy = core::makePolicy(kind, env, initRng);
      // Batched PPO update (default since the arena/fused-kernel PR): one
      // autograd graph per minibatch instead of one per transition. Curves
      // differ from the sequential path only by float summation order; the
      // batched golden tests (test_golden_curves) pin this path, and the
      // sequential goldens keep pinning the old one.
      rl::PpoConfig ppo;
      ppo.batchedUpdate = true;
      auto out = bench::trainWithCurves(env, env, *policy, episodes, evalEvery,
                                        /*evalEpisodes=*/25,
                                        /*seed=*/static_cast<std::uint64_t>(seed),
                                        ppo);
      bench::writeCurveCsv(
          scale.path("fig3_opamp_" + method + "_s" + std::to_string(seed) + ".csv"),
          method, seed, out.curve);
      if (seed == 0 && (kind == core::PolicyKind::GcnFc || kind == core::PolicyKind::GatFc)) {
        nn::saveParameters(scale.path(std::string("policy_opamp_") + method + ".bin"),
                           policy->parameters());
      }
      outs[static_cast<std::size_t>(seed)] = std::move(out);
    });
    for (int seed = 0; seed < scale.seeds; ++seed) {
      const auto& out = outs[static_cast<std::size_t>(seed)];
      table.addRow({method, std::to_string(seed),
                    util::TextTable::num(out.curve.back().meanReward, 4),
                    util::TextTable::num(out.curve.back().meanLength, 4),
                    util::TextTable::num(out.finalAccuracy.accuracy, 4)});
      std::fprintf(tout, "%-12s seed %d: accuracy %.3f, mean steps (succ) %.1f\n",
                   method.c_str(), seed, out.finalAccuracy.accuracy,
                   out.finalAccuracy.meanStepsSuccess);
      std::fflush(tout);
      json.record({{"bench", "fig3_opamp"},
                   {"method", method},
                   {"seed", std::to_string(seed)},
                   {"unit", "deploy_accuracy"}},
                  out.finalAccuracy.accuracy);
      json.record({{"bench", "fig3_opamp"},
                   {"method", method},
                   {"seed", std::to_string(seed)},
                   {"unit", "final_mean_reward"}},
                  out.curve.back().meanReward);
    }
  }
  std::fprintf(tout, "\n");
  table.print(json.enabled() ? std::cerr : std::cout);
  std::fprintf(tout, "\nSeries CSVs written to %s/fig3_opamp_*.csv\n",
               scale.outDir.c_str());
  json.flush();
  return 0;
}
