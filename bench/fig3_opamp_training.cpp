// Figure 3, top row: P2S policy-training curves on the two-stage Op-Amp
// (mean episode reward, mean episode length, deployment accuracy) for
// GAT-FC, GCN-FC, Baseline A (AutoCkt-style FCNN) and Baseline B
// (GCN-RL-style, no spec pathway). Also saves the trained GAT-FC/GCN-FC
// policies for the downstream Fig. 5/6 and Table 2 harnesses.
//
// All method x seed runs are jobs of one rl::CampaignRunner sharing a single
// work-stealing pool (CRL_SEED_WORKERS sizes it; default 1 = serial, with
// per-seed results identical to the serial loop for any worker count). Jobs
// checkpoint periodically under $CRL_OUT/campaign_opamp/<job>/ and a rerun
// resumes: completed jobs are skipped via their `done` markers, interrupted
// ones continue bitwise from their last checkpoint — delete the campaign
// directory to retrain from scratch. When seeds run serially,
// CRL_SPICE_WORKERS > 1 instead parallelizes inside each SPICE evaluation
// (bit-identical results either way). CRL_CHECKPOINT_EVERY overrides the
// checkpoint cadence (default: the eval cadence). `--json` emits the final
// per-seed metrics as machine-readable rows.
#include "harness.h"

#include "core/campaign_jobs.h"
#include "rl/campaign.h"

using namespace crl;

int main(int argc, char** argv) {
  auto scale = bench::Scale::fromEnv();
  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  std::FILE* tout = json.tableStream();
  const int episodes = scale.episodes(1800);
  const int evalEvery = std::max(100, episodes / 5);
  // Seed fan-out only exists with >1 seed; otherwise the seed-worker knob is
  // moot and the in-evaluation session keeps its workers.
  const std::size_t seedWorkers =
      scale.seeds > 1 ? bench::seedWorkersFromEnv() : 1;
  const std::size_t spiceWorkers =
      seedWorkers > 1 ? 1 : spice::SimSession::workersFromEnv();
  std::fprintf(tout, "== Fig. 3 (two-stage Op-Amp): %d episodes x %d seed(s) ==\n",
               episodes, scale.seeds);
  std::fprintf(tout, "(paper scale: 3.5e4 episodes, 6 seeds; max episode length 50;\n"
                     " seed workers: %zu, spice workers: %zu)\n\n",
               seedWorkers, spiceWorkers);

  rl::CampaignConfig ccfg;
  ccfg.outDir = scale.path("campaign_opamp");
  ccfg.workers = seedWorkers;
  ccfg.checkpointEvery = bench::intFromEnv("CRL_CHECKPOINT_EVERY", evalEvery);
  rl::CampaignRunner runner(ccfg);

  for (auto kind : bench::fig3Methods()) {
    const std::string method = core::policyKindName(kind);
    for (int seed = 0; seed < scale.seeds; ++seed) {
      rl::CampaignJob job;
      job.name = method + "_s" + std::to_string(seed);
      job.episodes = episodes;
      job.trainSeed = static_cast<std::uint64_t>(seed);
      job.evalSeed = job.trainSeed + 9001;
      job.finalEvalSeed = job.trainSeed + 5555;
      job.evalEvery = evalEvery;
      job.evalEpisodes = 25;
      // Batched PPO update (default since the arena/fused-kernel PR): one
      // autograd graph per minibatch instead of one per transition.
      job.ppo.batchedUpdate = true;
      job.make = core::makeSizingContext(
          {core::CampaignCircuit::OpAmp, kind, seed, 1.0, spiceWorkers});
      job.curveCsv =
          scale.path("fig3_opamp_" + method + "_s" + std::to_string(seed) + ".csv");
      job.csvMethod = method;
      job.csvSeedTag = seed;
      if (seed == 0 &&
          (kind == core::PolicyKind::GcnFc || kind == core::PolicyKind::GatFc))
        job.policyBin = scale.path(std::string("policy_opamp_") + method + ".bin");
      runner.addJob(std::move(job));
    }
  }

  const auto results = runner.run();

  util::TextTable table({"method", "seed", "final mean reward", "final mean length",
                         "deploy accuracy"});
  std::size_t idx = 0;
  bool anyFailed = false;
  for (auto kind : bench::fig3Methods()) {
    const std::string method = core::policyKindName(kind);
    for (int seed = 0; seed < scale.seeds; ++seed, ++idx) {
      const auto& r = results[idx];
      if (r.failed) {
        anyFailed = true;
        std::fprintf(tout, "%-12s seed %d: FAILED: %s\n", method.c_str(), seed,
                     r.error.c_str());
        continue;
      }
      table.addRow({method, std::to_string(seed),
                    util::TextTable::num(r.finalMeanReward, 4),
                    util::TextTable::num(r.finalMeanLength, 4),
                    util::TextTable::num(r.finalAccuracy, 4)});
      std::fprintf(tout, "%-12s seed %d: accuracy %.3f, mean steps (succ) %.1f%s\n",
                   method.c_str(), seed, r.finalAccuracy, r.finalMeanStepsSuccess,
                   r.skipped ? " [skipped: done]" : r.resumed ? " [resumed]" : "");
      std::fflush(tout);
      json.record({{"bench", "fig3_opamp"},
                   {"method", method},
                   {"seed", std::to_string(seed)},
                   {"unit", "deploy_accuracy"}},
                  r.finalAccuracy);
      json.record({{"bench", "fig3_opamp"},
                   {"method", method},
                   {"seed", std::to_string(seed)},
                   {"unit", "final_mean_reward"}},
                  r.finalMeanReward);
    }
  }
  std::fprintf(tout, "\n");
  table.print(json.enabled() ? std::cerr : std::cout);
  std::fprintf(tout, "\nSeries CSVs written to %s/fig3_opamp_*.csv\n",
               scale.outDir.c_str());

  // Shared-pool utilization for the whole campaign (zeros when the runner
  // executed jobs inline, i.e. one worker or one job).
  const util::ThreadPool::Stats pool = runner.poolStats();
  if (pool.workers > 0) {
    std::fprintf(tout,
                 "pool: %zu worker(s), %llu task(s) (%llu stolen), "
                 "utilization %.1f%%, max queue depth %zu\n",
                 pool.workers,
                 static_cast<unsigned long long>(pool.tasksExecuted),
                 static_cast<unsigned long long>(pool.tasksStolen),
                 100.0 * pool.utilization(), pool.maxQueueDepth);
    json.record({{"bench", "fig3_opamp"}, {"unit", "pool_utilization"}},
                pool.utilization());
    json.record({{"bench", "fig3_opamp"}, {"unit", "pool_tasks_stolen"}},
                static_cast<double>(pool.tasksStolen));
  }
  json.flush();
  return anyFailed ? 1 : 0;
}
