// Figure 3, top row: P2S policy-training curves on the two-stage Op-Amp
// (mean episode reward, mean episode length, deployment accuracy) for
// GAT-FC, GCN-FC, Baseline A (AutoCkt-style FCNN) and Baseline B
// (GCN-RL-style, no spec pathway). Also saves the trained GAT-FC/GCN-FC
// policies for the downstream Fig. 5/6 and Table 2 harnesses.
#include "harness.h"

#include "circuit/opamp.h"

using namespace crl;

int main() {
  auto scale = bench::Scale::fromEnv();
  const int episodes = scale.episodes(1800);
  const int evalEvery = std::max(100, episodes / 5);
  std::printf("== Fig. 3 (two-stage Op-Amp): %d episodes x %d seed(s) ==\n", episodes,
              scale.seeds);
  std::printf("(paper scale: 3.5e4 episodes, 6 seeds; max episode length 50)\n\n");

  util::TextTable table({"method", "seed", "final mean reward", "final mean length",
                         "deploy accuracy"});
  for (auto kind : bench::fig3Methods()) {
    for (int seed = 0; seed < scale.seeds; ++seed) {
      circuit::TwoStageOpAmp amp;
      envs::SizingEnv env(amp, {.maxSteps = 50});
      util::Rng initRng(100 + static_cast<std::uint64_t>(seed));
      auto policy = core::makePolicy(kind, env, initRng);
      auto out = bench::trainWithCurves(env, env, *policy, episodes, evalEvery,
                                        /*evalEpisodes=*/25,
                                        /*seed=*/static_cast<std::uint64_t>(seed));
      std::string method = core::policyKindName(kind);
      bench::writeCurveCsv(
          scale.path("fig3_opamp_" + method + "_s" + std::to_string(seed) + ".csv"),
          method, seed, out.curve);
      table.addRow({method, std::to_string(seed),
                    util::TextTable::num(out.curve.back().meanReward, 4),
                    util::TextTable::num(out.curve.back().meanLength, 4),
                    util::TextTable::num(out.finalAccuracy.accuracy, 4)});
      std::printf("%-12s seed %d: accuracy %.3f, mean steps (succ) %.1f\n",
                  method.c_str(), seed, out.finalAccuracy.accuracy,
                  out.finalAccuracy.meanStepsSuccess);
      std::fflush(stdout);
      if (seed == 0 && (kind == core::PolicyKind::GcnFc || kind == core::PolicyKind::GatFc)) {
        nn::saveParameters(scale.path(std::string("policy_opamp_") + method + ".bin"),
                           policy->parameters());
      }
    }
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\nSeries CSVs written to %s/fig3_opamp_*.csv\n", scale.outDir.c_str());
  return 0;
}
