// Ablation: the transfer-learning contract (Sec. 3). Quantifies
// (a) the coarse/fine reward agreement over random sizings (paper: ~+-10%),
// (b) coarse-vs-fine wall-clock cost, and
// (c) deployment accuracy of a coarse-trained policy evaluated in BOTH
//     environments via core::trainWithTransfer.
#include "harness.h"

#include <chrono>

#include "circuit/rfpa.h"
#include "core/transfer.h"

using namespace crl;

int main() {
  auto scale = bench::Scale::fromEnv();
  std::printf("== Ablation: transfer learning (GaN RF PA) ==\n\n");

  {
    circuit::GanRfPa pa;
    util::Rng rng(17);
    util::RunningStats ratio;
    auto t0 = std::chrono::steady_clock::now();
    double coarseSec = 0.0, fineSec = 0.0;
    int n = 0;
    for (int i = 0; i < 30; ++i) {
      auto p = pa.designSpace().sample(rng);
      auto tA = std::chrono::steady_clock::now();
      auto coarse = pa.measureAt(p, circuit::Fidelity::Coarse);
      auto tB = std::chrono::steady_clock::now();
      auto fine = pa.measureAt(p, circuit::Fidelity::Fine);
      auto tC = std::chrono::steady_clock::now();
      coarseSec += std::chrono::duration<double>(tB - tA).count();
      fineSec += std::chrono::duration<double>(tC - tB).count();
      if (coarse.valid && fine.valid && fine.specs[1] > 0.3) {
        // Compare the FoM-style scalar the rewards are built from.
        double rc = coarse.specs[1] + 3.0 * coarse.specs[0];
        double rf = fine.specs[1] + 3.0 * fine.specs[0];
        ratio.add(rc / rf);
        ++n;
      }
    }
    (void)t0;
    std::printf("coarse/fine reward ratio over %d sizings: mean %.3f sd %.3f "
                "(paper contract: ~1.0 +- 0.1)\n",
                n, ratio.mean(), ratio.stddev());
    std::printf("cost: coarse %.2f ms/sim vs fine %.2f ms/sim (%.0fx)\n",
                1e3 * coarseSec / 30, 1e3 * fineSec / 30, fineSec / coarseSec);
  }

  {
    circuit::GanRfPa pa;
    core::TransferConfig cfg;
    cfg.trainEpisodes = scale.episodes(600);
    cfg.evalEpisodes = 15;
    cfg.envConfig.maxSteps = 30;
    auto res = core::trainWithTransfer(pa, cfg);
    std::printf("\ncoarse-trained GCN-FC: accuracy in coarse env %.3f, "
                "in fine env %.3f\n(transfer works when the fine accuracy "
                "tracks the coarse accuracy)\n",
                res.coarseAccuracy.accuracy, res.fineAccuracy.accuracy);
  }
  return 0;
}
