// Rollout-engine throughput: the parallel batched VecEnv collection loop vs.
// the sequential one-env-at-a-time reference, at N in {1, 2, 4, 8} lanes.
//
// Two workloads bracket the engine's operating range:
//   * opamp-fine  — the two-stage op-amp P2S env at Fine fidelity, where a
//     full AC/DC SPICE solve dominates each step (simulation-bound);
//   * rfpa-coarse — the GaN RF PA P2S env at Coarse fidelity, the paper's
//     fast training environment, where the GNN policy forward dominates
//     (inference-bound) and batching the forward pays the most.
//
// The sequential baseline reproduces PpoTrainer's classic collection loop:
// one grad-recording single-row forward per step. The engine runs the
// batched no-grad forward and steps all lanes through the thread pool.
//
//   CRL_BENCH_STEPS — env-steps per measurement (default 2000)
//   --json          — machine-readable output (bench/harness.h)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "circuit/opamp.h"
#include "circuit/rfpa.h"
#include "core/policies.h"
#include "envs/sizing_env.h"
#include "harness.h"
#include "rl/vec_env.h"
#include "util/thread_pool.h"

using namespace crl;

namespace {

constexpr int kMaxSteps = 30;

/// Human-table destination; main() points it at stderr in --json mode.
std::FILE* tout = stdout;

enum class Workload { OpAmpFine, RfPaCoarse };

const char* workloadName(Workload w) {
  return w == Workload::OpAmpFine ? "opamp-fine" : "rfpa-coarse";
}

rl::EnvLane makeLane(Workload w) {
  rl::EnvLane lane;
  if (w == Workload::OpAmpFine) {
    auto amp = std::make_shared<circuit::TwoStageOpAmp>();
    lane.env = std::make_unique<envs::SizingEnv>(
        *amp, envs::SizingEnvConfig{.maxSteps = kMaxSteps});
    lane.keepAlive = amp;
  } else {
    auto pa = std::make_shared<circuit::GanRfPa>();
    lane.env = std::make_unique<envs::SizingEnv>(
        *pa, envs::SizingEnvConfig{.maxSteps = kMaxSteps,
                                   .fidelity = circuit::Fidelity::Coarse});
    lane.keepAlive = pa;
  }
  return lane;
}

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// PpoTrainer's historical collection loop: grad-recording single-row
/// forward, sample, step, auto-reset.
double sequentialStepsPerSec(Workload w, const core::MultimodalPolicy& policy,
                             int steps) {
  rl::EnvLane lane = makeLane(w);
  util::Rng envRng(7), actRng(13);
  rl::Observation obs = lane.env->reset(envRng);
  int t = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) {
    rl::PolicyOutput out = policy.forward(obs);
    rl::SampledAction act = rl::sampleAction(out.logits.value(), actRng);
    (void)out.value.item();
    rl::StepResult res = lane.env->step(act.actions);
    ++t;
    if (res.done || t >= kMaxSteps) {
      obs = lane.env->reset(envRng);
      t = 0;
    } else {
      obs = std::move(res.obs);
    }
  }
  return steps / secondsSince(t0);
}

/// The engine: batched no-grad forward + pooled lane stepping.
double vectorizedStepsPerSec(Workload w, const core::MultimodalPolicy& policy,
                             std::size_t lanes, int steps, util::ThreadPool& pool) {
  rl::VecEnv vec(lanes, [w](std::size_t) { return makeLane(w); }, 7, &pool);
  std::vector<util::Rng> actRng;
  for (std::size_t i = 0; i < lanes; ++i) actRng.emplace_back(13 + 17 * i);
  std::vector<rl::Observation> obs = vec.resetAll();
  std::vector<int> age(lanes, 0);
  const int vectorSteps = std::max(1, steps / static_cast<int>(lanes));
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < vectorSteps; ++s) {
    std::vector<rl::PolicyOutput> outs;
    {
      nn::NoGradGuard inference;
      outs = policy.forwardBatch(obs);
    }
    std::vector<std::vector<int>> actions(lanes);
    for (std::size_t i = 0; i < lanes; ++i)
      actions[i] = rl::sampleAction(outs[i].logits.value(), actRng[i]).actions;
    auto results = vec.stepAll(actions);
    for (std::size_t i = 0; i < lanes; ++i) {
      ++age[i];
      if (results[i].done || age[i] >= kMaxSteps) {
        obs[i] = vec.resetLane(i);
        age[i] = 0;
      } else {
        obs[i] = std::move(results[i].obs);
      }
    }
  }
  return vectorSteps * static_cast<double>(lanes) / secondsSince(t0);
}

void runWorkload(Workload w, int steps, bench::BenchJson& json) {
  rl::EnvLane proto = makeLane(w);
  util::Rng initRng(3);
  auto policy = core::makePolicy(core::PolicyKind::GcnFc, *proto.env, initRng);

  std::fprintf(tout, "\n== %s (policy: %s, %d env-steps per point) ==\n",
              workloadName(w), policy->name(), steps);
  std::fprintf(tout, "%-12s %14s %10s\n", "config", "steps/sec", "speedup");

  const double seq = sequentialStepsPerSec(w, *policy, steps);
  std::fprintf(tout, "%-12s %14.1f %9.2fx\n", "sequential", seq, 1.0);
  json.record({{"bench", "parallel_rollout"},
               {"workload", workloadName(w)},
               {"config", "sequential"},
               {"unit", "steps_per_sec"}},
              seq);

  for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
    util::ThreadPool pool(std::min<std::size_t>(lanes, util::ThreadPool::defaultWorkerCount()));
    const double vecRate = vectorizedStepsPerSec(w, *policy, lanes, steps, pool);
    std::fprintf(tout, "N=%-10zu %14.1f %9.2fx\n", lanes, vecRate, vecRate / seq);
    std::string config = "N";
    config += std::to_string(lanes);
    json.record({{"bench", "parallel_rollout"},
                 {"workload", workloadName(w)},
                 {"config", config},
                 {"unit", "steps_per_sec"}},
                vecRate);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int steps = 2000;
  if (const char* v = std::getenv("CRL_BENCH_STEPS")) steps = std::atoi(v);
  steps = std::max(steps, 1);
  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  tout = json.tableStream();
  std::fprintf(tout, "parallel rollout engine benchmark\n");
  const std::size_t hw = util::ThreadPool::defaultWorkerCount();
  std::fprintf(tout, "hardware threads: %zu\n", hw);
  if (hw < 4)
    std::fprintf(tout, 
        "note: lane stepping parallelizes across cores, so N-lane scaling is\n"
        "bounded by min(N, %zu) here; only the batched no-grad forward gain\n"
        "is visible on this machine. Run on >= 4 cores for the full curve.\n",
        hw);
  runWorkload(Workload::RfPaCoarse, steps, json);
  runWorkload(Workload::OpAmpFine, steps, json);
  json.flush();
  return 0;
}
