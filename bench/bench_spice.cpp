// Micro-benchmarks of the simulation substrate (google-benchmark): these
// quantify the coarse/fine cost asymmetry behind the paper's transfer
// learning, plus raw solver throughput.
#include <benchmark/benchmark.h>

#include "circuit/opamp.h"
#include "circuit/rfpa.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "util/rng.h"

using namespace crl;

static void BM_OpAmpDcOperatingPoint(benchmark::State& state) {
  circuit::TwoStageOpAmp amp;
  auto& net = amp.netlist();
  spice::DcOptions opt;
  opt.initialVoltage = 0.6;
  for (auto _ : state) {
    spice::DcAnalysis dc(net, opt);
    auto r = dc.solve();
    benchmark::DoNotOptimize(r.x.data());
  }
}
BENCHMARK(BM_OpAmpDcOperatingPoint);

static void BM_OpAmpFullMeasurement(benchmark::State& state) {
  circuit::TwoStageOpAmp amp;
  util::Rng rng(1);
  auto p = amp.designSpace().sample(rng);
  for (auto _ : state) {
    auto m = amp.measureAt(p, circuit::Fidelity::Fine);
    benchmark::DoNotOptimize(m.specs.data());
  }
}
BENCHMARK(BM_OpAmpFullMeasurement);

static void BM_RfPaCoarseMeasurement(benchmark::State& state) {
  circuit::GanRfPa pa;
  util::Rng rng(2);
  auto p = pa.designSpace().sample(rng);
  for (auto _ : state) {
    auto m = pa.measureAt(p, circuit::Fidelity::Coarse);
    benchmark::DoNotOptimize(m.specs.data());
  }
}
BENCHMARK(BM_RfPaCoarseMeasurement);

static void BM_RfPaFineMeasurement(benchmark::State& state) {
  circuit::GanRfPa pa;
  util::Rng rng(3);
  auto p = pa.designSpace().sample(rng);
  for (auto _ : state) {
    auto m = pa.measureAt(p, circuit::Fidelity::Fine);
    benchmark::DoNotOptimize(m.specs.data());
  }
}
BENCHMARK(BM_RfPaFineMeasurement);

static void BM_AcSinglePoint(benchmark::State& state) {
  circuit::TwoStageOpAmp amp;
  auto& net = amp.netlist();
  spice::DcOptions opt;
  opt.initialVoltage = 0.6;
  spice::DcAnalysis dc(net, opt);
  auto op = dc.solve();
  spice::AcAnalysis ac(net, op.x);
  spice::NodeId out = net.findNode("nout");
  for (auto _ : state) {
    auto h = ac.nodeVoltage(1e6, out);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_AcSinglePoint);

BENCHMARK_MAIN();
