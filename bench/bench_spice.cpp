// Micro-benchmarks of the simulation substrate: these quantify the
// coarse/fine cost asymmetry behind the paper's transfer learning, plus raw
// solver latency. A plain harness (no google-benchmark dependency) so the
// `--json` flag (bench/harness.h) can feed the cross-PR perf trajectory.
//
//   CRL_BENCH_REPS — repetitions per workload (default 20; rf-pa fine uses
//                    a quarter of this, it is deliberately the slow path)
//   --json         — machine-readable output

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "circuit/opamp.h"
#include "circuit/rfpa.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "util/rng.h"

#include "harness.h"

using namespace crl;

namespace {

using bench::secondsSince;

std::FILE* tout = stdout;

void report(bench::BenchJson& json, const char* workload, int reps, double totalSec) {
  const double ms = 1e3 * totalSec / reps;
  std::fprintf(tout, "%-22s %10.3f ms  (%d reps)\n", workload, ms, reps);
  json.record({{"bench", "spice"}, {"workload", workload}, {"unit", "ms_per_op"}}, ms);
}

void benchOpAmpDcOperatingPoint(bench::BenchJson& json, int reps) {
  circuit::TwoStageOpAmp amp;
  auto& net = amp.netlist();
  spice::DcOptions opt;
  opt.initialVoltage = 0.6;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    spice::DcAnalysis dc(net, opt);
    auto res = dc.solve();
    if (!res.converged) std::fprintf(tout, "warning: DC did not converge\n");
  }
  report(json, "opamp-dc-op", reps, secondsSince(t0));
}

void benchOpAmpFullMeasurement(bench::BenchJson& json, int reps) {
  circuit::TwoStageOpAmp amp;
  util::Rng rng(1);
  auto p = amp.designSpace().sample(rng);
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) amp.measureAt(p, circuit::Fidelity::Fine);
  report(json, "opamp-measure-fine", reps, secondsSince(t0));
}

void benchRfPaCoarse(bench::BenchJson& json, int reps) {
  circuit::GanRfPa pa;
  util::Rng rng(2);
  auto p = pa.designSpace().sample(rng);
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) pa.measureAt(p, circuit::Fidelity::Coarse);
  report(json, "rfpa-measure-coarse", reps, secondsSince(t0));
}

void benchRfPaFine(bench::BenchJson& json, int reps) {
  circuit::GanRfPa pa;
  util::Rng rng(3);
  auto p = pa.designSpace().sample(rng);
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) pa.measureAt(p, circuit::Fidelity::Fine);
  report(json, "rfpa-measure-fine", reps, secondsSince(t0));
}

void benchAcSinglePoint(bench::BenchJson& json, int reps) {
  circuit::TwoStageOpAmp amp;
  auto& net = amp.netlist();
  spice::DcOptions opt;
  opt.initialVoltage = 0.6;
  spice::DcAnalysis dc(net, opt);
  auto op = dc.solve();
  spice::AcAnalysis ac(net, op.x);
  spice::NodeId out = net.findNode("nout");
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    auto h = ac.nodeVoltage(1e6, out);
    (void)h;
  }
  report(json, "ac-single-point", reps, secondsSince(t0));
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 20;
  if (const char* v = std::getenv("CRL_BENCH_REPS")) reps = std::atoi(v);
  reps = std::max(reps, 1);

  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  tout = json.tableStream();
  std::fprintf(tout, "SPICE substrate latency (%d reps per workload)\n\n", reps);

  benchOpAmpDcOperatingPoint(json, reps);
  benchOpAmpFullMeasurement(json, reps);
  benchRfPaCoarse(json, reps);
  benchRfPaFine(json, std::max(reps / 4, 1));
  benchAcSinglePoint(json, 10 * reps);

  json.flush();
  return 0;
}
