// Table 1: design space of device parameters and sampling space of desired
// specifications for the two circuit benchmarks, printed from the live
// DesignSpace / SpecSpace objects (so the table cannot drift from the code).
#include <cstdio>
#include <iostream>

#include "circuit/opamp.h"
#include "circuit/rfpa.h"
#include "util/csv.h"

using namespace crl;

namespace {
void printBenchmark(circuit::Benchmark& b, const char* tech, int numParams) {
  std::printf("-- %s (%s), %d tunable device parameters --\n", b.name().c_str(), tech,
              numParams);
  util::TextTable params({"parameter", "min", "max", "step", "grid"});
  for (std::size_t i = 0; i < b.designSpace().size(); ++i) {
    const auto& p = b.designSpace().param(i);
    params.addRow({p.name, util::TextTable::num(p.min, 4), util::TextTable::num(p.max, 4),
                   util::TextTable::num(p.step, 4),
                   std::to_string(b.designSpace().gridLevels(i))});
  }
  params.print(std::cout);
  util::TextTable specs({"specification", "sample min", "sample max", "direction"});
  for (std::size_t i = 0; i < b.specSpace().size(); ++i) {
    const auto& s = b.specSpace().spec(i);
    specs.addRow({s.name, util::TextTable::num(s.sampleMin, 4),
                  util::TextTable::num(s.sampleMax, 4),
                  s.direction == circuit::SpecDirection::Minimize ? "minimize" : "maximize"});
  }
  specs.print(std::cout);
  std::printf("\n");
}
}  // namespace

int main() {
  std::printf("== Table 1: design and sampling spaces ==\n\n");
  circuit::TwoStageOpAmp amp;
  printBenchmark(amp, "45 nm CMOS (level-1 model)", 15);
  circuit::GanRfPa pa;
  printBenchmark(pa, "150 nm GaN (Angelov-style model)", 14);
  return 0;
}
