// Ablation (DESIGN.md Sec. 4): GNN design choices of the GAT-FC policy —
// attention heads (1 vs 4) and depth (1 vs 2 layers) — measured by op-amp
// deployment accuracy after a short training budget. Also checks the Eq. (1)
// reward-shaping choice (success bonus R=10 + zero upper bound) against a
// variant without the terminal bonus.
#include "harness.h"

#include "circuit/opamp.h"

using namespace crl;

namespace {

double trainAndEval(core::PolicyConfig cfg, core::PolicyKind kind, int episodes,
                    double successBonus) {
  circuit::TwoStageOpAmp amp;
  envs::SizingEnv env(amp, {.maxSteps = 50, .successBonus = successBonus});
  util::Rng rng(11);
  auto policy = std::make_unique<core::MultimodalPolicy>(
      kind,
      [&] {
        cfg.numParams = env.numParams();
        cfg.numSpecs = env.numSpecs();
        cfg.graphFeatureDim = env.graphFeatureDim();
        return cfg;
      }(),
      env.normalizedAdjacency(), env.attentionMask(), rng);
  rl::PpoTrainer trainer(env, *policy, {}, util::Rng(3));
  trainer.train(episodes);
  util::Rng evalRng(99);
  return core::evaluateAccuracy(env, *policy, 25, evalRng).accuracy;
}

}  // namespace

int main() {
  auto scale = bench::Scale::fromEnv();
  const int episodes = scale.episodes(700);
  std::printf("== Ablations: GNN design + reward shaping (op-amp, %d episodes) ==\n\n",
              episodes);
  util::TextTable table({"variant", "deploy accuracy"});

  {
    core::PolicyConfig cfg;
    cfg.gatHeads = 4;
    table.addRow({"GAT-FC, 4 heads, 2 layers (ours)",
                  util::TextTable::num(
                      trainAndEval(cfg, core::PolicyKind::GatFc, episodes, 10.0), 3)});
  }
  {
    core::PolicyConfig cfg;
    cfg.gatHeads = 1;
    table.addRow({"GAT-FC, 1 head, 2 layers",
                  util::TextTable::num(
                      trainAndEval(cfg, core::PolicyKind::GatFc, episodes, 10.0), 3)});
  }
  {
    core::PolicyConfig cfg;
    cfg.gnnLayers = 1;
    table.addRow({"GCN-FC, 1 layer",
                  util::TextTable::num(
                      trainAndEval(cfg, core::PolicyKind::GcnFc, episodes, 10.0), 3)});
  }
  {
    core::PolicyConfig cfg;
    cfg.gnnLayers = 3;
    table.addRow({"GCN-FC, 3 layers",
                  util::TextTable::num(
                      trainAndEval(cfg, core::PolicyKind::GcnFc, episodes, 10.0), 3)});
  }
  {
    core::PolicyConfig cfg;
    table.addRow({"GCN-FC, no success bonus (R=0)",
                  util::TextTable::num(
                      trainAndEval(cfg, core::PolicyKind::GcnFc, episodes, 0.0), 3)});
  }
  table.print(std::cout);
  return 0;
}
