// Transcendental-kernel throughput: exp / tanh / sigmoid over a contiguous
// buffer, libm scalar loops vs the vec_math clones pinned to each ISA tier
// (baseline / AVX2 / AVX-512). Unsupported tiers are skipped, so the JSON is
// comparable across hosts.
//
//   CRL_BENCH_N     — elements per call (default 65536, ~512 KiB: L2-resident
//                     so the measurement is compute-bound, not memory-bound)
//   CRL_BENCH_REPS  — timed calls per point (default 30)
//   --json          — machine-readable output (bench/harness.h)
//
// What to expect (single core, AVX-512 host): libm is the scalar floor the
// SIMD-math PR removed — ~140 Melem/s exp, ~65 Melem/s tanh. The baseline
// clone already beats it (same polynomial, branchless, no call overhead);
// AVX2 runs ~4 lanes and AVX-512 ~8, landing near 550-600 Melem/s for exp —
// a ~4x end-to-end win over libm. The clones are bit-identical across tiers
// (ctest -L parity pins that), so the tier is purely a speed choice.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness.h"
#include "linalg/vec_math.h"
#include "util/rng.h"

using namespace crl;
namespace vm = linalg::vecmath;

namespace {

std::FILE* tout = stdout;

std::size_t envSize(const char* var, std::size_t fallback) {
  const char* v = std::getenv(var);
  return v && *v ? static_cast<std::size_t>(std::atoll(v)) : fallback;
}

void libmExp(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::exp(x[i]);
}
void libmTanh(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}
void libmSigmoid(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = 1.0 / (1.0 + std::exp(-x[i]));
}

using KernelFn = void (*)(double*, std::size_t);

/// Mean elements/second over `reps` timed calls; the refill of the work
/// buffer between calls is excluded from the clock.
double measure(KernelFn fn, const std::vector<double>& input,
               std::vector<double>& work, int reps) {
  using clock = std::chrono::steady_clock;
  double seconds = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::memcpy(work.data(), input.data(), input.size() * sizeof(double));
    const auto t0 = clock::now();
    fn(work.data(), work.size());
    const auto t1 = clock::now();
    seconds += std::chrono::duration<double>(t1 - t0).count();
  }
  return static_cast<double>(input.size()) * reps / seconds;
}

struct Tier {
  const char* name;
  KernelFn exp, tanh, sigmoid;
  bool supported;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  tout = json.tableStream();

  const std::size_t n = envSize("CRL_BENCH_N", 65536);
  const int reps = static_cast<int>(envSize("CRL_BENCH_REPS", 30));

  // Typical activation-range inputs: the hot callers feed pre-activations
  // and attention logits, not extreme magnitudes.
  util::Rng rng(12345);
  std::vector<double> input(n);
  for (auto& v : input) v = rng.uniform(-8.0, 8.0);
  std::vector<double> work(n);

  const Tier tiers[] = {
      {"libm", libmExp, libmTanh, libmSigmoid, true},
      {"baseline",
       [](double* x, std::size_t m) { vm::expInPlaceIsa(vm::Isa::Baseline, x, m); },
       [](double* x, std::size_t m) { vm::tanhInPlaceIsa(vm::Isa::Baseline, x, m); },
       [](double* x, std::size_t m) {
         vm::sigmoidInPlaceIsa(vm::Isa::Baseline, x, m);
       },
       vm::isaSupported(vm::Isa::Baseline)},
      {"avx2",
       [](double* x, std::size_t m) { vm::expInPlaceIsa(vm::Isa::Avx2, x, m); },
       [](double* x, std::size_t m) { vm::tanhInPlaceIsa(vm::Isa::Avx2, x, m); },
       [](double* x, std::size_t m) { vm::sigmoidInPlaceIsa(vm::Isa::Avx2, x, m); },
       vm::isaSupported(vm::Isa::Avx2)},
      {"avx512",
       [](double* x, std::size_t m) { vm::expInPlaceIsa(vm::Isa::Avx512, x, m); },
       [](double* x, std::size_t m) { vm::tanhInPlaceIsa(vm::Isa::Avx512, x, m); },
       [](double* x, std::size_t m) {
         vm::sigmoidInPlaceIsa(vm::Isa::Avx512, x, m);
       },
       vm::isaSupported(vm::Isa::Avx512)},
  };

  std::fprintf(tout, "== vectorized transcendental throughput ==\n");
  std::fprintf(tout, "(%zu elements/call, %d calls per point)\n\n", n, reps);
  std::fprintf(tout, "%-10s %12s %12s %12s   (Melem/s)\n", "tier", "exp", "tanh",
               "sigmoid");

  for (const Tier& t : tiers) {
    if (!t.supported) {
      std::fprintf(tout, "%-10s %38s\n", t.name, "unsupported on this host");
      continue;
    }
    struct {
      const char* op;
      KernelFn fn;
    } ops[] = {{"exp", t.exp}, {"tanh", t.tanh}, {"sigmoid", t.sigmoid}};
    double melems[3];
    for (int i = 0; i < 3; ++i) {
      const double eps = measure(ops[i].fn, input, work, reps);
      melems[i] = eps / 1e6;
      json.record({{"bench", "vec_math"},
                   {"op", ops[i].op},
                   {"isa", t.name},
                   {"unit", "elements_per_second"}},
                  eps);
    }
    std::fprintf(tout, "%-10s %12.1f %12.1f %12.1f\n", t.name, melems[0],
                 melems[1], melems[2]);
  }
  return 0;
}
