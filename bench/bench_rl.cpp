// Micro-benchmarks of the RL substrate: policy forward passes for every
// policy kind, action sampling, GAE computation, and one full PPO update on
// the op-amp environment.
#include <benchmark/benchmark.h>

#include "circuit/opamp.h"
#include "core/policies.h"
#include "envs/sizing_env.h"
#include "rl/ppo.h"

using namespace crl;

namespace {

envs::SizingEnv& opampEnv() {
  static circuit::TwoStageOpAmp amp;
  static envs::SizingEnv env(amp, {.maxSteps = 50});
  return env;
}

void BM_PolicyForward(benchmark::State& state) {
  auto kind = static_cast<core::PolicyKind>(state.range(0));
  auto& env = opampEnv();
  util::Rng rng(1);
  auto policy = core::makePolicy(kind, env, rng);
  auto obs = env.reset(rng);
  for (auto _ : state) {
    auto out = policy->forward(obs);
    benchmark::DoNotOptimize(out.logits.value());
    benchmark::DoNotOptimize(out.value.value());
  }
  state.SetLabel(core::policyKindName(kind));
}

void BM_SampleAction(benchmark::State& state) {
  auto& env = opampEnv();
  util::Rng rng(2);
  auto policy = core::makePolicy(core::PolicyKind::GcnFc, env, rng);
  auto obs = env.reset(rng);
  auto out = policy->forward(obs);
  const auto logits = out.logits.value();
  for (auto _ : state) {
    auto a = rl::sampleAction(logits, rng);
    benchmark::DoNotOptimize(a.logProb);
  }
}

void BM_Gae(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<rl::Transition> steps(static_cast<std::size_t>(n));
  util::Rng rng(3);
  for (int i = 0; i < n; ++i) {
    steps[static_cast<std::size_t>(i)].reward = rng.uniform(-1.0, 0.0);
    steps[static_cast<std::size_t>(i)].value = rng.uniform(-5.0, 5.0);
    steps[static_cast<std::size_t>(i)].terminal = (i % 50) == 49;
  }
  std::vector<double> adv, ret;
  for (auto _ : state) {
    rl::computeGae(steps, 0.99, 0.95, &adv, &ret);
    benchmark::DoNotOptimize(adv.data());
  }
}

void BM_PpoEpisode(benchmark::State& state) {
  // One training episode (collection + amortized update share) on the
  // fine-fidelity op-amp env with the GCN-FC policy.
  auto& env = opampEnv();
  util::Rng rng(4);
  auto policy = core::makePolicy(core::PolicyKind::GcnFc, env, rng);
  rl::PpoConfig cfg;
  cfg.stepsPerUpdate = 128;
  rl::PpoTrainer trainer(env, *policy, cfg, util::Rng(5));
  for (auto _ : state) {
    trainer.train(1);
  }
}

}  // namespace

BENCHMARK(BM_PolicyForward)
    ->Arg(static_cast<int>(core::PolicyKind::GatFc))
    ->Arg(static_cast<int>(core::PolicyKind::GcnFc))
    ->Arg(static_cast<int>(core::PolicyKind::BaselineA))
    ->Arg(static_cast<int>(core::PolicyKind::BaselineB))
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SampleAction);
BENCHMARK(BM_Gae)->Arg(512)->Arg(4096);
BENCHMARK(BM_PpoEpisode)->Unit(benchmark::kMillisecond)->Iterations(3);

BENCHMARK_MAIN();
