// Micro-benchmarks of the learning substrate: policy forward/backward for
// each network family and a full PPO minibatch update.
#include <benchmark/benchmark.h>

#include "circuit/opamp.h"
#include "core/policies.h"
#include "envs/sizing_env.h"
#include "rl/ppo.h"

using namespace crl;

namespace {
struct Fixture {
  circuit::TwoStageOpAmp amp;
  envs::SizingEnv env{amp, {.maxSteps = 50}};
  util::Rng rng{1};
  rl::Observation obs;
  Fixture() { obs = env.reset(rng); }
};
}  // namespace

static void BM_PolicyForward(benchmark::State& state, core::PolicyKind kind) {
  Fixture f;
  auto policy = core::makePolicy(kind, f.env, f.rng);
  for (auto _ : state) {
    auto out = policy->forward(f.obs);
    benchmark::DoNotOptimize(out.logits.value().data());
  }
}
BENCHMARK_CAPTURE(BM_PolicyForward, GatFc, core::PolicyKind::GatFc);
BENCHMARK_CAPTURE(BM_PolicyForward, GcnFc, core::PolicyKind::GcnFc);
BENCHMARK_CAPTURE(BM_PolicyForward, BaselineA, core::PolicyKind::BaselineA);
BENCHMARK_CAPTURE(BM_PolicyForward, BaselineB, core::PolicyKind::BaselineB);

static void BM_PolicyForwardBackward(benchmark::State& state, core::PolicyKind kind) {
  Fixture f;
  auto policy = core::makePolicy(kind, f.env, f.rng);
  for (auto _ : state) {
    auto out = policy->forward(f.obs);
    nn::Tensor loss = nn::add(nn::sum(out.logits), out.value);
    nn::backward(loss);
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK_CAPTURE(BM_PolicyForwardBackward, GatFc, core::PolicyKind::GatFc);
BENCHMARK_CAPTURE(BM_PolicyForwardBackward, GcnFc, core::PolicyKind::GcnFc);

static void BM_PpoTrainTenEpisodes(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Fixture f;
    auto policy = core::makePolicy(core::PolicyKind::GcnFc, f.env, f.rng);
    rl::PpoConfig cfg;
    cfg.stepsPerUpdate = 128;
    rl::PpoTrainer trainer(f.env, *policy, cfg, util::Rng(2));
    state.ResumeTiming();
    trainer.train(10);
  }
}
BENCHMARK(BM_PpoTrainTenEpisodes)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
