// Ablation: the Eq. (1) reward design (per-spec min(., 0) clipping plus the
// success bonus R = 10) versus a raw signed-difference reward with no
// clipping and no bonus. The paper motivates the clipped form as the guard
// against over-optimizing specs that are already met; the raw variant pays
// for overshoot, so its agent keeps pushing satisfied specs and trades away
// unmet ones. Expected outcome: Eq. (1) reaches higher deployment accuracy.
#include "harness.h"

#include "circuit/opamp.h"

using namespace crl;

int main() {
  auto scale = bench::Scale::fromEnv();
  const int episodes = scale.episodes(1200);
  const int evalEvery = std::max(100, episodes / 4);
  std::printf("== Ablation: Eq. (1) reward shaping vs raw signed reward ==\n");
  std::printf("(two-stage Op-Amp, GCN-FC policy, %d episodes x %d seed(s))\n\n", episodes,
              scale.seeds);

  struct Variant {
    const char* name;
    envs::RewardShape shape;
  };
  const Variant variants[] = {
      {"eq1-clipped+bonus", envs::RewardShape::Eq1},
      {"raw-signed", envs::RewardShape::Raw},
  };

  util::TextTable table({"reward", "seed", "deploy accuracy", "mean steps (succ)"});
  for (const auto& variant : variants) {
    for (int seed = 0; seed < scale.seeds; ++seed) {
      circuit::TwoStageOpAmp amp;
      envs::SizingEnvConfig cfg{.maxSteps = 50};
      cfg.rewardShape = variant.shape;
      envs::SizingEnv env(amp, cfg);
      // Deployment accuracy is always judged in the Eq. (1) env: success is
      // "all specs reached", independent of the training shaping.
      envs::SizingEnv evalEnv(amp, {.maxSteps = 50});
      util::Rng initRng(300 + static_cast<std::uint64_t>(seed));
      auto policy = core::makePolicy(core::PolicyKind::GcnFc, env, initRng);
      auto out = bench::trainWithCurves(env, evalEnv, *policy, episodes, evalEvery,
                                        /*evalEpisodes=*/25,
                                        /*seed=*/31 + static_cast<std::uint64_t>(seed));
      bench::writeCurveCsv(scale.path(std::string("ablation_reward_") + variant.name +
                                      "_s" + std::to_string(seed) + ".csv"),
                           variant.name, seed, out.curve);
      table.addRow({variant.name, std::to_string(seed),
                    util::TextTable::num(out.finalAccuracy.accuracy, 4),
                    util::TextTable::num(out.finalAccuracy.meanStepsSuccess, 2)});
      std::printf("%-20s seed %d: accuracy %.3f\n", variant.name, seed,
                  out.finalAccuracy.accuracy);
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  table.print(std::cout);
  return 0;
}
