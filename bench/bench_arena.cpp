// Tape-arena A/B: the batched PPO update with PpoConfig::arenaUpdate on vs
// off, per policy kind, at the benched minibatch size. The two modes run
// identical arithmetic (the parity suites assert bit-equality); the measured
// difference is purely the allocation strategy — slab nodes + pooled Mat
// buffers + O(minibatch-node-count) reset vs make_shared/malloc/free churn.
// Reported per mode: seconds per update, allocations per minibatch, bytes
// per minibatch (the harness's operator-new hook), plus arena pool
// statistics and process peak RSS.
//
//   CRL_BENCH_TRANSITIONS — buffer size per update (default 256)
//   CRL_BENCH_REPS        — timed update() calls per point (default 3)
//   --json                — machine-readable output (bench/harness.h)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "circuit/opamp.h"
#include "circuit/rfpa.h"
#include "harness.h"
#include "nn/arena.h"

using namespace crl;

namespace {

constexpr int kMaxSteps = 30;
constexpr int kMinibatch = 32;

std::FILE* tout = stdout;

struct Workload {
  const char* name;
  core::PolicyKind kind;
  bool opamp;
};

std::unique_ptr<envs::SizingEnv> makeEnv(const Workload& w,
                                         std::shared_ptr<void>* keepAlive) {
  if (w.opamp) {
    auto amp = std::make_shared<circuit::TwoStageOpAmp>();
    *keepAlive = amp;
    return std::make_unique<envs::SizingEnv>(
        *amp, envs::SizingEnvConfig{.maxSteps = kMaxSteps});
  }
  auto pa = std::make_shared<circuit::GanRfPa>();
  *keepAlive = pa;
  return std::make_unique<envs::SizingEnv>(
      *pa, envs::SizingEnvConfig{.maxSteps = kMaxSteps,
                                 .fidelity = circuit::Fidelity::Coarse});
}

/// Heap-vs-arena point at the benched minibatch — thin wrapper over the
/// shared bench::measureUpdateCost plumbing.
bench::UpdateCost measure(rl::Env& env, const Workload& w,
                          std::vector<rl::Transition>& buffer, bool arena,
                          int reps) {
  rl::PpoConfig cfg;
  cfg.minibatchSize = kMinibatch;
  cfg.updateEpochs = 2;
  cfg.batchedUpdate = true;
  cfg.arenaUpdate = arena;
  return bench::measureUpdateCost(env, w.kind, buffer, cfg, reps);
}

void runWorkload(const Workload& w, int transitions, int reps,
                 bench::BenchJson& json) {
  std::shared_ptr<void> keepAlive;
  auto env = makeEnv(w, &keepAlive);
  util::Rng initRng(3);
  auto policy = core::makePolicy(w.kind, *env, initRng);
  std::vector<rl::Transition> buffer =
      bench::collectTransitions(*env, *policy, transitions, kMaxSteps);

  const bench::UpdateCost heap = measure(*env, w, buffer, /*arena=*/false, reps);
  const bench::UpdateCost arena = measure(*env, w, buffer, /*arena=*/true, reps);
  std::fprintf(tout,
               "%-12s heap:  %8.4f s/upd %10.1f allocs/mb %10.1f KiB/mb\n"
               "%-12s arena: %8.4f s/upd %10.1f allocs/mb %10.1f KiB/mb"
               "  (%.2fx faster, %.1fx fewer allocs)\n",
               w.name, heap.seconds, heap.allocsPerMinibatch,
               heap.bytesPerMinibatch / 1024.0, "", arena.seconds,
               arena.allocsPerMinibatch, arena.bytesPerMinibatch / 1024.0,
               heap.seconds / arena.seconds,
               heap.allocsPerMinibatch /
                   std::max(arena.allocsPerMinibatch, 1.0));
  for (bool isArena : {false, true}) {
    const bench::UpdateCost& c = isArena ? arena : heap;
    const std::string mode = isArena ? "arena" : "heap";
    json.record({{"bench", "arena"},
                 {"workload", w.name},
                 {"config", mode},
                 {"unit", "seconds_per_update"}},
                c.seconds);
    json.record({{"bench", "arena"},
                 {"workload", w.name},
                 {"config", mode},
                 {"unit", "allocs_per_minibatch"}},
                c.allocsPerMinibatch);
    json.record({{"bench", "arena"},
                 {"workload", w.name},
                 {"config", mode},
                 {"unit", "bytes_per_minibatch"}},
                c.bytesPerMinibatch);
  }
  json.record({{"bench", "arena"},
               {"workload", w.name},
               {"config", "arena-vs-heap"},
               {"unit", "alloc_reduction_ratio"}},
              heap.allocsPerMinibatch / std::max(arena.allocsPerMinibatch, 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  int transitions = 256;
  if (const char* v = std::getenv("CRL_BENCH_TRANSITIONS")) transitions = std::atoi(v);
  transitions = std::max(transitions, 64);
  int reps = 3;
  if (const char* v = std::getenv("CRL_BENCH_REPS")) reps = std::atoi(v);
  reps = std::max(reps, 1);

  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  tout = json.tableStream();
  std::fprintf(tout,
               "tape arena benchmark (batched update, minibatch %d, %d "
               "transitions, %d reps)\n\n",
               kMinibatch, transitions, reps);
  runWorkload({"opamp-fcnn", core::PolicyKind::BaselineA, true}, transitions,
              reps, json);
  runWorkload({"opamp-gcn", core::PolicyKind::GcnFc, true}, transitions, reps,
              json);
  runWorkload({"rfpa-gat", core::PolicyKind::GatFc, false}, transitions, reps,
              json);
  std::fprintf(tout, "\npeak RSS: %.1f MiB\n", bench::peakRssMib());
  json.record({{"bench", "arena"},
               {"workload", "all"},
               {"config", "process"},
               {"unit", "peak_rss_mib"}},
              bench::peakRssMib());
  json.flush();
  return 0;
}
