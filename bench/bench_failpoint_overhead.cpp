// Failpoint overhead A/B: the cost of the util::failpoint::check() gates
// compiled into every hardened path (atomicWriteFile's four io.* sites, the
// spice.dc.newton gate, the pool.task wrapper, the train.* guards) when no
// chaos schedule is armed — the state every production run is in.
//
// Methodology, mirroring bench_telemetry_overhead: each workload runs twice
// per repetition — once with the registry empty (CRL_FAILPOINTS unset; every
// check() is one relaxed atomic load plus a predicted branch) and once with
// one entry armed at a site no workload ever checks ("bench.unused"), which
// forces every check() through the locked slow path and upper-bounds what a
// chaos run pays on paths it does NOT target. Legs interleave within each
// repetition so cache and frequency drift hit both alike; best-of per leg.
//
// A raw microbench additionally pins the per-call cost of a disarmed
// check() in nanoseconds. That number is the "zero overhead when off"
// contract from failpoint.h: one gate per DC solve (~µs) or per atomic save
// (~100 µs) is noise, far below the 1% acceptance line.
//
//   CRL_BENCH_REPS — timed repetitions per leg, best-of (default 5)
//   --json         — machine-readable output (bench/harness.h)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "harness.h"
#include "nn/serialize.h"
#include "spice/dc.h"
#include "spice/gen.h"
#include "spice/parser.h"
#include "util/failpoint.h"

using namespace crl;

namespace {

std::FILE* tout = stdout;

int repsFromEnv() {
  if (const char* v = std::getenv("CRL_BENCH_REPS")) return std::max(1, std::atoi(v));
  return 5;
}

double timeOnce(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct AbResult {
  double secondsOff = 1e300;  ///< best-of, registry empty (production state)
  double secondsOn = 1e300;   ///< best-of, one unrelated entry armed
  double overheadPct() const {
    return 100.0 * (secondsOn - secondsOff) / secondsOff;
  }
};

/// Interleaved A/B: disarmed and armed-at-an-unrelated-site alternate within
/// every repetition; best-of per leg.
AbResult measure(int reps, const std::function<void()>& fn) {
  AbResult r;
  for (int rep = 0; rep < reps; ++rep) {
    util::failpoint::clear();
    r.secondsOff = std::min(r.secondsOff, timeOnce(fn));
    util::failpoint::configure("bench.unused=throw@always");
    r.secondsOn = std::min(r.secondsOn, timeOnce(fn));
  }
  util::failpoint::clear();
  return r;
}

void report(const char* workload, const AbResult& r, bench::BenchJson& json) {
  std::fprintf(tout, "%-20s %14.3f %14.3f %9.2f%%\n", workload,
               r.secondsOff * 1e3, r.secondsOn * 1e3, r.overheadPct());
  json.record({{"bench", "failpoint_overhead"}, {"workload", workload},
               {"config", "disarmed"}, {"unit", "seconds"}}, r.secondsOff);
  json.record({{"bench", "failpoint_overhead"}, {"workload", workload},
               {"config", "armed-miss"}, {"unit", "seconds"}}, r.secondsOn);
  json.record({{"bench", "failpoint_overhead"}, {"workload", workload},
               {"config", "overhead"}, {"unit", "percent"}}, r.overheadPct());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  tout = json.tableStream();
  const int reps = repsFromEnv();

  if (util::failpoint::anyArmed())
    std::fprintf(tout, "WARNING: CRL_FAILPOINTS is set — clearing it for the "
                       "bench; the numbers below measure the hooks, not your "
                       "chaos schedule.\n");
  util::failpoint::clear();

  std::fprintf(tout,
               "failpoint hook overhead, disarmed vs armed-elsewhere "
               "(best of %d)\n",
               reps);
  std::fprintf(tout, "%-20s %14s %14s %10s\n", "workload", "disarmed ms",
               "armed ms", "overhead");

  // Raw gate cost: a tight loop of nothing but check() on a never-armed
  // site. Disarmed this is the relaxed-load fast path; with an unrelated
  // entry armed every call takes the registry lock and misses.
  {
    constexpr int kCalls = 20'000'000;
    const AbResult r = measure(reps, [&] {
      for (int k = 0; k < kCalls; ++k)
        if (util::failpoint::check("bench.never")) std::abort();
    });
    report("raw_check_20M", r, json);
    json.record({{"bench", "failpoint_overhead"}, {"workload", "raw_check"},
                 {"config", "disarmed"}, {"unit", "ns_per_call"}},
                r.secondsOff / kCalls * 1e9);
    json.record({{"bench", "failpoint_overhead"}, {"workload", "raw_check"},
                 {"config", "armed-miss"}, {"unit", "ns_per_call"}},
                r.secondsOn / kCalls * 1e9);
    std::fprintf(tout, "  (%.2f ns/call disarmed, %.1f ns/call armed-miss)\n",
                 r.secondsOff / kCalls * 1e9, r.secondsOn / kCalls * 1e9);
  }

  // DC Newton loop: the spice.dc.newton gate fires once per newton() entry —
  // once per converging solve, a handful per homotopy rescue. A ladder-20
  // solve is a few microseconds, so this is the hottest gated path.
  {
    auto deck = spice::parseDeck(spice::rcLadderDeck(20));
    spice::DcAnalysis dc(*deck.netlist);
    const AbResult r = measure(reps, [&] {
      for (int k = 0; k < 2000; ++k)
        if (!dc.solve().converged) std::abort();
    });
    report("dc_ladder20", r, json);
  }

  // Atomic checkpoint save: four io.* gates per atomicWriteFile (temp,
  // write, fsync, rename) against ~100 µs of real file I/O.
  {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "crl_bench_failpoint";
    fs::create_directories(dir);
    const std::string p = (dir / "params.bin").string();
    util::Rng rng(17);
    std::vector<nn::Tensor> params;
    linalg::Mat m(32, 64);
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (std::size_t j = 0; j < m.cols(); ++j) m(i, j) = rng.uniform(-1, 1);
    params.emplace_back(m, /*requiresGrad=*/true);
    const AbResult r = measure(reps, [&] {
      for (int k = 0; k < 200; ++k) nn::saveParameters(p, params);
    });
    report("atomic_save_200x", r, json);
    fs::remove_all(dir);
  }

  util::failpoint::clear();
  return 0;
}
