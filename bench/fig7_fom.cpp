// Figure 7: FoM optimization on the GaN RF PA. RL agents (GAT-FC, GCN-FC,
// Baseline A, Baseline B) train on the normalized FoM reward
//   r_i = (P_i - P_r)/(P_i + P_r) + 3 (E_i - E_r)/(E_i + E_r)
// in the coarse environment (transfer learning); the reported FoM
// (Pout + 3*efficiency) of each method's best sizing is re-measured in the
// fine environment. GA and BO optimize the FoM directly on the fine
// simulator. Results are appended to crl_artifacts/fom_results.csv, which
// the Table 2 harness reads. Paper's values: GA 2.53, BO 2.61, A 2.92,
// B ~2.81-2.86, GCN-FC 3.18, GAT-FC 3.25.
#include "harness.h"

#include "baselines/optimizers.h"
#include "circuit/rfpa.h"
#include "envs/fom_env.h"

using namespace crl;

int main() {
  auto scale = bench::Scale::fromEnv();
  const int episodes = scale.episodes(600);
  std::printf("== Fig. 7: FoM optimization (RF PA), %d episodes per RL method ==\n"
              "(paper: 3.5e3 episodes, 6 seeds)\n\n", episodes);

  util::CsvWriter results(scale.path("fom_results.csv"), {"method", "fom_fine"});
  util::TextTable table({"method", "best FoM (fine)", "paper"});
  const char* paperVals[] = {"3.25", "3.18", "2.92", "2.81"};

  int idx = 0;
  for (auto kind : bench::fig3Methods()) {
    circuit::GanRfPa pa;
    envs::FomEnv env(pa, {.maxSteps = 30, .fidelity = circuit::Fidelity::Coarse});
    util::Rng rng(300 + static_cast<std::uint64_t>(idx));
    auto policy = core::makePolicy(kind, env, rng);
    rl::PpoTrainer trainer(env, *policy, {}, util::Rng(31 + static_cast<std::uint64_t>(idx)));

    double bestCoarseFom = -1e18;
    std::vector<double> bestParams = pa.designSpace().midpoint();
    util::CsvWriter curve(
        scale.path(std::string("fig7_curve_") + core::policyKindName(kind) + ".csv"),
        {"episode", "mean_reward"});
    util::Ema ema(0.05);
    trainer.train(episodes, [&](const rl::EpisodeStats& s) {
      ema.update(s.episodeReward);
      if (s.episode % 20 == 0)
        curve.writeRow(std::vector<double>{static_cast<double>(s.episode), ema.value()});
      if (env.bestFom() > bestCoarseFom) {
        bestCoarseFom = env.bestFom();
        bestParams = env.bestParams();
      }
    });

    // Re-measure the best design in the fine environment (deployment).
    auto fine = pa.measureAt(bestParams, circuit::Fidelity::Fine);
    const double fom = fine.valid ? envs::fomOf(fine.specs) : 0.0;
    results.writeRow(std::vector<std::string>{core::policyKindName(kind),
                                              util::TextTable::num(fom, 5)});
    table.addRow({core::policyKindName(kind), util::TextTable::num(fom, 4),
                  paperVals[idx]});
    std::printf("%-12s best fine FoM %.3f (eff %.3f, pout %.3f)\n",
                core::policyKindName(kind), fom, fine.specs[0], fine.specs[1]);
    std::fflush(stdout);
    ++idx;
  }

  // Optimization baselines on the fine simulator.
  {
    circuit::GanRfPa pa;
    util::Rng rng(91);
    baselines::GaConfig gaCfg;
    gaCfg.stopAtTarget = false;
    baselines::GeneticAlgorithm ga(gaCfg);
    auto gaRes = ga.optimize(pa, circuit::Fidelity::Fine, baselines::fomObjective(), rng);
    results.writeRow(std::vector<std::string>{"GA", util::TextTable::num(gaRes.bestObjective, 5)});
    table.addRow({"GA", util::TextTable::num(gaRes.bestObjective, 4), "2.53"});
    std::printf("%-12s best fine FoM %.3f (%d sims)\n", "GA", gaRes.bestObjective,
                gaRes.evaluations);

    baselines::BoConfig boCfg;
    boCfg.stopAtTarget = false;
    baselines::BayesianOptimization bo(boCfg);
    auto boRes = bo.optimize(pa, circuit::Fidelity::Fine, baselines::fomObjective(), rng);
    results.writeRow(std::vector<std::string>{"BO", util::TextTable::num(boRes.bestObjective, 5)});
    table.addRow({"BO", util::TextTable::num(boRes.bestObjective, 4), "2.61"});
    std::printf("%-12s best fine FoM %.3f (%d sims)\n", "BO", boRes.bestObjective,
                boRes.evaluations);
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("\nFoM results written to %s/fom_results.csv\n", scale.outDir.c_str());
  return 0;
}
