// Figure 5: deployment examples — a trained GCN-FC policy walks the
// intermediate specifications to one target spec group per circuit.
// Paper's targets: Op-Amp (G=350, B=1.8e7 Hz, PM=55 deg, P=4e-3 W);
// RF PA (Pout=2.5 W, E=57%). Reuses the policies saved by the Fig. 3
// harnesses when present, otherwise trains a fresh one.
#include "harness.h"

#include "circuit/opamp.h"
#include "circuit/rfpa.h"

using namespace crl;

namespace {

std::unique_ptr<core::MultimodalPolicy> obtainPolicy(
    rl::Env& trainEnv, const std::string& artifact, int trainEpisodes,
    const bench::Scale& scale) {
  util::Rng rng(42);
  auto policy = core::makePolicy(core::PolicyKind::GcnFc, trainEnv, rng);
  auto params = policy->parameters();
  nn::ParamAdapter adapter = [&policy](std::vector<linalg::Mat>& m) {
    return policy->adaptLegacyParameterMats(m);  // legacy per-head GAT artifacts
  };
  if (nn::loadParametersDetailed(scale.path(artifact), params, nullptr, adapter) ==
      nn::LoadResult::Ok) {
    std::printf("(loaded trained policy from %s)\n", scale.path(artifact).c_str());
    return policy;
  }
  std::printf("(no artifact %s; training GCN-FC for %d episodes)\n", artifact.c_str(),
              trainEpisodes);
  rl::PpoTrainer trainer(trainEnv, *policy, {}, util::Rng(7));
  trainer.train(trainEpisodes);
  return policy;
}

void printTrajectory(const core::DeploymentResult& r,
                     const std::vector<std::string>& specNames,
                     const std::vector<double>& target) {
  std::printf("target:");
  for (std::size_t i = 0; i < specNames.size(); ++i)
    std::printf("  %s=%.4g", specNames[i].c_str(), target[i]);
  std::printf("\nreached=%s in %d steps\n", r.success ? "yes" : "no", r.steps);
  util::TextTable table([&] {
    std::vector<std::string> hdr{"step"};
    for (const auto& n : specNames) hdr.push_back(n);
    return hdr;
  }());
  for (std::size_t t = 0; t < r.specTrajectory.size(); ++t) {
    std::vector<std::string> row{std::to_string(t)};
    for (double v : r.specTrajectory[t]) row.push_back(util::TextTable::num(v, 4));
    table.addRow(row);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  auto scale = bench::Scale::fromEnv();
  std::printf("== Fig. 5: deployment examples (GCN-FC policy) ==\n\n");

  {
    std::printf("-- Two-stage Op-Amp --\n");
    circuit::TwoStageOpAmp amp;
    envs::SizingEnv env(amp, {.maxSteps = 50});
    auto policy = obtainPolicy(env, "policy_opamp_GCN-FC.bin",
                               scale.episodes(1800), scale);
    std::vector<double> target{350.0, 1.8e7, 55.0, 4e-3};
    auto out = bench::deployWithRestarts(env, *policy, target, /*baseSeed=*/3,
                                         /*maxRestarts=*/5);
    std::printf("(attempt %d of <=5; %d cumulative steps)\n", out.attempts,
                out.totalSteps);
    printTrajectory(out.result, {"gain", "ugbw", "pm", "power"}, target);
  }
  std::printf("\n");
  {
    std::printf("-- GaN RF PA (deployed in the fine environment) --\n");
    circuit::GanRfPa pa;
    envs::SizingEnv trainEnv(pa, {.maxSteps = 30, .fidelity = circuit::Fidelity::Coarse});
    envs::SizingEnv fineEnv(pa, {.maxSteps = 30, .fidelity = circuit::Fidelity::Fine});
    auto policy = obtainPolicy(trainEnv, "policy_rfpa_GCN-FC.bin",
                               scale.episodes(1000), scale);
    std::vector<double> target{0.57, 2.5};
    auto out = bench::deployWithRestarts(fineEnv, *policy, target, /*baseSeed=*/5,
                                         /*maxRestarts=*/5);
    std::printf("(attempt %d of <=5; %d cumulative steps)\n", out.attempts,
                out.totalSteps);
    printTrajectory(out.result, {"efficiency", "pout"}, target);
  }
  return 0;
}
