// Table 2: comparison summary of all design-automation methods —
// P2S design accuracy and mean # of design steps (both circuits) plus the
// RF-PA FoM. RL policies are reloaded from the Fig. 3 artifacts when
// available (run fig3_* first; this binary trains reduced-budget policies
// otherwise). FoM values come from crl_artifacts/fom_results.csv written by
// fig7_fom, when present.
#include "harness.h"

#include <fstream>
#include <map>

#include "baselines/optimizers.h"
#include "baselines/supervised.h"
#include "circuit/opamp.h"
#include "circuit/rfpa.h"
#include "util/strings.h"

using namespace crl;

namespace {

struct MethodRow {
  std::string name;
  std::string accOpamp = "-";
  std::string stepsOpamp = "-";
  std::string accRfpa = "-";
  std::string stepsRfpa = "-";
  std::string fom = "-";
};

std::map<std::string, std::string> loadFomResults(const bench::Scale& scale) {
  std::map<std::string, std::string> out;
  std::ifstream in(scale.path("fom_results.csv"));
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      first = false;
      continue;
    }
    auto parts = util::split(line, ',');
    if (parts.size() == 2) out[parts[0]] = parts[1];
  }
  return out;
}

/// Train (or reload) an RL policy and evaluate deployment accuracy.
core::AccuracyReport rlReport(core::PolicyKind kind, circuit::Benchmark& benchRef,
                              bool isRfpa, const bench::Scale& scale,
                              const std::string& artifact, int trainEpisodes,
                              int evalEpisodes) {
  envs::SizingEnvConfig trainCfg{.maxSteps = isRfpa ? 30 : 50,
                                 .fidelity = isRfpa ? circuit::Fidelity::Coarse
                                                    : circuit::Fidelity::Fine};
  envs::SizingEnv trainEnv(benchRef, trainCfg);
  util::Rng rng(42);
  auto policy = core::makePolicy(kind, trainEnv, rng);
  auto params = policy->parameters();
  nn::ParamAdapter adapter = [&policy](std::vector<linalg::Mat>& m) {
    return policy->adaptLegacyParameterMats(m);  // legacy per-head GAT artifacts
  };
  if (!artifact.empty() &&
      nn::loadParametersDetailed(scale.path(artifact), params, nullptr, adapter) ==
          nn::LoadResult::Ok) {
    // reuse trained policy
  } else {
    rl::PpoTrainer trainer(trainEnv, *policy, {}, util::Rng(7));
    trainer.train(trainEpisodes);
  }
  envs::SizingEnvConfig evalCfg = trainCfg;
  evalCfg.fidelity = circuit::Fidelity::Fine;  // deployment fidelity
  envs::SizingEnv evalEnv(benchRef, evalCfg);
  util::Rng evalRng(5150);
  return core::evaluateAccuracy(evalEnv, *policy, evalEpisodes, evalRng);
}

}  // namespace

int main() {
  auto scale = bench::Scale::fromEnv();
  const int evalEpisodes = std::max(20, static_cast<int>(50 * scale.scale));
  const int optRuns = std::max(3, static_cast<int>(8 * scale.scale));
  std::printf("== Table 2: comparison of design-automation methods ==\n"
              "(deployment over %d sampled spec groups; GA/BO over %d groups;\n"
              " paper used 200 RL deployments and 30 GA/BO groups)\n\n",
              evalEpisodes, optRuns);

  std::vector<MethodRow> rows;
  auto fom = loadFomResults(scale);

  // --- optimization methods -------------------------------------------
  for (const char* m : {"GA", "BO"}) {
    MethodRow row;
    row.name = m;
    for (int circuitIdx = 0; circuitIdx < 2; ++circuitIdx) {
      std::unique_ptr<circuit::Benchmark> bench;
      if (circuitIdx == 0)
        bench = std::make_unique<circuit::TwoStageOpAmp>();
      else
        bench = std::make_unique<circuit::GanRfPa>();
      util::Rng rng(7 + circuitIdx);
      int succ = 0;
      util::RunningStats steps;
      for (int r = 0; r < optRuns; ++r) {
        auto target = bench->specSpace().sample(rng);
        auto obj = baselines::p2sObjective(bench->specSpace(), target);
        baselines::OptResult res;
        if (std::string(m) == "GA") {
          res = baselines::GeneticAlgorithm().optimize(*bench, circuit::Fidelity::Fine,
                                                       obj, rng);
        } else {
          res = baselines::BayesianOptimization().optimize(*bench, circuit::Fidelity::Fine,
                                                           obj, rng);
        }
        if (res.reachedTarget) {
          ++succ;
          steps.add(res.stepsToTarget);
        } else {
          steps.add(res.evaluations);
        }
      }
      std::string acc = util::TextTable::num(100.0 * succ / optRuns, 3) + "%";
      std::string st = util::TextTable::num(steps.mean(), 3);
      if (circuitIdx == 0) {
        row.accOpamp = acc;
        row.stepsOpamp = st;
      } else {
        row.accRfpa = acc;
        row.stepsRfpa = st;
      }
      std::printf("%s %s done\n", m, circuitIdx == 0 ? "opamp" : "rfpa");
      std::fflush(stdout);
    }
    if (fom.count(row.name)) row.fom = fom[row.name];
    rows.push_back(row);
  }

  // --- supervised learning --------------------------------------------
  {
    MethodRow row;
    row.name = "SL [8]";
    circuit::TwoStageOpAmp amp;
    baselines::SupervisedConfig cfg;
    cfg.datasetSize = std::max(300, static_cast<int>(1500 * scale.scale));
    baselines::SupervisedSizer sl(amp, cfg, util::Rng(3));
    sl.train();
    util::Rng rng(11);
    int succ = 0;
    for (int i = 0; i < evalEpisodes; ++i)
      succ += sl.designMeets(amp.specSpace().sample(rng)) ? 1 : 0;
    row.accOpamp = util::TextTable::num(100.0 * succ / evalEpisodes, 3) + "%";
    row.stepsOpamp = "1";
    row.stepsRfpa = "1";
    row.fom = "N/A";
    rows.push_back(row);
    std::printf("SL done\n");
    std::fflush(stdout);
  }

  // --- RL methods -------------------------------------------------------
  struct RlSpec {
    core::PolicyKind kind;
    const char* label;
    const char* artifactOpamp;
    const char* artifactRfpa;
  };
  const RlSpec rlSpecs[] = {
      {core::PolicyKind::BaselineA, "RL Baseline A [10]", "", ""},
      {core::PolicyKind::BaselineB, "RL Baseline B [11]", "", ""},
      {core::PolicyKind::GcnFc, "Ours GCN-FC", "policy_opamp_GCN-FC.bin",
       "policy_rfpa_GCN-FC.bin"},
      {core::PolicyKind::GatFc, "Ours GAT-FC", "policy_opamp_GAT-FC.bin",
       "policy_rfpa_GAT-FC.bin"},
  };
  for (const auto& spec : rlSpecs) {
    MethodRow row;
    row.name = spec.label;
    {
      circuit::TwoStageOpAmp amp;
      auto rep = rlReport(spec.kind, amp, false, scale, spec.artifactOpamp,
                          scale.episodes(1800), evalEpisodes);
      row.accOpamp = util::TextTable::num(100.0 * rep.accuracy, 3) + "%";
      row.stepsOpamp = util::TextTable::num(
          rep.meanStepsSuccess > 0 ? rep.meanStepsSuccess : rep.meanSteps, 3);
    }
    {
      circuit::GanRfPa pa;
      auto rep = rlReport(spec.kind, pa, true, scale, spec.artifactRfpa,
                          scale.episodes(1000), std::max(10, evalEpisodes / 3));
      row.accRfpa = util::TextTable::num(100.0 * rep.accuracy, 3) + "%";
      row.stepsRfpa = util::TextTable::num(
          rep.meanStepsSuccess > 0 ? rep.meanStepsSuccess : rep.meanSteps, 3);
    }
    if (fom.count(core::policyKindName(spec.kind))) row.fom = fom[core::policyKindName(spec.kind)];
    rows.push_back(row);
    std::printf("%s done\n", spec.label);
    std::fflush(stdout);
  }

  std::printf("\n");
  util::TextTable table({"method", "opamp accuracy", "opamp steps", "rfpa accuracy",
                         "rfpa steps", "FoM (PA)"});
  for (const auto& r : rows)
    table.addRow({r.name, r.accOpamp, r.stepsOpamp, r.accRfpa, r.stepsRfpa, r.fom});
  table.print(std::cout);
  std::printf(
      "\nPaper (Table 2): GA 76.7%% @370/389 sims, BO 83.7%% @86/105, SL 79%% @1,\n"
      "  A 92%% @27/23, B 84-87%% @32/25, GCN-FC 98%% @24/19 FoM 3.18,\n"
      "  GAT-FC 99%% @21/16 FoM 3.25.\n");
  return 0;
}
