#pragma once
// Shared infrastructure for the figure/table reproduction harnesses.
//
// Scale controls (environment variables):
//   CRL_SCALE  — multiplies episode budgets (default 1.0; the paper's full
//                budgets are ~10x the defaults used here, sized for a
//                single-core container run).
//   CRL_SEEDS  — number of random seeds per RL method (default 1; paper: 6).
//   CRL_OUT    — output directory for CSV series + policy artifacts
//                (default ./crl_artifacts).
//   CRL_SEED_WORKERS — run independent seeds concurrently across a thread
//                pool (default 1 = serial). Per-seed results are identical
//                to a serial run for any worker count.
//   CRL_SPICE_WORKERS — workers for the in-evaluation simulation session
//                (spice::SimSession::workersFromEnv; default 1). Harnesses
//                only attach sessions when seeds run serially — the two
//                parallelism axes do not nest.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <initializer_list>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/deploy.h"
#include "core/policies.h"
#include "envs/sizing_env.h"
#include "nn/serialize.h"
#include "rl/ppo.h"
#include "spice/session.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace crl::bench {

/// Machine-readable bench output (`--json` flag): benches record flat
/// string-field + value rows while printing their human tables, and a JSON
/// array is emitted to stdout at the end, so the perf trajectory
/// (bench_batched_update, bench_parallel_rollout, ...) can be collected by
/// scripts/CI without scraping the tables. In `--json` mode the human
/// tables go to stderr (write them to `tableStream()`), keeping stdout
/// pipeable straight into `jq`.
class BenchJson {
 public:
  /// True when `--json` appears in the arguments.
  static bool flagged(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
      if (std::string(argv[i]) == "--json") return true;
    return false;
  }

  explicit BenchJson(bool enabled) : enabled_(enabled) {}
  ~BenchJson() { flush(); }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  bool enabled() const { return enabled_; }

  /// Where the human-readable tables belong: stderr in --json mode (stdout
  /// stays valid JSON), stdout otherwise.
  std::FILE* tableStream() const { return enabled_ ? stderr : stdout; }

  /// Append one record: string fields plus the measured value.
  void record(std::initializer_list<std::pair<const char*, std::string>> fields,
              double value) {
    if (!enabled_) return;
    std::string row = "  {";
    for (const auto& f : fields) {
      row += '"';
      row += f.first;
      row += "\": \"";
      row += f.second;
      row += "\", ";
    }
    char num[64];
    std::snprintf(num, sizeof num, "%.9g", value);
    row += "\"value\": ";
    row += num;
    row += '}';
    rows_.push_back(std::move(row));
  }

  /// Print the accumulated array once (also called by the destructor).
  void flush() {
    if (!enabled_ || flushed_) return;
    flushed_ = true;
    std::printf("[\n");
    for (std::size_t i = 0; i < rows_.size(); ++i)
      std::printf("%s%s\n", rows_[i].c_str(), i + 1 == rows_.size() ? "" : ",");
    std::printf("]\n");
  }

 private:
  bool enabled_ = false;
  bool flushed_ = false;
  std::vector<std::string> rows_;
};

struct Scale {
  double scale = 1.0;
  int seeds = 1;
  std::string outDir = "crl_artifacts";

  static Scale fromEnv() {
    Scale s;
    if (const char* v = std::getenv("CRL_SCALE")) s.scale = std::atof(v);
    if (const char* v = std::getenv("CRL_SEEDS")) s.seeds = std::atoi(v);
    if (const char* v = std::getenv("CRL_OUT")) s.outDir = v;
    std::filesystem::create_directories(s.outDir);
    return s;
  }
  int episodes(int base) const { return std::max(50, static_cast<int>(base * scale)); }
  std::string path(const std::string& file) const { return outDir + "/" + file; }
};

/// Wall-clock seconds since t0 (shared bench timing helper).
inline double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// CRL_SEED_WORKERS knob (see header comment).
inline std::size_t seedWorkersFromEnv() {
  return util::ThreadPool::workersFromEnv("CRL_SEED_WORKERS");
}

/// Run fn(seed) for seeds [0, n) — in order on the calling thread, or fanned
/// across a thread pool when workers > 1. Each seed's work must be fully
/// self-contained (own benchmark, env, policy, RNGs) and deposit its results
/// into per-seed slots; then the outcome is identical to the serial loop for
/// any worker count, and the multi-seed sweep is embarrassingly parallel.
inline void forEachSeed(int n, std::size_t workers, const std::function<void(int)>& fn) {
  if (workers < 2 || n < 2) {
    for (int s = 0; s < n; ++s) fn(s);
    return;
  }
  util::ThreadPool pool(std::min<std::size_t>(workers, static_cast<std::size_t>(n)));
  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) futs.push_back(pool.submit([&fn, s]() { fn(s); }));
  for (auto& f : futs) f.wait();
  for (auto& f : futs) f.get();
}

/// Training-curve sample points (Fig. 3 / Fig. 7 columns).
struct CurvePoint {
  int episode = 0;
  double meanReward = 0.0;     // EMA-smoothed episode reward
  double meanLength = 0.0;     // EMA-smoothed episode length
  double deployAccuracy = -1;  // -1 where not evaluated
};

struct TrainOutcome {
  std::vector<CurvePoint> curve;
  core::AccuracyReport finalAccuracy;
};

/// Train one agent and sample its curves. evalEnv may differ from the
/// training env (transfer learning evaluates in the fine environment).
inline TrainOutcome trainWithCurves(rl::Env& trainEnv, rl::Env& evalEnv,
                                    core::MultimodalPolicy& policy, int episodes,
                                    int evalEvery, int evalEpisodes,
                                    std::uint64_t seed, rl::PpoConfig ppo = {}) {
  TrainOutcome out;
  util::Ema rewardEma(0.05), lenEma(0.05);
  rl::PpoTrainer trainer(trainEnv, policy, ppo, util::Rng(seed));
  util::Rng evalRng(seed + 9001);

  trainer.train(episodes, [&](const rl::EpisodeStats& s) {
    rewardEma.update(s.episodeReward);
    lenEma.update(s.episodeLength);
    const bool evalNow = (s.episode % evalEvery == 0) || s.episode == episodes;
    CurvePoint p;
    p.episode = s.episode;
    p.meanReward = rewardEma.value();
    p.meanLength = lenEma.value();
    if (evalNow) {
      auto rep = core::evaluateAccuracy(evalEnv, policy, evalEpisodes, evalRng);
      p.deployAccuracy = rep.accuracy;
      out.curve.push_back(p);
    } else if (s.episode % std::max(1, evalEvery / 10) == 0) {
      out.curve.push_back(p);
    }
  });
  util::Rng finalRng(seed + 5555);
  out.finalAccuracy = core::evaluateAccuracy(evalEnv, policy, 2 * evalEpisodes, finalRng);
  return out;
}

inline void writeCurveCsv(const std::string& path, const std::string& method, int seed,
                          const std::vector<CurvePoint>& curve) {
  util::CsvWriter csv(path, {"method", "seed", "episode", "mean_reward",
                             "mean_length", "deploy_accuracy"});
  for (const auto& p : curve) {
    csv.writeRow(std::vector<std::string>{method, std::to_string(seed),
                                          std::to_string(p.episode),
                                          util::TextTable::num(p.meanReward, 6),
                                          util::TextTable::num(p.meanLength, 6),
                                          util::TextTable::num(p.deployAccuracy, 6)});
  }
}

/// Deployment with random restarts: re-run from fresh random initial
/// sizings until the target is reached (or the budget is exhausted).
/// Returns the successful attempt's result (or the last attempt's) plus the
/// cumulative step count across attempts — the honest "search effort".
struct RestartOutcome {
  core::DeploymentResult result;
  int attempts = 0;
  int totalSteps = 0;
};

inline RestartOutcome deployWithRestarts(rl::Env& env, const core::MultimodalPolicy& policy,
                                         const std::vector<double>& target,
                                         std::uint64_t baseSeed, int maxRestarts,
                                         bool recordTrajectory = true) {
  RestartOutcome out;
  for (int k = 0; k < maxRestarts; ++k) {
    util::Rng rng(baseSeed + static_cast<std::uint64_t>(k) * 131);
    out.result = core::runDeployment(env, policy, target, rng,
                                     {.recordTrajectory = recordTrajectory});
    ++out.attempts;
    out.totalSteps += out.result.steps;
    if (out.result.success) break;
  }
  return out;
}

inline const std::vector<core::PolicyKind>& fig3Methods() {
  static const std::vector<core::PolicyKind> kinds{
      core::PolicyKind::GatFc, core::PolicyKind::GcnFc, core::PolicyKind::BaselineA,
      core::PolicyKind::BaselineB};
  return kinds;
}

}  // namespace crl::bench
