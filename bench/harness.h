#pragma once
// Shared infrastructure for the figure/table reproduction harnesses.
//
// Scale controls (environment variables):
//   CRL_SCALE  — multiplies episode budgets (default 1.0; the paper's full
//                budgets are ~10x the defaults used here, sized for a
//                single-core container run).
//   CRL_SEEDS  — number of random seeds per RL method (default 1; paper: 6).
//   CRL_OUT    — output directory for CSV series + policy artifacts
//                (default ./crl_artifacts).
//   CRL_SEED_WORKERS — run independent seeds concurrently across a thread
//                pool (default 1 = serial). Per-seed results are identical
//                to a serial run for any worker count.
//   CRL_SPICE_WORKERS — workers for the in-evaluation simulation session
//                (spice::SimSession::workersFromEnv; default 1). Harnesses
//                only attach sessions when seeds run serially — the two
//                parallelism axes do not nest.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <initializer_list>
#include <iostream>
#include <new>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "core/deploy.h"
#include "core/policies.h"
#include "envs/sizing_env.h"
#include "nn/serialize.h"
#include "rl/ppo.h"
#include "spice/session.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace crl::bench {

// ---- allocation accounting ------------------------------------------------
//
// Every bench binary that includes this header replaces the global operator
// new/delete with counting wrappers (each bench target is a single TU, so
// the replacement is well-formed and applies to the whole binary, static
// library included). The counters feed the bytes/allocs-per-minibatch rows
// of bench_batched_update and bench_arena; define CRL_BENCH_NO_ALLOC_HOOK
// before including harness.h to opt a bench out.

namespace alloc_detail {
inline std::atomic<std::uint64_t> gAllocCount{0};
inline std::atomic<std::uint64_t> gAllocBytes{0};
}  // namespace alloc_detail

/// Cumulative allocation counters since process start.
struct AllocCounters {
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
};

inline AllocCounters allocSnapshot() {
  return {alloc_detail::gAllocCount.load(std::memory_order_relaxed),
          alloc_detail::gAllocBytes.load(std::memory_order_relaxed)};
}

/// Allocations/bytes between construction and delta().
class AllocScope {
 public:
  AllocScope() : start_(allocSnapshot()) {}
  AllocCounters delta() const {
    AllocCounters now = allocSnapshot();
    return {now.allocs - start_.allocs, now.bytes - start_.bytes};
  }

 private:
  AllocCounters start_;
};

/// Peak resident set size in MiB (0 where unsupported).
inline double peakRssMib() {
#if defined(__unix__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0)
    return static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss is KiB on Linux
#endif
  return 0.0;
}

/// Machine-readable bench output (`--json` flag): benches record flat
/// string-field + value rows while printing their human tables, and a JSON
/// object `{"meta": {...}, "rows": [...]}` is emitted to stdout at the end,
/// so the perf trajectory (bench_batched_update, bench_parallel_rollout,
/// ...) can be collected by scripts/CI without scraping the tables. The
/// meta block makes checked-in BENCH_*.json files self-describing: git SHA
/// and build type (baked in at configure time via CRL_GIT_SHA /
/// CRL_BUILD_TYPE), hostname, UTC timestamp, and the worker/scale env knobs
/// in effect. In `--json` mode the human tables go to stderr (write them to
/// `tableStream()`), keeping stdout pipeable straight into `jq` (rows:
/// `jq .rows[]`).
class BenchJson {
 public:
  /// True when `--json` appears in the arguments.
  static bool flagged(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
      if (std::string(argv[i]) == "--json") return true;
    return false;
  }

  explicit BenchJson(bool enabled) : enabled_(enabled) {}
  ~BenchJson() { flush(); }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  bool enabled() const { return enabled_; }

  /// Where the human-readable tables belong: stderr in --json mode (stdout
  /// stays valid JSON), stdout otherwise.
  std::FILE* tableStream() const { return enabled_ ? stderr : stdout; }

  /// Append one record: string fields plus the measured value.
  void record(std::initializer_list<std::pair<const char*, std::string>> fields,
              double value) {
    if (!enabled_) return;
    std::string row = "  {";
    for (const auto& f : fields) {
      row += '"';
      row += f.first;
      row += "\": \"";
      row += f.second;
      row += "\", ";
    }
    char num[64];
    std::snprintf(num, sizeof num, "%.9g", value);
    row += "\"value\": ";
    row += num;
    row += '}';
    rows_.push_back(std::move(row));
  }

  /// Print the accumulated object once (also called by the destructor).
  void flush() {
    if (!enabled_ || flushed_) return;
    flushed_ = true;
    std::printf("{\n\"meta\": %s,\n\"rows\": [\n", metaJson().c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i)
      std::printf("%s%s\n", rows_[i].c_str(), i + 1 == rows_.size() ? "" : ",");
    std::printf("]\n}\n");
  }

 private:
  /// Run provenance: who/where/when/how the numbers were produced. Values
  /// are plain identifiers (SHAs, hostnames, env-knob strings) — no JSON
  /// metacharacters in practice, but escape quotes/backslashes defensively.
  static std::string metaJson() {
    auto quote = [](const std::string& s) {
      std::string out = "\"";
      for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
      }
      out += '"';
      return out;
    };
    auto envOr = [](const char* var, const char* fallback) {
      const char* v = std::getenv(var);
      return std::string(v && *v ? v : fallback);
    };
#ifdef CRL_GIT_SHA
    const std::string gitSha = CRL_GIT_SHA;
#else
    const std::string gitSha = "unknown";
#endif
#ifdef CRL_BUILD_TYPE
    const std::string buildType = CRL_BUILD_TYPE;
#else
    const std::string buildType = "unknown";
#endif
    std::string hostname = "unknown";
#if defined(__unix__)
    char hostBuf[256] = {0};
    if (gethostname(hostBuf, sizeof hostBuf - 1) == 0 && hostBuf[0] != '\0')
      hostname = hostBuf;
#endif
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
#if defined(__unix__)
    gmtime_r(&now, &utc);
#else
    utc = *std::gmtime(&now);
#endif
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);

    std::string meta = "{";
    meta += "\"schema\": \"crl.bench/v2\", ";
    meta += "\"git_sha\": " + quote(gitSha) + ", ";
    meta += "\"build_type\": " + quote(buildType) + ", ";
    meta += "\"hostname\": " + quote(hostname) + ", ";
    meta += "\"timestamp\": " + quote(stamp) + ", ";
    meta += "\"env\": {";
    meta += "\"CRL_SCALE\": " + quote(envOr("CRL_SCALE", "1")) + ", ";
    meta += "\"CRL_SEEDS\": " + quote(envOr("CRL_SEEDS", "1")) + ", ";
    meta += "\"CRL_SEED_WORKERS\": " + quote(envOr("CRL_SEED_WORKERS", "1")) + ", ";
    meta += "\"CRL_SPICE_WORKERS\": " + quote(envOr("CRL_SPICE_WORKERS", "1"));
    meta += "}}";
    return meta;
  }

  bool enabled_ = false;
  bool flushed_ = false;
  std::vector<std::string> rows_;
};

struct Scale {
  double scale = 1.0;
  int seeds = 1;
  std::string outDir = "crl_artifacts";

  static Scale fromEnv() {
    Scale s;
    if (const char* v = std::getenv("CRL_SCALE")) s.scale = std::atof(v);
    if (const char* v = std::getenv("CRL_SEEDS")) s.seeds = std::atoi(v);
    if (const char* v = std::getenv("CRL_OUT")) s.outDir = v;
    std::filesystem::create_directories(s.outDir);
    return s;
  }
  int episodes(int base) const { return std::max(50, static_cast<int>(base * scale)); }
  std::string path(const std::string& file) const { return outDir + "/" + file; }
};

// ---- update-path bench plumbing ------------------------------------------
// Shared by bench_batched_update and bench_arena so their buffers, warmup
// policy, and per-minibatch cost accounting cannot drift apart.

/// Roll `policy` in `env` under a NoGradGuard until `transitions` transitions
/// are buffered (fixed env/action RNG streams, so every bench sees the same
/// buffer for a given policy).
inline std::vector<rl::Transition> collectTransitions(
    rl::Env& env, const core::MultimodalPolicy& policy, int transitions,
    int maxSteps) {
  std::vector<rl::Transition> buffer;
  buffer.reserve(static_cast<std::size_t>(transitions));
  util::Rng envRng(7), actRng(13);
  rl::Observation obs = env.reset(envRng);
  int age = 0;
  while (static_cast<int>(buffer.size()) < transitions) {
    rl::Transition tr;
    rl::SampledAction act;
    {
      nn::NoGradGuard inference;
      rl::PolicyOutput out = policy.forward(obs);
      act = rl::sampleAction(out.logits.value(), actRng);
      tr.obs = obs;
      tr.columns = act.columns;
      tr.logProb = act.logProb;
      tr.value = out.value.item();
    }
    rl::StepResult res = env.step(act.actions);
    ++age;
    tr.reward = res.reward;
    const bool terminal = res.done || age >= maxSteps;
    tr.terminal = terminal;
    buffer.push_back(std::move(tr));
    if (terminal) {
      obs = env.reset(envRng);
      age = 0;
    } else {
      obs = std::move(res.obs);
    }
  }
  return buffer;
}

struct UpdateCost {
  double seconds = 0.0;  ///< per update() call
  double allocsPerMinibatch = 0.0;
  double bytesPerMinibatch = 0.0;
};

/// Cost per PpoTrainer::update over `reps` repetitions with a freshly
/// initialized policy of `kind`, after one warmup update (plan caches,
/// arena pool steady state). Allocation counters come from the harness's
/// global operator-new hook.
inline UpdateCost measureUpdateCost(rl::Env& env, core::PolicyKind kind,
                                    std::vector<rl::Transition>& buffer,
                                    rl::PpoConfig cfg, int reps) {
  util::Rng initRng(3);
  auto policy = core::makePolicy(kind, env, initRng);
  rl::PpoTrainer trainer(env, *policy, cfg, util::Rng(11));
  trainer.update(buffer);  // warmup
  const std::size_t mb = static_cast<std::size_t>(cfg.minibatchSize);
  const std::size_t minibatchesPerUpdate =
      static_cast<std::size_t>(cfg.updateEpochs) *
      ((buffer.size() + mb - 1) / mb);
  AllocScope allocs;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) trainer.update(buffer);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const AllocCounters d = allocs.delta();
  const double mbCount =
      static_cast<double>(minibatchesPerUpdate) * static_cast<double>(reps);
  return {dt / reps, static_cast<double>(d.allocs) / mbCount,
          static_cast<double>(d.bytes) / mbCount};
}

/// Wall-clock seconds since t0 (shared bench timing helper).
inline double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// CRL_SEED_WORKERS knob (see header comment).
inline std::size_t seedWorkersFromEnv() {
  return util::ThreadPool::workersFromEnv("CRL_SEED_WORKERS");
}

/// Plain integer env knob (CRL_CHECKPOINT_EVERY, ...): unset or unparsable
/// returns `fallback`.
inline int intFromEnv(const char* var, int fallback) {
  const char* v = std::getenv(var);
  if (!v || *v == '\0') return fallback;
  char* end = nullptr;
  const long x = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int>(x);
}

/// Run fn(seed) for seeds [0, n) — in order on the calling thread, or fanned
/// across a thread pool when workers > 1. Each seed's work must be fully
/// self-contained (own benchmark, env, policy, RNGs) and deposit its results
/// into per-seed slots; then the outcome is identical to the serial loop for
/// any worker count, and the multi-seed sweep is embarrassingly parallel.
inline void forEachSeed(int n, std::size_t workers, const std::function<void(int)>& fn) {
  if (workers < 2 || n < 2) {
    for (int s = 0; s < n; ++s) fn(s);
    return;
  }
  util::ThreadPool pool(std::min<std::size_t>(workers, static_cast<std::size_t>(n)));
  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) futs.push_back(pool.submit([&fn, s]() { fn(s); }));
  for (auto& f : futs) f.wait();
  for (auto& f : futs) f.get();
}

/// Training-curve sample points (Fig. 3 / Fig. 7 columns).
struct CurvePoint {
  int episode = 0;
  double meanReward = 0.0;     // EMA-smoothed episode reward
  double meanLength = 0.0;     // EMA-smoothed episode length
  double deployAccuracy = -1;  // -1 where not evaluated
};

struct TrainOutcome {
  std::vector<CurvePoint> curve;
  core::AccuracyReport finalAccuracy;
};

/// Train one agent and sample its curves. evalEnv may differ from the
/// training env (transfer learning evaluates in the fine environment).
inline TrainOutcome trainWithCurves(rl::Env& trainEnv, rl::Env& evalEnv,
                                    core::MultimodalPolicy& policy, int episodes,
                                    int evalEvery, int evalEpisodes,
                                    std::uint64_t seed, rl::PpoConfig ppo = {}) {
  TrainOutcome out;
  util::Ema rewardEma(0.05), lenEma(0.05);
  rl::PpoTrainer trainer(trainEnv, policy, ppo, util::Rng(seed));
  util::Rng evalRng(seed + 9001);

  trainer.train(episodes, [&](const rl::EpisodeStats& s) {
    rewardEma.update(s.episodeReward);
    lenEma.update(s.episodeLength);
    const bool evalNow = (s.episode % evalEvery == 0) || s.episode == episodes;
    CurvePoint p;
    p.episode = s.episode;
    p.meanReward = rewardEma.value();
    p.meanLength = lenEma.value();
    if (evalNow) {
      auto rep = core::evaluateAccuracy(evalEnv, policy, evalEpisodes, evalRng);
      p.deployAccuracy = rep.accuracy;
      out.curve.push_back(p);
    } else if (s.episode % std::max(1, evalEvery / 10) == 0) {
      out.curve.push_back(p);
    }
  });
  util::Rng finalRng(seed + 5555);
  out.finalAccuracy = core::evaluateAccuracy(evalEnv, policy, 2 * evalEpisodes, finalRng);
  return out;
}

inline void writeCurveCsv(const std::string& path, const std::string& method, int seed,
                          const std::vector<CurvePoint>& curve) {
  util::CsvWriter csv(path, {"method", "seed", "episode", "mean_reward",
                             "mean_length", "deploy_accuracy"});
  for (const auto& p : curve) {
    csv.writeRow(std::vector<std::string>{method, std::to_string(seed),
                                          std::to_string(p.episode),
                                          util::TextTable::num(p.meanReward, 6),
                                          util::TextTable::num(p.meanLength, 6),
                                          util::TextTable::num(p.deployAccuracy, 6)});
  }
}

/// Deployment with random restarts: re-run from fresh random initial
/// sizings until the target is reached (or the budget is exhausted).
/// Returns the successful attempt's result (or the last attempt's) plus the
/// cumulative step count across attempts — the honest "search effort".
struct RestartOutcome {
  core::DeploymentResult result;
  int attempts = 0;
  int totalSteps = 0;
};

inline RestartOutcome deployWithRestarts(rl::Env& env, const core::MultimodalPolicy& policy,
                                         const std::vector<double>& target,
                                         std::uint64_t baseSeed, int maxRestarts,
                                         bool recordTrajectory = true) {
  RestartOutcome out;
  for (int k = 0; k < maxRestarts; ++k) {
    util::Rng rng(baseSeed + static_cast<std::uint64_t>(k) * 131);
    out.result = core::runDeployment(env, policy, target, rng,
                                     {.recordTrajectory = recordTrajectory});
    ++out.attempts;
    out.totalSteps += out.result.steps;
    if (out.result.success) break;
  }
  return out;
}

inline const std::vector<core::PolicyKind>& fig3Methods() {
  static const std::vector<core::PolicyKind> kinds{
      core::PolicyKind::GatFc, core::PolicyKind::GcnFc, core::PolicyKind::BaselineA,
      core::PolicyKind::BaselineB};
  return kinds;
}

}  // namespace crl::bench

#ifndef CRL_BENCH_NO_ALLOC_HOOK
// Counting global allocator (see "allocation accounting" above). The
// replacements live at global scope; each bench executable is one TU, so
// these definitions are the binary's operator new/delete. The nothrow forms
// forward to these via the standard library; the align_val_t forms do NOT
// (libstdc++ implements them over aligned_alloc directly), so over-aligned
// types would escape the counters — none exist on the update path today,
// and the buffers that matter (Mat = std::vector<double>) all route here.
inline void* crlBenchCountedAlloc(std::size_t n) {
  crl::bench::alloc_detail::gAllocCount.fetch_add(1, std::memory_order_relaxed);
  crl::bench::alloc_detail::gAllocBytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n) { return crlBenchCountedAlloc(n); }
void* operator new[](std::size_t n) { return crlBenchCountedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // CRL_BENCH_NO_ALLOC_HOOK
