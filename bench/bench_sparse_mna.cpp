// Sparse-vs-dense MNA solve cost on the generated ladder/mesh fixtures, plus
// the sparse factor-vs-refactor split that the Newton / AC hot loops ride.
//
//   CRL_BENCH_REPS — timed repetitions per point, best-of (default 5)
//   --json         — machine-readable output (bench/harness.h)
//
// What to expect (single core): below the CRL_SPICE_SPARSE_THRESHOLD default
// of 64 unknowns the dense path wins — the paper circuits (10-25 unknowns)
// stay dense, which is why Auto keeps them there. From ~200 unknowns the
// O(n^3) dense factor loses by an order of magnitude, and the sparse
// refactor (numeric-only, reusing the symbolic analysis) runs ~2x faster
// than a cold sparse factor with zero allocations per pass.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "harness.h"
#include "linalg/sparse_lu.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/gen.h"
#include "spice/parser.h"

using namespace crl;

namespace {

std::FILE* tout = stdout;

int repsFromEnv() {
  if (const char* v = std::getenv("CRL_BENCH_REPS")) return std::max(1, std::atoi(v));
  return 5;
}

/// Best-of-reps wall time of fn, in seconds.
double timeBest(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Fixture {
  const char* topology;  // "ladder" | "mesh"
  int n;                 // grid nodes (unknowns = n + 2)
  std::string deck;
};

void benchDcAndAc(const Fixture& f, int reps, bench::BenchJson& json) {
  const std::string size = std::to_string(f.n);
  auto run = [&](linalg::SolverChoice choice, const char* backend) {
    auto deck = spice::parseDeck(f.deck);
    spice::Netlist& net = *deck.netlist;
    spice::DcOptions opt;
    opt.solver = choice;
    spice::DcAnalysis dc(net, opt);
    const double dcSec = timeBest(reps, [&] {
      if (!dc.solve().converged) std::abort();
    });
    spice::DcResult op = dc.solve();
    spice::AcAnalysis ac(net, op.x, choice);
    const double acSec = timeBest(reps, [&] {
      ac.sweep(net.findNode(f.topology[0] == 'l' ? "n1" : "n0_0"), 1e3, 1e7, 3);
    });
    json.record({{"bench", "sparse_mna"},
                 {"workload", std::string(f.topology) + size},
                 {"config", std::string("dc-") + backend},
                 {"unit", "seconds_per_solve"}},
                dcSec);
    json.record({{"bench", "sparse_mna"},
                 {"workload", std::string(f.topology) + size},
                 {"config", std::string("ac-") + backend},
                 {"unit", "seconds_per_sweep"}},
                acSec);
    return std::pair<double, double>(dcSec, acSec);
  };
  const auto [dcDense, acDense] = run(linalg::SolverChoice::ForceDense, "dense");
  const auto [dcSparse, acSparse] = run(linalg::SolverChoice::ForceSparse, "sparse");
  std::fprintf(tout, "%-8s %6d %12.2f %12.2f %7.2fx %12.2f %12.2f %7.2fx\n",
               f.topology, f.n, dcDense * 1e6, dcSparse * 1e6, dcDense / dcSparse,
               acDense * 1e6, acSparse * 1e6, acDense / acSparse);
  json.record({{"bench", "sparse_mna"},
               {"workload", std::string(f.topology) + size},
               {"config", "dc-speedup"},
               {"unit", "ratio"}},
              dcDense / dcSparse);
  json.record({{"bench", "sparse_mna"},
               {"workload", std::string(f.topology) + size},
               {"config", "ac-speedup"},
               {"unit", "ratio"}},
              acDense / acSparse);
}

/// 5-point grid Laplacian assembly (the mesh fixture's matrix shape) for the
/// factor/refactor split, measured below the SPICE layer.
void gridAssembly(int rows, int cols, double scale, linalg::SparseAssembly<double>& a) {
  const auto id = [cols](int r, int c) { return static_cast<std::size_t>(r * cols + c); };
  a.begin(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      a.add(id(r, c), id(r, c), scale * (4.1 + 0.01 * (r + c)));
      if (c + 1 < cols) {
        a.add(id(r, c), id(r, c + 1), -scale);
        a.add(id(r, c + 1), id(r, c), -scale);
      }
      if (r + 1 < rows) {
        a.add(id(r, c), id(r + 1, c), -scale);
        a.add(id(r + 1, c), id(r, c), -scale);
      }
    }
  }
}

void benchRefactor(int rows, int cols, int reps, bench::BenchJson& json) {
  const int n = rows * cols;
  linalg::SparseAssembly<double> a;
  linalg::SparseLu<double> lu;
  gridAssembly(rows, cols, 1.0, a);
  lu.factor(a);

  const double factorSec = timeBest(reps, [&] {
    linalg::SparseLu<double> cold;
    cold.factor(a);
  });
  double scale = 1.0;
  const double refactorSec = timeBest(reps, [&] {
    scale *= 1.0000001;  // new values, same pattern: the Newton re-stamp shape
    gridAssembly(rows, cols, scale, a);
    lu.refactor(a);
  });

  bench::AllocScope scope;
  for (int k = 0; k < 100; ++k) {
    gridAssembly(rows, cols, scale, a);
    lu.refactor(a);
  }
  const double allocsPerRefactor = static_cast<double>(scope.delta().allocs) / 100.0;

  std::fprintf(tout, "%6d %14.2f %14.2f %9.2fx %14.1f\n", n, factorSec * 1e6,
               refactorSec * 1e6, factorSec / refactorSec, allocsPerRefactor);
  const std::string size = std::to_string(n);
  json.record({{"bench", "sparse_mna"}, {"workload", "grid" + size},
               {"config", "factor"}, {"unit", "seconds"}}, factorSec);
  json.record({{"bench", "sparse_mna"}, {"workload", "grid" + size},
               {"config", "refactor"}, {"unit", "seconds"}}, refactorSec);
  json.record({{"bench", "sparse_mna"}, {"workload", "grid" + size},
               {"config", "refactor-speedup"}, {"unit", "ratio"}},
              factorSec / refactorSec);
  json.record({{"bench", "sparse_mna"}, {"workload", "grid" + size},
               {"config", "allocs-per-refactor"}, {"unit", "count"}},
              allocsPerRefactor);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  tout = json.tableStream();
  const int reps = repsFromEnv();

  std::fprintf(tout, "sparse vs dense MNA (best of %d, times in us)\n", reps);
  std::fprintf(tout, "%-8s %6s %12s %12s %8s %12s %12s %8s\n", "topo", "n",
               "dc dense", "dc sparse", "dc spd", "ac dense", "ac sparse",
               "ac spd");
  const Fixture fixtures[] = {
      {"ladder", 20, spice::rcLadderDeck(20)},
      {"ladder", 50, spice::rcLadderDeck(50)},
      {"ladder", 200, spice::rcLadderDeck(200)},
      {"ladder", 500, spice::rcLadderDeck(500)},
      {"mesh", 20, spice::rcMeshDeck(5, 4)},
      {"mesh", 50, spice::rcMeshDeck(10, 5)},
      {"mesh", 200, spice::rcMeshDeck(20, 10)},
      {"mesh", 500, spice::rcMeshDeck(25, 20)},
  };
  for (const Fixture& f : fixtures) benchDcAndAc(f, reps, json);

  std::fprintf(tout, "\nsparse factor vs refactor (grid Laplacian, best of %d)\n",
               reps);
  std::fprintf(tout, "%6s %14s %14s %10s %14s\n", "n", "factor us",
               "refactor us", "speedup", "allocs/refac");
  benchRefactor(5, 4, reps, json);
  benchRefactor(10, 5, reps, json);
  benchRefactor(20, 10, reps, json);
  benchRefactor(25, 20, reps, json);
  benchRefactor(40, 40, reps, json);
  return 0;
}
