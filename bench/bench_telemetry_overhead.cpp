// Telemetry overhead A/B: the cost of the obs:: instrumentation that is
// compiled into every hot path (spice Newton/AC counters, sparse-LU
// telemetry, PPO update spans/histograms) with tracing disabled.
//
// Methodology: each workload runs twice per repetition — once with the
// process-wide metrics kill switch off (obs::setMetricsEnabled(false)),
// once with it on — and the bench reports best-of times for both plus the
// relative overhead. The kill switch short-circuits every counter add,
// gauge set, and histogram observe to a single relaxed atomic load, so the
// "off" leg is the closest in-one-binary stand-in for an uninstrumented
// build; the "on" leg is what every production run pays. Tracing stays in
// its default disabled state (TraceSpan reads one cached bool per scope)
// unless CRL_TRACE is set, in which case the bench warns that it is
// measuring tracing too.
//
//   CRL_BENCH_REPS — timed repetitions per leg, best-of (default 5)
//   --json         — machine-readable output (bench/harness.h)
//
// What to expect (single core): overhead under 2% on every workload. The
// instrumented operations cost microseconds to milliseconds while the
// telemetry per operation is a handful of relaxed fetch_adds on per-thread
// shards (~ns each); the DC workload is the worst case because a whole
// ladder-20 solve is only a few microseconds.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "circuit/opamp.h"
#include "harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/gen.h"
#include "spice/parser.h"

using namespace crl;

namespace {

std::FILE* tout = stdout;

int repsFromEnv() {
  if (const char* v = std::getenv("CRL_BENCH_REPS")) return std::max(1, std::atoi(v));
  return 5;
}

double timeOnce(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct AbResult {
  double secondsOff = 1e300;  ///< best-of, metrics kill switch off
  double secondsOn = 1e300;   ///< best-of, metrics enabled
  double overheadPct() const {
    return 100.0 * (secondsOn - secondsOff) / secondsOff;
  }
};

/// Interleaved A/B: off/on alternate within every repetition so cache and
/// frequency drift hit both legs alike; best-of per leg.
AbResult measure(int reps, const std::function<void()>& fn) {
  AbResult r;
  for (int rep = 0; rep < reps; ++rep) {
    obs::setMetricsEnabled(false);
    r.secondsOff = std::min(r.secondsOff, timeOnce(fn));
    obs::setMetricsEnabled(true);
    r.secondsOn = std::min(r.secondsOn, timeOnce(fn));
  }
  return r;
}

void report(const char* workload, const AbResult& r, bench::BenchJson& json) {
  std::fprintf(tout, "%-20s %14.3f %14.3f %9.2f%%\n", workload,
               r.secondsOff * 1e3, r.secondsOn * 1e3, r.overheadPct());
  json.record({{"bench", "telemetry_overhead"}, {"workload", workload},
               {"config", "metrics-off"}, {"unit", "seconds"}}, r.secondsOff);
  json.record({{"bench", "telemetry_overhead"}, {"workload", workload},
               {"config", "metrics-on"}, {"unit", "seconds"}}, r.secondsOn);
  json.record({{"bench", "telemetry_overhead"}, {"workload", workload},
               {"config", "overhead"}, {"unit", "percent"}}, r.overheadPct());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  tout = json.tableStream();
  const int reps = repsFromEnv();

  if (obs::TraceSink::global().enabled())
    std::fprintf(tout, "WARNING: CRL_TRACE is set — this run measures "
                       "metrics AND tracing overhead.\n");

  std::fprintf(tout, "telemetry overhead, metrics on vs off (best of %d)\n",
               reps);
  std::fprintf(tout, "%-20s %14s %14s %10s\n", "workload", "off ms", "on ms",
               "overhead");

  // DC Newton loop: worst case — a ladder-20 solve is a few microseconds,
  // so the per-solve counters are at their relatively largest.
  {
    auto deck = spice::parseDeck(spice::rcLadderDeck(20));
    spice::DcAnalysis dc(*deck.netlist);
    const AbResult r = measure(reps, [&] {
      for (int k = 0; k < 2000; ++k)
        if (!dc.solve().converged) std::abort();
    });
    report("dc_ladder20", r, json);
  }

  // AC sweep: one counter per frequency point plus a span + histogram
  // observation per sweep.
  {
    auto deck = spice::parseDeck(spice::rcLadderDeck(20));
    spice::Netlist& net = *deck.netlist;
    spice::DcAnalysis dc(net);
    spice::DcResult op = dc.solve();
    spice::AcAnalysis ac(net, op.x);
    const std::size_t probe = net.findNode("n1");
    const AbResult r = measure(reps, [&] {
      for (int k = 0; k < 300; ++k) ac.sweep(probe, 1e3, 1e7, 3);
    });
    report("ac_ladder20", r, json);
  }

  // PPO update: span + counter + latency histogram per update(), loss and
  // entropy gauges per minibatch, on the batched FCNN update (the cheapest
  // update, hence the most overhead-sensitive).
  {
    circuit::TwoStageOpAmp amp;
    envs::SizingEnv env(amp, envs::SizingEnvConfig{.maxSteps = 30});
    util::Rng initRng(3);
    auto policy = core::makePolicy(core::PolicyKind::BaselineA, env, initRng);
    auto buffer = bench::collectTransitions(env, *policy, 128, 30);
    rl::PpoConfig cfg;
    cfg.minibatchSize = 32;
    cfg.updateEpochs = 2;
    rl::PpoTrainer trainer(env, *policy, cfg, util::Rng(11));
    trainer.update(buffer);  // warmup: plan caches, arena steady state
    const AbResult r = measure(reps, [&] { trainer.update(buffer); });
    report("ppo_update_fcnn", r, json);
  }

  obs::setMetricsEnabled(true);
  return 0;
}
