// Simulation-session benchmark: what parallelism INSIDE one evaluation buys.
//
// Two workload families, each at serial (no session) and 1/2/4/8-worker
// sessions:
//   * measure   — full TwoStageOpAmp::measure() latency, where the pooled AC
//     sweep (~65 frequency points) is the dominant cost;
//   * sensitivity / yield / corner — analysis-toolkit throughput, where
//     independent measureAt probes fan out over BenchmarkPool lanes.
//
// Results are bit-identical across all configurations (the session layer's
// parity contract — see tests/spice/test_session_parity.cpp); only the wall
// clock changes. Single-worker sessions must not be slower than the serial
// path beyond noise: they run the same loop through the same workspaces.
//
//   CRL_BENCH_MEASURES   — measure() calls per configuration (default 12)
//   CRL_BENCH_MC_SAMPLES — Monte-Carlo samples per yield run (default 32)
//   --json               — machine-readable output (bench/harness.h)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "circuit/analysis.h"
#include "circuit/opamp.h"
#include "harness.h"
#include "spice/session.h"
#include "util/rng.h"

using namespace crl;

namespace {

using bench::secondsSince;

/// Human-table destination; main() points it at stderr in --json mode.
std::FILE* tout = stdout;

std::vector<double> moderateSizing(const circuit::TwoStageOpAmp& amp) {
  auto p = amp.designSpace().midpoint();
  for (std::size_t i = 0; i < 7; ++i) {
    p[2 * i] = 10.0;
    p[2 * i + 1] = 4.0;
  }
  p[14] = 4.0;
  return amp.designSpace().clamp(p);
}

/// Full measure() latency [ms] over a fixed random sizing sequence.
double measureLatencyMs(spice::SimSession* session, int measures) {
  circuit::TwoStageOpAmp amp;
  amp.setSession(session);
  util::Rng rng(5);
  std::vector<std::vector<double>> sizings;
  sizings.reserve(static_cast<std::size_t>(measures));
  for (int i = 0; i < measures; ++i) sizings.push_back(amp.designSpace().sample(rng));

  amp.measureAt(sizings[0], circuit::Fidelity::Fine);  // warm the workspaces
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& s : sizings) {
    amp.resetSolverState();
    amp.measureAt(s, circuit::Fidelity::Fine);
  }
  return 1e3 * secondsSince(t0) / measures;
}

struct ToolkitRates {
  double sensitivityProbesPerSec = 0.0;
  double yieldSamplesPerSec = 0.0;
  double cornersPerSec = 0.0;
};

ToolkitRates toolkitThroughput(spice::SimSession* session, int mcSamples) {
  circuit::TwoStageOpAmp amp;
  const auto sizing = moderateSizing(amp);

  ToolkitRates rates;
  {
    circuit::SensitivityOptions opt;
    opt.session = session;
    auto t0 = std::chrono::steady_clock::now();
    auto res = circuit::specSensitivity(amp, sizing, opt);
    const double probes = 1.0 + 2.0 * static_cast<double>(amp.designSpace().size());
    rates.sensitivityProbesPerSec = res.valid ? probes / secondsSince(t0) : 0.0;
  }
  {
    circuit::YieldOptions opt;
    opt.samples = mcSamples;
    opt.sigmaFrac = 0.03;
    opt.session = session;
    util::Rng rng(42);
    auto m = amp.measureAt(sizing, circuit::Fidelity::Fine);
    auto t0 = std::chrono::steady_clock::now();
    circuit::monteCarloYield(amp, sizing, m.specs, rng, opt);
    rates.yieldSamplesPerSec = mcSamples / secondsSince(t0);
  }
  {
    constexpr int kReps = 4;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r)
      circuit::cornerSweep(amp, sizing, 0.1, circuit::Fidelity::Fine, session);
    rates.cornersPerSec = 3.0 * kReps / secondsSince(t0);
  }
  return rates;
}

void recordRate(bench::BenchJson& json, const char* workload, const std::string& config,
                const char* unit, double value) {
  json.record({{"bench", "parallel_spice"},
               {"workload", workload},
               {"config", config},
               {"unit", unit}},
              value);
}

}  // namespace

int main(int argc, char** argv) {
  int measures = 12;
  int mcSamples = 32;
  if (const char* v = std::getenv("CRL_BENCH_MEASURES")) measures = std::atoi(v);
  if (const char* v = std::getenv("CRL_BENCH_MC_SAMPLES")) mcSamples = std::atoi(v);
  measures = std::max(measures, 1);
  mcSamples = std::max(mcSamples, 1);

  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  tout = json.tableStream();
  std::fprintf(tout, "parallel simulation-session benchmark\n");
  std::fprintf(tout, "hardware threads: %zu; %d measures, %d MC samples per point\n",
               util::ThreadPool::defaultWorkerCount(), measures, mcSamples);
  std::fprintf(tout,
               "(results are bit-identical across configs; workers only move the "
               "wall clock.\n On a single-core container the pooled configs show "
               "dispatch overhead, not speedup.)\n");

  std::fprintf(tout, "\n%-8s %14s %10s | %16s %14s %12s\n", "config", "measure ms",
               "speedup", "sens probes/s", "yield smp/s", "corners/s");

  double serialMs = 0.0;
  for (int w = 0; w <= 8; w = w == 0 ? 1 : 2 * w) {
    // w == 0 encodes the serial (sessionless) baseline.
    spice::SimSession session(std::max(w, 1));
    spice::SimSession* sp = w == 0 ? nullptr : &session;
    std::string config = "serial";
    if (w != 0) {
      config = "W";
      config += std::to_string(w);
    }

    const double ms = measureLatencyMs(sp, measures);
    if (w == 0) serialMs = ms;
    const ToolkitRates rates = toolkitThroughput(sp, mcSamples);

    std::fprintf(tout, "%-8s %14.2f %9.2fx | %16.1f %14.1f %12.1f\n", config.c_str(),
                 ms, serialMs / ms, rates.sensitivityProbesPerSec,
                 rates.yieldSamplesPerSec, rates.cornersPerSec);
    recordRate(json, "measure", config, "ms_per_measure", ms);
    recordRate(json, "sensitivity", config, "probes_per_sec",
               rates.sensitivityProbesPerSec);
    recordRate(json, "yield", config, "samples_per_sec", rates.yieldSamplesPerSec);
    recordRate(json, "corner", config, "corners_per_sec", rates.cornersPerSec);
  }

  json.flush();
  return 0;
}
