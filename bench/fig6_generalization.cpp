// Figure 6: generalization to unseen specifications — targets outside the
// Table 1 sampling space. The paper's examples: Op-Amp (G=225, B=2.6e7,
// PM=65 deg, P=6e-3 W); RF PA (Pout=2.9 W, E=69%). Our PA substrate peaks
// near 62% overall efficiency, so the PA target uses E=61% (outside the
// [50%, 60%] sampling box; see EXPERIMENTS.md for the substitution note).
// Expectation reproduced: unseen targets need MORE deployment steps than the
// in-distribution Fig. 5 targets.
#include "harness.h"

#include "circuit/opamp.h"
#include "circuit/rfpa.h"

using namespace crl;

namespace {

std::unique_ptr<core::MultimodalPolicy> obtainPolicy(
    rl::Env& trainEnv, const std::string& artifact, int trainEpisodes,
    const bench::Scale& scale) {
  util::Rng rng(42);
  auto policy = core::makePolicy(core::PolicyKind::GcnFc, trainEnv, rng);
  auto params = policy->parameters();
  nn::ParamAdapter adapter = [&policy](std::vector<linalg::Mat>& m) {
    return policy->adaptLegacyParameterMats(m);  // legacy per-head GAT artifacts
  };
  if (nn::loadParametersDetailed(scale.path(artifact), params, nullptr, adapter) ==
      nn::LoadResult::Ok) {
    std::printf("(loaded trained policy from %s)\n", scale.path(artifact).c_str());
    return policy;
  }
  std::printf("(no artifact; training GCN-FC for %d episodes)\n", trainEpisodes);
  rl::PpoTrainer trainer(trainEnv, *policy, {}, util::Rng(7));
  trainer.train(trainEpisodes);
  return policy;
}

struct Outcome {
  bool success;
  int steps;  ///< cumulative steps across restarts (search effort)
};

Outcome deployOnce(rl::Env& env, const core::MultimodalPolicy& policy,
                   const std::vector<double>& target, std::uint64_t seed,
                   const std::vector<std::string>& names, bool print) {
  auto out = bench::deployWithRestarts(env, policy, target, seed, /*maxRestarts=*/5,
                                       /*recordTrajectory=*/print);
  const auto& r = out.result;
  if (print) {
    std::printf("target:");
    for (std::size_t i = 0; i < names.size(); ++i)
      std::printf("  %s=%.4g", names[i].c_str(), target[i]);
    std::printf("\nreached=%s (attempt %d of <=5, %d cumulative steps); trajectory:\n",
                r.success ? "yes" : "no", out.attempts, out.totalSteps);
    for (std::size_t t = 0; t < r.specTrajectory.size(); ++t) {
      std::printf("  step %2zu:", t);
      for (double v : r.specTrajectory[t]) std::printf(" %10.4g", v);
      std::printf("\n");
    }
  }
  return {r.success, out.totalSteps};
}

}  // namespace

int main() {
  auto scale = bench::Scale::fromEnv();
  std::printf("== Fig. 6: generalization to unseen specifications ==\n\n");

  {
    std::printf("-- Two-stage Op-Amp --\n");
    circuit::TwoStageOpAmp amp;
    // Longer budget for out-of-distribution targets, as in the paper.
    envs::SizingEnv env(amp, {.maxSteps = 80});
    auto policy =
        obtainPolicy(env, "policy_opamp_GCN-FC.bin", scale.episodes(1800), scale);
    std::vector<double> seen{350.0, 1.8e7, 55.0, 4e-3};
    std::vector<double> unseen{225.0, 2.6e7, 65.0, 6e-3};
    auto sOut = deployOnce(env, *policy, seen, 3, {}, false);
    auto uOut = deployOnce(env, *policy, unseen, 3, {"gain", "ugbw", "pm", "power"}, true);
    std::printf("steps: in-distribution %d vs unseen %d (paper: unseen needs more)\n\n",
                sOut.steps, uOut.steps);
  }
  {
    std::printf("-- GaN RF PA --\n");
    circuit::GanRfPa pa;
    envs::SizingEnv trainEnv(pa, {.maxSteps = 30, .fidelity = circuit::Fidelity::Coarse});
    envs::SizingEnv fineEnv(pa, {.maxSteps = 60, .fidelity = circuit::Fidelity::Fine});
    auto policy =
        obtainPolicy(trainEnv, "policy_rfpa_GCN-FC.bin", scale.episodes(1000), scale);
    std::vector<double> seen{0.57, 2.5};
    std::vector<double> unseen{0.61, 2.9};  // outside the [0.5,0.6]x[2,3] box
    auto sOut = deployOnce(fineEnv, *policy, seen, 5, {}, false);
    auto uOut = deployOnce(fineEnv, *policy, unseen, 5, {"efficiency", "pout"}, true);
    std::printf("steps: in-distribution %d vs unseen %d (paper: 11 vs 49)\n", sOut.steps,
                uOut.steps);
  }
  return 0;
}
