// Figure 3, bottom row: P2S policy-training curves on the GaN RF PA. All RL
// agents train in the COARSE (fast DC) environment — the paper's transfer-
// learning setup — while deployment accuracy is evaluated in the FINE
// (harmonic-balance-equivalent transient) environment.
#include "harness.h"

#include "circuit/rfpa.h"

using namespace crl;

int main() {
  auto scale = bench::Scale::fromEnv();
  const int episodes = scale.episodes(1000);
  const int evalEvery = std::max(100, episodes / 4);
  std::printf("== Fig. 3 (GaN RF PA): %d episodes x %d seed(s) ==\n", episodes,
              scale.seeds);
  std::printf("(paper scale: 3.5e3 episodes, 6 seeds; max episode length 30;\n"
              " training fidelity: coarse; deployment fidelity: fine)\n\n");

  util::TextTable table({"method", "seed", "final mean reward", "final mean length",
                         "deploy accuracy (fine)"});
  for (auto kind : bench::fig3Methods()) {
    for (int seed = 0; seed < scale.seeds; ++seed) {
      circuit::GanRfPa pa;
      envs::SizingEnv trainEnv(pa, {.maxSteps = 30, .fidelity = circuit::Fidelity::Coarse});
      envs::SizingEnv evalEnv(pa, {.maxSteps = 30, .fidelity = circuit::Fidelity::Fine});
      util::Rng initRng(200 + static_cast<std::uint64_t>(seed));
      auto policy = core::makePolicy(kind, trainEnv, initRng);
      auto out = bench::trainWithCurves(trainEnv, evalEnv, *policy, episodes, evalEvery,
                                        /*evalEpisodes=*/15,
                                        /*seed=*/17 + static_cast<std::uint64_t>(seed));
      std::string method = core::policyKindName(kind);
      bench::writeCurveCsv(
          scale.path("fig3_rfpa_" + method + "_s" + std::to_string(seed) + ".csv"),
          method, seed, out.curve);
      table.addRow({method, std::to_string(seed),
                    util::TextTable::num(out.curve.back().meanReward, 4),
                    util::TextTable::num(out.curve.back().meanLength, 4),
                    util::TextTable::num(out.finalAccuracy.accuracy, 4)});
      std::printf("%-12s seed %d: fine-env accuracy %.3f, mean steps (succ) %.1f\n",
                  method.c_str(), seed, out.finalAccuracy.accuracy,
                  out.finalAccuracy.meanStepsSuccess);
      std::fflush(stdout);
      if (seed == 0 && (kind == core::PolicyKind::GcnFc || kind == core::PolicyKind::GatFc)) {
        nn::saveParameters(scale.path(std::string("policy_rfpa_") + method + ".bin"),
                           policy->parameters());
      }
    }
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\nSeries CSVs written to %s/fig3_rfpa_*.csv\n", scale.outDir.c_str());
  return 0;
}
