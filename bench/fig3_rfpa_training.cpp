// Figure 3, bottom row: P2S policy-training curves on the GaN RF PA. All RL
// agents train in the COARSE (fast DC) environment — the paper's transfer-
// learning setup — while deployment accuracy is evaluated in the FINE
// (harmonic-balance-equivalent transient) environment.
//
// Seeds are independent runs: CRL_SEED_WORKERS > 1 trains them concurrently
// with per-seed results identical to the serial loop. `--json` emits the
// final per-seed metrics as machine-readable rows. (The RF PA's coarse and
// fine paths are DC/transient — no AC sweep — so CRL_SPICE_WORKERS has
// nothing to parallelize here.)
#include "harness.h"

#include "circuit/rfpa.h"

using namespace crl;

int main(int argc, char** argv) {
  auto scale = bench::Scale::fromEnv();
  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  std::FILE* tout = json.tableStream();
  const int episodes = scale.episodes(1000);
  const int evalEvery = std::max(100, episodes / 4);
  const std::size_t seedWorkers =
      scale.seeds > 1 ? bench::seedWorkersFromEnv() : 1;
  std::fprintf(tout, "== Fig. 3 (GaN RF PA): %d episodes x %d seed(s) ==\n", episodes,
               scale.seeds);
  std::fprintf(tout, "(paper scale: 3.5e3 episodes, 6 seeds; max episode length 30;\n"
                     " training fidelity: coarse; deployment fidelity: fine;"
                     " seed workers: %zu)\n\n",
               seedWorkers);

  util::TextTable table({"method", "seed", "final mean reward", "final mean length",
                         "deploy accuracy (fine)"});
  for (auto kind : bench::fig3Methods()) {
    const std::string method = core::policyKindName(kind);
    std::vector<bench::TrainOutcome> outs(static_cast<std::size_t>(scale.seeds));
    bench::forEachSeed(scale.seeds, seedWorkers, [&](int seed) {
      circuit::GanRfPa pa;
      envs::SizingEnv trainEnv(pa, {.maxSteps = 30, .fidelity = circuit::Fidelity::Coarse});
      envs::SizingEnv evalEnv(pa, {.maxSteps = 30, .fidelity = circuit::Fidelity::Fine});
      util::Rng initRng(200 + static_cast<std::uint64_t>(seed));
      auto policy = core::makePolicy(kind, trainEnv, initRng);
      // Batched PPO update by default (see fig3_opamp_training.cpp).
      rl::PpoConfig ppo;
      ppo.batchedUpdate = true;
      auto out = bench::trainWithCurves(trainEnv, evalEnv, *policy, episodes, evalEvery,
                                        /*evalEpisodes=*/15,
                                        /*seed=*/17 + static_cast<std::uint64_t>(seed),
                                        ppo);
      bench::writeCurveCsv(
          scale.path("fig3_rfpa_" + method + "_s" + std::to_string(seed) + ".csv"),
          method, seed, out.curve);
      if (seed == 0 && (kind == core::PolicyKind::GcnFc || kind == core::PolicyKind::GatFc)) {
        nn::saveParameters(scale.path(std::string("policy_rfpa_") + method + ".bin"),
                           policy->parameters());
      }
      outs[static_cast<std::size_t>(seed)] = std::move(out);
    });
    for (int seed = 0; seed < scale.seeds; ++seed) {
      const auto& out = outs[static_cast<std::size_t>(seed)];
      table.addRow({method, std::to_string(seed),
                    util::TextTable::num(out.curve.back().meanReward, 4),
                    util::TextTable::num(out.curve.back().meanLength, 4),
                    util::TextTable::num(out.finalAccuracy.accuracy, 4)});
      std::fprintf(tout, "%-12s seed %d: fine-env accuracy %.3f, mean steps (succ) %.1f\n",
                   method.c_str(), seed, out.finalAccuracy.accuracy,
                   out.finalAccuracy.meanStepsSuccess);
      std::fflush(tout);
      json.record({{"bench", "fig3_rfpa"},
                   {"method", method},
                   {"seed", std::to_string(seed)},
                   {"unit", "deploy_accuracy_fine"}},
                  out.finalAccuracy.accuracy);
      json.record({{"bench", "fig3_rfpa"},
                   {"method", method},
                   {"seed", std::to_string(seed)},
                   {"unit", "final_mean_reward"}},
                  out.curve.back().meanReward);
    }
  }
  std::fprintf(tout, "\n");
  table.print(json.enabled() ? std::cerr : std::cout);
  std::fprintf(tout, "\nSeries CSVs written to %s/fig3_rfpa_*.csv\n", scale.outDir.c_str());
  json.flush();
  return 0;
}
