// Figure 3, bottom row: P2S policy-training curves on the GaN RF PA. All RL
// agents train in the COARSE (fast DC) environment — the paper's transfer-
// learning setup — while deployment accuracy is evaluated in the FINE
// (harmonic-balance-equivalent transient) environment.
//
// All method x seed runs are jobs of one rl::CampaignRunner sharing a single
// work-stealing pool (CRL_SEED_WORKERS sizes it; per-seed results identical
// to the serial loop for any worker count). Jobs checkpoint under
// $CRL_OUT/campaign_rfpa/<job>/ and a rerun resumes (done markers skip,
// checkpoints continue bitwise); CRL_CHECKPOINT_EVERY overrides the cadence.
// `--json` emits the final per-seed metrics as machine-readable rows. (The
// RF PA's coarse and fine paths are DC/transient — no AC sweep — so
// CRL_SPICE_WORKERS has nothing to parallelize here.)
#include "harness.h"

#include "core/campaign_jobs.h"
#include "rl/campaign.h"

using namespace crl;

int main(int argc, char** argv) {
  auto scale = bench::Scale::fromEnv();
  bench::BenchJson json(bench::BenchJson::flagged(argc, argv));
  std::FILE* tout = json.tableStream();
  const int episodes = scale.episodes(1000);
  const int evalEvery = std::max(100, episodes / 4);
  const std::size_t seedWorkers =
      scale.seeds > 1 ? bench::seedWorkersFromEnv() : 1;
  std::fprintf(tout, "== Fig. 3 (GaN RF PA): %d episodes x %d seed(s) ==\n", episodes,
               scale.seeds);
  std::fprintf(tout, "(paper scale: 3.5e3 episodes, 6 seeds; max episode length 30;\n"
                     " training fidelity: coarse; deployment fidelity: fine;"
                     " seed workers: %zu)\n\n",
               seedWorkers);

  rl::CampaignConfig ccfg;
  ccfg.outDir = scale.path("campaign_rfpa");
  ccfg.workers = seedWorkers;
  ccfg.checkpointEvery = bench::intFromEnv("CRL_CHECKPOINT_EVERY", evalEvery);
  rl::CampaignRunner runner(ccfg);

  for (auto kind : bench::fig3Methods()) {
    const std::string method = core::policyKindName(kind);
    for (int seed = 0; seed < scale.seeds; ++seed) {
      rl::CampaignJob job;
      job.name = method + "_s" + std::to_string(seed);
      job.episodes = episodes;
      job.trainSeed = 17 + static_cast<std::uint64_t>(seed);
      job.evalSeed = job.trainSeed + 9001;
      job.finalEvalSeed = job.trainSeed + 5555;
      job.evalEvery = evalEvery;
      job.evalEpisodes = 15;
      // Batched PPO update by default (see fig3_opamp_training.cpp).
      job.ppo.batchedUpdate = true;
      job.make = core::makeSizingContext(
          {core::CampaignCircuit::RfPa, kind, seed, 1.0, /*spiceWorkers=*/1});
      job.curveCsv =
          scale.path("fig3_rfpa_" + method + "_s" + std::to_string(seed) + ".csv");
      job.csvMethod = method;
      job.csvSeedTag = seed;
      if (seed == 0 &&
          (kind == core::PolicyKind::GcnFc || kind == core::PolicyKind::GatFc))
        job.policyBin = scale.path(std::string("policy_rfpa_") + method + ".bin");
      runner.addJob(std::move(job));
    }
  }

  const auto results = runner.run();

  util::TextTable table({"method", "seed", "final mean reward", "final mean length",
                         "deploy accuracy (fine)"});
  std::size_t idx = 0;
  bool anyFailed = false;
  for (auto kind : bench::fig3Methods()) {
    const std::string method = core::policyKindName(kind);
    for (int seed = 0; seed < scale.seeds; ++seed, ++idx) {
      const auto& r = results[idx];
      if (r.failed) {
        anyFailed = true;
        std::fprintf(tout, "%-12s seed %d: FAILED: %s\n", method.c_str(), seed,
                     r.error.c_str());
        continue;
      }
      table.addRow({method, std::to_string(seed),
                    util::TextTable::num(r.finalMeanReward, 4),
                    util::TextTable::num(r.finalMeanLength, 4),
                    util::TextTable::num(r.finalAccuracy, 4)});
      std::fprintf(tout, "%-12s seed %d: fine-env accuracy %.3f, mean steps (succ) %.1f%s\n",
                   method.c_str(), seed, r.finalAccuracy, r.finalMeanStepsSuccess,
                   r.skipped ? " [skipped: done]" : r.resumed ? " [resumed]" : "");
      std::fflush(tout);
      json.record({{"bench", "fig3_rfpa"},
                   {"method", method},
                   {"seed", std::to_string(seed)},
                   {"unit", "deploy_accuracy_fine"}},
                  r.finalAccuracy);
      json.record({{"bench", "fig3_rfpa"},
                   {"method", method},
                   {"seed", std::to_string(seed)},
                   {"unit", "final_mean_reward"}},
                  r.finalMeanReward);
    }
  }
  std::fprintf(tout, "\n");
  table.print(json.enabled() ? std::cerr : std::cout);
  std::fprintf(tout, "\nSeries CSVs written to %s/fig3_rfpa_*.csv\n", scale.outDir.c_str());

  // Shared-pool utilization for the whole campaign (zeros when the runner
  // executed jobs inline, i.e. one worker or one job).
  const util::ThreadPool::Stats pool = runner.poolStats();
  if (pool.workers > 0) {
    std::fprintf(tout,
                 "pool: %zu worker(s), %llu task(s) (%llu stolen), "
                 "utilization %.1f%%, max queue depth %zu\n",
                 pool.workers,
                 static_cast<unsigned long long>(pool.tasksExecuted),
                 static_cast<unsigned long long>(pool.tasksStolen),
                 100.0 * pool.utilization(), pool.maxQueueDepth);
    json.record({{"bench", "fig3_rfpa"}, {"unit", "pool_utilization"}},
                pool.utilization());
    json.record({{"bench", "fig3_rfpa"}, {"unit", "pool_tasks_stolen"}},
                static_cast<double>(pool.tasksStolen));
  }
  json.flush();
  return anyFailed ? 1 : 0;
}
