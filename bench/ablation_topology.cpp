// Ablation: full circuit topology (supply / ground / bias nets as graph
// nodes — Sec. 3's state representation) versus the partial topology that
// Baseline B [GCN-RL] uses. The paper argues the omitted nets are
// "indispensable parts of a circuit graph"; this harness trains the same
// GCN-FC policy on both graphs and compares deployment accuracy.
#include "harness.h"

#include "circuit/opamp.h"

using namespace crl;

int main() {
  auto scale = bench::Scale::fromEnv();
  const int episodes = scale.episodes(1200);
  const int evalEvery = std::max(100, episodes / 4);
  std::printf("== Ablation: full vs partial circuit-topology graph ==\n");
  std::printf("(two-stage Op-Amp, GCN-FC policy, %d episodes x %d seed(s))\n\n", episodes,
              scale.seeds);

  struct Variant {
    const char* name;
    bool fullTopology;
  };
  const Variant variants[] = {
      {"full-topology", true},
      {"partial-topology", false},
  };

  util::TextTable table({"graph", "nodes", "seed", "deploy accuracy", "mean steps (succ)"});
  for (const auto& variant : variants) {
    for (int seed = 0; seed < scale.seeds; ++seed) {
      circuit::OpAmpConfig ampCfg;
      ampCfg.fullTopologyGraph = variant.fullTopology;
      circuit::TwoStageOpAmp amp(ampCfg);
      envs::SizingEnv env(amp, {.maxSteps = 50});
      util::Rng initRng(400 + static_cast<std::uint64_t>(seed));
      auto policy = core::makePolicy(core::PolicyKind::GcnFc, env, initRng);
      auto out = bench::trainWithCurves(env, env, *policy, episodes, evalEvery,
                                        /*evalEpisodes=*/25,
                                        /*seed=*/47 + static_cast<std::uint64_t>(seed));
      bench::writeCurveCsv(scale.path(std::string("ablation_topology_") + variant.name +
                                      "_s" + std::to_string(seed) + ".csv"),
                           variant.name, seed, out.curve);
      table.addRow({variant.name, std::to_string(amp.graph().nodeCount()),
                    std::to_string(seed), util::TextTable::num(out.finalAccuracy.accuracy, 4),
                    util::TextTable::num(out.finalAccuracy.meanStepsSuccess, 2)});
      std::printf("%-18s (%zu graph nodes) seed %d: accuracy %.3f\n", variant.name,
                  amp.graph().nodeCount(), seed, out.finalAccuracy.accuracy);
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  table.print(std::cout);
  return 0;
}
