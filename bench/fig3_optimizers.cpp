// Figure 3, last column: Genetic-Algorithm and Bayesian-Optimization
// curves (best-so-far Eq. (1) reward vs # of simulation steps) on both
// circuits. The paper observes GA needs ~400 and BO ~100 simulations; both
// must use the fine (HB-equivalent) simulator for the RF PA since they
// cannot exploit transfer learning.
#include "harness.h"

#include "baselines/optimizers.h"
#include "circuit/opamp.h"
#include "circuit/rfpa.h"

using namespace crl;

namespace {

void runCircuit(circuit::Benchmark& bench, circuit::Fidelity fidelity, int runs,
                const bench::Scale& scale, const std::string& tag) {
  util::Rng rng(31);
  util::CsvWriter csv(scale.path("fig3_optimizers_" + tag + ".csv"),
                      {"method", "run", "simulation", "best_reward"});
  util::RunningStats gaSteps, boSteps;
  int gaSucc = 0, boSucc = 0;
  for (int run = 0; run < runs; ++run) {
    auto target = bench.specSpace().sample(rng);
    auto obj = baselines::p2sObjective(bench.specSpace(), target);

    baselines::GeneticAlgorithm ga;
    auto gaRes = ga.optimize(bench, fidelity, obj, rng);
    for (std::size_t i = 0; i < gaRes.curve.size(); ++i)
      csv.writeRow(std::vector<std::string>{"GA", std::to_string(run),
                                            std::to_string(i + 1),
                                            util::TextTable::num(gaRes.curve[i], 6)});
    if (gaRes.reachedTarget) {
      ++gaSucc;
      gaSteps.add(gaRes.stepsToTarget);
    } else {
      gaSteps.add(gaRes.evaluations);
    }

    baselines::BayesianOptimization bo;
    auto boRes = bo.optimize(bench, fidelity, obj, rng);
    for (std::size_t i = 0; i < boRes.curve.size(); ++i)
      csv.writeRow(std::vector<std::string>{"BO", std::to_string(run),
                                            std::to_string(i + 1),
                                            util::TextTable::num(boRes.curve[i], 6)});
    if (boRes.reachedTarget) {
      ++boSucc;
      boSteps.add(boRes.stepsToTarget);
    } else {
      boSteps.add(boRes.evaluations);
    }
  }
  std::printf("%s:  GA success %d/%d, mean sims-to-target %.0f | "
              "BO success %d/%d, mean sims-to-target %.0f\n",
              tag.c_str(), gaSucc, runs, gaSteps.mean(), boSucc, runs, boSteps.mean());
}

}  // namespace

int main() {
  auto scale = bench::Scale::fromEnv();
  const int runs = std::max(2, static_cast<int>(6 * scale.scale));
  std::printf("== Fig. 3 (last column): GA / BO optimization curves, %d runs ==\n"
              "(paper: 30-group runs; GA ~400 sims, BO ~100 sims per design)\n\n",
              runs);
  {
    circuit::TwoStageOpAmp amp;
    runCircuit(amp, circuit::Fidelity::Fine, runs, scale, "opamp");
  }
  {
    circuit::GanRfPa pa;
    runCircuit(pa, circuit::Fidelity::Fine, runs, scale, "rfpa");
  }
  std::printf("\nSeries CSVs written to %s/fig3_optimizers_*.csv\n", scale.outDir.c_str());
  return 0;
}
