#pragma once
// Graph neural-network layers over the circuit-topology graph.
//
//  * GcnLayer — Eq. (2) of the paper: H' = tanh(A* H W + b) with the
//    symmetric-normalized adjacency A* (precomputed by CircuitGraph).
//  * GatLayer — multi-head graph attention (Velickovic et al.): per head,
//    attention logits e_ij = LeakyReLU(a_src . Wh_i + a_dst . Wh_j) masked to
//    the 1-hop neighbourhood (plus self loops), row-softmaxed, then used to
//    mix the transformed node features; heads are concatenated.

#include <vector>

#include "nn/module.h"
#include "nn/tensor.h"

namespace crl::gnn {

using nn::Tensor;

class GcnLayer {
 public:
  GcnLayer(std::size_t in, std::size_t out, util::Rng& rng,
           nn::Activation act = nn::Activation::Tanh);

  /// normAdj is CircuitGraph::normalizedAdjacency(). It is captured by
  /// reference into the recorded graph (nn::fusedGcnLayer) and must outlive
  /// the backward pass — pass the policy-owned matrix, never a temporary.
  Tensor forward(const Tensor& h, const linalg::Mat& normAdj) const;
  /// Batched forward over `count` stacked graphs sharing one topology:
  /// propagation multiplies by diag(normAdj, ..., normAdj) block-wise, so
  /// cost (and backward cost) stays linear in the batch size.
  Tensor forwardBatch(const Tensor& h, const linalg::Mat& normAdj,
                      std::size_t count) const;
  std::vector<Tensor> parameters() const { return {w_, b_}; }
  std::size_t outFeatures() const { return w_.cols(); }

 private:
  Tensor w_;
  Tensor b_;
  nn::Activation act_;
};

class GatLayer {
 public:
  /// Output feature dimension is heads * headDim (concatenated). All heads
  /// share one packed weight matrix [in x heads*headDim] (head k on column
  /// block [k*headDim, (k+1)*headDim)) so the layer runs ONE weight matmul
  /// instead of one per head; the packed initialization draws the RNG in the
  /// legacy per-head order, so a fresh layer starts from the exact weights
  /// the per-head layout drew from the same stream.
  GatLayer(std::size_t in, std::size_t headDim, std::size_t heads, util::Rng& rng,
           nn::Activation act = nn::Activation::Tanh);

  /// mask is CircuitGraph::attentionMask() (0 on edges/self, -1e9 elsewhere).
  Tensor forward(const Tensor& h, const linalg::Mat& mask) const;
  /// Batched forward over `count` stacked graphs sharing one topology.
  /// `tiledMask` is the single-graph n x n attention mask tiled vertically
  /// `count` times ([count*n x n], see GraphEncoder::encodeBatch, which
  /// builds it once for all layers). Attention is computed block-locally as
  /// [count*n x n] matrices — row i holds node i's coefficients over its
  /// own graph's n nodes — so cost (and backward cost) scales linearly with
  /// the batch instead of quadratically as a dense [count*n x count*n]
  /// attention would.
  Tensor forwardBatch(const Tensor& h, const linalg::Mat& tiledMask,
                      std::size_t count) const;
  std::vector<Tensor> parameters() const;
  std::size_t heads() const { return heads_; }
  std::size_t outFeatures() const { return heads_ * headDim_; }

  /// Attention coefficients of one head for inspection (no grad tracking).
  linalg::Mat attention(const linalg::Mat& features, const linalg::Mat& mask,
                        std::size_t head) const;

  /// Checkpoint-migration shim: repack one layer's legacy per-head parameter
  /// mats (w_0, aSrc_0, aDst_0, w_1, ...; 3*heads of them at `legacy`) into
  /// the packed layout, appending wPacked, aSrcPacked, aDstPacked to `out`.
  /// Returns false when the legacy mats are not a coherent per-head layer
  /// (inconsistent shapes).
  static bool packLegacyParams(const linalg::Mat* legacy, std::size_t heads,
                               std::vector<linalg::Mat>& out);

 private:
  std::size_t headDim_;
  std::size_t heads_;
  Tensor wPacked_;     ///< [in x heads*headDim]
  Tensor aSrcPacked_;  ///< [heads*headDim x 1], head k on rows [k*headDim, ...)
  Tensor aDstPacked_;  ///< [heads*headDim x 1]
  nn::Activation act_;
};

/// Stacked GNN encoder with mean-pool readout to a graph embedding.
class GraphEncoder {
 public:
  enum class Variant { Gcn, Gat };

  struct Config {
    Variant variant = Variant::Gcn;
    std::size_t inFeatures = 6;
    std::size_t hidden = 32;
    std::size_t layers = 2;
    std::size_t heads = 4;  ///< GAT only; hidden must be divisible by heads
  };

  GraphEncoder(Config cfg, util::Rng& rng);

  /// Encode a node-feature matrix into node embeddings [n x hidden].
  Tensor nodeEmbeddings(const linalg::Mat& features, const linalg::Mat& normAdj,
                        const linalg::Mat& mask) const;
  /// Mean-pooled graph embedding [1 x hidden].
  Tensor encode(const linalg::Mat& features, const linalg::Mat& normAdj,
                const linalg::Mat& mask) const;

  /// Batched encode: N stacked copies of the same topology in one pass.
  /// `stackedFeatures` is the [N*n x in] row-stack of per-graph node
  /// features; `normAdj` and `mask` are the single-graph n x n propagation
  /// matrix and attention mask — GCN layers apply normAdj block-diagonally
  /// and GAT layers keep attention block-local, so no [N*n x N*n] matrix is
  /// ever materialized and cost stays linear in N. Readout mean-pools each
  /// graph's node rows. Returns the [N x hidden] matrix of graph
  /// embeddings; gradients are recorded unless a NoGradGuard is alive, so
  /// the batched PPO update can backpropagate through the whole minibatch.
  /// Takes the stacked features by value: the buffer moves into the input
  /// graph node (arena-pooled staging buffers stay pooled).
  Tensor encodeBatch(linalg::Mat stackedFeatures, std::size_t count,
                     const linalg::Mat& normAdj, const linalg::Mat& mask) const;

  std::vector<Tensor> parameters() const;
  const Config& config() const { return cfg_; }

  /// Checkpoint-migration shim: consume this encoder's parameter mats in the
  /// LEGACY per-head GAT layout from `in` starting at `pos` (advancing it)
  /// and append the current-layout equivalents to `out`. GCN layers copy
  /// through unchanged. Returns false when `in` runs out or a GAT layer's
  /// mats are incoherent.
  bool adaptLegacyParams(const std::vector<linalg::Mat>& in, std::size_t& pos,
                         std::vector<linalg::Mat>& out) const;

 private:
  Config cfg_;
  std::vector<GcnLayer> gcn_;
  std::vector<GatLayer> gat_;
};

}  // namespace crl::gnn
