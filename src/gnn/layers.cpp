#include "gnn/layers.h"

#include <cmath>
#include <stdexcept>

#include "linalg/vec_math.h"
#include "nn/arena.h"

namespace crl::gnn {

using nn::Tensor;

GcnLayer::GcnLayer(std::size_t in, std::size_t out, util::Rng& rng, nn::Activation act)
    : w_(Tensor::xavier(in, out, rng)),
      b_(Tensor::zeros(1, out, /*requiresGrad=*/true)),
      act_(act) {}

Tensor GcnLayer::forward(const Tensor& h, const linalg::Mat& normAdj) const {
  // act(A* H W + b) as one fused tape node (bit-identical to the unfused
  // matmulConstLeft + matmul + bias + activation chain).
  return nn::fusedGcnLayer(normAdj, 1, h, w_, b_, act_);
}

Tensor GcnLayer::forwardBatch(const Tensor& h, const linalg::Mat& normAdj,
                              std::size_t count) const {
  return nn::fusedGcnLayer(normAdj, count, h, w_, b_, act_);  // diag(A*) H W + b
}

GatLayer::GatLayer(std::size_t in, std::size_t headDim, std::size_t heads,
                   util::Rng& rng, nn::Activation act)
    : headDim_(headDim), heads_(heads), act_(act) {
  if (heads == 0 || headDim == 0) throw std::invalid_argument("GatLayer: empty head");
  // Draw the RNG in the legacy per-head order (w_k, aSrc_k, aDst_k) and
  // scatter into the packed mats, so a fresh packed layer is bit-identical
  // to what the per-head layout initialized from the same stream.
  linalg::Mat w(in, heads * headDim);
  linalg::Mat as(heads * headDim, 1);
  linalg::Mat ad(heads * headDim, 1);
  const double wBound = std::sqrt(6.0 / static_cast<double>(in + headDim));
  const double aBound = std::sqrt(6.0 / static_cast<double>(headDim + 1));
  for (std::size_t k = 0; k < heads; ++k) {
    for (std::size_t r = 0; r < in; ++r)
      for (std::size_t c = 0; c < headDim; ++c)
        w(r, k * headDim + c) = rng.uniform(-wBound, wBound);
    for (std::size_t j = 0; j < headDim; ++j)
      as(k * headDim + j, 0) = rng.uniform(-aBound, aBound);
    for (std::size_t j = 0; j < headDim; ++j)
      ad(k * headDim + j, 0) = rng.uniform(-aBound, aBound);
  }
  wPacked_ = Tensor(std::move(w), /*requiresGrad=*/true);
  aSrcPacked_ = Tensor(std::move(as), /*requiresGrad=*/true);
  aDstPacked_ = Tensor(std::move(ad), /*requiresGrad=*/true);
}

Tensor GatLayer::forward(const Tensor& h, const linalg::Mat& mask) const {
  // Two tape nodes for the whole layer: ONE packed weight matmul covering
  // every head, then the fused multi-head attention chain (logits, softmax,
  // mixing, concat activation). Forward values are bit-identical to the
  // retired per-head chain (tests/rl/test_gat_packing_parity.cpp).
  Tensor hw = nn::matmul(h, wPacked_);  // n x heads*d
  return nn::fusedGatMultiHead(hw, aSrcPacked_, aDstPacked_, mask, 1, heads_,
                               0.2, act_);
}

Tensor GatLayer::forwardBatch(const Tensor& h, const linalg::Mat& tiledMask,
                              std::size_t count) const {
  // Block-local attention: each head's coefficient matrix is [count*n x n] —
  // row g*n+i holds node i's logits over graph g's own n nodes — instead of
  // a dense [count*n x count*n], so cost stays linear in the batch.
  Tensor hw = nn::matmul(h, wPacked_);  // count*n x heads*d
  return nn::fusedGatMultiHead(hw, aSrcPacked_, aDstPacked_, tiledMask, count,
                               heads_, 0.2, act_);
}

std::vector<Tensor> GatLayer::parameters() const {
  return {wPacked_, aSrcPacked_, aDstPacked_};
}

bool GatLayer::packLegacyParams(const linalg::Mat* legacy, std::size_t heads,
                                std::vector<linalg::Mat>& out) {
  if (heads == 0) return false;
  const std::size_t in = legacy[0].rows();
  const std::size_t d = legacy[0].cols();
  if (in == 0 || d == 0) return false;
  for (std::size_t k = 0; k < heads; ++k) {
    if (legacy[3 * k].rows() != in || legacy[3 * k].cols() != d) return false;
    if (legacy[3 * k + 1].rows() != d || legacy[3 * k + 1].cols() != 1) return false;
    if (legacy[3 * k + 2].rows() != d || legacy[3 * k + 2].cols() != 1) return false;
  }
  linalg::Mat w(in, heads * d), as(heads * d, 1), ad(heads * d, 1);
  for (std::size_t k = 0; k < heads; ++k) {
    const linalg::Mat& wk = legacy[3 * k];
    for (std::size_t r = 0; r < in; ++r)
      for (std::size_t c = 0; c < d; ++c) w(r, k * d + c) = wk(r, c);
    for (std::size_t j = 0; j < d; ++j) {
      as(k * d + j, 0) = legacy[3 * k + 1](j, 0);
      ad(k * d + j, 0) = legacy[3 * k + 2](j, 0);
    }
  }
  out.push_back(std::move(w));
  out.push_back(std::move(as));
  out.push_back(std::move(ad));
  return true;
}

linalg::Mat GatLayer::attention(const linalg::Mat& features, const linalg::Mat& mask,
                                std::size_t head) const {
  if (head >= heads_) throw std::out_of_range("GatLayer::attention: bad head");
  nn::NoGradGuard guard;
  const std::size_t n = features.rows();
  const std::size_t d = headDim_;
  Tensor hw = nn::matmul(Tensor(features), wPacked_);  // n x heads*d
  const linalg::Mat& hwv = hw.value();
  const linalg::Mat& as = aSrcPacked_.value();
  const linalg::Mat& ad = aDstPacked_.value();
  std::vector<double> src(n, 0.0), dst(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j) {
      src[i] += hwv(i, head * d + j) * as(head * d + j, 0);
      dst[i] += hwv(i, head * d + j) * ad(head * d + j, 0);
    }
  linalg::Mat e(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const double p = src[i] + dst[j];
      e(i, j) = (p > 0.0 ? p : 0.2 * p) + mask(i, j);
    }
  linalg::vecmath::softmaxRowsInPlace(e.data(), n, n);
  return e;
}

GraphEncoder::GraphEncoder(Config cfg, util::Rng& rng) : cfg_(cfg) {
  if (cfg_.layers == 0) throw std::invalid_argument("GraphEncoder: need >= 1 layer");
  std::size_t in = cfg_.inFeatures;
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    if (cfg_.variant == Variant::Gcn) {
      gcn_.emplace_back(in, cfg_.hidden, rng);
    } else {
      if (cfg_.hidden % cfg_.heads != 0)
        throw std::invalid_argument("GraphEncoder: hidden must divide by heads");
      gat_.emplace_back(in, cfg_.hidden / cfg_.heads, cfg_.heads, rng);
    }
    in = cfg_.hidden;
  }
}

Tensor GraphEncoder::nodeEmbeddings(const linalg::Mat& features,
                                    const linalg::Mat& normAdj,
                                    const linalg::Mat& mask) const {
  Tensor h(features);
  if (cfg_.variant == Variant::Gcn) {
    for (const auto& layer : gcn_) h = layer.forward(h, normAdj);
  } else {
    for (const auto& layer : gat_) h = layer.forward(h, mask);
  }
  return h;
}

Tensor GraphEncoder::encode(const linalg::Mat& features, const linalg::Mat& normAdj,
                            const linalg::Mat& mask) const {
  return nn::meanRows(nodeEmbeddings(features, normAdj, mask));
}

Tensor GraphEncoder::encodeBatch(linalg::Mat stackedFeatures, std::size_t count,
                                 const linalg::Mat& normAdj,
                                 const linalg::Mat& mask) const {
  Tensor h(std::move(stackedFeatures));
  if (cfg_.variant == Variant::Gcn) {
    for (const auto& layer : gcn_) h = layer.forwardBatch(h, normAdj, count);
  } else {
    // Tile the constant mask once for all layers (pooled under an arena —
    // the layers copy it into their masked-logit nodes, so it can go back
    // to the pool as soon as the forward sweep is done).
    const std::size_t n = mask.rows();
    linalg::Mat tiledMask = nn::pooledMat(count * n, n);
    for (std::size_t g = 0; g < count; ++g)
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) tiledMask(g * n + r, c) = mask(r, c);
    for (const auto& layer : gat_) h = layer.forwardBatch(h, tiledMask, count);
    nn::reclaimPooledMat(std::move(tiledMask));
  }
  return nn::meanPoolGroups(h, count);
}

std::vector<Tensor> GraphEncoder::parameters() const {
  std::vector<Tensor> out;
  for (const auto& l : gcn_)
    for (const auto& p : l.parameters()) out.push_back(p);
  for (const auto& l : gat_)
    for (const auto& p : l.parameters()) out.push_back(p);
  return out;
}

bool GraphEncoder::adaptLegacyParams(const std::vector<linalg::Mat>& in,
                                     std::size_t& pos,
                                     std::vector<linalg::Mat>& out) const {
  for (std::size_t l = 0; l < gcn_.size(); ++l) {
    if (pos + 2 > in.size()) return false;
    out.push_back(in[pos++]);  // w
    out.push_back(in[pos++]);  // b
  }
  for (const auto& l : gat_) {
    const std::size_t need = 3 * l.heads();
    if (pos + need > in.size()) return false;
    if (!GatLayer::packLegacyParams(&in[pos], l.heads(), out)) return false;
    pos += need;
  }
  return true;
}

}  // namespace crl::gnn
