#include "gnn/layers.h"

#include <stdexcept>

#include "nn/arena.h"

namespace crl::gnn {

using nn::Tensor;

GcnLayer::GcnLayer(std::size_t in, std::size_t out, util::Rng& rng, nn::Activation act)
    : w_(Tensor::xavier(in, out, rng)),
      b_(Tensor::zeros(1, out, /*requiresGrad=*/true)),
      act_(act) {}

Tensor GcnLayer::forward(const Tensor& h, const linalg::Mat& normAdj) const {
  // act(A* H W + b) as one fused tape node (bit-identical to the unfused
  // matmulConstLeft + matmul + bias + activation chain).
  return nn::fusedGcnLayer(normAdj, 1, h, w_, b_, act_);
}

Tensor GcnLayer::forwardBatch(const Tensor& h, const linalg::Mat& normAdj,
                              std::size_t count) const {
  return nn::fusedGcnLayer(normAdj, count, h, w_, b_, act_);  // diag(A*) H W + b
}

GatLayer::GatLayer(std::size_t in, std::size_t headDim, std::size_t heads,
                   util::Rng& rng, nn::Activation act)
    : headDim_(headDim), act_(act) {
  if (heads == 0 || headDim == 0) throw std::invalid_argument("GatLayer: empty head");
  for (std::size_t k = 0; k < heads; ++k) {
    wPerHead_.push_back(Tensor::xavier(in, headDim, rng));
    aSrc_.push_back(Tensor::xavier(headDim, 1, rng));
    aDst_.push_back(Tensor::xavier(headDim, 1, rng));
  }
}

Tensor GatLayer::headForward(const Tensor& h, const linalg::Mat& mask,
                             std::size_t k) const {
  // Three tape nodes per head: hw = h W, the fused attention-logit chain
  // (src/dst projections + src_i + dst_j + leakyRelu + mask), and the fused
  // row-softmax + attention mixing — all bit-identical to the unfused op
  // chains (tests/nn/test_fused.cpp).
  Tensor hw = nn::matmul(h, wPerHead_[k]);         // n x d
  Tensor e = nn::fusedGatLogits(hw, aSrc_[k], aDst_[k], mask, 1, 0.2);
  return nn::fusedSoftmaxMatmulBlocks(e, hw, 1);
}

Tensor GatLayer::forward(const Tensor& h, const linalg::Mat& mask) const {
  std::vector<Tensor> heads;
  heads.reserve(wPerHead_.size());
  for (std::size_t k = 0; k < wPerHead_.size(); ++k)
    heads.push_back(headForward(h, mask, k));
  return nn::activate(nn::concatColsAll(heads), act_);
}

Tensor GatLayer::headForwardBatch(const Tensor& h, const linalg::Mat& tiledMask,
                                  std::size_t count, std::size_t k) const {
  // Block-local attention: e is [count*n x n] — row g*n+i holds node i's
  // logits over graph g's own n nodes — instead of a dense
  // [count*n x count*n], so cost stays linear in the batch.
  Tensor hw = nn::matmul(h, wPerHead_[k]);         // count*n x d
  Tensor e = nn::fusedGatLogits(hw, aSrc_[k], aDst_[k], tiledMask, count, 0.2);
  return nn::fusedSoftmaxMatmulBlocks(e, hw, count);
}

Tensor GatLayer::forwardBatch(const Tensor& h, const linalg::Mat& tiledMask,
                              std::size_t count) const {
  std::vector<Tensor> heads;
  heads.reserve(wPerHead_.size());
  for (std::size_t k = 0; k < wPerHead_.size(); ++k)
    heads.push_back(headForwardBatch(h, tiledMask, count, k));
  return nn::activate(nn::concatColsAll(heads), act_);
}

std::vector<Tensor> GatLayer::parameters() const {
  std::vector<Tensor> out;
  for (std::size_t k = 0; k < wPerHead_.size(); ++k) {
    out.push_back(wPerHead_[k]);
    out.push_back(aSrc_[k]);
    out.push_back(aDst_[k]);
  }
  return out;
}

linalg::Mat GatLayer::attention(const linalg::Mat& features, const linalg::Mat& mask,
                                std::size_t head) const {
  Tensor h(features);
  const std::size_t n = features.rows();
  Tensor hw = nn::matmul(h, wPerHead_[head]);
  Tensor src = nn::matmul(hw, aSrc_[head]);
  Tensor dst = nn::matmul(hw, aDst_[head]);
  Tensor onesRow(linalg::Mat(1, n, 1.0));
  Tensor onesCol(linalg::Mat(n, 1, 1.0));
  Tensor e = nn::add(nn::matmul(src, onesRow), nn::matmul(onesCol, nn::transpose(dst)));
  e = nn::leakyRelu(e, 0.2);
  e = nn::addConst(e, mask);
  return nn::softmaxRows(e).value();
}

GraphEncoder::GraphEncoder(Config cfg, util::Rng& rng) : cfg_(cfg) {
  if (cfg_.layers == 0) throw std::invalid_argument("GraphEncoder: need >= 1 layer");
  std::size_t in = cfg_.inFeatures;
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    if (cfg_.variant == Variant::Gcn) {
      gcn_.emplace_back(in, cfg_.hidden, rng);
    } else {
      if (cfg_.hidden % cfg_.heads != 0)
        throw std::invalid_argument("GraphEncoder: hidden must divide by heads");
      gat_.emplace_back(in, cfg_.hidden / cfg_.heads, cfg_.heads, rng);
    }
    in = cfg_.hidden;
  }
}

Tensor GraphEncoder::nodeEmbeddings(const linalg::Mat& features,
                                    const linalg::Mat& normAdj,
                                    const linalg::Mat& mask) const {
  Tensor h(features);
  if (cfg_.variant == Variant::Gcn) {
    for (const auto& layer : gcn_) h = layer.forward(h, normAdj);
  } else {
    for (const auto& layer : gat_) h = layer.forward(h, mask);
  }
  return h;
}

Tensor GraphEncoder::encode(const linalg::Mat& features, const linalg::Mat& normAdj,
                            const linalg::Mat& mask) const {
  return nn::meanRows(nodeEmbeddings(features, normAdj, mask));
}

Tensor GraphEncoder::encodeBatch(linalg::Mat stackedFeatures, std::size_t count,
                                 const linalg::Mat& normAdj,
                                 const linalg::Mat& mask) const {
  Tensor h(std::move(stackedFeatures));
  if (cfg_.variant == Variant::Gcn) {
    for (const auto& layer : gcn_) h = layer.forwardBatch(h, normAdj, count);
  } else {
    // Tile the constant mask once for all layers (pooled under an arena —
    // the layers copy it into their masked-logit nodes, so it can go back
    // to the pool as soon as the forward sweep is done).
    const std::size_t n = mask.rows();
    linalg::Mat tiledMask = nn::pooledMat(count * n, n);
    for (std::size_t g = 0; g < count; ++g)
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) tiledMask(g * n + r, c) = mask(r, c);
    for (const auto& layer : gat_) h = layer.forwardBatch(h, tiledMask, count);
    nn::reclaimPooledMat(std::move(tiledMask));
  }
  return nn::meanPoolGroups(h, count);
}

std::vector<Tensor> GraphEncoder::parameters() const {
  std::vector<Tensor> out;
  for (const auto& l : gcn_)
    for (const auto& p : l.parameters()) out.push_back(p);
  for (const auto& l : gat_)
    for (const auto& p : l.parameters()) out.push_back(p);
  return out;
}

}  // namespace crl::gnn
