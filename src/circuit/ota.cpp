#include "circuit/ota.h"

#include <algorithm>
#include <stdexcept>

#include "nn/serialize.h"

namespace crl::circuit {

namespace {
constexpr double kMicron = 1e-6;

DesignSpace makeOtaSpace() {
  std::vector<ParamSpec> params;
  for (int i = 1; i <= 5; ++i) {
    std::string fet = "M";
    fet += std::to_string(i);
    params.push_back({fet + ".W", 1.0, 100.0, 3.3, false});
    params.push_back({fet + ".nf", 2.0, 32.0, 1.0, true});
  }
  return DesignSpace(std::move(params));
}

SpecSpace makeOtaSpecs() {
  // Ranges sit well inside the achievable envelope measured over random
  // sizings (gain up to ~200, UGBW 1.6e8..1.7e10 Hz, power down to ~1e-4 W).
  return SpecSpace({
      {"gain", 30.0, 60.0, SpecDirection::Maximize, false},
      {"ugbw", 2e8, 1.5e9, SpecDirection::Maximize, true},
      {"pm", 60.0, 75.0, SpecDirection::Maximize, false},
      {"power", 1e-3, 1e-2, SpecDirection::Minimize, true},
  });
}
}  // namespace

FiveTransistorOta::FiveTransistorOta(OtaConfig cfg)
    : cfg_(cfg), space_(makeOtaSpace()), specs_(makeOtaSpecs()) {
  params_ = space_.midpoint();
  buildNetlist();
  setParams(params_);
  buildGraph();
}

void FiveTransistorOta::buildNetlist() {
  using namespace spice;
  MosModel nm;
  nm.type = MosType::Nmos;
  nm.kp = cfg_.kpN;
  nm.vth = cfg_.vthN;
  nm.lambda = cfg_.lambdaN;
  nm.length = cfg_.length;
  MosModel pm = nm;
  pm.type = MosType::Pmos;
  pm.kp = cfg_.kpP;
  pm.vth = cfg_.vthP;
  pm.lambda = cfg_.lambdaP;

  NodeId vdd = net_.node("vdd");
  NodeId vinp = net_.node("vinp");
  NodeId vinm = net_.node("vinm");
  NodeId ntail = net_.node("ntail");
  NodeId n1 = net_.node("n1");      // M1/M3 drains (mirror gate)
  NodeId nout = net_.node("nout");  // output: M2/M4 drains
  NodeId nbias = net_.node("nbias");

  vddSrc_ = net_.add<VSource>("Vdd", vdd, kGround, cfg_.vdd);
  net_.add<VSource>("Vbias", nbias, kGround, cfg_.vbias);

  // As in TwoStageOpAmp: the mirror inverts M1's path onto the output, so
  // vinp (M1's gate) is the non-inverting input here; the servo closes on
  // the inverting input vinm and AC drive sits on vinp.
  auto* vp = net_.add<VSource>("Vinp", vinp, kGround, cfg_.vcm);
  vp->setAcMag(1.0);

  const double w0 = 10.0 * kMicron;
  fets_.push_back(net_.add<Mosfet>("M1", n1, vinp, ntail, nm, w0, 2));
  fets_.push_back(net_.add<Mosfet>("M2", nout, vinm, ntail, nm, w0, 2));
  fets_.push_back(net_.add<Mosfet>("M3", n1, n1, vdd, pm, w0, 2));
  fets_.push_back(net_.add<Mosfet>("M4", nout, n1, vdd, pm, w0, 2));
  fets_.push_back(net_.add<Mosfet>("M5", ntail, nbias, kGround, nm, w0, 2));

  net_.add<Capacitor>("CL", nout, kGround, cfg_.loadCap);

  // DC servo (open above ~Hz): biases the OTA at its balanced point.
  net_.add<Resistor>("Rservo", nout, vinm, 1e9);
  net_.add<Capacitor>("Cservo", vinm, kGround, 1e-3);

  outNode_ = nout;
  net_.finalize();
}

void FiveTransistorOta::buildGraph() {
  GraphBuilder builder(net_);
  for (std::size_t i = 0; i < fets_.size(); ++i) {
    GraphNodeType type =
        fets_[i]->model().type == spice::MosType::Nmos ? GraphNodeType::Nmos
                                                       : GraphNodeType::Pmos;
    builder.addDevice(fets_[i], type, [this, i](double* slots) {
      const auto& pw = space_.param(2 * i);
      const auto& pf = space_.param(2 * i + 1);
      slots[0] = (params_[2 * i] - pw.min) / (pw.max - pw.min);
      slots[1] = (params_[2 * i + 1] - pf.min) / (pf.max - pf.min);
    });
  }
  builder.addDevice(net_.findDevice("CL"), GraphNodeType::Capacitor,
                    [this](double* slots) { slots[0] = cfg_.loadCap / 10e-12; });
  if (cfg_.fullTopologyGraph) {
    builder.addNetNode(net_.findNode("vdd"), GraphNodeType::Supply, "VP",
                       [this](double* slots) { slots[0] = 1.0; });
    builder.addNetNode(spice::kGround, GraphNodeType::Ground, "VGND", nullptr);
    builder.addNetNode(net_.findNode("nbias"), GraphNodeType::Bias, "Vbias",
                       [this](double* slots) { slots[0] = cfg_.vbias / cfg_.vdd; });
  }
  graph_ = std::make_unique<CircuitGraph>(builder.build());
}

std::unique_ptr<Benchmark> FiveTransistorOta::clone() const {
  auto copy = std::make_unique<FiveTransistorOta>(cfg_);
  copy->setParams(params_);
  copy->setSolverChoice(solverChoice_);
  return copy;
}

std::string FiveTransistorOta::solverStateSnapshot() const {
  nn::ByteWriter w;
  w.b8(lastOp_.has_value());
  w.vec(lastOp_ ? *lastOp_ : linalg::Vec{});
  return w.take();
}

bool FiveTransistorOta::restoreSolverStateSnapshot(const std::string& blob) {
  nn::ByteReader r(blob);
  bool hasOp = false;
  linalg::Vec op;
  if (!r.b8(hasOp) || !r.vec(op) || !r.atEnd()) {
    resetSolverState();
    return false;
  }
  if (hasOp)
    lastOp_ = std::move(op);
  else
    lastOp_.reset();
  return true;
}

void FiveTransistorOta::setParams(const std::vector<double>& params) {
  if (params.size() != kNumParams)
    throw std::invalid_argument("FiveTransistorOta: expected 10 parameters");
  params_ = space_.clamp(params);
  for (std::size_t i = 0; i < fets_.size(); ++i) {
    fets_[i]->setGeometry(params_[2 * i] * kMicron,
                          static_cast<int>(params_[2 * i + 1]));
  }
}

std::vector<double> FiveTransistorOta::failedSpecs() { return {1.0, 1e4, 1.0, 0.1}; }

long FiveTransistorOta::simCount(Fidelity) const { return fineSims_; }

Measurement FiveTransistorOta::measure(Fidelity) {
  // DC + AC serve both fidelities (as for the two-stage op-amp).
  ++fineSims_;
  Measurement out;
  out.specs = failedSpecs();

  spice::DcOptions dcOpt;
  dcOpt.initialVoltage = cfg_.vcm;
  dcOpt.solver = solverChoice_;
  spice::DcAnalysis dc(net_, dcOpt);
  spice::DcResult op = lastOp_ ? dc.solve(*lastOp_) : dc.solve();
  auto biased = [&](const spice::DcResult& r) {
    const double vout = spice::Netlist::voltageOf(r.x, outNode_);
    return r.converged && vout > 0.05 && vout < cfg_.vdd - 0.05;
  };
  if (lastOp_ && !biased(op)) op = dc.solve();
  if (!biased(op)) {
    lastOp_.reset();
    return out;
  }
  lastOp_ = op.x;

  const double power = cfg_.vdd * std::fabs(op.x[vddSrc_->currentIndex()]);

  spice::AcAnalysis ac(net_, op.x, solverChoice_);
  auto sweep =
      ac.sweep(outNode_, cfg_.fSweepLo, cfg_.fSweepHi, cfg_.pointsPerDecade, session_);
  auto metrics = spice::analyzeResponse(sweep);
  if (!metrics.valid) {
    out.specs = {std::max(metrics.dcGain, 1.0), 1e4, 1.0, std::max(power, 1e-6)};
    return out;
  }

  out.specs = {metrics.dcGain, metrics.unityGainFreq, metrics.phaseMarginDeg,
               std::max(power, 1e-9)};
  out.valid = true;
  return out;
}

}  // namespace crl::circuit
