#include "circuit/design_space.h"

#include <cmath>
#include <stdexcept>

namespace crl::circuit {

DesignSpace::DesignSpace(std::vector<ParamSpec> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    if (p.max <= p.min) throw std::invalid_argument("DesignSpace: max <= min for " + p.name);
    if (p.step <= 0.0) throw std::invalid_argument("DesignSpace: step <= 0 for " + p.name);
  }
}

double DesignSpace::snap(double v, const ParamSpec& p) const {
  double k = std::round((v - p.min) / p.step);
  double maxK = std::floor((p.max - p.min) / p.step + 1e-9);
  if (k < 0.0) k = 0.0;
  if (k > maxK) k = maxK;
  double snapped = p.min + k * p.step;
  if (p.integer) snapped = std::round(snapped);
  return snapped;
}

std::vector<double> DesignSpace::sample(util::Rng& rng) const {
  std::vector<double> x(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& p = params_[i];
    x[i] = snap(rng.uniform(p.min, p.max), p);
  }
  return x;
}

std::vector<double> DesignSpace::midpoint() const {
  std::vector<double> x(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i)
    x[i] = snap(0.5 * (params_[i].min + params_[i].max), params_[i]);
  return x;
}

std::vector<double> DesignSpace::clamp(const std::vector<double>& x) const {
  if (x.size() != params_.size()) throw std::invalid_argument("DesignSpace: dim mismatch");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = snap(x[i], params_[i]);
  return out;
}

std::vector<double> DesignSpace::applyActions(const std::vector<double>& x,
                                              const std::vector<int>& actions) const {
  if (actions.size() != params_.size())
    throw std::invalid_argument("DesignSpace: action dim mismatch");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (actions[i] < -1 || actions[i] > 1)
      throw std::invalid_argument("DesignSpace: action out of {-1,0,1}");
    out[i] = snap(x[i] + actions[i] * params_[i].step, params_[i]);
  }
  return out;
}

std::vector<double> DesignSpace::normalize(const std::vector<double>& x) const {
  if (x.size() != params_.size()) throw std::invalid_argument("DesignSpace: dim mismatch");
  std::vector<double> u(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto& p = params_[i];
    u[i] = (x[i] - p.min) / (p.max - p.min);
  }
  return u;
}

std::vector<double> DesignSpace::denormalize(const std::vector<double>& u) const {
  if (u.size() != params_.size()) throw std::invalid_argument("DesignSpace: dim mismatch");
  std::vector<double> x(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const auto& p = params_[i];
    x[i] = snap(p.min + u[i] * (p.max - p.min), p);
  }
  return x;
}

int DesignSpace::gridLevels(std::size_t i) const {
  const auto& p = params_.at(i);
  return static_cast<int>(std::floor((p.max - p.min) / p.step + 1e-9)) + 1;
}

bool DesignSpace::contains(const std::vector<double>& x) const {
  if (x.size() != params_.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto& p = params_[i];
    if (x[i] < p.min - 0.5 * p.step || x[i] > p.max + 0.5 * p.step) return false;
  }
  return true;
}

}  // namespace crl::circuit
