#include "circuit/spec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crl::circuit {

SpecSpace::SpecSpace(std::vector<SpecDef> specs) : specs_(std::move(specs)) {
  for (const auto& s : specs_) {
    if (s.sampleMax <= s.sampleMin)
      throw std::invalid_argument("SpecSpace: bad range for " + s.name);
    if (s.logScale && s.sampleMin <= 0.0)
      throw std::invalid_argument("SpecSpace: log scale needs positive range for " + s.name);
  }
}

std::vector<double> SpecSpace::sample(util::Rng& rng) const {
  std::vector<double> g(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const auto& s = specs_[i];
    if (s.logScale) {
      g[i] = std::exp(rng.uniform(std::log(s.sampleMin), std::log(s.sampleMax)));
    } else {
      g[i] = rng.uniform(s.sampleMin, s.sampleMax);
    }
  }
  return g;
}

std::vector<double> SpecSpace::sampleUnseen(util::Rng& rng, double margin) const {
  std::vector<double> g(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const auto& s = specs_[i];
    const double range = s.sampleMax - s.sampleMin;
    // Pick a side; draw within (0, margin] of the range beyond that side.
    const double offset = rng.uniform(0.02, margin) * range;
    if (rng.chance(0.5)) {
      g[i] = s.sampleMax + offset;
    } else {
      g[i] = std::max(s.sampleMin - offset, s.logScale ? 0.05 * s.sampleMin : 0.0);
      // Keep strictly positive for log-scaled or physically positive specs.
      if (g[i] <= 0.0) g[i] = 0.5 * s.sampleMin;
    }
  }
  return g;
}

std::vector<double> SpecSpace::normalize(const std::vector<double>& g) const {
  if (g.size() != specs_.size()) throw std::invalid_argument("SpecSpace: dim mismatch");
  std::vector<double> out(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto& s = specs_[i];
    double v;
    if (s.logScale) {
      const double lmin = std::log(s.sampleMin), lmax = std::log(s.sampleMax);
      const double lg = std::log(std::max(g[i], 1e-30));
      v = 2.0 * (lg - lmin) / (lmax - lmin) - 1.0;
    } else {
      v = 2.0 * (g[i] - s.sampleMin) / (s.sampleMax - s.sampleMin) - 1.0;
    }
    out[i] = std::clamp(v, -3.0, 3.0);
  }
  return out;
}

double SpecSpace::contribution(std::size_t i, double achieved, double target) const {
  const auto& s = specs_.at(i);
  const double denom = std::fabs(achieved) + std::fabs(target);
  if (denom < 1e-30) return 0.0;
  double d = (achieved - target) / denom;
  if (s.direction == SpecDirection::Minimize) d = -d;
  return std::min(d, 0.0);
}

double SpecSpace::reward(const std::vector<double>& achieved,
                         const std::vector<double>& target) const {
  if (achieved.size() != specs_.size() || target.size() != specs_.size())
    throw std::invalid_argument("SpecSpace: reward dim mismatch");
  double r = 0.0;
  for (std::size_t i = 0; i < specs_.size(); ++i)
    r += contribution(i, achieved[i], target[i]);
  return r;
}

double SpecSpace::signedReward(const std::vector<double>& achieved,
                               const std::vector<double>& target) const {
  if (achieved.size() != specs_.size() || target.size() != specs_.size())
    throw std::invalid_argument("SpecSpace: reward dim mismatch");
  double r = 0.0;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const auto& s = specs_[i];
    const double denom = std::fabs(achieved[i]) + std::fabs(target[i]);
    if (denom < 1e-30) continue;
    double d = (achieved[i] - target[i]) / denom;
    if (s.direction == SpecDirection::Minimize) d = -d;
    r += d;
  }
  return r;
}

bool SpecSpace::satisfied(const std::vector<double>& achieved,
                          const std::vector<double>& target) const {
  return reward(achieved, target) >= 0.0;
}

}  // namespace crl::circuit
