#include "circuit/bench_pool.h"

namespace crl::circuit {

BenchmarkPool::BenchmarkPool(Benchmark& proto, spice::SimSession& session)
    : session_(session), proto_(proto) {
  // One slot per session worker; the clones are built lazily on first use so
  // a 3-item corner sweep on an 8-worker session does not pay for 8 netlist
  // builds. Each slot is only ever touched by its own chunk task, and
  // clone() reads the (const) prototype, so concurrent lazy construction is
  // race-free.
  lanes_.resize(session.workerCount());
}

Benchmark& BenchmarkPool::lane(std::size_t i) {
  if (!lanes_[i]) lanes_[i] = proto_.clone();
  return *lanes_[i];
}

std::vector<Measurement> BenchmarkPool::measureAll(
    const std::vector<std::vector<double>>& paramSets, Fidelity fidelity) {
  // Benchmarks may alias both fidelities onto one counter (the op-amp's
  // AC/DC path serves coarse and fine alike), so only the measured
  // fidelity's counter is tracked and credited.
  std::vector<long> before(lanes_.size());
  for (std::size_t l = 0; l < lanes_.size(); ++l)
    before[l] = lanes_[l] ? lanes_[l]->simCount(fidelity) : 0;

  std::vector<Measurement> out(paramSets.size());
  session_.parallelChunks(
      paramSets.size(),
      [&](std::size_t first, std::size_t last, std::size_t slot) {
        Benchmark& target = lane(slot);
        for (std::size_t i = first; i < last; ++i) {
          target.setParams(paramSets[i]);
          target.resetSolverState();
          out[i] = target.measure(fidelity);
        }
      });

  // Credit the prototype with the simulations the lanes ran on its behalf.
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    if (!lanes_[l]) continue;
    const long delta = lanes_[l]->simCount(fidelity) - before[l];
    if (delta > 0) proto_.addSimCount(fidelity, delta);
  }
  return out;
}

}  // namespace crl::circuit
