#include "circuit/opamp.h"

#include <algorithm>
#include <stdexcept>

#include "nn/serialize.h"

namespace crl::circuit {

namespace {
constexpr double kMicron = 1e-6;
constexpr double kPico = 1e-12;

DesignSpace makeOpAmpSpace() {
  // Table 1: W in [1, 100] um, fingers in [2, 32], Cc in [0.1, 10] pF. Grid
  // steps are the paper's "smallest tuning unit": ~32 levels per parameter.
  std::vector<ParamSpec> params;
  for (int i = 1; i <= 7; ++i) {
    std::string fet = "M";
    fet += std::to_string(i);
    params.push_back({fet + ".W", 1.0, 100.0, 3.3, false});
    params.push_back({fet + ".nf", 2.0, 32.0, 1.0, true});
  }
  params.push_back({"Cc", 0.1, 10.0, 0.33, false});
  return DesignSpace(std::move(params));
}

SpecSpace makeOpAmpSpecs() {
  return SpecSpace({
      {"gain", 300.0, 500.0, SpecDirection::Maximize, false},
      {"ugbw", 1e6, 2.5e7, SpecDirection::Maximize, true},
      {"pm", 55.0, 60.0, SpecDirection::Maximize, false},
      {"power", 1e-4, 1e-2, SpecDirection::Minimize, true},
  });
}
}  // namespace

TwoStageOpAmp::TwoStageOpAmp(OpAmpConfig cfg)
    : cfg_(cfg), space_(makeOpAmpSpace()), specs_(makeOpAmpSpecs()) {
  params_ = space_.midpoint();
  buildNetlist();
  setParams(params_);
  buildGraph();
}

void TwoStageOpAmp::buildNetlist() {
  using namespace spice;
  MosModel nm;
  nm.type = MosType::Nmos;
  nm.kp = cfg_.kpN;
  nm.vth = cfg_.vthN;
  nm.lambda = cfg_.lambdaN;
  nm.length = cfg_.length;
  MosModel pm = nm;
  pm.type = MosType::Pmos;
  pm.kp = cfg_.kpP;
  pm.vth = cfg_.vthP;
  pm.lambda = cfg_.lambdaP;

  NodeId vdd = net_.node("vdd");
  NodeId vinp = net_.node("vinp");
  NodeId vinm = net_.node("vinm");
  NodeId ntail = net_.node("ntail");
  NodeId n1 = net_.node("n1");        // M1/M3 drains, mirror gate
  NodeId nout1 = net_.node("nout1");  // first-stage output
  NodeId nout = net_.node("nout");    // amp output
  NodeId nbias = net_.node("nbias");

  vddSrc_ = net_.add<VSource>("Vdd", vdd, kGround, cfg_.vdd);
  vbiasSrc_ = net_.add<VSource>("Vbias", nbias, kGround, cfg_.vbias);

  // In this topology M2's gate (vinm) is the NON-inverting input (its drain
  // drives the inverting second stage), and M1's gate (vinp) is inverting.
  // The AC drive therefore sits on vinm; the DC servo closes on vinp so the
  // loop is negative feedback. The servo capacitor AC-grounds vinp, so a
  // unit AC magnitude here is a unit differential drive.
  auto* vm = net_.add<VSource>("Vinm", vinm, kGround, cfg_.vcm);
  vm->setAcMag(1.0);

  const double w0 = 10.0 * kMicron;
  fets_.push_back(net_.add<Mosfet>("M1", n1, vinp, ntail, nm, w0, 2));
  fets_.push_back(net_.add<Mosfet>("M2", nout1, vinm, ntail, nm, w0, 2));
  fets_.push_back(net_.add<Mosfet>("M3", n1, n1, vdd, pm, w0, 2));
  fets_.push_back(net_.add<Mosfet>("M4", nout1, n1, vdd, pm, w0, 2));
  fets_.push_back(net_.add<Mosfet>("M5", ntail, nbias, kGround, nm, w0, 2));
  fets_.push_back(net_.add<Mosfet>("M6", nout, nout1, vdd, pm, w0, 2));
  fets_.push_back(net_.add<Mosfet>("M7", nout, nbias, kGround, nm, w0, 2));

  // Miller compensation with a gm-tracking zero-nulling resistor. Rz is
  // implemented the way production op-amps do it — as a triode device biased
  // to track 1/gm6 — so measure() updates its value to 1/gm6 at the solved
  // operating point (Rz carries no DC current, so this does not disturb the
  // bias). Exact nulling parks the Miller zero at infinity across the whole
  // sizing range.
  NodeId nzc = net_.node("nzc");
  cc_ = net_.add<Capacitor>("Cc", nout1, nzc, 1.0 * kPico);
  rz_ = net_.add<Resistor>("Rz", nzc, nout, cfg_.rZero);
  net_.add<Capacitor>("CL", nout, kGround, cfg_.loadCap);

  // DC servo: at DC the inverting input (vinp) follows the output, biasing
  // the amp at its balanced operating point regardless of input-pair
  // mismatch; above ~Hz the 1 GOhm / 1 mF low-pass opens the loop so the AC
  // measurement sees the open-loop transfer function.
  net_.add<Resistor>("Rservo", nout, vinp, 1e9);
  net_.add<Capacitor>("Cservo", vinp, kGround, 1e-3);

  outNode_ = nout;
  net_.finalize();
}

void TwoStageOpAmp::buildGraph() {
  GraphBuilder builder(net_);
  // Transistor nodes: normalized (W, nf) features that track params_ live.
  for (std::size_t i = 0; i < fets_.size(); ++i) {
    GraphNodeType type =
        fets_[i]->model().type == spice::MosType::Nmos ? GraphNodeType::Nmos
                                                       : GraphNodeType::Pmos;
    builder.addDevice(fets_[i], type, [this, i](double* slots) {
      const auto& pw = space_.param(2 * i);
      const auto& pf = space_.param(2 * i + 1);
      slots[0] = (params_[2 * i] - pw.min) / (pw.max - pw.min);
      slots[1] = (params_[2 * i + 1] - pf.min) / (pf.max - pf.min);
    });
  }
  builder.addDevice(cc_, GraphNodeType::Capacitor, [this](double* slots) {
    const auto& pc = space_.param(14);
    slots[0] = (params_[14] - pc.min) / (pc.max - pc.min);
  });
  builder.addDevice(net_.findDevice("CL"), GraphNodeType::Capacitor,
                    [this](double* slots) { slots[0] = cfg_.loadCap / 10e-12; });
  builder.addDevice(rz_, GraphNodeType::Resistor,
                    [this](double* slots) { slots[0] = rz_->resistance() / 10e3; });

  // Full topology: supply, ground and bias nets are graph nodes too
  // (dropped in the partial-topology ablation).
  if (cfg_.fullTopologyGraph) {
    builder.addNetNode(net_.findNode("vdd"), GraphNodeType::Supply, "VP",
                       [this](double* slots) { slots[0] = 1.0; });
    builder.addNetNode(spice::kGround, GraphNodeType::Ground, "VGND", nullptr);
    builder.addNetNode(net_.findNode("nbias"), GraphNodeType::Bias, "Vbias",
                       [this](double* slots) { slots[0] = cfg_.vbias / cfg_.vdd; });
  }
  graph_ = std::make_unique<CircuitGraph>(builder.build());
}

std::unique_ptr<Benchmark> TwoStageOpAmp::clone() const {
  auto copy = std::make_unique<TwoStageOpAmp>(cfg_);
  copy->setParams(params_);
  copy->setSolverChoice(solverChoice_);
  return copy;
}

std::string TwoStageOpAmp::solverStateSnapshot() const {
  nn::ByteWriter w;
  w.b8(lastOp_.has_value());
  w.vec(lastOp_ ? *lastOp_ : linalg::Vec{});
  w.f64(rz_->resistance());
  return w.take();
}

bool TwoStageOpAmp::restoreSolverStateSnapshot(const std::string& blob) {
  nn::ByteReader r(blob);
  bool hasOp = false;
  linalg::Vec op;
  double rz = 0.0;
  if (!r.b8(hasOp) || !r.vec(op) || !r.f64(rz) || !r.atEnd()) {
    resetSolverState();
    return false;
  }
  if (hasOp)
    lastOp_ = std::move(op);
  else
    lastOp_.reset();
  rz_->setResistance(rz);
  return true;
}

void TwoStageOpAmp::setParams(const std::vector<double>& params) {
  if (params.size() != kNumParams)
    throw std::invalid_argument("TwoStageOpAmp: expected 15 parameters");
  params_ = space_.clamp(params);
  for (std::size_t i = 0; i < fets_.size(); ++i) {
    fets_[i]->setGeometry(params_[2 * i] * kMicron,
                          static_cast<int>(params_[2 * i + 1]));
  }
  cc_->setCapacitance(params_[14] * kPico);
  // Geometry changes move the operating point; drop the stale warm start only
  // if it repeatedly fails (the DC solver falls back to homotopy anyway).
}

std::vector<double> TwoStageOpAmp::failedSpecs() {
  // Worst plausible corner of the spec space: tiny gain/BW/PM, high power.
  return {1.0, 1e4, 1.0, 0.1};
}

Measurement TwoStageOpAmp::measure(Fidelity) {
  // AC + DC is already the paper's fast path for analog circuits: coarse and
  // fine coincide for the op-amp.
  ++fineSims_;
  Measurement out;
  out.specs = failedSpecs();

  // Nodeset at the input common mode: the servo loop has a latched
  // equilibrium at vout ~ 0 that a flat 0 V guess falls into; starting all
  // nodes near VCM selects the balanced operating point (this mirrors the
  // .nodeset every open-loop testbench ships with).
  spice::DcOptions dcOpt;
  dcOpt.initialVoltage = cfg_.vcm;
  dcOpt.solver = solverChoice_;
  spice::DcAnalysis dc(net_, dcOpt);
  spice::DcResult op = lastOp_ ? dc.solve(*lastOp_) : dc.solve();
  auto biased = [&](const spice::DcResult& r) {
    const double vout = spice::Netlist::voltageOf(r.x, outNode_);
    return r.converged && vout > 0.05 && vout < cfg_.vdd - 0.05;
  };
  if (lastOp_ && !biased(op)) {
    // A stale warm start can drag the solve into the latched state; retry
    // cold from the nodeset.
    op = dc.solve();
  }
  if (!biased(op)) {
    lastOp_.reset();
    return out;
  }
  lastOp_ = op.x;

  const double power = cfg_.vdd * std::fabs(op.x[vddSrc_->currentIndex()]);

  // Track the nulling resistor to 1/gm6 at this operating point (see
  // buildNetlist); series with Cc, so the DC solution is unaffected.
  const auto e6 = fets_[5]->evalAt(op.x);
  rz_->setResistance(1.0 / std::max(e6.gm, 1e-6));

  spice::AcAnalysis ac(net_, op.x, solverChoice_);
  auto sweep =
      ac.sweep(outNode_, cfg_.fSweepLo, cfg_.fSweepHi, cfg_.pointsPerDecade, session_);
  auto metrics = spice::analyzeResponse(sweep);
  if (!metrics.valid) {
    // No unity crossing: report DC gain and power, floor the rest.
    out.specs = {std::max(metrics.dcGain, 1.0), 1e4, 1.0, std::max(power, 1e-6)};
    return out;
  }

  out.specs = {metrics.dcGain, metrics.unityGainFreq, metrics.phaseMarginDeg,
               std::max(power, 1e-9)};
  out.valid = true;
  return out;
}

long TwoStageOpAmp::simCount(Fidelity) const { return fineSims_; }

}  // namespace crl::circuit
