#pragma once
// Specification space and the paper's Eq. (1) reward.
//
// A SpecSpace defines, per specification: the sampling range of desired
// targets (Table 1), the optimization direction (bandwidth up, power down),
// and whether sampling/normalization happens on a log scale (bandwidth spans
// >1 decade).

#include <string>
#include <vector>

#include "util/rng.h"

namespace crl::circuit {

enum class SpecDirection { Maximize, Minimize };

struct SpecDef {
  std::string name;
  double sampleMin = 0.0;
  double sampleMax = 1.0;
  SpecDirection direction = SpecDirection::Maximize;
  bool logScale = false;
};

class SpecSpace {
 public:
  SpecSpace() = default;
  explicit SpecSpace(std::vector<SpecDef> specs);

  std::size_t size() const { return specs_.size(); }
  const SpecDef& spec(std::size_t i) const { return specs_.at(i); }
  const std::vector<SpecDef>& specs() const { return specs_; }

  /// Sample a target spec group from the Table 1 sampling space.
  std::vector<double> sample(util::Rng& rng) const;

  /// Sample an *unseen* target outside the training sampling space: each spec
  /// is drawn from a band extending `margin` (fraction of the range) beyond a
  /// randomly chosen side of its range (Fig. 6 protocol).
  std::vector<double> sampleUnseen(util::Rng& rng, double margin = 0.3) const;

  /// Normalize a spec vector to roughly [-1, 1] using the sampling bounds
  /// (values outside the box extrapolate smoothly and are clipped at +-3).
  std::vector<double> normalize(const std::vector<double>& g) const;

  /// Eq. (1): r = sum_j min(s_j * (g_j - g*_j) / (g_j + g*_j), 0), where s_j
  /// flips for minimize-direction specs. Zero iff every spec is satisfied.
  double reward(const std::vector<double>& achieved,
                const std::vector<double>& target) const;

  /// Reward-ablation variant: the same normalized differences *without* the
  /// per-spec min(., 0) clipping, so over-achieving one spec earns positive
  /// reward (the shaping Eq. (1) deliberately avoids).
  double signedReward(const std::vector<double>& achieved,
                      const std::vector<double>& target) const;

  /// True iff all specs meet or beat their targets (reward == 0).
  bool satisfied(const std::vector<double>& achieved,
                 const std::vector<double>& target) const;

  /// Per-spec contribution to Eq. (1) (<= 0); exposed for diagnostics.
  double contribution(std::size_t i, double achieved, double target) const;

 private:
  std::vector<SpecDef> specs_;
};

}  // namespace crl::circuit
