#include "circuit/graph.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace crl::circuit {

CircuitGraph::CircuitGraph(std::vector<GraphNode> nodes,
                           std::vector<std::pair<int, int>> edges)
    : nodes_(std::move(nodes)), edges_(std::move(edges)) {
  const std::size_t n = nodes_.size();
  adj_ = linalg::Mat(n, n);
  for (auto [a, b] : edges_) {
    if (a < 0 || b < 0 || a >= static_cast<int>(n) || b >= static_cast<int>(n) || a == b)
      throw std::invalid_argument("CircuitGraph: bad edge");
    adj_(a, b) = 1.0;
    adj_(b, a) = 1.0;
  }

  // Normalized adjacency with self loops (Eq. 2): D^-1/2 (A + I) D^-1/2.
  linalg::Mat ahat = adj_;
  for (std::size_t i = 0; i < n; ++i) ahat(i, i) += 1.0;
  std::vector<double> dInvSqrt(n);
  for (std::size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (std::size_t j = 0; j < n; ++j) deg += ahat(i, j);
    dInvSqrt[i] = 1.0 / std::sqrt(deg);
  }
  normAdj_ = linalg::Mat(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      normAdj_(i, j) = dInvSqrt[i] * ahat(i, j) * dInvSqrt[j];

  mask_ = linalg::Mat(n, n, -1e9);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i == j || adj_(i, j) > 0.5) mask_(i, j) = 0.0;
}

linalg::Mat CircuitGraph::features() const {
  const std::size_t n = nodes_.size();
  linalg::Mat x(n, kNodeFeatureDim);
  for (std::size_t i = 0; i < n; ++i) {
    const int code = static_cast<int>(nodes_[i].type);
    for (int b = 0; b < kTypeBits; ++b)
      x(i, b) = ((code >> (kTypeBits - 1 - b)) & 1) ? 1.0 : 0.0;
    double slots[kParamSlots] = {0.0, 0.0};
    if (nodes_[i].fillParams) nodes_[i].fillParams(slots);
    for (int s = 0; s < kParamSlots; ++s) x(i, kTypeBits + s) = slots[s];
  }
  return x;
}

int CircuitGraph::degree(int i) const {
  int d = 0;
  for (std::size_t j = 0; j < nodes_.size(); ++j)
    if (adj_(i, j) > 0.5) ++d;
  return d;
}

void GraphBuilder::addDevice(const spice::Device* dev, GraphNodeType type,
                             std::function<void(double*)> fillParams) {
  devices_.push_back({dev, type, std::move(fillParams)});
}

void GraphBuilder::addNetNode(spice::NodeId net, GraphNodeType type,
                              const std::string& name,
                              std::function<void(double*)> fillParams) {
  netNodes_.push_back({net, type, name, std::move(fillParams)});
}

CircuitGraph GraphBuilder::build() const {
  std::vector<GraphNode> nodes;
  nodes.reserve(devices_.size() + netNodes_.size());
  for (const auto& d : devices_) nodes.push_back({d.dev->name(), d.type, d.fill});
  for (const auto& nn : netNodes_) nodes.push_back({nn.name, nn.type, nn.fill});

  // Nets owned by a net-node do not create device-device edges; the edge goes
  // device <-> net-node instead (this is how VP/GND/bias become hubs).
  std::set<spice::NodeId> specialNets;
  for (const auto& nn : netNodes_) specialNets.insert(nn.net);

  std::set<std::pair<int, int>> edgeSet;
  auto addEdge = [&](int a, int b) {
    if (a == b) return;
    edgeSet.insert({std::min(a, b), std::max(a, b)});
  };

  // Device-device edges through shared ordinary nets.
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    auto ti = devices_[i].dev->terminals();
    for (std::size_t j = i + 1; j < devices_.size(); ++j) {
      auto tj = devices_[j].dev->terminals();
      bool connected = false;
      for (spice::NodeId a : ti) {
        if (specialNets.count(a)) continue;
        if (std::find(tj.begin(), tj.end(), a) != tj.end()) connected = true;
      }
      if (connected) addEdge(static_cast<int>(i), static_cast<int>(j));
    }
  }

  // Device <-> net-node edges.
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    auto ti = devices_[i].dev->terminals();
    for (std::size_t k = 0; k < netNodes_.size(); ++k) {
      if (std::find(ti.begin(), ti.end(), netNodes_[k].net) != ti.end())
        addEdge(static_cast<int>(i), static_cast<int>(devices_.size() + k));
    }
  }

  std::vector<std::pair<int, int>> edges(edgeSet.begin(), edgeSet.end());
  return CircuitGraph(std::move(nodes), std::move(edges));
}

}  // namespace crl::circuit
