#pragma once
// Common interface of the sizable circuit benchmarks (two-stage Op-Amp and
// GaN RF PA). Environments talk to circuits exclusively through this.

#include <string>
#include <vector>

#include "circuit/design_space.h"
#include "circuit/graph.h"
#include "circuit/spec.h"

namespace crl::circuit {

/// Simulation fidelity (Sec. 3 "Transfer Learning"): Fine is the reference
/// environment (AC/DC for the op-amp, transient steady-state for the PA);
/// Coarse is the fast approximation used to train RF agents.
enum class Fidelity { Coarse, Fine };

struct Measurement {
  std::vector<double> specs;  ///< aligned with SpecSpace order
  bool valid = false;         ///< false if simulation failed to converge
};

class Benchmark {
 public:
  virtual ~Benchmark() = default;

  virtual const std::string& name() const = 0;
  virtual const DesignSpace& designSpace() const = 0;
  virtual const SpecSpace& specSpace() const = 0;
  virtual const CircuitGraph& graph() const = 0;

  virtual const std::vector<double>& currentParams() const = 0;
  virtual void setParams(const std::vector<double>& params) = 0;

  /// Simulate the current sizing and report the spec vector. Implementations
  /// must return worst-case specs with valid=false when the solver fails, so
  /// callers can always compute a (very negative) reward.
  virtual Measurement measure(Fidelity fidelity) = 0;

  /// Convenience: set parameters then measure.
  Measurement measureAt(const std::vector<double>& params, Fidelity fidelity) {
    setParams(params);
    return measure(fidelity);
  }

  /// Number of simulator invocations so far (per fidelity), for the paper's
  /// "# of simulation steps" bookkeeping.
  virtual long simCount(Fidelity fidelity) const = 0;

  /// Worst-case spec vector reported when simulation fails.
  virtual std::vector<double> worstSpecs() const = 0;
};

}  // namespace crl::circuit
