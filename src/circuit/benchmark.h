#pragma once
// Common interface of the sizable circuit benchmarks (two-stage Op-Amp and
// GaN RF PA). Environments talk to circuits exclusively through this.

#include <memory>
#include <string>
#include <vector>

#include "circuit/design_space.h"
#include "circuit/graph.h"
#include "circuit/spec.h"
#include "linalg/solver_choice.h"

namespace crl::spice {
class SimSession;
}

namespace crl::circuit {

/// Simulation fidelity (Sec. 3 "Transfer Learning"): Fine is the reference
/// environment (AC/DC for the op-amp, transient steady-state for the PA);
/// Coarse is the fast approximation used to train RF agents.
enum class Fidelity { Coarse, Fine };

struct Measurement {
  std::vector<double> specs;  ///< aligned with SpecSpace order
  bool valid = false;         ///< false if simulation failed to converge
};

class Benchmark {
 public:
  virtual ~Benchmark() = default;

  virtual const std::string& name() const = 0;
  virtual const DesignSpace& designSpace() const = 0;
  virtual const SpecSpace& specSpace() const = 0;
  virtual const CircuitGraph& graph() const = 0;

  virtual const std::vector<double>& currentParams() const = 0;
  virtual void setParams(const std::vector<double>& params) = 0;

  /// Simulate the current sizing and report the spec vector. Implementations
  /// must return worst-case specs with valid=false when the solver fails, so
  /// callers can always compute a (very negative) reward.
  virtual Measurement measure(Fidelity fidelity) = 0;

  /// Convenience: set parameters then measure.
  Measurement measureAt(const std::vector<double>& params, Fidelity fidelity) {
    setParams(params);
    return measure(fidelity);
  }

  /// Number of simulator invocations so far (per fidelity), for the paper's
  /// "# of simulation steps" bookkeeping.
  virtual long simCount(Fidelity fidelity) const = 0;

  /// Fold externally-performed simulations into this benchmark's counters:
  /// pooled fan-outs measure on clone lanes, then credit the prototype so
  /// simCount bookkeeping stays invariant to worker count.
  virtual void addSimCount(Fidelity fidelity, long n) = 0;

  /// Worst-case spec vector reported when simulation fails.
  virtual std::vector<double> worstSpecs() const = 0;

  /// Deep copy with the same configuration and current sizing but fresh
  /// solver state: no warm starts, zeroed sim counters, no attached session.
  /// Clones share nothing with the original, so they can be measured from
  /// other threads (BenchmarkPool lanes).
  virtual std::unique_ptr<Benchmark> clone() const = 0;

  /// Drop cached solver state (DC warm starts and the like) so the next
  /// measure() depends only on the current parameters — the determinism hook
  /// behind schedule-independent pooled fan-outs.
  virtual void resetSolverState() {}

  /// Opaque snapshot of the cached solver state (DC warm starts, the
  /// gm-tracked zero-nulling resistor, ...). measure() depends on this state
  /// at ulp level, so bitwise checkpoint/resume parity must carry it: a
  /// freshly constructed benchmark given the same parameters but no warm
  /// start solves from a different initial guess and lands on a
  /// last-bit-different operating point. Stateless benchmarks return "".
  virtual std::string solverStateSnapshot() const { return {}; }

  /// Restore a solverStateSnapshot() blob taken from an identically
  /// configured benchmark. On a malformed blob the solver state is reset
  /// (never half-restored) and false is returned.
  virtual bool restoreSolverStateSnapshot(const std::string& blob) {
    return blob.empty();
  }

  /// Attach (or detach, with nullptr) a simulation session: benchmarks whose
  /// measure() runs an AC sweep fan the frequency points out over the
  /// session's workers. Results are bit-identical with or without a session.
  /// The session must outlive the benchmark's use of it and must not be
  /// shared across threads.
  void setSession(spice::SimSession* session) { session_ = session; }
  spice::SimSession* session() const { return session_; }

  /// Dense/sparse solver policy for every analysis this benchmark runs.
  /// Auto (the default) sizes the choice against CRL_SPICE_SPARSE_THRESHOLD,
  /// which keeps the small hand-coded paper circuits on the bit-exact dense
  /// path; Force* pins the backend (parity suites, benches). clone() carries
  /// the policy to pool lanes so pooled fan-outs measure with the same
  /// backend as the prototype.
  void setSolverChoice(linalg::SolverChoice choice) { solverChoice_ = choice; }
  linalg::SolverChoice solverChoice() const { return solverChoice_; }

 protected:
  spice::SimSession* session_ = nullptr;
  linalg::SolverChoice solverChoice_ = linalg::SolverChoice::Auto;
};

}  // namespace crl::circuit
