#pragma once
// The CMOS two-stage Miller-compensated Op-Amp benchmark (Fig. 2 of the
// paper; the standard benchmark of AutoCkt / GCN-RL / BO / GA papers).
//
// Topology (7 transistors + compensation cap, matching Table 1's
// 2*7 + 1 = 15 tunable parameters):
//
//   M1/M2  NMOS differential input pair
//   M3/M4  PMOS current-mirror load (M3 diode-connected)
//   M5     NMOS tail current source     (gate at Vbias)
//   M6     PMOS common-source 2nd stage (gate at first-stage output)
//   M7     NMOS output current sink     (gate at Vbias)
//   Cc     Miller compensation capacitor, CL fixed load
//
// Measurement testbench: the op-amp is placed in a DC servo loop (1 GOhm /
// 1 mF low-pass from the output to the inverting input) so the operating
// point self-biases regardless of input-pair mismatch — exactly how an
// open-loop gain testbench is wired in an industrial simulator. The AC
// differential drive (+0.5 / -0.5) then measures the open-loop transfer
// function, from which gain, UGBW, phase margin are extracted; power comes
// from the supply branch current at the DC operating point.

#include <memory>
#include <optional>

#include "circuit/benchmark.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/mosfet.h"

namespace crl::circuit {

/// Fixed (non-tunable) technology and testbench constants.
struct OpAmpConfig {
  double vdd = 1.2;          ///< supply [V]
  double vcm = 0.6;          ///< input common mode [V]
  double vbias = 0.48;       ///< NMOS current-source gate bias [V]
  double loadCap = 1e-12;    ///< fixed output load [F]
  /// Initial zero-nulling resistance [Ohm]; measure() retunes it to 1/gm6
  /// at each operating point (gm-tracking triode implementation).
  double rZero = 150.0;
  double length = 150e-9;    ///< channel length (analog device in 45nm node)
  double kpN = 300e-6;       ///< NMOS mu*Cox [A/V^2]
  double kpP = 150e-6;       ///< PMOS mu*Cox [A/V^2]
  double vthN = 0.35;
  double vthP = 0.35;
  double lambdaN = 0.25;     ///< short-channel CLM
  double lambdaP = 0.30;
  /// Ablation switch: when false the circuit graph omits the supply /
  /// ground / bias net nodes (Baseline B's partial-topology flaw).
  bool fullTopologyGraph = true;
  double fSweepLo = 1e3;     ///< AC sweep bounds [Hz]
  double fSweepHi = 1e11;    ///< high enough that every sizing crosses unity
  int pointsPerDecade = 8;
};

/// Spec order used throughout: [gain (V/V), UGBW (Hz), PM (deg), power (W)].
class TwoStageOpAmp : public Benchmark {
 public:
  static constexpr std::size_t kNumParams = 15;  // 7 x (W, nf) + Cc
  static constexpr std::size_t kNumSpecs = 4;

  explicit TwoStageOpAmp(OpAmpConfig cfg = {});

  const std::string& name() const override { return name_; }
  const DesignSpace& designSpace() const override { return space_; }
  const SpecSpace& specSpace() const override { return specs_; }
  const CircuitGraph& graph() const override { return *graph_; }

  const std::vector<double>& currentParams() const override { return params_; }
  void setParams(const std::vector<double>& params) override;
  Measurement measure(Fidelity fidelity) override;
  long simCount(Fidelity fidelity) const override;
  void addSimCount(Fidelity, long n) override { fineSims_ += n; }
  std::unique_ptr<Benchmark> clone() const override;
  /// Clears the DC warm start and re-parks the gm-tracking Rz at its config
  /// value: Rz is retuned from each solved operating point, and its stale
  /// value is stamped into the next DC Newton matrix — harmless physically
  /// (Rz carries no DC current) but an ulp-level history dependence the
  /// pooled toolkit's schedule-independence contract cannot afford.
  void resetSolverState() override {
    lastOp_.reset();
    rz_->setResistance(cfg_.rZero);
  }
  /// Snapshot/restore of exactly the state resetSolverState() clears, so
  /// checkpointed training resumes from the same warm start it would have
  /// carried forward (tests/rl/test_resume_parity.cpp depends on this).
  std::string solverStateSnapshot() const override;
  bool restoreSolverStateSnapshot(const std::string& blob) override;

  /// Worst-case spec vector used when the solver fails.
  static std::vector<double> failedSpecs();
  std::vector<double> worstSpecs() const override { return failedSpecs(); }

  const OpAmpConfig& config() const { return cfg_; }
  spice::Netlist& netlist() { return net_; }

 private:
  void buildNetlist();
  void buildGraph();

  std::string name_ = "two-stage-opamp";
  OpAmpConfig cfg_;
  DesignSpace space_;
  SpecSpace specs_;
  std::vector<double> params_;

  spice::Netlist net_;
  std::vector<spice::Mosfet*> fets_;   // M1..M7
  spice::Capacitor* cc_ = nullptr;
  spice::Resistor* rz_ = nullptr;
  spice::VSource* vddSrc_ = nullptr;
  spice::VSource* vbiasSrc_ = nullptr;
  spice::NodeId outNode_ = spice::kGround;
  std::unique_ptr<CircuitGraph> graph_;
  std::optional<linalg::Vec> lastOp_;  // warm start for the DC solver
  long fineSims_ = 0;
};

}  // namespace crl::circuit
