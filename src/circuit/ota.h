#pragma once
// Five-transistor OTA benchmark — a third circuit demonstrating that the
// framework generalizes beyond the paper's two evaluation circuits (the
// paper positions the method as applying to "various analog circuits").
//
// Topology (single stage, 5 x (W, nf) = 10 tunable parameters):
//
//   M1/M2  NMOS differential input pair
//   M3/M4  PMOS current-mirror load (M3 diode-connected)
//   M5     NMOS tail current source (gate at Vbias)
//   CL     fixed load capacitor at the output (M2/M4 drains)
//
// Spec order matches the two-stage op-amp: [gain, UGBW (Hz), PM (deg),
// power (W)]. A single-stage OTA has no Miller compensation, so its phase
// margin is naturally high and the binding trade-off is gain/bandwidth vs
// power — a usefully different optimization landscape from the two-stage.
//
// The measurement testbench is the same DC-servo open-loop arrangement used
// by TwoStageOpAmp.

#include <memory>
#include <optional>

#include "circuit/benchmark.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/mosfet.h"

namespace crl::circuit {

struct OtaConfig {
  double vdd = 1.2;        ///< supply [V]
  double vcm = 0.6;        ///< input common mode [V]
  double vbias = 0.48;     ///< tail current source gate bias [V]
  double loadCap = 2e-12;  ///< fixed output load [F]
  double length = 150e-9;  ///< channel length [m]
  double kpN = 300e-6;
  double kpP = 150e-6;
  double vthN = 0.35;
  double vthP = 0.35;
  double lambdaN = 0.25;
  double lambdaP = 0.30;
  bool fullTopologyGraph = true;
  double fSweepLo = 1e3;
  double fSweepHi = 1e11;
  int pointsPerDecade = 8;
};

class FiveTransistorOta : public Benchmark {
 public:
  static constexpr std::size_t kNumParams = 10;  // 5 x (W, nf)
  static constexpr std::size_t kNumSpecs = 4;

  explicit FiveTransistorOta(OtaConfig cfg = {});

  const std::string& name() const override { return name_; }
  const DesignSpace& designSpace() const override { return space_; }
  const SpecSpace& specSpace() const override { return specs_; }
  const CircuitGraph& graph() const override { return *graph_; }

  const std::vector<double>& currentParams() const override { return params_; }
  void setParams(const std::vector<double>& params) override;
  Measurement measure(Fidelity fidelity) override;
  long simCount(Fidelity fidelity) const override;
  void addSimCount(Fidelity, long n) override { fineSims_ += n; }
  std::unique_ptr<Benchmark> clone() const override;
  void resetSolverState() override { lastOp_.reset(); }
  std::string solverStateSnapshot() const override;
  bool restoreSolverStateSnapshot(const std::string& blob) override;

  static std::vector<double> failedSpecs();
  std::vector<double> worstSpecs() const override { return failedSpecs(); }

  const OtaConfig& config() const { return cfg_; }
  spice::Netlist& netlist() { return net_; }

 private:
  void buildNetlist();
  void buildGraph();

  std::string name_ = "five-transistor-ota";
  OtaConfig cfg_;
  DesignSpace space_;
  SpecSpace specs_;
  std::vector<double> params_;

  spice::Netlist net_;
  std::vector<spice::Mosfet*> fets_;  // M1..M5
  spice::VSource* vddSrc_ = nullptr;
  spice::NodeId outNode_ = spice::kGround;
  std::unique_ptr<CircuitGraph> graph_;
  std::optional<linalg::Vec> lastOp_;
  long fineSims_ = 0;
};

}  // namespace crl::circuit
