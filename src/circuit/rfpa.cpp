#include "circuit/rfpa.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace crl::circuit {

namespace {
constexpr double kMicron = 1e-6;

DesignSpace makeRfPaSpace() {
  // Table 1: W in [16, 100] um, fingers 1..16, for D1..D5, DF and M1.
  static const char* kNames[7] = {"D1", "D2", "D3", "D4", "D5", "DF", "M1"};
  std::vector<ParamSpec> params;
  for (const char* n : kNames) {
    params.push_back({std::string(n) + ".W", 16.0, 100.0, 3.0, false});
    params.push_back({std::string(n) + ".nf", 1.0, 16.0, 1.0, true});
  }
  return DesignSpace(std::move(params));
}

SpecSpace makeRfPaSpecs() {
  // Spec order: [power efficiency (fraction), output power (W)].
  return SpecSpace({
      {"efficiency", 0.50, 0.60, SpecDirection::Maximize, false},
      {"pout", 2.0, 3.0, SpecDirection::Maximize, false},
  });
}
}  // namespace

GanRfPa::GanRfPa(RfPaConfig cfg)
    : cfg_(cfg), space_(makeRfPaSpace()), specs_(makeRfPaSpecs()) {
  params_ = space_.midpoint();
  buildNetlist();
  setParams(params_);
  buildGraph();
}

void GanRfPa::buildNetlist() {
  using namespace spice;
  const GanModel& gm = cfg_.ganModel;

  NodeId vdd = net_.node("vdd");    // 28 V power-stage supply (VP)
  NodeId vdrv = net_.node("vdrv");  // 7 V driver supply (VP1)
  NodeId vb1 = net_.node("vb1");
  NodeId vb2 = net_.node("vb2");
  NodeId in = net_.node("in");
  NodeId out = net_.node("out");

  vddSrc_ = net_.add<VSource>("Vdd", vdd, kGround, cfg_.vdd);
  net_.add<VSource>("Vdrv", vdrv, kGround, cfg_.vdrv);
  net_.add<VSource>("Vb1", vb1, kGround, cfg_.vbiasDriver);
  net_.add<VSource>("Vb2", vb2, kGround, cfg_.vbiasPower);
  vinSrc_ = net_.add<VSource>("Vin", in, kGround, 0.0);
  vinSrc_->setSine(cfg_.inputAmplitude, cfg_.f0);

  const double w0 = 30.0 * kMicron;
  // Driver chain: D1 | D2 | D3||D4 | D5||DF, AC-coupled common-source
  // stages. Depletion-mode self-bias: gate returned to Vbias1 through Rb,
  // source lifted by Rs (AC-bypassed), so vgs ~ -Id*Rs adapts to sizing.
  NodeId g1 = net_.node("g1"), d1 = net_.node("d1"), s1 = net_.node("s1");
  NodeId g2 = net_.node("g2"), d2 = net_.node("d2"), s2 = net_.node("s2");
  NodeId g3 = net_.node("g3"), d3 = net_.node("d3"), s3 = net_.node("s3");
  NodeId g4 = net_.node("g4"), d4 = net_.node("d4"), s4 = net_.node("s4");
  NodeId gm1 = net_.node("gm1"), dm = net_.node("dm");

  auto stagePassives = [&](const char* tag, NodeId g, NodeId d, NodeId s,
                           double rd, double rs) {
    net_.add<Resistor>(std::string("Rb") + tag, vb1, g, cfg_.biasRes);
    net_.add<Resistor>(std::string("Rd") + tag, vdrv, d, rd);
    net_.add<Resistor>(std::string("Rs") + tag, s, kGround, rs);
    net_.add<Capacitor>(std::string("Cs") + tag, s, kGround, cfg_.bypassCap);
  };

  net_.add<Capacitor>("Cin", in, g1, cfg_.couplingCap);
  fets_.push_back(net_.add<GanHemt>("D1", d1, g1, s1, gm, w0, 2));
  stagePassives("1", g1, d1, s1, cfg_.rDrv1, cfg_.rSrc1);

  net_.add<Capacitor>("C12", d1, g2, cfg_.couplingCap);
  fets_.push_back(net_.add<GanHemt>("D2", d2, g2, s2, gm, w0, 2));
  stagePassives("2", g2, d2, s2, cfg_.rDrv2, cfg_.rSrc2);

  net_.add<Capacitor>("C23", d2, g3, cfg_.couplingCap);
  fets_.push_back(net_.add<GanHemt>("D3", d3, g3, s3, gm, w0, 2));
  fets_.push_back(net_.add<GanHemt>("D4", d3, g3, s3, gm, w0, 2));
  stagePassives("3", g3, d3, s3, cfg_.rDrv3, cfg_.rSrc3);

  net_.add<Capacitor>("C34", d3, g4, cfg_.couplingCap);
  fets_.push_back(net_.add<GanHemt>("D5", d4, g4, s4, gm, w0, 2));
  fets_.push_back(net_.add<GanHemt>("DF", d4, g4, s4, gm, w0, 2));
  stagePassives("4", g4, d4, s4, cfg_.rDrv4, cfg_.rSrc4);

  // Power stage: AC-coupled gate with its own class-AB bias; choke-fed drain
  // and DC-blocked 50-Ohm load.
  net_.add<Capacitor>("C4m", d4, gm1, 2.0 * cfg_.couplingCap);
  net_.add<Resistor>("Rbm", vb2, gm1, cfg_.biasRes);
  fets_.push_back(net_.add<GanHemt>("M1", dm, gm1, kGround, gm, w0, 4));
  net_.add<Inductor>("Lchoke", vdd, dm, cfg_.choke);
  net_.add<Capacitor>("Cblk", dm, out, 200e-12);
  net_.add<Resistor>("RL", out, kGround, cfg_.rLoad);

  outNode_ = out;
  net_.finalize();
}

void GanRfPa::buildGraph() {
  GraphBuilder builder(net_);
  for (std::size_t i = 0; i < fets_.size(); ++i) {
    builder.addDevice(fets_[i], GraphNodeType::GanFet, [this, i](double* slots) {
      const auto& pw = space_.param(2 * i);
      const auto& pf = space_.param(2 * i + 1);
      slots[0] = (params_[2 * i] - pw.min) / (pw.max - pw.min);
      slots[1] = (params_[2 * i + 1] - pf.min) / (pf.max - pf.min);
    });
  }
  builder.addNetNode(net_.findNode("vdd"), GraphNodeType::Supply, "VP",
                     [this](double* slots) { slots[0] = 1.0; });
  builder.addNetNode(net_.findNode("vdrv"), GraphNodeType::Supply, "VP1",
                     [this](double* slots) { slots[0] = 7.0 / cfg_.vdd; });
  builder.addNetNode(spice::kGround, GraphNodeType::Ground, "VGND", nullptr);
  builder.addNetNode(net_.findNode("vb1"), GraphNodeType::Bias, "Vbias1",
                     [this](double* slots) { slots[0] = cfg_.vbiasDriver / 5.0; });
  builder.addNetNode(net_.findNode("vb2"), GraphNodeType::Bias, "Vbias2",
                     [this](double* slots) { slots[0] = cfg_.vbiasPower / 5.0; });
  graph_ = std::make_unique<CircuitGraph>(builder.build());
}

std::unique_ptr<Benchmark> GanRfPa::clone() const {
  auto copy = std::make_unique<GanRfPa>(cfg_);
  copy->setParams(params_);
  copy->setSolverChoice(solverChoice_);
  return copy;
}

void GanRfPa::setParams(const std::vector<double>& params) {
  if (params.size() != kNumParams)
    throw std::invalid_argument("GanRfPa: expected 14 parameters");
  params_ = space_.clamp(params);
  for (std::size_t i = 0; i < fets_.size(); ++i) {
    fets_[i]->setGeometry(params_[2 * i] * kMicron,
                          static_cast<int>(params_[2 * i + 1]));
  }
}

std::vector<double> GanRfPa::failedSpecs() { return {0.01, 0.01}; }

Measurement GanRfPa::measure(Fidelity fidelity) {
  return fidelity == Fidelity::Fine ? measureFine() : measureCoarse();
}

long GanRfPa::simCount(Fidelity fidelity) const {
  return fidelity == Fidelity::Fine ? fineSims_ : coarseSims_;
}

Measurement GanRfPa::measureFine() {
  ++fineSims_;
  Measurement out;
  out.specs = failedSpecs();

  const double period = 1.0 / cfg_.f0;

  // Hard sizings occasionally defeat the base time step; retry once with a
  // finer grid before declaring the point unsimulatable.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int spp = cfg_.stepsPerPeriod * (attempt + 1);
    const double dt = period / spp;
    const double tMeasStart = cfg_.settlePeriods * period;
    const double tStop = (cfg_.settlePeriods + 1) * period;

    std::vector<double> vout, iVdd;
    spice::TranOptions opt;
    opt.stepLimit = 4.0;  // 28 V circuit: allow healthy Newton steps
    opt.solver = solverChoice_;
    spice::TranAnalysis tran(net_, opt);
    spice::TranResult res = tran.run(
        dt, tStop,
        [&](double t, const linalg::Vec& x) {
          if (t > tMeasStart + 0.5 * dt) {
            vout.push_back(spice::Netlist::voltageOf(x, outNode_));
            iVdd.push_back(-x[vddSrc_->currentIndex()]);
          }
        },
        /*record=*/false);
    if (!res.converged || vout.size() < static_cast<std::size_t>(spp)) continue;

    // Trim to exactly one period of samples.
    vout.resize(static_cast<std::size_t>(spp));
    auto coeffs = spice::fourierCoefficients(vout, 1);
    const double v1 = std::abs(coeffs[1]);
    const double pout = v1 * v1 / (2.0 * cfg_.rLoad);

    // Drain efficiency of the power stage (the metric quoted for the
    // Diduck et al. amplifier): fundamental output power over the
    // power-stage supply power. Driver consumption is excluded.
    double pdc = 0.0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(spp); ++i)
      pdc += cfg_.vdd * iVdd[i];
    pdc /= spp;
    if (pdc <= 1e-6) return out;

    out.specs = {std::clamp(pout / pdc, 1e-3, 0.99), std::max(pout, 1e-3)};
    out.valid = true;
    return out;
  }
  return out;
}

Measurement GanRfPa::measureCoarse() {
  ++coarseSims_;
  Measurement out;
  out.specs = failedSpecs();

  spice::DcOptions dcOpt;
  dcOpt.solver = solverChoice_;
  spice::DcAnalysis dc(net_, dcOpt);
  spice::DcResult op = dc.solve();
  if (!op.converged) return out;

  // Quasi-static signal-chain estimate from the DC operating point. Driver
  // stage order mirrors buildNetlist: (device indices, load R, next-stage Cgs).
  struct Stage {
    std::vector<int> devs;
    double rLoad;
  };
  const Stage stages[4] = {
      {{0}, cfg_.rDrv1}, {{1}, cfg_.rDrv2}, {{2, 3}, cfg_.rDrv3}, {{4, 5}, cfg_.rDrv4}};

  double amp = cfg_.inputAmplitude;
  for (int s = 0; s < 4; ++s) {
    double gmSum = 0.0, idq = 0.0;
    for (int d : stages[s].devs) {
      auto e = fets_[static_cast<std::size_t>(d)]->evalAt(op.x);
      gmSum += e.gm;
      idq += e.id;
    }
    // Next-stage input capacitance rolls the stage gain off at f0.
    double cNext = 0.0;
    if (s < 3) {
      for (int d : stages[s + 1].devs) cNext += fets_[static_cast<std::size_t>(d)]->cgs();
    } else {
      cNext = fets_[6]->cgs();
    }
    const double fp = 1.0 / (2.0 * std::numbers::pi * stages[s].rLoad * std::max(cNext, 1e-15));
    const double rolloff = 1.0 / std::sqrt(1.0 + (cfg_.f0 / fp) * (cfg_.f0 / fp));
    double gain = gmSum * stages[s].rLoad * rolloff;
    // The quiescent drain-source drop of the stage bounds the swing (the
    // source is AC-grounded by the bypass capacitor).
    const auto* dev = fets_[static_cast<std::size_t>(stages[s].devs[0])];
    const double vdsq = spice::Netlist::voltageOf(op.x, dev->drain()) -
                        spice::Netlist::voltageOf(op.x, dev->source());
    const double swingMax = std::max(std::min(idq * stages[s].rLoad, vdsq - 0.8), 0.0);
    amp = std::min(gain * amp, swingMax);
    if (amp <= 1e-6) {
      // Dead driver chain: the simulation succeeded, the design is just bad.
      out.specs = {1e-3, 1e-3};
      out.valid = true;
      return out;
    }
  }

  // Power stage: sample the static transfer over one period (the "DC sweep"),
  // with one fixed-point refinement of the drain load-line interaction.
  const auto* m1 = fets_[6];
  const double ipk = m1->model().ipkPerWidth * m1->effectiveWidth();
  const int nTheta = 64;
  double v1 = 0.0;  // fundamental drain-voltage amplitude estimate
  double i1 = 0.0, iavg = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    double c1 = 0.0, s1 = 0.0, sum = 0.0;
    for (int k = 0; k < nTheta; ++k) {
      const double theta = 2.0 * std::numbers::pi * k / nTheta;
      const double vgs = cfg_.vbiasPower + amp * std::cos(theta);
      const double vds = std::max(cfg_.vdd - v1 * std::cos(theta), 0.5);
      const double id = spice::evalGan(m1->model(), ipk, vgs, vds).id;
      sum += id;
      c1 += id * std::cos(theta);
      s1 += id * std::sin(theta);
    }
    iavg = sum / nTheta;
    i1 = 2.0 * std::sqrt(c1 * c1 + s1 * s1) / nTheta;
    v1 = std::min(i1 * cfg_.rLoad, cfg_.vdd - 2.0);
  }
  const double pout = 0.5 * v1 * std::min(i1, v1 / cfg_.rLoad + 1e-12);
  const double pdc = cfg_.vdd * iavg;  // drain efficiency (driver excluded)
  if (pdc <= 1e-6 || pout <= 1e-6) return out;

  // Global calibration of the quasi-static estimate against the transient
  // reference (the quasi-static path ignores reactive losses and slightly
  // overestimates efficiency; factor fitted once over random sizings).
  constexpr double kEffCalibration = 1.0;
  out.specs = {std::clamp(kEffCalibration * pout / pdc, 1e-3, 0.99), std::max(pout, 1e-3)};
  out.valid = true;
  return out;
}

}  // namespace crl::circuit
