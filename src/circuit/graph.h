#pragma once
// Circuit-topology graph (the paper's state representation).
//
// Graph nodes are devices plus the supply / ground / DC-bias nets ("full
// topology" — the ingredient Baseline B omits). Two device nodes share an
// edge when their terminals touch a common circuit net; a device and a
// supply/bias node share an edge when the device touches that net.
//
// Node features follow Sec. 3: (t, p) with t the binary code of the node
// type and p the zero-padded parameter vector — (W, nf) for transistors,
// value for passives, voltage for supply/bias nodes. Parameters are
// normalized before being handed to the policy network.

#include <functional>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "spice/netlist.h"

namespace crl::circuit {

enum class GraphNodeType : int {
  Nmos = 0,
  Pmos = 1,
  GanFet = 2,
  Capacitor = 3,
  Resistor = 4,
  Inductor = 5,
  Supply = 6,
  Ground = 7,
  Bias = 8,
};

/// Number of bits in the binary type code (fits all GraphNodeType values).
constexpr int kTypeBits = 4;
/// Parameter slots per node (transistors use two: W and nf).
constexpr int kParamSlots = 2;
/// Total feature dimension per graph node.
constexpr int kNodeFeatureDim = kTypeBits + kParamSlots;

struct GraphNode {
  std::string name;
  GraphNodeType type;
  /// Produces the (normalized) parameter slots for the current sizing.
  std::function<void(double* slots)> fillParams;
};

class CircuitGraph {
 public:
  CircuitGraph(std::vector<GraphNode> nodes, std::vector<std::pair<int, int>> edges);

  std::size_t nodeCount() const { return nodes_.size(); }
  const GraphNode& node(std::size_t i) const { return nodes_.at(i); }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  /// 0/1 adjacency (no self loops).
  const linalg::Mat& adjacency() const { return adj_; }
  /// Symmetric-normalized adjacency with self loops: D^-1/2 (A+I) D^-1/2
  /// (the GCN propagation matrix of Eq. 2).
  const linalg::Mat& normalizedAdjacency() const { return normAdj_; }
  /// Attention mask: 0 where an edge (or self loop) exists, -1e9 elsewhere
  /// (added to GAT attention logits before the softmax).
  const linalg::Mat& attentionMask() const { return mask_; }

  /// Assemble the node-feature matrix [n x kNodeFeatureDim] for the current
  /// parameters (via each node's fillParams callback).
  linalg::Mat features() const;

  bool hasEdge(int a, int b) const { return adj_(a, b) > 0.5; }
  int degree(int i) const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<std::pair<int, int>> edges_;
  linalg::Mat adj_;
  linalg::Mat normAdj_;
  linalg::Mat mask_;
};

/// Helper that accumulates device/net annotations and derives the edges from
/// netlist connectivity.
class GraphBuilder {
 public:
  explicit GraphBuilder(const spice::Netlist& net) : net_(net) {}

  /// Register a device as a graph node. excludeNets lists nets that should
  /// not create device-device edges (e.g. supply nets, handled separately).
  void addDevice(const spice::Device* dev, GraphNodeType type,
                 std::function<void(double*)> fillParams);

  /// Register a supply / ground / bias net as an extra graph node.
  void addNetNode(spice::NodeId net, GraphNodeType type, const std::string& name,
                  std::function<void(double*)> fillParams);

  CircuitGraph build() const;

 private:
  struct DeviceEntry {
    const spice::Device* dev;
    GraphNodeType type;
    std::function<void(double*)> fill;
  };
  struct NetEntry {
    spice::NodeId net;
    GraphNodeType type;
    std::string name;
    std::function<void(double*)> fill;
  };

  const spice::Netlist& net_;
  std::vector<DeviceEntry> devices_;
  std::vector<NetEntry> netNodes_;
};

}  // namespace crl::circuit
