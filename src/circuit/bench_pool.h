#pragma once
// BenchmarkPool: N independent benchmark lanes (clones of one prototype),
// mirroring rl::VecEnv one layer down — where VecEnv fans environment steps
// across lanes, BenchmarkPool fans independent measureAt probes (Jacobian
// columns, Monte-Carlo samples, process corners) across benchmark clones.
//
// Determinism contract: items are split into contiguous chunks, one lane per
// SimSession worker slot, and every item is measured from a reset solver
// state — so a result depends only on the item's parameters, never on lane
// count, worker count, or scheduling. Pooled results are bit-identical to a
// serial loop that resets solver state before each probe.

#include <memory>
#include <vector>

#include "circuit/benchmark.h"
#include "spice/session.h"

namespace crl::circuit {

class BenchmarkPool {
 public:
  /// One lane (clone of `proto`) per session worker slot. The session
  /// provides the threads; lanes never attach it themselves (the outer
  /// fan-out owns the workers — nesting pooled sweeps inside pooled lanes
  /// would oversubscribe and race on the session workspaces).
  BenchmarkPool(Benchmark& proto, spice::SimSession& session);

  /// Number of lane slots (== session worker count); the clone behind a
  /// slot is created on first use.
  std::size_t laneCount() const { return lanes_.size(); }
  Benchmark& lane(std::size_t i);

  /// Measure every parameter set, cold solver state per item; results align
  /// with paramSets and are identical for any worker count. Lane simulation
  /// counts are folded back into the prototype, so its simCount bookkeeping
  /// matches the serial loop's.
  std::vector<Measurement> measureAll(const std::vector<std::vector<double>>& paramSets,
                                      Fidelity fidelity);

 private:
  spice::SimSession& session_;
  Benchmark& proto_;
  std::vector<std::unique_ptr<Benchmark>> lanes_;
};

}  // namespace crl::circuit
