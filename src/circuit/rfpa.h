#pragma once
// The GaN RF power-amplifier benchmark (Fig. 4 of the paper, after the
// saturated broadband amplifier of Diduck et al.).
//
// Topology: a six-device driver chain (D1..D5 and DF) of AC-coupled
// common-source GaN stages with resistive loads, followed by the power
// transistor M1 whose drain is fed through an RF choke and AC-coupled into
// the 50-Ohm load. 7 devices x (W, nf) = 14 tunable parameters (Table 1).
//
// Measurements (spec order [efficiency (0..1), output power (W)]):
//  * Fine  — transient (trapezoidal) simulation over several carrier
//    periods; fundamental output power via DFT of the final period and DC
//    power from the averaged supply-branch current. This computes the same
//    periodic-steady-state quantities a harmonic-balance engine reports and
//    is deliberately the expensive path.
//  * Coarse — a single DC operating point plus a quasi-static signal-chain
//    estimate (saturating per-stage gains, clipped-sine fundamental at the
//    power device, class-AB supply-current model). This is the paper's
//    "rough DC simulation": cheap, correlated with fine, bounded error.

#include <memory>
#include <optional>

#include "circuit/benchmark.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/gan.h"
#include "spice/tran.h"

namespace crl::circuit {

struct RfPaConfig {
  double vdd = 28.0;          ///< power-stage drain supply VP [V]
  double vdrv = 12.0;         ///< driver supply VP1 [V]
  double vbiasDriver = 0.0;   ///< driver gate-return bias Vbias1 [V]
  double vbiasPower = -2.0;   ///< power-stage gate bias Vbias2 (class-AB) [V]
  double f0 = 400e6;          ///< carrier frequency [Hz]
  double inputAmplitude = 1.2;///< saturated drive amplitude [V]
  double rLoad = 50.0;        ///< antenna load [Ohm]
  double rDrv1 = 200.0;       ///< driver stage drain loads [Ohm]
  double rDrv2 = 150.0;
  double rDrv3 = 120.0;
  double rDrv4 = 125.0;
  /// Self-bias source resistors (depletion-mode stages bias at
  /// vgs ~ -Id*Rs; the bypass capacitor restores full AC gain).
  double rSrc1 = 160.0;
  double rSrc2 = 130.0;
  double rSrc3 = 90.0;
  double rSrc4 = 65.0;
  double bypassCap = 200e-12;
  double choke = 120e-9;      ///< drain RF choke [H]
  double couplingCap = 50e-12;
  double biasRes = 2e3;
  int stepsPerPeriod = 128;   ///< transient resolution
  int settlePeriods = 4;      ///< periods before the measurement window
  /// Technology model shared by every GaN device (150 nm GaN flavour).
  spice::GanModel ganModel{};
};

class GanRfPa : public Benchmark {
 public:
  static constexpr std::size_t kNumParams = 14;  // 7 x (W, nf)
  static constexpr std::size_t kNumSpecs = 2;

  explicit GanRfPa(RfPaConfig cfg = {});

  const std::string& name() const override { return name_; }
  const DesignSpace& designSpace() const override { return space_; }
  const SpecSpace& specSpace() const override { return specs_; }
  const CircuitGraph& graph() const override { return *graph_; }

  const std::vector<double>& currentParams() const override { return params_; }
  void setParams(const std::vector<double>& params) override;
  Measurement measure(Fidelity fidelity) override;
  long simCount(Fidelity fidelity) const override;
  void addSimCount(Fidelity fidelity, long n) override {
    (fidelity == Fidelity::Fine ? fineSims_ : coarseSims_) += n;
  }
  std::unique_ptr<Benchmark> clone() const override;

  static std::vector<double> failedSpecs();
  std::vector<double> worstSpecs() const override { return failedSpecs(); }
  const RfPaConfig& config() const { return cfg_; }
  spice::Netlist& netlist() { return net_; }

 private:
  void buildNetlist();
  void buildGraph();
  Measurement measureFine();
  Measurement measureCoarse();

  std::string name_ = "gan-rf-pa";
  RfPaConfig cfg_;
  DesignSpace space_;
  SpecSpace specs_;
  std::vector<double> params_;

  spice::Netlist net_;
  std::vector<spice::GanHemt*> fets_;  // D1..D5, DF, M1 (index 6 = power FET)
  spice::VSource* vddSrc_ = nullptr;
  spice::VSource* vinSrc_ = nullptr;
  spice::NodeId outNode_ = spice::kGround;
  std::unique_ptr<CircuitGraph> graph_;
  long fineSims_ = 0;
  long coarseSims_ = 0;
};

}  // namespace crl::circuit
