#pragma once
// Tunable-parameter space of a circuit benchmark (Table 1 of the paper).
//
// Each parameter lives on a discrete grid [min, max] with step `step` — the
// paper's action space tunes each parameter by +step / 0 / -step per RL step.

#include <string>
#include <vector>

#include "util/rng.h"

namespace crl::circuit {

struct ParamSpec {
  std::string name;
  double min = 0.0;
  double max = 1.0;
  double step = 0.1;     ///< the paper's smallest tuning unit (delta-x)
  bool integer = false;  ///< snap to integers (finger counts)
};

class DesignSpace {
 public:
  DesignSpace() = default;
  explicit DesignSpace(std::vector<ParamSpec> params);

  std::size_t size() const { return params_.size(); }
  const ParamSpec& param(std::size_t i) const { return params_.at(i); }
  const std::vector<ParamSpec>& params() const { return params_; }

  /// Uniform random point on the grid.
  std::vector<double> sample(util::Rng& rng) const;
  /// Midpoint of every parameter range (snapped to the grid).
  std::vector<double> midpoint() const;

  /// Clamp a point into bounds and snap to the grid.
  std::vector<double> clamp(const std::vector<double>& x) const;

  /// Apply a per-parameter action in {-1, 0, +1} (times `step`), clamped.
  std::vector<double> applyActions(const std::vector<double>& x,
                                   const std::vector<int>& actions) const;

  /// Normalize to [0, 1] per parameter (for NN features).
  std::vector<double> normalize(const std::vector<double>& x) const;
  /// Inverse of normalize (then snapped to the grid).
  std::vector<double> denormalize(const std::vector<double>& u) const;

  /// Number of grid points of parameter i.
  int gridLevels(std::size_t i) const;

  /// True if x is inside bounds (within a half grid step).
  bool contains(const std::vector<double>& x) const;

 private:
  double snap(double v, const ParamSpec& p) const;
  std::vector<ParamSpec> params_;
};

}  // namespace crl::circuit
