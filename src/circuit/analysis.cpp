#include "circuit/analysis.h"

#include <algorithm>
#include <cmath>

namespace crl::circuit {

SensitivityResult specSensitivity(Benchmark& bench, const std::vector<double>& params,
                                  SensitivityOptions opt) {
  SensitivityResult res;
  const auto& space = bench.designSpace();
  res.baseParams = space.clamp(params);

  auto base = bench.measureAt(res.baseParams, opt.fidelity);
  if (!base.valid) return res;
  res.baseSpecs = base.specs;

  const std::size_t nSpecs = bench.specSpace().size();
  const std::size_t nParams = space.size();
  res.jacobian = linalg::Mat(nSpecs, nParams);
  res.elasticity = linalg::Mat(nSpecs, nParams);

  for (std::size_t j = 0; j < nParams; ++j) {
    const auto& p = space.param(j);
    double h = std::max(opt.relStep * (p.max - p.min), p.step);
    if (p.integer) h = std::max(1.0, std::round(h));

    auto up = res.baseParams;
    auto dn = res.baseParams;
    up[j] = std::min(up[j] + h, p.max);
    dn[j] = std::max(dn[j] - h, p.min);
    up = space.clamp(up);
    dn = space.clamp(dn);
    const double dh = up[j] - dn[j];
    if (dh <= 0.0) continue;  // degenerate range

    auto mu = bench.measureAt(up, opt.fidelity);
    auto md = bench.measureAt(dn, opt.fidelity);
    if (!mu.valid || !md.valid) continue;  // leave the column at 0

    for (std::size_t i = 0; i < nSpecs; ++i) {
      const double d = (mu.specs[i] - md.specs[i]) / dh;
      res.jacobian(i, j) = d;
      const double s0 = res.baseSpecs[i];
      const double p0 = res.baseParams[j];
      if (std::fabs(s0) > 1e-30 && std::fabs(p0) > 1e-30)
        res.elasticity(i, j) = d * p0 / s0;
    }
  }
  // Restore the benchmark to the base sizing for the caller.
  bench.setParams(res.baseParams);
  res.valid = true;
  return res;
}

YieldResult monteCarloYield(Benchmark& bench, const std::vector<double>& nominal,
                            const std::vector<double>& target, util::Rng& rng,
                            YieldOptions opt) {
  YieldResult res;
  res.samples = opt.samples;
  const auto& space = bench.designSpace();
  const auto& specs = bench.specSpace();
  res.specStats.resize(specs.size());

  const auto base = space.clamp(nominal);
  for (int s = 0; s < opt.samples; ++s) {
    auto p = base;
    for (std::size_t j = 0; j < p.size(); ++j) {
      const auto& ps = space.param(j);
      p[j] += rng.normal(0.0, opt.sigmaFrac * (ps.max - ps.min));
    }
    p = space.clamp(p);
    auto m = bench.measureAt(p, opt.fidelity);
    if (!m.valid) continue;
    ++res.validCount;
    for (std::size_t i = 0; i < specs.size(); ++i) res.specStats[i].add(m.specs[i]);
    if (specs.satisfied(m.specs, target)) ++res.passCount;
  }
  res.yield = res.samples > 0 ? static_cast<double>(res.passCount) / res.samples : 0.0;
  bench.setParams(base);
  return res;
}

std::vector<CornerResult> cornerSweep(Benchmark& bench, const std::vector<double>& nominal,
                                      double spread, Fidelity fidelity) {
  const auto& space = bench.designSpace();
  const auto base = space.clamp(nominal);

  const struct {
    const char* name;
    double scale;
  } corners[] = {{"slow", 1.0 - spread}, {"nominal", 1.0}, {"fast", 1.0 + spread}};

  std::vector<CornerResult> out;
  for (const auto& c : corners) {
    auto p = base;
    for (double& v : p) v *= c.scale;
    p = space.clamp(p);
    auto m = bench.measureAt(p, fidelity);
    CornerResult r;
    r.name = c.name;
    r.scale = c.scale;
    r.valid = m.valid;
    r.specs = m.specs;
    out.push_back(std::move(r));
  }
  bench.setParams(base);
  return out;
}

}  // namespace crl::circuit
