#include "circuit/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace crl::circuit {

namespace {

/// Measure every parameter set with cold solver state per item — through
/// BenchmarkPool lanes when a multi-worker session is given, serially on the
/// caller's benchmark otherwise. Both paths measure each item identically
/// (params -> reset -> measure), so results are bit-identical at any worker
/// count.
std::vector<Measurement> measureBatch(Benchmark& bench,
                                      const std::vector<std::vector<double>>& items,
                                      Fidelity fidelity, spice::SimSession* session) {
  if (session && session->workerCount() > 1) {
    BenchmarkPool pool(bench, *session);
    return pool.measureAll(items, fidelity);
  }
  std::vector<Measurement> out(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    bench.setParams(items[i]);
    bench.resetSolverState();
    out[i] = bench.measure(fidelity);
  }
  return out;
}

}  // namespace

SensitivityResult specSensitivity(Benchmark& bench, const std::vector<double>& params,
                                  SensitivityOptions opt) {
  SensitivityResult res;
  const auto& space = bench.designSpace();
  res.baseParams = space.clamp(params);

  bench.setParams(res.baseParams);
  bench.resetSolverState();
  auto base = bench.measure(opt.fidelity);
  if (!base.valid) return res;
  res.baseSpecs = base.specs;

  const std::size_t nSpecs = bench.specSpace().size();
  const std::size_t nParams = space.size();
  res.jacobian = linalg::Mat(nSpecs, nParams);
  res.elasticity = linalg::Mat(nSpecs, nParams);

  // One up/down probe pair per non-degenerate parameter; the pairs are
  // independent, so they fan out as one flat batch.
  struct Column {
    std::size_t j = 0;
    std::size_t up = 0;  ///< probe indices into the batch
    std::size_t dn = 0;
    double dh = 0.0;
  };
  std::vector<Column> columns;
  std::vector<std::vector<double>> probes;
  columns.reserve(nParams);
  probes.reserve(2 * nParams);
  for (std::size_t j = 0; j < nParams; ++j) {
    const auto& p = space.param(j);
    double h = std::max(opt.relStep * (p.max - p.min), p.step);
    if (p.integer) h = std::max(1.0, std::round(h));

    auto up = res.baseParams;
    auto dn = res.baseParams;
    up[j] = std::min(up[j] + h, p.max);
    dn[j] = std::max(dn[j] - h, p.min);
    up = space.clamp(up);
    dn = space.clamp(dn);
    const double dh = up[j] - dn[j];
    if (dh <= 0.0) continue;  // degenerate range: leave the column at 0

    Column col;
    col.j = j;
    col.up = probes.size();
    probes.push_back(std::move(up));
    col.dn = probes.size();
    probes.push_back(std::move(dn));
    col.dh = dh;
    columns.push_back(col);
  }

  const auto measurements = measureBatch(bench, probes, opt.fidelity, opt.session);

  for (const auto& col : columns) {
    const auto& mu = measurements[col.up];
    const auto& md = measurements[col.dn];
    if (!mu.valid || !md.valid) continue;  // leave the column at 0
    for (std::size_t i = 0; i < nSpecs; ++i) {
      const double d = (mu.specs[i] - md.specs[i]) / col.dh;
      res.jacobian(i, col.j) = d;
      const double s0 = res.baseSpecs[i];
      const double p0 = res.baseParams[col.j];
      if (std::fabs(s0) > 1e-30 && std::fabs(p0) > 1e-30)
        res.elasticity(i, col.j) = d * p0 / s0;
    }
  }
  // Restore the benchmark to the base sizing for the caller.
  bench.setParams(res.baseParams);
  res.valid = true;
  return res;
}

YieldResult monteCarloYield(Benchmark& bench, const std::vector<double>& nominal,
                            const std::vector<double>& target, util::Rng& rng,
                            YieldOptions opt) {
  YieldResult res;
  res.samples = opt.samples;
  const auto& space = bench.designSpace();
  const auto& specs = bench.specSpace();
  res.specStats.resize(specs.size());

  const auto base = space.clamp(nominal);
  if (opt.samples <= 0) {
    bench.setParams(base);
    return res;
  }

  // Per-sample RNG substreams: one draw from the caller's stream seeds a
  // deterministic family, so sample s's perturbation is a pure function of
  // (caller seed, s) — independent of worker count and of the other samples.
  const std::uint64_t streamBase = rng.engine()();
  std::vector<std::vector<double>> items;
  items.reserve(static_cast<std::size_t>(opt.samples));
  for (int s = 0; s < opt.samples; ++s) {
    util::Rng srng(util::substreamSeed(streamBase, static_cast<std::uint64_t>(s)));
    auto p = base;
    for (std::size_t j = 0; j < p.size(); ++j) {
      const auto& ps = space.param(j);
      p[j] += srng.normal(0.0, opt.sigmaFrac * (ps.max - ps.min));
    }
    items.push_back(space.clamp(p));
  }

  const auto measurements = measureBatch(bench, items, opt.fidelity, opt.session);

  // Accumulate in sample order so the running statistics are deterministic.
  for (const auto& m : measurements) {
    if (!m.valid) continue;
    ++res.validCount;
    for (std::size_t i = 0; i < specs.size(); ++i) res.specStats[i].add(m.specs[i]);
    if (specs.satisfied(m.specs, target)) ++res.passCount;
  }
  res.yield = res.samples > 0 ? static_cast<double>(res.passCount) / res.samples : 0.0;
  bench.setParams(base);
  return res;
}

std::vector<CornerResult> cornerSweep(Benchmark& bench, const std::vector<double>& nominal,
                                      double spread, Fidelity fidelity,
                                      spice::SimSession* session) {
  const auto& space = bench.designSpace();
  const auto base = space.clamp(nominal);

  const struct {
    const char* name;
    double scale;
  } corners[] = {{"slow", 1.0 - spread}, {"nominal", 1.0}, {"fast", 1.0 + spread}};

  std::vector<std::vector<double>> items;
  items.reserve(3);
  for (const auto& c : corners) {
    auto p = base;
    for (double& v : p) v *= c.scale;
    items.push_back(space.clamp(p));
  }

  const auto measurements = measureBatch(bench, items, fidelity, session);

  std::vector<CornerResult> out;
  out.reserve(3);
  for (std::size_t k = 0; k < 3; ++k) {
    CornerResult r;
    r.name = corners[k].name;
    r.scale = corners[k].scale;
    r.valid = measurements[k].valid;
    r.specs = measurements[k].specs;
    out.push_back(std::move(r));
  }
  bench.setParams(base);
  return out;
}

}  // namespace crl::circuit
