#pragma once
// Designer-facing analysis toolkit on top of the Benchmark interface:
//
//  * specSensitivity — finite-difference Jacobian of every specification
//    with respect to every tunable parameter, plus the normalized
//    elasticity matrix (% spec change per % parameter change). This is the
//    quantitative version of the "design trade-offs" the paper's FCNN
//    pathway is meant to capture.
//  * monteCarloYield — spec-distribution / yield estimation under random
//    parameter perturbations (mismatch-style Monte Carlo around a sizing).
//  * cornerSweep — worst/best-case corners obtained by scaling all
//    parameters together (slow/nominal/fast flavour).
//
// Everything works through Benchmark::measureAt, so the toolkit applies to
// any circuit benchmark (op-amp, RF PA, or user-defined).
//
// Every routine is a fan-out of independent probes: pass a SimSession in the
// options to spread them across BenchmarkPool lanes. Probes are measured
// from a reset solver state in all paths, so serial and pooled runs are
// bit-identical at any worker count (Monte-Carlo samples additionally draw
// from per-sample RNG substreams for the same reason).

#include <vector>

#include "circuit/bench_pool.h"
#include "circuit/benchmark.h"
#include "linalg/matrix.h"
#include "spice/session.h"
#include "util/rng.h"
#include "util/stats.h"

namespace crl::circuit {

struct SensitivityOptions {
  Fidelity fidelity = Fidelity::Fine;
  /// Finite-difference step as a fraction of each parameter's range; the
  /// probe is snapped to the design grid and falls back to one-sided
  /// differences at the bounds.
  double relStep = 0.05;
  /// Fan the probe measurements out over this session's workers (null or
  /// single-worker: serial, same results).
  spice::SimSession* session = nullptr;
};

struct SensitivityResult {
  bool valid = false;             ///< false if the base point fails to simulate
  std::vector<double> baseParams;
  std::vector<double> baseSpecs;
  /// [numSpecs x numParams] d spec_i / d param_j.
  linalg::Mat jacobian;
  /// [numSpecs x numParams] (d spec / spec) / (d param / param) — elasticity;
  /// zero where the base spec or parameter is ~0.
  linalg::Mat elasticity;
};

/// Finite-difference sensitivity of all specs around `params`.
SensitivityResult specSensitivity(Benchmark& bench, const std::vector<double>& params,
                                  SensitivityOptions opt = {});

struct YieldOptions {
  Fidelity fidelity = Fidelity::Fine;
  /// Gaussian perturbation sigma as a fraction of each parameter's range.
  double sigmaFrac = 0.02;
  int samples = 100;
  /// Fan the sample measurements out over this session's workers.
  spice::SimSession* session = nullptr;
};

struct YieldResult {
  int samples = 0;
  int validCount = 0;   ///< simulations that converged
  int passCount = 0;    ///< valid samples meeting every spec target
  double yield = 0.0;   ///< passCount / samples
  /// Per-spec distribution across the valid samples.
  std::vector<util::RunningStats> specStats;
};

/// Monte-Carlo yield of a sizing against a spec target under parameter
/// perturbations (mismatch-style variation on the design grid).
YieldResult monteCarloYield(Benchmark& bench, const std::vector<double>& nominal,
                            const std::vector<double>& target, util::Rng& rng,
                            YieldOptions opt = {});

struct CornerResult {
  std::string name;
  double scale = 1.0;
  bool valid = false;
  std::vector<double> specs;
};

/// Evaluate slow/nominal/fast corners by scaling every parameter around a
/// sizing (clamped to the design space).
std::vector<CornerResult> cornerSweep(Benchmark& bench, const std::vector<double>& nominal,
                                      double spread = 0.1,
                                      Fidelity fidelity = Fidelity::Fine,
                                      spice::SimSession* session = nullptr);

}  // namespace crl::circuit
