// SIMD cores for the update-path hot loops — see simd_kernels.h for the
// dispatch and bit-identity contract. This TU is compiled with
// -ffp-contract=off -fno-math-errno (enforced in CMakeLists.txt); each
// kernel keeps the exact loop structure and per-element accumulation order
// of the scalar code it replaces, so the ISA clones differ only in vector
// width, never in results.

#include "linalg/simd_kernels.h"

#include <cmath>

// target_clones needs GNU ifunc support (GCC or Clang on a glibc x86-64
// target). Elsewhere the kernels compile as plain functions — same code,
// baseline ISA. Define CRL_SIMD_NO_CLONES to force the plain build (useful
// under gprof, whose sample attribution is confused by ifunc dispatch).
#if defined(__x86_64__) && defined(__GNUC__) && defined(__gnu_linux__) && \
    !defined(CRL_SIMD_NO_CLONES)
#define CRL_SIMD_CLONES __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define CRL_SIMD_CLONES
#endif

namespace crl::linalg::simd {
namespace {

// Register-blocked row-chunk accumulation, the shared micro-kernel of the
// saxpy nests below: output elements c(i, jb..jb+8) accumulate over k with
// the chunk held in registers (one ZMM / two YMMs) instead of stored and
// reloaded every k step. Only the LOOP order changes — each output element
// still accumulates its k terms in ascending order with the same zero-skip,
// so results are bit-identical to the plain nest. `static` helpers inline
// into each ISA clone of their callers.
constexpr std::size_t kChunk = 8;

inline void rowChunk(double* __restrict crow, const double* __restrict arow,
                     const double* __restrict b, std::size_t kk, std::size_t n,
                     std::size_t jb) {
  double acc[kChunk];
  for (std::size_t t = 0; t < kChunk; ++t) acc[t] = crow[jb + t];
  for (std::size_t k = 0; k < kk; ++k) {
    const double aik = arow[k];
    if (aik == 0.0) continue;  // the zero-skip is part of the contract
    const double* __restrict brow = b + k * n + jb;
    for (std::size_t t = 0; t < kChunk; ++t) acc[t] += aik * brow[t];
  }
  for (std::size_t t = 0; t < kChunk; ++t) crow[jb + t] = acc[t];
}

inline void rowTail(double* __restrict crow, const double* __restrict arow,
                    const double* __restrict b, std::size_t kk, std::size_t n,
                    std::size_t jb) {
  for (std::size_t k = 0; k < kk; ++k) {
    const double aik = arow[k];
    if (aik == 0.0) continue;
    const double* __restrict brow = b + k * n;
    for (std::size_t j = jb; j < n; ++j) crow[j] += aik * brow[j];
  }
}

}  // namespace

CRL_SIMD_CLONES
void matmulKernel(double* c, const double* a, const double* b,
                  std::size_t rows, std::size_t kk, std::size_t n) {
  if (n == 1) {
    // Matrix-vector products ([B x d] x [d x 1] policy heads, attention
    // projections) keep the accumulator in a register: the k-ascending add
    // order is exactly the saxpy loop's, minus the per-step store/reload.
    for (std::size_t i = 0; i < rows; ++i) {
      const double* __restrict arow = a + i * kk;
      double acc = c[i];
      for (std::size_t k = 0; k < kk; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        acc += aik * b[k];
      }
      c[i] = acc;
    }
    return;
  }
  const std::size_t nChunks = n - n % kChunk;
  // Wide rows (trunk layers): two independent 8-wide accumulators in
  // flight per row double the ILP of the k-latency chain; chunks are
  // disjoint element sets, so per-element order is untouched.
  const std::size_t nPairs = n >= 40 ? n - n % (2 * kChunk) : 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const double* __restrict arow = a + i * kk;
    double* __restrict crow = c + i * n;
    std::size_t jb = 0;
    for (; jb < nPairs; jb += 2 * kChunk) {
      double acc0[kChunk], acc1[kChunk];
      for (std::size_t t = 0; t < kChunk; ++t) {
        acc0[t] = crow[jb + t];
        acc1[t] = crow[jb + kChunk + t];
      }
      for (std::size_t k = 0; k < kk; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        const double* __restrict brow = b + k * n + jb;
        for (std::size_t t = 0; t < kChunk; ++t) acc0[t] += aik * brow[t];
        for (std::size_t t = 0; t < kChunk; ++t)
          acc1[t] += aik * brow[kChunk + t];
      }
      for (std::size_t t = 0; t < kChunk; ++t) {
        crow[jb + t] = acc0[t];
        crow[jb + kChunk + t] = acc1[t];
      }
    }
    for (; jb < nChunks; jb += kChunk) rowChunk(crow, arow, b, kk, n, jb);
    if (jb < n) rowTail(crow, arow, b, kk, n, jb);
  }
}

CRL_SIMD_CLONES
void matmulAtBKernel(double* c, const double* a, const double* b,
                     std::size_t rows, std::size_t kk, std::size_t n) {
  if (n == 1) {
    // c(k, 0) accumulates a(i, k) * b(i) in ascending i — the same order
    // the saxpy nest produces, with the accumulator held in a register per
    // output element instead of re-stored every i.
    for (std::size_t k = 0; k < kk; ++k) {
      double acc = c[k];
      for (std::size_t i = 0; i < rows; ++i) {
        const double aik = a[i * kk + k];
        if (aik == 0.0) continue;
        acc += aik * b[i];
      }
      c[k] = acc;
    }
    return;
  }
  // i-tiled, k-outer, register-chunked: each output row chunk accumulates
  // over one tile of i in registers, and the tile bound (64 rows) keeps the
  // strided walks over a's columns L1-resident. Tiles ascend, and i ascends
  // within each tile, so every output element still accumulates over i in
  // ascending order with the zero-skip on a(i, k) — bit-identical to the
  // saxpy nest, ~10% faster on the wide dW shapes and ~2x on the narrow
  // ones (measured).
  constexpr std::size_t kTile = 64;
  const std::size_t nChunks = n - n % kChunk;
  for (std::size_t i0 = 0; i0 < rows; i0 += kTile) {
    const std::size_t i1 = i0 + kTile < rows ? i0 + kTile : rows;
    for (std::size_t k = 0; k < kk; ++k) {
      double* __restrict crow = c + k * n;
      std::size_t jb = 0;
      for (; jb < nChunks; jb += kChunk) {
        double acc[kChunk];
        for (std::size_t t = 0; t < kChunk; ++t) acc[t] = crow[jb + t];
        for (std::size_t i = i0; i < i1; ++i) {
          const double aik = a[i * kk + k];
          if (aik == 0.0) continue;
          const double* __restrict brow = b + i * n + jb;
          for (std::size_t t = 0; t < kChunk; ++t) acc[t] += aik * brow[t];
        }
        for (std::size_t t = 0; t < kChunk; ++t) crow[jb + t] = acc[t];
      }
      for (; jb < n; ++jb) {
        double acc = crow[jb];
        for (std::size_t i = i0; i < i1; ++i) {
          const double aik = a[i * kk + k];
          if (aik == 0.0) continue;
          acc += aik * b[i * n + jb];
        }
        crow[jb] = acc;
      }
    }
  }
}

CRL_SIMD_CLONES
void blockDiagKernel(double* y, const double* blk, std::size_t n,
                     std::size_t repeat, const double* x, std::size_t m,
                     bool transposed) {
  const std::size_t mChunks = m - m % kChunk;
  for (std::size_t g = 0; g < repeat; ++g)
    for (std::size_t r = 0; r < n; ++r) {
      double* __restrict yrow = y + (g * n + r) * m;
      const double* xg = x + g * n * m;
      std::size_t jb = 0;
      for (; jb < mChunks; jb += kChunk) {
        double acc[kChunk];
        for (std::size_t t = 0; t < kChunk; ++t) acc[t] = yrow[jb + t];
        for (std::size_t k = 0; k < n; ++k) {
          const double w = transposed ? blk[k * n + r] : blk[r * n + k];
          if (w == 0.0) continue;  // adjacency blocks are sparse
          const double* __restrict xrow = xg + k * m + jb;
          for (std::size_t t = 0; t < kChunk; ++t) acc[t] += w * xrow[t];
        }
        for (std::size_t t = 0; t < kChunk; ++t) yrow[jb + t] = acc[t];
      }
      if (jb < m) {
        for (std::size_t k = 0; k < n; ++k) {
          const double w = transposed ? blk[k * n + r] : blk[r * n + k];
          if (w == 0.0) continue;
          const double* __restrict xrow = xg + k * m;
          for (std::size_t c = jb; c < m; ++c) yrow[c] += w * xrow[c];
        }
      }
    }
}

CRL_SIMD_CLONES
void blocksMatmulKernel(double* out, const double* a, const double* b,
                        std::size_t blocks, std::size_t r, std::size_t k,
                        std::size_t m) {
  const std::size_t mChunks = m - m % kChunk;
  for (std::size_t g = 0; g < blocks; ++g)
    for (std::size_t i = 0; i < r; ++i) {
      double* __restrict orow = out + (g * r + i) * m;
      const double* __restrict arow = a + (g * r + i) * k;
      const double* bg = b + g * k * m;
      std::size_t jb = 0;
      for (; jb < mChunks; jb += kChunk) rowChunk(orow, arow, bg, k, m, jb);
      if (jb < m) rowTail(orow, arow, bg, k, m, jb);
    }
}

CRL_SIMD_CLONES
void gatMixBackwardKernel(double* da, double* db, const double* alpha,
                          const double* b, const double* g, std::size_t blocks,
                          std::size_t r, std::size_t k, std::size_t m) {
  for (std::size_t blk = 0; blk < blocks; ++blk)
    for (std::size_t i = 0; i < r; ++i) {
      const double* __restrict grow = g + (blk * r + i) * m;
      const double* __restrict arow = alpha + (blk * r + i) * k;
      double* __restrict darow = da + (blk * r + i) * k;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double* __restrict brow = b + (blk * k + kk) * m;
        double acc = 0.0;
        for (std::size_t j = 0; j < m; ++j) acc += grow[j] * brow[j];
        darow[kk] = acc;
        const double aik = arow[kk];
        if (aik == 0.0) continue;
        double* __restrict dbrow = db + (blk * k + kk) * m;
        for (std::size_t j = 0; j < m; ++j) dbrow[j] += aik * grow[j];
      }
    }
}

CRL_SIMD_CLONES
void gatLogitsKernel(double* e, double* pre, const double* src,
                     const double* dst, const double* mask, std::size_t blocks,
                     std::size_t n, double slope) {
  for (std::size_t g = 0; g < blocks; ++g) {
    const double* __restrict drow = dst + g * n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = g * n + i;
      // 0.0 + src reproduces the unfused outer product bit-for-bit (its
      // saxpy accumulates src into a zeroed buffer, which normalizes -0.0).
      const double s = 0.0 + src[row];
      const double* __restrict mrow = mask + row * n;
      double* __restrict prow = pre + row * n;
      double* __restrict erow = e + row * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double p = s + drow[j];
        prow[j] = p;
        erow[j] = (p > 0.0 ? p : slope * p) + mrow[j];
      }
    }
  }
}

CRL_SIMD_CLONES
void gatLogitsBackwardKernel(double* dsrc, double* ddst, double* dpre,
                             const double* pre, const double* grad,
                             std::size_t blocks, std::size_t n, double slope) {
  const std::size_t total = blocks * n * n;
  for (std::size_t idx = 0; idx < total; ++idx)
    dpre[idx] = (pre[idx] > 0.0 ? 1.0 : slope) * grad[idx];
  const std::size_t rows = blocks * n;
  for (std::size_t row = 0; row < rows; ++row) {
    const double* __restrict prow = dpre + row * n;
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const double v = prow[k];
      if (v == 0.0) continue;  // the ones-matmul backward's zero-skip
      acc += v * 1.0;
    }
    dsrc[row] = acc;
  }
  for (std::size_t g = 0; g < blocks; ++g) {
    double* __restrict drow = ddst + g * n;
    for (std::size_t j = 0; j < n; ++j) drow[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* __restrict prow = dpre + (g * n + i) * n;
      for (std::size_t j = 0; j < n; ++j) drow[j] += prow[j];
    }
  }
}

CRL_SIMD_CLONES
void gatPackedProjectKernel(double* srcAll, double* dstAll, const double* hw,
                            const double* aSrc, const double* aDst,
                            std::size_t rows, std::size_t heads, std::size_t d) {
  const std::size_t ld = heads * d;
  for (std::size_t h = 0; h < heads; ++h) {
    const double* __restrict as = aSrc + h * d;
    const double* __restrict ad = aDst + h * d;
    double* __restrict so = srcAll + h * rows;
    double* __restrict dso = dstAll + h * rows;
    for (std::size_t i = 0; i < rows; ++i) {
      const double* __restrict hrow = hw + i * ld + h * d;
      // Two independent accumulator chains per row; each matches the
      // separate per-head matmulKernel n == 1 call of the unpacked layout.
      double accS = 0.0, accD = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        const double aik = hrow[k];
        if (aik == 0.0) continue;
        accS += aik * as[k];
        accD += aik * ad[k];
      }
      so[i] = accS;
      dso[i] = accD;
    }
  }
}

CRL_SIMD_CLONES
void blocksMatmulStridedKernel(double* out, std::size_t outLd, const double* a,
                               const double* b, std::size_t bLd,
                               std::size_t blocks, std::size_t r, std::size_t k,
                               std::size_t m) {
  const std::size_t mChunks = m - m % kChunk;
  for (std::size_t g = 0; g < blocks; ++g)
    for (std::size_t i = 0; i < r; ++i) {
      double* __restrict orow = out + (g * r + i) * outLd;
      const double* __restrict arow = a + (g * r + i) * k;
      const double* bg = b + g * k * bLd;
      std::size_t jb = 0;
      for (; jb < mChunks; jb += kChunk) {
        double acc[kChunk];
        for (std::size_t t = 0; t < kChunk; ++t) acc[t] = orow[jb + t];
        for (std::size_t kk = 0; kk < k; ++kk) {
          const double aik = arow[kk];
          if (aik == 0.0) continue;
          const double* __restrict brow = bg + kk * bLd + jb;
          for (std::size_t t = 0; t < kChunk; ++t) acc[t] += aik * brow[t];
        }
        for (std::size_t t = 0; t < kChunk; ++t) orow[jb + t] = acc[t];
      }
      if (jb < m) {
        for (std::size_t kk = 0; kk < k; ++kk) {
          const double aik = arow[kk];
          if (aik == 0.0) continue;
          const double* __restrict brow = bg + kk * bLd;
          for (std::size_t j = jb; j < m; ++j) orow[j] += aik * brow[j];
        }
      }
    }
}

CRL_SIMD_CLONES
void gatMixBackwardStridedKernel(double* da, double* db, std::size_t dbLd,
                                 const double* alpha, const double* b,
                                 std::size_t bLd, const double* g,
                                 std::size_t gLd, std::size_t blocks,
                                 std::size_t r, std::size_t k, std::size_t m) {
  for (std::size_t blk = 0; blk < blocks; ++blk)
    for (std::size_t i = 0; i < r; ++i) {
      const double* __restrict grow = g + (blk * r + i) * gLd;
      const double* __restrict arow = alpha + (blk * r + i) * k;
      double* __restrict darow = da + (blk * r + i) * k;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double* __restrict brow = b + (blk * k + kk) * bLd;
        double acc = 0.0;
        for (std::size_t j = 0; j < m; ++j) acc += grow[j] * brow[j];
        darow[kk] = acc;
        const double aik = arow[kk];
        if (aik == 0.0) continue;
        double* __restrict dbrow = db + (blk * k + kk) * dbLd;
        for (std::size_t j = 0; j < m; ++j) dbrow[j] += aik * grow[j];
      }
    }
}

CRL_SIMD_CLONES
void outerAddStridedKernel(double* c, std::size_t cLd, const double* v,
                           const double* a, std::size_t rows, std::size_t m) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    double* __restrict crow = c + i * cLd;
    for (std::size_t j = 0; j < m; ++j) crow[j] += vi * a[j];
  }
}

CRL_SIMD_CLONES
void matvecAtStridedKernel(double* out, const double* a, std::size_t aLd,
                           const double* v, std::size_t rows, std::size_t m) {
  for (std::size_t j = 0; j < m; ++j) {
    double acc = out[j];
    for (std::size_t i = 0; i < rows; ++i) {
      const double aij = a[i * aLd + j];
      if (aij == 0.0) continue;
      acc += aij * v[i];
    }
    out[j] = acc;
  }
}

CRL_SIMD_CLONES
void adamStepKernel(double* value, double* m, double* v, const double* grad,
                    std::size_t count, double beta1, double beta2, double lr,
                    double eps, double bc1, double bc2) {
  for (std::size_t k = 0; k < count; ++k) {
    const double gk = grad[k];
    m[k] = beta1 * m[k] + (1.0 - beta1) * gk;
    v[k] = beta2 * v[k] + (1.0 - beta2) * gk * gk;
    const double mHat = m[k] / bc1;
    const double vHat = v[k] / bc2;
    value[k] -= lr * mHat / (std::sqrt(vHat) + eps);
  }
}

CRL_SIMD_CLONES
void activationBackwardKernel(double* dz, const double* y, const double* g,
                              std::size_t count, ActKind kind) {
  switch (kind) {
    case ActKind::Tanh:
      for (std::size_t i = 0; i < count; ++i)
        dz[i] = (1.0 - y[i] * y[i]) * g[i];
      return;
    case ActKind::Relu:
      for (std::size_t i = 0; i < count; ++i)
        dz[i] = (y[i] > 0.0 ? 1.0 : 0.0) * g[i];
      return;
    case ActKind::LeakyRelu:
      for (std::size_t i = 0; i < count; ++i)
        dz[i] = (y[i] > 0.0 ? 1.0 : 0.2) * g[i];
      return;
    case ActKind::Sigmoid:
      for (std::size_t i = 0; i < count; ++i)
        dz[i] = (y[i] * (1.0 - y[i])) * g[i];
      return;
  }
}

CRL_SIMD_CLONES
void biasRowSumKernel(double* out, const double* g, std::size_t rows,
                      std::size_t cols) {
  // Column accumulators ascend over r exactly like the scalar double loop;
  // columns are independent chains, so chunking is bit-safe.
  const std::size_t cChunks = cols - cols % kChunk;
  std::size_t cb = 0;
  for (; cb < cChunks; cb += kChunk) {
    double acc[kChunk];
    for (std::size_t t = 0; t < kChunk; ++t) acc[t] = out[cb + t];
    for (std::size_t r = 0; r < rows; ++r) {
      const double* __restrict grow = g + r * cols + cb;
      for (std::size_t t = 0; t < kChunk; ++t) acc[t] += grow[t];
    }
    for (std::size_t t = 0; t < kChunk; ++t) out[cb + t] = acc[t];
  }
  for (; cb < cols; ++cb) {
    double acc = out[cb];
    for (std::size_t r = 0; r < rows; ++r) acc += g[r * cols + cb];
    out[cb] = acc;
  }
}

CRL_SIMD_CLONES
void addInPlaceKernel(double* a, const double* b, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) a[i] += b[i];
}

CRL_SIMD_CLONES
void subInPlaceKernel(double* a, const double* b, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) a[i] -= b[i];
}

CRL_SIMD_CLONES
void scaleInPlaceKernel(double* a, double s, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) a[i] *= s;
}

}  // namespace crl::linalg::simd
