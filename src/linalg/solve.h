#pragma once
// Direct linear solvers: LU with partial pivoting (real & complex), Cholesky.
//
// MNA systems from the SPICE engine are small and dense-ish; partial-pivoted
// LU is robust against the zero diagonals that voltage-source stamps create.

#include "linalg/matrix.h"

namespace crl::linalg {

/// LU factorization with partial pivoting; factors are stored in-place.
/// Throws std::runtime_error on (numerical) singularity.
template <typename T>
class Lu {
 public:
  explicit Lu(Matrix<T> a);

  /// Solve A x = b for one right-hand side.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// log|det(A)| sign-less magnitude check helper; determinant itself can
  /// overflow for large systems so callers should prefer isSingular().
  T determinant() const;

  std::size_t order() const { return lu_.rows(); }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  int permSign_ = 1;
};

/// Convenience one-shot solve.
template <typename T>
std::vector<T> solveLinear(Matrix<T> a, const std::vector<T>& b) {
  return Lu<T>(std::move(a)).solve(b);
}

/// Cholesky factorization A = L L^T for symmetric positive definite A.
/// Used by the Gaussian-process baseline. Throws if A is not SPD.
class Cholesky {
 public:
  explicit Cholesky(const Mat& a);

  Vec solve(const Vec& b) const;
  /// Solve L y = b (forward substitution only).
  Vec solveLower(const Vec& b) const;
  /// Sum of log of diagonal entries of L (0.5 * log det A).
  double halfLogDet() const;
  const Mat& lower() const { return l_; }

 private:
  Mat l_;
};

extern template class Lu<double>;
extern template class Lu<std::complex<double>>;

}  // namespace crl::linalg
