#pragma once
// Direct linear solvers: LU with partial pivoting (real & complex), Cholesky.
//
// MNA systems from the SPICE engine are small and dense-ish; partial-pivoted
// LU is robust against the zero diagonals that voltage-source stamps create.

#include "linalg/matrix.h"

namespace crl::linalg {

/// LU factorization with partial pivoting; factors are stored in-place.
///
/// The factor/solve split lets hot solver loops (DC Newton, transient Newton,
/// AC sweeps) reuse one object's buffers across many systems: refactor()
/// copies into the existing storage, solveInto() writes into a caller-owned
/// vector, so the steady state is allocation-free. Factoring throws
/// std::runtime_error on (numerical) singularity and leaves the object
/// unfactored.
template <typename T>
class Lu {
 public:
  /// Empty object: call factor()/refactor() before solving.
  Lu() = default;
  /// Factor immediately (ctor form of factor(std::move(a))).
  explicit Lu(Matrix<T> a);

  /// Factor A, taking ownership of its buffer.
  void factor(Matrix<T> a);
  /// Factor a copy of A, reusing this object's existing storage (no
  /// allocation once warm). Results are identical to factor(A).
  void refactor(const Matrix<T>& a);
  bool factored() const { return factored_; }

  /// Solve A x = b for one right-hand side.
  std::vector<T> solve(const std::vector<T>& b) const;
  /// Solve into a caller-owned vector (resized; allocation-free when warm).
  /// b and x must be distinct objects.
  void solveInto(const std::vector<T>& b, std::vector<T>& x) const;
  /// Multi-RHS solve: the columns of B are independent right-hand sides.
  /// Column j of the result is exactly solve(column j of B).
  Matrix<T> solve(const Matrix<T>& b) const;

  /// log|det(A)| sign-less magnitude check helper; determinant itself can
  /// overflow for large systems so callers should prefer isSingular().
  T determinant() const;

  /// Numerical-singularity check on the factored matrix: true when the
  /// smallest pivot magnitude falls below relTol times the largest. Works on
  /// log magnitudes, so it neither overflows nor underflows where a
  /// determinant()-based test would (a 400x400 matrix of 1e-3 pivots has
  /// determinant 0.0 in double yet is perfectly well conditioned). Throws
  /// std::logic_error when not factored.
  bool isSingular(double relTol = 1e-12) const;

  std::size_t order() const { return lu_.rows(); }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  int permSign_ = 1;
  bool factored_ = false;
};

/// Convenience one-shot solve.
template <typename T>
std::vector<T> solveLinear(Matrix<T> a, const std::vector<T>& b) {
  return Lu<T>(std::move(a)).solve(b);
}

/// Cholesky factorization A = L L^T for symmetric positive definite A.
/// Used by the Gaussian-process baseline. Throws if A is not SPD.
class Cholesky {
 public:
  explicit Cholesky(const Mat& a);

  Vec solve(const Vec& b) const;
  /// Solve L y = b (forward substitution only).
  Vec solveLower(const Vec& b) const;
  /// Sum of log of diagonal entries of L (0.5 * log det A).
  double halfLogDet() const;
  const Mat& lower() const { return l_; }

 private:
  Mat l_;
};

extern template class Lu<double>;
extern template class Lu<std::complex<double>>;

}  // namespace crl::linalg
