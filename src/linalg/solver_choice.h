#pragma once
// Dense/sparse solver selection knobs — a tiny header so high layers
// (circuit::Benchmark, analysis options structs) can carry a solver policy
// without pulling in the solver implementations.

#include <cstddef>

namespace crl::linalg {

/// Which backend an MnaSolver runs on.
enum class SolverKind { Dense, Sparse };

/// Caller policy: Auto sizes the choice against the sparse threshold (the
/// paper's hand-coded circuits stay dense and bit-exact); Force* pins the
/// backend regardless of size (parity suites, benches).
enum class SolverChoice { Auto, ForceDense, ForceSparse };

/// Unknown count at which Auto flips to the sparse backend. Read from
/// CRL_SPICE_SPARSE_THRESHOLD (default 64 — far above every hand-coded
/// paper circuit, so their goldens keep the dense bit-exact path; 0 forces
/// sparse everywhere).
std::size_t sparseThreshold();

/// Resolve a policy for an n-unknown system.
SolverKind chooseSolverKind(std::size_t unknowns,
                            SolverChoice choice = SolverChoice::Auto);

}  // namespace crl::linalg
