#pragma once
// Sparse MNA assembly buffer.
//
// The SPICE stamping loops emit (row, col, value) contributions in a fixed
// per-topology order: every Newton iteration and every AC frequency point
// walks the same device list and each device emits the same stamp sequence.
// SparseAssembly records that sequence as a reusable triplet buffer — the
// key sequence IS the topology's fingerprint, so a solver can cache its
// symbolic analysis against it and detect topology changes with one linear
// compare (see SparseLu::refactor). begin()/add() never shrink capacity, so
// steady-state reassembly is allocation-free.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace crl::linalg {

template <typename T>
class SparseAssembly {
 public:
  /// Start assembling an n-unknown system: clears entries, keeps capacity.
  void begin(std::size_t n) {
    if (n > kMaxOrder) throw std::invalid_argument("SparseAssembly: order too large");
    n_ = n;
    keys_.clear();
    vals_.clear();
  }

  /// Append one contribution; duplicates at the same (row, col) are summed
  /// by the solver in append order.
  void add(std::size_t row, std::size_t col, T val) {
    if (row >= n_ || col >= n_)
      throw std::out_of_range("SparseAssembly: entry outside system");
    keys_.push_back((static_cast<std::uint64_t>(row) << 32) |
                    static_cast<std::uint64_t>(col));
    vals_.push_back(val);
  }

  std::size_t order() const { return n_; }
  std::size_t entryCount() const { return keys_.size(); }

  static std::size_t rowOf(std::uint64_t key) {
    return static_cast<std::size_t>(key >> 32);
  }
  static std::size_t colOf(std::uint64_t key) {
    return static_cast<std::size_t>(key & 0xffffffffu);
  }

  /// Stamp-order (row, col) keys — the topology fingerprint.
  const std::vector<std::uint64_t>& keys() const { return keys_; }
  /// Stamp-order values, aligned with keys().
  const std::vector<T>& values() const { return vals_; }

 private:
  static constexpr std::size_t kMaxOrder = 0xffffffffu;
  std::size_t n_ = 0;
  std::vector<std::uint64_t> keys_;
  std::vector<T> vals_;
};

}  // namespace crl::linalg
