#include "linalg/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <stdexcept>

#include "obs/metrics.h"

namespace crl::linalg {

namespace {

inline double magnitude(double v) { return std::fabs(v); }
inline double magnitude(const std::complex<double>& v) { return std::abs(v); }

// Zero-free-diagonal transversal via Kuhn's augmenting paths: match every
// column j to a distinct row with a structural entry in column j. rowsOfCol
// lists candidate rows per column. Returns the matching (column -> row), or
// an empty vector when no perfect matching exists (structural singularity).
std::vector<std::size_t> maxTransversal(
    std::size_t n, const std::vector<std::vector<std::size_t>>& rowsOfCol) {
  constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);
  std::vector<std::size_t> rowMatch(n, kUnmatched);  // row -> column
  std::vector<std::size_t> colMatch(n, kUnmatched);  // column -> row
  std::vector<unsigned char> visited(n, 0);

  // DFS from column c over alternating paths; stamp tracks visited rows.
  std::function<bool(std::size_t)> tryColumn = [&](std::size_t c) -> bool {
    for (std::size_t r : rowsOfCol[c]) {
      if (visited[r]) continue;
      visited[r] = 1;
      if (rowMatch[r] == kUnmatched || tryColumn(rowMatch[r])) {
        rowMatch[r] = c;
        colMatch[c] = r;
        return true;
      }
    }
    return false;
  };

  for (std::size_t c = 0; c < n; ++c) {
    // Cheap pass first: an unmatched candidate row.
    bool done = false;
    for (std::size_t r : rowsOfCol[c]) {
      if (rowMatch[r] == kUnmatched) {
        rowMatch[r] = c;
        colMatch[c] = r;
        done = true;
        break;
      }
    }
    if (done) continue;
    std::fill(visited.begin(), visited.end(), 0);
    if (!tryColumn(c)) return {};
  }
  return colMatch;
}

// Greedy minimum-degree ordering on a symmetric pattern (diagonal excluded).
// Eliminating a node turns its neighbourhood into a clique — the symbolic
// fill — and the next pivot is the minimum-degree survivor (ties broken by
// index, keeping the order fully deterministic).
std::vector<std::size_t> minDegreeOrder(std::size_t n,
                                        std::vector<std::set<std::size_t>> adj) {
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<unsigned char> eliminated(n, 0);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    std::size_t bestDeg = static_cast<std::size_t>(-1);
    for (std::size_t v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      const std::size_t deg = adj[v].size();
      if (deg < bestDeg) {
        bestDeg = deg;
        best = v;
      }
    }
    order.push_back(best);
    eliminated[best] = 1;
    const std::set<std::size_t> nbrs = std::move(adj[best]);
    adj[best].clear();
    for (std::size_t a : nbrs) adj[a].erase(best);
    for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
      for (auto jt = std::next(it); jt != nbrs.end(); ++jt) {
        adj[*it].insert(*jt);
        adj[*jt].insert(*it);
      }
    }
  }
  return order;
}

// All sparse-LU instruments registered as one block: the first touch of
// ANY entry point registers every counter, so later first-uses of the
// other paths (e.g. the first refactor() after a factor() warmup) stay
// allocation-free — the refactor hot loop promises zero allocations.
struct SparseLuMetrics {
  obs::Counter& analyses = obs::counter("linalg.sparse_lu.symbolic_analyses");
  obs::Gauge& fillNnz = obs::gauge("linalg.sparse_lu.fill_nnz");
  obs::Gauge& fillRatio = obs::gauge("linalg.sparse_lu.fill_ratio");
  obs::Counter& collapses = obs::counter("linalg.sparse_lu.pivot_collapses");
  obs::Counter& factors = obs::counter("linalg.sparse_lu.factors");
  obs::Counter& reused = obs::counter("linalg.sparse_lu.refactors_reused");
  obs::Counter& solves = obs::counter("linalg.sparse_lu.solves");

  static SparseLuMetrics& get() {
    static SparseLuMetrics m;
    return m;
  }
};

}  // namespace

template <typename T>
bool SparseLu<T>::patternMatches(const SparseAssembly<T>& a) const {
  return analyzed_ && a.order() == n_ && a.keys() == stampKeys_;
}

template <typename T>
void SparseLu<T>::analyze(const SparseAssembly<T>& a) {
  SparseLuMetrics::get().analyses.add();
  analyzed_ = false;
  factored_ = false;
  n_ = a.order();
  stampKeys_ = a.keys();

  // Deduplicated pattern entries, sorted by (row, col).
  std::vector<std::uint64_t> uniq = stampKeys_;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  nnz_ = uniq.size();

  // Structural candidates per column for the transversal.
  std::vector<std::vector<std::size_t>> rowsOfCol(n_);
  for (std::uint64_t key : uniq)
    rowsOfCol[SparseAssembly<T>::colOf(key)].push_back(SparseAssembly<T>::rowOf(key));

  const std::vector<std::size_t> colMatch = maxTransversal(n_, rowsOfCol);
  if (n_ > 0 && colMatch.empty())
    throw std::runtime_error("SparseLu: structurally singular matrix");

  // B = row-permuted A with a zero-free diagonal: B row j = A row colMatch[j].
  // permOfBRow maps an original row to its B index.
  std::vector<std::size_t> permOfBRow(n_);
  for (std::size_t j = 0; j < n_; ++j) permOfBRow[colMatch[j]] = j;

  // Symmetrized B pattern for the fill-reducing ordering.
  std::vector<std::set<std::size_t>> adj(n_);
  for (std::uint64_t key : uniq) {
    const std::size_t bi = permOfBRow[SparseAssembly<T>::rowOf(key)];
    const std::size_t bj = SparseAssembly<T>::colOf(key);
    if (bi == bj) continue;
    adj[bi].insert(bj);
    adj[bj].insert(bi);
  }
  const std::vector<std::size_t> sigma = minDegreeOrder(n_, std::move(adj));

  // Final permutations: permuted index i corresponds to B index sigma[i].
  rowOfPerm_.resize(n_);
  colOfPerm_.resize(n_);
  std::vector<std::size_t> permOfB(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    rowOfPerm_[i] = colMatch[sigma[i]];
    colOfPerm_[i] = sigma[i];
    permOfB[sigma[i]] = i;
  }

  // Permuted structural pattern, then symbolic elimination. Processing the
  // strictly-lower columns of a working row in ascending order and merging
  // in the (already final) upper pattern of each pivot row mirrors exactly
  // what the numeric kernel will do, so the analyzed fill is exact.
  std::vector<std::vector<std::size_t>> rowPat(n_);
  for (std::uint64_t key : uniq) {
    const std::size_t pi = permOfB[permOfBRow[SparseAssembly<T>::rowOf(key)]];
    const std::size_t pj = permOfB[SparseAssembly<T>::colOf(key)];
    rowPat[pi].push_back(pj);
  }

  luPtr_.assign(n_ + 1, 0);
  luCol_.clear();
  diagPos_.assign(n_, 0);
  std::vector<std::vector<std::size_t>> finalRows(n_);
  std::set<std::size_t> work;
  for (std::size_t i = 0; i < n_; ++i) {
    work.clear();
    work.insert(rowPat[i].begin(), rowPat[i].end());
    work.insert(i);  // transversal guarantees a structural diagonal
    for (auto it = work.begin(); it != work.end() && *it < i; ++it) {
      const std::size_t j = *it;
      const auto& uj = finalRows[j];
      // Merge U-row j (columns > j). Inserted columns exceed j, so std::set
      // iteration still visits them in ascending order.
      for (auto p = std::upper_bound(uj.begin(), uj.end(), j); p != uj.end(); ++p)
        work.insert(*p);
    }
    finalRows[i].assign(work.begin(), work.end());
    luPtr_[i + 1] = luPtr_[i] + finalRows[i].size();
  }
  luCol_.reserve(luPtr_[n_]);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t c : finalRows[i]) {
      if (c == i) diagPos_[i] = luCol_.size();
      luCol_.push_back(c);
    }
  }

  // Scatter map: stamp-order triplet -> LU slot.
  tripletToLu_.resize(stampKeys_.size());
  for (std::size_t k = 0; k < stampKeys_.size(); ++k) {
    const std::size_t pi = permOfB[permOfBRow[SparseAssembly<T>::rowOf(stampKeys_[k])]];
    const std::size_t pj = permOfB[SparseAssembly<T>::colOf(stampKeys_[k])];
    const auto begin = luCol_.begin() + static_cast<std::ptrdiff_t>(luPtr_[pi]);
    const auto end = luCol_.begin() + static_cast<std::ptrdiff_t>(luPtr_[pi + 1]);
    tripletToLu_[k] =
        static_cast<std::size_t>(std::lower_bound(begin, end, pj) - luCol_.begin());
  }

  luVal_.resize(luCol_.size());
  work_.resize(n_);
  perm_.resize(n_);
  analyzed_ = true;
  // Fill-in from the last analysis: factor slots vs stamped entries.
  SparseLuMetrics& m = SparseLuMetrics::get();
  m.fillNnz.set(static_cast<double>(luCol_.size()));
  m.fillRatio.set(nnz_ > 0 ? static_cast<double>(luCol_.size()) /
                                 static_cast<double>(nnz_)
                           : 1.0);
}

template <typename T>
void SparseLu<T>::numericFactor(const SparseAssembly<T>& a) {
  factored_ = false;
  std::fill(luVal_.begin(), luVal_.end(), T{});
  const std::vector<T>& vals = a.values();
  for (std::size_t k = 0; k < vals.size(); ++k) luVal_[tripletToLu_[k]] += vals[k];

  // Up-looking row LU over the analyzed pattern: for row i, eliminate each
  // strictly-lower column j in ascending order against the finished U row j.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t p = luPtr_[i]; p < luPtr_[i + 1]; ++p)
      work_[luCol_[p]] = luVal_[p];
    for (std::size_t p = luPtr_[i]; p < luPtr_[i + 1] && luCol_[p] < i; ++p) {
      const std::size_t j = luCol_[p];
      const T lij = work_[j] / luVal_[diagPos_[j]];
      work_[j] = lij;
      if (lij == T{}) continue;
      for (std::size_t q = diagPos_[j] + 1; q < luPtr_[j + 1]; ++q)
        work_[luCol_[q]] -= lij * luVal_[q];
    }
    for (std::size_t p = luPtr_[i]; p < luPtr_[i + 1]; ++p)
      luVal_[p] = work_[luCol_[p]];
    if (magnitude(luVal_[diagPos_[i]]) < 1e-300) {
      SparseLuMetrics::get().collapses.add();
      throw std::runtime_error("SparseLu: singular matrix");
    }
  }
  factored_ = true;
}

template <typename T>
void SparseLu<T>::factor(const SparseAssembly<T>& a) {
  SparseLuMetrics::get().factors.add();
  analyze(a);
  patternReused_ = false;
  numericFactor(a);
}

template <typename T>
void SparseLu<T>::refactor(const SparseAssembly<T>& a) {
  if (!patternMatches(a)) {
    factor(a);
    return;
  }
  SparseLuMetrics::get().reused.add();
  patternReused_ = true;
  numericFactor(a);
}

template <typename T>
void SparseLu<T>::solveInto(const std::vector<T>& b, std::vector<T>& x) const {
  SparseLuMetrics::get().solves.add();
  if (!factored_) throw std::logic_error("SparseLu::solve: not factored");
  if (b.size() != n_) throw std::invalid_argument("SparseLu::solve: dim mismatch");
  // Permute the RHS, forward-substitute with unit L, back-substitute with U,
  // then undo the column permutation.
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = b[rowOfPerm_[i]];
  for (std::size_t i = 0; i < n_; ++i) {
    T s = perm_[i];
    for (std::size_t p = luPtr_[i]; p < diagPos_[i]; ++p)
      s -= luVal_[p] * perm_[luCol_[p]];
    perm_[i] = s;
  }
  for (std::size_t ii = n_; ii-- > 0;) {
    T s = perm_[ii];
    for (std::size_t p = diagPos_[ii] + 1; p < luPtr_[ii + 1]; ++p)
      s -= luVal_[p] * perm_[luCol_[p]];
    perm_[ii] = s / luVal_[diagPos_[ii]];
  }
  x.resize(n_);
  for (std::size_t j = 0; j < n_; ++j) x[colOfPerm_[j]] = perm_[j];
}

template <typename T>
std::vector<T> SparseLu<T>::solve(const std::vector<T>& b) const {
  std::vector<T> x;
  solveInto(b, x);
  return x;
}

template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace crl::linalg
