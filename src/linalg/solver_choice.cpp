#include "linalg/solver_choice.h"

#include <cstdlib>

namespace crl::linalg {

std::size_t sparseThreshold() {
  // Re-read per call (it is consulted once per analysis construction): tests
  // and harnesses may flip the knob between circuits.
  if (const char* v = std::getenv("CRL_SPICE_SPARSE_THRESHOLD")) {
    const long parsed = std::atol(v);
    if (parsed >= 0) return static_cast<std::size_t>(parsed);
  }
  return 64;
}

SolverKind chooseSolverKind(std::size_t unknowns, SolverChoice choice) {
  switch (choice) {
    case SolverChoice::ForceDense:
      return SolverKind::Dense;
    case SolverChoice::ForceSparse:
      return SolverKind::Sparse;
    case SolverChoice::Auto:
      break;
  }
  return unknowns >= sparseThreshold() ? SolverKind::Sparse : SolverKind::Dense;
}

}  // namespace crl::linalg
