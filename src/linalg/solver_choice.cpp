#include "linalg/solver_choice.h"

#include <cstdlib>

#include "obs/metrics.h"

namespace crl::linalg {

std::size_t sparseThreshold() {
  // Re-read per call (it is consulted once per analysis construction): tests
  // and harnesses may flip the knob between circuits.
  if (const char* v = std::getenv("CRL_SPICE_SPARSE_THRESHOLD")) {
    const long parsed = std::atol(v);
    if (parsed >= 0) return static_cast<std::size_t>(parsed);
  }
  return 64;
}

SolverKind chooseSolverKind(std::size_t unknowns, SolverChoice choice) {
  const auto chosen = [&] {
    switch (choice) {
      case SolverChoice::ForceDense:
        return SolverKind::Dense;
      case SolverChoice::ForceSparse:
        return SolverKind::Sparse;
      case SolverChoice::Auto:
        break;
    }
    return unknowns >= sparseThreshold() ? SolverKind::Sparse
                                         : SolverKind::Dense;
  }();
  // One choice per analysis construction — the dense/sparse split over a
  // run is the first thing to look at when solve timings move.
  static auto& dense = obs::counter("linalg.solver.dense_selected");
  static auto& sparse = obs::counter("linalg.solver.sparse_selected");
  (chosen == SolverKind::Dense ? dense : sparse).add();
  return chosen;
}

}  // namespace crl::linalg
