#pragma once
// Dense row-major matrix over an arithmetic scalar (double or complex<double>).
//
// This is the numeric workhorse for the MNA circuit solver (real + complex
// systems), the Gaussian-process baseline (Cholesky), and the autograd tensor
// library. It favours clarity and bounds-checked access in debug builds over
// absolute peak throughput; the systems here are small (tens of unknowns).

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "linalg/simd_kernels.h"

namespace crl::linalg {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Adopt an existing buffer (the arena pool recycles vectors this way).
  Matrix(std::size_t rows, std::size_t cols, std::vector<T>&& data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    if (data_.size() != rows_ * cols_)
      throw std::invalid_argument("Matrix: adopted buffer size mismatch");
  }

  /// Construct from nested initializer list: Matrix<double>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged init list");
      for (const T& v : row) data_.push_back(v);
    }
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& raw() { return data_; }
  const std::vector<T>& raw() const { return data_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  Matrix& operator+=(const Matrix& o) {
    checkSameShape(o);
    if constexpr (std::is_same_v<T, double>) {
      simd::addInPlaceKernel(data_.data(), o.data_.data(), data_.size());
    } else {
      for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    }
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    checkSameShape(o);
    if constexpr (std::is_same_v<T, double>) {
      simd::subInPlaceKernel(data_.data(), o.data_.data(), data_.size());
    } else {
      for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    }
    return *this;
  }
  Matrix& operator*=(T s) {
    if constexpr (std::is_same_v<T, double>) {
      simd::scaleInPlaceKernel(data_.data(), s, data_.size());
    } else {
      for (auto& v : data_) v *= s;
    }
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

  bool sameShape(const Matrix& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

 private:
  void checkSameShape(const Matrix& o) const {
    if (!sameShape(o)) throw std::invalid_argument("Matrix: shape mismatch");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Mat = Matrix<double>;
using CMat = Matrix<std::complex<double>>;
using Vec = std::vector<double>;
using CVec = std::vector<std::complex<double>>;

/// Dense matmul C += A * B into a caller-provided zero-filled C (the arena
/// pool hands out recycled zeroed buffers, keeping the autograd hot path
/// allocation-free). The double case runs the runtime-dispatched SIMD core
/// (simd_kernels.h) — identical saxpy loop nest and accumulation order (and
/// sparse zero-skip), so results are bit-identical to the classic indexed
/// loop at every vector width.
template <typename T>
void matmulInto(Matrix<T>& c, const Matrix<T>& a, const Matrix<T>& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: inner dim mismatch");
  if (c.rows() != a.rows() || c.cols() != b.cols())
    throw std::invalid_argument("matmulInto: output shape mismatch");
  const std::size_t kk = a.cols(), n = b.cols();
  if constexpr (std::is_same_v<T, double>) {
    simd::matmulKernel(c.data(), a.data(), b.data(), a.rows(), kk, n);
    return;
  } else {
    const T* ap = a.data();
    const T* bp = b.data();
    T* cp = c.data();
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const T* arow = ap + i * kk;
      T* crow = cp + i * n;
      for (std::size_t k = 0; k < kk; ++k) {
        const T aik = arow[k];
        if (aik == T{}) continue;
        const T* brow = bp + k * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

/// Dense matmul C = A * B.
template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> c(a.rows(), b.cols());
  matmulInto(c, a, b);
  return c;
}

/// C += A^T * B without materializing the transpose: c(k,j) = sum_i a(i,k)
/// b(i,j), into a caller-provided zero-filled C. Summation order over i
/// matches matmul(a.transposed(), b) exactly.
template <typename T>
void matmulAtBInto(Matrix<T>& c, const Matrix<T>& a, const Matrix<T>& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmulAtB: dim mismatch");
  if (c.rows() != a.cols() || c.cols() != b.cols())
    throw std::invalid_argument("matmulAtBInto: output shape mismatch");
  const std::size_t kk = a.cols(), n = b.cols();
  if constexpr (std::is_same_v<T, double>) {
    simd::matmulAtBKernel(c.data(), a.data(), b.data(), a.rows(), kk, n);
    return;
  } else {
    const T* ap = a.data();
    const T* bp = b.data();
    T* cp = c.data();
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const T* arow = ap + i * kk;
      const T* brow = bp + i * n;
      for (std::size_t k = 0; k < kk; ++k) {
        const T aik = arow[k];
        if (aik == T{}) continue;
        T* crow = cp + k * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

/// C = A^T * B.
template <typename T>
Matrix<T> matmulAtB(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> c(a.cols(), b.cols());
  matmulAtBInto(c, a, b);
  return c;
}

/// Matrix-vector product y = A x.
template <typename T>
std::vector<T> matvec(const Matrix<T>& a, const std::vector<T>& x) {
  if (a.cols() != x.size()) throw std::invalid_argument("matvec: dim mismatch");
  std::vector<T> y(a.rows(), T{});
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) y[i] += a(i, j) * x[j];
  return y;
}

template <typename T>
T dot(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: dim mismatch");
  T s{};
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vec& v);
double norminf(const Vec& v);

}  // namespace crl::linalg
