// Vectorized exp/tanh/sigmoid cores — see vec_math.h for the dispatch and
// exactness contract. This TU is compiled with -ffp-contract=off
// -fno-math-errno (enforced in CMakeLists.txt): the per-element algorithm
// is a fixed sequence of IEEE operations, and forbidding FMA contraction is
// what makes the AVX-512 / AVX2 / baseline clones (and the scalar reference
// entry points) produce identical bits.
//
// Algorithm notes (all branchless, so GCC's vectorizer if-converts them):
//
//   exp(x):  clamp x into [-746, 710] (results saturate to 0 / inf exactly
//            like libm; NaN passes every clamp unchanged), then
//            k = round(x * log2(e)) via the 1.5*2^52 magic-shift trick (the
//            rounded integer appears in the low mantissa bits — no
//            double->int64 conversion, which AVX2 lacks), Cody-Waite
//            reduction r = x - k*ln2 against a hi/lo split of ln2, a
//            degree-13 Taylor polynomial for expm1(r) on |r| <= ln2/2, and
//            reconstruction (1 + q) * 2^(k/2) * 2^(k - k/2). The split
//            scale keeps both factors normal for every clamped k in
//            [-1076, 1025], so overflow -> inf and the gradual-underflow
//            tail produce exactly one final rounding.
//
//   tanh(x): em = expm1(2|x|) by the same reduction (2|x| clamped to 40 —
//            beyond it em/(em+2) rounds to 1.0 anyway), then
//            copysign(em / (em + 2), x). Subnormal and tiny x collapse to
//            x itself (q's quadratic term underflows), matching std::tanh.
//
//   sigmoid(x): 1 / (1 + exp(-x)) — literally the legacy scalar formula
//            with exp swapped for the kernel above.

#include "linalg/vec_math.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>

// Same guard as simd_kernels.cpp: per-ISA clones need GNU ifunc support.
#if defined(__x86_64__) && defined(__GNUC__) && defined(__gnu_linux__) && \
    !defined(CRL_SIMD_NO_CLONES)
#define CRL_VEC_MATH_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#define CRL_VEC_MATH_TIERS 1
#else
#define CRL_VEC_MATH_CLONES
#endif

namespace crl::linalg::vecmath {
namespace {

constexpr double kLog2E = 1.44269504088896340736;       // 1/ln(2)
constexpr double kLn2Hi = 6.93147180369123816490e-01;   // fdlibm hi/lo split
constexpr double kLn2Lo = 1.90821492927058770002e-10;   //   of ln(2)
constexpr double kShift = 6755399441055744.0;           // 1.5 * 2^52

/// q = expm1(r) = r + r^2/2! + ... + r^13/13! for |r| <= ln2/2. The
/// truncation error (~4e-18 relative) is below half an ulp; the leading
/// term is exact, which keeps expm1's relative accuracy near r = 0.
inline double expm1Poly(double r) {
  double q = 1.0 / 6227020800.0;  // 1/13!
  q = q * r + 1.0 / 479001600.0;
  q = q * r + 1.0 / 39916800.0;
  q = q * r + 1.0 / 3628800.0;
  q = q * r + 1.0 / 362880.0;
  q = q * r + 1.0 / 40320.0;
  q = q * r + 1.0 / 5040.0;
  q = q * r + 1.0 / 720.0;
  q = q * r + 1.0 / 120.0;
  q = q * r + 1.0 / 24.0;
  q = q * r + 1.0 / 6.0;
  q = q * r + 0.5;
  return q * r * r + r;
}

/// Rounded k from the magic-shifted kd = x*log2e + 1.5*2^52: the low 13
/// mantissa bits hold (2^51 + k) mod 2^13; xor/sub sign-extends the 13-bit
/// two's complement. Valid for |k| <= 4095 — every clamped input below
/// keeps k in [-1076, 1025].
inline std::int64_t shiftedK(double kd) {
  return ((std::bit_cast<std::int64_t>(kd) & 0x1FFF) ^ 0x1000) - 0x1000;
}

/// x > hi ? hi : x; NaN fails the compare and passes through. Kept as a
/// plain ternary — the TU's -fno-trapping-math (CMakeLists.txt) lets the
/// if-converter turn it into a lane select on every ISA tier.
inline double clampHi(double x, double hi) { return x > hi ? hi : x; }

/// x < lo ? lo : x (NaN passes through).
inline double clampLo(double x, double lo) { return x < lo ? lo : x; }

/// 2^k assembled in the exponent field; k must keep k + 1023 in [1, 2046].
inline double pow2i(std::int64_t k) {
  return std::bit_cast<double>(static_cast<std::uint64_t>(k + 1023) << 52);
}

inline double expCore(double x) {
  // Saturation clamps (NaN fails both compares and passes through): at
  // x = 710 the reconstruction overflows to inf, at -746 it underflows to
  // 0 through the subnormal range — the same thresholds where std::exp
  // saturates.
  const double xc = clampLo(clampHi(x, 710.0), -746.0);
  const double kd = xc * kLog2E + kShift;
  const double kf = kd - kShift;
  const std::int64_t k = shiftedK(kd);
  const double r = (xc - kf * kLn2Hi) - kf * kLn2Lo;
  const double q = expm1Poly(r);
  // Split scale: (1+q)*2^kh stays normal for every clamped k, so the final
  // multiply by 2^(k-kh) is the single rounding that lands on inf, a
  // subnormal, or 0 at the extremes.
  const std::int64_t kh = k >> 1;
  return ((1.0 + q) * pow2i(kh)) * pow2i(k - kh);
}

inline double tanhCore(double x) {
  const double ax = std::fabs(x);
  // Beyond y = 2|x| = 40, em/(em+2) rounds to 1.0 regardless, so the clamp
  // saturates exactly like std::tanh. NaN passes through the mask select.
  const double y = clampHi(2.0 * ax, 40.0);
  const double kd = y * kLog2E + kShift;
  const double kf = kd - kShift;
  const std::int64_t k = shiftedK(kd);  // 0..58 for real inputs
  const double r = (y - kf * kLn2Hi) - kf * kLn2Lo;
  const double q = expm1Poly(r);
  const double s = pow2i(k);
  const double em = s * q + (s - 1.0);  // expm1(y); exact q when k == 0
  const double t = em / (em + 2.0);
  return std::copysign(t, x);
}

inline double sigmoidCore(double x) { return 1.0 / (1.0 + expCore(-x)); }

// ---- CRL_SIMD_MATH knob ---------------------------------------------------

std::atomic<int> gKnob{-1};  // -1 = env not read yet, 0 = off, 1 = on

}  // namespace

bool enabled() {
  int k = gKnob.load(std::memory_order_relaxed);
  if (k < 0) {
    const char* v = std::getenv("CRL_SIMD_MATH");
    k = (v != nullptr && v[0] == '0' && v[1] == '\0') ? 0 : 1;
    gKnob.store(k, std::memory_order_relaxed);
  }
  return k == 1;
}

void setEnabled(bool on) {
  gKnob.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---- scalar references ----------------------------------------------------

double refExp(double x) { return expCore(x); }
double refTanh(double x) { return tanhCore(x); }
double refSigmoid(double x) { return sigmoidCore(x); }

// ---- dispatched array kernels ---------------------------------------------

namespace {

CRL_VEC_MATH_CLONES
void expKernel(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = expCore(x[i]);
}

CRL_VEC_MATH_CLONES
void tanhKernel(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = tanhCore(x[i]);
}

CRL_VEC_MATH_CLONES
void sigmoidKernel(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = sigmoidCore(x[i]);
}

}  // namespace

void expInPlace(double* x, std::size_t n) {
  if (enabled()) {
    expKernel(x, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) x[i] = std::exp(x[i]);
}

void tanhInPlace(double* x, std::size_t n) {
  if (enabled()) {
    tanhKernel(x, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

void sigmoidInPlace(double* x, std::size_t n) {
  if (enabled()) {
    sigmoidKernel(x, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) x[i] = 1.0 / (1.0 + std::exp(-x[i]));
}

// ---- shared softmax row kernels -------------------------------------------

void softmaxRowsInPlace(double* m, std::size_t rows, std::size_t cols) {
  const bool vec = enabled();
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = m + r * cols;
    double mx = row[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    if (vec) {
      for (std::size_t c = 0; c < cols; ++c) row[c] -= mx;
      expKernel(row, cols);
    } else {
      for (std::size_t c = 0; c < cols; ++c) row[c] = std::exp(row[c] - mx);
    }
    double total = 0.0;
    for (std::size_t c = 0; c < cols; ++c) total += row[c];
    for (std::size_t c = 0; c < cols; ++c) row[c] /= total;
  }
}

void logSoftmaxRowsInPlace(double* m, double* probs, std::size_t rows,
                           std::size_t cols) {
  const bool vec = enabled();
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = m + r * cols;
    double* prow = probs != nullptr ? probs + r * cols : nullptr;
    double mx = row[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    double total = 0.0;
    if (vec && prow != nullptr) {
      for (std::size_t c = 0; c < cols; ++c) prow[c] = row[c] - mx;
      expKernel(prow, cols);
      for (std::size_t c = 0; c < cols; ++c) total += prow[c];
    } else if (vec) {
      // No probs buffer: the scalar reference core gives the same bits as
      // the vector kernel, so the row sum is unchanged.
      for (std::size_t c = 0; c < cols; ++c) total += expCore(row[c] - mx);
    } else {
      for (std::size_t c = 0; c < cols; ++c) total += std::exp(row[c] - mx);
    }
    const double lse = mx + std::log(total);
    for (std::size_t c = 0; c < cols; ++c) row[c] -= lse;
    if (prow != nullptr) {
      if (vec) {
        for (std::size_t c = 0; c < cols; ++c) prow[c] /= total;
      } else {
        // Legacy-bit probabilities: the pre-knob backward recomputed
        // exp(log-softmax), so the fallback reproduces those exact bits.
        for (std::size_t c = 0; c < cols; ++c) prow[c] = std::exp(row[c]);
      }
    }
  }
}

// ---- explicit ISA tiers (bench entry points) ------------------------------

namespace {

#ifdef CRL_VEC_MATH_TIERS
#define CRL_VEC_MATH_TIER_DEFS(ATTR, SUFFIX)                        \
  ATTR void expLoop##SUFFIX(double* x, std::size_t n) {             \
    for (std::size_t i = 0; i < n; ++i) x[i] = expCore(x[i]);       \
  }                                                                 \
  ATTR void tanhLoop##SUFFIX(double* x, std::size_t n) {            \
    for (std::size_t i = 0; i < n; ++i) x[i] = tanhCore(x[i]);      \
  }                                                                 \
  ATTR void sigmoidLoop##SUFFIX(double* x, std::size_t n) {         \
    for (std::size_t i = 0; i < n; ++i) x[i] = sigmoidCore(x[i]);   \
  }

CRL_VEC_MATH_TIER_DEFS(__attribute__((target("avx512f"))), Avx512)
CRL_VEC_MATH_TIER_DEFS(__attribute__((target("avx2"))), Avx2)
CRL_VEC_MATH_TIER_DEFS(, Baseline)
#undef CRL_VEC_MATH_TIER_DEFS
#else
void expLoopBaseline(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = expCore(x[i]);
}
void tanhLoopBaseline(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = tanhCore(x[i]);
}
void sigmoidLoopBaseline(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = sigmoidCore(x[i]);
}
#endif

}  // namespace

const char* isaName(Isa isa) {
  switch (isa) {
    case Isa::Baseline: return "baseline";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "?";
}

bool isaSupported(Isa isa) {
#ifdef CRL_VEC_MATH_TIERS
  switch (isa) {
    case Isa::Baseline: return true;
    case Isa::Avx2: return __builtin_cpu_supports("avx2") != 0;
    case Isa::Avx512: return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return isa == Isa::Baseline;
#endif
}

void expInPlaceIsa(Isa isa, double* x, std::size_t n) {
#ifdef CRL_VEC_MATH_TIERS
  if (isa == Isa::Avx512) return expLoopAvx512(x, n);
  if (isa == Isa::Avx2) return expLoopAvx2(x, n);
#endif
  (void)isa;
  expLoopBaseline(x, n);
}

void tanhInPlaceIsa(Isa isa, double* x, std::size_t n) {
#ifdef CRL_VEC_MATH_TIERS
  if (isa == Isa::Avx512) return tanhLoopAvx512(x, n);
  if (isa == Isa::Avx2) return tanhLoopAvx2(x, n);
#endif
  (void)isa;
  tanhLoopBaseline(x, n);
}

void sigmoidInPlaceIsa(Isa isa, double* x, std::size_t n) {
#ifdef CRL_VEC_MATH_TIERS
  if (isa == Isa::Avx512) return sigmoidLoopAvx512(x, n);
  if (isa == Isa::Avx2) return sigmoidLoopAvx2(x, n);
#endif
  (void)isa;
  sigmoidLoopBaseline(x, n);
}

}  // namespace crl::linalg::vecmath
