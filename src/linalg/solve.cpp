#include "linalg/solve.h"

#include <cmath>
#include <stdexcept>

namespace crl::linalg {

namespace {
inline double magnitude(double v) { return std::fabs(v); }
inline double magnitude(const std::complex<double>& v) { return std::abs(v); }
}  // namespace

template <typename T>
Lu<T>::Lu(Matrix<T> a) {
  factor(std::move(a));
}

template <typename T>
void Lu<T>::factor(Matrix<T> a) {
  lu_ = std::move(a);
  factored_ = false;
  if (lu_.rows() != lu_.cols()) throw std::invalid_argument("Lu: matrix not square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  permSign_ = 1;
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: pick the row with the largest magnitude in column k.
    std::size_t pivot = k;
    double best = magnitude(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      double m = magnitude(lu_(i, k));
      if (m > best) {
        best = m;
        pivot = i;
      }
    }
    if (best < 1e-300) throw std::runtime_error("Lu: singular matrix");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(pivot, j));
      std::swap(perm_[k], perm_[pivot]);
      permSign_ = -permSign_;
    }
    const T pivotVal = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      T factor = lu_(i, k) / pivotVal;
      lu_(i, k) = factor;
      if (factor == T{}) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= factor * lu_(k, j);
    }
  }
  factored_ = true;
}

template <typename T>
void Lu<T>::refactor(const Matrix<T>& a) {
  // Copy-assign reuses lu_'s existing buffer when the capacity fits, so a
  // Newton loop refactoring the same-sized system every iteration never
  // reallocates.
  lu_ = a;
  Matrix<T> staged = std::move(lu_);
  factor(std::move(staged));
}

template <typename T>
std::vector<T> Lu<T>::solve(const std::vector<T>& b) const {
  std::vector<T> x;
  solveInto(b, x);
  return x;
}

template <typename T>
void Lu<T>::solveInto(const std::vector<T>& b, std::vector<T>& x) const {
  if (!factored_) throw std::logic_error("Lu::solve: not factored");
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("Lu::solve: dim mismatch");
  x.resize(n);
  // Apply permutation, then forward substitution (unit lower triangular).
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    T s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    T s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
}

template <typename T>
Matrix<T> Lu<T>::solve(const Matrix<T>& b) const {
  if (!factored_) throw std::logic_error("Lu::solve: not factored");
  const std::size_t n = lu_.rows();
  if (b.rows() != n) throw std::invalid_argument("Lu::solve: dim mismatch");
  Matrix<T> out(n, b.cols());
  std::vector<T> rhs(n), x;
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < n; ++i) rhs[i] = b(i, j);
    solveInto(rhs, x);
    for (std::size_t i = 0; i < n; ++i) out(i, j) = x[i];
  }
  return out;
}

template <typename T>
bool Lu<T>::isSingular(double relTol) const {
  if (!factored_) throw std::logic_error("Lu::isSingular: not factored");
  // Compare log magnitudes of the extreme pivots: log-space keeps the test
  // exact where the pivot product would leave double range.
  double minLog = 0.0, maxLog = 0.0;
  for (std::size_t i = 0; i < lu_.rows(); ++i) {
    const double m = magnitude(lu_(i, i));
    if (m == 0.0) return true;  // cannot survive factor(), but be safe
    const double l = std::log(m);
    if (i == 0 || l < minLog) minLog = l;
    if (i == 0 || l > maxLog) maxLog = l;
  }
  return lu_.rows() > 0 && minLog - maxLog < std::log(relTol);
}

template <typename T>
T Lu<T>::determinant() const {
  T det = static_cast<T>(permSign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

template class Lu<double>;
template class Lu<std::complex<double>>;

Cholesky::Cholesky(const Mat& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("Cholesky: matrix not square");
  const std::size_t n = a.rows();
  l_ = Mat(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (s <= 0.0) throw std::runtime_error("Cholesky: matrix not SPD");
        l_(i, i) = std::sqrt(s);
      } else {
        l_(i, j) = s / l_(j, j);
      }
    }
  }
}

Vec Cholesky::solveLower(const Vec& b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) throw std::invalid_argument("Cholesky::solveLower: dim mismatch");
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= l_(i, j) * y[j];
    y[i] = s / l_(i, i);
  }
  return y;
}

Vec Cholesky::solve(const Vec& b) const {
  const std::size_t n = l_.rows();
  Vec y = solveLower(b);
  // Back substitution with L^T.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= l_(j, ii) * y[j];
    y[ii] = s / l_(ii, ii);
  }
  return y;
}

double Cholesky::halfLogDet() const {
  double s = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return s;
}

double norm2(const Vec& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norminf(const Vec& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace crl::linalg
