#pragma once
// Runtime-dispatched SIMD cores for the double-precision hot loops.
//
// The autograd update path spends ~70% of a batched minibatch inside a
// handful of dense loop nests (matmul, A^T B, block-diagonal propagation,
// block-local attention mixing, Adam). Compiled into the generic library
// TUs they target baseline x86-64 (16-byte vectors); this TU compiles each
// core once per ISA via `target_clones` (AVX-512 / AVX2 / baseline) and
// glibc's ifunc machinery picks the widest supported at load time.
//
// Bit-identity contract: every kernel runs the EXACT loop structure and
// per-element accumulation order of the scalar code it replaces — lanes of
// a vectorized element-independent loop are separate IEEE op chains, so
// widening the vectors cannot change results. The TU is compiled with
// `-ffp-contract=off` (no FMA contraction — a fused multiply-add rounds
// once, not twice) and `-fno-math-errno` (lets sqrt lower to vsqrtpd;
// errno is never inspected and the rounding is unchanged). The golden
// suites (`ctest -L golden`) pin this: they were recorded before this TU
// existed and still match bit-for-bit.

#include <cstddef>

namespace crl::linalg::simd {

/// C += A * B (row-major, C pre-zeroed by the caller): the saxpy i/k/j nest
/// of linalg::matmulInto, including its sparse zero-skip.
void matmulKernel(double* c, const double* a, const double* b,
                  std::size_t rows, std::size_t kk, std::size_t n);

/// C += A^T * B without materializing the transpose: the i/k/j nest of
/// linalg::matmulAtBInto (per-element accumulation ascends over i).
void matmulAtBKernel(double* c, const double* a, const double* b,
                     std::size_t rows, std::size_t kk, std::size_t n);

/// y += diag(blk, ..., blk) x with `repeat` copies of the n x n block along
/// the diagonal; x/y are [repeat*n x m]. `transposed` reads blk(k, r)
/// instead of blk(r, k) (the backward pass), in the same element order as a
/// materialized transpose.
void blockDiagKernel(double* y, const double* blk, std::size_t n,
                     std::size_t repeat, const double* x, std::size_t m,
                     bool transposed);

/// out += a_g * b_g per block (a [blocks*r x k], b [blocks*k x m], out
/// pre-zeroed): the value kernel of matmulBlocks / the fused GAT mixing op.
void blocksMatmulKernel(double* out, const double* a, const double* b,
                        std::size_t blocks, std::size_t r, std::size_t k,
                        std::size_t m);

/// The backward of the block-local attention mix: da(g*r+i, kk) is the dot
/// of grad row g*r+i with b row g*k+kk (da fully overwritten), and
/// db += alpha^T-routed grad saxpy (db pre-zeroed) — loop order identical
/// to the in-line scalar version in fusedSoftmaxMatmulBlocks.
void gatMixBackwardKernel(double* da, double* db, const double* alpha,
                          const double* b, const double* g, std::size_t blocks,
                          std::size_t r, std::size_t k, std::size_t m);

/// The GAT attention-logit assembly: e(g*n+i, j) = leakyRelu(src[g*n+i] +
/// dst[g*n+j]) + mask(g*n+i, j), with the pre-activation values saved for
/// the backward pass. Element arithmetic matches the unfused
/// outer-product + repeatRows + add + leakyRelu + addConst chain exactly
/// (the 0.0 + src term reproduces the outer product's zeroed accumulator).
void gatLogitsKernel(double* e, double* pre, const double* src,
                     const double* dst, const double* mask, std::size_t blocks,
                     std::size_t n, double slope);

/// Backward of gatLogitsKernel: dpre = leakyRelu'(pre) .* grad, dsrc row
/// sums (k-ascending with the matmul zero-skip), ddst per-block column sums
/// (i-ascending, no skip — repeatRows backward has none).
void gatLogitsBackwardKernel(double* dsrc, double* ddst, double* dpre,
                             const double* pre, const double* grad,
                             std::size_t blocks, std::size_t n, double slope);

// ---- head-packed GAT kernels --------------------------------------------
// Strided variants for the packed [rows x heads*d] GAT layout (one weight
// matmul for all heads; head k lives on column block [k*d, (k+1)*d)). Each
// runs the per-element chains of its compact counterpart above on views of
// the packed buffers, so per-head results are bit-identical to the per-head
// tensor layout.

/// Both attention projections of every head in one sweep: for head h,
/// srcAll[h*rows + i] = hw(i, h*d..) . aSrc[h*d..] and dstAll likewise
/// (head-major outputs). Per element this is matmulKernel's n == 1 loop —
/// k-ascending register accumulation with the zero-skip on the hw element.
void gatPackedProjectKernel(double* srcAll, double* dstAll, const double* hw,
                            const double* aSrc, const double* aDst,
                            std::size_t rows, std::size_t heads, std::size_t d);

/// blocksMatmulKernel over a column block of strided operands: out/b rows
/// have leading dimensions outLd/bLd and the caller pre-offsets both
/// pointers to the head's column block; a (alpha) is compact [blocks*r x k].
void blocksMatmulStridedKernel(double* out, std::size_t outLd, const double* a,
                               const double* b, std::size_t bLd,
                               std::size_t blocks, std::size_t r, std::size_t k,
                               std::size_t m);

/// gatMixBackwardKernel with db/b/g strided (leading dimensions dbLd/bLd/gLd,
/// pointers pre-offset to the head's column block); da/alpha are compact.
void gatMixBackwardStridedKernel(double* da, double* db, std::size_t dbLd,
                                 const double* alpha, const double* b,
                                 std::size_t bLd, const double* g,
                                 std::size_t gLd, std::size_t blocks,
                                 std::size_t r, std::size_t k, std::size_t m);

/// Rank-1 update c(i, 0..m) += v[i] * a[0..m] over a strided c column block
/// (leading dimension cLd) — the hw-side projection backward, matmulKernel's
/// kk == 1 saxpy with its zero-skip on v[i].
void outerAddStridedKernel(double* c, std::size_t cLd, const double* v,
                           const double* a, std::size_t rows, std::size_t m);

/// out[j] += sum_i a(i, j) * v[i] over a strided a column block (leading
/// dimension aLd) — the aSrc/aDst projection gradients, matmulAtBKernel's
/// n == 1 loop (i-ascending with the zero-skip on the a element).
void matvecAtStridedKernel(double* out, const double* a, std::size_t aLd,
                           const double* v, std::size_t rows, std::size_t m);

/// One Adam update over a parameter buffer: the exact per-element update of
/// Adam::step (m/v decay, bias-corrected divide, sqrt) — vectorized sqrt
/// and divide are correctly-rounded IEEE ops, so results match the scalar
/// loop bit-for-bit.
void adamStepKernel(double* value, double* m, double* v, const double* grad,
                    std::size_t count, double beta1, double beta2, double lr,
                    double eps, double bc1, double bc2);

/// dz[i] = actBackward(y[i]) * g[i] for the output-recoverable activations
/// of the fused layer kernels. `kind` indexes {tanh, relu, leakyRelu(0.2),
/// sigmoid} — per-element expressions identical to the unfused pointwise
/// backward ops.
enum class ActKind { Tanh, Relu, LeakyRelu, Sigmoid };
void activationBackwardKernel(double* dz, const double* y, const double* g,
                              std::size_t count, ActKind kind);

/// out[c] += column sums of g ([rows x cols], r-ascending per column) — the
/// bias gradient of the fused linear/GCN layers.
void biasRowSumKernel(double* out, const double* g, std::size_t rows,
                      std::size_t cols);

/// a[i] += b[i] (gradient accumulation).
void addInPlaceKernel(double* a, const double* b, std::size_t count);

/// a[i] -= b[i].
void subInPlaceKernel(double* a, const double* b, std::size_t count);

/// a[i] *= s (gradient clipping / sign flips).
void scaleInPlaceKernel(double* a, double s, std::size_t count);

}  // namespace crl::linalg::simd
