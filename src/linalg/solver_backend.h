#pragma once
// MnaSolver<T>: the dense/sparse solver seam of the MNA solve stack.
//
// The SPICE Newton loops and the AC sweep all follow one rhythm —
// beginAssembly, stamp, factorAssembled, solveInto — and MnaSolver is the
// object that rhythm runs against. It owns both backends:
//
//   Dense  — linalg::Lu over a dense Matrix<T>, partial pivoting. The
//            original path; arithmetic is untouched, so every golden curve
//            recorded against it stays bit-exact.
//   Sparse — linalg::SparseLu over a SparseAssembly<T> triplet buffer, with
//            the fill-reducing ordering and fill pattern computed once per
//            topology and every subsequent factorAssembled() a numeric-only,
//            allocation-free refactor (Newton iterations, AC points).
//
// Callers pick a backend with select() (see linalg::chooseSolverKind and the
// CRL_SPICE_SPARSE_THRESHOLD knob) and are otherwise agnostic: the spice
// Stamper writes into whichever assembly target is active. Both backends'
// buffers persist across select() calls, so a shared workspace (e.g. a
// SimSession worker slot) can serve dense and sparse circuits alternately
// without churn.

#include <vector>

#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "linalg/solver_choice.h"
#include "linalg/sparse.h"
#include "linalg/sparse_lu.h"

namespace crl::linalg {

template <typename T>
class MnaSolver {
 public:
  void select(SolverKind kind) { kind_ = kind; }
  SolverKind kind() const { return kind_; }

  /// Size and zero the active backend's assembly target for an n-unknown
  /// system, and zero the caller's RHS alongside (allocation-free once warm).
  void beginAssembly(std::size_t n, std::vector<T>& rhs) {
    if (kind_ == SolverKind::Dense) {
      if (dense_.rows() != n || dense_.cols() != n) {
        dense_ = Matrix<T>(n, n);
      } else {
        dense_.fill(T{});
      }
    } else {
      sparse_.begin(n);
    }
    rhs.assign(n, T{});
  }

  /// Active assembly target for the stamper (null when the other backend is
  /// selected).
  Matrix<T>* denseTarget() {
    return kind_ == SolverKind::Dense ? &dense_ : nullptr;
  }
  SparseAssembly<T>* sparseTarget() {
    return kind_ == SolverKind::Sparse ? &sparse_ : nullptr;
  }

  /// Factor the assembled system, reusing backend structure: the dense LU
  /// reuses its storage, the sparse LU reuses its symbolic analysis. Throws
  /// std::runtime_error on singularity (object left unfactored).
  void factorAssembled() {
    if (kind_ == SolverKind::Dense) {
      denseLu_.refactor(dense_);
    } else {
      sparseLu_.refactor(sparse_);
    }
  }

  void solveInto(const std::vector<T>& b, std::vector<T>& x) const {
    if (kind_ == SolverKind::Dense) {
      denseLu_.solveInto(b, x);
    } else {
      sparseLu_.solveInto(b, x);
    }
  }

  bool factored() const {
    return kind_ == SolverKind::Dense ? denseLu_.factored() : sparseLu_.factored();
  }

  /// Backend introspection (tests, benches).
  const Lu<T>& denseLu() const { return denseLu_; }
  const SparseLu<T>& sparseLu() const { return sparseLu_; }

 private:
  SolverKind kind_ = SolverKind::Dense;
  Matrix<T> dense_;
  Lu<T> denseLu_;
  SparseAssembly<T> sparse_;
  SparseLu<T> sparseLu_;
};

}  // namespace crl::linalg
