#pragma once
// Sparse LU with a symbolic/numeric split, built for MNA systems.
//
// The elimination order is computed from the sparsity PATTERN alone — a
// zero-free-diagonal transversal (voltage-source branch rows have structural
// zero diagonals) followed by greedy minimum-degree on the symmetrized
// pattern — so it never depends on the matrix values. That choice buys the
// property the solve stack's parity suites pin down: refactor() with new
// values is bitwise identical to a fresh factor() of the same matrix, because
// both run the same numeric kernel over the same analyzed structure.
//
// factor()  = symbolic analysis (ordering + fill pattern + scatter map,
//             allocates) + numeric factorization.
// refactor()= numeric-only pass reusing the analyzed structure when the
//             assembly's stamp pattern is unchanged — the Newton-iteration /
//             AC-frequency-point hot path, allocation-free once warm. A
//             changed pattern transparently falls back to a full factor().
//
// Numerical caveat: static (pattern-only) pivoting trades the dense solver's
// partial pivoting for structure reuse. MNA matrices are diagonally
// heavy after the transversal, which holds the growth in check; a pivot that
// still collapses numerically throws std::runtime_error exactly like the
// dense path, leaving the object unfactored, and Newton's homotopy ladder
// retries.

#include <complex>
#include <cstdint>
#include <vector>

#include "linalg/sparse.h"

namespace crl::linalg {

template <typename T>
class SparseLu {
 public:
  SparseLu() = default;

  /// Full factorization: analyze the pattern, then factor the values.
  /// Throws std::runtime_error (object left unfactored) when the pattern is
  /// structurally singular or a pivot collapses numerically.
  void factor(const SparseAssembly<T>& a);

  /// Numeric-only refactorization against the cached symbolic structure;
  /// falls back to factor() when the stamp pattern changed. Results are
  /// bitwise identical to factor(a).
  void refactor(const SparseAssembly<T>& a);

  bool factored() const { return factored_; }
  std::size_t order() const { return n_; }

  /// Solve A x = b into a caller-owned vector (allocation-free when warm).
  /// Not const-thread-safe: solves share one internal permutation buffer.
  void solveInto(const std::vector<T>& b, std::vector<T>& x) const;
  std::vector<T> solve(const std::vector<T>& b) const;

  /// True when the last refactor() reused the cached symbolic structure.
  bool patternReused() const { return patternReused_; }
  /// Deduplicated nonzero count of the analyzed pattern.
  std::size_t nonzeroCount() const { return nnz_; }
  /// Nonzero count of L + U (analyzed fill included).
  std::size_t fillCount() const { return luCol_.size(); }

 private:
  void analyze(const SparseAssembly<T>& a);
  void numericFactor(const SparseAssembly<T>& a);
  bool patternMatches(const SparseAssembly<T>& a) const;

  std::size_t n_ = 0;
  std::size_t nnz_ = 0;
  bool factored_ = false;
  bool analyzed_ = false;
  bool patternReused_ = false;

  // Cached stamp pattern (topology fingerprint) and its scatter map:
  // triplet k accumulates into LU slot tripletToLu_[k].
  std::vector<std::uint64_t> stampKeys_;
  std::vector<std::size_t> tripletToLu_;

  // Permutations: permuted row i is original row rowOfPerm_[i]; permuted
  // column j is original column colOfPerm_[j].
  std::vector<std::size_t> rowOfPerm_;
  std::vector<std::size_t> colOfPerm_;

  // Combined L+U pattern in CSR over permuted indices; columns sorted per
  // row; diagPos_[i] indexes U_ii. L is unit lower (stored without its
  // diagonal).
  std::vector<std::size_t> luPtr_;
  std::vector<std::size_t> luCol_;
  std::vector<std::size_t> diagPos_;
  std::vector<T> luVal_;

  // Numeric scratch (sized at analysis, reused allocation-free).
  std::vector<T> work_;
  mutable std::vector<T> perm_;  // permuted RHS / solution staging
};

extern template class SparseLu<double>;
extern template class SparseLu<std::complex<double>>;

}  // namespace crl::linalg
