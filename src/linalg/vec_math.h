#pragma once
// Runtime-dispatched vectorized transcendental math for the update-path hot
// loops: exp, tanh, sigmoid, and the shared softmax/log-softmax row kernels
// built on them.
//
// Dispatch follows the simd_kernels.h pattern: one source of truth per
// kernel, cloned per ISA (AVX-512 / AVX2 / baseline) with glibc ifunc
// dispatch picking the widest supported clone at load time. The per-element
// algorithm (range reduction + polynomial, see vec_math.cpp) is branchless
// straight-line IEEE arithmetic, so every clone produces bit-identical
// results — the TU is compiled with -ffp-contract=off to keep FMA
// contraction from breaking that (enforced in CMakeLists.txt).
//
// Exactness contract: unlike the simd_kernels.h kernels, these do NOT
// reproduce libm bit-for-bit — a polynomial evaluated in a different order
// than glibc's cannot. Instead the contract is:
//   * results are bit-identical across ISA tiers, platforms, and the
//     scalar reference entry points (refExp/refTanh/refSigmoid), and
//   * the deviation from std::exp / std::tanh / the scalar sigmoid formula
//     is bounded by the audited max-ULP bound pinned in
//     tests/linalg/test_vec_math_parity.cpp (edge cases — ±0, ±inf, NaN,
//     denormals, overflow/underflow thresholds — match std:: exactly).
// Because the bits differ from libm, the kernels sit behind the
// CRL_SIMD_MATH knob (default on; set CRL_SIMD_MATH=0 before first use or
// call setEnabled(false) to fall back to the exact legacy std:: loops).
// The golden learning curves survived the switch unchanged — the few-ULP
// probability shifts never flip a sampled action at golden-curve length —
// so they were NOT re-baselined (tests/rl/test_golden_curves.cpp still
// pins the pre-SIMD arrays, bit-for-bit on this toolchain).

#include <cstddef>

namespace crl::linalg::vecmath {

/// Whether the vectorized kernels are active (lazily reads CRL_SIMD_MATH on
/// first call; "0" disables, anything else — including unset — enables).
bool enabled();

/// Test/bench override of the CRL_SIMD_MATH knob.
void setEnabled(bool on);

/// Scalar reference evaluations — single-element runs of the exact
/// per-element algorithm the array kernels vectorize (same TU, same flags),
/// so they are bit-identical to any array element. These ignore the knob;
/// they exist for the ULP audit and for callers that need one value.
double refExp(double x);
double refTanh(double x);
double refSigmoid(double x);

/// In-place batched transforms over n contiguous doubles. Honor the knob:
/// vectorized kernels when enabled, the legacy std:: loops otherwise.
void expInPlace(double* x, std::size_t n);
void tanhInPlace(double* x, std::size_t n);
void sigmoidInPlace(double* x, std::size_t n);

/// Row-wise softmax over a [rows x cols] row-major buffer, in place. The
/// max-subtract + ascending row-sum summation order of the legacy loops is
/// preserved exactly; only the per-element exp changes with the knob. This
/// is the single shared implementation behind nn::softmaxRows, the fused
/// GAT attention softmax, and rl's sampling softmax.
void softmaxRowsInPlace(double* m, std::size_t rows, std::size_t cols);

/// Row-wise log-softmax in place: m(r,c) -= max_r + log(sum_c exp(m(r,c) -
/// max_r)), summation ascending in c like the legacy loop. When `probs` is
/// non-null it receives the softmax probabilities (rows*cols, row-major) as
/// a by-product for the backward pass — exp is not recomputed there.
void logSoftmaxRowsInPlace(double* m, double* probs, std::size_t rows,
                           std::size_t cols);

/// Explicit ISA-tier entry points for bench_vec_math: the same loops pinned
/// to one clone each, bypassing both the ifunc dispatch and the knob.
/// Calling a tier that isaSupported() rejects is undefined (SIGILL).
enum class Isa { Baseline, Avx2, Avx512 };
const char* isaName(Isa isa);
bool isaSupported(Isa isa);
void expInPlaceIsa(Isa isa, double* x, std::size_t n);
void tanhInPlaceIsa(Isa isa, double* x, std::size_t n);
void sigmoidInPlaceIsa(Isa isa, double* x, std::size_t n);

}  // namespace crl::linalg::vecmath
