#pragma once
// Adam optimizer (Kingma & Ba) with global-norm gradient clipping — the
// update rule Algorithm 1 of the paper uses for both policy and value nets.

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace crl::nn {

struct AdamOptions {
  double lr = 3e-4;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

class Adam {
 public:
  explicit Adam(std::vector<Tensor> params, AdamOptions opt = {});

  /// Apply one update from the accumulated gradients.
  void step();
  void zeroGrad();
  void setLearningRate(double lr) { opt_.lr = lr; }
  double learningRate() const { return opt_.lr; }
  const std::vector<Tensor>& parameters() const { return params_; }

  /// Optimizer state for checkpointing: first/second moments (aligned with
  /// parameters()) and the bias-correction step counter. A resumed run that
  /// restores only parameters silently diverges — Adam's moment estimates
  /// and warm-up correction restart cold — so checkpoints must carry these.
  const std::vector<Mat>& firstMoments() const { return m_; }
  const std::vector<Mat>& secondMoments() const { return v_; }
  long stepCount() const { return t_; }

  /// Restore moment/step state saved from an identically-shaped optimizer.
  /// Returns false (state unchanged) on any count/shape mismatch, naming the
  /// defect in `error` when non-null.
  bool restoreMoments(const std::vector<Mat>& m, const std::vector<Mat>& v,
                      long t, std::string* error = nullptr);

 private:
  std::vector<Tensor> params_;
  AdamOptions opt_;
  std::vector<Mat> m_;
  std::vector<Mat> v_;
  long t_ = 0;
};

/// Scale all gradients so their global L2 norm is at most maxNorm.
/// Returns the pre-clip norm.
double clipGradNorm(const std::vector<Tensor>& params, double maxNorm);

}  // namespace crl::nn
