#pragma once
// Adam optimizer (Kingma & Ba) with global-norm gradient clipping — the
// update rule Algorithm 1 of the paper uses for both policy and value nets.

#include <vector>

#include "nn/tensor.h"

namespace crl::nn {

struct AdamOptions {
  double lr = 3e-4;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

class Adam {
 public:
  explicit Adam(std::vector<Tensor> params, AdamOptions opt = {});

  /// Apply one update from the accumulated gradients.
  void step();
  void zeroGrad();
  void setLearningRate(double lr) { opt_.lr = lr; }
  double learningRate() const { return opt_.lr; }
  const std::vector<Tensor>& parameters() const { return params_; }

 private:
  std::vector<Tensor> params_;
  AdamOptions opt_;
  std::vector<Mat> m_;
  std::vector<Mat> v_;
  long t_ = 0;
};

/// Scale all gradients so their global L2 norm is at most maxNorm.
/// Returns the pre-clip norm.
double clipGradNorm(const std::vector<Tensor>& params, double maxNorm);

}  // namespace crl::nn
