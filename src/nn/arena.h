#pragma once
// Tape arena for the autograd substrate.
//
// The PPO update builds and frees one whole computation graph per minibatch.
// On the heap path every op pays a `make_shared<Node>` (control block + node),
// a fresh value `Mat`, fresh backward deltas, and the matching frees when the
// tape unwinds — the memory-pass overhead that dominates the batched update
// once the kernels themselves are vectorized. `GraphArena` removes all of it:
//
//  * Nodes are placement-new'd into slabs; handles are aliased
//    `shared_ptr<Node>`s that share the slab's control block, so no per-node
//    control-block allocation and no per-node free.
//  * Value/grad/ctx buffers come from a size-bucketed pool of recycled
//    `std::vector<double>` buffers (zero-filled on reuse, so pooled buffers
//    are indistinguishable from freshly constructed `Mat`s — results are
//    bit-identical to the heap path).
//  * `reset()` destroys every node in the slabs, reclaims their buffers into
//    the pool, and rewinds the bump pointer — after the first minibatch the
//    update loop's steady state performs no heap allocation for the tape.
//
// Scope rules (see README "Update-path arena and fused kernels"): a
// thread-local `ArenaScope` routes every recorded op into the arena, exactly
// mirroring how `NoGradGuard` routes ops into inference mode (a `NoGradGuard`
// inside an arena scope wins: value-only nodes are heap-allocated and the
// arena records nothing). Only objects created *outside* the scope —
// parameters, detached `Mat` copies of outputs — may outlive `reset()`;
// tensors built inside the scope dangle after it. Arenas are single-threaded
// by design: one arena per trainer, installed only on the thread running the
// update (per-seed trainers under CRL_SEED_WORKERS each own an independent
// arena).

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "nn/tensor.h"

namespace crl::nn {

class GraphArena {
 public:
  GraphArena() = default;
  ~GraphArena() { reset(); }
  GraphArena(const GraphArena&) = delete;
  GraphArena& operator=(const GraphArena&) = delete;

  /// Placement-new a Node in the current slab and hand out an aliased
  /// shared_ptr (shares the slab's control block — no allocation after the
  /// slab exists). The node is destroyed at the next reset(); handles may
  /// outlive the reset (the slab stays alive) but must not be dereferenced.
  std::shared_ptr<detail::Node> allocateNode();

  /// A rows x cols Mat backed by a pooled buffer when one of the right size
  /// is free (zero-filled, so indistinguishable from a fresh Mat). With
  /// zeroed=false the contents are unspecified — callers must overwrite
  /// every element.
  linalg::Mat acquireMat(std::size_t rows, std::size_t cols, bool zeroed = true);

  /// Return a Mat's buffer to the pool. Only hand back buffers no live
  /// tensor can reach (backward deltas after accumulation, buffers of nodes
  /// being reset) — the pool re-issues them from acquireMat.
  void reclaimMat(linalg::Mat&& m);

  /// Destroy all nodes recorded since the last reset, recycling their
  /// value/grad/ctx buffers into the pool, and rewind the slab bump pointer.
  /// No slab or pool memory is released — the next tape reuses all of it.
  void reset();

  // ---- introspection (tests and bench_arena) ----
  std::size_t liveNodes() const { return used_; }
  std::size_t slabCount() const { return slabs_.size(); }
  std::size_t pooledBuffers() const;
  std::uint64_t poolHits() const { return poolHits_; }
  std::uint64_t poolMisses() const { return poolMisses_; }

 private:
  struct NodeSlab;

  std::vector<std::shared_ptr<NodeSlab>> slabs_;
  std::size_t used_ = 0;  ///< nodes live in slabs [0, used_)
  std::unordered_map<std::size_t, std::vector<std::vector<double>>> pool_;
  std::uint64_t poolHits_ = 0;
  std::uint64_t poolMisses_ = 0;
};

/// Thread-local recording scope: while alive, every op that records a graph
/// node allocates the node and its buffers from `arena` (inference-mode ops
/// under a NoGradGuard are unaffected). Scopes nest; the previous arena is
/// restored on destruction.
class ArenaScope {
 public:
  explicit ArenaScope(GraphArena& arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  GraphArena* prev_;
};

/// The arena installed on the calling thread, or nullptr outside any scope.
GraphArena* activeArena();

/// A zero-filled rows x cols Mat from the calling thread's recording arena
/// (no-op fallback to a fresh Mat outside a scope or in inference mode).
/// For graph-input staging buffers built by layer code (stacked features,
/// tiled masks): either move the Mat into a Tensor — the node reclaims it at
/// reset — or hand it back via reclaimPooledMat when done.
linalg::Mat pooledMat(std::size_t rows, std::size_t cols);
void reclaimPooledMat(linalg::Mat&& m);

}  // namespace crl::nn
