#pragma once
// Reverse-mode automatic differentiation on dense 2-D matrices.
//
// This is the neural-network substrate the policy networks are built on
// (replacing PyTorch in the original work). Tensors are value-semantic
// handles to shared graph nodes; free functions build the computation graph
// and backward() runs reverse accumulation from a scalar root.
//
// The op set is exactly what the GCN / GAT / FCNN policy networks and the
// PPO loss need: matmul, broadcasts, pointwise nonlinearities, row-wise
// (log-)softmax, reductions, concatenation, clipping, elementwise min, and
// per-row gather.

#include <functional>
#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace crl::nn {

using linalg::Mat;

namespace detail {
struct Node {
  Mat value;
  Mat grad;                     ///< allocated lazily on first accumulation
  bool requiresGrad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward;  ///< pushes this->grad into parents
  int visitMark = 0;            ///< scratch for topological sort

  void ensureGrad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols())
      grad = Mat(value.rows(), value.cols());
  }
};
}  // namespace detail

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Mat value, bool requiresGrad = false);
  /// Wrap an existing graph node (used by the op implementations).
  explicit Tensor(std::shared_ptr<detail::Node> node) : node_(std::move(node)) {}

  static Tensor zeros(std::size_t rows, std::size_t cols, bool requiresGrad = false);
  static Tensor scalar(double v);
  /// 1 x n row vector from std::vector.
  static Tensor row(const std::vector<double>& v);
  /// Xavier/Glorot-uniform initialized parameter.
  static Tensor xavier(std::size_t rows, std::size_t cols, util::Rng& rng);

  bool defined() const { return node_ != nullptr; }
  const Mat& value() const { return node_->value; }
  Mat& mutableValue() { return node_->value; }
  const Mat& grad() const { return node_->grad; }
  bool requiresGrad() const { return node_ && node_->requiresGrad; }
  std::size_t rows() const { return node_->value.rows(); }
  std::size_t cols() const { return node_->value.cols(); }
  double item() const;  ///< value of a 1x1 tensor

  void zeroGrad();
  /// Ensure the grad buffer exists (used by the optimizer).
  void ensureGrad() { node_->ensureGrad(); }
  Mat& mutableGrad() { node_->ensureGrad(); return node_->grad; }

  std::shared_ptr<detail::Node> node() const { return node_; }

 private:
  std::shared_ptr<detail::Node> node_;
};

/// Reverse accumulation from a scalar (1x1) root.
void backward(const Tensor& root);

/// Scoped inference mode (thread-local): while a guard is alive, ops compute
/// values only — no parents, no backward closures — so intermediate nodes
/// free as temporaries die and forward passes skip all graph bookkeeping.
/// Used on the rollout hot path, where PPO re-builds the graph at update
/// time anyway. Guards nest.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

/// True while a NoGradGuard is alive on the calling thread.
bool inferenceMode();

// ---- graph-building ops -------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b);
/// Constant (non-differentiable) left operand — e.g. the GCN propagation
/// matrix A* of Eq. (2).
Tensor matmulConstLeft(const Mat& a, const Tensor& b);
/// diag(block, ..., block) * b with `repeat` copies of the constant n x n
/// `block` along the diagonal; b is [repeat*n x m]. Equivalent to
/// matmulConstLeft with the dense block-diagonal matrix, but value and
/// gradient cost O(repeat * n^2 * m) instead of O(repeat^2 * n^2 * m) — the
/// batched-minibatch GCN propagation of the PPO update path.
Tensor matmulBlockDiagConstLeft(const Mat& block, std::size_t repeat, const Tensor& b);
/// Block-paired matmul: a is [blocks*r x k], b is [blocks*k x m]; block g of
/// the [blocks*r x m] result is a_g * b_g. This is the attention-mixing step
/// of batched GAT (alpha_g [n x n] times the transformed features hw_g),
/// where both operands carry gradients; backward routes each block's
/// gradient to its own operand blocks.
Tensor matmulBlocks(const Tensor& a, const Tensor& b, std::size_t blocks);
Tensor add(const Tensor& a, const Tensor& b);
/// a (n x m) + row (1 x m), broadcast over rows (bias addition).
Tensor addRowBroadcast(const Tensor& a, const Tensor& row);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  ///< elementwise
Tensor scale(const Tensor& a, double s);
Tensor addScalar(const Tensor& a, double s);
/// Add a constant matrix (attention mask) — gradient passes through.
Tensor addConst(const Tensor& a, const Mat& c);

Tensor tanhT(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor leakyRelu(const Tensor& a, double slope = 0.2);
Tensor sigmoid(const Tensor& a);
Tensor expT(const Tensor& a);
/// Natural log of max(a, eps) for numerical safety.
Tensor logT(const Tensor& a, double eps = 1e-12);
/// Elementwise min (subgradient routes to the smaller operand).
Tensor minT(const Tensor& a, const Tensor& b);
/// Clip values into [lo, hi]; zero gradient outside the interval.
Tensor clampT(const Tensor& a, double lo, double hi);

Tensor softmaxRows(const Tensor& a);
Tensor logSoftmaxRows(const Tensor& a);

Tensor sum(const Tensor& a);   ///< 1x1
Tensor mean(const Tensor& a);  ///< 1x1
/// Column-wise mean over rows -> 1 x m (graph mean-pool readout).
Tensor meanRows(const Tensor& a);
/// Row-wise sum -> n x 1 (per-observation log-prob totals in the batched
/// PPO loss).
Tensor sumRows(const Tensor& a);
/// Mean over each contiguous group of rows: a is [groups*g x m] and the
/// result [groups x m] averages rows [k*g, (k+1)*g) into row k. This is the
/// batched per-graph mean-pool readout; the backward pass scatters each
/// group's gradient back to its rows (grad / g).
Tensor meanPoolGroups(const Tensor& a, std::size_t groups);
Tensor transpose(const Tensor& a);
/// Horizontal concatenation [a | b].
Tensor concatCols(const Tensor& a, const Tensor& b);
/// Vertical concatenation [a ; b] (row-stacking minibatch outputs).
Tensor concatRows(const Tensor& a, const Tensor& b);
/// N-way vertical concatenation in one graph node — linear in the total row
/// count, where a fold over concatRows would copy the growing prefix again
/// for every operand (quadratic in the batch).
Tensor concatRowsAll(const std::vector<Tensor>& parts);
/// Select a[i, idx[i]] for every row -> n x 1 (categorical log-prob gather).
Tensor gatherPerRow(const Tensor& a, const std::vector<int>& idx);
/// Extract a contiguous block of rows [begin, begin+count).
Tensor sliceRows(const Tensor& a, std::size_t begin, std::size_t count);
/// Repeat each row `times` times consecutively: [n x m] -> [n*times x m]
/// with rows [r*times, (r+1)*times) all equal to row r. Backward sums each
/// output group's gradient back into its source row (batched GAT uses this
/// to broadcast per-graph attention destinations).
Tensor repeatRows(const Tensor& a, std::size_t times);
/// Row-major reshape preserving the element count (e.g. 1 x 3M -> M x 3).
Tensor reshape(const Tensor& a, std::size_t rows, std::size_t cols);

}  // namespace crl::nn
