#pragma once
// Reverse-mode automatic differentiation on dense 2-D matrices.
//
// This is the neural-network substrate the policy networks are built on
// (replacing PyTorch in the original work). Tensors are value-semantic
// handles to shared graph nodes; free functions build the computation graph
// and backward() runs reverse accumulation from a scalar root.
//
// The op set is exactly what the GCN / GAT / FCNN policy networks and the
// PPO loss need: matmul, broadcasts, pointwise nonlinearities, row-wise
// (log-)softmax, reductions, concatenation, clipping, elementwise min, and
// per-row gather.

#include <functional>
#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace crl::nn {

using linalg::Mat;

namespace detail {
struct Node {
  Mat value;
  Mat grad;                     ///< allocated lazily on first accumulation
  bool requiresGrad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward;  ///< pushes this->grad into parents
  int visitMark = 0;            ///< scratch for topological sort

  void ensureGrad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols())
      grad = Mat(value.rows(), value.cols());
  }
};
}  // namespace detail

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Mat value, bool requiresGrad = false);
  /// Wrap an existing graph node (used by the op implementations).
  explicit Tensor(std::shared_ptr<detail::Node> node) : node_(std::move(node)) {}

  static Tensor zeros(std::size_t rows, std::size_t cols, bool requiresGrad = false);
  static Tensor scalar(double v);
  /// 1 x n row vector from std::vector.
  static Tensor row(const std::vector<double>& v);
  /// Xavier/Glorot-uniform initialized parameter.
  static Tensor xavier(std::size_t rows, std::size_t cols, util::Rng& rng);

  bool defined() const { return node_ != nullptr; }
  const Mat& value() const { return node_->value; }
  Mat& mutableValue() { return node_->value; }
  const Mat& grad() const { return node_->grad; }
  bool requiresGrad() const { return node_ && node_->requiresGrad; }
  std::size_t rows() const { return node_->value.rows(); }
  std::size_t cols() const { return node_->value.cols(); }
  double item() const;  ///< value of a 1x1 tensor

  void zeroGrad();
  /// Ensure the grad buffer exists (used by the optimizer).
  void ensureGrad() { node_->ensureGrad(); }
  Mat& mutableGrad() { node_->ensureGrad(); return node_->grad; }

  std::shared_ptr<detail::Node> node() const { return node_; }

 private:
  std::shared_ptr<detail::Node> node_;
};

/// Reverse accumulation from a scalar (1x1) root.
void backward(const Tensor& root);

/// Scoped inference mode (thread-local): while a guard is alive, ops compute
/// values only — no parents, no backward closures — so intermediate nodes
/// free as temporaries die and forward passes skip all graph bookkeeping.
/// Used on the rollout hot path, where PPO re-builds the graph at update
/// time anyway. Guards nest.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

/// True while a NoGradGuard is alive on the calling thread.
bool inferenceMode();

// ---- graph-building ops -------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b);
/// Constant (non-differentiable) left operand — e.g. the GCN propagation
/// matrix A* of Eq. (2).
Tensor matmulConstLeft(const Mat& a, const Tensor& b);
Tensor add(const Tensor& a, const Tensor& b);
/// a (n x m) + row (1 x m), broadcast over rows (bias addition).
Tensor addRowBroadcast(const Tensor& a, const Tensor& row);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  ///< elementwise
Tensor scale(const Tensor& a, double s);
Tensor addScalar(const Tensor& a, double s);
/// Add a constant matrix (attention mask) — gradient passes through.
Tensor addConst(const Tensor& a, const Mat& c);

Tensor tanhT(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor leakyRelu(const Tensor& a, double slope = 0.2);
Tensor sigmoid(const Tensor& a);
Tensor expT(const Tensor& a);
/// Natural log of max(a, eps) for numerical safety.
Tensor logT(const Tensor& a, double eps = 1e-12);
/// Elementwise min (subgradient routes to the smaller operand).
Tensor minT(const Tensor& a, const Tensor& b);
/// Clip values into [lo, hi]; zero gradient outside the interval.
Tensor clampT(const Tensor& a, double lo, double hi);

Tensor softmaxRows(const Tensor& a);
Tensor logSoftmaxRows(const Tensor& a);

Tensor sum(const Tensor& a);   ///< 1x1
Tensor mean(const Tensor& a);  ///< 1x1
/// Column-wise mean over rows -> 1 x m (graph mean-pool readout).
Tensor meanRows(const Tensor& a);
Tensor transpose(const Tensor& a);
/// Horizontal concatenation [a | b].
Tensor concatCols(const Tensor& a, const Tensor& b);
/// Select a[i, idx[i]] for every row -> n x 1 (categorical log-prob gather).
Tensor gatherPerRow(const Tensor& a, const std::vector<int>& idx);
/// Extract a contiguous block of rows [begin, begin+count).
Tensor sliceRows(const Tensor& a, std::size_t begin, std::size_t count);
/// Row-major reshape preserving the element count (e.g. 1 x 3M -> M x 3).
Tensor reshape(const Tensor& a, std::size_t rows, std::size_t cols);

}  // namespace crl::nn
