#pragma once
// Reverse-mode automatic differentiation on dense 2-D matrices.
//
// This is the neural-network substrate the policy networks are built on
// (replacing PyTorch in the original work). Tensors are value-semantic
// handles to shared graph nodes; free functions build the computation graph
// and backward() runs reverse accumulation from a scalar root.
//
// The op set is exactly what the GCN / GAT / FCNN policy networks and the
// PPO loss need: matmul, broadcasts, pointwise nonlinearities, row-wise
// (log-)softmax, reductions, concatenation, clipping, elementwise min, and
// per-row gather.

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace crl::nn {

using linalg::Mat;

namespace detail {
struct Node;

/// Move-only callable holding a backward closure. std::function's inline
/// buffer is 16 bytes on libstdc++ — virtually every backward closure
/// captures at least one shared_ptr plus extras and would heap-allocate per
/// recorded op. This wrapper's 120-byte inline buffer fits every closure the
/// op set emits, so recording a node performs no closure allocation.
class BackwardFn {
 public:
  BackwardFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, BackwardFn>>>
  BackwardFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      new (buf_) Fn(std::forward<F>(f));
    } else {
      heap_ = new Fn(std::forward<F>(f));
    }
    vt_ = &kVTable<Fn, (sizeof(Fn) <= kInlineSize &&
                        alignof(Fn) <= alignof(std::max_align_t))>;
  }

  BackwardFn(BackwardFn&& o) noexcept { moveFrom(std::move(o)); }
  BackwardFn& operator=(BackwardFn&& o) noexcept {
    if (this != &o) {
      reset();
      moveFrom(std::move(o));
    }
    return *this;
  }
  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;
  ~BackwardFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }
  void operator()(Node& n) { vt_->invoke(target(), n); }

 private:
  static constexpr std::size_t kInlineSize = 120;

  struct VTable {
    void (*invoke)(void* self, Node& n);
    void (*destroy)(void* self);
    void (*relocate)(void* from, unsigned char* toBuf);
    bool inlineStored;
  };

  template <typename Fn, bool Inline>
  static constexpr VTable kVTable{
      [](void* self, Node& n) { (*static_cast<Fn*>(self))(n); },
      [](void* self) {
        if constexpr (Inline)
          static_cast<Fn*>(self)->~Fn();
        else
          delete static_cast<Fn*>(self);
      },
      [](void* from, unsigned char* toBuf) {
        if constexpr (Inline) {
          Fn* src = static_cast<Fn*>(from);
          new (toBuf) Fn(std::move(*src));
          src->~Fn();
        } else {
          (void)from;
          (void)toBuf;
        }
      },
      Inline};

  void* target() { return vt_->inlineStored ? static_cast<void*>(buf_) : heap_; }
  void reset() {
    if (vt_) {
      vt_->destroy(target());
      vt_ = nullptr;
      heap_ = nullptr;
    }
  }
  void moveFrom(BackwardFn&& o) {
    vt_ = o.vt_;
    if (vt_) {
      if (vt_->inlineStored)
        vt_->relocate(o.buf_, buf_);
      else
        heap_ = o.heap_;
    }
    o.vt_ = nullptr;
    o.heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  void* heap_ = nullptr;
  const VTable* vt_ = nullptr;
};

/// Parent edges with inline storage for the common arity (every op except
/// concatRowsAll has <= 4 parents), so recording a node performs no
/// parent-vector allocation.
class ParentList {
 public:
  ParentList() = default;
  ParentList(std::initializer_list<std::shared_ptr<Node>> init) {
    if (init.size() <= kInline) {
      for (const auto& p : init) inline_[size_++] = p;
    } else {
      overflow_.assign(init.begin(), init.end());
      size_ = overflow_.size();
    }
  }
  ParentList(std::vector<std::shared_ptr<Node>>&& v) {  // NOLINT
    if (v.size() <= kInline) {
      for (auto& p : v) inline_[size_++] = std::move(p);
    } else {
      overflow_ = std::move(v);
      size_ = overflow_.size();
    }
  }

  std::size_t size() const { return size_; }
  const std::shared_ptr<Node>* begin() const {
    return size_ <= kInline ? inline_ : overflow_.data();
  }
  const std::shared_ptr<Node>* end() const { return begin() + size_; }
  const std::shared_ptr<Node>& operator[](std::size_t i) const { return begin()[i]; }

 private:
  static constexpr std::size_t kInline = 4;
  std::shared_ptr<Node> inline_[kInline];
  std::vector<std::shared_ptr<Node>> overflow_;
  std::size_t size_ = 0;
};

struct Node {
  Mat value;
  Mat grad;                     ///< allocated lazily on first accumulation
  Mat ctx;                      ///< fused-op saved intermediate (e.g. GCN agg,
                                ///< GAT attention coefficients); pooled like
                                ///< value/grad when the node lives in an arena
  bool requiresGrad = false;
  ParentList parents;
  BackwardFn backward;          ///< pushes this->grad into parents
  int visitMark = 0;            ///< scratch for topological sort

  void ensureGrad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols())
      grad = Mat(value.rows(), value.cols());
  }
};
}  // namespace detail

/// Pointwise nonlinearity selector, shared by the layer modules and the
/// fused tape ops below (which is why it lives here rather than module.h).
enum class Activation { None, Tanh, Relu, LeakyRelu, Sigmoid };

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Mat value, bool requiresGrad = false);
  /// Wrap an existing graph node (used by the op implementations).
  explicit Tensor(std::shared_ptr<detail::Node> node) : node_(std::move(node)) {}

  static Tensor zeros(std::size_t rows, std::size_t cols, bool requiresGrad = false);
  static Tensor scalar(double v);
  /// 1 x n row vector from std::vector.
  static Tensor row(const std::vector<double>& v);
  /// Xavier/Glorot-uniform initialized parameter.
  static Tensor xavier(std::size_t rows, std::size_t cols, util::Rng& rng);

  bool defined() const { return node_ != nullptr; }
  // Every accessor that dereferences the node throws logic_error on a
  // default-constructed (undefined) Tensor instead of crashing; the branch
  // is perfectly predicted on the hot path.
  const Mat& value() const { return checked()->value; }
  Mat& mutableValue() { return checked()->value; }
  const Mat& grad() const { return checked()->grad; }
  bool requiresGrad() const { return node_ && node_->requiresGrad; }
  std::size_t rows() const { return checked()->value.rows(); }
  std::size_t cols() const { return checked()->value.cols(); }
  double item() const;  ///< value of a 1x1 tensor

  void zeroGrad();
  /// Ensure the grad buffer exists (used by the optimizer).
  void ensureGrad() { checked()->ensureGrad(); }
  Mat& mutableGrad() {
    detail::Node* n = checked();
    n->ensureGrad();
    return n->grad;
  }

  std::shared_ptr<detail::Node> node() const { return node_; }

 private:
  detail::Node* checked() const {
    if (!node_) throw std::logic_error("Tensor: undefined tensor");
    return node_.get();
  }

  std::shared_ptr<detail::Node> node_;
};

/// Reverse accumulation from a scalar (1x1) root.
void backward(const Tensor& root);

/// Scoped inference mode (thread-local): while a guard is alive, ops compute
/// values only — no parents, no backward closures — so intermediate nodes
/// free as temporaries die and forward passes skip all graph bookkeeping.
/// Used on the rollout hot path, where PPO re-builds the graph at update
/// time anyway. Guards nest.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

/// True while a NoGradGuard is alive on the calling thread.
bool inferenceMode();

// ---- graph-building ops -------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b);
/// Constant (non-differentiable) left operand — e.g. the GCN propagation
/// matrix A* of Eq. (2).
Tensor matmulConstLeft(const Mat& a, const Tensor& b);
/// diag(block, ..., block) * b with `repeat` copies of the constant n x n
/// `block` along the diagonal; b is [repeat*n x m]. Equivalent to
/// matmulConstLeft with the dense block-diagonal matrix, but value and
/// gradient cost O(repeat * n^2 * m) instead of O(repeat^2 * n^2 * m) — the
/// batched-minibatch GCN propagation of the PPO update path.
Tensor matmulBlockDiagConstLeft(const Mat& block, std::size_t repeat, const Tensor& b);
/// Block-paired matmul: a is [blocks*r x k], b is [blocks*k x m]; block g of
/// the [blocks*r x m] result is a_g * b_g. This is the attention-mixing step
/// of batched GAT (alpha_g [n x n] times the transformed features hw_g),
/// where both operands carry gradients; backward routes each block's
/// gradient to its own operand blocks.
Tensor matmulBlocks(const Tensor& a, const Tensor& b, std::size_t blocks);
Tensor add(const Tensor& a, const Tensor& b);
/// a (n x m) + row (1 x m), broadcast over rows (bias addition).
Tensor addRowBroadcast(const Tensor& a, const Tensor& row);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  ///< elementwise
Tensor scale(const Tensor& a, double s);
Tensor addScalar(const Tensor& a, double s);
/// Add a constant matrix (attention mask) — gradient passes through.
Tensor addConst(const Tensor& a, const Mat& c);

Tensor tanhT(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor leakyRelu(const Tensor& a, double slope = 0.2);
Tensor sigmoid(const Tensor& a);
Tensor expT(const Tensor& a);
/// Natural log of max(a, eps) for numerical safety.
Tensor logT(const Tensor& a, double eps = 1e-12);
/// Elementwise min (subgradient routes to the smaller operand).
Tensor minT(const Tensor& a, const Tensor& b);
/// Clip values into [lo, hi]; zero gradient outside the interval.
Tensor clampT(const Tensor& a, double lo, double hi);

Tensor softmaxRows(const Tensor& a);
Tensor logSoftmaxRows(const Tensor& a);

Tensor sum(const Tensor& a);   ///< 1x1
Tensor mean(const Tensor& a);  ///< 1x1
/// Column-wise mean over rows -> 1 x m (graph mean-pool readout).
Tensor meanRows(const Tensor& a);
/// Row-wise sum -> n x 1 (per-observation log-prob totals in the batched
/// PPO loss).
Tensor sumRows(const Tensor& a);
/// Mean over each contiguous group of rows: a is [groups*g x m] and the
/// result [groups x m] averages rows [k*g, (k+1)*g) into row k. This is the
/// batched per-graph mean-pool readout; the backward pass scatters each
/// group's gradient back to its rows (grad / g).
Tensor meanPoolGroups(const Tensor& a, std::size_t groups);
Tensor transpose(const Tensor& a);
/// Horizontal concatenation [a | b].
Tensor concatCols(const Tensor& a, const Tensor& b);
/// Vertical concatenation [a ; b] (row-stacking minibatch outputs).
Tensor concatRows(const Tensor& a, const Tensor& b);
/// N-way vertical concatenation in one graph node — linear in the total row
/// count, where a fold over concatRows would copy the growing prefix again
/// for every operand (quadratic in the batch).
Tensor concatRowsAll(const std::vector<Tensor>& parts);
/// Select a[i, idx[i]] for every row -> n x 1 (categorical log-prob gather).
Tensor gatherPerRow(const Tensor& a, const std::vector<int>& idx);
/// Extract a contiguous block of rows [begin, begin+count).
Tensor sliceRows(const Tensor& a, std::size_t begin, std::size_t count);
/// Repeat each row `times` times consecutively: [n x m] -> [n*times x m]
/// with rows [r*times, (r+1)*times) all equal to row r. Backward sums each
/// output group's gradient back into its source row (batched GAT uses this
/// to broadcast per-graph attention destinations).
Tensor repeatRows(const Tensor& a, std::size_t times);
/// Row-major reshape preserving the element count (e.g. 1 x 3M -> M x 3).
Tensor reshape(const Tensor& a, std::size_t rows, std::size_t cols);

// ---- fused layer kernels ------------------------------------------------
//
// Each fuses a hot per-layer op chain into ONE tape node, eliminating the
// intermediate nodes' allocations and full-matrix copy passes. The fused
// value and backward computations run the identical kernels in the identical
// summation order as the unfused chains, so results (and the sequential
// golden curves) are bit-for-bit unchanged — enforced by
// tests/nn/test_fused.cpp (label: parity).

/// act(x W + b): matmul + row-broadcast bias + pointwise activation (the
/// FCNN/encoder MLP layer) in one node instead of three.
Tensor fusedLinear(const Tensor& x, const Tensor& w, const Tensor& b,
                   Activation act);

/// act(diag(block, ..., block) h W + b): the whole GCN layer — block-diagonal
/// propagation, weight matmul, bias, activation — in one node instead of
/// four. `repeat` = 1 is the single-graph forward (block = A*), > 1 the
/// batched forward over stacked graphs.
///
/// LIFETIME: unlike matmulConstLeft / matmulBlockDiagConstLeft (which copy
/// their constant operand into the closure), the backward captures `block`
/// by reference — it must outlive every backward() over the recorded graph.
/// The intended operand is the environment's propagation matrix, owned by
/// the policy for its whole life; do not pass a temporary.
Tensor fusedGcnLayer(const Mat& block, std::size_t repeat, const Tensor& h,
                     const Tensor& w, const Tensor& b, Activation act);

/// softmaxRows(e) block-multiplied with hw: the GAT attention-weighted
/// aggregation (row-softmax + matmulBlocks) in one node instead of two.
/// `blocks` = 1 is the single-graph head, > 1 the batched block-local head.
Tensor fusedSoftmaxMatmulBlocks(const Tensor& e, const Tensor& hw,
                                std::size_t blocks);

/// The GAT attention-logit chain — src/dst projections (hw aSrc, hw aDst),
/// the per-block src_i + dst_j outer sum, leakyRelu, and the additive mask —
/// in one node instead of seven. `mask` is the [blocks*n x n] (tiled)
/// attention mask; `blocks` = 1 is the single-graph head. Values and
/// gradients are bit-identical to the unfused chain (the backward
/// accumulates hw's src-side before its dst-side, matching the unfused
/// graph's reverse-topological order).
Tensor fusedGatLogits(const Tensor& hw, const Tensor& aSrc, const Tensor& aDst,
                      const Mat& mask, std::size_t blocks, double slope = 0.2);

/// Everything after the packed projection of a multi-head GAT layer — per
/// head: the attention-logit chain (fusedGatLogits), the row-softmax, and
/// the block-local mixing — then the activation over the concatenated heads,
/// all in ONE tape node. `hwAll` is h * wPacked ([blocks*n x heads*d] with
/// head k on column block [k*d, (k+1)*d)); aSrcPacked/aDstPacked stack the
/// per-head projection vectors into [heads*d x 1]. Forward values are
/// bit-identical to the legacy per-head op chain (each head's kernels run in
/// the legacy order on strided views of the packed buffers; only the
/// CRL_SIMD_MATH knob changes the exp). The backward accumulates every
/// head's hwAll gradient into one buffer whose per-head column blocks match
/// the legacy per-head deltas bit-for-bit; downstream of the shared packed
/// matmul, dW blocks stay bitwise legacy while dh sums head contributions in
/// packed-column order (a rounding-level reordering; too small to flip any
/// sampled action at golden-curve length, so the golden arrays stood).
Tensor fusedGatMultiHead(const Tensor& hwAll, const Tensor& aSrcPacked,
                         const Tensor& aDstPacked, const Mat& mask,
                         std::size_t blocks, std::size_t heads,
                         double slope, Activation act);

/// N-way horizontal concatenation in one graph node (multi-head outputs) —
/// a fold over concatCols re-copies the growing prefix per operand; this
/// copies each part once. Pure data movement, so bit-identity is trivial.
Tensor concatColsAll(const std::vector<Tensor>& parts);

}  // namespace crl::nn
