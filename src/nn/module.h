#pragma once
// Network building blocks: Linear layers and multi-layer perceptrons.

#include <vector>

#include "nn/tensor.h"

namespace crl::nn {

// Activation lives in tensor.h (the fused tape ops take it); module.h keeps
// re-exporting it for its historical users.

Tensor activate(const Tensor& x, Activation act);

/// Fully connected layer y = act(x W + b) with Xavier-initialized weights,
/// emitted as one fused tape node (nn::fusedLinear) — bit-identical to the
/// unfused matmul + bias + activation chain.
class Linear {
 public:
  Linear(std::size_t in, std::size_t out, util::Rng& rng);

  Tensor forward(const Tensor& x, Activation act = Activation::None) const;
  std::vector<Tensor> parameters() const { return {w_, b_}; }
  std::size_t inFeatures() const { return w_.rows(); }
  std::size_t outFeatures() const { return w_.cols(); }

 private:
  Tensor w_;
  Tensor b_;
};

/// MLP with a shared hidden activation and optional output activation.
class Mlp {
 public:
  /// dims = {in, h1, ..., out}.
  Mlp(const std::vector<std::size_t>& dims, util::Rng& rng,
      Activation hidden = Activation::Tanh, Activation output = Activation::None);

  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> parameters() const;
  std::size_t layerCount() const { return layers_.size(); }

 private:
  std::vector<Linear> layers_;
  Activation hidden_;
  Activation output_;
};

/// Total scalar parameter count of a parameter list.
std::size_t parameterCount(const std::vector<Tensor>& params);

}  // namespace crl::nn
