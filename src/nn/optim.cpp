#include "nn/optim.h"

#include <cmath>

namespace crl::nn {

Adam::Adam(std::vector<Tensor> params, AdamOptions opt)
    : params_(std::move(params)), opt_(opt) {
  for (auto& p : params_) {
    p.ensureGrad();
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(opt_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opt_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i].mutableValue();
    const auto& grad = params_[i].grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t k = 0; k < value.raw().size(); ++k) {
      const double g = grad.raw()[k];
      m.raw()[k] = opt_.beta1 * m.raw()[k] + (1.0 - opt_.beta1) * g;
      v.raw()[k] = opt_.beta2 * v.raw()[k] + (1.0 - opt_.beta2) * g * g;
      const double mHat = m.raw()[k] / bc1;
      const double vHat = v.raw()[k] / bc2;
      value.raw()[k] -= opt_.lr * mHat / (std::sqrt(vHat) + opt_.eps);
    }
  }
}

void Adam::zeroGrad() {
  for (auto& p : params_) p.zeroGrad();
}

double clipGradNorm(const std::vector<Tensor>& params, double maxNorm) {
  double sq = 0.0;
  for (const auto& p : params)
    for (double g : p.grad().raw()) sq += g * g;
  const double norm = std::sqrt(sq);
  if (norm > maxNorm && norm > 0.0) {
    const double scaleBy = maxNorm / norm;
    for (const auto& p : params) {
      // Grad buffers are mutable through the shared node.
      auto& grad = const_cast<Tensor&>(p).mutableGrad();
      grad *= scaleBy;
    }
  }
  return norm;
}

}  // namespace crl::nn
