#include "nn/optim.h"

#include <cmath>

#include "linalg/simd_kernels.h"

namespace crl::nn {

Adam::Adam(std::vector<Tensor> params, AdamOptions opt)
    : params_(std::move(params)), opt_(opt) {
  for (auto& p : params_) {
    p.ensureGrad();
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(opt_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opt_.beta2, static_cast<double>(t_));
  // Per-element update in the SIMD-dispatched core (vectorized sqrt/divide
  // round identically to the scalar loop — the optimizer runs once per
  // minibatch over every parameter, a fixed cost worth vectorizing).
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i].mutableValue();
    linalg::simd::adamStepKernel(value.data(), m_[i].data(), v_[i].data(),
                                 params_[i].grad().data(), value.raw().size(),
                                 opt_.beta1, opt_.beta2, opt_.lr, opt_.eps, bc1,
                                 bc2);
  }
}

void Adam::zeroGrad() {
  for (auto& p : params_) p.zeroGrad();
}

bool Adam::restoreMoments(const std::vector<Mat>& m, const std::vector<Mat>& v,
                          long t, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (m.size() != params_.size() || v.size() != params_.size())
    return fail("Adam moment count " + std::to_string(m.size()) + "/" +
                std::to_string(v.size()) + " does not match " +
                std::to_string(params_.size()) + " parameters");
  if (t < 0) return fail("Adam step counter is negative");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& shape = params_[i].value();
    if (m[i].rows() != shape.rows() || m[i].cols() != shape.cols() ||
        v[i].rows() != shape.rows() || v[i].cols() != shape.cols())
      return fail("Adam moment " + std::to_string(i) + " shape mismatch");
  }
  m_ = m;
  v_ = v;
  t_ = t;
  return true;
}

double clipGradNorm(const std::vector<Tensor>& params, double maxNorm) {
  double sq = 0.0;
  for (const auto& p : params)
    for (double g : p.grad().raw()) sq += g * g;
  const double norm = std::sqrt(sq);
  if (norm > maxNorm && norm > 0.0) {
    const double scaleBy = maxNorm / norm;
    for (const auto& p : params) {
      // Grad buffers are mutable through the shared node.
      auto& grad = const_cast<Tensor&>(p).mutableGrad();
      grad *= scaleBy;
    }
  }
  return norm;
}

}  // namespace crl::nn
