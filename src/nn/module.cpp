#include "nn/module.h"

#include <stdexcept>

namespace crl::nn {

Tensor activate(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::None: return x;
    case Activation::Tanh: return tanhT(x);
    case Activation::Relu: return relu(x);
    case Activation::LeakyRelu: return leakyRelu(x);
    case Activation::Sigmoid: return sigmoid(x);
  }
  throw std::logic_error("activate: unknown activation");
}

Linear::Linear(std::size_t in, std::size_t out, util::Rng& rng)
    : w_(Tensor::xavier(in, out, rng)), b_(Tensor::zeros(1, out, /*requiresGrad=*/true)) {}

Tensor Linear::forward(const Tensor& x, Activation act) const {
  return fusedLinear(x, w_, b_, act);
}

Mlp::Mlp(const std::vector<std::size_t>& dims, util::Rng& rng, Activation hidden,
         Activation output)
    : hidden_(hidden), output_(output) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need at least in/out dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i)
    layers_.emplace_back(dims[i], dims[i + 1], rng);
}

Tensor Mlp::forward(const Tensor& x) const {
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i)
    h = layers_[i].forward(h, i + 1 < layers_.size() ? hidden_ : output_);
  return h;
}

std::vector<Tensor> Mlp::parameters() const {
  std::vector<Tensor> out;
  for (const auto& l : layers_)
    for (const auto& p : l.parameters()) out.push_back(p);
  return out;
}

std::size_t parameterCount(const std::vector<Tensor>& params) {
  std::size_t n = 0;
  for (const auto& p : params) n += p.value().size();
  return n;
}

}  // namespace crl::nn
