#include "nn/serialize.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/failpoint.h"

#if defined(__unix__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace crl::nn {

namespace {
constexpr std::uint64_t kMagic = 0x43524C504152414DULL;       // "CRLPARAM"
constexpr std::uint64_t kTrainMagic = 0x43524C54524E5354ULL;  // "CRLTRNST"

void setError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

#if defined(__unix__)
/// Best-effort fsync of a path (file or directory). Checkpoint durability is
/// layered: the rename gives atomicity on its own; the fsyncs additionally
/// push the bytes to stable storage before the rename becomes visible.
void fsyncPath(const char* path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path, flags);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
#endif
}  // namespace

void atomicWriteFile(const std::string& path, std::string_view bytes) {
  namespace fs = std::filesystem;
  const fs::path target(path);

  // Unique within the process (counter) and across processes (pid), so
  // concurrent campaign jobs checkpointing into one directory never share a
  // temp file. A stale .tmp from a SIGKILLed writer is inert: it is never
  // renamed, and the next successful write of the same artifact ignores it.
  static std::atomic<std::uint64_t> seq{0};
  fs::path tmp = target;
#if defined(__unix__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  tmp += ".tmp." + std::to_string(pid) + "." + std::to_string(seq.fetch_add(1));

  // Chaos sites (disarmed in production: one relaxed load each). Each one
  // simulates a distinct real-world I/O failure at the exact stage it occurs;
  // the atomicity contract — `path` holds the previous artifact or the new
  // one, never a torn hybrid — must hold under every single one of them
  // (tests/nn/test_serialize.cpp, the failpoint suite).
  if (auto h = util::failpoint::check("io.temp"); h && h->action == "torn") {
    // A writer killed mid-write: half the payload sits in a stale temp file
    // that nothing ever renames. The temp must be inert for all readers.
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    out.flush();
    throw std::runtime_error("atomicWriteFile: writer died mid-write to " +
                             tmp.string() + " (injected)");
  }
  if (auto h = util::failpoint::check("io.write");
      h && (h->action == "shortwrite" || h->action == "enospc")) {
    // ENOSPC during write(): some bytes land, the stream error is noticed,
    // the temp is cleaned up — exactly the real short-write path below.
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    }
    std::error_code rmEc;
    fs::remove(tmp, rmEc);
    throw std::runtime_error("atomicWriteFile: short write to " + tmp.string() +
                             " (injected ENOSPC)");
  }

  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("atomicWriteFile: cannot open " + tmp.string());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      throw std::runtime_error("atomicWriteFile: short write to " + tmp.string());
    }
  }

  if (auto h = util::failpoint::check("io.fsync"); h && h->action == "fail") {
    // fsync() reported EIO/ENOSPC: the bytes may not be durable, so the
    // write must not become visible — drop the temp and fail the save.
    std::error_code rmEc;
    fs::remove(tmp, rmEc);
    throw std::runtime_error("atomicWriteFile: fsync of " + tmp.string() +
                             " failed (injected)");
  }
#if defined(__unix__)
  fsyncPath(tmp.c_str(), /*directory=*/false);
#endif

  if (auto h = util::failpoint::check("io.rename"); h && h->action == "enospc") {
    std::error_code rmEc;
    fs::remove(tmp, rmEc);
    throw std::runtime_error("atomicWriteFile: rename to " + target.string() +
                             " failed: No space left on device (injected)");
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    std::error_code rmEc;
    fs::remove(tmp, rmEc);
    throw std::runtime_error("atomicWriteFile: rename to " + target.string() +
                             " failed: " + ec.message());
  }

#if defined(__unix__)
  const fs::path dir = target.parent_path();
  fsyncPath(dir.empty() ? "." : dir.c_str(), /*directory=*/true);
#endif
}

bool readFile(const std::string& path, std::string& bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  bytes = std::move(buf).str();
  return true;
}

void saveParameters(const std::string& path, const std::vector<Tensor>& params) {
  ByteWriter w;
  w.u64(kMagic);
  w.u64(params.size());
  for (const auto& p : params) w.mat(p.value());
  atomicWriteFile(path, w.buffer());
}

LoadResult loadParametersDetailed(const std::string& path,
                                  std::vector<Tensor>& params,
                                  std::string* error,
                                  const ParamAdapter& adapter) {
  std::string bytes;
  if (!readFile(path, bytes)) {
    setError(error, "no file at " + path);
    return LoadResult::Missing;
  }
  ByteReader r(bytes);
  std::uint64_t magic = 0, count = 0;
  if (!r.u64(magic) || magic != kMagic) {
    setError(error, path + ": not a CRL parameter artifact (bad magic)");
    return LoadResult::Invalid;
  }
  if (!r.u64(count)) {
    setError(error, path + ": truncated header");
    return LoadResult::Invalid;
  }
  if (count != params.size() && !adapter) {
    setError(error, path + ": holds " + std::to_string(count) +
                        " tensors, model expects " + std::to_string(params.size()));
    return LoadResult::Invalid;
  }
  if (count > r.remaining() / 16) {  // each tensor record is >= 16 bytes
    setError(error, path + ": tensor count " + std::to_string(count) +
                        " exceeds the file size");
    return LoadResult::Invalid;
  }

  // Stage into temporaries so a short read leaves params untouched.
  std::vector<linalg::Mat> staged;
  staged.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    linalg::Mat m;
    if (!r.mat(m)) {
      setError(error, path + ": truncated at tensor " + std::to_string(i));
      return LoadResult::Invalid;
    }
    staged.push_back(std::move(m));
  }
  if (count != params.size()) {
    // The caller supplied a layout-migration adapter (e.g. repacking the
    // retired per-head GAT layout); let it rewrite the staged mats, then
    // validate the result like any other artifact.
    if (!adapter(staged) || staged.size() != params.size()) {
      setError(error, path + ": holds " + std::to_string(count) +
                          " tensors, model expects " +
                          std::to_string(params.size()) +
                          " (and no legacy-layout migration applies)");
      return LoadResult::Invalid;
    }
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& expect = params[i].value();
    const auto& m = staged[i];
    if (m.rows() != expect.rows() || m.cols() != expect.cols()) {
      setError(error, path + ": tensor " + std::to_string(i) + " is " +
                          std::to_string(m.rows()) + "x" + std::to_string(m.cols()) +
                          ", model expects " + std::to_string(expect.rows()) + "x" +
                          std::to_string(expect.cols()));
      return LoadResult::Invalid;
    }
  }
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i].mutableValue() = std::move(staged[i]);
  return LoadResult::Ok;
}

// ---- TrainState -----------------------------------------------------------

void TrainState::setRng(const std::string& name, std::string state) {
  for (auto& kv : rngs)
    if (kv.first == name) {
      kv.second = std::move(state);
      return;
    }
  rngs.emplace_back(name, std::move(state));
}

const std::string* TrainState::rng(const std::string& name) const {
  for (const auto& kv : rngs)
    if (kv.first == name) return &kv.second;
  return nullptr;
}

void TrainState::setCounter(const std::string& name, std::int64_t v) {
  for (auto& kv : counters)
    if (kv.first == name) {
      kv.second = v;
      return;
    }
  counters.emplace_back(name, v);
}

bool TrainState::counter(const std::string& name, std::int64_t& v) const {
  for (const auto& kv : counters)
    if (kv.first == name) {
      v = kv.second;
      return true;
    }
  return false;
}

void TrainState::setBlob(const std::string& name, std::string bytes) {
  for (auto& kv : blobs)
    if (kv.first == name) {
      kv.second = std::move(bytes);
      return;
    }
  blobs.emplace_back(name, std::move(bytes));
}

const std::string* TrainState::blob(const std::string& name) const {
  for (const auto& kv : blobs)
    if (kv.first == name) return &kv.second;
  return nullptr;
}

std::string encodeTrainState(const TrainState& st) {
  ByteWriter w;
  w.u64(kTrainMagic);
  w.u64(st.version);

  w.u64(st.params.size());
  for (const auto& m : st.params) w.mat(m);
  w.u64(st.adamM.size());
  for (const auto& m : st.adamM) w.mat(m);
  w.u64(st.adamV.size());
  for (const auto& m : st.adamV) w.mat(m);
  w.i64(st.adamStep);

  w.u64(st.rngs.size());
  for (const auto& [name, state] : st.rngs) {
    w.str(name);
    w.str(state);
  }
  w.u64(st.counters.size());
  for (const auto& [name, v] : st.counters) {
    w.str(name);
    w.i64(v);
  }
  w.u64(st.blobs.size());
  for (const auto& [name, bytes] : st.blobs) {
    w.str(name);
    w.str(bytes);
  }
  return w.take();
}

void saveTrainState(const std::string& path, const TrainState& st) {
  atomicWriteFile(path, encodeTrainState(st));
}

LoadResult loadTrainState(const std::string& path, TrainState& st,
                          std::string* error) {
  std::string bytes;
  if (!readFile(path, bytes)) {
    setError(error, "no checkpoint at " + path);
    return LoadResult::Missing;
  }
  ByteReader r(bytes);
  std::uint64_t magic = 0;
  TrainState staged;
  if (!r.u64(magic) || magic != kTrainMagic) {
    setError(error, path + ": not a CRL TrainState checkpoint (bad magic)");
    return LoadResult::Invalid;
  }
  if (!r.u64(staged.version) || staged.version != kTrainStateVersion) {
    setError(error, path + ": unsupported TrainState version " +
                        std::to_string(staged.version) + " (expected " +
                        std::to_string(kTrainStateVersion) + ")");
    return LoadResult::Invalid;
  }

  auto readMats = [&](std::vector<linalg::Mat>& mats, const char* what) {
    std::uint64_t n = 0;
    if (!r.u64(n)) {
      setError(error, path + ": truncated " + std::string(what) + " count");
      return false;
    }
    mats.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      linalg::Mat m;
      if (!r.mat(m)) {
        setError(error, path + ": truncated " + std::string(what) + " " +
                            std::to_string(i));
        return false;
      }
      mats.push_back(std::move(m));
    }
    return true;
  };
  if (!readMats(staged.params, "params")) return LoadResult::Invalid;
  if (!readMats(staged.adamM, "adamM")) return LoadResult::Invalid;
  if (!readMats(staged.adamV, "adamV")) return LoadResult::Invalid;
  if (!r.i64(staged.adamStep)) {
    setError(error, path + ": truncated adam step");
    return LoadResult::Invalid;
  }

  std::uint64_t n = 0;
  if (!r.u64(n)) {
    setError(error, path + ": truncated rng section");
    return LoadResult::Invalid;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name, state;
    if (!r.str(name) || !r.str(state)) {
      setError(error, path + ": truncated rng record " + std::to_string(i));
      return LoadResult::Invalid;
    }
    staged.rngs.emplace_back(std::move(name), std::move(state));
  }
  if (!r.u64(n)) {
    setError(error, path + ": truncated counter section");
    return LoadResult::Invalid;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    std::int64_t v = 0;
    if (!r.str(name) || !r.i64(v)) {
      setError(error, path + ": truncated counter record " + std::to_string(i));
      return LoadResult::Invalid;
    }
    staged.counters.emplace_back(std::move(name), v);
  }
  if (!r.u64(n)) {
    setError(error, path + ": truncated blob section");
    return LoadResult::Invalid;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name, blob;
    if (!r.str(name) || !r.str(blob)) {
      setError(error, path + ": truncated blob record " + std::to_string(i));
      return LoadResult::Invalid;
    }
    staged.blobs.emplace_back(std::move(name), std::move(blob));
  }
  if (!r.atEnd()) {
    setError(error, path + ": trailing bytes after TrainState record");
    return LoadResult::Invalid;
  }
  st = std::move(staged);
  return LoadResult::Ok;
}

}  // namespace crl::nn
