#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace crl::nn {

namespace {
constexpr std::uint64_t kMagic = 0x43524C504152414DULL;  // "CRLPARAM"
}

void saveParameters(const std::string& path, const std::vector<Tensor>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("saveParameters: cannot open " + path);
  auto writeU64 = [&](std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  writeU64(kMagic);
  writeU64(params.size());
  for (const auto& p : params) {
    writeU64(p.value().rows());
    writeU64(p.value().cols());
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(p.value().size() * sizeof(double)));
  }
}

bool loadParameters(const std::string& path, std::vector<Tensor>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  auto readU64 = [&](std::uint64_t& v) {
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return static_cast<bool>(in);
  };
  std::uint64_t magic = 0, count = 0;
  if (!readU64(magic) || magic != kMagic) return false;
  if (!readU64(count) || count != params.size()) return false;

  // Stage into temporaries so a short read leaves params untouched.
  std::vector<linalg::Mat> staged;
  staged.reserve(params.size());
  for (const auto& p : params) {
    std::uint64_t rows = 0, cols = 0;
    if (!readU64(rows) || !readU64(cols)) return false;
    if (rows != p.value().rows() || cols != p.value().cols()) return false;
    linalg::Mat m(rows, cols);
    in.read(reinterpret_cast<char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
    if (!in) return false;
    staged.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i].mutableValue() = std::move(staged[i]);
  return true;
}

}  // namespace crl::nn
