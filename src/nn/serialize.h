#pragma once
// Binary (de)serialization of parameter lists, so benchmark harnesses can
// share trained policies instead of retraining per figure.

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace crl::nn {

/// Write parameter values to a binary file. Format: magic, tensor count,
/// then per tensor rows/cols (u64) + row-major doubles.
void saveParameters(const std::string& path, const std::vector<Tensor>& params);

/// Load values into existing tensors (shapes must match exactly).
/// Returns false if the file is missing or incompatible; params untouched on
/// failure.
bool loadParameters(const std::string& path, std::vector<Tensor>& params);

}  // namespace crl::nn
