#pragma once
// Binary (de)serialization of policy artifacts and full training-state
// snapshots.
//
// Two file formats live here:
//
//  * Parameter artifacts (saveParameters/loadParameters): magic, tensor
//    count, then per tensor rows/cols (u64) + row-major doubles. Benchmark
//    harnesses share trained policies through these instead of retraining
//    per figure.
//  * TrainState checkpoints (saveTrainState/loadTrainState): a versioned
//    record of everything a training run needs to resume bitwise — parameter
//    matrices, Adam first/second moments and step counter, the text-encoded
//    std::mt19937_64 state of every RNG stream the trainer owns, named
//    integer counters (epoch/episode/iteration), and named opaque blobs
//    (pending transition buffers, SPICE solver warm-start snapshots,
//    harness EMA/curve state).
//
// Every writer is crash-safe: bytes go to a temp file in the destination
// directory, are flushed (and fsync'd where the platform allows), and the
// temp file is rename()d over the final path — a SIGKILL at any instant
// leaves either the previous artifact or the new one, never a torn file.

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "nn/tensor.h"

namespace crl::nn {

// ---- byte-level helpers ---------------------------------------------------
// Little record encoders shared by the serializers here and by the training
// code that snapshots its own structures into TrainState blobs (pending PPO
// transition buffers, campaign harness state). Scalars are memcpy'd in
// native byte order — checkpoints are same-machine restart artifacts, not
// interchange files.

class ByteWriter {
 public:
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void b8(bool v) { char c = v ? 1 : 0; raw(&c, 1); }
  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void mat(const linalg::Mat& m) {
    u64(m.rows());
    u64(m.cols());
    raw(m.data(), m.size() * sizeof(double));
  }
  void vec(const std::vector<double>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }
  void vecI(const std::vector<int>& v) {
    u64(v.size());
    for (int x : v) i64(x);
  }

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Every read reports success; a short or malformed buffer fails cleanly
/// instead of reading garbage, so loaders can stage-and-validate.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  bool i64(std::int64_t& v) { return raw(&v, sizeof v); }
  bool f64(double& v) { return raw(&v, sizeof v); }
  bool b8(bool& v) {
    char c = 0;
    if (!raw(&c, 1)) return false;
    v = c != 0;
    return true;
  }
  bool str(std::string& s) {
    std::uint64_t n = 0;
    if (!u64(n) || n > remaining()) return false;
    s.assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }
  bool mat(linalg::Mat& m) {
    std::uint64_t r = 0, c = 0;
    if (!u64(r) || !u64(c)) return false;
    if (r * c * sizeof(double) > remaining()) return false;
    linalg::Mat staged(r, c);
    if (!raw(staged.data(), staged.size() * sizeof(double))) return false;
    m = std::move(staged);
    return true;
  }
  bool vec(std::vector<double>& v) {
    std::uint64_t n = 0;
    if (!u64(n) || n * sizeof(double) > remaining()) return false;
    v.resize(n);
    return raw(v.data(), n * sizeof(double));
  }
  bool vecI(std::vector<int>& v) {
    std::uint64_t n = 0;
    if (!u64(n) || n * sizeof(std::int64_t) > remaining()) return false;
    v.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::int64_t x = 0;
      if (!i64(x)) return false;
      v[i] = static_cast<int>(x);
    }
    return true;
  }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool atEnd() const { return pos_ == data_.size(); }

 private:
  bool raw(void* p, std::size_t n) {
    if (n > remaining()) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- crash-safe file replacement ------------------------------------------

/// Atomically replace `path` with `bytes`: write to a unique temp file in the
/// same directory, flush + fsync, then rename over the target. Throws
/// std::runtime_error on any I/O failure (the temp file is cleaned up; the
/// previous artifact at `path` is untouched).
void atomicWriteFile(const std::string& path, std::string_view bytes);

/// Slurp a file. Returns false if it cannot be opened.
bool readFile(const std::string& path, std::string& bytes);

// ---- parameter artifacts --------------------------------------------------

/// Outcome of a load, distinguishing "nothing there" (callers may fall back
/// to training from scratch) from "something there but unusable" (callers
/// must not silently deploy untrained weights).
enum class LoadResult {
  Ok,
  Missing,  ///< file absent or unreadable
  Invalid,  ///< present but corrupt, truncated, or shape/count-mismatched
};

/// Write parameter values to a binary file (atomically; see header comment).
void saveParameters(const std::string& path, const std::vector<Tensor>& params);

/// Optional layout-migration adapter for loadParametersDetailed: when the
/// artifact's tensor count differs from the model's, the adapter receives
/// the artifact's mats and may rewrite them into the current layout
/// (returning true). ActorCritic::adaptLegacyParameterMats is the intended
/// implementation.
using ParamAdapter = std::function<bool(std::vector<linalg::Mat>&)>;

/// Load values into existing tensors (shapes must match exactly); params are
/// untouched unless the result is Ok. On Invalid, `error` (when non-null)
/// receives a message naming what mismatched. A count mismatch is routed
/// through `adapter` (when provided) before being declared Invalid.
LoadResult loadParametersDetailed(const std::string& path,
                                  std::vector<Tensor>& params,
                                  std::string* error = nullptr,
                                  const ParamAdapter& adapter = nullptr);

/// Back-compat shim: true iff the load fully succeeded. Prefer
/// loadParametersDetailed where "missing" and "invalid" must act differently.
inline bool loadParameters(const std::string& path, std::vector<Tensor>& params) {
  return loadParametersDetailed(path, params, nullptr) == LoadResult::Ok;
}

// ---- training-state checkpoints -------------------------------------------

inline constexpr std::uint64_t kTrainStateVersion = 1;

/// Full training-run snapshot. The fixed fields cover the optimizer contract
/// (resume must continue the exact Adam trajectory); the named sections keep
/// the format open: trainers and campaign harnesses file their RNG streams,
/// counters, and opaque sub-records under stable string keys without format
/// bumps for every new field.
struct TrainState {
  std::uint64_t version = kTrainStateVersion;
  std::vector<linalg::Mat> params;
  std::vector<linalg::Mat> adamM;  ///< first moments, aligned with params
  std::vector<linalg::Mat> adamV;  ///< second moments, aligned with params
  std::int64_t adamStep = 0;

  std::vector<std::pair<std::string, std::string>> rngs;  ///< mt19937_64 text states
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::string>> blobs;

  void setRng(const std::string& name, std::string state);
  const std::string* rng(const std::string& name) const;
  void setCounter(const std::string& name, std::int64_t v);
  bool counter(const std::string& name, std::int64_t& v) const;
  void setBlob(const std::string& name, std::string bytes);
  const std::string* blob(const std::string& name) const;
};

/// Serialize a TrainState to its checkpoint byte layout (exposed so tests
/// can corrupt/truncate records deliberately).
std::string encodeTrainState(const TrainState& st);

/// Write a checkpoint atomically (temp + flush + rename).
void saveTrainState(const std::string& path, const TrainState& st);

/// Read a checkpoint. `st` is untouched unless the result is Ok. On Invalid,
/// `error` (when non-null) names the defect.
LoadResult loadTrainState(const std::string& path, TrainState& st,
                          std::string* error = nullptr);

}  // namespace crl::nn
