#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/vec_math.h"
#include "nn/arena.h"

namespace crl::nn {

namespace {
using detail::Node;

thread_local int tlInferenceDepth = 0;

/// The arena receiving this thread's recorded graph, if any. Inference-mode
/// ops never touch the arena: a NoGradGuard inside an ArenaScope records
/// nothing (value-only temporaries come from the heap and die normally).
GraphArena* recordingArena() {
  return tlInferenceDepth > 0 ? nullptr : activeArena();
}

std::shared_ptr<Node> allocNode() {
  if (GraphArena* a = recordingArena()) return a->allocateNode();
  return std::make_shared<Node>();
}

/// Zero-filled rows x cols Mat — pooled under an arena, fresh otherwise.
/// Bit-identical either way (fresh Mats are zero-filled too).
Mat newMat(std::size_t rows, std::size_t cols) {
  if (GraphArena* a = recordingArena()) return a->acquireMat(rows, cols);
  return Mat(rows, cols);
}

/// Like newMat but with unspecified contents — for ops that overwrite every
/// element before the buffer is read.
Mat newMatUninit(std::size_t rows, std::size_t cols) {
  if (GraphArena* a = recordingArena()) return a->acquireMat(rows, cols, false);
  return Mat(rows, cols);
}

/// A copy of src in a pooled buffer (or a plain copy without an arena).
Mat copyMat(const Mat& src) {
  if (GraphArena* a = recordingArena()) {
    Mat out = a->acquireMat(src.rows(), src.cols(), false);
    std::copy(src.raw().begin(), src.raw().end(), out.raw().begin());
    return out;
  }
  return src;
}

/// Hand a scratch buffer back to the pool (no-op without an arena).
void releaseMat(Mat&& m) {
  if (GraphArena* a = recordingArena()) a->reclaimMat(std::move(m));
}

/// src^T in a pooled buffer (backward passes transpose weight matrices).
Mat transposedPooled(const Mat& src) {
  Mat t = newMatUninit(src.cols(), src.rows());
  for (std::size_t r = 0; r < src.rows(); ++r)
    for (std::size_t c = 0; c < src.cols(); ++c) t(c, r) = src(r, c);
  return t;
}

// The backward callable is taken as a template parameter so the BackwardFn
// wrapper is only materialized when the graph is actually recorded — in
// inference mode ops pay for the value computation alone.
template <typename F>
std::shared_ptr<Node> makeNode(Mat value, detail::ParentList parents,
                               F&& backward) {
  auto n = allocNode();
  n->value = std::move(value);
  if (tlInferenceDepth > 0) return n;
  bool needsGrad = false;
  for (const auto& p : parents) needsGrad = needsGrad || p->requiresGrad;
  n->requiresGrad = needsGrad;
  if (needsGrad) {
    n->parents = std::move(parents);
    n->backward = std::forward<F>(backward);
  }
  return n;
}

Tensor wrap(std::shared_ptr<Node> n) { return Tensor(std::move(n)); }

/// Inference-mode node: value only, no graph.
std::shared_ptr<Node> makeValueNode(Mat value) {
  auto n = allocNode();
  n->value = std::move(value);
  return n;
}

// Taken by value so callers hand over freshly computed deltas by move; the
// first accumulation into an unallocated grad buffer adopts the delta
// outright (0 + x == x), skipping the zero-fill and add pass the general
// case needs. Deltas that are not adopted return to the arena pool.
void accumulate(Node& target, Mat delta) {
  if (!target.requiresGrad) {
    releaseMat(std::move(delta));
    return;
  }
  if (target.grad.rows() != target.value.rows() ||
      target.grad.cols() != target.value.cols()) {
    target.grad = std::move(delta);
    return;
  }
  target.grad += delta;
  releaseMat(std::move(delta));
}

void checkSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
}

/// Pointwise unary op helper: value = f(a), backward: da += dfda .* dout.
/// The backward reads the input values back through the parent node (kept
/// alive by the graph edge) instead of copying the input matrix.
template <typename F, typename DF>
Tensor pointwise(const Tensor& a, F f, DF dfda) {
  Mat out = copyMat(a.value());
  for (auto& v : out.raw()) v = f(v);
  if (tlInferenceDepth > 0) return wrap(makeValueNode(std::move(out)));
  auto pa = a.node();
  return wrap(makeNode(std::move(out), {pa}, [pa, dfda](Node& self) {
    const Mat& in = pa->value;
    Mat delta = newMatUninit(in.rows(), in.cols());
    for (std::size_t i = 0; i < in.raw().size(); ++i)
      delta.raw()[i] = dfda(in.raw()[i], self.value.raw()[i]) * self.grad.raw()[i];
    accumulate(*pa, std::move(delta));
  }));
}

/// pointwise with the forward computed by a whole-buffer kernel (the
/// vec_math batched transforms) instead of a per-element lambda.
template <typename AF, typename DF>
Tensor pointwiseBatched(const Tensor& a, AF arrayFn, DF dfda) {
  Mat out = copyMat(a.value());
  arrayFn(out.data(), out.raw().size());
  if (tlInferenceDepth > 0) return wrap(makeValueNode(std::move(out)));
  auto pa = a.node();
  return wrap(makeNode(std::move(out), {pa}, [pa, dfda](Node& self) {
    const Mat& in = pa->value;
    Mat delta = newMatUninit(in.rows(), in.cols());
    for (std::size_t i = 0; i < in.raw().size(); ++i)
      delta.raw()[i] = dfda(in.raw()[i], self.value.raw()[i]) * self.grad.raw()[i];
    accumulate(*pa, std::move(delta));
  }));
}

// ---- fused-kernel helpers ----------------------------------------------

/// y += diag(block, ..., block) x with `repeat` copies of blk along the
/// diagonal; y must be zero-filled. Loop structure (and sparse zero-skip)
/// identical to linalg::matmul restricted to the blocks, so repeat == 1 is
/// bit-identical to matmul(blk, x). Runs the SIMD-dispatched core.
void blockDiagApplyInto(Mat& y, const Mat& blk, std::size_t repeat, const Mat& x) {
  linalg::simd::blockDiagKernel(y.data(), blk.data(), blk.rows(), repeat,
                                x.data(), x.cols(), /*transposed=*/false);
}

/// y += diag(blk^T, ..., blk^T) x without materializing the transpose —
/// reads blk(k, r) in the same order blockDiagApplyInto reads a materialized
/// transpose, so results are bit-identical to it.
void blockDiagApplyTransposedInto(Mat& y, const Mat& blk, std::size_t repeat,
                                  const Mat& x) {
  linalg::simd::blockDiagKernel(y.data(), blk.data(), blk.rows(), repeat,
                                x.data(), x.cols(), /*transposed=*/true);
}

/// Row-wise softmax in place — the shared vectorized kernel (max-subtract
/// and ascending row-sum order preserved; see vec_math.h).
void softmaxRowsInPlace(Mat& out) {
  linalg::vecmath::softmaxRowsInPlace(out.data(), out.rows(), out.cols());
}

/// The matmulBlocks value kernel: out += a_g * b_g per block, out zero-filled.
void blocksMatmulInto(Mat& out, const Mat& a, const Mat& b, std::size_t blocks,
                      std::size_t r, std::size_t k, std::size_t m) {
  linalg::simd::blocksMatmulKernel(out.data(), a.data(), b.data(), blocks, r, k,
                                   m);
}

/// Pointwise activation in place — per-element functions identical to the
/// tanhT/relu/leakyRelu/sigmoid ops (which route through the same vec_math
/// kernels).
void applyActivationInPlace(Mat& m, Activation act) {
  switch (act) {
    case Activation::None: return;
    case Activation::Tanh:
      linalg::vecmath::tanhInPlace(m.data(), m.raw().size());
      return;
    case Activation::Relu:
      for (auto& v : m.raw()) v = v > 0.0 ? v : 0.0;
      return;
    case Activation::LeakyRelu:
      for (auto& v : m.raw()) v = v > 0.0 ? v : 0.2 * v;
      return;
    case Activation::Sigmoid:
      linalg::vecmath::sigmoidInPlace(m.data(), m.raw().size());
      return;
  }
  throw std::logic_error("applyActivationInPlace: unknown activation");
}

/// dz = act'(y) .* g, matching the pointwise ops' dfda * grad products
/// exactly. For this activation set the derivative is recoverable from the
/// output alone (relu/leakyRelu: y > 0 iff x > 0, with the x == 0
/// subgradient agreeing on both formulations).
void activationBackwardInto(Mat& dz, const Mat& y, const Mat& g, Activation act) {
  using linalg::simd::ActKind;
  switch (act) {
    case Activation::None:
      std::copy(g.raw().begin(), g.raw().end(), dz.raw().begin());
      return;
    case Activation::Tanh:
      linalg::simd::activationBackwardKernel(dz.data(), y.data(), g.data(),
                                             g.raw().size(), ActKind::Tanh);
      return;
    case Activation::Relu:
      linalg::simd::activationBackwardKernel(dz.data(), y.data(), g.data(),
                                             g.raw().size(), ActKind::Relu);
      return;
    case Activation::LeakyRelu:
      linalg::simd::activationBackwardKernel(dz.data(), y.data(), g.data(),
                                             g.raw().size(), ActKind::LeakyRelu);
      return;
    case Activation::Sigmoid:
      linalg::simd::activationBackwardKernel(dz.data(), y.data(), g.data(),
                                             g.raw().size(), ActKind::Sigmoid);
      return;
  }
  throw std::logic_error("activationBackwardInto: unknown activation");
}
}  // namespace

Tensor::Tensor(Mat value, bool requiresGrad) {
  node_ = allocNode();
  node_->value = std::move(value);
  node_->requiresGrad = requiresGrad;
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols, bool requiresGrad) {
  return Tensor(newMat(rows, cols), requiresGrad);
}

Tensor Tensor::scalar(double v) {
  Mat m = newMatUninit(1, 1);
  m(0, 0) = v;
  return Tensor(std::move(m));
}

Tensor Tensor::row(const std::vector<double>& v) {
  Mat m = newMatUninit(1, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) m(0, i) = v[i];
  return Tensor(std::move(m));
}

Tensor Tensor::xavier(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Mat m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.raw()) v = rng.uniform(-bound, bound);
  return Tensor(std::move(m), /*requiresGrad=*/true);
}

double Tensor::item() const {
  if (!node_) throw std::logic_error("Tensor::item: undefined tensor");
  if (rows() != 1 || cols() != 1) throw std::logic_error("Tensor::item: not scalar");
  return node_->value(0, 0);
}

void Tensor::zeroGrad() {
  if (node_) {
    node_->ensureGrad();
    node_->grad.fill(0.0);
  }
}

NoGradGuard::NoGradGuard() { ++tlInferenceDepth; }
NoGradGuard::~NoGradGuard() { --tlInferenceDepth; }

bool inferenceMode() { return tlInferenceDepth > 0; }

void backward(const Tensor& root) {
  if (root.rows() != 1 || root.cols() != 1)
    throw std::invalid_argument("backward: root must be scalar");
  if (!root.requiresGrad()) return;

  // Iterative topological sort (graphs can be deep for long episodes). The
  // scratch vectors are thread-local so per-minibatch backward passes don't
  // reallocate them.
  static thread_local std::vector<Node*> order;
  static thread_local std::vector<Node*> stack;
  order.clear();
  stack.clear();
  stack.push_back(root.node().get());
  while (!stack.empty()) {
    Node* n = stack.back();
    if (n->visitMark == 2) {
      stack.pop_back();
      continue;
    }
    if (n->visitMark == 1) {
      n->visitMark = 2;
      order.push_back(n);
      stack.pop_back();
      continue;
    }
    n->visitMark = 1;
    for (const auto& p : n->parents)
      if (p->requiresGrad && p->visitMark == 0) stack.push_back(p.get());
  }

  // Grad buffers allocate lazily on first accumulation (every non-root node
  // in `order` receives one from a child closure before its own runs); only
  // the root needs its buffer up front.
  for (Node* n : order) n->visitMark = 0;  // reset for future passes
  root.node()->ensureGrad();
  root.node()->grad(0, 0) = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward) (*it)->backward(**it);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  auto pa = a.node(), pb = b.node();
  Mat out = newMat(a.rows(), b.cols());
  linalg::matmulInto(out, a.value(), b.value());
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    // dA += dOut * B^T ; dB += A^T * dOut. The guards skip the whole product
    // when an operand is constant (e.g. stacked input features), and the
    // A^T side uses the transpose-free kernel (same summation order).
    if (pa->requiresGrad) {
      Mat bT = transposedPooled(pb->value);
      Mat da = newMat(pa->value.rows(), pa->value.cols());
      linalg::matmulInto(da, self.grad, bT);
      releaseMat(std::move(bT));
      accumulate(*pa, std::move(da));
    }
    if (pb->requiresGrad) {
      Mat db = newMat(pb->value.rows(), pb->value.cols());
      linalg::matmulAtBInto(db, pa->value, self.grad);
      accumulate(*pb, std::move(db));
    }
  }));
}

Tensor matmulConstLeft(const Mat& a, const Tensor& b) {
  Mat out = newMat(a.rows(), b.cols());
  linalg::matmulInto(out, a, b.value());
  if (tlInferenceDepth > 0) return wrap(makeValueNode(std::move(out)));
  auto pb = b.node();
  return wrap(makeNode(std::move(out), {pb}, [pb, a](Node& self) {
    Mat db = newMat(a.cols(), self.grad.cols());
    linalg::matmulAtBInto(db, a, self.grad);
    accumulate(*pb, std::move(db));
  }));
}

Tensor matmulBlockDiagConstLeft(const Mat& block, std::size_t repeat, const Tensor& b) {
  const std::size_t n = block.rows();
  if (block.cols() != n)
    throw std::invalid_argument("matmulBlockDiagConstLeft: block must be square");
  if (b.rows() != repeat * n)
    throw std::invalid_argument("matmulBlockDiagConstLeft: row count mismatch");
  const std::size_t m = b.cols();
  Mat out = newMat(repeat * n, m);
  blockDiagApplyInto(out, block, repeat, b.value());
  if (tlInferenceDepth > 0) return wrap(makeValueNode(std::move(out)));
  auto pb = b.node();
  return wrap(makeNode(std::move(out), {pb}, [pb, block, repeat, n, m](Node& self) {
    Mat db = newMat(repeat * n, m);
    blockDiagApplyTransposedInto(db, block, repeat, self.grad);
    accumulate(*pb, std::move(db));
  }));
}

Tensor matmulBlocks(const Tensor& a, const Tensor& b, std::size_t blocks) {
  if (blocks == 0 || a.rows() % blocks != 0 || b.rows() % blocks != 0)
    throw std::invalid_argument("matmulBlocks: rows must divide into blocks");
  const std::size_t r = a.rows() / blocks;
  const std::size_t k = b.rows() / blocks;
  const std::size_t m = b.cols();
  if (a.cols() != k) throw std::invalid_argument("matmulBlocks: inner dim mismatch");
  auto pa = a.node(), pb = b.node();
  Mat out = newMat(blocks * r, m);
  blocksMatmulInto(out, pa->value, pb->value, blocks, r, k, m);
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb, blocks, r, k, m](Node& self) {
    // da_g += dout_g * b_g^T ; db_g += a_g^T * dout_g, per block. da rows
    // are dot products of contiguous grad/b rows; db accumulates row-saxpy
    // style like matmulAtB. Both sum over the same ascending index order as
    // the plain per-element formulation.
    Mat da = newMatUninit(pa->value.rows(), pa->value.cols());
    Mat db = newMat(pb->value.rows(), pb->value.cols());
    linalg::simd::gatMixBackwardKernel(da.data(), db.data(), pa->value.data(),
                                       pb->value.data(), self.grad.data(),
                                       blocks, r, k, m);
    accumulate(*pa, std::move(da));
    accumulate(*pb, std::move(db));
  }));
}

Tensor add(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "add");
  auto pa = a.node(), pb = b.node();
  Mat out = copyMat(a.value());
  out += b.value();
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    accumulate(*pa, copyMat(self.grad));
    accumulate(*pb, copyMat(self.grad));
  }));
}

Tensor addRowBroadcast(const Tensor& a, const Tensor& row) {
  if (row.rows() != 1 || row.cols() != a.cols())
    throw std::invalid_argument("addRowBroadcast: bias shape mismatch");
  auto pa = a.node(), pr = row.node();
  Mat out = copyMat(a.value());
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += row.value()(0, c);
  return wrap(makeNode(std::move(out), {pa, pr}, [pa, pr](Node& self) {
    accumulate(*pa, copyMat(self.grad));
    Mat rowGrad = newMat(1, self.grad.cols());
    linalg::simd::biasRowSumKernel(rowGrad.data(), self.grad.data(),
                                   self.grad.rows(), self.grad.cols());
    accumulate(*pr, std::move(rowGrad));
  }));
}

Tensor sub(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "sub");
  auto pa = a.node(), pb = b.node();
  Mat out = copyMat(a.value());
  out -= b.value();
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    accumulate(*pa, copyMat(self.grad));
    Mat db = copyMat(self.grad);
    db *= -1.0;
    accumulate(*pb, std::move(db));
  }));
}

Tensor mul(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "mul");
  auto pa = a.node(), pb = b.node();
  Mat out = copyMat(a.value());
  for (std::size_t i = 0; i < out.raw().size(); ++i) out.raw()[i] *= b.value().raw()[i];
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    Mat da = copyMat(self.grad), db = copyMat(self.grad);
    for (std::size_t i = 0; i < da.raw().size(); ++i) {
      da.raw()[i] *= pb->value.raw()[i];
      db.raw()[i] *= pa->value.raw()[i];
    }
    accumulate(*pa, std::move(da));
    accumulate(*pb, std::move(db));
  }));
}

Tensor scale(const Tensor& a, double s) {
  auto pa = a.node();
  Mat out = copyMat(a.value());
  out *= s;
  return wrap(makeNode(std::move(out), {pa}, [pa, s](Node& self) {
    Mat da = copyMat(self.grad);
    da *= s;
    accumulate(*pa, std::move(da));
  }));
}

Tensor addScalar(const Tensor& a, double s) {
  auto pa = a.node();
  Mat out = copyMat(a.value());
  for (auto& v : out.raw()) v += s;
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    accumulate(*pa, copyMat(self.grad));
  }));
}

Tensor addConst(const Tensor& a, const Mat& c) {
  if (!a.value().sameShape(c)) throw std::invalid_argument("addConst: shape mismatch");
  auto pa = a.node();
  Mat out = copyMat(a.value());
  out += c;
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    accumulate(*pa, copyMat(self.grad));
  }));
}

Tensor tanhT(const Tensor& a) {
  return pointwiseBatched(a, linalg::vecmath::tanhInPlace,
                          [](double, double y) { return 1.0 - y * y; });
}

Tensor relu(const Tensor& a) {
  return pointwise(a, [](double v) { return v > 0.0 ? v : 0.0; },
                   [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Tensor leakyRelu(const Tensor& a, double slope) {
  return pointwise(a, [slope](double v) { return v > 0.0 ? v : slope * v; },
                   [slope](double x, double) { return x > 0.0 ? 1.0 : slope; });
}

Tensor sigmoid(const Tensor& a) {
  return pointwiseBatched(a, linalg::vecmath::sigmoidInPlace,
                          [](double, double y) { return y * (1.0 - y); });
}

Tensor expT(const Tensor& a) {
  return pointwiseBatched(a, linalg::vecmath::expInPlace,
                          [](double, double y) { return y; });
}

Tensor logT(const Tensor& a, double eps) {
  return pointwise(a, [eps](double v) { return std::log(std::max(v, eps)); },
                   [eps](double x, double) { return 1.0 / std::max(x, eps); });
}

Tensor minT(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "minT");
  auto pa = a.node(), pb = b.node();
  Mat out = copyMat(a.value());
  for (std::size_t i = 0; i < out.raw().size(); ++i)
    out.raw()[i] = std::min(out.raw()[i], b.value().raw()[i]);
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    Mat da = newMat(self.grad.rows(), self.grad.cols());
    Mat db = newMat(self.grad.rows(), self.grad.cols());
    for (std::size_t i = 0; i < self.grad.raw().size(); ++i) {
      if (pa->value.raw()[i] <= pb->value.raw()[i])
        da.raw()[i] = self.grad.raw()[i];
      else
        db.raw()[i] = self.grad.raw()[i];
    }
    accumulate(*pa, std::move(da));
    accumulate(*pb, std::move(db));
  }));
}

Tensor clampT(const Tensor& a, double lo, double hi) {
  return pointwise(a, [lo, hi](double v) { return std::clamp(v, lo, hi); },
                   [lo, hi](double x, double) { return (x > lo && x < hi) ? 1.0 : 0.0; });
}

Tensor softmaxRows(const Tensor& a) {
  auto pa = a.node();
  Mat out = copyMat(a.value());
  softmaxRowsInPlace(out);
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    // dx_rc = y_rc * (dout_rc - sum_k dout_rk y_rk) per row.
    Mat delta = newMatUninit(self.value.rows(), self.value.cols());
    for (std::size_t r = 0; r < self.value.rows(); ++r) {
      double dotProd = 0.0;
      for (std::size_t c = 0; c < self.value.cols(); ++c)
        dotProd += self.grad(r, c) * self.value(r, c);
      for (std::size_t c = 0; c < self.value.cols(); ++c)
        delta(r, c) = self.value(r, c) * (self.grad(r, c) - dotProd);
    }
    accumulate(*pa, std::move(delta));
  }));
}

Tensor logSoftmaxRows(const Tensor& a) {
  auto pa = a.node();
  Mat out = copyMat(a.value());
  if (tlInferenceDepth > 0) {
    linalg::vecmath::logSoftmaxRowsInPlace(out.data(), nullptr, out.rows(),
                                           out.cols());
    return wrap(makeValueNode(std::move(out)));
  }
  // The forward's softmax probabilities ride along in ctx so the backward
  // reuses them instead of re-exponentiating every element.
  Mat probs = newMatUninit(out.rows(), out.cols());
  linalg::vecmath::logSoftmaxRowsInPlace(out.data(), probs.data(), out.rows(),
                                         out.cols());
  auto node = makeNode(std::move(out), {pa}, [pa](Node& self) {
    // dx_rc = dout_rc - softmax_rc * sum_k dout_rk.
    const Mat& probs = self.ctx;
    Mat delta = newMatUninit(self.value.rows(), self.value.cols());
    for (std::size_t r = 0; r < self.value.rows(); ++r) {
      double rowSum = 0.0;
      for (std::size_t c = 0; c < self.value.cols(); ++c) rowSum += self.grad(r, c);
      for (std::size_t c = 0; c < self.value.cols(); ++c)
        delta(r, c) = self.grad(r, c) - probs(r, c) * rowSum;
    }
    accumulate(*pa, std::move(delta));
  });
  node->ctx = std::move(probs);
  return wrap(std::move(node));
}

Tensor sum(const Tensor& a) {
  auto pa = a.node();
  double s = 0.0;
  for (double v : a.value().raw()) s += v;
  Mat out = newMatUninit(1, 1);
  out(0, 0) = s;
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    Mat delta = newMatUninit(pa->value.rows(), pa->value.cols());
    std::fill(delta.raw().begin(), delta.raw().end(), self.grad(0, 0));
    accumulate(*pa, std::move(delta));
  }));
}

Tensor mean(const Tensor& a) {
  const double n = static_cast<double>(a.value().size());
  return scale(sum(a), 1.0 / n);
}

Tensor meanRows(const Tensor& a) {
  auto pa = a.node();
  const double n = static_cast<double>(a.rows());
  Mat out = newMat(1, a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(0, c) += a.value()(r, c) / n;
  return wrap(makeNode(std::move(out), {pa}, [pa, n](Node& self) {
    Mat delta = newMatUninit(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r)
      for (std::size_t c = 0; c < delta.cols(); ++c) delta(r, c) = self.grad(0, c) / n;
    accumulate(*pa, std::move(delta));
  }));
}

Tensor sumRows(const Tensor& a) {
  auto pa = a.node();
  Mat out = newMat(a.rows(), 1);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, 0) += a.value()(r, c);
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    Mat delta = newMatUninit(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r)
      for (std::size_t c = 0; c < delta.cols(); ++c) delta(r, c) = self.grad(r, 0);
    accumulate(*pa, std::move(delta));
  }));
}

Tensor meanPoolGroups(const Tensor& a, std::size_t groups) {
  if (groups == 0 || a.rows() % groups != 0)
    throw std::invalid_argument("meanPoolGroups: rows must divide into groups");
  const std::size_t g = a.rows() / groups;
  const double invG = 1.0 / static_cast<double>(g);
  auto pa = a.node();
  Mat out = newMat(groups, a.cols());
  for (std::size_t k = 0; k < groups; ++k)
    for (std::size_t r = 0; r < g; ++r)
      for (std::size_t c = 0; c < a.cols(); ++c)
        out(k, c) += a.value()(k * g + r, c) * invG;
  return wrap(makeNode(std::move(out), {pa}, [pa, g, invG](Node& self) {
    Mat delta = newMatUninit(pa->value.rows(), pa->value.cols());
    for (std::size_t k = 0; k < self.grad.rows(); ++k)
      for (std::size_t r = 0; r < g; ++r)
        for (std::size_t c = 0; c < delta.cols(); ++c)
          delta(k * g + r, c) = self.grad(k, c) * invG;
    accumulate(*pa, std::move(delta));
  }));
}

Tensor transpose(const Tensor& a) {
  auto pa = a.node();
  return wrap(makeNode(transposedPooled(a.value()), {pa}, [pa](Node& self) {
    accumulate(*pa, transposedPooled(self.grad));
  }));
}

Tensor concatCols(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("concatCols: row mismatch");
  auto pa = a.node(), pb = b.node();
  Mat out = newMatUninit(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a.value()(r, c);
    for (std::size_t c = 0; c < b.cols(); ++c) out(r, a.cols() + c) = b.value()(r, c);
  }
  const std::size_t aCols = a.cols();
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb, aCols](Node& self) {
    Mat da = newMatUninit(pa->value.rows(), pa->value.cols());
    Mat db = newMatUninit(pb->value.rows(), pb->value.cols());
    for (std::size_t r = 0; r < self.grad.rows(); ++r) {
      for (std::size_t c = 0; c < aCols; ++c) da(r, c) = self.grad(r, c);
      for (std::size_t c = 0; c < db.cols(); ++c) db(r, c) = self.grad(r, aCols + c);
    }
    accumulate(*pa, std::move(da));
    accumulate(*pb, std::move(db));
  }));
}

Tensor concatRows(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("concatRows: column mismatch");
  auto pa = a.node(), pb = b.node();
  Mat out = newMatUninit(a.rows() + b.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a.value()(r, c);
  for (std::size_t r = 0; r < b.rows(); ++r)
    for (std::size_t c = 0; c < b.cols(); ++c) out(a.rows() + r, c) = b.value()(r, c);
  const std::size_t aRows = a.rows();
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb, aRows](Node& self) {
    Mat da = newMatUninit(pa->value.rows(), pa->value.cols());
    Mat db = newMatUninit(pb->value.rows(), pb->value.cols());
    for (std::size_t r = 0; r < aRows; ++r)
      for (std::size_t c = 0; c < da.cols(); ++c) da(r, c) = self.grad(r, c);
    for (std::size_t r = 0; r < db.rows(); ++r)
      for (std::size_t c = 0; c < db.cols(); ++c) db(r, c) = self.grad(aRows + r, c);
    accumulate(*pa, std::move(da));
    accumulate(*pb, std::move(db));
  }));
}

Tensor concatRowsAll(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concatRowsAll: empty input");
  std::size_t totalRows = 0;
  const std::size_t cols = parts.front().cols();
  for (const Tensor& p : parts) {
    if (p.cols() != cols) throw std::invalid_argument("concatRowsAll: column mismatch");
    totalRows += p.rows();
  }
  Mat out = newMatUninit(totalRows, cols);
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(parts.size());
  std::size_t row = 0;
  for (const Tensor& p : parts) {
    for (std::size_t r = 0; r < p.rows(); ++r)
      for (std::size_t c = 0; c < cols; ++c) out(row + r, c) = p.value()(r, c);
    row += p.rows();
    parents.push_back(p.node());
  }
  return wrap(makeNode(std::move(out), std::move(parents), [](Node& self) {
    std::size_t begin = 0;
    for (const auto& parent : self.parents) {
      const std::size_t rows = parent->value.rows();
      if (parent->requiresGrad) {
        Mat delta = newMatUninit(rows, parent->value.cols());
        for (std::size_t r = 0; r < rows; ++r)
          for (std::size_t c = 0; c < delta.cols(); ++c)
            delta(r, c) = self.grad(begin + r, c);
        accumulate(*parent, std::move(delta));
      }
      begin += rows;
    }
  }));
}

Tensor gatherPerRow(const Tensor& a, const std::vector<int>& idx) {
  if (idx.size() != a.rows()) throw std::invalid_argument("gatherPerRow: index count");
  auto pa = a.node();
  Mat out = newMatUninit(a.rows(), 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    int c = idx[r];
    if (c < 0 || static_cast<std::size_t>(c) >= a.cols())
      throw std::out_of_range("gatherPerRow: index out of range");
    out(r, 0) = a.value()(r, static_cast<std::size_t>(c));
  }
  return wrap(makeNode(std::move(out), {pa}, [pa, idx](Node& self) {
    Mat delta = newMat(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r)
      delta(r, static_cast<std::size_t>(idx[r])) = self.grad(r, 0);
    accumulate(*pa, std::move(delta));
  }));
}

Tensor sliceRows(const Tensor& a, std::size_t begin, std::size_t count) {
  if (begin + count > a.rows()) throw std::out_of_range("sliceRows: out of range");
  auto pa = a.node();
  Mat out = newMatUninit(count, a.cols());
  for (std::size_t r = 0; r < count; ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a.value()(begin + r, c);
  return wrap(makeNode(std::move(out), {pa}, [pa, begin, count](Node& self) {
    Mat delta = newMat(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < count; ++r)
      for (std::size_t c = 0; c < delta.cols(); ++c)
        delta(begin + r, c) = self.grad(r, c);
    accumulate(*pa, std::move(delta));
  }));
}

Tensor repeatRows(const Tensor& a, std::size_t times) {
  if (times == 0) throw std::invalid_argument("repeatRows: times must be positive");
  auto pa = a.node();
  Mat out = newMatUninit(a.rows() * times, a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t t = 0; t < times; ++t)
      for (std::size_t c = 0; c < a.cols(); ++c)
        out(r * times + t, c) = a.value()(r, c);
  return wrap(makeNode(std::move(out), {pa}, [pa, times](Node& self) {
    Mat delta = newMat(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r)
      for (std::size_t t = 0; t < times; ++t)
        for (std::size_t c = 0; c < delta.cols(); ++c)
          delta(r, c) += self.grad(r * times + t, c);
    accumulate(*pa, std::move(delta));
  }));
}

Tensor reshape(const Tensor& a, std::size_t rows, std::size_t cols) {
  if (rows * cols != a.value().size())
    throw std::invalid_argument("reshape: element count mismatch");
  auto pa = a.node();
  Mat out = newMatUninit(rows, cols);
  std::copy(a.value().raw().begin(), a.value().raw().end(), out.raw().begin());
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    Mat delta = newMatUninit(pa->value.rows(), pa->value.cols());
    std::copy(self.grad.raw().begin(), self.grad.raw().end(), delta.raw().begin());
    accumulate(*pa, std::move(delta));
  }));
}

// ---- fused layer kernels ------------------------------------------------

Tensor fusedLinear(const Tensor& x, const Tensor& w, const Tensor& b,
                   Activation act) {
  if (x.cols() != w.rows())
    throw std::invalid_argument("fusedLinear: inner dim mismatch");
  if (b.rows() != 1 || b.cols() != w.cols())
    throw std::invalid_argument("fusedLinear: bias shape mismatch");
  Mat out = newMat(x.rows(), w.cols());
  linalg::matmulInto(out, x.value(), w.value());
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += b.value()(0, c);
  applyActivationInPlace(out, act);
  if (tlInferenceDepth > 0) return wrap(makeValueNode(std::move(out)));
  auto px = x.node(), pw = w.node(), pb = b.node();
  return wrap(makeNode(std::move(out), {px, pw, pb}, [px, pw, pb, act](Node& self) {
    // dz = act'(y) .* dout, then the bias/matmul backward of the unfused
    // chain: db += rowsum(dz), dW += x^T dz, dx += dz W^T.
    Mat dzStore;
    const Mat* dz = &self.grad;
    if (act != Activation::None) {
      dzStore = newMatUninit(self.grad.rows(), self.grad.cols());
      activationBackwardInto(dzStore, self.value, self.grad, act);
      dz = &dzStore;
    }
    if (pb->requiresGrad) {
      Mat rowGrad = newMat(1, dz->cols());
      linalg::simd::biasRowSumKernel(rowGrad.data(), dz->data(), dz->rows(),
                                     dz->cols());
      accumulate(*pb, std::move(rowGrad));
    }
    if (pw->requiresGrad) {
      Mat dw = newMat(pw->value.rows(), pw->value.cols());
      linalg::matmulAtBInto(dw, px->value, *dz);
      accumulate(*pw, std::move(dw));
    }
    if (px->requiresGrad) {
      Mat wT = transposedPooled(pw->value);
      Mat dx = newMat(px->value.rows(), px->value.cols());
      linalg::matmulInto(dx, *dz, wT);
      releaseMat(std::move(wT));
      accumulate(*px, std::move(dx));
    }
    releaseMat(std::move(dzStore));
  }));
}

Tensor fusedGcnLayer(const Mat& block, std::size_t repeat, const Tensor& h,
                     const Tensor& w, const Tensor& b, Activation act) {
  // NOTE: `block` is captured by pointer (it is the environment's constant
  // propagation matrix, owned by the policy) — it must outlive the backward
  // pass of the graph this op records.
  const std::size_t n = block.rows();
  if (block.cols() != n)
    throw std::invalid_argument("fusedGcnLayer: block must be square");
  if (h.rows() != repeat * n)
    throw std::invalid_argument("fusedGcnLayer: row count mismatch");
  if (h.cols() != w.rows())
    throw std::invalid_argument("fusedGcnLayer: inner dim mismatch");
  if (b.rows() != 1 || b.cols() != w.cols())
    throw std::invalid_argument("fusedGcnLayer: bias shape mismatch");
  Mat agg = newMat(h.rows(), h.cols());
  blockDiagApplyInto(agg, block, repeat, h.value());
  Mat out = newMat(h.rows(), w.cols());
  linalg::matmulInto(out, agg, w.value());
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += b.value()(0, c);
  applyActivationInPlace(out, act);
  if (tlInferenceDepth > 0) {
    releaseMat(std::move(agg));
    return wrap(makeValueNode(std::move(out)));
  }
  auto ph = h.node(), pw = w.node(), pb = b.node();
  auto node = makeNode(
      std::move(out), {ph, pw, pb},
      [ph, pw, pb, blockPtr = &block, repeat, act](Node& self) {
        const Mat& agg = self.ctx;
        Mat dzStore;
        const Mat* dz = &self.grad;
        if (act != Activation::None) {
          dzStore = newMatUninit(self.grad.rows(), self.grad.cols());
          activationBackwardInto(dzStore, self.value, self.grad, act);
          dz = &dzStore;
        }
        if (pb->requiresGrad) {
          Mat rowGrad = newMat(1, dz->cols());
          linalg::simd::biasRowSumKernel(rowGrad.data(), dz->data(),
                                         dz->rows(), dz->cols());
          accumulate(*pb, std::move(rowGrad));
        }
        if (pw->requiresGrad) {
          Mat dw = newMat(pw->value.rows(), pw->value.cols());
          linalg::matmulAtBInto(dw, agg, *dz);
          accumulate(*pw, std::move(dw));
        }
        if (ph->requiresGrad) {
          Mat wT = transposedPooled(pw->value);
          Mat dAgg = newMat(agg.rows(), agg.cols());
          linalg::matmulInto(dAgg, *dz, wT);
          releaseMat(std::move(wT));
          Mat dh = newMat(ph->value.rows(), ph->value.cols());
          blockDiagApplyTransposedInto(dh, *blockPtr, repeat, dAgg);
          releaseMat(std::move(dAgg));
          accumulate(*ph, std::move(dh));
        }
        releaseMat(std::move(dzStore));
      });
  node->ctx = std::move(agg);
  return wrap(std::move(node));
}

Tensor fusedGatLogits(const Tensor& hw, const Tensor& aSrc, const Tensor& aDst,
                      const Mat& mask, std::size_t blocks, double slope) {
  const std::size_t n = mask.cols();
  const std::size_t rows = blocks * n;
  const std::size_t d = hw.cols();
  if (mask.rows() != rows)
    throw std::invalid_argument("fusedGatLogits: mask must be [blocks*n x n]");
  if (hw.rows() != rows)
    throw std::invalid_argument("fusedGatLogits: hw row count mismatch");
  if (aSrc.rows() != d || aSrc.cols() != 1 || aDst.rows() != d || aDst.cols() != 1)
    throw std::invalid_argument("fusedGatLogits: projection shape mismatch");
  // src = hw aSrc, dst = hw aDst (the unfused chain's matmul nodes), then
  // the per-block logit assembly in one pass.
  Mat src = newMat(rows, 1);
  linalg::simd::matmulKernel(src.data(), hw.value().data(), aSrc.value().data(),
                             rows, d, 1);
  Mat dst = newMat(rows, 1);
  linalg::simd::matmulKernel(dst.data(), hw.value().data(), aDst.value().data(),
                             rows, d, 1);
  Mat pre = newMatUninit(rows, n);
  Mat e = newMatUninit(rows, n);
  linalg::simd::gatLogitsKernel(e.data(), pre.data(), src.data(), dst.data(),
                                mask.data(), blocks, n, slope);
  releaseMat(std::move(src));
  releaseMat(std::move(dst));
  if (tlInferenceDepth > 0) {
    releaseMat(std::move(pre));
    return wrap(makeValueNode(std::move(e)));
  }
  auto phw = hw.node(), pas = aSrc.node(), pad = aDst.node();
  auto node = makeNode(
      std::move(e), {phw, pas, pad},
      [phw, pas, pad, blocks, n, d, slope](Node& self) {
        // dPre = leakyRelu'(pre) .* dE, then the projection backwards in the
        // unfused chain's reverse-topological order: src side into hw/aSrc
        // first, dst side second (accumulation order is part of the
        // bit-identity contract).
        const std::size_t rows = blocks * n;
        const Mat& pre = self.ctx;
        Mat dpre = newMatUninit(rows, n);
        Mat dsrc = newMatUninit(rows, 1);
        Mat ddst = newMatUninit(rows, 1);
        linalg::simd::gatLogitsBackwardKernel(dsrc.data(), ddst.data(),
                                              dpre.data(), pre.data(),
                                              self.grad.data(), blocks, n, slope);
        releaseMat(std::move(dpre));
        if (phw->requiresGrad) {
          Mat dhw = newMat(rows, d);
          linalg::simd::matmulKernel(dhw.data(), dsrc.data(),
                                     pas->value.data(), rows, 1, d);
          accumulate(*phw, std::move(dhw));
        }
        if (pas->requiresGrad) {
          Mat da = newMat(d, 1);
          linalg::simd::matmulAtBKernel(da.data(), phw->value.data(),
                                        dsrc.data(), rows, d, 1);
          accumulate(*pas, std::move(da));
        }
        if (phw->requiresGrad) {
          Mat dhw = newMat(rows, d);
          linalg::simd::matmulKernel(dhw.data(), ddst.data(),
                                     pad->value.data(), rows, 1, d);
          accumulate(*phw, std::move(dhw));
        }
        if (pad->requiresGrad) {
          Mat da = newMat(d, 1);
          linalg::simd::matmulAtBKernel(da.data(), phw->value.data(),
                                        ddst.data(), rows, d, 1);
          accumulate(*pad, std::move(da));
        }
        releaseMat(std::move(dsrc));
        releaseMat(std::move(ddst));
      });
  node->ctx = std::move(pre);
  return wrap(std::move(node));
}

Tensor fusedGatMultiHead(const Tensor& hwAll, const Tensor& aSrcPacked,
                         const Tensor& aDstPacked, const Mat& mask,
                         std::size_t blocks, std::size_t heads, double slope,
                         Activation act) {
  const std::size_t n = mask.cols();
  const std::size_t rows = blocks * n;
  const std::size_t hd = hwAll.cols();
  if (heads == 0 || hd % heads != 0)
    throw std::invalid_argument("fusedGatMultiHead: cols must divide into heads");
  const std::size_t d = hd / heads;
  if (mask.rows() != rows)
    throw std::invalid_argument("fusedGatMultiHead: mask must be [blocks*n x n]");
  if (hwAll.rows() != rows)
    throw std::invalid_argument("fusedGatMultiHead: hw row count mismatch");
  if (aSrcPacked.rows() != hd || aSrcPacked.cols() != 1 ||
      aDstPacked.rows() != hd || aDstPacked.cols() != 1)
    throw std::invalid_argument("fusedGatMultiHead: projection shape mismatch");
  // Head-major projection scratch: row h of each holds head h's src/dst
  // projections over all graph rows. Released once the logits are built.
  Mat srcAll = newMatUninit(heads, rows);
  Mat dstAll = newMatUninit(heads, rows);
  linalg::simd::gatPackedProjectKernel(
      srcAll.data(), dstAll.data(), hwAll.value().data(),
      aSrcPacked.value().data(), aDstPacked.value().data(), rows, heads, d);
  // One ctx slab for the whole layer: head k's attention coefficients on
  // rows [k*rows, (k+1)*rows), its pre-activation logits on rows
  // [(heads+k)*rows, (heads+k+1)*rows).
  Mat ctx = newMatUninit(2 * heads * rows, n);
  Mat out = newMat(rows, hd);
  for (std::size_t k = 0; k < heads; ++k) {
    double* alphaK = ctx.data() + k * rows * n;
    double* preK = ctx.data() + (heads + k) * rows * n;
    linalg::simd::gatLogitsKernel(alphaK, preK, srcAll.data() + k * rows,
                                  dstAll.data() + k * rows, mask.data(), blocks,
                                  n, slope);
    linalg::vecmath::softmaxRowsInPlace(alphaK, rows, n);
    linalg::simd::blocksMatmulStridedKernel(out.data() + k * d, hd, alphaK,
                                            hwAll.value().data() + k * d, hd,
                                            blocks, n, n, d);
  }
  releaseMat(std::move(srcAll));
  releaseMat(std::move(dstAll));
  applyActivationInPlace(out, act);
  if (tlInferenceDepth > 0) {
    releaseMat(std::move(ctx));
    return wrap(makeValueNode(std::move(out)));
  }
  auto phw = hwAll.node(), pas = aSrcPacked.node(), pad = aDstPacked.node();
  auto node = makeNode(
      std::move(out), {phw, pas, pad},
      [phw, pas, pad, blocks, n, heads, d, slope, act](Node& self) {
        const std::size_t rows = blocks * n;
        const std::size_t hd = heads * d;
        const Mat& ctx = self.ctx;
        // Activation backward over the whole concatenated output, then per
        // head ascending: mix backward (dAlpha + the hw-side saxpy into the
        // packed column block), softmax backward, logit backward, and the
        // projection backwards — each head's dhw block accumulates mix-db
        // first, then the src side, then the dst side, the legacy per-head
        // accumulation order.
        Mat dz = newMatUninit(rows, hd);
        activationBackwardInto(dz, self.value, self.grad, act);
        Mat dhw = newMat(rows, hd);
        Mat dASrc = newMat(hd, 1);
        Mat dADst = newMat(hd, 1);
        Mat da = newMatUninit(rows, n);
        Mat de = newMatUninit(rows, n);
        Mat dpre = newMatUninit(rows, n);
        Mat dsrc = newMatUninit(rows, 1);
        Mat ddst = newMatUninit(rows, 1);
        for (std::size_t k = 0; k < heads; ++k) {
          const double* alphaK = ctx.data() + k * rows * n;
          const double* preK = ctx.data() + (heads + k) * rows * n;
          linalg::simd::gatMixBackwardStridedKernel(
              da.data(), dhw.data() + k * d, hd, alphaK,
              phw->value.data() + k * d, hd, dz.data() + k * d, hd, blocks, n,
              n, d);
          for (std::size_t row = 0; row < rows; ++row) {
            const double* arow = alphaK + row * n;
            const double* darow = da.data() + row * n;
            double* derow = de.data() + row * n;
            double dotProd = 0.0;
            for (std::size_t c = 0; c < n; ++c) dotProd += darow[c] * arow[c];
            for (std::size_t c = 0; c < n; ++c)
              derow[c] = arow[c] * (darow[c] - dotProd);
          }
          linalg::simd::gatLogitsBackwardKernel(dsrc.data(), ddst.data(),
                                                dpre.data(), preK, de.data(),
                                                blocks, n, slope);
          if (phw->requiresGrad) {
            linalg::simd::outerAddStridedKernel(dhw.data() + k * d, hd,
                                                dsrc.data(),
                                                pas->value.data() + k * d, rows,
                                                d);
            linalg::simd::outerAddStridedKernel(dhw.data() + k * d, hd,
                                                ddst.data(),
                                                pad->value.data() + k * d, rows,
                                                d);
          }
          if (pas->requiresGrad)
            linalg::simd::matvecAtStridedKernel(dASrc.data() + k * d,
                                                phw->value.data() + k * d, hd,
                                                dsrc.data(), rows, d);
          if (pad->requiresGrad)
            linalg::simd::matvecAtStridedKernel(dADst.data() + k * d,
                                                phw->value.data() + k * d, hd,
                                                ddst.data(), rows, d);
        }
        releaseMat(std::move(da));
        releaseMat(std::move(de));
        releaseMat(std::move(dpre));
        releaseMat(std::move(dsrc));
        releaseMat(std::move(ddst));
        releaseMat(std::move(dz));
        accumulate(*phw, std::move(dhw));
        accumulate(*pas, std::move(dASrc));
        accumulate(*pad, std::move(dADst));
      });
  node->ctx = std::move(ctx);
  return wrap(std::move(node));
}

Tensor concatColsAll(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concatColsAll: no parts");
  if (parts.size() == 1) return parts[0];
  const std::size_t rows = parts[0].rows();
  std::size_t totalCols = 0;
  for (const auto& p : parts) {
    if (p.rows() != rows) throw std::invalid_argument("concatColsAll: row mismatch");
    totalCols += p.cols();
  }
  Mat out = newMatUninit(rows, totalCols);
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(parts.size());
  std::size_t off = 0;
  for (const auto& p : parts) {
    const Mat& v = p.value();
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < v.cols(); ++c) out(r, off + c) = v(r, c);
    off += v.cols();
    parents.push_back(p.node());
  }
  return wrap(makeNode(std::move(out), std::move(parents), [](Node& self) {
    std::size_t begin = 0;
    for (const auto& parent : self.parents) {
      const std::size_t cols = parent->value.cols();
      if (parent->requiresGrad) {
        Mat delta = newMatUninit(parent->value.rows(), cols);
        for (std::size_t r = 0; r < delta.rows(); ++r)
          for (std::size_t c = 0; c < cols; ++c)
            delta(r, c) = self.grad(r, begin + c);
        accumulate(*parent, std::move(delta));
      }
      begin += cols;
    }
  }));
}

Tensor fusedSoftmaxMatmulBlocks(const Tensor& e, const Tensor& hw,
                                std::size_t blocks) {
  if (blocks == 0 || e.rows() % blocks != 0 || hw.rows() % blocks != 0)
    throw std::invalid_argument(
        "fusedSoftmaxMatmulBlocks: rows must divide into blocks");
  const std::size_t r = e.rows() / blocks;
  const std::size_t k = hw.rows() / blocks;
  const std::size_t m = hw.cols();
  if (e.cols() != k)
    throw std::invalid_argument("fusedSoftmaxMatmulBlocks: inner dim mismatch");
  Mat alpha = copyMat(e.value());
  softmaxRowsInPlace(alpha);
  Mat out = newMat(blocks * r, m);
  blocksMatmulInto(out, alpha, hw.value(), blocks, r, k, m);
  if (tlInferenceDepth > 0) {
    releaseMat(std::move(alpha));
    return wrap(makeValueNode(std::move(out)));
  }
  auto pe = e.node(), phw = hw.node();
  auto node = makeNode(
      std::move(out), {pe, phw}, [pe, phw, blocks, r, k, m](Node& self) {
        // matmulBlocks backward against the saved attention coefficients
        // (dAlpha per block is a row-dot sweep, dHw the row-saxpy
        // accumulation), then the softmax backward folds dAlpha into de —
        // all in the unfused chain's summation order.
        const Mat& alpha = self.ctx;
        Mat da = newMatUninit(alpha.rows(), alpha.cols());
        Mat db = newMat(phw->value.rows(), phw->value.cols());
        linalg::simd::gatMixBackwardKernel(da.data(), db.data(), alpha.data(),
                                           phw->value.data(), self.grad.data(),
                                           blocks, r, k, m);
        accumulate(*phw, std::move(db));
        if (pe->requiresGrad) {
          Mat de = newMatUninit(alpha.rows(), alpha.cols());
          for (std::size_t row = 0; row < alpha.rows(); ++row) {
            double dotProd = 0.0;
            for (std::size_t c = 0; c < alpha.cols(); ++c)
              dotProd += da(row, c) * alpha(row, c);
            for (std::size_t c = 0; c < alpha.cols(); ++c)
              de(row, c) = alpha(row, c) * (da(row, c) - dotProd);
          }
          accumulate(*pe, std::move(de));
        }
        releaseMat(std::move(da));
      });
  node->ctx = std::move(alpha);
  return wrap(std::move(node));
}

}  // namespace crl::nn
