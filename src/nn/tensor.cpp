#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crl::nn {

namespace {
using detail::Node;

thread_local int tlInferenceDepth = 0;

// The backward callable is taken as a template parameter so the std::function
// (and its heap allocation) is only materialized when the graph is actually
// recorded — in inference mode ops pay for the value computation alone.
template <typename F>
std::shared_ptr<Node> makeNode(Mat value, std::vector<std::shared_ptr<Node>> parents,
                               F&& backward) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  if (tlInferenceDepth > 0) return n;
  bool needsGrad = false;
  for (const auto& p : parents) needsGrad = needsGrad || p->requiresGrad;
  n->requiresGrad = needsGrad;
  if (needsGrad) {
    n->parents = std::move(parents);
    n->backward = std::forward<F>(backward);
  }
  return n;
}

Tensor wrap(std::shared_ptr<Node> n) { return Tensor(std::move(n)); }

/// Inference-mode node: value only, no graph.
std::shared_ptr<Node> makeValueNode(Mat value) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  return n;
}

// Taken by value so callers hand over freshly computed deltas by move; the
// first accumulation into an unallocated grad buffer adopts the delta
// outright (0 + x == x), skipping the zero-fill and add pass the general
// case needs.
void accumulate(Node& target, Mat delta) {
  if (!target.requiresGrad) return;
  if (target.grad.rows() != target.value.rows() ||
      target.grad.cols() != target.value.cols()) {
    target.grad = std::move(delta);
    return;
  }
  target.grad += delta;
}

void checkSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
}

/// Pointwise unary op helper: value = f(a), backward: da += dfda .* dout.
/// The backward reads the input values back through the parent node (kept
/// alive by the graph edge) instead of copying the input matrix.
template <typename F, typename DF>
Tensor pointwise(const Tensor& a, F f, DF dfda) {
  Mat out = a.value();
  for (auto& v : out.raw()) v = f(v);
  if (tlInferenceDepth > 0) return wrap(makeValueNode(std::move(out)));
  auto pa = a.node();
  return wrap(makeNode(std::move(out), {pa}, [pa, dfda](Node& self) {
    const Mat& in = pa->value;
    Mat delta(in.rows(), in.cols());
    for (std::size_t i = 0; i < in.raw().size(); ++i)
      delta.raw()[i] = dfda(in.raw()[i], self.value.raw()[i]) * self.grad.raw()[i];
    accumulate(*pa, std::move(delta));
  }));
}
}  // namespace

Tensor::Tensor(Mat value, bool requiresGrad) {
  node_ = std::make_shared<detail::Node>();
  node_->value = std::move(value);
  node_->requiresGrad = requiresGrad;
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols, bool requiresGrad) {
  return Tensor(Mat(rows, cols), requiresGrad);
}

Tensor Tensor::scalar(double v) { return Tensor(Mat(1, 1, v)); }

Tensor Tensor::row(const std::vector<double>& v) {
  Mat m(1, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) m(0, i) = v[i];
  return Tensor(std::move(m));
}

Tensor Tensor::xavier(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Mat m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.raw()) v = rng.uniform(-bound, bound);
  return Tensor(std::move(m), /*requiresGrad=*/true);
}

double Tensor::item() const {
  if (rows() != 1 || cols() != 1) throw std::logic_error("Tensor::item: not scalar");
  return node_->value(0, 0);
}

void Tensor::zeroGrad() {
  if (node_) {
    node_->ensureGrad();
    node_->grad.fill(0.0);
  }
}

NoGradGuard::NoGradGuard() { ++tlInferenceDepth; }
NoGradGuard::~NoGradGuard() { --tlInferenceDepth; }

bool inferenceMode() { return tlInferenceDepth > 0; }

void backward(const Tensor& root) {
  if (root.rows() != 1 || root.cols() != 1)
    throw std::invalid_argument("backward: root must be scalar");
  if (!root.requiresGrad()) return;

  // Iterative topological sort (graphs can be deep for long episodes).
  std::vector<Node*> order;
  std::vector<Node*> stack{root.node().get()};
  while (!stack.empty()) {
    Node* n = stack.back();
    if (n->visitMark == 2) {
      stack.pop_back();
      continue;
    }
    if (n->visitMark == 1) {
      n->visitMark = 2;
      order.push_back(n);
      stack.pop_back();
      continue;
    }
    n->visitMark = 1;
    for (const auto& p : n->parents)
      if (p->requiresGrad && p->visitMark == 0) stack.push_back(p.get());
  }

  // Grad buffers allocate lazily on first accumulation (every non-root node
  // in `order` receives one from a child closure before its own runs); only
  // the root needs its buffer up front.
  for (Node* n : order) n->visitMark = 0;  // reset for future passes
  root.node()->ensureGrad();
  root.node()->grad(0, 0) = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward) (*it)->backward(**it);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  auto pa = a.node(), pb = b.node();
  Mat out = linalg::matmul(a.value(), b.value());
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    // dA += dOut * B^T ; dB += A^T * dOut. The guards skip the whole product
    // when an operand is constant (e.g. stacked input features), and the
    // A^T side uses the transpose-free kernel (same summation order).
    if (pa->requiresGrad)
      accumulate(*pa, linalg::matmul(self.grad, pb->value.transposed()));
    if (pb->requiresGrad) accumulate(*pb, linalg::matmulAtB(pa->value, self.grad));
  }));
}

Tensor matmulConstLeft(const Mat& a, const Tensor& b) {
  if (tlInferenceDepth > 0) return wrap(makeValueNode(linalg::matmul(a, b.value())));
  auto pb = b.node();
  return wrap(makeNode(linalg::matmul(a, b.value()), {pb}, [pb, a](Node& self) {
    accumulate(*pb, linalg::matmulAtB(a, self.grad));
  }));
}

Tensor matmulBlockDiagConstLeft(const Mat& block, std::size_t repeat, const Tensor& b) {
  const std::size_t n = block.rows();
  if (block.cols() != n)
    throw std::invalid_argument("matmulBlockDiagConstLeft: block must be square");
  if (b.rows() != repeat * n)
    throw std::invalid_argument("matmulBlockDiagConstLeft: row count mismatch");
  const std::size_t m = b.cols();
  auto applyBlocks = [n, m, repeat](const Mat& blk, const Mat& x) {
    Mat y(repeat * n, m);
    const double* xp = x.data();
    double* yp = y.data();
    for (std::size_t g = 0; g < repeat; ++g)
      for (std::size_t r = 0; r < n; ++r) {
        double* yrow = yp + (g * n + r) * m;
        for (std::size_t k = 0; k < n; ++k) {
          const double w = blk(r, k);
          if (w == 0.0) continue;  // adjacency blocks are sparse
          const double* xrow = xp + (g * n + k) * m;
          for (std::size_t c = 0; c < m; ++c) yrow[c] += w * xrow[c];
        }
      }
    return y;
  };
  if (tlInferenceDepth > 0) return wrap(makeValueNode(applyBlocks(block, b.value())));
  auto pb = b.node();
  Mat blockT = block.transposed();
  return wrap(makeNode(applyBlocks(block, b.value()), {pb},
                       [pb, blockT, applyBlocks](Node& self) {
                         accumulate(*pb, applyBlocks(blockT, self.grad));
                       }));
}

Tensor matmulBlocks(const Tensor& a, const Tensor& b, std::size_t blocks) {
  if (blocks == 0 || a.rows() % blocks != 0 || b.rows() % blocks != 0)
    throw std::invalid_argument("matmulBlocks: rows must divide into blocks");
  const std::size_t r = a.rows() / blocks;
  const std::size_t k = b.rows() / blocks;
  const std::size_t m = b.cols();
  if (a.cols() != k) throw std::invalid_argument("matmulBlocks: inner dim mismatch");
  auto pa = a.node(), pb = b.node();
  Mat out(blocks * r, m);
  {
    const double* bpv = pb->value.data();
    double* op = out.data();
    for (std::size_t g = 0; g < blocks; ++g)
      for (std::size_t i = 0; i < r; ++i) {
        double* orow = op + (g * r + i) * m;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const double aik = pa->value(g * r + i, kk);
          if (aik == 0.0) continue;
          const double* brow = bpv + (g * k + kk) * m;
          for (std::size_t j = 0; j < m; ++j) orow[j] += aik * brow[j];
        }
      }
  }
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb, blocks, r, k, m](Node& self) {
    // da_g += dout_g * b_g^T ; db_g += a_g^T * dout_g, per block. da rows
    // are dot products of contiguous grad/b rows; db accumulates row-saxpy
    // style like matmulAtB. Both sum over the same ascending index order as
    // the plain per-element formulation.
    Mat da(pa->value.rows(), pa->value.cols());
    Mat db(pb->value.rows(), pb->value.cols());
    const double* av = pa->value.data();
    const double* bv = pb->value.data();
    const double* gv = self.grad.data();
    double* dav = da.data();
    double* dbv = db.data();
    for (std::size_t g = 0; g < blocks; ++g)
      for (std::size_t i = 0; i < r; ++i) {
        const double* grow = gv + (g * r + i) * m;
        const double* arow = av + (g * r + i) * k;
        double* darow = dav + (g * r + i) * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const double* brow = bv + (g * k + kk) * m;
          double acc = 0.0;
          for (std::size_t j = 0; j < m; ++j) acc += grow[j] * brow[j];
          darow[kk] = acc;
          const double aik = arow[kk];
          if (aik == 0.0) continue;
          double* dbrow = dbv + (g * k + kk) * m;
          for (std::size_t j = 0; j < m; ++j) dbrow[j] += aik * grow[j];
        }
      }
    accumulate(*pa, std::move(da));
    accumulate(*pb, std::move(db));
  }));
}

Tensor add(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "add");
  auto pa = a.node(), pb = b.node();
  return wrap(makeNode(a.value() + b.value(), {pa, pb}, [pa, pb](Node& self) {
    accumulate(*pa, self.grad);
    accumulate(*pb, self.grad);
  }));
}

Tensor addRowBroadcast(const Tensor& a, const Tensor& row) {
  if (row.rows() != 1 || row.cols() != a.cols())
    throw std::invalid_argument("addRowBroadcast: bias shape mismatch");
  auto pa = a.node(), pr = row.node();
  Mat out = a.value();
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += row.value()(0, c);
  return wrap(makeNode(std::move(out), {pa, pr}, [pa, pr](Node& self) {
    accumulate(*pa, self.grad);
    Mat rowGrad(1, self.grad.cols());
    for (std::size_t r = 0; r < self.grad.rows(); ++r)
      for (std::size_t c = 0; c < self.grad.cols(); ++c) rowGrad(0, c) += self.grad(r, c);
    accumulate(*pr, rowGrad);
  }));
}

Tensor sub(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "sub");
  auto pa = a.node(), pb = b.node();
  return wrap(makeNode(a.value() - b.value(), {pa, pb}, [pa, pb](Node& self) {
    accumulate(*pa, self.grad);
    accumulate(*pb, self.grad * -1.0);
  }));
}

Tensor mul(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "mul");
  auto pa = a.node(), pb = b.node();
  Mat out = a.value();
  for (std::size_t i = 0; i < out.raw().size(); ++i) out.raw()[i] *= b.value().raw()[i];
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    Mat da = self.grad, db = self.grad;
    for (std::size_t i = 0; i < da.raw().size(); ++i) {
      da.raw()[i] *= pb->value.raw()[i];
      db.raw()[i] *= pa->value.raw()[i];
    }
    accumulate(*pa, std::move(da));
    accumulate(*pb, std::move(db));
  }));
}

Tensor scale(const Tensor& a, double s) {
  auto pa = a.node();
  return wrap(makeNode(a.value() * s, {pa}, [pa, s](Node& self) {
    accumulate(*pa, self.grad * s);
  }));
}

Tensor addScalar(const Tensor& a, double s) {
  auto pa = a.node();
  Mat out = a.value();
  for (auto& v : out.raw()) v += s;
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    accumulate(*pa, self.grad);
  }));
}

Tensor addConst(const Tensor& a, const Mat& c) {
  if (!a.value().sameShape(c)) throw std::invalid_argument("addConst: shape mismatch");
  auto pa = a.node();
  return wrap(makeNode(a.value() + c, {pa}, [pa](Node& self) {
    accumulate(*pa, self.grad);
  }));
}

Tensor tanhT(const Tensor& a) {
  return pointwise(a, [](double v) { return std::tanh(v); },
                   [](double, double y) { return 1.0 - y * y; });
}

Tensor relu(const Tensor& a) {
  return pointwise(a, [](double v) { return v > 0.0 ? v : 0.0; },
                   [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Tensor leakyRelu(const Tensor& a, double slope) {
  return pointwise(a, [slope](double v) { return v > 0.0 ? v : slope * v; },
                   [slope](double x, double) { return x > 0.0 ? 1.0 : slope; });
}

Tensor sigmoid(const Tensor& a) {
  return pointwise(a, [](double v) { return 1.0 / (1.0 + std::exp(-v)); },
                   [](double, double y) { return y * (1.0 - y); });
}

Tensor expT(const Tensor& a) {
  return pointwise(a, [](double v) { return std::exp(v); },
                   [](double, double y) { return y; });
}

Tensor logT(const Tensor& a, double eps) {
  return pointwise(a, [eps](double v) { return std::log(std::max(v, eps)); },
                   [eps](double x, double) { return 1.0 / std::max(x, eps); });
}

Tensor minT(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "minT");
  auto pa = a.node(), pb = b.node();
  Mat out = a.value();
  for (std::size_t i = 0; i < out.raw().size(); ++i)
    out.raw()[i] = std::min(out.raw()[i], b.value().raw()[i]);
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    Mat da(self.grad.rows(), self.grad.cols());
    Mat db(self.grad.rows(), self.grad.cols());
    for (std::size_t i = 0; i < self.grad.raw().size(); ++i) {
      if (pa->value.raw()[i] <= pb->value.raw()[i])
        da.raw()[i] = self.grad.raw()[i];
      else
        db.raw()[i] = self.grad.raw()[i];
    }
    accumulate(*pa, std::move(da));
    accumulate(*pb, std::move(db));
  }));
}

Tensor clampT(const Tensor& a, double lo, double hi) {
  return pointwise(a, [lo, hi](double v) { return std::clamp(v, lo, hi); },
                   [lo, hi](double x, double) { return (x > lo && x < hi) ? 1.0 : 0.0; });
}

Tensor softmaxRows(const Tensor& a) {
  auto pa = a.node();
  Mat out = a.value();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double mx = out(r, 0);
    for (std::size_t c = 1; c < out.cols(); ++c) mx = std::max(mx, out(r, c));
    double total = 0.0;
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = std::exp(out(r, c) - mx);
      total += out(r, c);
    }
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) /= total;
  }
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    // dx_rc = y_rc * (dout_rc - sum_k dout_rk y_rk) per row.
    Mat delta(self.value.rows(), self.value.cols());
    for (std::size_t r = 0; r < self.value.rows(); ++r) {
      double dotProd = 0.0;
      for (std::size_t c = 0; c < self.value.cols(); ++c)
        dotProd += self.grad(r, c) * self.value(r, c);
      for (std::size_t c = 0; c < self.value.cols(); ++c)
        delta(r, c) = self.value(r, c) * (self.grad(r, c) - dotProd);
    }
    accumulate(*pa, std::move(delta));
  }));
}

Tensor logSoftmaxRows(const Tensor& a) {
  auto pa = a.node();
  Mat out = a.value();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double mx = out(r, 0);
    for (std::size_t c = 1; c < out.cols(); ++c) mx = std::max(mx, out(r, c));
    double total = 0.0;
    for (std::size_t c = 0; c < out.cols(); ++c) total += std::exp(out(r, c) - mx);
    const double lse = mx + std::log(total);
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) -= lse;
  }
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    // dx_rc = dout_rc - softmax_rc * sum_k dout_rk.
    Mat delta(self.value.rows(), self.value.cols());
    for (std::size_t r = 0; r < self.value.rows(); ++r) {
      double rowSum = 0.0;
      for (std::size_t c = 0; c < self.value.cols(); ++c) rowSum += self.grad(r, c);
      for (std::size_t c = 0; c < self.value.cols(); ++c)
        delta(r, c) = self.grad(r, c) - std::exp(self.value(r, c)) * rowSum;
    }
    accumulate(*pa, std::move(delta));
  }));
}

Tensor sum(const Tensor& a) {
  auto pa = a.node();
  double s = 0.0;
  for (double v : a.value().raw()) s += v;
  return wrap(makeNode(Mat(1, 1, s), {pa}, [pa](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols(), self.grad(0, 0));
    accumulate(*pa, std::move(delta));
  }));
}

Tensor mean(const Tensor& a) {
  const double n = static_cast<double>(a.value().size());
  return scale(sum(a), 1.0 / n);
}

Tensor meanRows(const Tensor& a) {
  auto pa = a.node();
  const double n = static_cast<double>(a.rows());
  Mat out(1, a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(0, c) += a.value()(r, c) / n;
  return wrap(makeNode(std::move(out), {pa}, [pa, n](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r)
      for (std::size_t c = 0; c < delta.cols(); ++c) delta(r, c) = self.grad(0, c) / n;
    accumulate(*pa, std::move(delta));
  }));
}

Tensor sumRows(const Tensor& a) {
  auto pa = a.node();
  Mat out(a.rows(), 1);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, 0) += a.value()(r, c);
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r)
      for (std::size_t c = 0; c < delta.cols(); ++c) delta(r, c) = self.grad(r, 0);
    accumulate(*pa, std::move(delta));
  }));
}

Tensor meanPoolGroups(const Tensor& a, std::size_t groups) {
  if (groups == 0 || a.rows() % groups != 0)
    throw std::invalid_argument("meanPoolGroups: rows must divide into groups");
  const std::size_t g = a.rows() / groups;
  const double invG = 1.0 / static_cast<double>(g);
  auto pa = a.node();
  Mat out(groups, a.cols());
  for (std::size_t k = 0; k < groups; ++k)
    for (std::size_t r = 0; r < g; ++r)
      for (std::size_t c = 0; c < a.cols(); ++c)
        out(k, c) += a.value()(k * g + r, c) * invG;
  return wrap(makeNode(std::move(out), {pa}, [pa, g, invG](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    for (std::size_t k = 0; k < self.grad.rows(); ++k)
      for (std::size_t r = 0; r < g; ++r)
        for (std::size_t c = 0; c < delta.cols(); ++c)
          delta(k * g + r, c) = self.grad(k, c) * invG;
    accumulate(*pa, std::move(delta));
  }));
}

Tensor transpose(const Tensor& a) {
  auto pa = a.node();
  return wrap(makeNode(a.value().transposed(), {pa}, [pa](Node& self) {
    accumulate(*pa, self.grad.transposed());
  }));
}

Tensor concatCols(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("concatCols: row mismatch");
  auto pa = a.node(), pb = b.node();
  Mat out(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a.value()(r, c);
    for (std::size_t c = 0; c < b.cols(); ++c) out(r, a.cols() + c) = b.value()(r, c);
  }
  const std::size_t aCols = a.cols();
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb, aCols](Node& self) {
    Mat da(pa->value.rows(), pa->value.cols());
    Mat db(pb->value.rows(), pb->value.cols());
    for (std::size_t r = 0; r < self.grad.rows(); ++r) {
      for (std::size_t c = 0; c < aCols; ++c) da(r, c) = self.grad(r, c);
      for (std::size_t c = 0; c < db.cols(); ++c) db(r, c) = self.grad(r, aCols + c);
    }
    accumulate(*pa, std::move(da));
    accumulate(*pb, std::move(db));
  }));
}

Tensor concatRows(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("concatRows: column mismatch");
  auto pa = a.node(), pb = b.node();
  Mat out(a.rows() + b.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a.value()(r, c);
  for (std::size_t r = 0; r < b.rows(); ++r)
    for (std::size_t c = 0; c < b.cols(); ++c) out(a.rows() + r, c) = b.value()(r, c);
  const std::size_t aRows = a.rows();
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb, aRows](Node& self) {
    Mat da(pa->value.rows(), pa->value.cols());
    Mat db(pb->value.rows(), pb->value.cols());
    for (std::size_t r = 0; r < aRows; ++r)
      for (std::size_t c = 0; c < da.cols(); ++c) da(r, c) = self.grad(r, c);
    for (std::size_t r = 0; r < db.rows(); ++r)
      for (std::size_t c = 0; c < db.cols(); ++c) db(r, c) = self.grad(aRows + r, c);
    accumulate(*pa, std::move(da));
    accumulate(*pb, std::move(db));
  }));
}

Tensor concatRowsAll(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concatRowsAll: empty input");
  std::size_t totalRows = 0;
  const std::size_t cols = parts.front().cols();
  for (const Tensor& p : parts) {
    if (p.cols() != cols) throw std::invalid_argument("concatRowsAll: column mismatch");
    totalRows += p.rows();
  }
  Mat out(totalRows, cols);
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(parts.size());
  std::size_t row = 0;
  for (const Tensor& p : parts) {
    for (std::size_t r = 0; r < p.rows(); ++r)
      for (std::size_t c = 0; c < cols; ++c) out(row + r, c) = p.value()(r, c);
    row += p.rows();
    parents.push_back(p.node());
  }
  return wrap(makeNode(std::move(out), std::move(parents), [](Node& self) {
    std::size_t begin = 0;
    for (const auto& parent : self.parents) {
      const std::size_t rows = parent->value.rows();
      if (parent->requiresGrad) {
        Mat delta(rows, parent->value.cols());
        for (std::size_t r = 0; r < rows; ++r)
          for (std::size_t c = 0; c < delta.cols(); ++c)
            delta(r, c) = self.grad(begin + r, c);
        accumulate(*parent, std::move(delta));
      }
      begin += rows;
    }
  }));
}

Tensor gatherPerRow(const Tensor& a, const std::vector<int>& idx) {
  if (idx.size() != a.rows()) throw std::invalid_argument("gatherPerRow: index count");
  auto pa = a.node();
  Mat out(a.rows(), 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    int c = idx[r];
    if (c < 0 || static_cast<std::size_t>(c) >= a.cols())
      throw std::out_of_range("gatherPerRow: index out of range");
    out(r, 0) = a.value()(r, static_cast<std::size_t>(c));
  }
  return wrap(makeNode(std::move(out), {pa}, [pa, idx](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r)
      delta(r, static_cast<std::size_t>(idx[r])) = self.grad(r, 0);
    accumulate(*pa, std::move(delta));
  }));
}

Tensor sliceRows(const Tensor& a, std::size_t begin, std::size_t count) {
  if (begin + count > a.rows()) throw std::out_of_range("sliceRows: out of range");
  auto pa = a.node();
  Mat out(count, a.cols());
  for (std::size_t r = 0; r < count; ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a.value()(begin + r, c);
  return wrap(makeNode(std::move(out), {pa}, [pa, begin, count](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < count; ++r)
      for (std::size_t c = 0; c < delta.cols(); ++c)
        delta(begin + r, c) = self.grad(r, c);
    accumulate(*pa, std::move(delta));
  }));
}

Tensor repeatRows(const Tensor& a, std::size_t times) {
  if (times == 0) throw std::invalid_argument("repeatRows: times must be positive");
  auto pa = a.node();
  Mat out(a.rows() * times, a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t t = 0; t < times; ++t)
      for (std::size_t c = 0; c < a.cols(); ++c)
        out(r * times + t, c) = a.value()(r, c);
  return wrap(makeNode(std::move(out), {pa}, [pa, times](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r)
      for (std::size_t t = 0; t < times; ++t)
        for (std::size_t c = 0; c < delta.cols(); ++c)
          delta(r, c) += self.grad(r * times + t, c);
    accumulate(*pa, std::move(delta));
  }));
}

Tensor reshape(const Tensor& a, std::size_t rows, std::size_t cols) {
  if (rows * cols != a.value().size())
    throw std::invalid_argument("reshape: element count mismatch");
  auto pa = a.node();
  Mat out(rows, cols);
  out.raw() = a.value().raw();
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    delta.raw() = self.grad.raw();
    accumulate(*pa, std::move(delta));
  }));
}

}  // namespace crl::nn
