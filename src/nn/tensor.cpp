#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crl::nn {

namespace {
using detail::Node;

thread_local int tlInferenceDepth = 0;

// The backward callable is taken as a template parameter so the std::function
// (and its heap allocation) is only materialized when the graph is actually
// recorded — in inference mode ops pay for the value computation alone.
template <typename F>
std::shared_ptr<Node> makeNode(Mat value, std::vector<std::shared_ptr<Node>> parents,
                               F&& backward) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  if (tlInferenceDepth > 0) return n;
  bool needsGrad = false;
  for (const auto& p : parents) needsGrad = needsGrad || p->requiresGrad;
  n->requiresGrad = needsGrad;
  if (needsGrad) {
    n->parents = std::move(parents);
    n->backward = std::forward<F>(backward);
  }
  return n;
}

Tensor wrap(std::shared_ptr<Node> n) { return Tensor(std::move(n)); }

/// Inference-mode node: value only, no graph.
std::shared_ptr<Node> makeValueNode(Mat value) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  return n;
}

void accumulate(Node& target, const Mat& delta) {
  if (!target.requiresGrad) return;
  target.ensureGrad();
  target.grad += delta;
}

void checkSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
}

/// Pointwise unary op helper: value = f(a), backward: da += dfda .* dout.
template <typename F, typename DF>
Tensor pointwise(const Tensor& a, F f, DF dfda) {
  Mat out = a.value();
  for (auto& v : out.raw()) v = f(v);
  if (tlInferenceDepth > 0) return wrap(makeValueNode(std::move(out)));
  auto pa = a.node();
  Mat in = a.value();
  return wrap(makeNode(std::move(out), {pa}, [pa, in, dfda](Node& self) {
    Mat delta(in.rows(), in.cols());
    for (std::size_t i = 0; i < in.raw().size(); ++i)
      delta.raw()[i] = dfda(in.raw()[i], self.value.raw()[i]) * self.grad.raw()[i];
    accumulate(*pa, delta);
  }));
}
}  // namespace

Tensor::Tensor(Mat value, bool requiresGrad) {
  node_ = std::make_shared<detail::Node>();
  node_->value = std::move(value);
  node_->requiresGrad = requiresGrad;
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols, bool requiresGrad) {
  return Tensor(Mat(rows, cols), requiresGrad);
}

Tensor Tensor::scalar(double v) { return Tensor(Mat(1, 1, v)); }

Tensor Tensor::row(const std::vector<double>& v) {
  Mat m(1, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) m(0, i) = v[i];
  return Tensor(std::move(m));
}

Tensor Tensor::xavier(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Mat m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.raw()) v = rng.uniform(-bound, bound);
  return Tensor(std::move(m), /*requiresGrad=*/true);
}

double Tensor::item() const {
  if (rows() != 1 || cols() != 1) throw std::logic_error("Tensor::item: not scalar");
  return node_->value(0, 0);
}

void Tensor::zeroGrad() {
  if (node_) {
    node_->ensureGrad();
    node_->grad.fill(0.0);
  }
}

NoGradGuard::NoGradGuard() { ++tlInferenceDepth; }
NoGradGuard::~NoGradGuard() { --tlInferenceDepth; }

bool inferenceMode() { return tlInferenceDepth > 0; }

void backward(const Tensor& root) {
  if (root.rows() != 1 || root.cols() != 1)
    throw std::invalid_argument("backward: root must be scalar");
  if (!root.requiresGrad()) return;

  // Iterative topological sort (graphs can be deep for long episodes).
  std::vector<Node*> order;
  std::vector<Node*> stack{root.node().get()};
  while (!stack.empty()) {
    Node* n = stack.back();
    if (n->visitMark == 2) {
      stack.pop_back();
      continue;
    }
    if (n->visitMark == 1) {
      n->visitMark = 2;
      order.push_back(n);
      stack.pop_back();
      continue;
    }
    n->visitMark = 1;
    for (const auto& p : n->parents)
      if (p->requiresGrad && p->visitMark == 0) stack.push_back(p.get());
  }

  for (Node* n : order) {
    n->ensureGrad();
    n->visitMark = 0;  // reset for future passes
  }
  root.node()->grad(0, 0) = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward) (*it)->backward(**it);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  auto pa = a.node(), pb = b.node();
  Mat out = linalg::matmul(a.value(), b.value());
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    // dA += dOut * B^T ; dB += A^T * dOut.
    accumulate(*pa, linalg::matmul(self.grad, pb->value.transposed()));
    accumulate(*pb, linalg::matmul(pa->value.transposed(), self.grad));
  }));
}

Tensor matmulConstLeft(const Mat& a, const Tensor& b) {
  if (tlInferenceDepth > 0) return wrap(makeValueNode(linalg::matmul(a, b.value())));
  auto pb = b.node();
  Mat aT = a.transposed();
  return wrap(makeNode(linalg::matmul(a, b.value()), {pb}, [pb, aT](Node& self) {
    accumulate(*pb, linalg::matmul(aT, self.grad));
  }));
}

Tensor add(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "add");
  auto pa = a.node(), pb = b.node();
  return wrap(makeNode(a.value() + b.value(), {pa, pb}, [pa, pb](Node& self) {
    accumulate(*pa, self.grad);
    accumulate(*pb, self.grad);
  }));
}

Tensor addRowBroadcast(const Tensor& a, const Tensor& row) {
  if (row.rows() != 1 || row.cols() != a.cols())
    throw std::invalid_argument("addRowBroadcast: bias shape mismatch");
  auto pa = a.node(), pr = row.node();
  Mat out = a.value();
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += row.value()(0, c);
  return wrap(makeNode(std::move(out), {pa, pr}, [pa, pr](Node& self) {
    accumulate(*pa, self.grad);
    Mat rowGrad(1, self.grad.cols());
    for (std::size_t r = 0; r < self.grad.rows(); ++r)
      for (std::size_t c = 0; c < self.grad.cols(); ++c) rowGrad(0, c) += self.grad(r, c);
    accumulate(*pr, rowGrad);
  }));
}

Tensor sub(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "sub");
  auto pa = a.node(), pb = b.node();
  return wrap(makeNode(a.value() - b.value(), {pa, pb}, [pa, pb](Node& self) {
    accumulate(*pa, self.grad);
    accumulate(*pb, self.grad * -1.0);
  }));
}

Tensor mul(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "mul");
  auto pa = a.node(), pb = b.node();
  Mat out = a.value();
  for (std::size_t i = 0; i < out.raw().size(); ++i) out.raw()[i] *= b.value().raw()[i];
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    Mat da = self.grad, db = self.grad;
    for (std::size_t i = 0; i < da.raw().size(); ++i) {
      da.raw()[i] *= pb->value.raw()[i];
      db.raw()[i] *= pa->value.raw()[i];
    }
    accumulate(*pa, da);
    accumulate(*pb, db);
  }));
}

Tensor scale(const Tensor& a, double s) {
  auto pa = a.node();
  return wrap(makeNode(a.value() * s, {pa}, [pa, s](Node& self) {
    accumulate(*pa, self.grad * s);
  }));
}

Tensor addScalar(const Tensor& a, double s) {
  auto pa = a.node();
  Mat out = a.value();
  for (auto& v : out.raw()) v += s;
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    accumulate(*pa, self.grad);
  }));
}

Tensor addConst(const Tensor& a, const Mat& c) {
  if (!a.value().sameShape(c)) throw std::invalid_argument("addConst: shape mismatch");
  auto pa = a.node();
  return wrap(makeNode(a.value() + c, {pa}, [pa](Node& self) {
    accumulate(*pa, self.grad);
  }));
}

Tensor tanhT(const Tensor& a) {
  return pointwise(a, [](double v) { return std::tanh(v); },
                   [](double, double y) { return 1.0 - y * y; });
}

Tensor relu(const Tensor& a) {
  return pointwise(a, [](double v) { return v > 0.0 ? v : 0.0; },
                   [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Tensor leakyRelu(const Tensor& a, double slope) {
  return pointwise(a, [slope](double v) { return v > 0.0 ? v : slope * v; },
                   [slope](double x, double) { return x > 0.0 ? 1.0 : slope; });
}

Tensor sigmoid(const Tensor& a) {
  return pointwise(a, [](double v) { return 1.0 / (1.0 + std::exp(-v)); },
                   [](double, double y) { return y * (1.0 - y); });
}

Tensor expT(const Tensor& a) {
  return pointwise(a, [](double v) { return std::exp(v); },
                   [](double, double y) { return y; });
}

Tensor logT(const Tensor& a, double eps) {
  return pointwise(a, [eps](double v) { return std::log(std::max(v, eps)); },
                   [eps](double x, double) { return 1.0 / std::max(x, eps); });
}

Tensor minT(const Tensor& a, const Tensor& b) {
  checkSameShape(a, b, "minT");
  auto pa = a.node(), pb = b.node();
  Mat out = a.value();
  for (std::size_t i = 0; i < out.raw().size(); ++i)
    out.raw()[i] = std::min(out.raw()[i], b.value().raw()[i]);
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb](Node& self) {
    Mat da(self.grad.rows(), self.grad.cols());
    Mat db(self.grad.rows(), self.grad.cols());
    for (std::size_t i = 0; i < self.grad.raw().size(); ++i) {
      if (pa->value.raw()[i] <= pb->value.raw()[i])
        da.raw()[i] = self.grad.raw()[i];
      else
        db.raw()[i] = self.grad.raw()[i];
    }
    accumulate(*pa, da);
    accumulate(*pb, db);
  }));
}

Tensor clampT(const Tensor& a, double lo, double hi) {
  return pointwise(a, [lo, hi](double v) { return std::clamp(v, lo, hi); },
                   [lo, hi](double x, double) { return (x > lo && x < hi) ? 1.0 : 0.0; });
}

Tensor softmaxRows(const Tensor& a) {
  auto pa = a.node();
  Mat out = a.value();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double mx = out(r, 0);
    for (std::size_t c = 1; c < out.cols(); ++c) mx = std::max(mx, out(r, c));
    double total = 0.0;
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = std::exp(out(r, c) - mx);
      total += out(r, c);
    }
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) /= total;
  }
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    // dx_rc = y_rc * (dout_rc - sum_k dout_rk y_rk) per row.
    Mat delta(self.value.rows(), self.value.cols());
    for (std::size_t r = 0; r < self.value.rows(); ++r) {
      double dotProd = 0.0;
      for (std::size_t c = 0; c < self.value.cols(); ++c)
        dotProd += self.grad(r, c) * self.value(r, c);
      for (std::size_t c = 0; c < self.value.cols(); ++c)
        delta(r, c) = self.value(r, c) * (self.grad(r, c) - dotProd);
    }
    accumulate(*pa, delta);
  }));
}

Tensor logSoftmaxRows(const Tensor& a) {
  auto pa = a.node();
  Mat out = a.value();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double mx = out(r, 0);
    for (std::size_t c = 1; c < out.cols(); ++c) mx = std::max(mx, out(r, c));
    double total = 0.0;
    for (std::size_t c = 0; c < out.cols(); ++c) total += std::exp(out(r, c) - mx);
    const double lse = mx + std::log(total);
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) -= lse;
  }
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    // dx_rc = dout_rc - softmax_rc * sum_k dout_rk.
    Mat delta(self.value.rows(), self.value.cols());
    for (std::size_t r = 0; r < self.value.rows(); ++r) {
      double rowSum = 0.0;
      for (std::size_t c = 0; c < self.value.cols(); ++c) rowSum += self.grad(r, c);
      for (std::size_t c = 0; c < self.value.cols(); ++c)
        delta(r, c) = self.grad(r, c) - std::exp(self.value(r, c)) * rowSum;
    }
    accumulate(*pa, delta);
  }));
}

Tensor sum(const Tensor& a) {
  auto pa = a.node();
  double s = 0.0;
  for (double v : a.value().raw()) s += v;
  return wrap(makeNode(Mat(1, 1, s), {pa}, [pa](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols(), self.grad(0, 0));
    accumulate(*pa, delta);
  }));
}

Tensor mean(const Tensor& a) {
  const double n = static_cast<double>(a.value().size());
  return scale(sum(a), 1.0 / n);
}

Tensor meanRows(const Tensor& a) {
  auto pa = a.node();
  const double n = static_cast<double>(a.rows());
  Mat out(1, a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(0, c) += a.value()(r, c) / n;
  return wrap(makeNode(std::move(out), {pa}, [pa, n](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r)
      for (std::size_t c = 0; c < delta.cols(); ++c) delta(r, c) = self.grad(0, c) / n;
    accumulate(*pa, delta);
  }));
}

Tensor transpose(const Tensor& a) {
  auto pa = a.node();
  return wrap(makeNode(a.value().transposed(), {pa}, [pa](Node& self) {
    accumulate(*pa, self.grad.transposed());
  }));
}

Tensor concatCols(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("concatCols: row mismatch");
  auto pa = a.node(), pb = b.node();
  Mat out(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a.value()(r, c);
    for (std::size_t c = 0; c < b.cols(); ++c) out(r, a.cols() + c) = b.value()(r, c);
  }
  const std::size_t aCols = a.cols();
  return wrap(makeNode(std::move(out), {pa, pb}, [pa, pb, aCols](Node& self) {
    Mat da(pa->value.rows(), pa->value.cols());
    Mat db(pb->value.rows(), pb->value.cols());
    for (std::size_t r = 0; r < self.grad.rows(); ++r) {
      for (std::size_t c = 0; c < aCols; ++c) da(r, c) = self.grad(r, c);
      for (std::size_t c = 0; c < db.cols(); ++c) db(r, c) = self.grad(r, aCols + c);
    }
    accumulate(*pa, da);
    accumulate(*pb, db);
  }));
}

Tensor gatherPerRow(const Tensor& a, const std::vector<int>& idx) {
  if (idx.size() != a.rows()) throw std::invalid_argument("gatherPerRow: index count");
  auto pa = a.node();
  Mat out(a.rows(), 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    int c = idx[r];
    if (c < 0 || static_cast<std::size_t>(c) >= a.cols())
      throw std::out_of_range("gatherPerRow: index out of range");
    out(r, 0) = a.value()(r, static_cast<std::size_t>(c));
  }
  return wrap(makeNode(std::move(out), {pa}, [pa, idx](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r)
      delta(r, static_cast<std::size_t>(idx[r])) = self.grad(r, 0);
    accumulate(*pa, delta);
  }));
}

Tensor sliceRows(const Tensor& a, std::size_t begin, std::size_t count) {
  if (begin + count > a.rows()) throw std::out_of_range("sliceRows: out of range");
  auto pa = a.node();
  Mat out(count, a.cols());
  for (std::size_t r = 0; r < count; ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a.value()(begin + r, c);
  return wrap(makeNode(std::move(out), {pa}, [pa, begin, count](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    for (std::size_t r = 0; r < count; ++r)
      for (std::size_t c = 0; c < delta.cols(); ++c)
        delta(begin + r, c) = self.grad(r, c);
    accumulate(*pa, delta);
  }));
}

Tensor reshape(const Tensor& a, std::size_t rows, std::size_t cols) {
  if (rows * cols != a.value().size())
    throw std::invalid_argument("reshape: element count mismatch");
  auto pa = a.node();
  Mat out(rows, cols);
  out.raw() = a.value().raw();
  return wrap(makeNode(std::move(out), {pa}, [pa](Node& self) {
    Mat delta(pa->value.rows(), pa->value.cols());
    delta.raw() = self.grad.raw();
    accumulate(*pa, delta);
  }));
}

}  // namespace crl::nn
