#include "nn/arena.h"

namespace crl::nn {

namespace {
thread_local GraphArena* tlArena = nullptr;
}  // namespace

struct GraphArena::NodeSlab {
  static constexpr std::size_t kNodes = 256;
  alignas(detail::Node) unsigned char storage[kNodes * sizeof(detail::Node)];

  detail::Node* at(std::size_t i) {
    return reinterpret_cast<detail::Node*>(storage + i * sizeof(detail::Node));
  }
};

std::shared_ptr<detail::Node> GraphArena::allocateNode() {
  const std::size_t slab = used_ / NodeSlab::kNodes;
  const std::size_t offset = used_ % NodeSlab::kNodes;
  if (slab == slabs_.size()) slabs_.push_back(std::make_shared<NodeSlab>());
  detail::Node* n = new (slabs_[slab]->at(offset)) detail::Node();
  ++used_;
  // Aliasing constructor: the handle shares the slab's control block, so no
  // per-node allocation happens and outstanding handles keep the slab's raw
  // memory alive even across reset()/arena destruction.
  return std::shared_ptr<detail::Node>(slabs_[slab], n);
}

linalg::Mat GraphArena::acquireMat(std::size_t rows, std::size_t cols, bool zeroed) {
  const std::size_t n = rows * cols;
  auto it = pool_.find(n);
  if (it != pool_.end() && !it->second.empty()) {
    std::vector<double> buf = std::move(it->second.back());
    it->second.pop_back();
    if (zeroed)
      buf.assign(n, 0.0);
    else
      buf.resize(n);
    ++poolHits_;
    return linalg::Mat(rows, cols, std::move(buf));
  }
  ++poolMisses_;
  return linalg::Mat(rows, cols);
}

void GraphArena::reclaimMat(linalg::Mat&& m) {
  std::vector<double> buf = std::move(m.raw());
  if (buf.capacity() == 0) return;
  pool_[buf.capacity()].push_back(std::move(buf));
}

void GraphArena::reset() {
  for (std::size_t i = 0; i < used_; ++i) {
    detail::Node* n = slabs_[i / NodeSlab::kNodes]->at(i % NodeSlab::kNodes);
    reclaimMat(std::move(n->value));
    reclaimMat(std::move(n->grad));
    reclaimMat(std::move(n->ctx));
    n->~Node();
  }
  used_ = 0;
}

std::size_t GraphArena::pooledBuffers() const {
  std::size_t total = 0;
  for (const auto& [size, bucket] : pool_) total += bucket.size();
  return total;
}

ArenaScope::ArenaScope(GraphArena& arena) : prev_(tlArena) { tlArena = &arena; }
ArenaScope::~ArenaScope() { tlArena = prev_; }

GraphArena* activeArena() { return tlArena; }

linalg::Mat pooledMat(std::size_t rows, std::size_t cols) {
  if (tlArena && !inferenceMode()) return tlArena->acquireMat(rows, cols);
  return linalg::Mat(rows, cols);
}

void reclaimPooledMat(linalg::Mat&& m) {
  if (tlArena && !inferenceMode()) tlArena->reclaimMat(std::move(m));
}

}  // namespace crl::nn
