#pragma once
// String helpers shared by netlist printing and harness output.

#include <string>
#include <vector>

namespace crl::util {

std::vector<std::string> split(const std::string& s, char delim);
std::string join(const std::vector<std::string>& parts, const std::string& sep);
std::string toLower(std::string s);
bool startsWith(const std::string& s, const std::string& prefix);
/// Engineering-notation formatting, e.g. 4.7e-12 -> "4.7p".
std::string engFormat(double value, int significant = 3);

}  // namespace crl::util
