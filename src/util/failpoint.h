#pragma once
// Deterministic fault-injection registry ("failpoints").
//
// Production code marks the places where reality can fail — a rename that
// can hit ENOSPC, a Newton loop that can diverge, a pooled task that can
// throw — with a named site:
//
//   if (auto h = util::failpoint::check("io.rename")) { ...inject... }
//
// Normally every site is disarmed and check() is one relaxed atomic load
// plus a predicted branch (the "zero overhead when off" contract;
// bench_failpoint_overhead pins it below 1% on a SPICE hot loop). A chaos
// run arms sites through the CRL_FAILPOINTS environment variable, e.g.
//
//   CRL_FAILPOINTS="io.rename=enospc@3;spice.dc.newton=diverge@0.02:seed7;
//                   pool.task=throw@once;train.loss=nan@always#ota"
//
// Grammar (per ';'-separated entry):
//
//   site '=' action [':' value] ['@' trigger] ['#' scope]
//
//   action   a word the *site* interprets (enospc, shortwrite, torn, fail,
//            diverge, singular, throw, nan, sleep, ...); the registry only
//            transports it. An optional numeric payload rides after ':'
//            (e.g. sleep:50 = 50 ms).
//   trigger  when the site fires:
//              N        fire on the Nth eligible hit only (1-based)
//              once     alias for 1
//              always   every hit (default when '@' is absent)
//              P[:seedS]  Bernoulli(P) per hit, P in (0,1), drawn from a
//                       dedicated mt19937_64 seeded with S (default 0) — the
//                       schedule is reproducible run to run.
//   scope    substring that must appear in the calling thread's failpoint
//            context (see ScopedContext) for the entry to be eligible. The
//            campaign runner tags each worker thread with its job name, so
//            "#ota" targets only jobs with "ota" in their name.
//
// Hit counting is per entry and counts *eligible* hits (site name and scope
// matched), so "@3" means "the 3rd time THIS entry saw its site". Every
// trigger decision is made under the registry lock — chaos schedules are
// deterministic for a fixed thread interleaving, and exactly reproducible
// in single-worker runs.
//
// Sites are instrumentation, not policy: a fired hit only reports the
// action string back; the call site decides what "enospc" or "diverge"
// means there. This keeps the registry free of dependencies on the layers
// it is injected into.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace crl::util::failpoint {

/// A fired injection: the action word and its optional numeric payload.
struct Hit {
  std::string action;
  double value = 0.0;
  bool hasValue = false;
};

namespace detail {
/// Number of armed entries; 0 keeps check() on the fast path. Relaxed is
/// enough: arming happens at process start (env) or in tests, and a stale
/// read during reconfiguration only delays the first injection by one call.
extern std::atomic<int> armedEntries;
std::optional<Hit> checkSlow(std::string_view site);
}  // namespace detail

/// The site gate. Disarmed: one relaxed load + branch, no allocation, no
/// lock. Armed: takes the registry lock, matches entries, advances trigger
/// state deterministically.
inline std::optional<Hit> check(std::string_view site) {
  if (detail::armedEntries.load(std::memory_order_relaxed) == 0)
    return std::nullopt;
  return detail::checkSlow(site);
}

/// True when any entry is armed (tests and benches branch on this).
inline bool anyArmed() {
  return detail::armedEntries.load(std::memory_order_relaxed) != 0;
}

/// Replace the configuration with `spec` (the CRL_FAILPOINTS grammar).
/// Throws std::invalid_argument naming the defect on a malformed spec;
/// the previous configuration stays armed in that case. An empty spec
/// disarms everything.
void configure(const std::string& spec);

/// Disarm every entry and forget all trigger state.
void clear();

/// Eligible hits observed so far, summed over every entry for `site`
/// (0 when the site is not armed). Counts hits, not fires.
std::uint64_t hitCount(std::string_view site);

/// Tag the calling thread (RAII, nestable) for '#' scope filters. The
/// campaign runner wraps each job attempt in its job's name; tests wrap
/// sections they want to target.
class ScopedContext {
 public:
  explicit ScopedContext(std::string_view tag);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  std::size_t restoreLength_;
};

/// The calling thread's joined context ("/tag1/tag2"); empty when untagged.
const std::string& currentContext();

}  // namespace crl::util::failpoint
