#pragma once
// Minimal leveled logger. Benches use it for progress lines; the library
// itself logs only at Debug level so tests stay quiet by default.

#include <sstream>
#include <string>

namespace crl::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Reads CRL_LOG (debug/info/warn/error/off) once at startup if set.
void initLogLevelFromEnv();

void logMessage(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine logDebug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine logInfo() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine logWarn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine logError() { return detail::LogLine(LogLevel::Error); }

}  // namespace crl::util
