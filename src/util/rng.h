#pragma once
// Seeded random number generation used across the library.
//
// Every stochastic component (RL training, GA/BO baselines, spec sampling,
// weight init) takes an explicit Rng so experiments are reproducible per seed.

#include <cstdint>
#include <random>
#include <vector>

namespace crl::util {

/// Deterministic decorrelated substream seed: index 0 keeps `base` itself,
/// later indices are spread with a golden-ratio stride. The one seeding
/// recipe shared by VecEnv rollout lanes and Monte-Carlo sample streams.
inline std::uint64_t substreamSeed(std::uint64_t base, std::uint64_t index) {
  return base + 0x9E3779B97F4A7C15ull * index;
}

/// Thin deterministic wrapper around std::mt19937_64 with the sampling
/// helpers the library needs. Copyable; copying forks the stream state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (mean 0, std 1) scaled/shifted.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int randint(int lo, int hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Sample an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index range [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fork a child RNG with a decorrelated seed (for parallel streams).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace crl::util
