#pragma once
// Seeded random number generation used across the library.
//
// Every stochastic component (RL training, GA/BO baselines, spec sampling,
// weight init) takes an explicit Rng so experiments are reproducible per seed.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace crl::util {

/// Deterministic decorrelated substream seed: index 0 keeps `base` itself,
/// later indices are spread with a golden-ratio stride. The one seeding
/// recipe shared by VecEnv rollout lanes and Monte-Carlo sample streams.
inline std::uint64_t substreamSeed(std::uint64_t base, std::uint64_t index) {
  return base + 0x9E3779B97F4A7C15ull * index;
}

/// Thin deterministic wrapper around std::mt19937_64 with the sampling
/// helpers the library needs.
///
/// Stream-state contract (checkpoint/resume depends on it):
///  * The observable stream is a function of the engine state alone. The
///    member normal_distribution exists so its second-Gaussian cache has an
///    explicit lifecycle: normal() discards it before every draw (keeping
///    the draw bit-identical to a freshly constructed distribution), and
///    copy/assign/fork/restore discard it again defensively — a cached
///    Gaussian smuggled across any of those boundaries would make two
///    "independent" streams emit one correlated sample, or a restored
///    stream diverge from the run it was saved from.
///  * serializeState()/restoreState() round-trip the engine exactly: a
///    restored Rng emits the same uniform/normal/randint/permutation
///    sequence, byte for byte, as the original would have from the moment
///    of the save.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  /// Copying forks the stream state; distribution caches do not travel.
  Rng(const Rng& other) : engine_(other.engine_) {}
  Rng& operator=(const Rng& other) {
    engine_ = other.engine_;
    resetDistributionCaches();
    return *this;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (mean 0, std 1) scaled/shifted.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int randint(int lo, int hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Sample an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index range [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fork a child RNG with a decorrelated seed (for parallel streams).
  Rng fork();

  /// Exact engine-state snapshot as a text token stream (std::mt19937_64's
  /// portable operator<< encoding). Saving has no effect on this stream.
  std::string serializeState() const;

  /// Restore a snapshot taken with serializeState(). Distribution caches are
  /// cleared, so the restored stream is byte-for-byte aligned with the
  /// stream the snapshot was taken from. Returns false (state unchanged) if
  /// the snapshot does not parse.
  bool restoreState(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  void resetDistributionCaches() { normal_.reset(); }

  std::mt19937_64 engine_;
  /// See the class comment: member-owned so the cache lifecycle is explicit;
  /// never carries state between draws or across copy/fork/restore.
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace crl::util
