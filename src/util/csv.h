#pragma once
// CSV and fixed-width table writers used by the benchmark harnesses to emit
// the rows/series corresponding to the paper's tables and figures.

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

namespace crl::util {

/// Streams rows to a CSV file. The header is written on construction.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void writeRow(const std::vector<double>& values);
  void writeRow(const std::vector<std::string>& values);
  void flush();
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Renders an aligned plain-text table (for terminal figure/table output).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void addRow(std::vector<std::string> row);
  /// Format a double with the given precision for use in a cell.
  static std::string num(double v, int precision = 4);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crl::util
