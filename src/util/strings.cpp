#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace crl::util {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string engFormat(double value, int significant) {
  if (value == 0.0) return "0";
  static const struct { double scale; const char* suffix; } kUnits[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  double mag = std::fabs(value);
  for (const auto& u : kUnits) {
    if (mag >= u.scale || u.scale == 1e-15) {
      std::ostringstream os;
      os.precision(significant);
      os << value / u.scale << u.suffix;
      return os.str();
    }
  }
  return std::to_string(value);
}

}  // namespace crl::util
