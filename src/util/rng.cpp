#include "util/rng.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace crl::util {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  // Discard the cached second Gaussian, then draw with per-call parameters:
  // bit-identical to constructing a fresh distribution each call (the stream
  // the committed golden curves pin), and no hidden state ever survives a
  // draw — see the stream-state contract in the header.
  normal_.reset();
  return normal_(engine_,
                 std::normal_distribution<double>::param_type(mean, stddev));
}

int Rng::randint(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("categorical: empty weights");
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    // Degenerate distribution: fall back to uniform choice.
    return static_cast<std::size_t>(randint(0, static_cast<int>(weights.size()) - 1));
  }
  double u = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(randint(0, static_cast<int>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork() {
  // Derive a decorrelated seed from the parent stream. The child is freshly
  // seeded, so it starts with empty distribution caches by construction.
  std::uint64_t seed = engine_();
  seed ^= 0x9E3779B97F4A7C15ull;  // golden-ratio mix to avoid trivial overlap
  return Rng(seed);
}

std::string Rng::serializeState() const {
  std::ostringstream oss;
  oss << engine_;
  return oss.str();
}

bool Rng::restoreState(const std::string& state) {
  std::istringstream iss(state);
  std::mt19937_64 staged;
  iss >> staged;
  if (iss.fail()) return false;
  engine_ = staged;
  resetDistributionCaches();
  return true;
}

}  // namespace crl::util
