#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"

namespace crl::util {

namespace {
// Which pool (if any) the current thread is a worker of, and its lane index.
// Lets enqueue() route worker-submitted subtasks onto the submitting
// worker's own deque (LIFO, cache-hot) instead of round-robin.
thread_local ThreadPool* tlsPool = nullptr;
thread_local std::size_t tlsLane = 0;
}  // namespace

std::size_t ThreadPool::defaultWorkerCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::workersFromEnv(const char* envVar, std::size_t fallback) {
  const char* v = std::getenv(envVar);
  if (!v || *v == '\0') return fallback;
  char* end = nullptr;
  const long w = std::strtol(v, &end, 10);
  if (end == v) return fallback;  // unparsable: keep the default, don't fan out
  if (w <= 0) return defaultWorkerCount();
  return static_cast<std::size_t>(w);
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = defaultWorkerCount();
  startNs_ = obs::monotonicNowNs();
  lanes_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) lanes_.push_back(std::make_unique<Lane>());
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i]() { workerLoop(i); });
}

ThreadPool::~ThreadPool() { shutdown(); }

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.workers = workers_.size();
  std::uint64_t busyNanos = 0;
  for (const auto& lane : lanes_) {
    s.tasksExecuted += lane->executed.load(std::memory_order_relaxed);
    s.tasksStolen += lane->stolen.load(std::memory_order_relaxed);
    busyNanos += lane->busyNanos.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(lane->m);
    s.maxQueueDepth = std::max(s.maxQueueDepth, lane->maxDepth);
  }
  s.busySeconds = static_cast<double>(busyNanos) / 1e9;
  s.wallSeconds =
      static_cast<double>(obs::monotonicNowNs() - startNs_) / 1e9;
  return s;
}

void ThreadPool::enqueue(std::function<void()> task) {
  const std::size_t lane =
      tlsPool == this
          ? tlsLane
          : nextLane_.fetch_add(1, std::memory_order_relaxed) % lanes_.size();
  {
    std::lock_guard<std::mutex> lock(lanes_[lane]->m);
    // Checked under the lane lock: shutdown() flips stopping_ while holding
    // every lane lock, so any task pushed here is guaranteed to be drained.
    if (stopping_.load(std::memory_order_relaxed))
      throw std::runtime_error("ThreadPool: submit after shutdown");
    lanes_[lane]->q.push_back(std::move(task));
    lanes_[lane]->maxDepth = std::max(lanes_[lane]->maxDepth, lanes_[lane]->q.size());
    pending_.fetch_add(1, std::memory_order_release);
  }
  // Live depth across all lanes; one relaxed load + gauge store per submit.
  static auto& depth = obs::gauge("util.pool.queue_depth");
  depth.set(static_cast<double>(pending_.load(std::memory_order_relaxed)));
  // Empty critical section before notify: a worker between its predicate
  // check and its sleep holds sleepMutex_, so this cannot slip past it.
  { std::lock_guard<std::mutex> sl(sleepMutex_); }
  wake_.notify_one();
}

void ThreadPool::shutdown() {
  // call_once serializes concurrent shutdown()/destructor races: join() on
  // the same std::thread from two callers is undefined behavior.
  std::call_once(shutdownOnce_, [this]() {
    {
      // Hold every lane lock while flipping the flag so enqueue()'s
      // check-then-push can never lose a task to the drain.
      std::vector<std::unique_lock<std::mutex>> locks;
      locks.reserve(lanes_.size());
      for (auto& lane : lanes_) locks.emplace_back(lane->m);
      stopping_.store(true, std::memory_order_release);
    }
    { std::lock_guard<std::mutex> sl(sleepMutex_); }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  });
}

bool ThreadPool::tryPop(std::size_t lane, std::function<void()>& task) {
  Lane& l = *lanes_[lane];
  std::lock_guard<std::mutex> lock(l.m);
  if (l.q.empty()) return false;
  task = std::move(l.q.back());  // LIFO on the own lane: newest is hottest
  l.q.pop_back();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::trySteal(std::size_t thief, std::function<void()>& task) {
  const std::size_t n = lanes_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Lane& l = *lanes_[(thief + k) % n];
    std::lock_guard<std::mutex> lock(l.m);
    if (l.q.empty()) continue;
    task = std::move(l.q.front());  // FIFO steal: take the victim's oldest
    l.q.pop_front();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t lane) {
  tlsPool = this;
  tlsLane = lane;
  static auto& executedTotal = obs::counter("util.pool.tasks_executed");
  static auto& stolenTotal = obs::counter("util.pool.tasks_stolen");
  Lane& own = *lanes_[lane];
  for (;;) {
    std::function<void()> task;
    const bool popped = tryPop(lane, task);
    const bool stole = !popped && trySteal(lane, task);
    if (popped || stole) {
      const std::int64_t t0 = obs::monotonicNowNs();
      task();  // packaged_task captures any exception into the future
      own.busyNanos.fetch_add(
          static_cast<std::uint64_t>(obs::monotonicNowNs() - t0),
          std::memory_order_relaxed);
      own.executed.fetch_add(1, std::memory_order_relaxed);
      executedTotal.add();
      if (stole) {
        own.stolen.fetch_add(1, std::memory_order_relaxed);
        stolenTotal.add();
      }
      continue;
    }
    std::unique_lock<std::mutex> sl(sleepMutex_);
    wake_.wait(sl, [this]() {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      return;  // stopping and every queue drained
  }
}

}  // namespace crl::util
