#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace crl::util {

std::size_t ThreadPool::defaultWorkerCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::workersFromEnv(const char* envVar, std::size_t fallback) {
  const char* v = std::getenv(envVar);
  if (!v || *v == '\0') return fallback;
  char* end = nullptr;
  const long w = std::strtol(v, &end, 10);
  if (end == v) return fallback;  // unparsable: keep the default, don't fan out
  if (w <= 0) return defaultWorkerCount();
  return static_cast<std::size_t>(w);
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = defaultWorkerCount();
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  // call_once serializes concurrent shutdown()/destructor races: join() on
  // the same std::thread from two callers is undefined behavior.
  std::call_once(shutdownOnce_, [this]() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ set and no work left
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures any exception into the future
  }
}

}  // namespace crl::util
