#include "util/csv.h"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace crl::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() { flush(); }

void CsvWriter::writeRow(const std::vector<double>& values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::writeRow(const std::vector<std::string>& values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::flush() { out_.flush(); }

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c])) << cells[c] << ' ';
    }
    os << "|\n";
  };
  line(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) line(row);
}

}  // namespace crl::util
