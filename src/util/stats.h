#pragma once
// Small statistics helpers for experiment reporting and normalization.

#include <cstddef>
#include <vector>

namespace crl::util {

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);
/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Exponential moving average smoother for training curves.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}
  double update(double x);
  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  /// Checkpoint hook: reinstate a mid-run smoother exactly (alpha comes from
  /// construction; value/initialized are the only evolving state).
  void restore(double value, bool initialized) {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace crl::util
