#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crl::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Ema::update(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
  return value_;
}

}  // namespace crl::util
