#pragma once
// Fixed-size worker pool for the parallel rollout engine.
//
// Tasks are submitted as callables and return std::futures; exceptions thrown
// inside a task are captured in its future and rethrown at get(). The pool is
// deliberately minimal: no work stealing, no priorities — the workloads here
// are N identical SPICE environment steps per batch, which a plain FIFO queue
// load-balances well enough.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace crl::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1; defaultWorkerCount() if 0).
  explicit ThreadPool(std::size_t workers = 0);
  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; the returned future yields its result (or rethrows
  /// the exception it raised). Throws std::runtime_error if shutdown has
  /// begun: a task enqueued after the workers start draining the final queue
  /// may never run, which would silently swallow both its result and any
  /// exception it would have raised — failing loudly at the submit site is
  /// the only place that information still exists.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_)
        throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.push([task]() { (*task)(); });
    }
    wake_.notify_one();
    return fut;
  }

  /// Drain outstanding tasks and join all workers. Idempotent and safe to
  /// call from multiple threads (later callers block until the first
  /// finishes); called by the destructor. Futures obtained before shutdown
  /// stay valid — a drained task's result or captured exception is still
  /// delivered through get() after shutdown returns.
  void shutdown();

  std::size_t workerCount() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency may be 0).
  static std::size_t defaultWorkerCount();

  /// Shared parser for worker-count env knobs (CRL_SPICE_WORKERS,
  /// CRL_SEED_WORKERS, ...): unset or unparsable returns `fallback`, an
  /// explicit non-positive value means "use the hardware concurrency".
  static std::size_t workersFromEnv(const char* envVar, std::size_t fallback = 1);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::once_flag shutdownOnce_;
  bool stopping_ = false;
};

}  // namespace crl::util
