#pragma once
// Fixed-size work-stealing worker pool shared by the parallel rollout engine
// and the campaign runner.
//
// Tasks are submitted as callables and return std::futures; exceptions thrown
// inside a task are captured in its future and rethrown at get(). Each worker
// owns a deque: submits from a worker thread push onto that worker's own
// deque (popped LIFO, keeping freshly-spawned subtasks cache-hot), submits
// from outside the pool are distributed round-robin, and an idle worker
// steals FIFO from the other lanes — so one long-running campaign job cannot
// starve the SPICE fan-out tasks another job keeps submitting, which is what
// lets heterogeneous seed x topology x corner jobs share a single pool.

#include <condition_variable>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/failpoint.h"

namespace crl::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1; defaultWorkerCount() if 0).
  explicit ThreadPool(std::size_t workers = 0);
  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; the returned future yields its result (or rethrows
  /// the exception it raised). Throws std::runtime_error if shutdown has
  /// begun: a task enqueued after the workers start draining the final
  /// queues may never run, which would silently swallow both its result and
  /// any exception it would have raised — failing loudly at the submit site
  /// is the only place that information still exists.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // The pool.task chaos gate (one relaxed load when disarmed) lives inside
    // the packaged task, so an injected throw is captured by the future and
    // surfaces at get() — indistinguishable from the task itself failing.
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(fn)]() mutable -> R {
          if (auto h = failpoint::check("pool.task"); h && h->action == "throw")
            throw std::runtime_error(
                "ThreadPool: injected task failure (failpoint pool.task)");
          return fn();
        });
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Drain outstanding tasks and join all workers. Idempotent and safe to
  /// call from multiple threads (later callers block until the first
  /// finishes); called by the destructor. Futures obtained before shutdown
  /// stay valid — a drained task's result or captured exception is still
  /// delivered through get() after shutdown returns.
  void shutdown();

  std::size_t workerCount() const { return workers_.size(); }

  /// Lifetime telemetry for this pool (also mirrored into the global
  /// obs::Registry under util.pool.*). Cheap to call at any time; counts
  /// are relaxed-atomic so a concurrent snapshot may lag by a task or two.
  struct Stats {
    std::size_t workers = 0;
    std::uint64_t tasksExecuted = 0;
    std::uint64_t tasksStolen = 0;   ///< subset of executed taken from another lane
    double busySeconds = 0.0;        ///< summed task execution time across workers
    double wallSeconds = 0.0;        ///< pool lifetime so far
    std::size_t maxQueueDepth = 0;   ///< high-water mark of any single lane
    /// Fraction of worker-seconds spent running tasks (0 when idle-only).
    double utilization() const {
      const double denom = wallSeconds * static_cast<double>(workers);
      return denom > 0.0 ? busySeconds / denom : 0.0;
    }
  };
  Stats stats() const;

  /// Hardware concurrency with a floor of 1 (hardware_concurrency may be 0).
  static std::size_t defaultWorkerCount();

  /// Shared parser for worker-count env knobs (CRL_SPICE_WORKERS,
  /// CRL_SEED_WORKERS, ...): unset or unparsable returns `fallback`, an
  /// explicit non-positive value means "use the hardware concurrency".
  static std::size_t workersFromEnv(const char* envVar, std::size_t fallback = 1);

 private:
  /// One worker's deque. Guarded by its own mutex — contention is between
  /// the owner and occasional thieves, not every submitter in the process.
  struct Lane {
    std::mutex m;
    std::deque<std::function<void()>> q;
    std::size_t maxDepth = 0;  ///< guarded by m
    // Owner-written telemetry; relaxed atomics so stats() can read live.
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> busyNanos{0};
  };

  void enqueue(std::function<void()> task);
  bool tryPop(std::size_t lane, std::function<void()>& task);
  bool trySteal(std::size_t thief, std::function<void()>& task);
  void workerLoop(std::size_t lane);

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;
  std::int64_t startNs_ = 0;  ///< construction time, for Stats::wallSeconds
  /// Tasks currently sitting in some lane (incremented under the lane lock
  /// at push, decremented at pop) — the sleep predicate, so a task in any
  /// queue keeps at least one worker awake.
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> nextLane_{0};
  std::atomic<bool> stopping_{false};
  std::mutex sleepMutex_;
  std::condition_variable wake_;
  std::once_flag shutdownOnce_;
};

}  // namespace crl::util
