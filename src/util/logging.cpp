#include "util/logging.h"

#include <cstdlib>
#include <iostream>

namespace crl::util {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

void initLogLevelFromEnv() {
  const char* env = std::getenv("CRL_LOG");
  if (!env) return;
  std::string v(env);
  if (v == "debug") g_level = LogLevel::Debug;
  else if (v == "info") g_level = LogLevel::Info;
  else if (v == "warn") g_level = LogLevel::Warn;
  else if (v == "error") g_level = LogLevel::Error;
  else if (v == "off") g_level = LogLevel::Off;
}

void logMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::ostream& os = (level >= LogLevel::Warn) ? std::cerr : std::cout;
  os << "[" << levelName(level) << "] " << msg << '\n';
}

}  // namespace crl::util
