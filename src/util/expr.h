#pragma once
// Arithmetic expression evaluator for netlist `.param` directives and
// parameterized card values ({...} / '...' expressions in SPICE decks).
//
// Grammar (recursive descent):
//   expr    := term (('+' | '-') term)*
//   term    := unary (('*' | '/' | '%') unary)*
//   unary   := ('+' | '-')* power
//   power   := primary ('^' unary)?      (right-associative, binds tighter
//                                          than unary minus: -2^2 == -4)
//   primary := number | ident | ident '(' args ')' | '(' expr ')'
//
// Numbers accept SPICE engineering suffixes (t, g, meg, k, m, u, n, p, f)
// and an optional trailing unit string which is ignored ("10pF" == 10e-12).
// Identifiers resolve against a caller-provided variable map; a fixed set of
// math functions (sqrt, exp, ln, log10, abs, sin, cos, tan, atan, floor,
// ceil, round, min, max, pow, hypot) is built in.

#include <stdexcept>
#include <string>
#include <unordered_map>

namespace crl::util {

/// Error raised on malformed expressions or unknown identifiers. `offset`
/// is the character position within the expression where parsing failed.
class ExprError : public std::runtime_error {
 public:
  ExprError(const std::string& what, std::size_t offset)
      : std::runtime_error(what), offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

using VarMap = std::unordered_map<std::string, double>;

/// Evaluate `expr` with the given variable bindings. Throws ExprError.
double evalExpr(const std::string& expr, const VarMap& vars = {});

/// Parse a number with an optional SPICE engineering suffix and trailing
/// unit ("2.5k", "10pF", "1meg", "-3.3e-2"). The whole token must be
/// consumed (ignoring the unit letters); returns false on mismatch.
bool parseEngNumber(const std::string& token, double* out);

}  // namespace crl::util
