#include "util/failpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <stdexcept>
#include <vector>

namespace crl::util::failpoint {

namespace detail {
std::atomic<int> armedEntries{0};
}  // namespace detail

namespace {

struct Entry {
  std::string site;
  Hit hit;
  enum class Trigger { Always, Nth, Prob } trigger = Trigger::Always;
  std::uint64_t nth = 0;        ///< for Trigger::Nth (1-based)
  double p = 0.0;               ///< for Trigger::Prob
  std::mt19937_64 rng;          ///< for Trigger::Prob, seeded per entry
  std::string scope;            ///< '#' filter; empty matches everything
  std::uint64_t hits = 0;       ///< eligible hits so far (registry-locked)
};

/// One registry for the process. Everything behind the armed-entries gate is
/// mutex-guarded: chaos runs trade a lock for a deterministic schedule.
struct Registry {
  std::mutex m;
  std::vector<Entry> entries;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

thread_local std::string tlsContext;

bool parseU64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parseDouble(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

Entry parseEntry(const std::string& text) {
  const auto fail = [&](const std::string& why) {
    throw std::invalid_argument("failpoint: '" + text + "': " + why);
  };
  Entry e;

  const std::size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0) fail("expected site=action");
  e.site = text.substr(0, eq);
  std::string rest = text.substr(eq + 1);

  // Peel the '#' scope (rightmost, so actions/values may not contain '#').
  if (const std::size_t hash = rest.rfind('#'); hash != std::string::npos) {
    e.scope = rest.substr(hash + 1);
    if (e.scope.empty()) fail("empty scope after '#'");
    rest = rest.substr(0, hash);
  }

  // Split action[:value] from the '@' trigger.
  std::string actionPart = rest, triggerPart;
  if (const std::size_t at = rest.find('@'); at != std::string::npos) {
    actionPart = rest.substr(0, at);
    triggerPart = rest.substr(at + 1);
    if (triggerPart.empty()) fail("empty trigger after '@'");
  }
  if (actionPart.empty()) fail("empty action");
  if (const std::size_t colon = actionPart.find(':'); colon != std::string::npos) {
    e.hit.action = actionPart.substr(0, colon);
    if (!parseDouble(actionPart.substr(colon + 1), e.hit.value))
      fail("bad numeric payload '" + actionPart.substr(colon + 1) + "'");
    e.hit.hasValue = true;
  } else {
    e.hit.action = actionPart;
  }
  if (e.hit.action.empty()) fail("empty action");

  if (triggerPart.empty() || triggerPart == "always") {
    e.trigger = Entry::Trigger::Always;
  } else if (triggerPart == "once") {
    e.trigger = Entry::Trigger::Nth;
    e.nth = 1;
  } else if (triggerPart.find('.') == std::string::npos &&
             triggerPart.find(':') == std::string::npos) {
    e.trigger = Entry::Trigger::Nth;
    if (!parseU64(triggerPart, e.nth) || e.nth == 0)
      fail("bad hit number '" + triggerPart + "'");
  } else {
    // Probability, optionally ":seedS" (the "seed" prefix is optional).
    std::string probPart = triggerPart, seedPart;
    if (const std::size_t colon = triggerPart.find(':'); colon != std::string::npos) {
      probPart = triggerPart.substr(0, colon);
      seedPart = triggerPart.substr(colon + 1);
      if (seedPart.rfind("seed", 0) == 0) seedPart = seedPart.substr(4);
    }
    if (!parseDouble(probPart, e.p) || !(e.p > 0.0) || !(e.p <= 1.0))
      fail("bad probability '" + probPart + "' (want 0 < p <= 1)");
    std::uint64_t seed = 0;
    if (!seedPart.empty() && !parseU64(seedPart, seed))
      fail("bad seed '" + seedPart + "'");
    e.trigger = Entry::Trigger::Prob;
    e.rng.seed(seed);
  }
  return e;
}

std::vector<Entry> parseSpec(const std::string& spec) {
  std::vector<Entry> entries;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::string item = spec.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start);
    // Tolerate blank segments (trailing ';', doubled separators).
    std::size_t b = item.find_first_not_of(" \t\n");
    std::size_t eTrim = item.find_last_not_of(" \t\n");
    if (b != std::string::npos)
      entries.push_back(parseEntry(item.substr(b, eTrim - b + 1)));
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return entries;
}

/// Arms the registry from CRL_FAILPOINTS once at process start. A malformed
/// env spec warns and disarms rather than aborting static initialization —
/// chaos tooling must never take the production binary down by typo.
struct EnvLoader {
  EnvLoader() {
    const char* v = std::getenv("CRL_FAILPOINTS");
    if (!v || !*v) return;
    try {
      configure(v);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: ignoring CRL_FAILPOINTS: %s\n", e.what());
    }
  }
};
EnvLoader envLoaderAtStartup;

}  // namespace

void configure(const std::string& spec) {
  std::vector<Entry> parsed = parseSpec(spec);  // throws before touching state
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  r.entries = std::move(parsed);
  detail::armedEntries.store(static_cast<int>(r.entries.size()),
                             std::memory_order_relaxed);
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  r.entries.clear();
  detail::armedEntries.store(0, std::memory_order_relaxed);
}

std::uint64_t hitCount(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  std::uint64_t total = 0;
  for (const Entry& e : r.entries)
    if (e.site == site) total += e.hits;
  return total;
}

namespace detail {
std::optional<Hit> checkSlow(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  for (Entry& e : r.entries) {
    if (e.site != site) continue;
    if (!e.scope.empty() && tlsContext.find(e.scope) == std::string::npos)
      continue;
    ++e.hits;
    switch (e.trigger) {
      case Entry::Trigger::Always:
        return e.hit;
      case Entry::Trigger::Nth:
        if (e.hits == e.nth) return e.hit;
        break;
      case Entry::Trigger::Prob: {
        // Canonical [0,1) draw; one u64 per hit keeps the stream simple and
        // reproducible across platforms.
        const double u =
            static_cast<double>(e.rng() >> 11) * 0x1.0p-53;
        if (u < e.p) return e.hit;
        break;
      }
    }
  }
  return std::nullopt;
}
}  // namespace detail

ScopedContext::ScopedContext(std::string_view tag)
    : restoreLength_(tlsContext.size()) {
  tlsContext += '/';
  tlsContext += tag;
}

ScopedContext::~ScopedContext() { tlsContext.resize(restoreLength_); }

const std::string& currentContext() { return tlsContext; }

}  // namespace crl::util::failpoint
