#include "util/expr.h"

#include <cctype>
#include <cmath>
#include <vector>

namespace crl::util {
namespace {

// SPICE engineering suffixes, longest match first ("meg" before "m").
struct Suffix {
  const char* text;
  double scale;
};
constexpr Suffix kSuffixes[] = {
    {"meg", 1e6}, {"mil", 25.4e-6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3},
    {"m", 1e-3},  {"u", 1e-6},      {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
};

bool asciiPrefixMatches(const std::string& lower, std::size_t pos, const char* pat) {
  for (const char* p = pat; *p; ++p, ++pos) {
    if (pos >= lower.size() || lower[pos] != *p) return false;
  }
  return true;
}

class Parser {
 public:
  Parser(const std::string& src, const VarMap& vars) : src_(src), vars_(vars) {}

  double parse() {
    double v = expr();
    skipWs();
    if (pos_ != src_.size()) fail("unexpected trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ExprError("expression error at position " + std::to_string(pos_) + ": " + msg +
                        " in \"" + src_ + "\"",
                    pos_);
  }

  void skipWs() {
    while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < src_.size() && src_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skipWs();
    return pos_ < src_.size() ? src_[pos_] : '\0';
  }

  double expr() {
    double v = term();
    for (;;) {
      if (consume('+')) {
        v += term();
      } else if (consume('-')) {
        v -= term();
      } else {
        return v;
      }
    }
  }

  double term() {
    double v = factor();
    for (;;) {
      if (consume('*')) {
        v *= factor();
      } else if (consume('/')) {
        v /= factor();
      } else if (consume('%')) {
        v = std::fmod(v, factor());
      } else {
        return v;
      }
    }
  }

  // '^' binds tighter than unary minus (-2^2 == -4) and is right-associative.
  double factor() { return unary(); }

  double unary() {
    int sign = 1;
    for (;;) {
      if (consume('-')) {
        sign = -sign;
      } else if (consume('+')) {
        // no-op
      } else {
        break;
      }
    }
    return sign * power();
  }

  double power() {
    double base = primary();
    if (consume('^')) return std::pow(base, unary());
    return base;
  }

  double primary() {
    skipWs();
    if (pos_ >= src_.size()) fail("unexpected end of expression");
    char c = src_[pos_];
    if (c == '(') {
      ++pos_;
      double v = expr();
      if (!consume(')')) fail("missing ')'");
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') return number();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return identifier();
    fail("unexpected character");
  }

  double number() {
    std::size_t start = pos_;
    // mantissa
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '.'))
      ++pos_;
    // exponent
    if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
      std::size_t save = pos_;
      ++pos_;
      if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) ++pos_;
      if (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_])))
          ++pos_;
      } else {
        pos_ = save;  // 'e' was not an exponent (maybe a variable follows)
      }
    }
    double v;
    try {
      v = std::stod(src_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    // optional engineering suffix (only when directly attached)
    std::string lower;
    lower.reserve(src_.size());
    for (char ch : src_) lower.push_back(static_cast<char>(std::tolower(ch)));
    for (const auto& s : kSuffixes) {
      if (asciiPrefixMatches(lower, pos_, s.text)) {
        // A suffix must not be followed by '(' (that would be a function call
        // like m(...)), nor by an alphanumeric that extends an identifier —
        // except we deliberately allow unit tails like "10pF" in eng numbers
        // handled by parseEngNumber, not inside expressions.
        std::size_t after = pos_ + std::string(s.text).size();
        bool extends = after < src_.size() &&
                       (std::isalnum(static_cast<unsigned char>(src_[after])) ||
                        src_[after] == '_' || src_[after] == '(');
        if (!extends) {
          pos_ = after;
          return v * s.scale;
        }
      }
    }
    return v;
  }

  double identifier() {
    std::size_t start = pos_;
    while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                                  src_[pos_] == '_'))
      ++pos_;
    std::string name = src_.substr(start, pos_ - start);
    std::string lower;
    for (char ch : name) lower.push_back(static_cast<char>(std::tolower(ch)));

    if (peek() == '(') return call(lower);

    if (auto it = vars_.find(name); it != vars_.end()) return it->second;
    if (auto it = vars_.find(lower); it != vars_.end()) return it->second;
    if (lower == "pi") return 3.14159265358979323846;
    if (lower == "e") return 2.71828182845904523536;
    pos_ = start;
    fail("unknown identifier '" + name + "'");
  }

  double call(const std::string& fn) {
    if (!consume('(')) fail("expected '('");
    std::vector<double> args;
    if (peek() != ')') {
      args.push_back(expr());
      while (consume(',')) args.push_back(expr());
    }
    if (!consume(')')) fail("missing ')' in call to " + fn);

    auto arity = [&](std::size_t n) {
      if (args.size() != n)
        fail(fn + " expects " + std::to_string(n) + " argument(s), got " +
             std::to_string(args.size()));
    };
    if (fn == "sqrt") { arity(1); return std::sqrt(args[0]); }
    if (fn == "exp") { arity(1); return std::exp(args[0]); }
    if (fn == "ln" || fn == "log") { arity(1); return std::log(args[0]); }
    if (fn == "log10") { arity(1); return std::log10(args[0]); }
    if (fn == "abs") { arity(1); return std::fabs(args[0]); }
    if (fn == "sin") { arity(1); return std::sin(args[0]); }
    if (fn == "cos") { arity(1); return std::cos(args[0]); }
    if (fn == "tan") { arity(1); return std::tan(args[0]); }
    if (fn == "atan") { arity(1); return std::atan(args[0]); }
    if (fn == "floor") { arity(1); return std::floor(args[0]); }
    if (fn == "ceil") { arity(1); return std::ceil(args[0]); }
    if (fn == "round") { arity(1); return std::round(args[0]); }
    if (fn == "min") { arity(2); return std::min(args[0], args[1]); }
    if (fn == "max") { arity(2); return std::max(args[0], args[1]); }
    if (fn == "pow") { arity(2); return std::pow(args[0], args[1]); }
    if (fn == "hypot") { arity(2); return std::hypot(args[0], args[1]); }
    fail("unknown function '" + fn + "'");
  }

  const std::string& src_;
  const VarMap& vars_;
  std::size_t pos_ = 0;
};

}  // namespace

double evalExpr(const std::string& expr, const VarMap& vars) {
  return Parser(expr, vars).parse();
}

bool parseEngNumber(const std::string& token, double* out) {
  if (token.empty()) return false;
  std::size_t pos = 0;
  if (token[pos] == '+' || token[pos] == '-') ++pos;
  if (pos >= token.size() ||
      !(std::isdigit(static_cast<unsigned char>(token[pos])) || token[pos] == '.'))
    return false;

  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  std::size_t consumed = static_cast<std::size_t>(end - token.c_str());
  if (consumed == 0) return false;

  std::string rest;
  for (std::size_t i = consumed; i < token.size(); ++i)
    rest.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(token[i]))));

  double scale = 1.0;
  if (!rest.empty()) {
    bool matched = false;
    for (const auto& s : kSuffixes) {
      std::string st(s.text);
      if (rest.compare(0, st.size(), st) == 0) {
        // The remainder after the suffix must be alphabetic (a unit tail
        // like "F", "Hz", "ohm"), otherwise the token is malformed.
        for (std::size_t i = st.size(); i < rest.size(); ++i)
          if (!std::isalpha(static_cast<unsigned char>(rest[i]))) return false;
        scale = s.scale;
        matched = true;
        break;
      }
    }
    if (!matched) {
      // No suffix: the tail must be purely a unit (alphabetic).
      for (char c : rest)
        if (!std::isalpha(static_cast<unsigned char>(c))) return false;
    }
  }
  *out = v * scale;
  return true;
}

}  // namespace crl::util
