#pragma once
// Thread-safe metrics registry: counters, gauges, and fixed-bucket
// histograms with lock-free hot paths. Counters shard their cells across
// cache lines so concurrent workers never contend; gauges and histogram
// cells are single relaxed atomics. The registry aggregates shards only on
// scrape (snapshotJson), so instrumentation sites pay one relaxed RMW.
//
// All instruments are observation-only by construction: they never draw
// randomness, allocate on the hot path, or touch the numerical state of
// the code they watch, so parity/golden contracts are unaffected.
//
// Usage at an instrumentation site (handle lookup is amortized away):
//   static auto& iters = obs::counter("spice.dc.newton_iters");
//   iters.add(result.iterations);
//
// A process-wide kill switch (setMetricsEnabled) turns every add/set/
// observe into a relaxed load + branch; the overhead bench uses it to A/B
// instrumented-vs-uninstrumented hot paths inside one binary.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace crl::obs {

/// Process-wide metrics kill switch (default on). Relaxed-atomic read on
/// every instrument operation; flipping it mid-run is safe.
bool metricsEnabled();
void setMetricsEnabled(bool on);

/// Monotonic counter. add() hits one of kShards cache-line-padded cells
/// chosen by a per-thread index, so concurrent increments from pool
/// workers never share a line; value() sums the shards.
class Counter {
 public:
  static constexpr int kShards = 16;

  void add(std::uint64_t n = 1) noexcept;
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-write-wins double gauge (bit-cast through one atomic word).
class Gauge {
 public:
  void set(double v) noexcept;
  double value() const noexcept;
  void reset() noexcept;  // unconditional zero, ignores the kill switch

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram over ascending upper bounds: bucket i counts
/// observations v <= bounds[i]; one extra overflow bucket catches the
/// rest. observe() is two relaxed RMWs (bucket cell + CAS'd sum) after a
/// branch-free-ish linear scan over the (small, fixed) bounds array.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts, length bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> buckets() const;
  /// Linearly interpolated quantile estimate from the bucket counts
  /// (q in [0,1]); 0 when empty. Overflow mass reports the last bound.
  double quantile(double q) const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> cells_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sumBits_{0};
};

/// `count` ascending bounds starting at `start`, each `factor` apart —
/// the usual latency-bucket ladder (e.g. exponentialBounds(1e-6, 2, 24)).
std::vector<double> exponentialBounds(double start, double factor, int count);

/// Named instrument registry. Instruments are created on first lookup and
/// have stable addresses for the life of the process; lookups take a
/// mutex, so call sites cache the reference (function-local static).
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First lookup fixes the bounds; later lookups ignore `bounds` and
  /// return the existing instrument. Empty bounds = default latency
  /// ladder (1us..~8s, x2).
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  /// One JSON object ({"schema":"crl.metrics/v1","counters":{...},
  /// "gauges":{...},"histograms":{...}}), names sorted for determinism.
  /// Histograms carry count/sum/bounds/buckets plus p50/p90/p99.
  std::string snapshotJson() const;

  /// Zero every instrument (tests and the overhead bench); instruments
  /// themselves stay registered so cached references remain valid.
  void resetAll();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Conveniences over Registry::global() — what instrumentation sites use.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

/// Monotonic clock in nanoseconds (same timebase the tracer uses).
std::int64_t monotonicNowNs() noexcept;

/// RAII stopwatch: observes elapsed seconds into a histogram at scope
/// exit. Reads the clock only when metrics are enabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept
      : hist_(hist), startNs_(metricsEnabled() ? monotonicNowNs() : -1) {}
  ~ScopedTimer() {
    if (startNs_ >= 0)
      hist_.observe(static_cast<double>(monotonicNowNs() - startNs_) / 1e9);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& hist_;
  std::int64_t startNs_;
};

}  // namespace crl::obs
