#pragma once
// Scoped tracing emitting Chrome / Perfetto trace-event JSON. A TraceSpan
// is an RAII stopwatch: when tracing is enabled its destructor records one
// complete ("ph":"X") event into a per-thread buffer owned by the global
// TraceSink; when disabled the constructor is a single relaxed atomic load
// and nothing else happens — no clock read, no allocation — so golden and
// parity results are untouched by spans left in the code.
//
// Enable either programmatically (TraceSink::global().start("trace.json"))
// or by exporting CRL_TRACE=trace.json before launch; the file is written
// on stop(), which the env path registers via atexit. Open the result at
// https://ui.perfetto.dev or chrome://tracing.
//
// Span name/category must be string literals (or otherwise outlive the
// sink) — events store the pointers, not copies.
//
// Compile-time opt-out: defining CRL_OBS_NO_TRACE turns TraceSpan into an
// empty struct for builds that must not even carry the atomic load.

#include <cstdint>
#include <string>

namespace crl::obs {

class TraceSink {
 public:
  static TraceSink& global();

  /// Begin buffering events; `path` is where stop() writes the JSON.
  /// Returns false (and stays untouched) if tracing is already active.
  bool start(const std::string& path);

  /// Flush all per-thread buffers to the path given to start(), sorted by
  /// timestamp, and disable tracing. No-op when not started.
  void stop();

  bool enabled() const noexcept;

  /// Record one complete event (timestamps from TraceSink::nowNs()).
  /// Called by ~TraceSpan; callable directly for non-scoped events.
  void record(const char* name, const char* cat, std::int64_t startNs,
              std::int64_t endNs) noexcept;

  /// Monotonic clock used for span timestamps, in nanoseconds.
  static std::int64_t nowNs() noexcept;

  /// Events dropped because a thread buffer hit its cap (diagnostic;
  /// also written into the trace file header).
  std::uint64_t dropped() const noexcept;

 private:
  TraceSink() = default;
};

#ifndef CRL_OBS_NO_TRACE

class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "crl") noexcept;
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::int64_t startNs_;
  bool active_;
};

#else

class TraceSpan {
 public:
  explicit TraceSpan(const char*, const char* = "crl") noexcept {}
};

#endif  // CRL_OBS_NO_TRACE

}  // namespace crl::obs
