#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace crl::obs::json {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool run(Value& out) {
    skipWs();
    Value v;
    if (!parseValue(v)) return false;
    skipWs();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    out = std::move(v);
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_)
      *error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool parseValue(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parseObject(out);
      case '[':
        return parseArray(out);
      case '"': {
        std::string s;
        if (!parseString(s)) return false;
        out = Value::makeString(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true", 4)) return false;
        out = Value::makeBool(true);
        return true;
      case 'f':
        if (!literal("false", 5)) return false;
        out = Value::makeBool(false);
        return true;
      case 'n':
        if (!literal("null", 4)) return false;
        out = Value::makeNull();
        return true;
      default:
        return parseNumber(out);
    }
  }

  bool parseObject(Value& out) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> members;
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = Value::makeObject(std::move(members));
      return true;
    }
    for (;;) {
      skipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      if (!parseString(key)) return false;
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':' after key");
      ++pos_;
      skipWs();
      Value v;
      if (!parseValue(v)) return false;
      bool duplicate = false;
      for (const auto& [k, existing] : members)
        if (k == key) {
          duplicate = true;  // first wins
          (void)existing;
          break;
        }
      if (!duplicate) members.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out = Value::makeObject(std::move(members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value& out) {
    ++pos_;  // '['
    std::vector<Value> items;
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = Value::makeArray(std::move(items));
      return true;
    }
    for (;;) {
      skipWs();
      Value v;
      if (!parseValue(v)) return false;
      items.push_back(std::move(v));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out = Value::makeArray(std::move(items));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string& out) {
    ++pos_;  // opening quote
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        out = std::move(s);
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        s += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return fail("dangling escape");
      const char e = text_[pos_ + 1];
      pos_ += 2;
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // our writers only \u-escape control characters).
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else if (code < 0x800) {
            s += static_cast<char>(0xC0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    out = Value::makeNumber(v);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string* error) {
  return Parser(text, error).run(out);
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

}  // namespace crl::obs::json
