#pragma once
// Minimal zero-dependency JSON support for the telemetry subsystem: a
// recursive-descent parser producing a Value tree, and the string-escaping
// helper every obs writer uses. This exists so the CLI, the tests, and CI
// can consume the JSON the subsystem emits (campaign_status.json, registry
// snapshots, trace files) without an external library.
//
// Scope is deliberately small: UTF-8 passes through untouched, numbers are
// doubles, objects preserve insertion order, duplicate keys keep the first.
// It is a validator/reader for our own output, not a general JSON toolkit.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace crl::obs::json {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isBool() const { return kind_ == Kind::Bool; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  bool asBool(bool fallback = false) const {
    return isBool() ? bool_ : fallback;
  }
  double asNumber(double fallback = 0.0) const {
    return isNumber() ? number_ : fallback;
  }
  const std::string& asString() const { return string_; }

  const std::vector<Value>& array() const { return array_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (kind_ != Kind::Object) return nullptr;
    for (const auto& [k, v] : members_)
      if (k == key) return &v;
    return nullptr;
  }
  /// Convenience: find(key) asNumber with fallback.
  double number(const std::string& key, double fallback = 0.0) const {
    const Value* v = find(key);
    return v ? v->asNumber(fallback) : fallback;
  }
  /// Convenience: find(key) asString with fallback.
  std::string string(const std::string& key, const std::string& fallback = {}) const {
    const Value* v = find(key);
    return v && v->isString() ? v->asString() : fallback;
  }

  static Value makeNull() { return Value(); }
  static Value makeBool(bool b) {
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
  }
  static Value makeNumber(double d) {
    Value v;
    v.kind_ = Kind::Number;
    v.number_ = d;
    return v;
  }
  static Value makeString(std::string s) {
    Value v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
  }
  static Value makeArray(std::vector<Value> items) {
    Value v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(items);
    return v;
  }
  static Value makeObject(std::vector<std::pair<std::string, Value>> members) {
    Value v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
  }

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parse a complete JSON document (one value plus surrounding whitespace).
/// Returns false on malformed input, describing the defect and its byte
/// offset in `error` when non-null; `out` is untouched on failure.
bool parse(const std::string& text, Value& out, std::string* error = nullptr);

/// Escape a string for embedding between JSON double quotes (quotes,
/// backslashes, control characters; everything else passes through).
std::string escape(const std::string& s);

/// Shortest %.17g-style double formatting that round-trips, with the JSON
/// restriction that NaN/Inf (illegal in JSON) render as null.
std::string number(double v);

}  // namespace crl::obs::json
