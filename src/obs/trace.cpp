#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace crl::obs {

namespace {

struct Event {
  const char* name;
  const char* cat;
  std::int64_t startNs;
  std::int64_t endNs;
  int tid;
};

// Per-thread event buffer: record() takes only this (uncontended) mutex,
// so tracing never serializes pool workers against each other.
struct ThreadBuf {
  static constexpr std::size_t kCap = 1u << 20;
  std::mutex m;
  std::vector<Event> events;
  std::uint64_t dropped = 0;
  int tid = 0;
};

struct SinkState {
  std::atomic<bool> enabled{false};
  std::mutex m;  // guards everything below
  std::string path;
  std::int64_t epochNs = 0;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  int nextTid = 1;
  std::uint64_t droppedTotal = 0;
};

SinkState& state() {
  static SinkState* s = new SinkState();  // leaked: used from atexit
  return *s;
}

ThreadBuf& threadBuf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    SinkState& s = state();
    std::lock_guard<std::mutex> lock(s.m);
    b->tid = s.nextTid++;
    s.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

struct EnvTraceInit {
  EnvTraceInit() {
    if (const char* p = std::getenv("CRL_TRACE"); p && *p)
      TraceSink::global().start(p);
  }
};
EnvTraceInit g_envTraceInit;

}  // namespace

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

std::int64_t TraceSink::nowNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool TraceSink::enabled() const noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

std::uint64_t TraceSink::dropped() const noexcept {
  SinkState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  std::uint64_t total = s.droppedTotal;
  for (const auto& b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->m);
    total += b->dropped;
  }
  return total;
}

bool TraceSink::start(const std::string& path) {
  SinkState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  if (s.enabled.load(std::memory_order_relaxed)) return false;
  s.path = path;
  s.epochNs = nowNs();
  s.droppedTotal = 0;
  for (const auto& b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->m);
    b->events.clear();
    b->dropped = 0;
  }
  // Flush whatever is buffered if the process exits without stop() —
  // the CRL_TRACE env path relies on this.
  static bool atexitRegistered = [] {
    std::atexit([] { TraceSink::global().stop(); });
    return true;
  }();
  (void)atexitRegistered;
  s.enabled.store(true, std::memory_order_relaxed);
  return true;
}

void TraceSink::record(const char* name, const char* cat, std::int64_t startNs,
                       std::int64_t endNs) noexcept {
  if (!enabled()) return;
  ThreadBuf& buf = threadBuf();
  std::lock_guard<std::mutex> lock(buf.m);
  if (buf.events.size() >= ThreadBuf::kCap) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(Event{name, cat, startNs, endNs, buf.tid});
}

void TraceSink::stop() {
  SinkState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  // Disable first so in-flight spans stop appending while we drain.
  s.enabled.store(false, std::memory_order_relaxed);

  std::vector<Event> all;
  std::uint64_t dropped = s.droppedTotal;
  for (const auto& b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->m);
    all.insert(all.end(), b->events.begin(), b->events.end());
    dropped += b->dropped;
    b->events.clear();
    b->dropped = 0;
  }
  std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.startNs < b.startNs;
  });

  std::ofstream out(s.path, std::ios::trunc);
  if (!out) return;
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":"
      << dropped << "},\"traceEvents\":[";
  bool first = true;
  for (const Event& e : all) {
    if (!first) out << ",";
    first = false;
    const double tsUs = static_cast<double>(e.startNs - s.epochNs) / 1e3;
    const double durUs = static_cast<double>(e.endNs - e.startNs) / 1e3;
    out << "{\"name\":\"" << json::escape(e.name) << "\",\"cat\":\""
        << json::escape(e.cat) << "\",\"ph\":\"X\",\"ts\":" << json::number(tsUs)
        << ",\"dur\":" << json::number(durUs) << ",\"pid\":1,\"tid\":" << e.tid
        << "}";
  }
  out << "]}\n";
}

#ifndef CRL_OBS_NO_TRACE

TraceSpan::TraceSpan(const char* name, const char* cat) noexcept
    : name_(name),
      cat_(cat),
      startNs_(0),
      active_(TraceSink::global().enabled()) {
  if (active_) startNs_ = TraceSink::nowNs();
}

TraceSpan::~TraceSpan() {
  if (active_)
    TraceSink::global().record(name_, cat_, startNs_, TraceSink::nowNs());
}

#endif  // CRL_OBS_NO_TRACE

}  // namespace crl::obs
