#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace crl::obs {

namespace {

std::atomic<bool> g_metricsEnabled{true};

// Per-thread shard index: round-robin assignment keeps concurrent pool
// workers on distinct cache lines regardless of thread-id hashing.
int threadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const int shard =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<unsigned>(Counter::kShards));
  return shard;
}

void atomicAddDouble(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double next = std::bit_cast<double>(old) + delta;
    if (bits.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(next),
                                   std::memory_order_relaxed))
      return;
  }
}

}  // namespace

bool metricsEnabled() { return g_metricsEnabled.load(std::memory_order_relaxed); }
void setMetricsEnabled(bool on) {
  g_metricsEnabled.store(on, std::memory_order_relaxed);
}

void Counter::add(std::uint64_t n) noexcept {
  if (!metricsEnabled()) return;
  shards_[threadShard()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Gauge::set(double v) noexcept {
  if (!metricsEnabled()) return;
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const noexcept {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void Gauge::reset() noexcept { bits_.store(0, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), cells_(bounds_.size() + 1) {}

void Histogram::observe(double v) noexcept {
  if (!metricsEnabled()) return;
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  cells_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomicAddDouble(sumBits_, v);
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sumBits_.load(std::memory_order_relaxed));
}

std::vector<std::uint64_t> Histogram::buckets() const {
  std::vector<std::uint64_t> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i)
    out[i] = cells_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> b = buckets();
  std::uint64_t total = 0;
  for (const std::uint64_t c : b) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i] == 0) continue;
    const double before = cumulative;
    cumulative += static_cast<double>(b[i]);
    if (cumulative < rank) continue;
    // Overflow bucket has no upper edge; report the last finite bound.
    if (i >= bounds_.size())
      return bounds_.empty() ? 0.0 : bounds_.back();
    const double hi = bounds_[i];
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double frac = (rank - before) / static_cast<double>(b[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() noexcept {
  for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sumBits_.store(0, std::memory_order_relaxed);
}

std::vector<double> exponentialBounds(double start, double factor, int count) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(std::max(count, 0)));
  double v = start;
  for (int i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives atexit flushers
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = exponentialBounds(1e-6, 2.0, 24);
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

std::string Registry::snapshotJson() const {
  std::lock_guard<std::mutex> lock(m_);
  std::ostringstream os;
  os << "{\"schema\":\"crl.metrics/v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json::escape(name) << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json::escape(name) << "\":" << json::number(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json::escape(name) << "\":{\"count\":" << h->count()
       << ",\"sum\":" << json::number(h->sum()) << ",\"bounds\":[";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i) os << ",";
      os << json::number(bounds[i]);
    }
    os << "],\"buckets\":[";
    const auto buckets = h->buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (i) os << ",";
      os << buckets[i];
    }
    os << "],\"p50\":" << json::number(h->quantile(0.50))
       << ",\"p90\":" << json::number(h->quantile(0.90))
       << ",\"p99\":" << json::number(h->quantile(0.99)) << "}";
  }
  os << "}}";
  return os.str();
}

void Registry::resetAll() {
  std::lock_guard<std::mutex> lock(m_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::int64_t monotonicNowNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
Gauge& gauge(const std::string& name) { return Registry::global().gauge(name); }
Histogram& histogram(const std::string& name, std::vector<double> bounds) {
  return Registry::global().histogram(name, std::move(bounds));
}

}  // namespace crl::obs
