#pragma once
// Figure-of-merit optimization environment (Sec. 4 "FoM Optimization").
//
// For the RF PA: FoM = Pout + 3 * efficiency; the per-step reward is the
// normalized form r_i = (P_i - P_r)/(P_i + P_r) + 3 (E_i - E_r)/(E_i + E_r)
// with reference values P_r, E_r. Episodes run a fixed number of steps and
// the best FoM along the trajectory is tracked.

#include "circuit/benchmark.h"
#include "rl/env.h"

namespace crl::envs {

struct FomEnvConfig {
  int maxSteps = 30;
  double pRef = 2.5;   ///< output-power normalization reference [W]
  double eRef = 0.55;  ///< efficiency normalization reference
  circuit::Fidelity fidelity = circuit::Fidelity::Fine;
  bool randomInitialParams = true;
};

/// Normalized FoM of a spec vector ([efficiency, pout] order), the paper's
/// Sec. 4 definition: (P-Pr)/(P+Pr) + 3 (E-Er)/(E+Er). Defaults match
/// FomEnvConfig's references.
double fomOf(const std::vector<double>& specs, double pRef = 2.5, double eRef = 0.55);

class FomEnv : public rl::Env {
 public:
  FomEnv(circuit::Benchmark& bench, FomEnvConfig cfg);

  rl::Observation reset(util::Rng& rng) override;
  rl::Observation resetWithTarget(const std::vector<double>& target,
                                  util::Rng& rng) override;
  rl::StepResult step(const std::vector<int>& actions) override;

  std::size_t numParams() const override { return bench_.designSpace().size(); }
  std::size_t numSpecs() const override { return bench_.specSpace().size(); }
  int maxSteps() const override { return cfg_.maxSteps; }

  const linalg::Mat& normalizedAdjacency() const override {
    return bench_.graph().normalizedAdjacency();
  }
  const linalg::Mat& attentionMask() const override {
    return bench_.graph().attentionMask();
  }
  std::size_t graphNodeCount() const override { return bench_.graph().nodeCount(); }
  std::size_t graphFeatureDim() const override {
    return static_cast<std::size_t>(circuit::kNodeFeatureDim);
  }

  const std::vector<double>& rawTarget() const override { return target_; }
  const std::vector<double>& rawSpecs() const override { return specs_; }
  const std::vector<double>& currentParams() const override { return params_; }

  /// Best FoM seen since the last reset and its parameter vector.
  double bestFom() const { return bestFom_; }
  const std::vector<double>& bestParams() const { return bestParams_; }

  circuit::Benchmark& benchmark() { return bench_; }
  void setFidelity(circuit::Fidelity f) { cfg_.fidelity = f; }
  /// Attach a simulation session to the underlying benchmark (see
  /// SizingEnv::setSession).
  void setSession(spice::SimSession* session) { bench_.setSession(session); }

 private:
  rl::Observation makeObservation() const;
  void simulate();

  circuit::Benchmark& bench_;
  FomEnvConfig cfg_;
  std::vector<double> params_;
  std::vector<double> target_;  ///< fixed at the reference point
  std::vector<double> specs_;
  std::vector<double> bestParams_;
  double bestFom_ = -1e9;
  int stepCount_ = 0;
};

}  // namespace crl::envs
