#include "envs/fom_env.h"

#include <algorithm>
#include <stdexcept>

namespace crl::envs {

double fomOf(const std::vector<double>& specs, double pRef, double eRef) {
  if (specs.size() != 2) throw std::invalid_argument("fomOf: expected [eff, pout]");
  const double p = specs[1], e = specs[0];
  return (p - pRef) / (p + pRef) + 3.0 * (e - eRef) / (e + eRef);
}

FomEnv::FomEnv(circuit::Benchmark& bench, FomEnvConfig cfg) : bench_(bench), cfg_(cfg) {
  params_ = bench_.designSpace().midpoint();
  bestParams_ = params_;
  target_ = {cfg_.eRef, cfg_.pRef};  // spec order [efficiency, pout]
  specs_ = bench_.worstSpecs();
}

void FomEnv::simulate() {
  auto m = bench_.measureAt(params_, cfg_.fidelity);
  specs_ = m.specs;
  const double f = fomOf(specs_);
  if (f > bestFom_) {
    bestFom_ = f;
    bestParams_ = params_;
  }
}

rl::Observation FomEnv::makeObservation() const {
  rl::Observation obs;
  obs.nodeFeatures = bench_.graph().features();
  obs.specNow = bench_.specSpace().normalize(specs_);
  obs.specTarget = bench_.specSpace().normalize(target_);
  obs.paramsNorm = bench_.designSpace().normalize(params_);
  return obs;
}

rl::Observation FomEnv::reset(util::Rng& rng) {
  params_ = cfg_.randomInitialParams ? bench_.designSpace().sample(rng)
                                     : bench_.designSpace().midpoint();
  stepCount_ = 0;
  bestFom_ = -1e9;
  simulate();
  return makeObservation();
}

rl::Observation FomEnv::resetWithTarget(const std::vector<double>&, util::Rng& rng) {
  // FoM optimization has no per-episode target; fall back to reset().
  return reset(rng);
}

rl::StepResult FomEnv::step(const std::vector<int>& actions) {
  params_ = bench_.designSpace().applyActions(params_, actions);
  simulate();
  ++stepCount_;

  rl::StepResult res;
  const double p = specs_[1], e = specs_[0];
  res.reward = (p - cfg_.pRef) / (p + cfg_.pRef) + 3.0 * (e - cfg_.eRef) / (e + cfg_.eRef);
  res.done = stepCount_ >= cfg_.maxSteps;
  res.success = false;
  res.obs = makeObservation();
  return res;
}

}  // namespace crl::envs
