#pragma once
// The P2S sizing environment (Sec. 3): state = (circuit graph, specs),
// action = per-parameter {-1,0,+1} grid steps, reward = Eq. (1) with the
// success bonus R = 10 and early termination once every spec is reached.

#include "circuit/benchmark.h"
#include "rl/env.h"

namespace crl::envs {

/// Reward shaping choices (the Eq. (1) design is ablated in
/// bench/ablation_reward).
enum class RewardShape {
  Eq1,   ///< paper's Eq. (1): per-spec min(., 0) clipping + success bonus R
  Raw,   ///< unclipped signed differences, no success bonus
};

struct SizingEnvConfig {
  int maxSteps = 50;                       ///< 50 op-amp / 30 RF PA (Sec. 4)
  double successBonus = 10.0;              ///< R in Eq. (1)
  circuit::Fidelity fidelity = circuit::Fidelity::Fine;
  bool randomInitialParams = true;         ///< midpoint start when false
  RewardShape rewardShape = RewardShape::Eq1;
};

class SizingEnv : public rl::Env {
 public:
  SizingEnv(circuit::Benchmark& bench, SizingEnvConfig cfg);

  rl::Observation reset(util::Rng& rng) override;
  rl::Observation resetWithTarget(const std::vector<double>& target,
                                  util::Rng& rng) override;
  rl::StepResult step(const std::vector<int>& actions) override;

  std::size_t numParams() const override { return bench_.designSpace().size(); }
  std::size_t numSpecs() const override { return bench_.specSpace().size(); }
  int maxSteps() const override { return cfg_.maxSteps; }

  const linalg::Mat& normalizedAdjacency() const override {
    return bench_.graph().normalizedAdjacency();
  }
  const linalg::Mat& attentionMask() const override {
    return bench_.graph().attentionMask();
  }
  std::size_t graphNodeCount() const override { return bench_.graph().nodeCount(); }
  std::size_t graphFeatureDim() const override {
    return static_cast<std::size_t>(circuit::kNodeFeatureDim);
  }

  const std::vector<double>& rawTarget() const override { return target_; }
  const std::vector<double>& rawSpecs() const override { return specs_; }
  const std::vector<double>& currentParams() const override { return params_; }

  circuit::Benchmark& benchmark() { return bench_; }
  const SizingEnvConfig& config() const { return cfg_; }
  /// Override the simulation fidelity (transfer learning switches this).
  void setFidelity(circuit::Fidelity f) { cfg_.fidelity = f; }
  /// Attach a simulation session to the underlying benchmark so measure()
  /// fans its AC sweep out over the session's workers (results are
  /// bit-identical with or without a session).
  void setSession(spice::SimSession* session) { bench_.setSession(session); }

 private:
  rl::Observation makeObservation() const;
  void simulate();

  circuit::Benchmark& bench_;
  SizingEnvConfig cfg_;
  std::vector<double> params_;
  std::vector<double> target_;
  std::vector<double> specs_;
  int stepCount_ = 0;
};

}  // namespace crl::envs
