#include "envs/sizing_env.h"

#include <stdexcept>

namespace crl::envs {

SizingEnv::SizingEnv(circuit::Benchmark& bench, SizingEnvConfig cfg)
    : bench_(bench), cfg_(cfg) {
  params_ = bench_.designSpace().midpoint();
  target_ = std::vector<double>(bench_.specSpace().size(), 1.0);
  specs_ = bench_.worstSpecs();
}

void SizingEnv::simulate() {
  auto m = bench_.measureAt(params_, cfg_.fidelity);
  specs_ = m.specs;
}

rl::Observation SizingEnv::makeObservation() const {
  rl::Observation obs;
  obs.nodeFeatures = bench_.graph().features();
  obs.specNow = bench_.specSpace().normalize(specs_);
  obs.specTarget = bench_.specSpace().normalize(target_);
  obs.paramsNorm = bench_.designSpace().normalize(params_);
  return obs;
}

rl::Observation SizingEnv::reset(util::Rng& rng) {
  return resetWithTarget(bench_.specSpace().sample(rng), rng);
}

rl::Observation SizingEnv::resetWithTarget(const std::vector<double>& target,
                                           util::Rng& rng) {
  if (target.size() != bench_.specSpace().size())
    throw std::invalid_argument("SizingEnv: target dim mismatch");
  target_ = target;
  params_ = cfg_.randomInitialParams ? bench_.designSpace().sample(rng)
                                     : bench_.designSpace().midpoint();
  stepCount_ = 0;
  simulate();
  return makeObservation();
}

rl::StepResult SizingEnv::step(const std::vector<int>& actions) {
  params_ = bench_.designSpace().applyActions(params_, actions);
  simulate();
  ++stepCount_;

  rl::StepResult res;
  const double r = bench_.specSpace().reward(specs_, target_);
  if (r >= 0.0) {
    // Episode ends on success under either shaping; only Eq. (1) pays the
    // bonus R (the Raw ablation keeps its signed value).
    res.reward = cfg_.rewardShape == RewardShape::Eq1
                     ? cfg_.successBonus
                     : bench_.specSpace().signedReward(specs_, target_);
    res.done = true;
    res.success = true;
  } else {
    res.reward = cfg_.rewardShape == RewardShape::Eq1
                     ? r
                     : bench_.specSpace().signedReward(specs_, target_);
    res.done = stepCount_ >= cfg_.maxSteps;
  }
  res.obs = makeObservation();
  return res;
}

}  // namespace crl::envs
