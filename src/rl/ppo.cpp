#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace crl::rl {

namespace {
std::string nonFiniteMessage(const std::string& quantity, double value,
                             int episode, int epoch,
                             std::size_t minibatchStart) {
  std::ostringstream os;
  os << "PpoTrainer: non-finite " << quantity << " (" << value
     << ") at episode " << episode;
  if (epoch >= 0)
    os << ", update epoch " << epoch << ", minibatch offset " << minibatchStart;
  os << "; aborting the update before it reaches the parameters";
  return os.str();
}
}  // namespace

NonFiniteError::NonFiniteError(const std::string& quantityIn, double valueIn,
                               int episodeIn, int epochIn,
                               std::size_t minibatchStartIn)
    : std::runtime_error(nonFiniteMessage(quantityIn, valueIn, episodeIn,
                                          epochIn, minibatchStartIn)),
      quantity(quantityIn),
      value(valueIn),
      episode(episodeIn),
      epoch(epochIn),
      minibatchStart(minibatchStartIn) {}

void computeGae(const std::vector<Transition>& steps, double gamma, double lambda,
                std::vector<double>* advantages, std::vector<double>* returns) {
  const std::size_t n = steps.size();
  advantages->assign(n, 0.0);
  returns->assign(n, 0.0);
  double gae = 0.0;
  for (std::size_t ii = n; ii-- > 0;) {
    const bool terminal = steps[ii].terminal;
    const double nextValue = (terminal || ii + 1 == n) ? 0.0 : steps[ii + 1].value;
    const double delta = steps[ii].reward + gamma * nextValue - steps[ii].value;
    gae = terminal ? delta : delta + gamma * lambda * gae;
    // At a buffer boundary (ii+1==n) without terminal we bootstrap with 0;
    // acceptable bias since buffers end at episode boundaries below.
    (*advantages)[ii] = gae;
    (*returns)[ii] = gae + steps[ii].value;
  }
}

PpoTrainer::PpoTrainer(Env& env, ActorCritic& policy, PpoConfig cfg, util::Rng rng)
    : env_(env),
      policy_(policy),
      cfg_(cfg),
      rng_(rng),
      optimizer_(policy.parameters(), {.lr = cfg.learningRate}) {}

PpoTrainer::PpoTrainer(VecEnv& envs, ActorCritic& policy, PpoConfig cfg, util::Rng rng)
    : env_(envs.lane(0)),
      vecEnv_(&envs),
      policy_(policy),
      cfg_(cfg),
      rng_(rng),
      optimizer_(policy.parameters(), {.lr = cfg.learningRate}) {}

void PpoTrainer::train(int episodes,
                       const std::function<void(const EpisodeStats&)>& onEpisode) {
  if (vecEnv_ && vecEnv_->size() > 1) {
    trainVectorized(episodes, onEpisode);
  } else {
    // One-shot training is chunked training with an immediate tail flush;
    // the split exists so checkpointing callers can stop between the two.
    trainChunk(episodes, onEpisode);
    finishTraining();
  }
}

void PpoTrainer::trainChunk(int episodes,
                            const std::function<void(const EpisodeStats&)>& onEpisode) {
  if (vecEnv_ && vecEnv_->size() > 1)
    throw std::logic_error(
        "PpoTrainer::trainChunk: checkpointable chunk training requires the "
        "sequential path (single-lane trainer)");
  obs::TraceSpan span("rl.ppo.train_chunk", "rl");
  static auto& envSteps = obs::counter("rl.ppo.env_steps");
  static auto& episodesDone = obs::counter("rl.ppo.episodes");
  static auto& throughput = obs::gauge("rl.ppo.train_steps_per_s");
  const std::int64_t chunkStartNs = obs::monotonicNowNs();
  std::uint64_t chunkSteps = 0;

  std::vector<Transition>& buffer = pendingBuffer_;
  buffer.reserve(static_cast<std::size_t>(cfg_.stepsPerUpdate) + 64);

  for (int ep = 0; ep < episodes; ++ep) {
    Observation obs = env_.reset(rng_);
    double epReward = 0.0;
    int epLen = 0;
    bool epSuccess = false;

    for (int t = 0; t < env_.maxSteps(); ++t) {
      PolicyOutput out = policy_.forward(obs);
      SampledAction act = sampleAction(out.logits.value(), rng_);

      Transition tr;
      tr.obs = obs;
      tr.columns = act.columns;
      tr.logProb = act.logProb;
      tr.value = out.value.item();

      StepResult res = env_.step(act.actions);
      // Chaos gate: a benchmark whose reward computation went non-finite (a
      // divide-by-zero FoM, a NaN spec). The guard in update() must catch it
      // before it reaches the parameters.
      if (auto h = util::failpoint::check("train.reward");
          h && h->action == "nan")
        res.reward = std::numeric_limits<double>::quiet_NaN();
      tr.reward = res.reward;
      tr.terminal = res.done || (t + 1 == env_.maxSteps());
      buffer.push_back(std::move(tr));

      epReward += res.reward;
      ++epLen;
      obs = res.obs;
      if (res.done) {
        epSuccess = res.success;
        break;
      }
    }

    ++episodeCounter_;
    episodesDone.add();
    envSteps.add(static_cast<std::uint64_t>(epLen));
    chunkSteps += static_cast<std::uint64_t>(epLen);
    if (onEpisode) onEpisode({episodeCounter_, epReward, epLen, epSuccess});

    if (static_cast<int>(buffer.size()) >= cfg_.stepsPerUpdate) {
      update(buffer);
      buffer.clear();
    }
  }

  const double chunkSeconds =
      static_cast<double>(obs::monotonicNowNs() - chunkStartNs) / 1e9;
  if (chunkSeconds > 0.0)
    throughput.set(static_cast<double>(chunkSteps) / chunkSeconds);
}

void PpoTrainer::finishTraining() {
  if (pendingBuffer_.size() > 8) update(pendingBuffer_);
  // Dropped unconditionally (even the <= 8 leftovers), matching the original
  // train() semantics where the buffer was a local.
  pendingBuffer_.clear();
}

void PpoTrainer::trainVectorized(int episodes,
                                 const std::function<void(const EpisodeStats&)>& onEpisode) {
  VecEnv& vec = *vecEnv_;
  const std::size_t lanes = vec.size();

  // Per-lane action-sampling streams forked deterministically from the
  // trainer RNG, so lane trajectories do not depend on each other.
  std::vector<util::Rng> actionRng;
  actionRng.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) actionRng.push_back(rng_.fork());

  // In-flight episode per lane; finished episodes flush contiguously into
  // the update buffer so GAE sees whole episodes, exactly as in the
  // sequential path.
  struct LaneEpisode {
    std::vector<Transition> steps;
    double reward = 0.0;
    int length = 0;
  };
  std::vector<LaneEpisode> inflight(lanes);
  std::vector<Observation> obs = vec.resetAll();

  std::vector<Transition> buffer;
  buffer.reserve(static_cast<std::size_t>(cfg_.stepsPerUpdate) + 64);

  int episodesDone = 0;
  while (episodesDone < episodes) {
    // One matrix pass over all lanes; collection needs values only, so the
    // autograd graph is skipped (update re-builds it per minibatch).
    std::vector<PolicyOutput> outs;
    std::vector<SampledAction> acts(lanes);
    std::vector<std::vector<int>> actions(lanes);
    {
      nn::NoGradGuard inference;
      outs = policy_.forwardBatch(obs);
    }
    for (std::size_t i = 0; i < lanes; ++i) {
      acts[i] = sampleAction(outs[i].logits.value(), actionRng[i]);
      actions[i] = acts[i].actions;
    }

    std::vector<StepResult> results = vec.stepAll(actions);

    for (std::size_t i = 0; i < lanes; ++i) {
      LaneEpisode& ep = inflight[i];
      Transition tr;
      tr.obs = std::move(obs[i]);
      tr.columns = std::move(acts[i].columns);
      tr.logProb = acts[i].logProb;
      tr.value = outs[i].value.item();
      tr.reward = results[i].reward;
      ep.reward += results[i].reward;
      ++ep.length;
      const bool terminal =
          results[i].done || ep.length >= vec.lane(i).maxSteps();
      tr.terminal = terminal;
      ep.steps.push_back(std::move(tr));

      if (terminal) {
        static auto& envSteps = obs::counter("rl.ppo.env_steps");
        static auto& episodesTotal = obs::counter("rl.ppo.episodes");
        envSteps.add(static_cast<std::uint64_t>(ep.length));
        episodesTotal.add();
        for (Transition& t : ep.steps) buffer.push_back(std::move(t));
        ++episodeCounter_;
        ++episodesDone;
        if (onEpisode)
          onEpisode({episodeCounter_, ep.reward, ep.length,
                     results[i].done && results[i].success});
        ep = LaneEpisode{};
        obs[i] = vec.resetLane(i);
      } else {
        obs[i] = std::move(results[i].obs);
      }
    }

    if (static_cast<int>(buffer.size()) >= cfg_.stepsPerUpdate) {
      update(buffer);
      buffer.clear();
    }
  }
  if (buffer.size() > 8) update(buffer);
}

void PpoTrainer::update(std::vector<Transition>& buffer) {
  obs::TraceSpan span("rl.ppo.update", "rl");
  static auto& updates = obs::counter("rl.ppo.updates");
  static auto& updateSeconds = obs::histogram("rl.ppo.update_seconds");
  updates.add();
  obs::ScopedTimer timer(updateSeconds);
  std::vector<double> advantages, returns;
  computeGae(buffer, cfg_.gamma, cfg_.gaeLambda, &advantages, &returns);

  // Normalize advantages across the batch.
  double m = 0.0, sq = 0.0;
  for (double a : advantages) m += a;
  m /= static_cast<double>(advantages.size());
  for (double a : advantages) sq += (a - m) * (a - m);
  const double sd = std::sqrt(sq / std::max<std::size_t>(advantages.size() - 1, 1)) + 1e-8;
  for (double& a : advantages) a = (a - m) / sd;

  // Non-finite guard, stage 1: one NaN reward poisons every advantage
  // through the normalization above. Catch it here — with the offending
  // index — instead of letting Adam write NaN into every parameter.
  for (std::size_t i = 0; i < advantages.size(); ++i) {
    if (!std::isfinite(advantages[i]))
      throw NonFiniteError("advantage", advantages[i], episodeCounter_, -1, i);
    if (!std::isfinite(returns[i]))
      throw NonFiniteError("return", returns[i], episodeCounter_, -1, i);
  }

  const std::size_t n = buffer.size();
  for (int epoch = 0; epoch < cfg_.updateEpochs; ++epoch) {
    auto perm = rng_.permutation(n);
    const std::size_t mb = static_cast<std::size_t>(cfg_.minibatchSize);
    for (std::size_t start = 0; start < n; start += mb) {
      const std::size_t end = std::min(start + mb, n);
      optimizer_.zeroGrad();
      {
        // The minibatch tape lives in the arena: graph nodes and their
        // buffers are recycled across minibatches instead of reallocated.
        // Parameter gradients are heap-owned (Adam pre-allocates them), so
        // resetting the tape before the optimizer step is safe.
        std::optional<nn::ArenaScope> tape;
        if (cfg_.arenaUpdate) tape.emplace(arena_);
        nn::Tensor loss =
            cfg_.batchedUpdate
                ? minibatchLossBatched(buffer, perm, start, end, advantages,
                                       returns)
                : minibatchLossSequential(buffer, perm, start, end, advantages,
                                          returns);
        double lossVal = loss.item();
        // Chaos gate: pretend this minibatch's loss went NaN (the real
        // triggers — exploding ratios, non-finite specs — are hard to
        // provoke on demand; the guard below must fire either way).
        if (auto h = util::failpoint::check("train.loss");
            h && h->action == "nan")
          lossVal = std::numeric_limits<double>::quiet_NaN();
        // Non-finite guard, stage 2: refuse to backpropagate a NaN/inf
        // loss. The structured error names exactly where training was.
        if (!std::isfinite(lossVal)) {
          static auto& aborts = obs::counter("rl.ppo.nonfinite_aborts");
          aborts.add();
          throw NonFiniteError("loss", lossVal, episodeCounter_, epoch, start);
        }
        // Observation only: .item() reads the eager forward value.
        static auto& lossGauge = obs::gauge("rl.ppo.minibatch_loss");
        lossGauge.set(lossVal);
        nn::backward(loss);
      }
      if (cfg_.arenaUpdate) arena_.reset();
      nn::clipGradNorm(optimizer_.parameters(), cfg_.maxGradNorm);
      optimizer_.step();
    }
  }
}

nn::Tensor PpoTrainer::minibatchLossSequential(
    const std::vector<Transition>& buffer, const std::vector<std::size_t>& perm,
    std::size_t start, std::size_t end, const std::vector<double>& advantages,
    const std::vector<double>& returns) {
  nn::Tensor policyLoss = nn::Tensor::scalar(0.0);
  nn::Tensor valueLoss = nn::Tensor::scalar(0.0);
  nn::Tensor entropy = nn::Tensor::scalar(0.0);
  const double invCount = 1.0 / static_cast<double>(end - start);

  for (std::size_t k = start; k < end; ++k) {
    const Transition& tr = buffer[perm[k]];
    const double adv = advantages[perm[k]];
    const double ret = returns[perm[k]];

    PolicyOutput out = policy_.forward(tr.obs);
    nn::Tensor logp = logProbOf(out.logits, tr.columns);
    nn::Tensor ratio = nn::expT(nn::addScalar(logp, -tr.logProb));
    nn::Tensor unclipped = nn::scale(ratio, adv);
    nn::Tensor clipped =
        nn::scale(nn::clampT(ratio, 1.0 - cfg_.clipEps, 1.0 + cfg_.clipEps), adv);
    policyLoss = nn::add(policyLoss, nn::minT(unclipped, clipped));

    nn::Tensor verr = nn::addScalar(out.value, -ret);
    valueLoss = nn::add(valueLoss, nn::sum(nn::mul(verr, verr)));
    entropy = nn::add(entropy, entropyOf(out.logits));
  }

  static auto& entropyGauge = obs::gauge("rl.ppo.minibatch_entropy");
  entropyGauge.set(entropy.item() * invCount);

  // Maximize surrogate + entropy, minimize value error.
  return nn::add(nn::add(nn::scale(policyLoss, -invCount),
                         nn::scale(valueLoss, cfg_.valueCoef * invCount)),
                 nn::scale(entropy, -cfg_.entropyCoef * invCount));
}

nn::Tensor PpoTrainer::minibatchLossBatched(
    const std::vector<Transition>& buffer, const std::vector<std::size_t>& perm,
    std::size_t start, std::size_t end, const std::vector<double>& advantages,
    const std::vector<double>& returns) {
  const std::size_t count = end - start;
  const double invCount = 1.0 / static_cast<double>(count);

  // Staged into trainer-owned scratch: slot assignment reuses the previous
  // minibatch's Observation buffers (shapes are constant), and the index /
  // target Mats are pooled, so steady-state staging does not allocate.
  obsScratch_.resize(count);
  columnsScratch_.clear();
  linalg::Mat negOldLogp = nn::pooledMat(count, 1);
  linalg::Mat adv = nn::pooledMat(count, 1);
  linalg::Mat negRet = nn::pooledMat(count, 1);
  for (std::size_t k = start; k < end; ++k) {
    const Transition& tr = buffer[perm[k]];
    obsScratch_[k - start] = tr.obs;
    columnsScratch_.insert(columnsScratch_.end(), tr.columns.begin(),
                           tr.columns.end());
    negOldLogp(k - start, 0) = -tr.logProb;
    adv(k - start, 0) = advantages[perm[k]];
    negRet(k - start, 0) = -returns[perm[k]];
  }

  // One graph for the whole minibatch: stacked forward, then batched
  // surrogate / value / entropy terms over [B x 1] columns.
  BatchedPolicyOutput out = policy_.forwardBatchStacked(obsScratch_);
  nn::Tensor logp = logProbBatch(out.logits, columnsScratch_, count);
  nn::Tensor ratio = nn::expT(nn::addConst(logp, negOldLogp));
  nn::Tensor advT(std::move(adv));  // constant: no gradient into advantages
  nn::Tensor unclipped = nn::mul(ratio, advT);
  nn::Tensor clipped =
      nn::mul(nn::clampT(ratio, 1.0 - cfg_.clipEps, 1.0 + cfg_.clipEps), advT);
  nn::Tensor policyLoss = nn::sum(nn::minT(unclipped, clipped));

  nn::Tensor verr = nn::addConst(out.values, negRet);
  nn::Tensor valueLoss = nn::sum(nn::mul(verr, verr));
  nn::Tensor entropy = entropyBatch(out.logits, count);
  nn::reclaimPooledMat(std::move(negOldLogp));
  nn::reclaimPooledMat(std::move(negRet));

  static auto& entropyGauge = obs::gauge("rl.ppo.minibatch_entropy");
  entropyGauge.set(entropy.item() * invCount);

  return nn::add(nn::add(nn::scale(policyLoss, -invCount),
                         nn::scale(valueLoss, cfg_.valueCoef * invCount)),
                 nn::scale(entropy, -cfg_.entropyCoef * invCount));
}

// ---- checkpoint/resume ----------------------------------------------------

namespace {

constexpr const char* kTrainerRngKey = "ppo.trainer";
constexpr const char* kEpisodeKey = "ppo.episodes";
constexpr const char* kPendingKey = "ppo.pending";

void encodeObservation(nn::ByteWriter& w, const Observation& obs) {
  w.mat(obs.nodeFeatures);
  w.vec(obs.specNow);
  w.vec(obs.specTarget);
  w.vec(obs.paramsNorm);
}

bool decodeObservation(nn::ByteReader& r, Observation& obs) {
  return r.mat(obs.nodeFeatures) && r.vec(obs.specNow) && r.vec(obs.specTarget) &&
         r.vec(obs.paramsNorm);
}

}  // namespace

void PpoTrainer::saveState(nn::TrainState& st) const {
  if (vecEnv_ && vecEnv_->size() > 1)
    throw std::logic_error(
        "PpoTrainer::saveState: multi-lane trainer state (per-lane RNG "
        "streams, in-flight episodes) is not checkpointable");
  st.params.clear();
  st.params.reserve(optimizer_.parameters().size());
  for (const auto& p : optimizer_.parameters()) st.params.push_back(p.value());
  st.adamM = optimizer_.firstMoments();
  st.adamV = optimizer_.secondMoments();
  st.adamStep = optimizer_.stepCount();
  st.setRng(kTrainerRngKey, rng_.serializeState());
  st.setCounter(kEpisodeKey, episodeCounter_);

  nn::ByteWriter w;
  w.u64(pendingBuffer_.size());
  for (const Transition& tr : pendingBuffer_) {
    encodeObservation(w, tr.obs);
    w.vecI(tr.columns);
    w.f64(tr.logProb);
    w.f64(tr.value);
    w.f64(tr.reward);
    w.b8(tr.terminal);
  }
  st.setBlob(kPendingKey, w.take());
}

bool PpoTrainer::loadState(const nn::TrainState& st, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };

  // Validate every section into staging first; the trainer mutates only
  // after the whole snapshot has proven coherent.
  const auto& params = optimizer_.parameters();
  const std::vector<linalg::Mat>* srcParams = &st.params;
  const std::vector<linalg::Mat>* srcM = &st.adamM;
  const std::vector<linalg::Mat>* srcV = &st.adamV;
  std::vector<linalg::Mat> adaptedParams, adaptedM, adaptedV;
  if (st.params.size() != params.size()) {
    // A count mismatch may be an older parameter layout (e.g. the retired
    // per-head GAT weights). Let the policy's migration hook repack the
    // params AND the aligned Adam moments — the update is elementwise, so
    // the moments migrate with the same permutation and the resumed Adam
    // trajectory continues exactly.
    if (st.adamM.size() != st.params.size() || st.adamV.size() != st.params.size())
      return fail("TrainState holds " + std::to_string(st.params.size()) +
                  " parameter tensors, policy expects " +
                  std::to_string(params.size()));
    adaptedParams = st.params;
    adaptedM = st.adamM;
    adaptedV = st.adamV;
    if (!policy_.adaptLegacyParameterMats(adaptedParams) ||
        !policy_.adaptLegacyParameterMats(adaptedM) ||
        !policy_.adaptLegacyParameterMats(adaptedV) ||
        adaptedParams.size() != params.size())
      return fail("TrainState holds " + std::to_string(st.params.size()) +
                  " parameter tensors, policy expects " +
                  std::to_string(params.size()) +
                  " (and no legacy-layout migration applies)");
    srcParams = &adaptedParams;
    srcM = &adaptedM;
    srcV = &adaptedV;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& expect = params[i].value();
    const auto& got = (*srcParams)[i];
    if (got.rows() != expect.rows() || got.cols() != expect.cols())
      return fail("TrainState parameter " + std::to_string(i) + " is " +
                  std::to_string(got.rows()) + "x" +
                  std::to_string(got.cols()) + ", policy expects " +
                  std::to_string(expect.rows()) + "x" +
                  std::to_string(expect.cols()));
  }

  const std::string* rngState = st.rng(kTrainerRngKey);
  if (!rngState) return fail("TrainState is missing the trainer RNG stream");
  util::Rng stagedRng = rng_;
  if (!stagedRng.restoreState(*rngState))
    return fail("TrainState trainer RNG stream does not parse");

  std::int64_t episodes = 0;
  if (!st.counter(kEpisodeKey, episodes))
    return fail("TrainState is missing the episode counter");

  std::vector<Transition> stagedBuffer;
  if (const std::string* blob = st.blob(kPendingKey)) {
    nn::ByteReader r(*blob);
    std::uint64_t n = 0;
    if (!r.u64(n)) return fail("TrainState pending buffer is truncated");
    stagedBuffer.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Transition tr;
      if (!decodeObservation(r, tr.obs) || !r.vecI(tr.columns) ||
          !r.f64(tr.logProb) || !r.f64(tr.value) || !r.f64(tr.reward) ||
          !r.b8(tr.terminal))
        return fail("TrainState pending transition " + std::to_string(i) +
                    " is truncated");
      stagedBuffer.push_back(std::move(tr));
    }
  } else {
    return fail("TrainState is missing the pending transition buffer");
  }

  if (!optimizer_.restoreMoments(*srcM, *srcV, st.adamStep, error))
    return false;
  for (std::size_t i = 0; i < params.size(); ++i)
    const_cast<nn::Tensor&>(params[i]).mutableValue() = (*srcParams)[i];
  rng_ = stagedRng;
  episodeCounter_ = static_cast<int>(episodes);
  pendingBuffer_ = std::move(stagedBuffer);
  return true;
}

}  // namespace crl::rl
