#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/logging.h"

namespace crl::rl {

void computeGae(const std::vector<Transition>& steps, double gamma, double lambda,
                std::vector<double>* advantages, std::vector<double>* returns) {
  const std::size_t n = steps.size();
  advantages->assign(n, 0.0);
  returns->assign(n, 0.0);
  double gae = 0.0;
  for (std::size_t ii = n; ii-- > 0;) {
    const bool terminal = steps[ii].terminal;
    const double nextValue = (terminal || ii + 1 == n) ? 0.0 : steps[ii + 1].value;
    const double delta = steps[ii].reward + gamma * nextValue - steps[ii].value;
    gae = terminal ? delta : delta + gamma * lambda * gae;
    // At a buffer boundary (ii+1==n) without terminal we bootstrap with 0;
    // acceptable bias since buffers end at episode boundaries below.
    (*advantages)[ii] = gae;
    (*returns)[ii] = gae + steps[ii].value;
  }
}

PpoTrainer::PpoTrainer(Env& env, ActorCritic& policy, PpoConfig cfg, util::Rng rng)
    : env_(env),
      policy_(policy),
      cfg_(cfg),
      rng_(rng),
      optimizer_(policy.parameters(), {.lr = cfg.learningRate}) {}

PpoTrainer::PpoTrainer(VecEnv& envs, ActorCritic& policy, PpoConfig cfg, util::Rng rng)
    : env_(envs.lane(0)),
      vecEnv_(&envs),
      policy_(policy),
      cfg_(cfg),
      rng_(rng),
      optimizer_(policy.parameters(), {.lr = cfg.learningRate}) {}

void PpoTrainer::train(int episodes,
                       const std::function<void(const EpisodeStats&)>& onEpisode) {
  if (vecEnv_ && vecEnv_->size() > 1)
    trainVectorized(episodes, onEpisode);
  else
    trainSequential(episodes, onEpisode);
}

void PpoTrainer::trainSequential(int episodes,
                                 const std::function<void(const EpisodeStats&)>& onEpisode) {
  std::vector<Transition> buffer;
  buffer.reserve(static_cast<std::size_t>(cfg_.stepsPerUpdate) + 64);

  for (int ep = 0; ep < episodes; ++ep) {
    Observation obs = env_.reset(rng_);
    double epReward = 0.0;
    int epLen = 0;
    bool epSuccess = false;

    for (int t = 0; t < env_.maxSteps(); ++t) {
      PolicyOutput out = policy_.forward(obs);
      SampledAction act = sampleAction(out.logits.value(), rng_);

      Transition tr;
      tr.obs = obs;
      tr.columns = act.columns;
      tr.logProb = act.logProb;
      tr.value = out.value.item();

      StepResult res = env_.step(act.actions);
      tr.reward = res.reward;
      tr.terminal = res.done || (t + 1 == env_.maxSteps());
      buffer.push_back(std::move(tr));

      epReward += res.reward;
      ++epLen;
      obs = res.obs;
      if (res.done) {
        epSuccess = res.success;
        break;
      }
    }

    ++episodeCounter_;
    if (onEpisode) onEpisode({episodeCounter_, epReward, epLen, epSuccess});

    if (static_cast<int>(buffer.size()) >= cfg_.stepsPerUpdate) {
      update(buffer);
      buffer.clear();
    }
  }
  if (buffer.size() > 8) update(buffer);
}

void PpoTrainer::trainVectorized(int episodes,
                                 const std::function<void(const EpisodeStats&)>& onEpisode) {
  VecEnv& vec = *vecEnv_;
  const std::size_t lanes = vec.size();

  // Per-lane action-sampling streams forked deterministically from the
  // trainer RNG, so lane trajectories do not depend on each other.
  std::vector<util::Rng> actionRng;
  actionRng.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) actionRng.push_back(rng_.fork());

  // In-flight episode per lane; finished episodes flush contiguously into
  // the update buffer so GAE sees whole episodes, exactly as in the
  // sequential path.
  struct LaneEpisode {
    std::vector<Transition> steps;
    double reward = 0.0;
    int length = 0;
  };
  std::vector<LaneEpisode> inflight(lanes);
  std::vector<Observation> obs = vec.resetAll();

  std::vector<Transition> buffer;
  buffer.reserve(static_cast<std::size_t>(cfg_.stepsPerUpdate) + 64);

  int episodesDone = 0;
  while (episodesDone < episodes) {
    // One matrix pass over all lanes; collection needs values only, so the
    // autograd graph is skipped (update re-builds it per minibatch).
    std::vector<PolicyOutput> outs;
    std::vector<SampledAction> acts(lanes);
    std::vector<std::vector<int>> actions(lanes);
    {
      nn::NoGradGuard inference;
      outs = policy_.forwardBatch(obs);
    }
    for (std::size_t i = 0; i < lanes; ++i) {
      acts[i] = sampleAction(outs[i].logits.value(), actionRng[i]);
      actions[i] = acts[i].actions;
    }

    std::vector<StepResult> results = vec.stepAll(actions);

    for (std::size_t i = 0; i < lanes; ++i) {
      LaneEpisode& ep = inflight[i];
      Transition tr;
      tr.obs = std::move(obs[i]);
      tr.columns = std::move(acts[i].columns);
      tr.logProb = acts[i].logProb;
      tr.value = outs[i].value.item();
      tr.reward = results[i].reward;
      ep.reward += results[i].reward;
      ++ep.length;
      const bool terminal =
          results[i].done || ep.length >= vec.lane(i).maxSteps();
      tr.terminal = terminal;
      ep.steps.push_back(std::move(tr));

      if (terminal) {
        for (Transition& t : ep.steps) buffer.push_back(std::move(t));
        ++episodeCounter_;
        ++episodesDone;
        if (onEpisode)
          onEpisode({episodeCounter_, ep.reward, ep.length,
                     results[i].done && results[i].success});
        ep = LaneEpisode{};
        obs[i] = vec.resetLane(i);
      } else {
        obs[i] = std::move(results[i].obs);
      }
    }

    if (static_cast<int>(buffer.size()) >= cfg_.stepsPerUpdate) {
      update(buffer);
      buffer.clear();
    }
  }
  if (buffer.size() > 8) update(buffer);
}

void PpoTrainer::update(std::vector<Transition>& buffer) {
  std::vector<double> advantages, returns;
  computeGae(buffer, cfg_.gamma, cfg_.gaeLambda, &advantages, &returns);

  // Normalize advantages across the batch.
  double m = 0.0, sq = 0.0;
  for (double a : advantages) m += a;
  m /= static_cast<double>(advantages.size());
  for (double a : advantages) sq += (a - m) * (a - m);
  const double sd = std::sqrt(sq / std::max<std::size_t>(advantages.size() - 1, 1)) + 1e-8;
  for (double& a : advantages) a = (a - m) / sd;

  const std::size_t n = buffer.size();
  for (int epoch = 0; epoch < cfg_.updateEpochs; ++epoch) {
    auto perm = rng_.permutation(n);
    const std::size_t mb = static_cast<std::size_t>(cfg_.minibatchSize);
    for (std::size_t start = 0; start < n; start += mb) {
      const std::size_t end = std::min(start + mb, n);
      optimizer_.zeroGrad();
      {
        // The minibatch tape lives in the arena: graph nodes and their
        // buffers are recycled across minibatches instead of reallocated.
        // Parameter gradients are heap-owned (Adam pre-allocates them), so
        // resetting the tape before the optimizer step is safe.
        std::optional<nn::ArenaScope> tape;
        if (cfg_.arenaUpdate) tape.emplace(arena_);
        nn::Tensor loss =
            cfg_.batchedUpdate
                ? minibatchLossBatched(buffer, perm, start, end, advantages,
                                       returns)
                : minibatchLossSequential(buffer, perm, start, end, advantages,
                                          returns);
        nn::backward(loss);
      }
      if (cfg_.arenaUpdate) arena_.reset();
      nn::clipGradNorm(optimizer_.parameters(), cfg_.maxGradNorm);
      optimizer_.step();
    }
  }
}

nn::Tensor PpoTrainer::minibatchLossSequential(
    const std::vector<Transition>& buffer, const std::vector<std::size_t>& perm,
    std::size_t start, std::size_t end, const std::vector<double>& advantages,
    const std::vector<double>& returns) {
  nn::Tensor policyLoss = nn::Tensor::scalar(0.0);
  nn::Tensor valueLoss = nn::Tensor::scalar(0.0);
  nn::Tensor entropy = nn::Tensor::scalar(0.0);
  const double invCount = 1.0 / static_cast<double>(end - start);

  for (std::size_t k = start; k < end; ++k) {
    const Transition& tr = buffer[perm[k]];
    const double adv = advantages[perm[k]];
    const double ret = returns[perm[k]];

    PolicyOutput out = policy_.forward(tr.obs);
    nn::Tensor logp = logProbOf(out.logits, tr.columns);
    nn::Tensor ratio = nn::expT(nn::addScalar(logp, -tr.logProb));
    nn::Tensor unclipped = nn::scale(ratio, adv);
    nn::Tensor clipped =
        nn::scale(nn::clampT(ratio, 1.0 - cfg_.clipEps, 1.0 + cfg_.clipEps), adv);
    policyLoss = nn::add(policyLoss, nn::minT(unclipped, clipped));

    nn::Tensor verr = nn::addScalar(out.value, -ret);
    valueLoss = nn::add(valueLoss, nn::sum(nn::mul(verr, verr)));
    entropy = nn::add(entropy, entropyOf(out.logits));
  }

  // Maximize surrogate + entropy, minimize value error.
  return nn::add(nn::add(nn::scale(policyLoss, -invCount),
                         nn::scale(valueLoss, cfg_.valueCoef * invCount)),
                 nn::scale(entropy, -cfg_.entropyCoef * invCount));
}

nn::Tensor PpoTrainer::minibatchLossBatched(
    const std::vector<Transition>& buffer, const std::vector<std::size_t>& perm,
    std::size_t start, std::size_t end, const std::vector<double>& advantages,
    const std::vector<double>& returns) {
  const std::size_t count = end - start;
  const double invCount = 1.0 / static_cast<double>(count);

  // Staged into trainer-owned scratch: slot assignment reuses the previous
  // minibatch's Observation buffers (shapes are constant), and the index /
  // target Mats are pooled, so steady-state staging does not allocate.
  obsScratch_.resize(count);
  columnsScratch_.clear();
  linalg::Mat negOldLogp = nn::pooledMat(count, 1);
  linalg::Mat adv = nn::pooledMat(count, 1);
  linalg::Mat negRet = nn::pooledMat(count, 1);
  for (std::size_t k = start; k < end; ++k) {
    const Transition& tr = buffer[perm[k]];
    obsScratch_[k - start] = tr.obs;
    columnsScratch_.insert(columnsScratch_.end(), tr.columns.begin(),
                           tr.columns.end());
    negOldLogp(k - start, 0) = -tr.logProb;
    adv(k - start, 0) = advantages[perm[k]];
    negRet(k - start, 0) = -returns[perm[k]];
  }

  // One graph for the whole minibatch: stacked forward, then batched
  // surrogate / value / entropy terms over [B x 1] columns.
  BatchedPolicyOutput out = policy_.forwardBatchStacked(obsScratch_);
  nn::Tensor logp = logProbBatch(out.logits, columnsScratch_, count);
  nn::Tensor ratio = nn::expT(nn::addConst(logp, negOldLogp));
  nn::Tensor advT(std::move(adv));  // constant: no gradient into advantages
  nn::Tensor unclipped = nn::mul(ratio, advT);
  nn::Tensor clipped =
      nn::mul(nn::clampT(ratio, 1.0 - cfg_.clipEps, 1.0 + cfg_.clipEps), advT);
  nn::Tensor policyLoss = nn::sum(nn::minT(unclipped, clipped));

  nn::Tensor verr = nn::addConst(out.values, negRet);
  nn::Tensor valueLoss = nn::sum(nn::mul(verr, verr));
  nn::Tensor entropy = entropyBatch(out.logits, count);
  nn::reclaimPooledMat(std::move(negOldLogp));
  nn::reclaimPooledMat(std::move(negRet));

  return nn::add(nn::add(nn::scale(policyLoss, -invCount),
                         nn::scale(valueLoss, cfg_.valueCoef * invCount)),
                 nn::scale(entropy, -cfg_.entropyCoef * invCount));
}

}  // namespace crl::rl
