#include "rl/policy.h"

#include <cmath>
#include <stdexcept>

#include "linalg/vec_math.h"

namespace crl::rl {

namespace {
/// Row-wise softmax on plain values (no autograd needed for sampling) —
/// the shared vec_math kernel, same summation order as nn::softmaxRows.
linalg::Mat softmaxValues(const linalg::Mat& logits) {
  linalg::Mat p = logits;
  linalg::vecmath::softmaxRowsInPlace(p.data(), p.rows(), p.cols());
  return p;
}
}  // namespace

std::vector<PolicyOutput> ActorCritic::forwardBatch(
    const std::vector<Observation>& obs) const {
  std::vector<PolicyOutput> out;
  out.reserve(obs.size());
  for (const Observation& o : obs) out.push_back(forward(o));
  return out;
}

BatchedPolicyOutput ActorCritic::forwardBatchStacked(
    const std::vector<Observation>& obs) const {
  if (obs.empty()) throw std::invalid_argument("forwardBatchStacked: empty batch");
  std::vector<nn::Tensor> logits, values;
  logits.reserve(obs.size());
  values.reserve(obs.size());
  for (const Observation& o : obs) {
    PolicyOutput one = forward(o);
    logits.push_back(one.logits);
    values.push_back(one.value);
  }
  BatchedPolicyOutput out;
  out.logits = nn::concatRowsAll(logits);
  out.values = nn::concatRowsAll(values);
  return out;
}

SampledAction sampleAction(const linalg::Mat& logits, util::Rng& rng) {
  linalg::Mat p = softmaxValues(logits);
  SampledAction out;
  out.actions.resize(p.rows());
  out.columns.resize(p.rows());
  for (std::size_t r = 0; r < p.rows(); ++r) {
    std::vector<double> w(p.cols());
    for (std::size_t c = 0; c < p.cols(); ++c) w[c] = p(r, c);
    std::size_t col = rng.categorical(w);
    out.columns[r] = static_cast<int>(col);
    out.actions[r] = static_cast<int>(col) - 1;
    out.logProb += std::log(std::max(p(r, col), 1e-12));
  }
  return out;
}

SampledAction greedyAction(const linalg::Mat& logits) {
  linalg::Mat p = softmaxValues(logits);
  SampledAction out;
  out.actions.resize(p.rows());
  out.columns.resize(p.rows());
  for (std::size_t r = 0; r < p.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < p.cols(); ++c)
      if (p(r, c) > p(r, best)) best = c;
    out.columns[r] = static_cast<int>(best);
    out.actions[r] = static_cast<int>(best) - 1;
    out.logProb += std::log(std::max(p(r, best), 1e-12));
  }
  return out;
}

nn::Tensor logProbOf(const nn::Tensor& logits, const std::vector<int>& columns) {
  nn::Tensor ls = nn::logSoftmaxRows(logits);
  return nn::sum(nn::gatherPerRow(ls, columns));
}

nn::Tensor entropyOf(const nn::Tensor& logits) {
  nn::Tensor p = nn::softmaxRows(logits);
  nn::Tensor lp = nn::logSoftmaxRows(logits);
  // H = -sum p log p, averaged over parameter rows.
  return nn::scale(nn::sum(nn::mul(p, lp)), -1.0 / static_cast<double>(logits.rows()));
}

nn::Tensor logProbBatch(const nn::Tensor& stackedLogits,
                        const std::vector<int>& columns, std::size_t batch) {
  if (batch == 0 || stackedLogits.rows() % batch != 0)
    throw std::invalid_argument("logProbBatch: rows must divide into batch");
  const std::size_t numParams = stackedLogits.rows() / batch;
  nn::Tensor ls = nn::logSoftmaxRows(stackedLogits);
  nn::Tensor picked = nn::gatherPerRow(ls, columns);       // B*M x 1
  return nn::sumRows(nn::reshape(picked, batch, numParams));  // B x 1
}

nn::Tensor entropyBatch(const nn::Tensor& stackedLogits, std::size_t batch) {
  if (batch == 0 || stackedLogits.rows() % batch != 0)
    throw std::invalid_argument("entropyBatch: rows must divide into batch");
  const std::size_t numParams = stackedLogits.rows() / batch;
  nn::Tensor p = nn::softmaxRows(stackedLogits);
  nn::Tensor lp = nn::logSoftmaxRows(stackedLogits);
  // Each observation contributes -sum(p log p) / M; rows are disjoint, so
  // the batch total is the all-rows sum scaled once.
  return nn::scale(nn::sum(nn::mul(p, lp)), -1.0 / static_cast<double>(numParams));
}

}  // namespace crl::rl
