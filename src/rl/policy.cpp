#include "rl/policy.h"

#include <cmath>

namespace crl::rl {

namespace {
/// Row-wise softmax on plain values (no autograd needed for sampling).
linalg::Mat softmaxValues(const linalg::Mat& logits) {
  linalg::Mat p = logits;
  for (std::size_t r = 0; r < p.rows(); ++r) {
    double mx = p(r, 0);
    for (std::size_t c = 1; c < p.cols(); ++c) mx = std::max(mx, p(r, c));
    double total = 0.0;
    for (std::size_t c = 0; c < p.cols(); ++c) {
      p(r, c) = std::exp(p(r, c) - mx);
      total += p(r, c);
    }
    for (std::size_t c = 0; c < p.cols(); ++c) p(r, c) /= total;
  }
  return p;
}
}  // namespace

std::vector<PolicyOutput> ActorCritic::forwardBatch(
    const std::vector<Observation>& obs) const {
  std::vector<PolicyOutput> out;
  out.reserve(obs.size());
  for (const Observation& o : obs) out.push_back(forward(o));
  return out;
}

SampledAction sampleAction(const linalg::Mat& logits, util::Rng& rng) {
  linalg::Mat p = softmaxValues(logits);
  SampledAction out;
  out.actions.resize(p.rows());
  out.columns.resize(p.rows());
  for (std::size_t r = 0; r < p.rows(); ++r) {
    std::vector<double> w(p.cols());
    for (std::size_t c = 0; c < p.cols(); ++c) w[c] = p(r, c);
    std::size_t col = rng.categorical(w);
    out.columns[r] = static_cast<int>(col);
    out.actions[r] = static_cast<int>(col) - 1;
    out.logProb += std::log(std::max(p(r, col), 1e-12));
  }
  return out;
}

SampledAction greedyAction(const linalg::Mat& logits) {
  linalg::Mat p = softmaxValues(logits);
  SampledAction out;
  out.actions.resize(p.rows());
  out.columns.resize(p.rows());
  for (std::size_t r = 0; r < p.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < p.cols(); ++c)
      if (p(r, c) > p(r, best)) best = c;
    out.columns[r] = static_cast<int>(best);
    out.actions[r] = static_cast<int>(best) - 1;
    out.logProb += std::log(std::max(p(r, best), 1e-12));
  }
  return out;
}

nn::Tensor logProbOf(const nn::Tensor& logits, const std::vector<int>& columns) {
  nn::Tensor ls = nn::logSoftmaxRows(logits);
  return nn::sum(nn::gatherPerRow(ls, columns));
}

nn::Tensor entropyOf(const nn::Tensor& logits) {
  nn::Tensor p = nn::softmaxRows(logits);
  nn::Tensor lp = nn::logSoftmaxRows(logits);
  // H = -sum p log p, averaged over parameter rows.
  return nn::scale(nn::sum(nn::mul(p, lp)), -1.0 / static_cast<double>(logits.rows()));
}

}  // namespace crl::rl
