#pragma once
// Crash-safe training-campaign runner: multiplexes independent training jobs
// (seed x topology x corner sweeps) over ONE shared work-stealing thread
// pool, with periodic checkpoints and resume.
//
// Each job is fully self-contained — its CampaignContext factory builds a
// fresh benchmark, environments, policy, and RNG streams inside the worker
// thread — so jobs are embarrassingly parallel and results are identical to
// a serial run for any worker count. The runner owns the campaign-level
// state that used to live as locals of bench::trainWithCurves (reward/length
// EMAs, the eval RNG stream, the curve samples) precisely so it can be
// checkpointed alongside the trainer state.
//
// On-disk layout (everything written atomically; see nn/serialize.h):
//
//   <outDir>/<job.name>/checkpoint.bin   periodic TrainState snapshot
//   <outDir>/<job.name>/curve.csv        training-curve samples (on completion)
//   <outDir>/<job.name>/policy.bin       final policy parameters
//   <outDir>/<job.name>/done             completion marker + final metrics,
//                                        written LAST — its presence means
//                                        every other artifact is complete
//
// Resume semantics (CampaignConfig::resume, on by default):
//   done marker present      -> job skipped, metrics parsed from the marker
//   valid checkpoint present -> training continues from it, bitwise as if
//                               the process had never died (resume parity;
//                               tests/rl/test_resume_parity.cpp)
//   checkpoint missing       -> job trains from scratch
//   checkpoint INVALID       -> the job FAILS with a message naming the file
//                               and defect: a corrupt snapshot means a bug
//                               (atomic writes cannot be torn by SIGKILL),
//                               and silently retraining would hide it.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/serialize.h"
#include "rl/ppo.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace crl::rl {

/// Deployment-accuracy probe result (the Fig. 3 "deploy accuracy" columns).
struct CampaignEvalReport {
  double accuracy = 0.0;
  double meanSteps = 0.0;
  double meanStepsSuccess = 0.0;
};

/// Everything one campaign job trains with, built fresh in the worker thread
/// by the job's factory. Implementations own the benchmark, both envs, and
/// the policy; the runner only borrows references.
class CampaignContext {
 public:
  virtual ~CampaignContext() = default;

  virtual Env& trainEnv() = 0;
  virtual ActorCritic& policy() = 0;

  /// Deployment accuracy in the evaluation environment (which may differ
  /// from the training env: transfer learning evaluates in fine fidelity).
  /// Typically forwards to core::evaluateAccuracy.
  virtual CampaignEvalReport evaluate(int episodes, util::Rng& rng) = 0;

  /// Solver warm-start snapshots of every benchmark the envs drive (one
  /// entry per distinct benchmark; train/eval may share one). Warm starts
  /// shift DC operating points at ulp level, so bitwise resume parity must
  /// carry them through the checkpoint.
  virtual std::vector<std::string> solverSnapshots() const = 0;
  virtual bool restoreSolverSnapshots(const std::vector<std::string>& blobs) = 0;
};

/// One training job: an agent trained for `episodes` with periodic
/// deploy-accuracy probes, mirroring bench::trainWithCurves.
struct CampaignJob {
  std::string name;                ///< unique; names the output subdirectory
  int episodes = 0;
  std::uint64_t trainSeed = 0;     ///< PpoTrainer RNG stream
  std::uint64_t evalSeed = 0;      ///< intermediate-eval RNG stream
  std::uint64_t finalEvalSeed = 0; ///< final-accuracy RNG stream
  int evalEvery = 100;
  int evalEpisodes = 15;
  PpoConfig ppo;
  std::function<std::unique_ptr<CampaignContext>()> make;

  // Optional extra artifacts (absolute/relative paths; empty = none).
  std::string curveCsv;    ///< extra copy of curve.csv (fig3 naming scheme)
  std::string policyBin;   ///< extra copy of the final parameters
  std::string csvMethod;   ///< "method" column of the curve CSV
  int csvSeedTag = 0;      ///< "seed" column of the curve CSV
};

struct CampaignConfig {
  std::string outDir = "crl_campaign";
  std::size_t workers = 1;     ///< shared pool size (1 = run jobs inline)
  int checkpointEvery = 100;   ///< episodes between checkpoints (0 = none)
  bool resume = true;          ///< honor done markers + checkpoints in outDir
  /// Test/ops hook, called right after each periodic checkpoint is written
  /// (from the worker thread running the job). The kill-and-resume suites
  /// crash the process here.
  std::function<void(const std::string& jobName, int episode)> onCheckpoint;

  /// Live campaign introspection: the runner atomically rewrites a status
  /// JSON (schema crl.campaign_status/v1 — job states, per-job episode
  /// progress and EMA reward, checkpoint/heartbeat ages, campaign ETA) at
  /// every job state transition and, throttled, from the episode loop.
  /// Purely observational — it never feeds back into training.
  bool writeStatus = true;
  std::string statusFile;          ///< empty = "<outDir>/campaign_status.json"
  /// Minimum seconds between throttled status rewrites; the
  /// CRL_METRICS_EVERY env knob (seconds, floating point) overrides this.
  double statusEverySeconds = 2.0;
};

struct CampaignJobResult {
  std::string name;
  std::string dir;
  bool skipped = false;   ///< done marker found; metrics parsed, nothing run
  bool resumed = false;   ///< continued from a checkpoint
  bool failed = false;
  std::string error;
  int episodes = 0;
  double finalMeanReward = 0.0;
  double finalMeanLength = 0.0;
  double finalAccuracy = 0.0;
  double finalMeanStepsSuccess = 0.0;
};

/// Curve samples (kept for programmatic access after run()).
struct CampaignCurvePoint {
  int episode = 0;
  double meanReward = 0.0;
  double meanLength = 0.0;
  double deployAccuracy = -1.0;  ///< -1 where not evaluated
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig cfg);
  ~CampaignRunner();

  /// Job names must be unique (they name directories); throws otherwise.
  void addJob(CampaignJob job);

  /// Run every job over one shared pool; results align with addJob order.
  /// Individual job failures are reported in the result, not thrown.
  std::vector<CampaignJobResult> run();

  const CampaignConfig& config() const { return cfg_; }

  /// Telemetry of the shared pool the last run() used, captured just before
  /// the pool wound down (workers == 0 when run() executed jobs inline).
  const util::ThreadPool::Stats& poolStats() const { return poolStats_; }

 private:
  struct StatusBoard;

  CampaignJobResult runJob(std::size_t jobIndex);

  CampaignConfig cfg_;
  std::vector<CampaignJob> jobs_;
  std::unique_ptr<StatusBoard> status_;
  util::ThreadPool::Stats poolStats_;
};

}  // namespace crl::rl
