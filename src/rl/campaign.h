#pragma once
// Crash-safe training-campaign runner: multiplexes independent training jobs
// (seed x topology x corner sweeps) over ONE shared work-stealing thread
// pool, with periodic checkpoints and resume.
//
// Each job is fully self-contained — its CampaignContext factory builds a
// fresh benchmark, environments, policy, and RNG streams inside the worker
// thread — so jobs are embarrassingly parallel and results are identical to
// a serial run for any worker count. The runner owns the campaign-level
// state that used to live as locals of bench::trainWithCurves (reward/length
// EMAs, the eval RNG stream, the curve samples) precisely so it can be
// checkpointed alongside the trainer state.
//
// On-disk layout (everything written atomically; see nn/serialize.h):
//
//   <outDir>/<job.name>/checkpoint.bin   periodic TrainState snapshot
//   <outDir>/<job.name>/curve.csv        training-curve samples (on completion)
//   <outDir>/<job.name>/policy.bin       final policy parameters
//   <outDir>/<job.name>/done             completion marker + final metrics,
//                                        written LAST — its presence means
//                                        every other artifact is complete
//
// Resume semantics (CampaignConfig::resume, on by default):
//   done marker present      -> job skipped, metrics parsed from the marker
//   valid checkpoint present -> training continues from it, bitwise as if
//                               the process had never died (resume parity;
//                               tests/rl/test_resume_parity.cpp)
//   checkpoint missing       -> job trains from scratch
//   checkpoint INVALID       -> the job FAILS with a message naming the file
//                               and defect: a corrupt snapshot means a bug
//                               (atomic writes cannot be torn by SIGKILL),
//                               and silently retraining would hide it.

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/serialize.h"
#include "rl/ppo.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace crl::rl {

/// A job failure deterministic replay would reproduce exactly — a corrupt
/// checkpoint, an unreadable done marker, non-finite training math. Retrying
/// such a job burns the whole retry budget re-deriving the same error, so
/// the runner sends it straight to its terminal state instead.
class PermanentJobError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Deployment-accuracy probe result (the Fig. 3 "deploy accuracy" columns).
struct CampaignEvalReport {
  double accuracy = 0.0;
  double meanSteps = 0.0;
  double meanStepsSuccess = 0.0;
};

/// Everything one campaign job trains with, built fresh in the worker thread
/// by the job's factory. Implementations own the benchmark, both envs, and
/// the policy; the runner only borrows references.
class CampaignContext {
 public:
  virtual ~CampaignContext() = default;

  virtual Env& trainEnv() = 0;
  virtual ActorCritic& policy() = 0;

  /// Deployment accuracy in the evaluation environment (which may differ
  /// from the training env: transfer learning evaluates in fine fidelity).
  /// Typically forwards to core::evaluateAccuracy.
  virtual CampaignEvalReport evaluate(int episodes, util::Rng& rng) = 0;

  /// Solver warm-start snapshots of every benchmark the envs drive (one
  /// entry per distinct benchmark; train/eval may share one). Warm starts
  /// shift DC operating points at ulp level, so bitwise resume parity must
  /// carry them through the checkpoint.
  virtual std::vector<std::string> solverSnapshots() const = 0;
  virtual bool restoreSolverSnapshots(const std::vector<std::string>& blobs) = 0;
};

/// One training job: an agent trained for `episodes` with periodic
/// deploy-accuracy probes, mirroring bench::trainWithCurves.
struct CampaignJob {
  std::string name;                ///< unique; names the output subdirectory
  int episodes = 0;
  std::uint64_t trainSeed = 0;     ///< PpoTrainer RNG stream
  std::uint64_t evalSeed = 0;      ///< intermediate-eval RNG stream
  std::uint64_t finalEvalSeed = 0; ///< final-accuracy RNG stream
  int evalEvery = 100;
  int evalEpisodes = 15;
  PpoConfig ppo;
  std::function<std::unique_ptr<CampaignContext>()> make;

  // Optional extra artifacts (absolute/relative paths; empty = none).
  std::string curveCsv;    ///< extra copy of curve.csv (fig3 naming scheme)
  std::string policyBin;   ///< extra copy of the final parameters
  std::string csvMethod;   ///< "method" column of the curve CSV
  int csvSeedTag = 0;      ///< "seed" column of the curve CSV
};

struct CampaignConfig {
  std::string outDir = "crl_campaign";
  std::size_t workers = 1;     ///< shared pool size (1 = run jobs inline)
  int checkpointEvery = 100;   ///< episodes between checkpoints (0 = none)
  bool resume = true;          ///< honor done markers + checkpoints in outDir
  /// Test/ops hook, called right after each periodic checkpoint is written
  /// (from the worker thread running the job). The kill-and-resume suites
  /// crash the process here.
  std::function<void(const std::string& jobName, int episode)> onCheckpoint;

  /// Live campaign introspection: the runner atomically rewrites a status
  /// JSON (schema crl.campaign_status/v1 — job states, per-job episode
  /// progress and EMA reward, checkpoint/heartbeat ages, campaign ETA) at
  /// every job state transition and, throttled, from the episode loop.
  /// Purely observational — it never feeds back into training.
  bool writeStatus = true;
  std::string statusFile;          ///< empty = "<outDir>/campaign_status.json"
  /// Minimum seconds between throttled status rewrites; the
  /// CRL_METRICS_EVERY env knob (seconds, floating point) overrides this.
  double statusEverySeconds = 2.0;

  // ---- fault tolerance ----------------------------------------------------
  /// Extra attempts granted to a job that fails with a transient error
  /// (I/O, simulator, pool). 0 — the historical default — fails the job on
  /// its first error. A retried job re-enters the normal resume path: with
  /// `resume` set it continues bitwise from its last checkpoint, so a
  /// transient fault costs at most one checkpoint interval of rework.
  /// PermanentJobError (and rl::NonFiniteError) never consume retries.
  int maxJobRetries = 0;
  /// Exponential retry backoff: attempt k waits
  /// retryBackoffSeconds * 2^(k-1) before re-running the job.
  double retryBackoffSeconds = 0.25;
  /// Inline attempts for a single checkpoint (and final artifact) write;
  /// transient I/O errors — ENOSPC, failed fsync — are retried with
  /// checkpointRetryBackoffSeconds * 2^(attempt-1) pauses in between.
  int checkpointWriteAttempts = 3;
  double checkpointRetryBackoffSeconds = 0.05;
  /// When a whole checkpoint write fails (all inline attempts exhausted) the
  /// job keeps training but doubles its checkpoint cadence — a sick disk is
  /// not helped by hammering it — and fails loudly after this many
  /// *consecutive* failed writes.
  int maxCheckpointFailures = 3;
  /// Heartbeat watchdog: a background scan flags running jobs whose last
  /// heartbeat is older than stallAfterSeconds as "stalled" in the status
  /// JSON (and ticks campaign.jobs_stalled). Observational only — nothing
  /// is killed; a recovered job is unflagged on its next heartbeat.
  bool watchdog = true;
  /// 0 = derive as 3 x statusEverySeconds (floored at 1s).
  double stallAfterSeconds = 0.0;
};

struct CampaignJobResult {
  std::string name;
  std::string dir;
  bool skipped = false;   ///< done marker found; metrics parsed, nothing run
  bool resumed = false;   ///< continued from a checkpoint
  bool failed = false;
  /// Terminal failure after a non-zero retry budget was exhausted (or a
  /// permanent error short-circuited it). Quarantined jobs are listed in the
  /// status JSON's failed_jobs manifest; the rest of the campaign completes.
  bool quarantined = false;
  std::string error;
  int attempts = 1;       ///< runJob attempts consumed (1 = no retry needed)
  int episodes = 0;
  double finalMeanReward = 0.0;
  double finalMeanLength = 0.0;
  double finalAccuracy = 0.0;
  double finalMeanStepsSuccess = 0.0;
};

/// Curve samples (kept for programmatic access after run()).
struct CampaignCurvePoint {
  int episode = 0;
  double meanReward = 0.0;
  double meanLength = 0.0;
  double deployAccuracy = -1.0;  ///< -1 where not evaluated
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig cfg);
  ~CampaignRunner();

  /// Job names must be unique (they name directories); throws otherwise.
  void addJob(CampaignJob job);

  /// Run every job over one shared pool; results align with addJob order.
  /// Individual job failures are reported in the result, not thrown.
  std::vector<CampaignJobResult> run();

  const CampaignConfig& config() const { return cfg_; }

  /// Telemetry of the shared pool the last run() used, captured just before
  /// the pool wound down (workers == 0 when run() executed jobs inline).
  const util::ThreadPool::Stats& poolStats() const { return poolStats_; }

 private:
  struct StatusBoard;

  /// Retry wrapper: runs runJobAttempt up to 1 + maxJobRetries times with
  /// exponential backoff, classifies permanent errors, and applies the
  /// terminal failed/quarantined state.
  CampaignJobResult runJob(std::size_t jobIndex);
  /// One attempt at a job, under a failpoint scope tagged with the job name
  /// (so chaos schedules can target jobs by `#substring`). Sets *permanent
  /// when the failure is not worth retrying.
  CampaignJobResult runJobAttempt(std::size_t jobIndex, bool* permanent);

  CampaignConfig cfg_;
  std::vector<CampaignJob> jobs_;
  std::unique_ptr<StatusBoard> status_;
  util::ThreadPool::Stats poolStats_;
};

}  // namespace crl::rl
