#pragma once
// Actor-critic policy interface and the categorical action head shared by
// every method (ours and the RL baselines): an M x 3 probability matrix,
// one row per tunable parameter (Sec. 3 "Action Representation").

#include <vector>

#include "nn/tensor.h"
#include "rl/env.h"

namespace crl::rl {

struct PolicyOutput {
  nn::Tensor logits;  ///< [M x 3] unnormalized action scores
  nn::Tensor value;   ///< [1 x 1] state-value estimate
};

class ActorCritic {
 public:
  virtual ~ActorCritic() = default;
  /// Build the autograd graph for one observation.
  virtual PolicyOutput forward(const Observation& obs) const = 0;
  /// Evaluate a batch of observations, one PolicyOutput per lane. The base
  /// implementation loops forward(); policies that can batch the whole pass
  /// into one matrix sweep (MultimodalPolicy) override it.
  virtual std::vector<PolicyOutput> forwardBatch(
      const std::vector<Observation>& obs) const;
  virtual std::vector<nn::Tensor> parameters() const = 0;
  virtual const char* name() const = 0;
};

/// Sample one action per parameter from the logits ({-1,0,+1} encoded as
/// column indices 0,1,2 minus 1). Returns actions and the total log-prob.
struct SampledAction {
  std::vector<int> actions;     ///< in {-1, 0, +1}
  std::vector<int> columns;     ///< in {0, 1, 2} (for PPO re-evaluation)
  double logProb = 0.0;
};

SampledAction sampleAction(const linalg::Mat& logits, util::Rng& rng);
/// Greedy (argmax) variant used at deployment time.
SampledAction greedyAction(const linalg::Mat& logits);

/// Log-probability tensor of given action columns under logits (for PPO).
nn::Tensor logProbOf(const nn::Tensor& logits, const std::vector<int>& columns);
/// Mean per-row entropy of the categorical distributions.
nn::Tensor entropyOf(const nn::Tensor& logits);

}  // namespace crl::rl
