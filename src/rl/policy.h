#pragma once
// Actor-critic policy interface and the categorical action head shared by
// every method (ours and the RL baselines): an M x 3 probability matrix,
// one row per tunable parameter (Sec. 3 "Action Representation").

#include <vector>

#include "nn/tensor.h"
#include "rl/env.h"

namespace crl::rl {

struct PolicyOutput {
  nn::Tensor logits;  ///< [M x 3] unnormalized action scores
  nn::Tensor value;   ///< [1 x 1] state-value estimate
};

/// Whole-minibatch policy evaluation kept in two tensors, so the batched PPO
/// update can build one autograd graph per minibatch instead of one per
/// transition. Logits of observation i occupy rows [i*M, (i+1)*M).
struct BatchedPolicyOutput {
  nn::Tensor logits;  ///< [B*M x 3] row-stacked per-observation logits
  nn::Tensor values;  ///< [B x 1] state-value estimates
};

class ActorCritic {
 public:
  virtual ~ActorCritic() = default;
  /// Build the autograd graph for one observation.
  virtual PolicyOutput forward(const Observation& obs) const = 0;
  /// Evaluate a batch of observations, one PolicyOutput per lane. The base
  /// implementation loops forward(); policies that can batch the whole pass
  /// into one matrix sweep (MultimodalPolicy) override it.
  virtual std::vector<PolicyOutput> forwardBatch(
      const std::vector<Observation>& obs) const;
  /// Evaluate a batch of observations keeping the results stacked (for the
  /// batched PPO update). Gradients are recorded unless a NoGradGuard is
  /// alive. The base implementation loops forward() and row-stacks;
  /// MultimodalPolicy overrides it with the one-pass block-diagonal sweep.
  virtual BatchedPolicyOutput forwardBatchStacked(
      const std::vector<Observation>& obs) const;
  virtual std::vector<nn::Tensor> parameters() const = 0;
  virtual const char* name() const = 0;
  /// Checkpoint-migration hook: given the parameter mats of an older
  /// artifact whose tensor COUNT does not match parameters() (e.g. the
  /// retired per-head GAT layout), rewrite them in place into the current
  /// layout. Returns true when a known legacy layout was recognized and
  /// converted (the caller still shape-validates the result). The default
  /// knows no legacy layouts.
  virtual bool adaptLegacyParameterMats(std::vector<linalg::Mat>& mats) const {
    (void)mats;
    return false;
  }
};

/// Sample one action per parameter from the logits ({-1,0,+1} encoded as
/// column indices 0,1,2 minus 1). Returns actions and the total log-prob.
struct SampledAction {
  std::vector<int> actions;     ///< in {-1, 0, +1}
  std::vector<int> columns;     ///< in {0, 1, 2} (for PPO re-evaluation)
  double logProb = 0.0;
};

SampledAction sampleAction(const linalg::Mat& logits, util::Rng& rng);
/// Greedy (argmax) variant used at deployment time.
SampledAction greedyAction(const linalg::Mat& logits);

/// Log-probability tensor of given action columns under logits (for PPO).
nn::Tensor logProbOf(const nn::Tensor& logits, const std::vector<int>& columns);
/// Mean per-row entropy of the categorical distributions.
nn::Tensor entropyOf(const nn::Tensor& logits);

// ---- batched PPO losses (whole minibatch in one graph) -------------------

/// Per-observation total log-prob of the chosen columns: stackedLogits is
/// BatchedPolicyOutput::logits ([B*M x 3]), columns the B*M flattened column
/// choices; returns [B x 1], row b matching logProbOf on observation b.
nn::Tensor logProbBatch(const nn::Tensor& stackedLogits,
                        const std::vector<int>& columns, std::size_t batch);
/// Sum over the minibatch of per-observation mean-row entropies (1x1),
/// matching the sum of entropyOf over the B observations.
nn::Tensor entropyBatch(const nn::Tensor& stackedLogits, std::size_t batch);

}  // namespace crl::rl
