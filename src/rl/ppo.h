#pragma once
// Proximal Policy Optimization (Algorithm 1 of the paper): collect episodes,
// compute GAE advantages, maximize the clipped surrogate with Adam, fit the
// value function by regression.

#include <functional>
#include <vector>

#include "nn/optim.h"
#include "rl/env.h"
#include "rl/policy.h"

namespace crl::rl {

struct PpoConfig {
  double gamma = 0.99;
  double gaeLambda = 0.95;
  double clipEps = 0.2;          ///< epsilon in Eq. (3)
  double learningRate = 3e-4;
  double valueCoef = 0.5;
  double entropyCoef = 0.01;
  double maxGradNorm = 0.5;
  int updateEpochs = 4;
  int minibatchSize = 64;
  int stepsPerUpdate = 512;      ///< environment steps collected per update
};

/// Per-episode statistics streamed to the caller (training curves of Fig. 3).
struct EpisodeStats {
  int episode = 0;
  double episodeReward = 0.0;
  int episodeLength = 0;
  bool success = false;
};

struct Transition {
  Observation obs;
  std::vector<int> columns;  ///< sampled action columns (0..2 per parameter)
  double logProb = 0.0;
  double value = 0.0;
  double reward = 0.0;
  bool terminal = false;     ///< episode ended at this step
};

/// Compute GAE advantages and discounted returns in place.
void computeGae(const std::vector<Transition>& steps, double gamma, double lambda,
                std::vector<double>* advantages, std::vector<double>* returns);

class PpoTrainer {
 public:
  PpoTrainer(Env& env, ActorCritic& policy, PpoConfig cfg, util::Rng rng);

  /// Run training for a number of episodes; invokes the callback after each
  /// finished episode.
  void train(int episodes, const std::function<void(const EpisodeStats&)>& onEpisode = {});

  const PpoConfig& config() const { return cfg_; }
  util::Rng& rng() { return rng_; }

 private:
  void update(std::vector<Transition>& buffer);

  Env& env_;
  ActorCritic& policy_;
  PpoConfig cfg_;
  util::Rng rng_;
  nn::Adam optimizer_;
  int episodeCounter_ = 0;
};

}  // namespace crl::rl
