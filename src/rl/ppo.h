#pragma once
// Proximal Policy Optimization (Algorithm 1 of the paper): collect episodes,
// compute GAE advantages, maximize the clipped surrogate with Adam, fit the
// value function by regression.

#include <functional>
#include <vector>

#include "nn/arena.h"
#include "nn/optim.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/vec_env.h"

namespace crl::rl {

struct PpoConfig {
  double gamma = 0.99;
  double gaeLambda = 0.95;
  double clipEps = 0.2;          ///< epsilon in Eq. (3)
  double learningRate = 3e-4;
  double valueCoef = 0.5;
  double entropyCoef = 0.01;
  double maxGradNorm = 0.5;
  int updateEpochs = 4;
  int minibatchSize = 64;
  int stepsPerUpdate = 512;      ///< environment steps collected per update
  /// Build one autograd graph per minibatch (batched forward + batched
  /// log-prob/entropy/value losses) instead of one per transition. The
  /// losses are mathematically identical and gradients agree to ~1e-12
  /// (floating-point summation order differs), but not bit-for-bit — the
  /// sequential path (false, the default) is the reproducibility baseline
  /// the golden-curve tests lock in.
  bool batchedUpdate = false;
  /// Record each minibatch's autograd graph in the trainer's tape arena
  /// (nn::GraphArena): nodes come from slabs, value/grad buffers from a
  /// recycled pool, and the whole tape is reset after the optimizer step
  /// instead of churning shared_ptr refcounts and malloc. Results are
  /// bit-identical to the heap path for both update modes (pooled buffers
  /// are zero-filled like fresh ones) — tests/nn/test_arena.cpp locks that
  /// in; the off switch exists for A/B benchmarking (bench_arena).
  bool arenaUpdate = true;
};

/// Per-episode statistics streamed to the caller (training curves of Fig. 3).
struct EpisodeStats {
  int episode = 0;
  double episodeReward = 0.0;
  int episodeLength = 0;
  bool success = false;
};

struct Transition {
  Observation obs;
  std::vector<int> columns;  ///< sampled action columns (0..2 per parameter)
  double logProb = 0.0;
  double value = 0.0;
  double reward = 0.0;
  bool terminal = false;     ///< episode ended at this step
};

/// Compute GAE advantages and discounted returns in place.
void computeGae(const std::vector<Transition>& steps, double gamma, double lambda,
                std::vector<double>* advantages, std::vector<double>* returns);

class PpoTrainer {
 public:
  PpoTrainer(Env& env, ActorCritic& policy, PpoConfig cfg, util::Rng rng);

  /// Vectorized trainer over N parallel rollout lanes. Collection gathers
  /// transitions across all lanes, evaluating the policy with one batched
  /// forward per vector-step; the update rule is unchanged. A single-lane
  /// VecEnv falls back to the sequential collection path, so numEnvs=1 is
  /// bit-for-bit identical to the Env& constructor with the same seed.
  PpoTrainer(VecEnv& envs, ActorCritic& policy, PpoConfig cfg, util::Rng rng);

  /// Run training for a number of episodes; invokes the callback after each
  /// finished episode.
  void train(int episodes, const std::function<void(const EpisodeStats&)>& onEpisode = {});

  const PpoConfig& config() const { return cfg_; }
  util::Rng& rng() { return rng_; }
  /// Number of rollout lanes (1 in sequential mode).
  std::size_t numEnvs() const { return vecEnv_ ? vecEnv_->size() : 1; }

  /// Run one PPO update (epochs x shuffled minibatches) from a collected
  /// transition buffer. train() calls this internally; it is public so
  /// offline updates can be driven (and benchmarked) from a pre-collected
  /// buffer. The buffer is consumed read-only but non-const for historical
  /// reasons (train() hands over its own buffer).
  void update(std::vector<Transition>& buffer);

 private:
  void trainSequential(int episodes,
                       const std::function<void(const EpisodeStats&)>& onEpisode);
  void trainVectorized(int episodes,
                       const std::function<void(const EpisodeStats&)>& onEpisode);
  /// Per-transition loss accumulation (the bit-for-bit sequential path).
  nn::Tensor minibatchLossSequential(const std::vector<Transition>& buffer,
                                     const std::vector<std::size_t>& perm,
                                     std::size_t start, std::size_t end,
                                     const std::vector<double>& advantages,
                                     const std::vector<double>& returns);
  /// One stacked forward + batched losses over the whole minibatch.
  nn::Tensor minibatchLossBatched(const std::vector<Transition>& buffer,
                                  const std::vector<std::size_t>& perm,
                                  std::size_t start, std::size_t end,
                                  const std::vector<double>& advantages,
                                  const std::vector<double>& returns);

  Env& env_;
  VecEnv* vecEnv_ = nullptr;
  ActorCritic& policy_;
  PpoConfig cfg_;
  util::Rng rng_;
  nn::Adam optimizer_;
  /// Per-trainer minibatch tape (see PpoConfig::arenaUpdate). Trainers on
  /// different threads (CRL_SEED_WORKERS fan-out) each own an independent
  /// arena; the scope installs it thread-locally only while updating.
  nn::GraphArena arena_;
  /// Minibatch staging reused across minibatches by minibatchLossBatched —
  /// Observation assignment reuses each slot's buffers, so the steady state
  /// stages a minibatch without allocating.
  std::vector<Observation> obsScratch_;
  std::vector<int> columnsScratch_;
  int episodeCounter_ = 0;
};

}  // namespace crl::rl
