#pragma once
// Proximal Policy Optimization (Algorithm 1 of the paper): collect episodes,
// compute GAE advantages, maximize the clipped surrogate with Adam, fit the
// value function by regression.

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/arena.h"
#include "nn/optim.h"
#include "nn/serialize.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/vec_env.h"

namespace crl::rl {

struct PpoConfig {
  double gamma = 0.99;
  double gaeLambda = 0.95;
  double clipEps = 0.2;          ///< epsilon in Eq. (3)
  double learningRate = 3e-4;
  double valueCoef = 0.5;
  double entropyCoef = 0.01;
  double maxGradNorm = 0.5;
  int updateEpochs = 4;
  int minibatchSize = 64;
  int stepsPerUpdate = 512;      ///< environment steps collected per update
  /// Build one autograd graph per minibatch (batched forward + batched
  /// log-prob/entropy/value losses) instead of one per transition. The
  /// losses are mathematically identical and gradients agree to ~1e-12
  /// (floating-point summation order differs), but not bit-for-bit — the
  /// sequential path (false, the default) is the reproducibility baseline
  /// the golden-curve tests lock in.
  bool batchedUpdate = false;
  /// Record each minibatch's autograd graph in the trainer's tape arena
  /// (nn::GraphArena): nodes come from slabs, value/grad buffers from a
  /// recycled pool, and the whole tape is reset after the optimizer step
  /// instead of churning shared_ptr refcounts and malloc. Results are
  /// bit-identical to the heap path for both update modes (pooled buffers
  /// are zero-filled like fresh ones) — tests/nn/test_arena.cpp locks that
  /// in; the off switch exists for A/B benchmarking (bench_arena).
  bool arenaUpdate = true;
};

/// Thrown by PpoTrainer::update when a loss, advantage, or return goes
/// NaN/inf: silently stepping Adam on non-finite gradients would poison
/// every parameter and *train on* from garbage. The fields pinpoint where
/// training was when the guard fired; the campaign runner prefixes the job
/// name and treats the error as permanent (deterministic replay would fail
/// identically, so retrying is pointless — the job is quarantined).
class NonFiniteError : public std::runtime_error {
 public:
  NonFiniteError(const std::string& quantity, double value, int episode,
                 int epoch, std::size_t minibatchStart);

  std::string quantity;         ///< "loss" | "advantage" | "return"
  double value = 0.0;           ///< the offending non-finite value
  int episode = 0;              ///< episodes finished when the update began
  int epoch = 0;                ///< update epoch (-1: before the epoch loop)
  std::size_t minibatchStart = 0;  ///< permutation offset (advantage: index)
};

/// Per-episode statistics streamed to the caller (training curves of Fig. 3).
struct EpisodeStats {
  int episode = 0;
  double episodeReward = 0.0;
  int episodeLength = 0;
  bool success = false;
};

struct Transition {
  Observation obs;
  std::vector<int> columns;  ///< sampled action columns (0..2 per parameter)
  double logProb = 0.0;
  double value = 0.0;
  double reward = 0.0;
  bool terminal = false;     ///< episode ended at this step
};

/// Compute GAE advantages and discounted returns in place.
void computeGae(const std::vector<Transition>& steps, double gamma, double lambda,
                std::vector<double>* advantages, std::vector<double>* returns);

class PpoTrainer {
 public:
  PpoTrainer(Env& env, ActorCritic& policy, PpoConfig cfg, util::Rng rng);

  /// Vectorized trainer over N parallel rollout lanes. Collection gathers
  /// transitions across all lanes, evaluating the policy with one batched
  /// forward per vector-step; the update rule is unchanged. A single-lane
  /// VecEnv falls back to the sequential collection path, so numEnvs=1 is
  /// bit-for-bit identical to the Env& constructor with the same seed.
  PpoTrainer(VecEnv& envs, ActorCritic& policy, PpoConfig cfg, util::Rng rng);

  /// Run training for a number of episodes; invokes the callback after each
  /// finished episode.
  void train(int episodes, const std::function<void(const EpisodeStats&)>& onEpisode = {});

  /// Incremental training for checkpoint/resume (sequential path only;
  /// throws std::logic_error on a multi-lane VecEnv trainer): trains
  /// `episodes` more episodes, carrying the partially-filled transition
  /// buffer across calls and never running train()'s tail-flush update, so
  ///   trainChunk(a); trainChunk(b); finishTraining();
  /// is bit-for-bit identical to train(a + b). Checkpoint between chunks
  /// with saveState(); the pending buffer rides along in the snapshot.
  void trainChunk(int episodes,
                  const std::function<void(const EpisodeStats&)>& onEpisode = {});

  /// The tail-flush update train() ends with: runs one last update if more
  /// than 8 transitions are pending, then drops the buffer.
  void finishTraining();

  /// Snapshot the full training state: policy parameters, Adam moments and
  /// step counter, the trainer RNG stream (env resets + action sampling +
  /// minibatch permutations all draw from it), the episode counter, and the
  /// pending transition buffer. Restoring this into a freshly constructed
  /// trainer/policy/env of the same configuration resumes the run with
  /// bitwise-identical results (see tests/rl/test_resume_parity.cpp).
  /// Sequential path only — throws std::logic_error on a multi-lane VecEnv
  /// trainer, whose per-lane streams are not captured.
  void saveState(nn::TrainState& st) const;

  /// Restore a saveState() snapshot. Returns false (trainer unchanged except
  /// possibly staged params) on shape/count mismatch, naming the defect in
  /// `error` when non-null.
  bool loadState(const nn::TrainState& st, std::string* error = nullptr);

  /// Episodes finished so far (across train/trainChunk calls and restores).
  int episodeCount() const { return episodeCounter_; }

  const PpoConfig& config() const { return cfg_; }
  util::Rng& rng() { return rng_; }
  /// Number of rollout lanes (1 in sequential mode).
  std::size_t numEnvs() const { return vecEnv_ ? vecEnv_->size() : 1; }

  /// Run one PPO update (epochs x shuffled minibatches) from a collected
  /// transition buffer. train() calls this internally; it is public so
  /// offline updates can be driven (and benchmarked) from a pre-collected
  /// buffer. The buffer is consumed read-only but non-const for historical
  /// reasons (train() hands over its own buffer).
  void update(std::vector<Transition>& buffer);

 private:
  void trainVectorized(int episodes,
                       const std::function<void(const EpisodeStats&)>& onEpisode);
  /// Per-transition loss accumulation (the bit-for-bit sequential path).
  nn::Tensor minibatchLossSequential(const std::vector<Transition>& buffer,
                                     const std::vector<std::size_t>& perm,
                                     std::size_t start, std::size_t end,
                                     const std::vector<double>& advantages,
                                     const std::vector<double>& returns);
  /// One stacked forward + batched losses over the whole minibatch.
  nn::Tensor minibatchLossBatched(const std::vector<Transition>& buffer,
                                  const std::vector<std::size_t>& perm,
                                  std::size_t start, std::size_t end,
                                  const std::vector<double>& advantages,
                                  const std::vector<double>& returns);

  Env& env_;
  VecEnv* vecEnv_ = nullptr;
  ActorCritic& policy_;
  PpoConfig cfg_;
  util::Rng rng_;
  nn::Adam optimizer_;
  /// Per-trainer minibatch tape (see PpoConfig::arenaUpdate). Trainers on
  /// different threads (CRL_SEED_WORKERS fan-out) each own an independent
  /// arena; the scope installs it thread-locally only while updating.
  nn::GraphArena arena_;
  /// Minibatch staging reused across minibatches by minibatchLossBatched —
  /// Observation assignment reuses each slot's buffers, so the steady state
  /// stages a minibatch without allocating.
  std::vector<Observation> obsScratch_;
  std::vector<int> columnsScratch_;
  /// Sequential-path transition buffer. A member (not a train()-local) so
  /// trainChunk() can stop at any episode boundary and saveState() can
  /// capture the not-yet-updated tail — the resume-parity contract needs
  /// the exact buffer contents, not just "roughly where training was".
  std::vector<Transition> pendingBuffer_;
  int episodeCounter_ = 0;
};

}  // namespace crl::rl
