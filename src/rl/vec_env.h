#pragma once
// Vectorized environment: N independent rollout lanes stepped concurrently.
//
// Each lane owns its environment, the mutable simulator state behind it (a
// circuit::Benchmark copy, kept alive through a type-erased handle so this
// layer stays independent of circuit/), and a private RNG stream. Lanes never
// share state, so stepping them in parallel through a util::ThreadPool is
// race-free; per-lane trajectories are bit-for-bit identical to running the
// same lane alone with the same seed, whatever N or worker count is used.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rl/env.h"
#include "util/thread_pool.h"

namespace crl::rl {

/// One rollout lane produced by a VecEnv factory. `keepAlive` owns whatever
/// the env references (typically the benchmark); `env` is stepped; `rng`
/// drives the lane's episode sampling (reseeded by VecEnv, see laneSeed).
struct EnvLane {
  std::unique_ptr<Env> env;
  std::shared_ptr<void> keepAlive;
  util::Rng rng{0};
};

class VecEnv {
 public:
  using LaneFactory = std::function<EnvLane(std::size_t laneIndex)>;

  /// Builds numEnvs lanes via the factory and seeds lane i's RNG with
  /// laneSeed(baseSeed, i). With a null pool (or a single lane) every
  /// operation runs serially on the calling thread.
  VecEnv(std::size_t numEnvs, const LaneFactory& factory, std::uint64_t baseSeed,
         util::ThreadPool* pool = nullptr);

  /// Deterministic per-lane seed: lane 0 keeps baseSeed itself (so numEnvs=1
  /// reproduces a plain Rng(baseSeed) run), later lanes are spread with a
  /// golden-ratio stride to decorrelate the streams.
  static std::uint64_t laneSeed(std::uint64_t baseSeed, std::size_t lane) {
    return util::substreamSeed(baseSeed, static_cast<std::uint64_t>(lane));
  }

  std::size_t size() const { return lanes_.size(); }
  Env& lane(std::size_t i) { return *lanes_[i].env; }
  const Env& lane(std::size_t i) const { return *lanes_[i].env; }
  util::Rng& laneRng(std::size_t i) { return lanes_[i].rng; }

  /// Reset every lane with its own RNG stream (parallel).
  std::vector<Observation> resetAll();
  /// Reset one lane (on the calling thread).
  Observation resetLane(std::size_t i);
  Observation resetLaneWithTarget(std::size_t i, const std::vector<double>& target);

  /// Step every lane with its own action vector (parallel). actions.size()
  /// must equal size(). Episode-lifecycle handling (auto-reset) is left to
  /// the caller so trajectories stay externally controlled.
  std::vector<StepResult> stepAll(const std::vector<std::vector<int>>& actions);

  /// Step only the listed lanes (parallel); results align with `laneIds`.
  /// Used by batched deployment, where lanes retire at different times.
  std::vector<StepResult> stepLanes(const std::vector<std::size_t>& laneIds,
                                    const std::vector<std::vector<int>>& actions);

  /// One guarded lane step: the StepResult, or the captured error of the
  /// lane that threw (the other lanes' results stay valid either way).
  struct LaneStepOutcome {
    StepResult result;
    bool failed = false;
    std::string error;
  };

  /// stepLanes with per-lane failure isolation: an exception thrown by one
  /// lane's env->step (or injected into its pooled task) is captured into
  /// that lane's outcome instead of poisoning the whole batch. Every lane
  /// still runs to completion before this returns, exactly like stepLanes.
  std::vector<LaneStepOutcome> stepLanesGuarded(
      const std::vector<std::size_t>& laneIds,
      const std::vector<std::vector<int>>& actions);

  util::ThreadPool* pool() { return pool_; }

 private:
  /// Run fn(i) for every lane, through the pool when one is attached.
  void forEachLane(const std::function<void(std::size_t)>& fn);

  std::vector<EnvLane> lanes_;
  util::ThreadPool* pool_;
};

}  // namespace crl::rl
