#pragma once
// RL environment interface for circuit sizing (Sec. 3 of the paper).
//
// Observations carry both state modalities: the circuit-graph node features
// (dynamic device parameters + types) and the normalized specification
// vectors (intermediate + desired). Actions are per-parameter discrete
// {-1, 0, +1} steps on the design grid.

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace crl::rl {

struct Observation {
  linalg::Mat nodeFeatures;         ///< [n x featureDim] circuit graph state
  std::vector<double> specNow;      ///< normalized intermediate specs
  std::vector<double> specTarget;   ///< normalized desired specs
  std::vector<double> paramsNorm;   ///< normalized parameters (FCNN baselines)
};

struct StepResult {
  Observation obs;
  double reward = 0.0;
  bool done = false;
  bool success = false;  ///< all specs reached (P2S) — unused by FoM envs
};

class Env {
 public:
  virtual ~Env() = default;

  /// Begin an episode with a freshly sampled target and initial sizing.
  virtual Observation reset(util::Rng& rng) = 0;
  /// Begin an episode for a specific target spec group (deployment).
  virtual Observation resetWithTarget(const std::vector<double>& target,
                                      util::Rng& rng) = 0;
  virtual StepResult step(const std::vector<int>& actions) = 0;

  virtual std::size_t numParams() const = 0;
  virtual std::size_t numSpecs() const = 0;
  virtual int maxSteps() const = 0;

  /// Graph constants for the policy network.
  virtual const linalg::Mat& normalizedAdjacency() const = 0;
  virtual const linalg::Mat& attentionMask() const = 0;
  virtual std::size_t graphNodeCount() const = 0;
  virtual std::size_t graphFeatureDim() const = 0;

  /// Raw (unnormalized) target and intermediate specs of the current episode.
  virtual const std::vector<double>& rawTarget() const = 0;
  virtual const std::vector<double>& rawSpecs() const = 0;
  virtual const std::vector<double>& currentParams() const = 0;
};

}  // namespace crl::rl
