#include "rl/campaign.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stats.h"

namespace crl::rl {

namespace fs = std::filesystem;

namespace {

// TrainState section keys for the campaign-level state that rides alongside
// the trainer snapshot (PpoTrainer::saveState owns the "ppo." keys).
constexpr const char* kEvalRngKey = "campaign.eval";
constexpr const char* kEmaKey = "campaign.ema";
constexpr const char* kCurveKey = "campaign.curve";
constexpr const char* kSolverKey = "campaign.solver";

std::string encodeEmas(const util::Ema& reward, const util::Ema& len) {
  nn::ByteWriter w;
  w.f64(reward.value());
  w.b8(reward.initialized());
  w.f64(len.value());
  w.b8(len.initialized());
  return w.take();
}

bool decodeEmas(const std::string& blob, util::Ema& reward, util::Ema& len) {
  nn::ByteReader r(blob);
  double rv = 0.0, lv = 0.0;
  bool ri = false, li = false;
  if (!r.f64(rv) || !r.b8(ri) || !r.f64(lv) || !r.b8(li) || !r.atEnd())
    return false;
  reward.restore(rv, ri);
  len.restore(lv, li);
  return true;
}

std::string encodeCurve(const std::vector<CampaignCurvePoint>& curve) {
  nn::ByteWriter w;
  w.u64(curve.size());
  for (const auto& p : curve) {
    w.i64(p.episode);
    w.f64(p.meanReward);
    w.f64(p.meanLength);
    w.f64(p.deployAccuracy);
  }
  return w.take();
}

bool decodeCurve(const std::string& blob, std::vector<CampaignCurvePoint>& curve) {
  nn::ByteReader r(blob);
  std::uint64_t n = 0;
  if (!r.u64(n)) return false;
  std::vector<CampaignCurvePoint> staged;
  staged.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    CampaignCurvePoint p;
    std::int64_t ep = 0;
    if (!r.i64(ep) || !r.f64(p.meanReward) || !r.f64(p.meanLength) ||
        !r.f64(p.deployAccuracy))
      return false;
    p.episode = static_cast<int>(ep);
    staged.push_back(p);
  }
  if (!r.atEnd()) return false;
  curve = std::move(staged);
  return true;
}

std::string encodeSolverBlobs(const std::vector<std::string>& blobs) {
  nn::ByteWriter w;
  w.u64(blobs.size());
  for (const auto& b : blobs) w.str(b);
  return w.take();
}

bool decodeSolverBlobs(const std::string& blob, std::vector<std::string>& out) {
  nn::ByteReader r(blob);
  std::uint64_t n = 0;
  if (!r.u64(n)) return false;
  std::vector<std::string> staged;
  staged.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string s;
    if (!r.str(s)) return false;
    staged.push_back(std::move(s));
  }
  if (!r.atEnd()) return false;
  out = std::move(staged);
  return true;
}

std::string formatCurveCsv(const CampaignJob& job,
                           const std::vector<CampaignCurvePoint>& curve) {
  const std::string method = job.csvMethod.empty() ? job.name : job.csvMethod;
  std::string csv = "method,seed,episode,mean_reward,mean_length,deploy_accuracy\n";
  for (const auto& p : curve) {
    csv += method + ',' + std::to_string(job.csvSeedTag) + ',' +
           std::to_string(p.episode) + ',' + util::TextTable::num(p.meanReward, 6) +
           ',' + util::TextTable::num(p.meanLength, 6) + ',' +
           util::TextTable::num(p.deployAccuracy, 6) + '\n';
  }
  return csv;
}

std::string formatDoneMarker(const CampaignJobResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << "episodes=" << r.episodes << '\n'
     << "final_mean_reward=" << r.finalMeanReward << '\n'
     << "final_mean_length=" << r.finalMeanLength << '\n'
     << "final_accuracy=" << r.finalAccuracy << '\n'
     << "final_mean_steps_success=" << r.finalMeanStepsSuccess << '\n';
  return os.str();
}

bool parseDoneMarker(const std::string& text, CampaignJobResult& r) {
  std::istringstream is(text);
  std::string line;
  int fields = 0;
  while (std::getline(is, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    try {
      if (key == "episodes") r.episodes = std::stoi(val);
      else if (key == "final_mean_reward") r.finalMeanReward = std::stod(val);
      else if (key == "final_mean_length") r.finalMeanLength = std::stod(val);
      else if (key == "final_accuracy") r.finalAccuracy = std::stod(val);
      else if (key == "final_mean_steps_success") r.finalMeanStepsSuccess = std::stod(val);
      else continue;
    } catch (const std::exception&) {
      return false;
    }
    ++fields;
  }
  return fields == 5;
}

void backoffSleep(double seconds) {
  if (seconds > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Exponential backoff base * 2^(attempt-1), attempt >= 1.
double backoffDelay(double base, int attempt) {
  return base * std::ldexp(1.0, std::max(0, attempt - 1));
}

double statusCadenceSeconds(double configured) {
  if (const char* v = std::getenv("CRL_METRICS_EVERY"); v && *v) {
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end != v && parsed >= 0.0) return parsed;
  }
  return configured;
}

}  // namespace

// Live campaign introspection: one mutex-guarded table of per-job states,
// atomically rewritten (temp + fsync + rename, via nn::atomicWriteFile) to
// the status JSON so a reader never sees a torn file. Job state transitions
// force a write; per-episode heartbeats are throttled to the configured
// cadence. Everything here is observational — the training path never reads
// the board.
struct CampaignRunner::StatusBoard {
  struct JobStatus {
    std::string name;
    // pending|running|done|skipped|failed|quarantined
    const char* state = "pending";
    int episodesDone = 0;
    int episodesTotal = 0;
    int attempts = 1;      ///< runJob attempts started so far
    bool stalled = false;  ///< watchdog verdict; cleared by a fresh heartbeat
    double emaReward = 0.0;
    std::int64_t lastCheckpointNs = -1;
    std::int64_t lastHeartbeatNs = -1;
    std::string error;
  };

  std::mutex m;
  std::string path;
  double everySeconds = 2.0;
  std::size_t workers = 0;
  std::int64_t startNs = 0;
  std::int64_t lastWriteNs = -1;
  std::vector<JobStatus> jobs;
  // Heartbeat watchdog (see CampaignConfig::watchdog).
  std::thread watchdog;
  std::condition_variable watchdogCv;
  bool watchdogStop = false;  ///< guarded by m

  StatusBoard(const CampaignConfig& cfg, const std::vector<CampaignJob>& campaignJobs) {
    path = cfg.statusFile.empty() ? cfg.outDir + "/campaign_status.json"
                                  : cfg.statusFile;
    everySeconds = statusCadenceSeconds(cfg.statusEverySeconds);
    workers = cfg.workers;
    startNs = obs::monotonicNowNs();
    jobs.reserve(campaignJobs.size());
    for (const auto& j : campaignJobs) {
      JobStatus s;
      s.name = j.name;
      s.episodesTotal = j.episodes;
      jobs.push_back(std::move(s));
    }
  }

  /// Apply `mutate` to one job's row, then rewrite the file — immediately
  /// for state transitions (force), throttled for heartbeats.
  template <typename F>
  void update(std::size_t idx, bool force, F&& mutate) {
    std::lock_guard<std::mutex> lock(m);
    mutate(jobs[idx]);
    jobs[idx].lastHeartbeatNs = obs::monotonicNowNs();
    jobs[idx].stalled = false;  // a fresh heartbeat is recovery by definition
    writeLocked(force);
  }

  void writeNow() {
    std::lock_guard<std::mutex> lock(m);
    writeLocked(true);
  }

  void writeLocked(bool force) {
    const std::int64_t now = obs::monotonicNowNs();
    if (!force && lastWriteNs >= 0 &&
        static_cast<double>(now - lastWriteNs) / 1e9 < everySeconds)
      return;
    lastWriteNs = now;
    // The board is pure observability: a status write that cannot land (full
    // disk, injected I/O fault) must never take a training job down with it.
    // The next write retries from scratch — the board state is the truth,
    // the file is just its latest projection.
    try {
      nn::atomicWriteFile(path, renderLocked(now));
    } catch (const std::exception& e) {
      static auto& failures = obs::counter("campaign.status_write_failures");
      failures.add();
      util::logWarn() << "campaign: status write failed (" << e.what() << ")";
    }
  }

  /// Start the heartbeat watchdog: every scan flags running rows whose last
  /// heartbeat is older than stallSeconds (and unflags recovered ones); a
  /// verdict change forces a status rewrite so readers see it promptly.
  void startWatchdog(double stallSeconds) {
    const double period = std::clamp(stallSeconds / 4.0, 0.02, 1.0);
    watchdog = std::thread([this, stallSeconds, period]() {
      std::unique_lock<std::mutex> lock(m);
      while (!watchdogCv.wait_for(lock, std::chrono::duration<double>(period),
                                  [this]() { return watchdogStop; })) {
        const std::int64_t now = obs::monotonicNowNs();
        bool changed = false;
        for (JobStatus& j : jobs) {
          const bool running = std::string_view(j.state) == "running";
          const bool stale =
              running && j.lastHeartbeatNs >= 0 &&
              static_cast<double>(now - j.lastHeartbeatNs) / 1e9 > stallSeconds;
          if (stale && !j.stalled) {
            j.stalled = true;
            changed = true;
            static auto& stalls = obs::counter("campaign.jobs_stalled");
            stalls.add();
            util::logWarn() << "campaign: job " << j.name
                            << " looks stalled (no heartbeat for "
                            << stallSeconds << "s)";
          } else if (!stale && j.stalled) {
            j.stalled = false;  // fresh heartbeat (or terminal state): recovered
            changed = true;
          }
        }
        if (changed) writeLocked(true);
      }
    });
  }

  void stopWatchdog() {
    if (!watchdog.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(m);
      watchdogStop = true;
    }
    watchdogCv.notify_all();
    watchdog.join();
  }

  ~StatusBoard() { stopWatchdog(); }

  std::string renderLocked(std::int64_t now) const {
    int pending = 0, running = 0, done = 0, skipped = 0, failed = 0;
    int quarantined = 0;
    std::int64_t episodesDone = 0, episodesTotal = 0;
    for (const JobStatus& j : jobs) {
      if (std::string_view(j.state) == "pending") ++pending;
      else if (std::string_view(j.state) == "running") ++running;
      else if (std::string_view(j.state) == "done") ++done;
      else if (std::string_view(j.state) == "skipped") ++skipped;
      else ++failed;  // "failed" and "quarantined" both count as failed
      if (std::string_view(j.state) == "quarantined") ++quarantined;
      episodesDone += j.episodesDone;
      episodesTotal += j.episodesTotal;
    }
    const double elapsed = static_cast<double>(now - startNs) / 1e9;
    // Wall-clock ETA from the campaign-wide episode rate; null until the
    // first episodes land (no rate to extrapolate from).
    const bool haveRate = episodesDone > 0 && elapsed > 0.0;
    const double eta =
        haveRate ? static_cast<double>(episodesTotal - episodesDone) *
                       (elapsed / static_cast<double>(episodesDone))
                 : 0.0;
    const auto wallMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::system_clock::now().time_since_epoch())
                            .count();

    std::ostringstream os;
    os << "{\"schema\":\"crl.campaign_status/v1\""
       << ",\"updated_unix_ms\":" << wallMs
       << ",\"elapsed_seconds\":" << obs::json::number(elapsed)
       << ",\"workers\":" << workers
       << ",\"jobs_pending\":" << pending
       << ",\"jobs_running\":" << running
       << ",\"jobs_done\":" << done
       << ",\"jobs_skipped\":" << skipped
       << ",\"jobs_failed\":" << failed
       << ",\"jobs_quarantined\":" << quarantined
       << ",\"status_every_seconds\":" << obs::json::number(everySeconds)
       << ",\"episodes_done\":" << episodesDone
       << ",\"episodes_total\":" << episodesTotal
       << ",\"eta_seconds\":";
    if (haveRate) os << obs::json::number(eta);
    else os << "null";
    // The failed_jobs manifest: everything a post-mortem needs without
    // scanning the per-job rows — name, terminal state, attempts, error.
    os << ",\"failed_jobs\":[";
    bool firstFailed = true;
    for (const JobStatus& j : jobs) {
      if (std::string_view(j.state) != "failed" &&
          std::string_view(j.state) != "quarantined")
        continue;
      if (!firstFailed) os << ",";
      firstFailed = false;
      os << "{\"name\":\"" << obs::json::escape(j.name) << "\",\"state\":\""
         << j.state << "\",\"attempts\":" << j.attempts << ",\"error\":\""
         << obs::json::escape(j.error) << "\"}";
    }
    os << "]";
    os << ",\"jobs\":[";
    bool first = true;
    for (const JobStatus& j : jobs) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << obs::json::escape(j.name) << "\",\"state\":\""
         << j.state << "\",\"episodes_done\":" << j.episodesDone
         << ",\"episodes_total\":" << j.episodesTotal
         << ",\"attempts\":" << j.attempts
         << ",\"stalled\":" << (j.stalled ? "true" : "false")
         << ",\"ema_reward\":" << obs::json::number(j.emaReward)
         << ",\"checkpoint_age_seconds\":";
      if (j.lastCheckpointNs >= 0)
        os << obs::json::number(static_cast<double>(now - j.lastCheckpointNs) / 1e9);
      else
        os << "null";
      os << ",\"heartbeat_age_seconds\":";
      if (j.lastHeartbeatNs >= 0)
        os << obs::json::number(static_cast<double>(now - j.lastHeartbeatNs) / 1e9);
      else
        os << "null";
      if (!j.error.empty())
        os << ",\"error\":\"" << obs::json::escape(j.error) << "\"";
      os << "}";
    }
    os << "]}";
    return os.str();
  }
};

CampaignRunner::CampaignRunner(CampaignConfig cfg) : cfg_(std::move(cfg)) {}

CampaignRunner::~CampaignRunner() = default;

void CampaignRunner::addJob(CampaignJob job) {
  if (job.name.empty()) throw std::invalid_argument("CampaignJob: empty name");
  if (job.episodes <= 0)
    throw std::invalid_argument("CampaignJob " + job.name + ": episodes must be > 0");
  if (!job.make)
    throw std::invalid_argument("CampaignJob " + job.name + ": no context factory");
  for (const auto& existing : jobs_)
    if (existing.name == job.name)
      throw std::invalid_argument("CampaignJob " + job.name + ": duplicate name");
  jobs_.push_back(std::move(job));
}

std::vector<CampaignJobResult> CampaignRunner::run() {
  obs::TraceSpan span("rl.campaign.run", "rl");
  fs::create_directories(cfg_.outDir);
  poolStats_ = util::ThreadPool::Stats{};
  if (cfg_.writeStatus) {
    status_ = std::make_unique<StatusBoard>(cfg_, jobs_);
    status_->writeNow();  // all-pending snapshot: the file exists immediately
    if (cfg_.watchdog) {
      const double stall = cfg_.stallAfterSeconds > 0.0
                               ? cfg_.stallAfterSeconds
                               : std::max(1.0, 3.0 * status_->everySeconds);
      status_->startWatchdog(stall);
    }
  }
  std::vector<CampaignJobResult> results(jobs_.size());
  if (cfg_.workers < 2 || jobs_.size() < 2) {
    for (std::size_t i = 0; i < jobs_.size(); ++i) results[i] = runJob(i);
    if (status_) {
      status_->stopWatchdog();
      status_->writeNow();
    }
    return results;
  }
  // One shared pool for the whole campaign. Jobs are the stealable unit:
  // a worker that finishes a short job pulls the next queued one, so a mix
  // of cheap and expensive jobs keeps every worker busy to the end.
  {
    util::ThreadPool pool(std::min(cfg_.workers, jobs_.size()));
    std::vector<std::future<void>> futs;
    futs.reserve(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i)
      futs.push_back(pool.submit([this, i, &results]() { results[i] = runJob(i); }));
    for (auto& f : futs) f.get();  // runJob captures job errors; this rethrows only harness bugs
    poolStats_ = pool.stats();
  }
  if (status_) {
    status_->stopWatchdog();
    status_->writeNow();
  }
  return results;
}

CampaignJobResult CampaignRunner::runJob(std::size_t jobIndex) {
  const CampaignJob& job = jobs_[jobIndex];
  const auto status = [&](bool force, auto&& mutate) {
    if (status_) status_->update(jobIndex, force, mutate);
  };
  const int maxAttempts = 1 + std::max(0, cfg_.maxJobRetries);
  static auto& retries = obs::counter("campaign.job_retries");
  static auto& quarantines = obs::counter("campaign.quarantined");
  CampaignJobResult r;
  bool permanent = false;
  for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
    permanent = false;
    if (attempt > 1) {
      retries.add();
      util::logWarn() << "campaign: retrying job " << job.name << " (attempt "
                      << attempt << "/" << maxAttempts << "): " << r.error;
      backoffSleep(backoffDelay(cfg_.retryBackoffSeconds, attempt - 1));
    }
    status(attempt > 1, [&](StatusBoard::JobStatus& row) { row.attempts = attempt; });
    r = runJobAttempt(jobIndex, &permanent);
    r.attempts = attempt;
    if (!r.failed) return r;
    if (permanent) break;  // deterministic failure: retrying replays it
  }
  // Terminal failure. With a retry budget this is a quarantine — whether the
  // budget was exhausted or a permanent error made retrying pointless — and
  // the job is parked in the failed_jobs manifest while the rest of the
  // campaign goes on. Without a budget the historical "failed" state stands.
  if (cfg_.maxJobRetries > 0) {
    r.quarantined = true;
    quarantines.add();
  }
  static auto& jobsFailed = obs::counter("rl.campaign.jobs_failed");
  jobsFailed.add();
  status(true, [&](StatusBoard::JobStatus& row) {
    row.state = r.quarantined ? "quarantined" : "failed";
    row.error = r.error;
  });
  return r;
}

CampaignJobResult CampaignRunner::runJobAttempt(std::size_t jobIndex,
                                                bool* permanent) {
  const CampaignJob& job = jobs_[jobIndex];
  obs::TraceSpan jobSpan("rl.campaign.job", "rl");
  // Tag this thread for the duration of the attempt so failpoint schedules
  // can target jobs by name ("spice.dc.newton=diverge@3#ota" hits only jobs
  // whose name contains "ota").
  util::failpoint::ScopedContext fpScope(job.name);
  const auto status = [&](bool force, auto&& mutate) {
    if (status_) status_->update(jobIndex, force, mutate);
  };
  static auto& saveRetries = obs::counter("io.save_retries");
  CampaignJobResult r;
  r.name = job.name;
  r.dir = cfg_.outDir + "/" + job.name;
  const std::string donePath = r.dir + "/done";
  const std::string checkpointPath = r.dir + "/checkpoint.bin";
  try {
    fs::create_directories(r.dir);
    status(true, [](StatusBoard::JobStatus& row) { row.state = "running"; });

    if (cfg_.resume && fs::exists(donePath)) {
      std::string text;
      if (nn::readFile(donePath, text) && parseDoneMarker(text, r)) {
        r.skipped = true;
        status(true, [&](StatusBoard::JobStatus& row) {
          row.state = "skipped";
          row.episodesDone = r.episodes;
          row.emaReward = r.finalMeanReward;
        });
        return r;
      }
      // A done marker that does not parse is as alarming as a torn
      // checkpoint: the atomic writer never produces one. Permanent — the
      // file will be just as corrupt on every retry.
      throw PermanentJobError(donePath + ": unreadable completion marker");
    }

    auto ctx = job.make();
    PpoTrainer trainer(ctx->trainEnv(), ctx->policy(), job.ppo,
                       util::Rng(job.trainSeed));
    util::Ema rewardEma(0.05), lenEma(0.05);
    util::Rng evalRng(job.evalSeed);
    std::vector<CampaignCurvePoint> curve;

    if (cfg_.resume) {
      nn::TrainState st;
      std::string err;
      const nn::LoadResult lr = nn::loadTrainState(checkpointPath, st, &err);
      if (lr == nn::LoadResult::Invalid)
        throw PermanentJobError(checkpointPath + ": invalid checkpoint: " + err);
      if (lr == nn::LoadResult::Ok) {
        if (!trainer.loadState(st, &err))
          throw PermanentJobError(checkpointPath + ": " + err);
        const std::string* rng = st.rng(kEvalRngKey);
        if (!rng || !evalRng.restoreState(*rng))
          throw PermanentJobError(checkpointPath + ": missing/invalid eval RNG");
        const std::string* ema = st.blob(kEmaKey);
        if (!ema || !decodeEmas(*ema, rewardEma, lenEma))
          throw PermanentJobError(checkpointPath + ": missing/invalid EMA state");
        const std::string* cv = st.blob(kCurveKey);
        if (!cv || !decodeCurve(*cv, curve))
          throw PermanentJobError(checkpointPath + ": missing/invalid curve state");
        const std::string* solver = st.blob(kSolverKey);
        std::vector<std::string> solverBlobs;
        if (!solver || !decodeSolverBlobs(*solver, solverBlobs) ||
            !ctx->restoreSolverSnapshots(solverBlobs))
          throw PermanentJobError(checkpointPath + ": missing/invalid solver state");
        r.resumed = true;
        status(true, [&](StatusBoard::JobStatus& row) {
          row.episodesDone = trainer.episodeCount();
          row.emaReward = rewardEma.value();
        });
      }
    }

    // Checkpoint writes survive transient I/O faults: each write gets
    // checkpointWriteAttempts inline tries with exponential backoff; a write
    // that still fails degrades the cadence (train on, write less often)
    // and only maxCheckpointFailures consecutive dead writes fail the job.
    // A checkpoint is atomic (temp + fsync + rename), so a failed write
    // leaves the previous snapshot intact — resume still works bitwise.
    int consecutiveCheckpointFailures = 0;
    int checkpointCadence = std::max(1, cfg_.checkpointEvery);
    const auto writeCheckpoint = [&]() {
      nn::TrainState st;
      trainer.saveState(st);
      st.setRng(kEvalRngKey, evalRng.serializeState());
      st.setBlob(kEmaKey, encodeEmas(rewardEma, lenEma));
      st.setBlob(kCurveKey, encodeCurve(curve));
      st.setBlob(kSolverKey, encodeSolverBlobs(ctx->solverSnapshots()));
      std::string lastError;
      bool saved = false;
      const int tries = std::max(1, cfg_.checkpointWriteAttempts);
      for (int a = 1; a <= tries && !saved; ++a) {
        if (a > 1) {
          saveRetries.add();
          backoffSleep(backoffDelay(cfg_.checkpointRetryBackoffSeconds, a - 1));
        }
        try {
          nn::saveTrainState(checkpointPath, st);
          saved = true;
        } catch (const std::exception& e) {
          lastError = e.what();
        }
      }
      if (!saved) {
        ++consecutiveCheckpointFailures;
        if (consecutiveCheckpointFailures >= std::max(1, cfg_.maxCheckpointFailures))
          throw std::runtime_error(checkpointPath +
                                   ": checkpoint writes keep failing (last: " +
                                   lastError + ")");
        checkpointCadence =
            std::min(checkpointCadence * 2, std::max(1, job.episodes));
        static auto& degraded =
            obs::counter("campaign.checkpoint_cadence_degraded");
        degraded.add();
        util::logWarn() << "campaign: job " << job.name
                        << " checkpoint write failed (" << lastError
                        << "); degrading cadence to every " << checkpointCadence
                        << " episodes";
        return;
      }
      consecutiveCheckpointFailures = 0;
      checkpointCadence = std::max(1, cfg_.checkpointEvery);
      status(true, [&](StatusBoard::JobStatus& row) {
        row.lastCheckpointNs = obs::monotonicNowNs();
        row.episodesDone = trainer.episodeCount();
        row.emaReward = rewardEma.value();
      });
      if (cfg_.onCheckpoint) cfg_.onCheckpoint(job.name, trainer.episodeCount());
    };

    // The per-episode bookkeeping of bench::trainWithCurves, verbatim — the
    // curves a campaign job emits match the old harness sample-for-sample.
    const auto onEpisode = [&](const EpisodeStats& s) {
      rewardEma.update(s.episodeReward);
      lenEma.update(s.episodeLength);
      const bool evalNow =
          (s.episode % job.evalEvery == 0) || s.episode == job.episodes;
      CampaignCurvePoint p;
      p.episode = s.episode;
      p.meanReward = rewardEma.value();
      p.meanLength = lenEma.value();
      if (evalNow) {
        const CampaignEvalReport rep = ctx->evaluate(job.evalEpisodes, evalRng);
        p.deployAccuracy = rep.accuracy;
        curve.push_back(p);
      } else if (s.episode % std::max(1, job.evalEvery / 10) == 0) {
        curve.push_back(p);
      }
      // Throttled heartbeat: cheap row mutation every episode, file rewrite
      // at most once per status cadence.
      status(false, [&](StatusBoard::JobStatus& row) {
        row.episodesDone = s.episode;
        row.emaReward = rewardEma.value();
      });
    };

    while (trainer.episodeCount() < job.episodes) {
      const int remaining = job.episodes - trainer.episodeCount();
      // checkpointCadence (not checkpointEvery): a degraded job writes less
      // often. Chunk boundaries never affect the math, only when snapshots
      // happen, so cadence changes preserve bitwise training results.
      const int chunk = cfg_.checkpointEvery > 0
                            ? std::min(checkpointCadence, remaining)
                            : remaining;
      trainer.trainChunk(chunk, onEpisode);
      if (cfg_.checkpointEvery > 0 && trainer.episodeCount() < job.episodes)
        writeCheckpoint();
    }
    trainer.finishTraining();
    // Post-training checkpoint: a crash during the final evaluation or
    // artifact writes resumes here instead of redoing training.
    if (cfg_.checkpointEvery > 0) writeCheckpoint();

    util::Rng finalRng(job.finalEvalSeed);
    const CampaignEvalReport rep = ctx->evaluate(2 * job.evalEpisodes, finalRng);
    r.episodes = trainer.episodeCount();
    r.finalMeanReward = curve.empty() ? rewardEma.value() : curve.back().meanReward;
    r.finalMeanLength = curve.empty() ? lenEma.value() : curve.back().meanLength;
    r.finalAccuracy = rep.accuracy;
    r.finalMeanStepsSuccess = rep.meanStepsSuccess;

    // Final artifacts get the same transient-I/O retry as checkpoints; a
    // failure that survives every inline attempt fails the job (and the
    // post-training checkpoint above means a retried job resumes straight
    // here instead of retraining).
    const auto writeArtifact = [&](const char* what,
                                   const std::function<void()>& op) {
      std::string lastError;
      const int tries = std::max(1, cfg_.checkpointWriteAttempts);
      for (int a = 1; a <= tries; ++a) {
        if (a > 1) {
          saveRetries.add();
          backoffSleep(backoffDelay(cfg_.checkpointRetryBackoffSeconds, a - 1));
        }
        try {
          op();
          return;
        } catch (const std::exception& e) {
          lastError = e.what();
        }
      }
      throw std::runtime_error(std::string(what) +
                               ": write keeps failing (last: " + lastError + ")");
    };
    const std::string csv = formatCurveCsv(job, curve);
    writeArtifact("curve.csv",
                  [&]() { nn::atomicWriteFile(r.dir + "/curve.csv", csv); });
    if (!job.curveCsv.empty())
      writeArtifact("curve.csv copy",
                    [&]() { nn::atomicWriteFile(job.curveCsv, csv); });
    writeArtifact("policy.bin", [&]() {
      nn::saveParameters(r.dir + "/policy.bin", ctx->policy().parameters());
    });
    if (!job.policyBin.empty())
      writeArtifact("policy.bin copy", [&]() {
        nn::saveParameters(job.policyBin, ctx->policy().parameters());
      });
    // The done marker is written LAST: its presence certifies every artifact
    // above is complete, which is what makes re-running a campaign safe.
    writeArtifact("done marker", [&]() {
      nn::atomicWriteFile(donePath, formatDoneMarker(r));
    });
    static auto& jobsDone = obs::counter("rl.campaign.jobs_done");
    jobsDone.add();
    status(true, [&](StatusBoard::JobStatus& row) {
      row.state = "done";
      row.episodesDone = r.episodes;
      row.emaReward = r.finalMeanReward;
      row.error.clear();  // a retried job that succeeded is not in error
    });
  } catch (const NonFiniteError& e) {
    // Structured math failure: the message already names episode/epoch/
    // minibatch; the job name pins it to a grid cell. Deterministic replay
    // reproduces it exactly, so it never consumes retries.
    r.failed = true;
    *permanent = true;
    r.error = job.name + ": " + e.what();
  } catch (const PermanentJobError& e) {
    r.failed = true;
    *permanent = true;
    r.error = job.name + ": " + e.what();
  } catch (const std::exception& e) {
    // Everything else (I/O, simulator, pool) is presumed transient and
    // eligible for the retry budget; the wrapper applies terminal state.
    r.failed = true;
    r.error = job.name + ": " + e.what();
  }
  if (r.failed)
    status(true, [&](StatusBoard::JobStatus& row) { row.error = r.error; });
  return r;
}

}  // namespace crl::rl
