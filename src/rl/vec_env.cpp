#include "rl/vec_env.h"

#include <exception>
#include <stdexcept>

namespace crl::rl {

VecEnv::VecEnv(std::size_t numEnvs, const LaneFactory& factory,
               std::uint64_t baseSeed, util::ThreadPool* pool)
    : pool_(pool) {
  if (numEnvs == 0) throw std::invalid_argument("VecEnv: need at least one lane");
  lanes_.reserve(numEnvs);
  for (std::size_t i = 0; i < numEnvs; ++i) {
    EnvLane lane = factory(i);
    if (!lane.env) throw std::invalid_argument("VecEnv: factory returned null env");
    lane.rng = util::Rng(laneSeed(baseSeed, i));
    lanes_.push_back(std::move(lane));
  }
}

void VecEnv::forEachLane(const std::function<void(std::size_t)>& fn) {
  // A single worker (or lane) gains nothing from dispatch; skip the queue.
  if (!pool_ || pool_->workerCount() < 2 || lanes_.size() == 1) {
    for (std::size_t i = 0; i < lanes_.size(); ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    futs.push_back(pool_->submit([&fn, i]() { fn(i); }));
  // Wait for every lane before surfacing the first failure, so no task is
  // still touching lane state when an exception unwinds the caller.
  for (auto& f : futs) f.wait();
  for (auto& f : futs) f.get();
}

std::vector<Observation> VecEnv::resetAll() {
  std::vector<Observation> obs(lanes_.size());
  forEachLane([this, &obs](std::size_t i) {
    obs[i] = lanes_[i].env->reset(lanes_[i].rng);
  });
  return obs;
}

Observation VecEnv::resetLane(std::size_t i) {
  return lanes_[i].env->reset(lanes_[i].rng);
}

Observation VecEnv::resetLaneWithTarget(std::size_t i,
                                        const std::vector<double>& target) {
  return lanes_[i].env->resetWithTarget(target, lanes_[i].rng);
}

std::vector<StepResult> VecEnv::stepAll(const std::vector<std::vector<int>>& actions) {
  if (actions.size() != lanes_.size())
    throw std::invalid_argument("VecEnv::stepAll: one action vector per lane");
  std::vector<StepResult> results(lanes_.size());
  forEachLane([this, &actions, &results](std::size_t i) {
    results[i] = lanes_[i].env->step(actions[i]);
  });
  return results;
}

std::vector<StepResult> VecEnv::stepLanes(const std::vector<std::size_t>& laneIds,
                                          const std::vector<std::vector<int>>& actions) {
  if (actions.size() != laneIds.size())
    throw std::invalid_argument("VecEnv::stepLanes: one action vector per lane id");
  std::vector<StepResult> results(laneIds.size());
  if (!pool_ || pool_->workerCount() < 2 || laneIds.size() == 1) {
    for (std::size_t k = 0; k < laneIds.size(); ++k)
      results[k] = lanes_[laneIds[k]].env->step(actions[k]);
    return results;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(laneIds.size());
  for (std::size_t k = 0; k < laneIds.size(); ++k)
    futs.push_back(pool_->submit([this, &laneIds, &actions, &results, k]() {
      results[k] = lanes_[laneIds[k]].env->step(actions[k]);
    }));
  for (auto& f : futs) f.wait();
  for (auto& f : futs) f.get();
  return results;
}

std::vector<VecEnv::LaneStepOutcome> VecEnv::stepLanesGuarded(
    const std::vector<std::size_t>& laneIds,
    const std::vector<std::vector<int>>& actions) {
  if (actions.size() != laneIds.size())
    throw std::invalid_argument(
        "VecEnv::stepLanesGuarded: one action vector per lane id");
  std::vector<LaneStepOutcome> out(laneIds.size());
  const auto capture = [&out](std::size_t k, const std::exception& e) {
    out[k].failed = true;
    out[k].error = e.what();
  };
  if (!pool_ || pool_->workerCount() < 2 || laneIds.size() == 1) {
    for (std::size_t k = 0; k < laneIds.size(); ++k) {
      try {
        out[k].result = lanes_[laneIds[k]].env->step(actions[k]);
      } catch (const std::exception& e) {
        capture(k, e);
      }
    }
    return out;
  }
  std::vector<std::future<StepResult>> futs;
  futs.reserve(laneIds.size());
  for (std::size_t k = 0; k < laneIds.size(); ++k)
    futs.push_back(pool_->submit([this, &laneIds, &actions, k]() {
      return lanes_[laneIds[k]].env->step(actions[k]);
    }));
  // Wait for every lane before collecting, then catch per future: the catch
  // at get() is what isolates failures injected into the pooled task wrapper
  // (failpoint pool.task) as well as ones thrown by the env itself.
  for (auto& f : futs) f.wait();
  for (std::size_t k = 0; k < futs.size(); ++k) {
    try {
      out[k].result = futs[k].get();
    } catch (const std::exception& e) {
      capture(k, e);
    }
  }
  return out;
}

}  // namespace crl::rl
