#pragma once
// Parallel simulation sessions: reusable per-worker solve workspaces plus a
// deterministic fan-out helper, so the inside of one circuit evaluation (an
// AC sweep, a sensitivity Jacobian, a Monte-Carlo batch) can spread its
// independent solve points across a thread pool without allocating per point.
//
// Determinism contract: work is split into one contiguous chunk of items per
// worker slot (the split depends only on the item count and the worker
// count), results land in caller-indexed slots, and every item is computed
// exactly as the serial path computes it — same assembly, same factorization,
// same summation order — so pooled results are bit-identical to serial
// results at any worker count.
//
// A session is a single-thread-of-control object: two threads must not drive
// the same session concurrently (the per-slot workspaces would be shared).
// Outer fan-outs (BenchmarkPool lanes, multi-seed harnesses) therefore run
// their inner evaluations serially, or give each outer worker its own
// session.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "linalg/solver_backend.h"
#include "util/thread_pool.h"

namespace crl::spice {

/// Reusable complex MNA workspace for one worker slot: the dense/sparse
/// solver seam (assembly target + factorization) plus RHS and solution
/// buffers. Everything is sized once and reused across sweep points; on the
/// sparse backend the symbolic analysis survives across frequency points, so
/// every point after a slot's first is a numeric-only, allocation-free
/// refactor. Both backends' buffers persist, so one session can serve dense
/// and sparse circuits alternately (the analysis picks the kind per circuit).
struct AcWorkspace {
  linalg::MnaSolver<std::complex<double>> solver;
  linalg::CVec rhs;
  linalg::CVec x;

  /// Select the backend and size/zero its assembly slots for an n-unknown
  /// system.
  void beginAssembly(std::size_t n,
                     linalg::SolverKind kind = linalg::SolverKind::Dense) {
    solver.select(kind);
    solver.beginAssembly(n, rhs);
  }
};

class SimSession {
 public:
  /// workers == 1 runs everything on the calling thread (no pool); workers
  /// == 0 uses the hardware concurrency; workers > 1 spawns an owned pool.
  explicit SimSession(std::size_t workers = 1);
  /// Borrow an external pool (not owned, not shut down by the session); the
  /// session exposes one worker slot per pool worker.
  explicit SimSession(util::ThreadPool& pool);
  ~SimSession();

  SimSession(const SimSession&) = delete;
  SimSession& operator=(const SimSession&) = delete;

  std::size_t workerCount() const { return workers_; }
  /// The dispatch pool; null when the session is serial.
  util::ThreadPool* pool() { return pool_; }

  /// Worker-count knob for harnesses: CRL_SPICE_WORKERS (default 1).
  static std::size_t workersFromEnv();

  /// Run fn(first, last, slot) over a deterministic contiguous partition of
  /// [0, n): slot s covers [n*s/W, n*(s+1)/W). Chunks run concurrently
  /// through the pool (serially in slot order when serial); a slot never
  /// runs two chunks at once, so per-slot state — acWorkspace(slot) — is
  /// race-free. Exceptions from chunks are rethrown after all chunks finish.
  void parallelChunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Per-slot solve workspace; slot < workerCount().
  AcWorkspace& acWorkspace(std::size_t slot) { return workspaces_[slot]; }

 private:
  std::unique_ptr<util::ThreadPool> ownedPool_;
  util::ThreadPool* pool_ = nullptr;  // null when serial
  std::size_t workers_ = 1;
  std::vector<AcWorkspace> workspaces_;
};

}  // namespace crl::spice
