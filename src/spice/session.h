#pragma once
// Parallel simulation sessions: reusable per-worker solve workspaces plus a
// deterministic fan-out helper, so the inside of one circuit evaluation (an
// AC sweep, a sensitivity Jacobian, a Monte-Carlo batch) can spread its
// independent solve points across a thread pool without allocating per point.
//
// Determinism contract: work is split into one contiguous chunk of items per
// worker slot (the split depends only on the item count and the worker
// count), results land in caller-indexed slots, and every item is computed
// exactly as the serial path computes it — same assembly, same factorization,
// same summation order — so pooled results are bit-identical to serial
// results at any worker count.
//
// A session is a single-thread-of-control object: two threads must not drive
// the same session concurrently (the per-slot workspaces would be shared).
// Outer fan-outs (BenchmarkPool lanes, multi-seed harnesses) therefore run
// their inner evaluations serially, or give each outer worker its own
// session.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "util/thread_pool.h"

namespace crl::spice {

/// Reusable complex MNA workspace for one worker slot: assembly matrix/RHS,
/// the factorization, and the solution buffer. Everything is sized once and
/// reused across sweep points.
struct AcWorkspace {
  linalg::CMat y;
  linalg::CVec rhs;
  linalg::CVec x;
  linalg::Lu<std::complex<double>> lu;

  /// Size the assembly slots for an n-unknown system and zero them.
  void beginAssembly(std::size_t n) {
    if (y.rows() != n || y.cols() != n) {
      y = linalg::CMat(n, n);
    } else {
      y.fill({});
    }
    rhs.assign(n, {});
  }
};

class SimSession {
 public:
  /// workers == 1 runs everything on the calling thread (no pool); workers
  /// == 0 uses the hardware concurrency; workers > 1 spawns an owned pool.
  explicit SimSession(std::size_t workers = 1);
  /// Borrow an external pool (not owned, not shut down by the session); the
  /// session exposes one worker slot per pool worker.
  explicit SimSession(util::ThreadPool& pool);
  ~SimSession();

  SimSession(const SimSession&) = delete;
  SimSession& operator=(const SimSession&) = delete;

  std::size_t workerCount() const { return workers_; }
  /// The dispatch pool; null when the session is serial.
  util::ThreadPool* pool() { return pool_; }

  /// Worker-count knob for harnesses: CRL_SPICE_WORKERS (default 1).
  static std::size_t workersFromEnv();

  /// Run fn(first, last, slot) over a deterministic contiguous partition of
  /// [0, n): slot s covers [n*s/W, n*(s+1)/W). Chunks run concurrently
  /// through the pool (serially in slot order when serial); a slot never
  /// runs two chunks at once, so per-slot state — acWorkspace(slot) — is
  /// race-free. Exceptions from chunks are rethrown after all chunks finish.
  void parallelChunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Per-slot solve workspace; slot < workerCount().
  AcWorkspace& acWorkspace(std::size_t slot) { return workspaces_[slot]; }

 private:
  std::unique_ptr<util::ThreadPool> ownedPool_;
  util::ThreadPool* pool_ = nullptr;  // null when serial
  std::size_t workers_ = 1;
  std::vector<AcWorkspace> workspaces_;
};

}  // namespace crl::spice
