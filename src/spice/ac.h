#pragma once
// Small-signal AC analysis: complex MNA solve of the circuit linearized at a
// DC operating point, swept over frequency.

#include <vector>

#include "spice/netlist.h"

namespace crl::spice {

/// One point of a frequency response at a probed node.
struct AcPoint {
  double freqHz = 0.0;
  std::complex<double> value;  ///< complex node voltage (per unit AC drive)

  double magnitude() const { return std::abs(value); }
  double magnitudeDb() const { return 20.0 * std::log10(std::abs(value)); }
  /// Phase in degrees, unwrapped by the sweep helper.
  double phaseDeg() const { return std::arg(value) * 180.0 / 3.14159265358979323846; }
};

class AcAnalysis {
 public:
  /// xop is a converged DC solution from DcAnalysis.
  AcAnalysis(Netlist& net, linalg::Vec xop);

  /// Solve the full complex unknown vector at one frequency.
  linalg::CVec solveAt(double freqHz) const;
  /// Complex voltage at a node for the configured AC sources.
  std::complex<double> nodeVoltage(double freqHz, NodeId node) const;

  /// Logarithmic frequency grid.
  static std::vector<double> logspace(double f0, double f1, int pointsPerDecade);

  /// Sweep the response at a node over a log grid.
  std::vector<AcPoint> sweep(NodeId node, double f0, double f1,
                             int pointsPerDecade) const;

  const linalg::Vec& operatingPoint() const { return xop_; }

 private:
  Netlist& net_;
  linalg::Vec xop_;
};

/// Scalar measurements extracted from a swept response (the op-amp specs).
struct FrequencyResponseMetrics {
  double dcGain = 0.0;          ///< |H| at the lowest swept frequency
  double unityGainFreq = 0.0;   ///< f where |H| crosses 1 (0 if never)
  double phaseMarginDeg = 0.0;  ///< 180 + phase at the unity-gain frequency
  double bandwidth3Db = 0.0;    ///< f where |H| falls to dcGain/sqrt(2)
  bool valid = false;           ///< false if the sweep never crosses unity
};

/// Compute gain/UGBW/PM/3dB-BW from a swept response. Phases are unwrapped
/// across sweep points before the margin is evaluated.
FrequencyResponseMetrics analyzeResponse(const std::vector<AcPoint>& sweep);

}  // namespace crl::spice
