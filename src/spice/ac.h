#pragma once
// Small-signal AC analysis: complex MNA solve of the circuit linearized at a
// DC operating point, swept over frequency.
//
// Sweeps solve one independent complex system per frequency point, so they
// fan out over a SimSession's workers; per-point assembly and solve order are
// identical to the serial path, making pooled sweeps bit-identical to serial
// ones at any worker count.

#include <numbers>
#include <vector>

#include "spice/netlist.h"
#include "spice/session.h"

namespace crl::spice {

/// One point of a frequency response at a probed node.
struct AcPoint {
  double freqHz = 0.0;
  std::complex<double> value;  ///< complex node voltage (per unit AC drive)

  double magnitude() const { return std::abs(value); }
  double magnitudeDb() const { return 20.0 * std::log10(std::abs(value)); }
  /// Phase in degrees, unwrapped by the sweep helper.
  double phaseDeg() const { return std::arg(value) * 180.0 / std::numbers::pi; }
};

/// One AcAnalysis is a single-thread-of-control object: solveAt, nodeVoltage
/// and sessionless sweeps share one internal workspace (they are const only
/// in the logical sense), so concurrent calls on the same instance race.
/// Pooled sweeps hand each worker a SimSession-owned workspace instead and
/// are safe; for concurrent point probes, use one AcAnalysis per thread.
class AcAnalysis {
 public:
  /// xop is a converged DC solution from DcAnalysis. `solver` picks the
  /// dense/sparse backend (Auto sizes against the sparse threshold); on the
  /// sparse backend each workspace analyzes the topology once and refactors
  /// numerically per frequency point.
  AcAnalysis(Netlist& net, linalg::Vec xop,
             linalg::SolverChoice solver = linalg::SolverChoice::Auto);

  /// Solve the full complex unknown vector at one frequency.
  linalg::CVec solveAt(double freqHz) const;
  /// Assemble and solve at one frequency into a caller-owned workspace
  /// (allocation-free once the workspace is warm); the solution is ws.x.
  void solveInto(double freqHz, AcWorkspace& ws) const;
  /// Complex voltage at a node for the configured AC sources. Reuses the
  /// sweep path's workspace, so repeated probes do not allocate.
  std::complex<double> nodeVoltage(double freqHz, NodeId node) const;

  /// Logarithmic frequency grid.
  static std::vector<double> logspace(double f0, double f1, int pointsPerDecade);

  /// Sweep the response at a node over a log grid. With a session the
  /// frequency points are solved across its workers (bit-identical to the
  /// serial sweep); null or single-worker sessions run serially.
  std::vector<AcPoint> sweep(NodeId node, double f0, double f1,
                             int pointsPerDecade,
                             SimSession* session = nullptr) const;

  const linalg::Vec& operatingPoint() const { return xop_; }

 private:
  Netlist& net_;
  linalg::Vec xop_;
  /// Resolved backend for this circuit (chooseSolverKind at construction).
  linalg::SolverKind kind_ = linalg::SolverKind::Dense;
  /// Serial-path workspace (sweeps without a session, nodeVoltage, solveAt).
  mutable AcWorkspace ws_;
};

/// Scalar measurements extracted from a swept response (the op-amp specs).
struct FrequencyResponseMetrics {
  double dcGain = 0.0;          ///< |H| at the lowest swept frequency
  double unityGainFreq = 0.0;   ///< f where |H| crosses 1 (0 if never)
  double phaseMarginDeg = 0.0;  ///< 180 + phase at the unity-gain frequency
  double bandwidth3Db = 0.0;    ///< f where |H| falls to dcGain/sqrt(2)
  bool valid = false;           ///< false if the sweep never crosses unity
};

/// Compute gain/UGBW/PM/3dB-BW from a swept response. Phases are unwrapped
/// across sweep points before the margin is evaluated.
FrequencyResponseMetrics analyzeResponse(const std::vector<AcPoint>& sweep);

}  // namespace crl::spice
