#pragma once
// Level-1 (square-law) MOSFET with channel-length modulation and a smoothed
// subthreshold corner for Newton robustness. Bulk is tied to source.
//
// The device is symmetric: when v_ds goes negative during Newton iterations
// the drain/source roles are swapped internally. Gate capacitances are
// geometry-derived constants (saturation Meyer values) — adequate for the
// pole/zero structure the op-amp experiments exercise and documented as a
// simplification in DESIGN.md.

#include "spice/device.h"

namespace crl::spice {

enum class MosType { Nmos, Pmos };

/// Technology-level parameters; one shared instance per process corner.
struct MosModel {
  MosType type = MosType::Nmos;
  double kp = 200e-6;      ///< transconductance parameter mu*Cox [A/V^2]
  double vth = 0.4;        ///< threshold voltage magnitude [V]
  double lambda = 0.1;     ///< channel-length modulation [1/V]
  double length = 270e-9;  ///< channel length [m]
  double coxArea = 8e-3;   ///< gate oxide capacitance per area [F/m^2]
  double covPerW = 0.25e-9; ///< overlap capacitance per width [F/m]
  double subthreshSmoothing = 0.02;  ///< overdrive smoothing delta [V]
};

/// Operating-point evaluation of the square-law equations (NMOS-style,
/// source-referenced positive quantities).
struct MosEval {
  double id = 0.0;   ///< drain current [A]
  double gm = 0.0;   ///< d id / d vgs [S]
  double gds = 0.0;  ///< d id / d vds [S]
};

/// Evaluate the smoothed level-1 equations for vds >= 0.
MosEval evalSquareLaw(const MosModel& m, double beta, double vgs, double vds);

class Mosfet : public Device {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, MosModel model,
         double widthPerFinger, int fingers);

  std::string_view kind() const override { return "mosfet"; }
  std::vector<NodeId> terminals() const override { return {d_, g_, s_}; }
  int tranStateSize() const override { return 4; }  // (v,i) history of Cgs, Cgd
  void stampLarge(RealStamper& s, const SimContext& ctx) const override;
  void stampAc(ComplexStamper& s, const AcContext& ctx) const override;
  void updateTranState(const SimContext& ctx, double* state) const override;
  void initTranState(const linalg::Vec& xop, double* state) const override;
  std::string card() const override;

  void setGeometry(double widthPerFinger, int fingers);
  double width() const { return w_; }
  int fingers() const { return nf_; }
  double effectiveWidth() const { return w_ * nf_; }
  const MosModel& model() const { return model_; }

  /// Drain current and small-signal params at a given solution vector.
  MosEval evalAt(const linalg::Vec& x) const;
  /// Drain current magnitude (useful for power accounting in tests).
  double drainCurrent(const linalg::Vec& x) const { return evalAt(x).id; }

  double cgs() const { return cgs_; }
  double cgd() const { return cgd_; }

  NodeId drain() const { return d_; }
  NodeId gate() const { return g_; }
  NodeId source() const { return s_; }

 private:
  void recomputeCaps();
  /// Oriented evaluation handling PMOS mirroring and drain/source swap.
  /// Returns NMOS-style eval plus effective (drain, source) node roles.
  MosEval orientedEval(const linalg::Vec& x, NodeId& dEff, NodeId& sEff) const;

  NodeId d_, g_, s_;
  MosModel model_;
  double w_;
  int nf_;
  double cgs_ = 0.0;
  double cgd_ = 0.0;
};

}  // namespace crl::spice
