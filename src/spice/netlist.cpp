#include "spice/netlist.h"

#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace crl::spice {

Netlist::Netlist() {
  names_.push_back("0");
  byName_["0"] = kGround;
  byName_["gnd"] = kGround;
}

NodeId Netlist::node(const std::string& name) {
  std::string key = util::toLower(name);
  auto it = byName_.find(key);
  if (it != byName_.end()) return it->second;
  NodeId id = static_cast<NodeId>(names_.size());
  names_.push_back(name);
  byName_[key] = id;
  return id;
}

NodeId Netlist::findNode(const std::string& name) const {
  auto it = byName_.find(util::toLower(name));
  if (it == byName_.end()) throw std::invalid_argument("Netlist: unknown node " + name);
  return it->second;
}

const std::string& Netlist::nodeName(NodeId id) const {
  return names_.at(static_cast<std::size_t>(id));
}

Device* Netlist::findDevice(const std::string& name) const {
  for (const auto& d : devices_)
    if (d->name() == name) return d.get();
  return nullptr;
}

void Netlist::finalize() {
  std::size_t branch = nodeCount() - 1;  // branch rows follow node rows
  std::size_t stateOff = 0;
  for (auto& d : devices_) {
    if (d->branchCount() > 0) {
      d->setBranchIndex(branch);
      branch += static_cast<std::size_t>(d->branchCount());
    }
    if (d->tranStateSize() > 0) {
      d->setStateOffset(stateOff);
      stateOff += static_cast<std::size_t>(d->tranStateSize());
    }
  }
  branchCount_ = branch - (nodeCount() - 1);
  tranStateCount_ = stateOff;
  finalized_ = true;
}

std::size_t Netlist::unknownCount() const {
  return (nodeCount() - 1) + branchCount_;
}

std::size_t Netlist::nodeIndex(NodeId n) const {
  if (n == kGround) throw std::invalid_argument("nodeIndex: ground has no unknown");
  return static_cast<std::size_t>(n) - 1;
}

std::string Netlist::toString() const {
  std::ostringstream os;
  os << "* netlist (" << nodeCount() << " nodes, " << devices_.size() << " devices)\n";
  for (const auto& d : devices_) os << d->card() << '\n';
  return os.str();
}

}  // namespace crl::spice
