#pragma once
// Procedural benchmark-netlist generators for the sparse-solver fixtures.
//
// The hand-coded paper circuits (op-amp, OTA, PA) top out around 25 MNA
// unknowns — far below where a sparse factorization pays off — so the sparse
// path is exercised on generated RC ladders and 2-D RC meshes instead. The
// generators emit SPICE deck *text* (parser-ingested, like any user
// netlist), and the committed fixtures under tests/spice/fixtures/ are their
// verbatim output: `gen_netlists` regenerates them bit-identically.
//
// Both topologies are linear (R, C, V only, unless diodes are requested), so
// dense and sparse backends agree to near machine precision on DC, AC and
// transient — the property the parity suite pins down.

#include <string>

namespace crl::spice {

/// N-stage RC ladder: V1 drives `in`; stage i adds a series resistor and a
/// shunt capacitor; a tail resistor to ground makes the DC solution a
/// nontrivial divider. Element values vary deterministically with the stage
/// index so no two pivots are equal. Unknowns: stages + 2 (input node plus
/// the source's branch current).
///
/// withDiodes adds a shunt diode every fifth stage, turning the ladder into
/// a Newton-iterating nonlinear benchmark with the same sparsity pattern.
std::string rcLadderDeck(int stages, bool withDiodes = false);

/// rows x cols 2-D RC grid: every node has a capacitor to ground and
/// resistors to its right/down neighbours; V1 feeds corner n0_0 through a
/// 50-ohm source resistor and the far corner is tied to ground through a
/// load resistor. The grid's bandwidth makes fill-in real work for the
/// ordering, unlike the tridiagonal-ish ladder. Unknowns: rows*cols + 2.
std::string rcMeshDeck(int rows, int cols);

}  // namespace crl::spice
