#include "spice/dc.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace crl::spice {

DcAnalysis::DcAnalysis(Netlist& net, DcOptions opt) : net_(net), opt_(opt) {
  if (!net_.finalized()) net_.finalize();
  solver_.select(linalg::chooseSolverKind(net_.unknownCount(), opt_.solver));
}

std::optional<linalg::Vec> DcAnalysis::newton(linalg::Vec x, double gmin,
                                              double srcScale, int* iterationsOut) {
  const std::size_t n = net_.unknownCount();
  const std::size_t nNodes = net_.nodeCount() - 1;

  // Chaos gate (one relaxed load when disarmed). "diverge" abandons this
  // Newton attempt as a non-convergence, "singular" mimics a collapsed
  // pivot — both feed the same homotopy-rescue ladder a hostile circuit
  // would. "sleep" injects per-attempt latency (watchdog/stall testing);
  // "throw" escalates to a hard evaluation error.
  if (auto h = util::failpoint::check("spice.dc.newton")) {
    if (h->action == "diverge" || h->action == "singular") return std::nullopt;
    if (h->action == "throw")
      throw std::runtime_error("spice.dc.newton: injected evaluation failure");
    if (h->action == "sleep")
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          h->hasValue ? h->value : 10.0));
  }

  for (int iter = 0; iter < opt_.maxIterations; ++iter) {
    ++*iterationsOut;
    solver_.beginAssembly(n, rhs_);
    RealStamper stamper(solver_, rhs_);
    SimContext ctx{x};
    ctx.srcScale = srcScale;
    ctx.gmin = gmin;
    for (const auto& dev : net_.devices()) dev->stampLarge(stamper, ctx);

    try {
      solver_.factorAssembled();
    } catch (const std::runtime_error&) {
      return std::nullopt;  // singular Jacobian: let the homotopy ladder retry
    }
    solver_.solveInto(rhs_, xNew_);

    // Damping: limit node-voltage steps; branch currents move freely.
    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      double delta = xNew_[i] - x[i];
      if (i < nNodes) {
        if (delta > opt_.stepLimit) delta = opt_.stepLimit;
        if (delta < -opt_.stepLimit) delta = -opt_.stepLimit;
        const double tol = opt_.vAbsTol + opt_.vRelTol * std::fabs(x[i]);
        if (std::fabs(delta) > tol) converged = false;
      }
      x[i] += delta;
    }
    if (converged && iter > 0) return x;
  }
  return std::nullopt;
}

DcResult DcAnalysis::solve() {
  const std::size_t n = net_.unknownCount();
  const std::size_t nNodes = net_.nodeCount() - 1;
  linalg::Vec x0(n, 0.0);
  for (std::size_t i = 0; i < nNodes; ++i) x0[i] = opt_.initialVoltage;
  return solve(x0);
}

DcResult DcAnalysis::solve(const linalg::Vec& x0) {
  obs::TraceSpan span("spice.dc.solve", "spice");
  DcResult result = solveStaged(x0);
  static auto& solves = obs::counter("spice.dc.solves");
  static auto& iters = obs::counter("spice.dc.newton_iters");
  static auto& nonconverged = obs::counter("spice.dc.nonconverged");
  static auto& homotopy = obs::counter("spice.dc.homotopy_rescues");
  solves.add();
  iters.add(static_cast<std::uint64_t>(result.iterations));
  if (!result.converged)
    nonconverged.add();
  else if (std::strcmp(result.strategy, "newton") != 0)
    homotopy.add();
  return result;
}

DcResult DcAnalysis::solveStaged(const linalg::Vec& x0) {
  DcResult result;
  result.x = x0;

  // Stage 1: direct Newton.
  if (auto x = newton(x0, opt_.gmin, 1.0, &result.iterations)) {
    result.x = std::move(*x);
    result.converged = true;
    result.strategy = "newton";
    return result;
  }

  // Stage 2: gmin stepping — start with a heavily damped circuit and relax.
  if (opt_.gminStepping) {
    linalg::Vec x = x0;
    bool ok = true;
    for (double gmin = 1e-2; gmin >= opt_.gmin * 0.99; gmin *= 1e-2) {
      auto step = newton(x, gmin, 1.0, &result.iterations);
      if (!step) {
        ok = false;
        break;
      }
      x = std::move(*step);
    }
    if (ok) {
      if (auto fin = newton(x, opt_.gmin, 1.0, &result.iterations)) {
        result.x = std::move(*fin);
        result.converged = true;
        result.strategy = "gmin-stepping";
        return result;
      }
    }
  }

  // Stage 3: source stepping — ramp all independent sources from 5% to 100%.
  if (opt_.sourceStepping) {
    linalg::Vec x = x0;
    bool ok = true;
    for (double scale : {0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0}) {
      auto step = newton(x, opt_.gmin, scale, &result.iterations);
      if (!step) {
        ok = false;
        break;
      }
      x = std::move(*step);
    }
    if (ok) {
      result.x = std::move(x);
      result.converged = true;
      result.strategy = "source-stepping";
      return result;
    }
  }

  util::logDebug() << "DcAnalysis: failed to converge after " << result.iterations
                   << " iterations";
  return result;
}

}  // namespace crl::spice
