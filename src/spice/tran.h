#pragma once
// Transient analysis with fixed-step trapezoidal integration.
//
// The RF PA "fine" measurement runs this for several carrier periods and
// extracts the periodic steady state via a DFT over the final period —
// computing the same quantities a harmonic-balance engine would report.

#include <functional>

#include "linalg/solver_backend.h"
#include "spice/dc.h"
#include "spice/netlist.h"

namespace crl::spice {

struct TranOptions {
  int maxNewtonIterations = 60;
  double vAbsTol = 1e-6;
  double vRelTol = 1e-6;
  double stepLimit = 2.0;  ///< per-step node-voltage clamp (RF swings are large)
  double gmin = 1e-12;
  DcOptions dcOptions;     ///< for the initial operating point
  /// Dense/sparse backend policy; Auto sizes against the sparse threshold.
  linalg::SolverChoice solver = linalg::SolverChoice::Auto;
};

struct TranResult {
  std::vector<double> time;
  std::vector<linalg::Vec> solution;  ///< unknown vector per accepted step
  bool converged = false;
  int newtonIterations = 0;
};

class TranAnalysis {
 public:
  explicit TranAnalysis(Netlist& net, TranOptions opt = {});

  /// Run from t=0 (DC operating point initial condition) to tStop with fixed
  /// step dt. The callback, if given, observes every accepted step; solutions
  /// are recorded in the result only when `record` is true (they can be
  /// large).
  TranResult run(double dt, double tStop,
                 const std::function<void(double, const linalg::Vec&)>& callback = {},
                 bool record = true);

 private:
  bool newtonStep(linalg::Vec& x, double time, double dt,
                  const std::vector<double>& state, int* iterations);

  Netlist& net_;
  TranOptions opt_;
  // Solver seam plus assembly workspaces, reused across Newton iterations
  // and time steps (allocation-free after the first step; the sparse
  // backend's symbolic analysis is computed once and reused for the whole
  // transient run).
  linalg::MnaSolver<double> solver_;
  linalg::Vec rhs_;
  linalg::Vec xNew_;
};

/// First `nHarmonics` complex Fourier coefficients of a uniformly sampled
/// waveform covering exactly one period (coefficient k corresponds to k*f0;
/// index 0 is the DC average). Amplitude convention: |c_k| is the peak
/// amplitude of harmonic k for k >= 1.
std::vector<std::complex<double>> fourierCoefficients(const std::vector<double>& samples,
                                                      int nHarmonics);

}  // namespace crl::spice
