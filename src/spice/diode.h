#pragma once
// Junction diode: exponential Shockley law with an overflow-safe linearized
// tail above a critical forward voltage, a constant junction capacitance,
// and trapezoidal companion integration in transient analysis.
//
//   id(v) = Is * (exp(v / (n Vt)) - 1)                for v <= vExp
//   id(v) = id(vExp) + gd(vExp) * (v - vExp)          for v >  vExp
//
// The linear tail keeps Newton iterates finite when the solver overshoots;
// converged operating points in sane circuits sit below vExp.

#include "spice/device.h"

namespace crl::spice {

struct DiodeModel {
  double is = 1e-14;    ///< saturation current [A]
  double n = 1.0;       ///< emission coefficient
  double vt = 0.02585;  ///< thermal voltage [V] (300 K)
  double cj0 = 0.0;     ///< junction capacitance (bias-independent) [F]
  double vExp = 0.8;    ///< start of the linearized overflow guard [V]
};

/// Current and conductance of the (guarded) Shockley law.
struct DiodeEval {
  double id = 0.0;
  double gd = 0.0;  ///< d id / d v
};

DiodeEval evalDiode(const DiodeModel& m, double v);

class Diode : public Device {
 public:
  /// Anode `a`, cathode `c`.
  Diode(std::string name, NodeId a, NodeId c, DiodeModel model = {});

  std::string_view kind() const override { return "diode"; }
  std::vector<NodeId> terminals() const override { return {a_, c_}; }
  int tranStateSize() const override { return 2; }  // junction-cap (v, i)
  void stampLarge(RealStamper& s, const SimContext& ctx) const override;
  void stampAc(ComplexStamper& s, const AcContext& ctx) const override;
  void updateTranState(const SimContext& ctx, double* state) const override;
  void initTranState(const linalg::Vec& xop, double* state) const override;
  std::string card() const override;

  const DiodeModel& model() const { return model_; }
  NodeId anode() const { return a_; }
  NodeId cathode() const { return c_; }
  /// Diode current at a solved operating point.
  double currentAt(const linalg::Vec& x) const { return evalDiode(model_, vd(x)).id; }

 private:
  double vd(const linalg::Vec& x) const { return v(x, a_) - v(x, c_); }

  NodeId a_, c_;
  DiodeModel model_;
};

}  // namespace crl::spice
