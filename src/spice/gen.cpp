#include "spice/gen.h"

#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace crl::spice {

namespace {

// Line-at-a-time deck building through snprintf: fixed "%.6g" formatting
// keeps regenerated decks byte-identical across platforms (the committed
// fixtures are verbatim generator output), and the values used are exactly
// representable products of small integers anyway.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& deck, const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  deck += buf;
}

// Deterministic per-index element values. Spreading R over 1.0k..2.75k and
// C over 0.2n..1n keeps every pole distinct and every pivot magnitude
// unique, so a pivot-order divergence between the dense and sparse backends
// cannot masquerade as agreement.
double resistorOhms(int i) { return 1000.0 * (1.0 + (i % 7) * 0.25); }
double capFarads(int i) { return 1e-9 / (1.0 + (i % 5)); }

}  // namespace

std::string rcLadderDeck(int stages, bool withDiodes) {
  if (stages < 1) throw std::invalid_argument("rcLadderDeck: stages < 1");
  std::string deck;
  appendf(deck, "* rc ladder, %d stages%s\n", stages,
          withDiodes ? ", diode shunts" : "");
  appendf(deck, "V1 in 0 DC 1 AC 1 SIN(0.5 1e6)\n");
  if (withDiodes) appendf(deck, ".model dgen D (is=1e-14 n=2)\n");
  std::string prev = "in";
  for (int i = 1; i <= stages; ++i) {
    char cur[24];
    std::snprintf(cur, sizeof cur, "n%d", i);
    appendf(deck, "R%d %s %s %.6g\n", i, prev.c_str(), cur, resistorOhms(i));
    appendf(deck, "C%d %s 0 %.6g\n", i, cur, capFarads(i));
    if (withDiodes && i % 5 == 0) appendf(deck, "D%d %s 0 dgen\n", i, cur);
    prev = cur;
  }
  appendf(deck, "Rgnd %s 0 10k\n", prev.c_str());
  appendf(deck, ".end\n");
  return deck;
}

std::string rcMeshDeck(int rows, int cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("rcMeshDeck: empty grid");
  auto node = [](int r, int c) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "n%d_%d", r, c);
    return std::string(buf);
  };
  std::string deck;
  appendf(deck, "* rc mesh, %dx%d grid\n", rows, cols);
  appendf(deck, "V1 in 0 DC 1 AC 1 SIN(0.5 1e6)\n");
  appendf(deck, "Rin in %s 50\n", node(0, 0).c_str());
  int rIdx = 0, cIdx = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      appendf(deck, "C%d %s 0 %.6g\n", ++cIdx, node(r, c).c_str(),
              capFarads(r * cols + c));
      if (c + 1 < cols)
        appendf(deck, "R%d %s %s %.6g\n", ++rIdx, node(r, c).c_str(),
                node(r, c + 1).c_str(), resistorOhms(r * cols + c));
      if (r + 1 < rows)
        appendf(deck, "R%d %s %s %.6g\n", ++rIdx, node(r, c).c_str(),
                node(r + 1, c).c_str(), resistorOhms(r * cols + c + 3));
    }
  }
  appendf(deck, "Rgnd %s 0 10k\n", node(rows - 1, cols - 1).c_str());
  appendf(deck, ".end\n");
  return deck;
}

}  // namespace crl::spice
