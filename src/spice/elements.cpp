#include "spice/elements.h"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace crl::spice {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("Resistor: non-positive resistance");
}

void Resistor::setResistance(double ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("Resistor: non-positive resistance");
  ohms_ = ohms;
}

void Resistor::stampLarge(RealStamper& s, const SimContext&) const {
  const double g = 1.0 / ohms_;
  s.addY(a_, a_, g);
  s.addY(b_, b_, g);
  s.addY(a_, b_, -g);
  s.addY(b_, a_, -g);
}

void Resistor::stampAc(ComplexStamper& s, const AcContext&) const {
  const std::complex<double> g(1.0 / ohms_, 0.0);
  s.addY(a_, a_, g);
  s.addY(b_, b_, g);
  s.addY(a_, b_, -g);
  s.addY(b_, a_, -g);
}

std::string Resistor::card() const {
  std::ostringstream os;
  os << name() << ' ' << a_ << ' ' << b_ << ' ' << ohms_;
  return os.str();
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads)
    : Device(std::move(name)), a_(a), b_(b), farads_(farads) {
  if (farads <= 0.0) throw std::invalid_argument("Capacitor: non-positive capacitance");
}

void Capacitor::setCapacitance(double farads) {
  if (farads <= 0.0) throw std::invalid_argument("Capacitor: non-positive capacitance");
  farads_ = farads;
}

void Capacitor::stampLarge(RealStamper& s, const SimContext& ctx) const {
  if (!ctx.transient) return;  // open circuit at DC
  // Trapezoidal companion: i = Geq*v - (Geq*v_prev + i_prev).
  const double geq = 2.0 * farads_ / ctx.dt;
  const double vPrev = ctx.state[0];
  const double iPrev = ctx.state[1];
  const double ieq = geq * vPrev + iPrev;
  s.addY(a_, a_, geq);
  s.addY(b_, b_, geq);
  s.addY(a_, b_, -geq);
  s.addY(b_, a_, -geq);
  s.addNodeRhs(a_, ieq);
  s.addNodeRhs(b_, -ieq);
}

void Capacitor::stampAc(ComplexStamper& s, const AcContext& ctx) const {
  const std::complex<double> y(0.0, ctx.omega * farads_);
  s.addY(a_, a_, y);
  s.addY(b_, b_, y);
  s.addY(a_, b_, -y);
  s.addY(b_, a_, -y);
}

void Capacitor::updateTranState(const SimContext& ctx, double* state) const {
  const double vNew = v(ctx.x, a_) - v(ctx.x, b_);
  const double geq = 2.0 * farads_ / ctx.dt;
  const double iNew = geq * (vNew - state[0]) - state[1];
  state[0] = vNew;
  state[1] = iNew;
}

void Capacitor::initTranState(const linalg::Vec& xop, double* state) const {
  state[0] = v(xop, a_) - v(xop, b_);
  state[1] = 0.0;  // steady state: no capacitor current
}

std::string Capacitor::card() const {
  std::ostringstream os;
  os << name() << ' ' << a_ << ' ' << b_ << ' ' << farads_;
  return os.str();
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, NodeId a, NodeId b, double henries)
    : Device(std::move(name)), a_(a), b_(b), henries_(henries) {
  if (henries <= 0.0) throw std::invalid_argument("Inductor: non-positive inductance");
}

void Inductor::stampLarge(RealStamper& s, const SimContext& ctx) const {
  const std::size_t br = branchIndex();
  // KCL: branch current leaves node a, enters node b.
  if (a_ != kGround) {
    s.addEntry(RealStamper::nodeIdx(a_), br, 1.0);
    s.addEntry(br, RealStamper::nodeIdx(a_), 1.0);
  }
  if (b_ != kGround) {
    s.addEntry(RealStamper::nodeIdx(b_), br, -1.0);
    s.addEntry(br, RealStamper::nodeIdx(b_), -1.0);
  }
  if (!ctx.transient) {
    // DC: short circuit, v_a - v_b = 0 (branch row already has the voltages).
    return;
  }
  // Trapezoidal companion: v = (2L/dt)(i - i_prev) - v_prev
  //  => v_a - v_b - (2L/dt) i = -(2L/dt) i_prev - v_prev.
  const double req = 2.0 * henries_ / ctx.dt;
  const double iPrev = ctx.state[0];
  const double vPrev = ctx.state[1];
  s.addEntry(br, br, -req);
  s.addRhsEntry(br, -(req * iPrev + vPrev));
}

void Inductor::stampAc(ComplexStamper& s, const AcContext& ctx) const {
  const std::size_t br = branchIndex();
  if (a_ != kGround) {
    s.addEntry(ComplexStamper::nodeIdx(a_), br, {1.0, 0.0});
    s.addEntry(br, ComplexStamper::nodeIdx(a_), {1.0, 0.0});
  }
  if (b_ != kGround) {
    s.addEntry(ComplexStamper::nodeIdx(b_), br, {-1.0, 0.0});
    s.addEntry(br, ComplexStamper::nodeIdx(b_), {-1.0, 0.0});
  }
  // v_a - v_b - jwL * i = 0.
  s.addEntry(br, br, {0.0, -ctx.omega * henries_});
}

void Inductor::updateTranState(const SimContext& ctx, double* state) const {
  const double iNew = ctx.x[branchIndex()];
  const double vNew = v(ctx.x, a_) - v(ctx.x, b_);
  state[0] = iNew;
  state[1] = vNew;
}

void Inductor::initTranState(const linalg::Vec& xop, double* state) const {
  state[0] = xop[branchIndex()];
  state[1] = 0.0;  // steady state: no voltage across inductor
}

std::string Inductor::card() const {
  std::ostringstream os;
  os << name() << ' ' << a_ << ' ' << b_ << ' ' << henries_;
  return os.str();
}

// ----------------------------------------------------------------- VSource

VSource::VSource(std::string name, NodeId pos, NodeId neg, double dc)
    : Device(std::move(name)), pos_(pos), neg_(neg), dc_(dc) {}

void VSource::setSine(double amplitude, double freqHz, double phaseRad) {
  sineAmp_ = amplitude;
  sineFreq_ = freqHz;
  sinePhase_ = phaseRad;
}

double VSource::valueAt(double time) const {
  double val = dc_;
  if (sineAmp_ != 0.0) val += sineAmp_ * std::sin(kTwoPi * sineFreq_ * time + sinePhase_);
  return val;
}

void VSource::stampLarge(RealStamper& s, const SimContext& ctx) const {
  const std::size_t br = branchIndex();
  if (pos_ != kGround) {
    s.addEntry(RealStamper::nodeIdx(pos_), br, 1.0);
    s.addEntry(br, RealStamper::nodeIdx(pos_), 1.0);
  }
  if (neg_ != kGround) {
    s.addEntry(RealStamper::nodeIdx(neg_), br, -1.0);
    s.addEntry(br, RealStamper::nodeIdx(neg_), -1.0);
  }
  const double value = ctx.transient ? valueAt(ctx.time) : dc_;
  s.addRhsEntry(br, value * ctx.srcScale);
}

void VSource::stampAc(ComplexStamper& s, const AcContext&) const {
  const std::size_t br = branchIndex();
  if (pos_ != kGround) {
    s.addEntry(ComplexStamper::nodeIdx(pos_), br, {1.0, 0.0});
    s.addEntry(br, ComplexStamper::nodeIdx(pos_), {1.0, 0.0});
  }
  if (neg_ != kGround) {
    s.addEntry(ComplexStamper::nodeIdx(neg_), br, {-1.0, 0.0});
    s.addEntry(br, ComplexStamper::nodeIdx(neg_), {-1.0, 0.0});
  }
  s.addRhsEntry(br, {acMag_, 0.0});
}

std::string VSource::card() const {
  std::ostringstream os;
  os << name() << ' ' << pos_ << ' ' << neg_ << " DC " << dc_;
  if (acMag_ != 0.0) os << " AC " << acMag_;
  if (sineAmp_ != 0.0) os << " SIN(" << sineAmp_ << ' ' << sineFreq_ << ')';
  return os.str();
}

// ----------------------------------------------------------------- ISource

ISource::ISource(std::string name, NodeId pos, NodeId neg, double dc)
    : Device(std::move(name)), pos_(pos), neg_(neg), dc_(dc) {}

void ISource::stampLarge(RealStamper& s, const SimContext& ctx) const {
  // Pushes current out of pos into the circuit: KCL rhs at pos gets -I... by
  // convention here the source drives current from neg to pos internally, so
  // current I is injected into node pos and drawn from node neg.
  s.addNodeRhs(pos_, dc_ * ctx.srcScale);
  s.addNodeRhs(neg_, -dc_ * ctx.srcScale);
}

void ISource::stampAc(ComplexStamper&, const AcContext&) const {
  // DC current source is an AC open circuit: no stamp.
}

std::string ISource::card() const {
  std::ostringstream os;
  os << name() << ' ' << pos_ << ' ' << neg_ << " DC " << dc_;
  return os.str();
}

}  // namespace crl::spice
