#include "spice/ac.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/solve.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace crl::spice {

AcAnalysis::AcAnalysis(Netlist& net, linalg::Vec xop, linalg::SolverChoice solver)
    : net_(net), xop_(std::move(xop)) {
  if (!net_.finalized()) net_.finalize();
  if (xop_.size() != net_.unknownCount())
    throw std::invalid_argument("AcAnalysis: operating point size mismatch");
  kind_ = linalg::chooseSolverKind(net_.unknownCount(), solver);
}

void AcAnalysis::solveInto(double freqHz, AcWorkspace& ws) const {
  static auto& points = obs::counter("spice.ac.points_solved");
  points.add();
  ws.beginAssembly(net_.unknownCount(), kind_);
  ComplexStamper stamper(ws.solver, ws.rhs);
  AcContext ctx{xop_, 2.0 * std::numbers::pi * freqHz};
  for (const auto& dev : net_.devices()) dev->stampAc(stamper, ctx);
  ws.solver.factorAssembled();
  ws.solver.solveInto(ws.rhs, ws.x);
}

linalg::CVec AcAnalysis::solveAt(double freqHz) const {
  solveInto(freqHz, ws_);
  return ws_.x;
}

std::complex<double> AcAnalysis::nodeVoltage(double freqHz, NodeId node) const {
  if (node == kGround) return {0.0, 0.0};
  solveInto(freqHz, ws_);
  return ws_.x[static_cast<std::size_t>(node) - 1];
}

std::vector<double> AcAnalysis::logspace(double f0, double f1, int pointsPerDecade) {
  if (f0 <= 0.0 || f1 <= f0 || pointsPerDecade < 1)
    throw std::invalid_argument("logspace: invalid range");
  std::vector<double> freqs;
  const double decades = std::log10(f1 / f0);
  const int total = static_cast<int>(std::ceil(decades * pointsPerDecade)) + 1;
  for (int i = 0; i < total; ++i) {
    double f = f0 * std::pow(10.0, decades * i / (total - 1));
    freqs.push_back(f);
  }
  return freqs;
}

std::vector<AcPoint> AcAnalysis::sweep(NodeId node, double f0, double f1,
                                       int pointsPerDecade,
                                       SimSession* session) const {
  obs::TraceSpan span("spice.ac.sweep", "spice");
  static auto& sweeps = obs::counter("spice.ac.sweeps");
  static auto& sweepSeconds = obs::histogram("spice.ac.sweep_seconds");
  sweeps.add();
  obs::ScopedTimer timer(sweepSeconds);
  const std::vector<double> freqs = logspace(f0, f1, pointsPerDecade);
  std::vector<AcPoint> out(freqs.size());
  auto solveRange = [&](std::size_t first, std::size_t last, AcWorkspace& ws) {
    for (std::size_t i = first; i < last; ++i) {
      solveInto(freqs[i], ws);
      out[i].freqHz = freqs[i];
      out[i].value = node == kGround
                         ? std::complex<double>{}
                         : ws.x[static_cast<std::size_t>(node) - 1];
    }
  };
  if (!session || session->workerCount() < 2) {
    solveRange(0, freqs.size(), ws_);
    return out;
  }
  session->parallelChunks(freqs.size(),
                          [&](std::size_t first, std::size_t last, std::size_t slot) {
                            solveRange(first, last, session->acWorkspace(slot));
                          });
  return out;
}

FrequencyResponseMetrics analyzeResponse(const std::vector<AcPoint>& sweep) {
  FrequencyResponseMetrics m;
  if (sweep.size() < 2) return m;

  m.dcGain = sweep.front().magnitude();

  // Unwrap phase across the sweep so the phase margin is continuous.
  std::vector<double> phase(sweep.size());
  phase[0] = std::arg(sweep[0].value);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    double p = std::arg(sweep[i].value);
    double prev = phase[i - 1];
    while (p - prev > std::numbers::pi) p -= 2.0 * std::numbers::pi;
    while (p - prev < -std::numbers::pi) p += 2.0 * std::numbers::pi;
    phase[i] = p;
  }
  // Reference the phase to 0 at DC (an inverting amp starts at ±180).
  const double phase0 = phase[0];
  for (auto& p : phase) p -= phase0;

  const double target3Db = m.dcGain / std::sqrt(2.0);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    const double m0 = sweep[i - 1].magnitude();
    const double m1 = sweep[i].magnitude();
    // 3 dB corner (first downward crossing).
    if (m.bandwidth3Db == 0.0 && m0 >= target3Db && m1 < target3Db) {
      const double t = (m0 - target3Db) / (m0 - m1);
      m.bandwidth3Db =
          sweep[i - 1].freqHz * std::pow(sweep[i].freqHz / sweep[i - 1].freqHz, t);
    }
    // Unity-gain crossing (log-magnitude interpolation).
    if (m.unityGainFreq == 0.0 && m0 >= 1.0 && m1 < 1.0) {
      const double l0 = std::log10(m0);
      const double l1 = std::log10(m1);
      const double t = l0 / (l0 - l1);
      m.unityGainFreq =
          sweep[i - 1].freqHz * std::pow(sweep[i].freqHz / sweep[i - 1].freqHz, t);
      const double ph = phase[i - 1] + t * (phase[i] - phase[i - 1]);
      m.phaseMarginDeg = 180.0 + ph * 180.0 / std::numbers::pi;
      // Normalize into (-180, 180]: a stable amp reports its true margin.
      while (m.phaseMarginDeg > 180.0) m.phaseMarginDeg -= 360.0;
      while (m.phaseMarginDeg <= -180.0) m.phaseMarginDeg += 360.0;
      m.valid = true;
    }
  }
  return m;
}

}  // namespace crl::spice
