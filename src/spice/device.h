#pragma once
// Device base class and MNA stamping interfaces.
//
// Each device knows how to stamp itself into:
//   * the large-signal Jacobian/RHS used by DC Newton and transient Newton
//     (companion-model linearization around the current iterate), and
//   * the complex small-signal admittance matrix used by AC analysis
//     (linearized at a previously computed DC operating point).

#include <complex>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/solver_backend.h"
#include "linalg/sparse.h"

namespace crl::spice {

using NodeId = int;
constexpr NodeId kGround = 0;

/// Assembly helper that hides the ground-row elimination: contributions that
/// touch ground are dropped, everything else lands at (node-1) or at the
/// branch-current rows that follow the node block.
///
/// A stamper writes into either a dense matrix or a sparse triplet buffer
/// (the MnaSolver ctor picks whichever backend is active), so devices stay
/// solver-agnostic: the dense arm is the original `+=` — bit-exact with the
/// pre-seam assembly — and the sparse arm appends stamp-order triplets the
/// sparse LU accumulates in that same order.
template <typename T>
class Stamper {
 public:
  Stamper(linalg::Matrix<T>& a, std::vector<T>& rhs) : dense_(&a), rhs_(rhs) {}
  Stamper(linalg::SparseAssembly<T>& a, std::vector<T>& rhs)
      : sparse_(&a), rhs_(rhs) {}
  /// Target the solver's active backend (after solver.beginAssembly()).
  Stamper(linalg::MnaSolver<T>& solver, std::vector<T>& rhs)
      : dense_(solver.denseTarget()), sparse_(solver.sparseTarget()), rhs_(rhs) {}

  /// Conductance-like stamp between two node voltages.
  void addY(NodeId i, NodeId j, T val) {
    if (i == kGround || j == kGround) return;
    addEntry(static_cast<std::size_t>(i) - 1, static_cast<std::size_t>(j) - 1, val);
  }
  /// RHS contribution at a node row.
  void addNodeRhs(NodeId i, T val) {
    if (i == kGround) return;
    rhs_[static_cast<std::size_t>(i) - 1] += val;
  }
  /// Raw entry by unknown index (for branch rows/columns).
  void addEntry(std::size_t row, std::size_t col, T val) {
    if (dense_) {
      (*dense_)(row, col) += val;
    } else {
      sparse_->add(row, col, val);
    }
  }
  void addRhsEntry(std::size_t row, T val) { rhs_[row] += val; }

  /// Unknown index of a non-ground node.
  static std::size_t nodeIdx(NodeId n) { return static_cast<std::size_t>(n) - 1; }

 private:
  linalg::Matrix<T>* dense_ = nullptr;
  linalg::SparseAssembly<T>* sparse_ = nullptr;
  std::vector<T>& rhs_;
};

using RealStamper = Stamper<double>;
using ComplexStamper = Stamper<std::complex<double>>;

/// Context for large-signal (DC / transient) assembly.
struct SimContext {
  const linalg::Vec& x;            ///< current Newton iterate
  double time = 0.0;               ///< transient time (sources)
  double dt = 0.0;                 ///< step size; <= 0 means DC
  bool transient = false;          ///< transient (companion C/L models) vs DC
  double srcScale = 1.0;           ///< source-stepping homotopy scale
  double gmin = 0.0;               ///< convergence aid conductance to ground
  const double* state = nullptr;   ///< device's transient history slice
};

/// Context for small-signal AC assembly.
struct AcContext {
  const linalg::Vec& xop;  ///< DC operating point (unknown vector)
  double omega = 0.0;      ///< angular frequency
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }
  virtual std::string_view kind() const = 0;
  /// Circuit nets this device touches (used for graph extraction).
  virtual std::vector<NodeId> terminals() const = 0;

  /// Number of extra branch-current unknowns this device introduces.
  virtual int branchCount() const { return 0; }
  /// Number of transient-history doubles (previous voltages/currents).
  virtual int tranStateSize() const { return 0; }

  /// Unknown index of this device's first branch current (set by finalize()).
  std::size_t branchIndex() const { return branchIndex_; }
  void setBranchIndex(std::size_t idx) { branchIndex_ = idx; }
  std::size_t stateOffset() const { return stateOffset_; }
  void setStateOffset(std::size_t off) { stateOffset_ = off; }

  /// Stamp the linearized large-signal model around ctx.x.
  virtual void stampLarge(RealStamper& s, const SimContext& ctx) const = 0;
  /// Stamp the small-signal model at the operating point.
  virtual void stampAc(ComplexStamper& s, const AcContext& ctx) const = 0;
  /// After a converged transient step, refresh integrator history in `state`.
  virtual void updateTranState(const SimContext& ctx, double* state) const {
    (void)ctx;
    (void)state;
  }
  /// Initialize transient history from a DC operating point.
  virtual void initTranState(const linalg::Vec& xop, double* state) const {
    (void)xop;
    (void)state;
  }

  /// One-line SPICE-like card for netlist dumps.
  virtual std::string card() const { return name_; }

 protected:
  static double v(const linalg::Vec& x, NodeId n) {
    return n == kGround ? 0.0 : x[static_cast<std::size_t>(n) - 1];
  }

 private:
  std::string name_;
  std::size_t branchIndex_ = 0;
  std::size_t stateOffset_ = 0;
};

}  // namespace crl::spice
