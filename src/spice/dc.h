#pragma once
// DC operating-point analysis: damped Newton-Raphson on the MNA system with
// gmin stepping and source stepping as homotopy fallbacks.

#include <optional>

#include "linalg/solver_backend.h"
#include "spice/netlist.h"

namespace crl::spice {

struct DcOptions {
  int maxIterations = 150;
  double vAbsTol = 1e-9;      ///< absolute voltage tolerance [V]
  double vRelTol = 1e-6;      ///< relative voltage tolerance
  double stepLimit = 0.6;     ///< max node-voltage change per Newton step [V]
  double gmin = 1e-12;        ///< baseline convergence-aid conductance [S]
  bool gminStepping = true;
  bool sourceStepping = true;
  double initialVoltage = 0.0;  ///< flat initial guess for node voltages [V]
  /// Dense/sparse backend policy; Auto sizes against the sparse threshold.
  linalg::SolverChoice solver = linalg::SolverChoice::Auto;
};

struct DcResult {
  linalg::Vec x;        ///< converged unknown vector (nodes then branches)
  bool converged = false;
  int iterations = 0;   ///< total Newton iterations across homotopy stages
  const char* strategy = "newton";  ///< which homotopy stage succeeded
};

class DcAnalysis {
 public:
  explicit DcAnalysis(Netlist& net, DcOptions opt = {});

  /// Solve from the flat initial guess.
  DcResult solve();
  /// Solve warm-started from a previous solution.
  DcResult solve(const linalg::Vec& x0);

  /// Voltage of a node in a result vector.
  double voltage(const DcResult& r, NodeId n) const {
    return Netlist::voltageOf(r.x, n);
  }

 private:
  /// Plain Newton loop at fixed (gmin, srcScale); nullopt if not converged.
  std::optional<linalg::Vec> newton(linalg::Vec x, double gmin, double srcScale,
                                    int* iterationsOut);
  /// The homotopy ladder (newton -> gmin stepping -> source stepping);
  /// solve() wraps it with telemetry.
  DcResult solveStaged(const linalg::Vec& x0);

  Netlist& net_;
  DcOptions opt_;
  // Solver seam plus assembly workspaces, reused across Newton iterations
  // and homotopy stages (allocation-free after the first iteration; the
  // sparse backend additionally reuses its symbolic analysis, computed once
  // per topology).
  linalg::MnaSolver<double> solver_;
  linalg::Vec rhs_;
  linalg::Vec xNew_;
};

}  // namespace crl::spice
