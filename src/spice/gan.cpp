#include "spice/gan.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace crl::spice {

GanEval evalGan(const GanModel& m, double ipk, double vgs, double vds) {
  const double psi = m.p1 * (vgs - m.vpk);
  const double tpsi = std::tanh(psi);
  const double sech2Psi = 1.0 - tpsi * tpsi;
  const double tvds = std::tanh(m.alpha * vds);
  const double sech2Vds = 1.0 - tvds * tvds;
  const double clm = 1.0 + m.lambda * vds;

  GanEval e;
  e.id = ipk * (1.0 + tpsi) * tvds * clm;
  e.gm = ipk * m.p1 * sech2Psi * tvds * clm;
  e.gds = ipk * (1.0 + tpsi) * (m.alpha * sech2Vds * clm + tvds * m.lambda);
  return e;
}

GanHemt::GanHemt(std::string name, NodeId d, NodeId g, NodeId s, GanModel model,
                 double widthPerFinger, int fingers)
    : Device(std::move(name)), d_(d), g_(g), s_(s), model_(model) {
  setGeometry(widthPerFinger, fingers);
}

void GanHemt::setGeometry(double widthPerFinger, int fingers) {
  if (widthPerFinger <= 0.0) throw std::invalid_argument("GanHemt: non-positive width");
  if (fingers < 1) throw std::invalid_argument("GanHemt: fingers must be >= 1");
  w_ = widthPerFinger;
  nf_ = fingers;
  const double weff = effectiveWidth();
  cgs_ = model_.cgsPerWidth * weff;
  cgd_ = model_.cgdPerWidth * weff;
}

GanEval GanHemt::orientedEval(const linalg::Vec& x, NodeId& dEff, NodeId& sEff) const {
  const double vd = v(x, d_);
  const double vg = v(x, g_);
  const double vs = v(x, s_);
  const double ipk = model_.ipkPerWidth * effectiveWidth();
  if (vd >= vs) {
    dEff = d_;
    sEff = s_;
    return evalGan(model_, ipk, vg - vs, vd - vs);
  }
  dEff = s_;
  sEff = d_;
  return evalGan(model_, ipk, vg - vd, vs - vd);
}

GanEval GanHemt::evalAt(const linalg::Vec& x) const {
  NodeId dEff, sEff;
  return orientedEval(x, dEff, sEff);
}

void GanHemt::stampLarge(RealStamper& st, const SimContext& ctx) const {
  NodeId dEff, sEff;
  const GanEval e = orientedEval(ctx.x, dEff, sEff);

  // NMOS-style partials: gate control is v(g) - v(sEff).
  const double gd = e.gds;
  const double gg = e.gm;
  const double gs = -e.gm - e.gds;
  const double ieq =
      e.id - (gd * v(ctx.x, dEff) + gg * v(ctx.x, g_) + gs * v(ctx.x, sEff));

  st.addY(dEff, dEff, gd);
  st.addY(dEff, g_, gg);
  st.addY(dEff, sEff, gs);
  st.addNodeRhs(dEff, -ieq);

  st.addY(sEff, dEff, -gd);
  st.addY(sEff, g_, -gg);
  st.addY(sEff, sEff, -gs);
  st.addNodeRhs(sEff, ieq);

  if (ctx.gmin > 0.0) {
    st.addY(d_, d_, ctx.gmin);
    st.addY(s_, s_, ctx.gmin);
    st.addY(d_, s_, -ctx.gmin);
    st.addY(s_, d_, -ctx.gmin);
  }

  if (ctx.transient) {
    auto stampCap = [&](NodeId a, NodeId b, double c, const double* hist) {
      const double geq = 2.0 * c / ctx.dt;
      const double ieqc = geq * hist[0] + hist[1];
      st.addY(a, a, geq);
      st.addY(b, b, geq);
      st.addY(a, b, -geq);
      st.addY(b, a, -geq);
      st.addNodeRhs(a, ieqc);
      st.addNodeRhs(b, -ieqc);
    };
    stampCap(g_, s_, cgs_, ctx.state + 0);
    stampCap(g_, d_, cgd_, ctx.state + 2);
  }
}

void GanHemt::stampAc(ComplexStamper& st, const AcContext& ctx) const {
  NodeId dEff, sEff;
  const GanEval e = orientedEval(ctx.xop, dEff, sEff);
  const double gd = e.gds;
  const double gg = e.gm;
  const double gs = -e.gm - e.gds;

  st.addY(dEff, dEff, {gd, 0.0});
  st.addY(dEff, g_, {gg, 0.0});
  st.addY(dEff, sEff, {gs, 0.0});
  st.addY(sEff, dEff, {-gd, 0.0});
  st.addY(sEff, g_, {-gg, 0.0});
  st.addY(sEff, sEff, {-gs, 0.0});

  auto stampCap = [&](NodeId a, NodeId b, double c) {
    const std::complex<double> y(0.0, ctx.omega * c);
    st.addY(a, a, y);
    st.addY(b, b, y);
    st.addY(a, b, -y);
    st.addY(b, a, -y);
  };
  stampCap(g_, s_, cgs_);
  stampCap(g_, d_, cgd_);
}

void GanHemt::updateTranState(const SimContext& ctx, double* state) const {
  auto update = [&](NodeId a, NodeId b, double c, double* hist) {
    const double vNew = v(ctx.x, a) - v(ctx.x, b);
    const double geq = 2.0 * c / ctx.dt;
    const double iNew = geq * (vNew - hist[0]) - hist[1];
    hist[0] = vNew;
    hist[1] = iNew;
  };
  update(g_, s_, cgs_, state + 0);
  update(g_, d_, cgd_, state + 2);
}

void GanHemt::initTranState(const linalg::Vec& xop, double* state) const {
  state[0] = v(xop, g_) - v(xop, s_);
  state[1] = 0.0;
  state[2] = v(xop, g_) - v(xop, d_);
  state[3] = 0.0;
}

std::string GanHemt::card() const {
  std::ostringstream os;
  os << name() << " d=" << d_ << " g=" << g_ << " s=" << s_ << " GaN W=" << w_
     << " nf=" << nf_;
  return os.str();
}

}  // namespace crl::spice
