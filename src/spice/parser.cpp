#include "spice/parser.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "spice/diode.h"
#include "spice/elements.h"
#include "util/strings.h"

namespace crl::spice {
namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// One logical deck line (after continuation merging), with its source line.
struct LogicalLine {
  std::string text;
  int line = 0;
};

/// Strip inline comments (`;` or `$` start a comment to end of line).
std::string stripInlineComment(const std::string& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == ';' || s[i] == '$') return s.substr(0, i);
  }
  return s;
}

std::vector<LogicalLine> assembleLines(const std::string& text, bool firstIsTitle,
                                       std::string* title) {
  std::vector<LogicalLine> out;
  std::istringstream is(text);
  std::string raw;
  int lineNo = 0;
  bool sawFirst = false;
  while (std::getline(is, raw)) {
    ++lineNo;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    std::string s = stripInlineComment(raw);
    // Trim; blank lines never consume the title slot.
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    std::size_t e = s.find_last_not_of(" \t");
    s = s.substr(b, e - b + 1);

    if (!sawFirst && firstIsTitle) {
      sawFirst = true;
      // A first line that looks like a card/directive is still a title per
      // SPICE convention; we follow that strictly.
      *title = s;
      continue;
    }
    sawFirst = true;
    if (s[0] == '*') continue;  // comment line
    if (s[0] == '+') {
      if (out.empty()) throw ParseError("continuation line with nothing to continue", lineNo);
      out.back().text += ' ' + s.substr(1);
      continue;
    }
    out.push_back({s, lineNo});
  }
  return out;
}

/// Split a logical line into tokens, keeping (...), {...} and '...' groups
/// intact and splitting stand-alone `key=value` pairs at the '='.
std::vector<std::string> tokenize(const std::string& s, int line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  auto skipWs = [&] { while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i; };
  while (true) {
    skipWs();
    if (i >= s.size()) break;
    std::string tok;
    int depth = 0;
    char quote = '\0';
    while (i < s.size()) {
      char c = s[i];
      if (quote) {
        tok.push_back(c);
        ++i;
        if (c == quote) quote = '\0';
        continue;
      }
      if (c == '\'') {
        quote = c;
        tok.push_back(c);
        ++i;
        continue;
      }
      if (c == '(' || c == '{') ++depth;
      if (c == ')' || c == '}') {
        if (depth == 0) throw ParseError("unbalanced ')' or '}'", line);
        --depth;
      }
      if (depth == 0 && std::isspace(static_cast<unsigned char>(c))) break;
      tok.push_back(c);
      ++i;
    }
    if (depth != 0 || quote) throw ParseError("unbalanced bracket or quote", line);
    tokens.push_back(tok);
  }
  return tokens;
}

/// Split "key=value" (returns true) vs a plain token (returns false).
bool splitAssign(const std::string& tok, std::string* key, std::string* value) {
  // Only split at a top-level '=' (not inside braces/quotes).
  int depth = 0;
  char quote = '\0';
  for (std::size_t i = 0; i < tok.size(); ++i) {
    char c = tok[i];
    if (quote) {
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '\'') quote = c;
    if (c == '(' || c == '{') ++depth;
    if (c == ')' || c == '}') --depth;
    if (c == '=' && depth == 0) {
      *key = lower(tok.substr(0, i));
      *value = tok.substr(i + 1);
      return true;
    }
  }
  return false;
}

class DeckBuilder {
 public:
  explicit DeckBuilder(const DeckOptions& opts) : opts_(opts) {
    deck_.netlist = std::make_unique<Netlist>();
    deck_.params = opts.params;
  }

  Deck run(const std::string& text) {
    auto lines = assembleLines(text, opts_.firstLineIsTitle, &deck_.title);
    for (const auto& ll : lines) dispatch(ll);
    if (!pendingSubckt_.empty())
      throw ParseError(".subckt '" + pendingSubckt_ + "' missing .ends", 0);
    deck_.netlist->finalize();
    return std::move(deck_);
  }

 private:
  /// One `.subckt` definition: ports, default params, captured body lines.
  struct Subckt {
    std::vector<std::string> ports;
    util::VarMap defaults;
    std::vector<LogicalLine> body;
  };

  /// Instantiation scope while expanding an X card: node/parameter bindings
  /// and the hierarchical name prefix. Scopes nest for subckts-in-subckts.
  struct Scope {
    std::string prefix;  ///< "x1." — prepended to device and internal nodes
    std::unordered_map<std::string, std::string> portMap;  ///< formal -> actual net
    util::VarMap params;  ///< deck params + subckt defaults + X overrides
  };

  const util::VarMap& activeParams() const {
    return scopes_.empty() ? deck_.params : scopes_.back().params;
  }

  /// Resolve a node name in the active scope: ports map to the caller's
  /// nets, ground stays global, everything else is prefixed (hierarchical).
  NodeId nodeFor(const std::string& rawName) {
    std::string name = lower(rawName);
    if (scopes_.empty() || name == "0" || name == "gnd")
      return deck_.netlist->node(name);
    const auto& sc = scopes_.back();
    if (auto it = sc.portMap.find(name); it != sc.portMap.end())
      return deck_.netlist->node(it->second);
    return deck_.netlist->node(sc.prefix + name);
  }

  /// Device name in the active scope (hierarchically prefixed).
  std::string devName(const std::string& raw) const {
    return scopes_.empty() ? raw : scopes_.back().prefix + raw;
  }

  double resolveValue(const std::string& token, int line) {
    if (token.empty()) throw ParseError("empty value", line);
    if (token.front() == '{' && token.back() == '}')
      return evalOrThrow(token.substr(1, token.size() - 2), line);
    if (token.front() == '\'' && token.back() == '\'' && token.size() >= 2)
      return evalOrThrow(token.substr(1, token.size() - 2), line);
    double v;
    if (util::parseEngNumber(token, &v)) return v;
    // Bare parameter reference.
    const auto& params = activeParams();
    if (auto it = params.find(lower(token)); it != params.end()) return it->second;
    throw ParseError("cannot parse value '" + token + "'", line);
  }

  double evalOrThrow(const std::string& expr, int line) {
    try {
      return util::evalExpr(expr, activeParams());
    } catch (const util::ExprError& e) {
      throw ParseError(e.what(), line);
    }
  }

  void dispatch(const LogicalLine& ll) {
    auto tokens = tokenize(ll.text, ll.line);
    if (tokens.empty()) return;
    std::string head = lower(tokens[0]);
    // Inside a .subckt definition, capture lines verbatim until .ends.
    if (!pendingSubckt_.empty()) {
      if (head == ".ends") {
        subckts_[pendingSubckt_] = std::move(currentSubckt_);
        pendingSubckt_.clear();
        currentSubckt_ = {};
        return;
      }
      if (head == ".subckt")
        throw ParseError("nested .subckt definitions are not supported", ll.line);
      currentSubckt_.body.push_back(ll);
      return;
    }
    if (head[0] == '.') {
      directive(head, tokens, ll);
      return;
    }
    if (head[0] == 'x') {
      instantiate(tokens, ll.line);
      return;
    }
    switch (head[0]) {
      case 'r': twoTerminal<Resistor>(tokens, ll.line); break;
      case 'c': twoTerminal<Capacitor>(tokens, ll.line); break;
      case 'l': twoTerminal<Inductor>(tokens, ll.line); break;
      case 'v': vsource(tokens, ll.line); break;
      case 'i': isource(tokens, ll.line); break;
      case 'm': transistor(tokens, ll.line); break;
      case 'd': diode(tokens, ll.line); break;
      default:
        throw ParseError("unsupported card '" + tokens[0] + "'", ll.line);
    }
  }

  template <typename D>
  void twoTerminal(const std::vector<std::string>& t, int line) {
    if (t.size() != 4)
      throw ParseError("expected: " + t[0] + " n1 n2 value", line);
    NodeId a = nodeFor(t[1]);
    NodeId b = nodeFor(t[2]);
    double v = resolveValue(t[3], line);
    try {
      deck_.netlist->add<D>(devName(t[0]), a, b, v);
    } catch (const std::invalid_argument& e) {
      throw ParseError(e.what(), line);
    }
  }

  void vsource(const std::vector<std::string>& t, int line) {
    if (t.size() < 3) throw ParseError("expected: " + t[0] + " n+ n- [DC] value ...", line);
    NodeId pos = nodeFor(t[1]);
    NodeId neg = nodeFor(t[2]);
    auto* src = deck_.netlist->add<VSource>(devName(t[0]), pos, neg, 0.0);
    std::size_t i = 3;
    bool haveDc = false;
    while (i < t.size()) {
      std::string kw = lower(t[i]);
      if (kw == "dc") {
        if (i + 1 >= t.size()) throw ParseError("DC needs a value", line);
        src->setDc(resolveValue(t[i + 1], line));
        haveDc = true;
        i += 2;
      } else if (kw == "ac") {
        if (i + 1 >= t.size()) throw ParseError("AC needs a magnitude", line);
        src->setAcMag(resolveValue(t[i + 1], line));
        i += 2;
      } else if (util::startsWith(kw, "sin(") && kw.back() == ')') {
        auto inner = t[i].substr(4, t[i].size() - 5);
        auto parts = tokenize(inner, line);
        if (parts.size() < 2 || parts.size() > 3)
          throw ParseError("SIN(amp freq [phase]) takes 2 or 3 arguments", line);
        double amp = resolveValue(parts[0], line);
        double freq = resolveValue(parts[1], line);
        double phase = parts.size() == 3 ? resolveValue(parts[2], line) : 0.0;
        src->setSine(amp, freq, phase);
        ++i;
      } else if (!haveDc) {
        src->setDc(resolveValue(t[i], line));
        haveDc = true;
        ++i;
      } else {
        throw ParseError("unexpected token '" + t[i] + "' on V card", line);
      }
    }
  }

  void isource(const std::vector<std::string>& t, int line) {
    if (t.size() < 4) throw ParseError("expected: " + t[0] + " n+ n- [DC] value", line);
    NodeId pos = nodeFor(t[1]);
    NodeId neg = nodeFor(t[2]);
    std::size_t vi = 3;
    if (lower(t[3]) == "dc") {
      if (t.size() < 5) throw ParseError("DC needs a value", line);
      vi = 4;
    }
    if (vi != t.size() - 1) throw ParseError("unexpected trailing tokens on I card", line);
    deck_.netlist->add<ISource>(devName(t[0]), pos, neg, resolveValue(t[vi], line));
  }

  void transistor(const std::vector<std::string>& t, int line) {
    // Mxxx d g s [b] model [W=..] [NF=..] — properties may appear in any order.
    std::vector<std::string> positional;
    double width = -1.0;
    double nf = -1.0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      std::string key, value;
      if (splitAssign(t[i], &key, &value)) {
        if (key == "w") width = resolveValue(value, line);
        else if (key == "nf" || key == "m") nf = resolveValue(value, line);
        else if (key == "l") deck_.warnings.push_back("M card L= ignored (length is a model parameter)");
        else throw ParseError("unknown M-card property '" + key + "'", line);
      } else {
        positional.push_back(t[i]);
      }
    }
    if (positional.size() != 4 && positional.size() != 5)
      throw ParseError("expected: " + t[0] + " d g s [b] model", line);
    std::string modelName = lower(positional.back());
    NodeId d = nodeFor(positional[0]);
    NodeId g = nodeFor(positional[1]);
    NodeId s = nodeFor(positional[2]);
    if (positional.size() == 5) {
      NodeId b = nodeFor(positional[3]);
      if (b != s)
        throw ParseError("bulk node must equal source (model ties bulk to source)", line);
    }
    if (width <= 0.0) throw ParseError("M card needs W=<width>", line);
    int fingers = nf > 0 ? static_cast<int>(nf + 0.5) : 1;

    if (auto it = deck_.mosModels.find(modelName); it != deck_.mosModels.end()) {
      deck_.netlist->add<Mosfet>(devName(t[0]), d, g, s, it->second, width, fingers);
    } else if (auto gt = deck_.ganModels.find(modelName); gt != deck_.ganModels.end()) {
      deck_.netlist->add<GanHemt>(devName(t[0]), d, g, s, gt->second, width, fingers);
    } else {
      throw ParseError("unknown model '" + modelName + "'", line);
    }
  }

  void diode(const std::vector<std::string>& t, int line) {
    if (t.size() != 4)
      throw ParseError("expected: " + t[0] + " anode cathode model", line);
    NodeId a = nodeFor(t[1]);
    NodeId c = nodeFor(t[2]);
    std::string modelName = lower(t[3]);
    auto it = deck_.diodeModels.find(modelName);
    if (it == deck_.diodeModels.end())
      throw ParseError("unknown diode model '" + modelName + "'", line);
    deck_.netlist->add<Diode>(devName(t[0]), a, c, it->second);
  }

  /// Expand `Xname n1 n2 ... subckt [param=val ...]` by re-dispatching the
  /// definition's body inside a fresh scope: ports bind to the caller's
  /// nets, internal nodes and device names gain the instance prefix, and
  /// parameters resolve as deck < defaults < overrides.
  void instantiate(const std::vector<std::string>& t, int line) {
    if (scopes_.size() >= 8) throw ParseError("subckt nesting too deep", line);
    std::vector<std::string> positional;
    util::VarMap overrides;
    for (std::size_t i = 1; i < t.size(); ++i) {
      std::string key, value;
      if (splitAssign(t[i], &key, &value)) {
        overrides[key] = resolveValue(value, line);
      } else {
        positional.push_back(t[i]);
      }
    }
    if (positional.empty()) throw ParseError("X card needs nets and a subckt name", line);
    const std::string subName = lower(positional.back());
    positional.pop_back();
    auto it = subckts_.find(subName);
    if (it == subckts_.end())
      throw ParseError("unknown subckt '" + subName + "'", line);
    const Subckt& sub = it->second;
    if (positional.size() != sub.ports.size())
      throw ParseError("subckt '" + subName + "' has " +
                           std::to_string(sub.ports.size()) + " ports, got " +
                           std::to_string(positional.size()),
                       line);

    Scope sc;
    sc.prefix = devName(lower(t[0])) + ".";
    for (std::size_t i = 0; i < sub.ports.size(); ++i) {
      // Bind the formal port to the *caller-resolved* net name.
      NodeId actual = nodeFor(positional[i]);
      sc.portMap[sub.ports[i]] = deck_.netlist->nodeName(actual);
    }
    sc.params = activeParams();
    for (const auto& [k, v] : sub.defaults) sc.params[k] = v;
    for (const auto& [k, v] : overrides) sc.params[k] = v;

    scopes_.push_back(std::move(sc));
    for (const auto& bodyLine : sub.body) dispatch(bodyLine);
    scopes_.pop_back();
  }

  void directive(const std::string& head, const std::vector<std::string>& t,
                 const LogicalLine& ll) {
    if (head == ".end") return;
    if (head == ".title") {
      std::size_t at = ll.text.find_first_of(" \t");
      deck_.title = at == std::string::npos ? "" : ll.text.substr(at + 1);
      return;
    }
    if (head == ".param") {
      for (std::size_t i = 1; i < t.size(); ++i) {
        std::string key, value;
        if (!splitAssign(t[i], &key, &value))
          throw ParseError(".param expects name=value pairs", ll.line);
        deck_.params[key] = resolveValue(value, ll.line);
      }
      return;
    }
    if (head == ".model") {
      model(t, ll.line);
      return;
    }
    if (head == ".subckt") {
      if (t.size() < 2) throw ParseError(".subckt expects: .subckt name ports...", ll.line);
      pendingSubckt_ = lower(t[1]);
      currentSubckt_ = {};
      for (std::size_t i = 2; i < t.size(); ++i) {
        std::string key, value;
        if (splitAssign(t[i], &key, &value)) {
          currentSubckt_.defaults[key] = resolveValue(value, ll.line);
        } else {
          currentSubckt_.ports.push_back(lower(t[i]));
        }
      }
      return;
    }
    if (head == ".ends")
      throw ParseError(".ends without a matching .subckt", ll.line);
    if (head == ".include") {
      if (t.size() != 2) throw ParseError(".include expects one file", ll.line);
      std::string file = t[1];
      if (file.size() >= 2 && (file.front() == '"' || file.front() == '\''))
        file = file.substr(1, file.size() - 2);
      if (!opts_.includeDir.empty() && !file.empty() && file[0] != '/')
        file = opts_.includeDir + "/" + file;
      std::ifstream in(file);
      if (!in) throw ParseError("cannot open include file '" + file + "'", ll.line);
      std::stringstream ss;
      ss << in.rdbuf();
      auto sub = assembleLines(ss.str(), /*firstIsTitle=*/false, &deck_.title);
      for (const auto& sl : sub) dispatch(sl);
      return;
    }
    deck_.warnings.push_back("ignored directive: " + t[0]);
  }

  void model(const std::vector<std::string>& t, int line) {
    if (t.size() < 3) throw ParseError(".model expects: .model name TYPE (params)", line);
    std::string name = lower(t[1]);
    std::string type = lower(t[2]);
    // Collect param assignments from the remaining tokens; a parenthesized
    // group is re-tokenized.
    util::VarMap kv;
    for (std::size_t i = 3; i < t.size(); ++i) {
      std::string group = t[i];
      if (!group.empty() && group.front() == '(' && group.back() == ')')
        group = group.substr(1, group.size() - 2);
      for (const auto& tok : tokenize(group, line)) {
        std::string key, value;
        if (!splitAssign(tok, &key, &value))
          throw ParseError(".model parameter '" + tok + "' is not name=value", line);
        kv[key] = resolveValue(value, line);
      }
    }
    auto take = [&](const char* k, double* dst) {
      if (auto it = kv.find(k); it != kv.end()) {
        *dst = it->second;
        kv.erase(it);
      }
    };
    if (type == "nmos" || type == "pmos") {
      MosModel m;
      m.type = type == "nmos" ? MosType::Nmos : MosType::Pmos;
      take("kp", &m.kp);
      take("vto", &m.vth);
      take("vth", &m.vth);
      take("lambda", &m.lambda);
      take("l", &m.length);
      take("cox", &m.coxArea);
      take("cov", &m.covPerW);
      take("delta", &m.subthreshSmoothing);
      if (!kv.empty())
        throw ParseError("unknown " + type + " model parameter '" + kv.begin()->first + "'",
                         line);
      deck_.mosModels[name] = m;
    } else if (type == "gan") {
      GanModel m;
      take("ipk", &m.ipkPerWidth);
      take("vpk", &m.vpk);
      take("p1", &m.p1);
      take("alpha", &m.alpha);
      take("lambda", &m.lambda);
      take("cgs", &m.cgsPerWidth);
      take("cgd", &m.cgdPerWidth);
      if (!kv.empty())
        throw ParseError("unknown gan model parameter '" + kv.begin()->first + "'", line);
      deck_.ganModels[name] = m;
    } else if (type == "d") {
      DiodeModel m;
      take("is", &m.is);
      take("n", &m.n);
      take("vt", &m.vt);
      take("cj0", &m.cj0);
      take("vexp", &m.vExp);
      if (!kv.empty())
        throw ParseError("unknown diode model parameter '" + kv.begin()->first + "'", line);
      deck_.diodeModels[name] = m;
    } else {
      throw ParseError("unsupported model type '" + type + "'", line);
    }
  }

  DeckOptions opts_;
  Deck deck_;
  std::string pendingSubckt_;
  Subckt currentSubckt_;
  std::unordered_map<std::string, Subckt> subckts_;
  std::vector<Scope> scopes_;
};

// --------------------------------------------------------------- writer

std::string fmtValue(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

struct ModelKey {
  std::string text;
  bool operator<(const ModelKey& o) const { return text < o.text; }
};

ModelKey keyOf(const MosModel& m) {
  std::ostringstream os;
  os.precision(15);
  os << (m.type == MosType::Nmos ? "nmos" : "pmos") << ' ' << m.kp << ' ' << m.vth << ' '
     << m.lambda << ' ' << m.length << ' ' << m.coxArea << ' ' << m.covPerW << ' '
     << m.subthreshSmoothing;
  return {os.str()};
}

ModelKey keyOf(const DiodeModel& m) {
  std::ostringstream os;
  os.precision(15);
  os << "d " << m.is << ' ' << m.n << ' ' << m.vt << ' ' << m.cj0 << ' ' << m.vExp;
  return {os.str()};
}

ModelKey keyOf(const GanModel& m) {
  std::ostringstream os;
  os.precision(15);
  os << "gan " << m.ipkPerWidth << ' ' << m.vpk << ' ' << m.p1 << ' ' << m.alpha << ' '
     << m.lambda << ' ' << m.cgsPerWidth << ' ' << m.cgdPerWidth;
  return {os.str()};
}

}  // namespace

Deck parseDeck(const std::string& text, const DeckOptions& opts) {
  return DeckBuilder(opts).run(text);
}

Deck parseDeckFile(const std::string& path, DeckOptions opts) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open deck file '" + path + "'", 0);
  std::stringstream ss;
  ss << in.rdbuf();
  if (opts.includeDir.empty()) {
    auto slash = path.find_last_of('/');
    if (slash != std::string::npos) opts.includeDir = path.substr(0, slash);
  }
  return parseDeck(ss.str(), opts);
}

double parseValue(const std::string& token) {
  double v;
  if (!util::parseEngNumber(token, &v))
    throw ParseError("cannot parse value '" + token + "'", 0);
  return v;
}

std::string writeDeck(const Netlist& net, const std::string& title) {
  std::ostringstream os;
  os << title << '\n';

  // Deduplicate transistor/diode models.
  std::map<ModelKey, std::string> mosNames;
  std::map<ModelKey, std::string> ganNames;
  std::map<ModelKey, std::string> diodeNames;
  for (const auto& dev : net.devices()) {
    if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
      auto key = keyOf(m->model());
      if (!mosNames.count(key)) {
        std::string name = (m->model().type == MosType::Nmos ? "nch" : "pch") +
                           std::to_string(mosNames.size());
        const auto& mm = m->model();
        os << ".model " << name << ' ' << (mm.type == MosType::Nmos ? "NMOS" : "PMOS")
           << " (kp=" << fmtValue(mm.kp) << " vth=" << fmtValue(mm.vth)
           << " lambda=" << fmtValue(mm.lambda) << " l=" << fmtValue(mm.length)
           << " cox=" << fmtValue(mm.coxArea) << " cov=" << fmtValue(mm.covPerW)
           << " delta=" << fmtValue(mm.subthreshSmoothing) << ")\n";
        mosNames[key] = name;
      }
    } else if (const auto* g = dynamic_cast<const GanHemt*>(dev.get())) {
      auto key = keyOf(g->model());
      if (!ganNames.count(key)) {
        std::string name = "gan" + std::to_string(ganNames.size());
        const auto& gm = g->model();
        os << ".model " << name << " GAN (ipk=" << fmtValue(gm.ipkPerWidth)
           << " vpk=" << fmtValue(gm.vpk) << " p1=" << fmtValue(gm.p1)
           << " alpha=" << fmtValue(gm.alpha) << " lambda=" << fmtValue(gm.lambda)
           << " cgs=" << fmtValue(gm.cgsPerWidth) << " cgd=" << fmtValue(gm.cgdPerWidth)
           << ")\n";
        ganNames[key] = name;
      }
    }
  }

  for (const auto& dev : net.devices()) {
    if (const auto* d = dynamic_cast<const Diode*>(dev.get())) {
      auto key = keyOf(d->model());
      if (!diodeNames.count(key)) {
        std::string name = "dio" + std::to_string(diodeNames.size());
        const auto& dm = d->model();
        os << ".model " << name << " D (is=" << fmtValue(dm.is) << " n=" << fmtValue(dm.n)
           << " vt=" << fmtValue(dm.vt) << " cj0=" << fmtValue(dm.cj0)
           << " vexp=" << fmtValue(dm.vExp) << ")\n";
        diodeNames[key] = name;
      }
    }
  }

  auto nn = [&](NodeId n) { return net.nodeName(n); };
  // Card names must start with the letter the parser dispatches on; rename
  // on emit when the device was constructed with a different convention
  // (e.g. the RF PA names its GaN drivers D1..DF after the paper's figure).
  auto cardName = [](const std::string& name, char letter) {
    if (!name.empty() &&
        std::tolower(static_cast<unsigned char>(name[0])) == letter)
      return name;
    return std::string(1, letter) + "_" + name;
  };
  for (const auto& dev : net.devices()) {
    if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
      os << r->name() << ' ' << nn(r->nodeA()) << ' ' << nn(r->nodeB()) << ' '
         << fmtValue(r->resistance()) << '\n';
    } else if (const auto* c = dynamic_cast<const Capacitor*>(dev.get())) {
      os << c->name() << ' ' << nn(c->nodeA()) << ' ' << nn(c->nodeB()) << ' '
         << fmtValue(c->capacitance()) << '\n';
    } else if (const auto* l = dynamic_cast<const Inductor*>(dev.get())) {
      os << l->name() << ' ' << nn(l->nodeA()) << ' ' << nn(l->nodeB()) << ' '
         << fmtValue(l->inductance()) << '\n';
    } else if (const auto* v = dynamic_cast<const VSource*>(dev.get())) {
      os << v->name() << ' ' << nn(v->pos()) << ' ' << nn(v->neg()) << " DC "
         << fmtValue(v->dc());
      if (v->acMag() != 0.0) os << " AC " << fmtValue(v->acMag());
      if (v->sineAmp() != 0.0)
        os << " SIN(" << fmtValue(v->sineAmp()) << ' ' << fmtValue(v->sineFreq()) << ' '
           << fmtValue(v->sinePhase()) << ')';
      os << '\n';
    } else if (const auto* i = dynamic_cast<const ISource*>(dev.get())) {
      os << i->name() << ' ' << nn(i->pos()) << ' ' << nn(i->neg()) << " DC "
         << fmtValue(i->dc()) << '\n';
    } else if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
      os << cardName(m->name(), 'm') << ' ' << nn(m->drain()) << ' ' << nn(m->gate()) << ' '
         << nn(m->source()) << ' ' << mosNames[keyOf(m->model())]
         << " W=" << fmtValue(m->width()) << " NF=" << m->fingers() << '\n';
    } else if (const auto* g = dynamic_cast<const GanHemt*>(dev.get())) {
      os << cardName(g->name(), 'm') << ' ' << nn(g->drain()) << ' ' << nn(g->gate()) << ' '
         << nn(g->source()) << ' ' << ganNames[keyOf(g->model())]
         << " W=" << fmtValue(g->width()) << " NF=" << g->fingers() << '\n';
    } else if (const auto* d = dynamic_cast<const Diode*>(dev.get())) {
      os << cardName(d->name(), 'd') << ' ' << nn(d->anode()) << ' ' << nn(d->cathode()) << ' '
         << diodeNames[keyOf(d->model())] << '\n';
    } else {
      os << "* unsupported device omitted: " << dev->name() << '\n';
    }
  }
  os << ".end\n";
  return os.str();
}

}  // namespace crl::spice
