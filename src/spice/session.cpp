#include "spice/session.h"

#include <future>

namespace crl::spice {

SimSession::SimSession(std::size_t workers) {
  workers_ = workers == 0 ? util::ThreadPool::defaultWorkerCount() : workers;
  if (workers_ > 1) {
    ownedPool_ = std::make_unique<util::ThreadPool>(workers_);
    pool_ = ownedPool_.get();
  }
  workspaces_.resize(workers_);
}

SimSession::SimSession(util::ThreadPool& pool) {
  workers_ = pool.workerCount();
  if (workers_ > 1) pool_ = &pool;
  workspaces_.resize(workers_ == 0 ? 1 : workers_);
  if (workers_ == 0) workers_ = 1;
}

SimSession::~SimSession() = default;

std::size_t SimSession::workersFromEnv() {
  return util::ThreadPool::workersFromEnv("CRL_SPICE_WORKERS");
}

void SimSession::parallelChunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t w = workers_;
  auto chunk = [n, w](std::size_t slot) {
    return std::pair<std::size_t, std::size_t>{n * slot / w, n * (slot + 1) / w};
  };
  if (!pool_ || w < 2 || n < 2) {
    for (std::size_t s = 0; s < w; ++s) {
      auto [b, e] = chunk(s);
      if (b < e) fn(b, e, s);
    }
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(w);
  for (std::size_t s = 0; s < w; ++s) {
    auto [b, e] = chunk(s);
    if (b >= e) continue;
    futs.push_back(pool_->submit([&fn, b = b, e = e, s]() { fn(b, e, s); }));
  }
  // Wait for every chunk before surfacing the first failure, so no task is
  // still touching shared output when an exception unwinds the caller.
  for (auto& f : futs) f.wait();
  for (auto& f : futs) f.get();
}

}  // namespace crl::spice
