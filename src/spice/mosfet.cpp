#include "spice/mosfet.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace crl::spice {

MosEval evalSquareLaw(const MosModel& m, double beta, double vgs, double vds) {
  // Smooth max(vov, ~0) so gm never vanishes exactly in cutoff; keeps the
  // Newton Jacobian non-singular around the subthreshold corner.
  const double vov = vgs - m.vth;
  const double delta = m.subthreshSmoothing;
  const double root = std::sqrt(vov * vov + delta * delta);
  const double vovEff = 0.5 * (vov + root);
  const double dVov = 0.5 * (1.0 + vov / root);

  MosEval e;
  const double clm = 1.0 + m.lambda * vds;
  if (vds < vovEff) {
    // Triode region.
    e.id = beta * (vovEff - 0.5 * vds) * vds * clm;
    e.gm = beta * vds * clm * dVov;
    e.gds = beta * (vovEff - vds) * clm + beta * (vovEff - 0.5 * vds) * vds * m.lambda;
  } else {
    // Saturation region.
    const double idSat = 0.5 * beta * vovEff * vovEff;
    e.id = idSat * clm;
    e.gm = beta * vovEff * clm * dVov;
    e.gds = idSat * m.lambda;
  }
  return e;
}

namespace {
/// Partial derivatives of the oriented drain current (flowing dEff -> sEff)
/// with respect to the voltages of (dEff, gate, sEff).
struct NodePartials {
  double gd = 0.0;
  double gg = 0.0;
  double gs = 0.0;
};
}  // namespace

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, MosModel model,
               double widthPerFinger, int fingers)
    : Device(std::move(name)), d_(d), g_(g), s_(s), model_(model) {
  setGeometry(widthPerFinger, fingers);
}

void Mosfet::setGeometry(double widthPerFinger, int fingers) {
  if (widthPerFinger <= 0.0) throw std::invalid_argument("Mosfet: non-positive width");
  if (fingers < 1) throw std::invalid_argument("Mosfet: fingers must be >= 1");
  w_ = widthPerFinger;
  nf_ = fingers;
  recomputeCaps();
}

void Mosfet::recomputeCaps() {
  const double weff = effectiveWidth();
  // Saturation Meyer capacitances: Cgs = 2/3 W L Cox + overlap, Cgd = overlap.
  cgs_ = (2.0 / 3.0) * weff * model_.length * model_.coxArea + model_.covPerW * weff;
  cgd_ = model_.covPerW * weff;
}

MosEval Mosfet::orientedEval(const linalg::Vec& x, NodeId& dEff, NodeId& sEff) const {
  const double vd = v(x, d_);
  const double vg = v(x, g_);
  const double vs = v(x, s_);
  const double beta = model_.kp * effectiveWidth() / model_.length;

  double vgsEff, vdsEff;
  if (model_.type == MosType::Nmos) {
    // Symmetric device: swap drain/source when vds < 0.
    if (vd >= vs) {
      dEff = d_;
      sEff = s_;
      vgsEff = vg - vs;
      vdsEff = vd - vs;
    } else {
      dEff = s_;
      sEff = d_;
      vgsEff = vg - vd;
      vdsEff = vs - vd;
    }
  } else {
    // PMOS mirrored into NMOS-style source-referenced quantities: the
    // conducting current flows from the higher terminal (effective drain,
    // normally the source) to the lower one; the controlling voltage is
    // v(dEff) - v(gate).
    if (vs >= vd) {
      dEff = s_;
      sEff = d_;
      vgsEff = vs - vg;
      vdsEff = vs - vd;
    } else {
      dEff = d_;
      sEff = s_;
      vgsEff = vd - vg;
      vdsEff = vd - vs;
    }
  }
  return evalSquareLaw(model_, beta, vgsEff, vdsEff);
}

void Mosfet::stampLarge(RealStamper& st, const SimContext& ctx) const {
  NodeId dEff, sEff;
  const MosEval e = orientedEval(ctx.x, dEff, sEff);

  // Map (gm, gds) to partials w.r.t. the node voltages. For NMOS the gate
  // control is v(g) - v(sEff); for PMOS it is v(dEff) - v(g).
  NodePartials p;
  if (model_.type == MosType::Nmos) {
    p.gd = e.gds;
    p.gg = e.gm;
    p.gs = -e.gm - e.gds;
  } else {
    p.gd = e.gm + e.gds;
    p.gg = -e.gm;
    p.gs = -e.gds;
  }

  const double ieq =
      e.id - (p.gd * v(ctx.x, dEff) + p.gg * v(ctx.x, g_) + p.gs * v(ctx.x, sEff));

  // Current e.id leaves dEff and enters sEff.
  st.addY(dEff, dEff, p.gd);
  st.addY(dEff, g_, p.gg);
  st.addY(dEff, sEff, p.gs);
  st.addNodeRhs(dEff, -ieq);

  st.addY(sEff, dEff, -p.gd);
  st.addY(sEff, g_, -p.gg);
  st.addY(sEff, sEff, -p.gs);
  st.addNodeRhs(sEff, ieq);

  // Convergence-aid conductance across the channel.
  if (ctx.gmin > 0.0) {
    st.addY(d_, d_, ctx.gmin);
    st.addY(s_, s_, ctx.gmin);
    st.addY(d_, s_, -ctx.gmin);
    st.addY(s_, d_, -ctx.gmin);
  }

  if (ctx.transient) {
    // Trapezoidal companions for Cgs (state[0..1]) and Cgd (state[2..3]).
    auto stampCap = [&](NodeId a, NodeId b, double c, const double* hist) {
      const double geq = 2.0 * c / ctx.dt;
      const double ieqc = geq * hist[0] + hist[1];
      st.addY(a, a, geq);
      st.addY(b, b, geq);
      st.addY(a, b, -geq);
      st.addY(b, a, -geq);
      st.addNodeRhs(a, ieqc);
      st.addNodeRhs(b, -ieqc);
    };
    stampCap(g_, s_, cgs_, ctx.state + 0);
    stampCap(g_, d_, cgd_, ctx.state + 2);
  }
}

void Mosfet::stampAc(ComplexStamper& st, const AcContext& ctx) const {
  NodeId dEff, sEff;
  const MosEval e = orientedEval(ctx.xop, dEff, sEff);
  NodePartials p;
  if (model_.type == MosType::Nmos) {
    p.gd = e.gds;
    p.gg = e.gm;
    p.gs = -e.gm - e.gds;
  } else {
    p.gd = e.gm + e.gds;
    p.gg = -e.gm;
    p.gs = -e.gds;
  }

  st.addY(dEff, dEff, {p.gd, 0.0});
  st.addY(dEff, g_, {p.gg, 0.0});
  st.addY(dEff, sEff, {p.gs, 0.0});
  st.addY(sEff, dEff, {-p.gd, 0.0});
  st.addY(sEff, g_, {-p.gg, 0.0});
  st.addY(sEff, sEff, {-p.gs, 0.0});

  auto stampCap = [&](NodeId a, NodeId b, double c) {
    const std::complex<double> y(0.0, ctx.omega * c);
    st.addY(a, a, y);
    st.addY(b, b, y);
    st.addY(a, b, -y);
    st.addY(b, a, -y);
  };
  stampCap(g_, s_, cgs_);
  stampCap(g_, d_, cgd_);
}

MosEval Mosfet::evalAt(const linalg::Vec& x) const {
  NodeId dEff, sEff;
  return orientedEval(x, dEff, sEff);
}

void Mosfet::updateTranState(const SimContext& ctx, double* state) const {
  auto update = [&](NodeId a, NodeId b, double c, double* hist) {
    const double vNew = v(ctx.x, a) - v(ctx.x, b);
    const double geq = 2.0 * c / ctx.dt;
    const double iNew = geq * (vNew - hist[0]) - hist[1];
    hist[0] = vNew;
    hist[1] = iNew;
  };
  update(g_, s_, cgs_, state + 0);
  update(g_, d_, cgd_, state + 2);
}

void Mosfet::initTranState(const linalg::Vec& xop, double* state) const {
  state[0] = v(xop, g_) - v(xop, s_);
  state[1] = 0.0;
  state[2] = v(xop, g_) - v(xop, d_);
  state[3] = 0.0;
}

std::string Mosfet::card() const {
  std::ostringstream os;
  os << name() << " d=" << d_ << " g=" << g_ << " s=" << s_
     << (model_.type == MosType::Nmos ? " NMOS" : " PMOS") << " W=" << w_
     << " nf=" << nf_;
  return os.str();
}

}  // namespace crl::spice
