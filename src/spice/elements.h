#pragma once
// Passive elements and independent sources: R, C, L, V source, I source.

#include "spice/device.h"

namespace crl::spice {

class Resistor : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);

  std::string_view kind() const override { return "resistor"; }
  std::vector<NodeId> terminals() const override { return {a_, b_}; }
  void stampLarge(RealStamper& s, const SimContext& ctx) const override;
  void stampAc(ComplexStamper& s, const AcContext& ctx) const override;
  std::string card() const override;

  double resistance() const { return ohms_; }
  void setResistance(double ohms);
  NodeId nodeA() const { return a_; }
  NodeId nodeB() const { return b_; }

 private:
  NodeId a_, b_;
  double ohms_;
};

class Capacitor : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads);

  std::string_view kind() const override { return "capacitor"; }
  std::vector<NodeId> terminals() const override { return {a_, b_}; }
  int tranStateSize() const override { return 2; }  // prev voltage, prev current
  void stampLarge(RealStamper& s, const SimContext& ctx) const override;
  void stampAc(ComplexStamper& s, const AcContext& ctx) const override;
  void updateTranState(const SimContext& ctx, double* state) const override;
  void initTranState(const linalg::Vec& xop, double* state) const override;
  std::string card() const override;

  double capacitance() const { return farads_; }
  void setCapacitance(double farads);
  NodeId nodeA() const { return a_; }
  NodeId nodeB() const { return b_; }

 private:
  NodeId a_, b_;
  double farads_;
};

class Inductor : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double henries);

  std::string_view kind() const override { return "inductor"; }
  std::vector<NodeId> terminals() const override { return {a_, b_}; }
  int branchCount() const override { return 1; }
  int tranStateSize() const override { return 2; }  // prev current, prev voltage
  void stampLarge(RealStamper& s, const SimContext& ctx) const override;
  void stampAc(ComplexStamper& s, const AcContext& ctx) const override;
  void updateTranState(const SimContext& ctx, double* state) const override;
  void initTranState(const linalg::Vec& xop, double* state) const override;
  std::string card() const override;

  double inductance() const { return henries_; }
  NodeId nodeA() const { return a_; }
  NodeId nodeB() const { return b_; }

 private:
  NodeId a_, b_;
  double henries_;
};

/// Independent voltage source: DC value, AC magnitude (for small-signal
/// excitation), and optional sinusoid for transient analysis
///   v(t) = dc + sineAmp * sin(2*pi*sineFreq*t + sinePhase).
class VSource : public Device {
 public:
  VSource(std::string name, NodeId pos, NodeId neg, double dc);

  std::string_view kind() const override { return "vsource"; }
  std::vector<NodeId> terminals() const override { return {pos_, neg_}; }
  int branchCount() const override { return 1; }
  void stampLarge(RealStamper& s, const SimContext& ctx) const override;
  void stampAc(ComplexStamper& s, const AcContext& ctx) const override;
  std::string card() const override;

  void setDc(double dc) { dc_ = dc; }
  double dc() const { return dc_; }
  void setAcMag(double mag) { acMag_ = mag; }
  double acMag() const { return acMag_; }
  void setSine(double amplitude, double freqHz, double phaseRad = 0.0);
  double sineAmp() const { return sineAmp_; }
  double sineFreq() const { return sineFreq_; }
  double sinePhase() const { return sinePhase_; }
  double valueAt(double time) const;

  NodeId pos() const { return pos_; }
  NodeId neg() const { return neg_; }
  /// Branch current flows from pos through the source to neg.
  std::size_t currentIndex() const { return branchIndex(); }

 private:
  NodeId pos_, neg_;
  double dc_;
  double acMag_ = 0.0;
  double sineAmp_ = 0.0;
  double sineFreq_ = 0.0;
  double sinePhase_ = 0.0;
};

/// Independent current source (DC only); current flows pos -> neg externally,
/// i.e. it pushes current out of `pos` into the circuit.
class ISource : public Device {
 public:
  ISource(std::string name, NodeId pos, NodeId neg, double dc);

  std::string_view kind() const override { return "isource"; }
  std::vector<NodeId> terminals() const override { return {pos_, neg_}; }
  void stampLarge(RealStamper& s, const SimContext& ctx) const override;
  void stampAc(ComplexStamper& s, const AcContext& ctx) const override;
  std::string card() const override;

  void setDc(double dc) { dc_ = dc; }
  double dc() const { return dc_; }
  NodeId pos() const { return pos_; }
  NodeId neg() const { return neg_; }

 private:
  NodeId pos_, neg_;
  double dc_;
};

}  // namespace crl::spice
