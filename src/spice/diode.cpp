#include "spice/diode.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace crl::spice {

DiodeEval evalDiode(const DiodeModel& m, double v) {
  DiodeEval e;
  const double nvt = m.n * m.vt;
  if (v <= m.vExp) {
    const double ex = std::exp(v / nvt);
    e.id = m.is * (ex - 1.0);
    e.gd = m.is * ex / nvt;
  } else {
    // Linear continuation of the exponential beyond vExp (overflow guard).
    const double ex = std::exp(m.vExp / nvt);
    const double idExp = m.is * (ex - 1.0);
    const double gdExp = m.is * ex / nvt;
    e.id = idExp + gdExp * (v - m.vExp);
    e.gd = gdExp;
  }
  return e;
}

Diode::Diode(std::string name, NodeId a, NodeId c, DiodeModel model)
    : Device(std::move(name)), a_(a), c_(c), model_(model) {
  if (model_.is <= 0.0) throw std::invalid_argument("Diode: non-positive Is");
  if (model_.n <= 0.0) throw std::invalid_argument("Diode: non-positive emission coeff");
  if (model_.cj0 < 0.0) throw std::invalid_argument("Diode: negative junction cap");
}

void Diode::stampLarge(RealStamper& s, const SimContext& ctx) const {
  const double v = vd(ctx.x);
  const DiodeEval e = evalDiode(model_, v);
  // Norton companion of the linearized junction: i = gd*v + (id - gd*v).
  const double ieq = e.id - e.gd * v;
  s.addY(a_, a_, e.gd);
  s.addY(c_, c_, e.gd);
  s.addY(a_, c_, -e.gd);
  s.addY(c_, a_, -e.gd);
  s.addNodeRhs(a_, -ieq);
  s.addNodeRhs(c_, ieq);

  if (ctx.transient && model_.cj0 > 0.0) {
    // Trapezoidal companion of the junction capacitance.
    const double geq = 2.0 * model_.cj0 / ctx.dt;
    const double vPrev = ctx.state[0];
    const double iPrev = ctx.state[1];
    const double ic = geq * vPrev + iPrev;
    s.addY(a_, a_, geq);
    s.addY(c_, c_, geq);
    s.addY(a_, c_, -geq);
    s.addY(c_, a_, -geq);
    s.addNodeRhs(a_, ic);
    s.addNodeRhs(c_, -ic);
  }
}

void Diode::stampAc(ComplexStamper& s, const AcContext& ctx) const {
  const DiodeEval e = evalDiode(model_, vd(ctx.xop));
  const std::complex<double> y(e.gd, ctx.omega * model_.cj0);
  s.addY(a_, a_, y);
  s.addY(c_, c_, y);
  s.addY(a_, c_, -y);
  s.addY(c_, a_, -y);
}

void Diode::updateTranState(const SimContext& ctx, double* state) const {
  if (model_.cj0 <= 0.0) return;
  const double vNew = vd(ctx.x);
  const double geq = 2.0 * model_.cj0 / ctx.dt;
  const double iNew = geq * (vNew - state[0]) - state[1];
  state[0] = vNew;
  state[1] = iNew;
}

void Diode::initTranState(const linalg::Vec& xop, double* state) const {
  state[0] = vd(xop);
  state[1] = 0.0;
}

std::string Diode::card() const {
  std::ostringstream os;
  os << name() << ' ' << a_ << ' ' << c_ << " D Is=" << model_.is << " n=" << model_.n;
  return os.str();
}

}  // namespace crl::spice
