#pragma once
// Netlist representation for the MNA circuit simulator.
//
// A Netlist owns a set of Devices connected between named nodes. Node 0 is
// ground. Modified nodal analysis unknowns are the non-ground node voltages
// followed by one branch current per voltage-source-like device (V sources,
// inductors). finalize() freezes the topology and assigns branch indices.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/device.h"

namespace crl::spice {

class Netlist {
 public:
  Netlist();

  /// Get-or-create a node by name. "0" and "gnd" map to ground.
  NodeId node(const std::string& name);
  /// Look up an existing node; throws if unknown.
  NodeId findNode(const std::string& name) const;
  const std::string& nodeName(NodeId id) const;

  /// Number of nodes including ground.
  std::size_t nodeCount() const { return names_.size(); }

  /// Add a device; returns a non-owning pointer for later inspection.
  template <typename D, typename... Args>
  D* add(Args&&... args) {
    static_assert(std::is_base_of_v<Device, D>);
    auto dev = std::make_unique<D>(std::forward<Args>(args)...);
    D* raw = dev.get();
    devices_.push_back(std::move(dev));
    finalized_ = false;
    return raw;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }
  Device* device(std::size_t i) { return devices_[i].get(); }
  Device* findDevice(const std::string& name) const;

  /// Assign branch/state indices; must be called (or is called lazily by the
  /// analyses) after the last device is added.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Total MNA unknowns: (nodeCount()-1) node voltages + branch currents.
  std::size_t unknownCount() const;
  std::size_t branchCount() const { return branchCount_; }
  /// Total transient-history doubles across devices.
  std::size_t tranStateCount() const { return tranStateCount_; }

  /// Unknown index of a node voltage (node must not be ground).
  std::size_t nodeIndex(NodeId n) const;
  /// Voltage of a node given an unknown vector (0 for ground).
  static double voltageOf(const linalg::Vec& x, NodeId n) {
    return n == kGround ? 0.0 : x[static_cast<std::size_t>(n) - 1];
  }

  /// Human-readable netlist dump (SPICE-like cards).
  std::string toString() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> byName_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::size_t branchCount_ = 0;
  std::size_t tranStateCount_ = 0;
  bool finalized_ = false;
};

}  // namespace crl::spice
