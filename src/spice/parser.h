#pragma once
// SPICE deck text parser and writer.
//
// The paper's design environment (Fig. 2) carries the circuit as a netlist
// that the data-processing module rewrites after every agent action. This
// module provides that textual substrate: it parses a SPICE-like deck into
// a spice::Netlist and serializes a Netlist back into a parseable deck.
//
// Supported cards (case-insensitive, `*` comments, `;`/`$` inline comments,
// `+` continuation lines):
//
//   Rxxx n1 n2 value
//   Cxxx n1 n2 value
//   Lxxx n1 n2 value
//   Vxxx n+ n- [DC] value [AC mag] [SIN(amp freq [phase])]
//   Ixxx n+ n- [DC] value
//   Mxxx d g s [b] model [W=value] [NF=n]     (bulk, if given, must equal s)
//   Dxxx anode cathode model
//   Xxxx n1 n2 ... subcktname [param=value ...]
//   .subckt name port1 port2 ... [param=default ...] / .ends
//   .model name NMOS|PMOS|GAN|D ([param=value ...])
//   .param name=expr [name=expr ...]
//   .include "file"
//   .title any text        (also taken from the first deck line)
//   .end
//
// Values accept engineering suffixes ("2.5k", "10pF", "1meg") and `{expr}`
// or 'expr' parameter expressions evaluated against the `.param` bindings.
//
// Subcircuits expand hierarchically at parse time: internal nodes and device
// names gain an `xinst.` prefix, ports bind to the caller's nets, ground is
// global, and parameters resolve deck < .subckt defaults < X-card overrides.

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/diode.h"
#include "spice/gan.h"
#include "spice/mosfet.h"
#include "spice/netlist.h"
#include "util/expr.h"

namespace crl::spice {

/// Error raised on malformed decks; carries the 1-based source line.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + what), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct DeckOptions {
  /// Standard SPICE treats the first line as the deck title.
  bool firstLineIsTitle = true;
  /// Base directory for `.include` resolution (empty: current directory).
  std::string includeDir;
  /// Pre-seeded `.param` bindings (callers can inject sweep variables).
  util::VarMap params;
};

/// Result of parsing a deck: the netlist plus all named entities defined by
/// directives, in deck order.
struct Deck {
  std::string title;
  std::unique_ptr<Netlist> netlist;
  util::VarMap params;
  std::unordered_map<std::string, MosModel> mosModels;
  std::unordered_map<std::string, GanModel> ganModels;
  std::unordered_map<std::string, DiodeModel> diodeModels;
  std::vector<std::string> warnings;
};

/// Parse a deck from text / from a file. Throws ParseError.
Deck parseDeck(const std::string& text, const DeckOptions& opts = {});
Deck parseDeckFile(const std::string& path, DeckOptions opts = {});

/// Parse one engineering-notation value token ("2.5k", "10pF"). Throws
/// ParseError with line 0 on malformed input.
double parseValue(const std::string& token);

/// Serialize a netlist into a deck that parseDeck() accepts and that
/// reconstructs an equivalent circuit (same topology, same element values,
/// shared .model cards for transistors with identical models).
std::string writeDeck(const Netlist& net, const std::string& title = "crl deck");

}  // namespace crl::spice
