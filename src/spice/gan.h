#pragma once
// Angelov-style behavioural GaN HEMT model for the RF power-amplifier
// benchmark:
//
//   Id = Ipk * (1 + tanh(P1 * (Vgs - Vpk))) * tanh(alpha * Vds) * (1 + lambda Vds)
//
// with Ipk proportional to the effective gate width W * nf. This captures the
// transfer-curve saturation and knee behaviour that set output power and
// drain efficiency in the PA experiments. The device is symmetric (drain /
// source swap for negative Vds) and has geometry-proportional Cgs / Cgd.

#include "spice/device.h"

namespace crl::spice {

struct GanModel {
  double ipkPerWidth = 500.0;  ///< peak-current scale per metre of gate width [A/m]
  double vpk = -1.2;           ///< gate voltage of peak transconductance [V]
  double p1 = 1.4;             ///< tanh steepness of the transfer curve [1/V]
  double alpha = 1.1;          ///< knee sharpness of the output curve [1/V]
  double lambda = 0.004;       ///< output-conductance slope [1/V]
  double cgsPerWidth = 1.1e-9; ///< gate-source capacitance per width [F/m]
  double cgdPerWidth = 0.15e-9;///< gate-drain capacitance per width [F/m]
};

struct GanEval {
  double id = 0.0;
  double gm = 0.0;   ///< d id / d vgs
  double gds = 0.0;  ///< d id / d vds
};

GanEval evalGan(const GanModel& m, double ipk, double vgs, double vds);

class GanHemt : public Device {
 public:
  GanHemt(std::string name, NodeId d, NodeId g, NodeId s, GanModel model,
          double widthPerFinger, int fingers);

  std::string_view kind() const override { return "ganhemt"; }
  std::vector<NodeId> terminals() const override { return {d_, g_, s_}; }
  int tranStateSize() const override { return 4; }
  void stampLarge(RealStamper& s, const SimContext& ctx) const override;
  void stampAc(ComplexStamper& s, const AcContext& ctx) const override;
  void updateTranState(const SimContext& ctx, double* state) const override;
  void initTranState(const linalg::Vec& xop, double* state) const override;
  std::string card() const override;

  void setGeometry(double widthPerFinger, int fingers);
  double width() const { return w_; }
  int fingers() const { return nf_; }
  double effectiveWidth() const { return w_ * nf_; }
  const GanModel& model() const { return model_; }

  GanEval evalAt(const linalg::Vec& x) const;
  double cgs() const { return cgs_; }
  double cgd() const { return cgd_; }

  NodeId drain() const { return d_; }
  NodeId gate() const { return g_; }
  NodeId source() const { return s_; }

 private:
  GanEval orientedEval(const linalg::Vec& x, NodeId& dEff, NodeId& sEff) const;

  NodeId d_, g_, s_;
  GanModel model_;
  double w_;
  int nf_;
  double cgs_ = 0.0;
  double cgd_ = 0.0;
};

}  // namespace crl::spice
