#include "spice/tran.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/solve.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace crl::spice {

TranAnalysis::TranAnalysis(Netlist& net, TranOptions opt) : net_(net), opt_(opt) {
  if (!net_.finalized()) net_.finalize();
  solver_.select(linalg::chooseSolverKind(net_.unknownCount(), opt_.solver));
}

bool TranAnalysis::newtonStep(linalg::Vec& x, double time, double dt,
                              const std::vector<double>& state, int* iterations) {
  const std::size_t n = net_.unknownCount();
  const std::size_t nNodes = net_.nodeCount() - 1;

  for (int iter = 0; iter < opt_.maxNewtonIterations; ++iter) {
    ++*iterations;
    solver_.beginAssembly(n, rhs_);
    RealStamper stamper(solver_, rhs_);
    for (const auto& dev : net_.devices()) {
      SimContext ctx{x};
      ctx.time = time;
      ctx.dt = dt;
      ctx.transient = true;
      ctx.gmin = opt_.gmin;
      ctx.state = state.data() + dev->stateOffset();
      dev->stampLarge(stamper, ctx);
    }

    try {
      solver_.factorAssembled();
    } catch (const std::runtime_error&) {
      return false;
    }
    solver_.solveInto(rhs_, xNew_);

    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      double delta = xNew_[i] - x[i];
      if (i < nNodes) {
        if (delta > opt_.stepLimit) delta = opt_.stepLimit;
        if (delta < -opt_.stepLimit) delta = -opt_.stepLimit;
        const double tol = opt_.vAbsTol + opt_.vRelTol * std::fabs(x[i]);
        if (std::fabs(delta) > tol) converged = false;
      }
      x[i] += delta;
    }
    if (converged && iter > 0) return true;
  }
  return false;
}

TranResult TranAnalysis::run(double dt, double tStop,
                             const std::function<void(double, const linalg::Vec&)>& callback,
                             bool record) {
  if (dt <= 0.0 || tStop <= 0.0) throw std::invalid_argument("TranAnalysis: bad times");
  obs::TraceSpan span("spice.tran.run", "spice");
  static auto& runs = obs::counter("spice.tran.runs");
  static auto& timesteps = obs::counter("spice.tran.timesteps");
  static auto& newtonIters = obs::counter("spice.tran.newton_iters");
  static auto& runSeconds = obs::histogram("spice.tran.run_seconds");
  runs.add();
  obs::ScopedTimer timer(runSeconds);
  TranResult result;

  DcOptions dcOpt = opt_.dcOptions;
  // The transient backend policy covers the initial operating point too,
  // unless the caller pinned the DC stage separately.
  if (dcOpt.solver == linalg::SolverChoice::Auto) dcOpt.solver = opt_.solver;
  DcAnalysis dc(net_, dcOpt);
  DcResult op = dc.solve();
  if (!op.converged) return result;

  std::vector<double> state(net_.tranStateCount(), 0.0);
  for (const auto& dev : net_.devices()) {
    if (dev->tranStateSize() > 0) dev->initTranState(op.x, state.data() + dev->stateOffset());
  }

  linalg::Vec x = op.x;
  if (record) {
    result.time.push_back(0.0);
    result.solution.push_back(x);
  }
  if (callback) callback(0.0, x);

  const int steps = static_cast<int>(std::llround(tStop / dt));
  for (int k = 1; k <= steps; ++k) {
    const double t = k * dt;
    const int itersBefore = result.newtonIterations;
    const bool stepOk = newtonStep(x, t, dt, state, &result.newtonIterations);
    newtonIters.add(
        static_cast<std::uint64_t>(result.newtonIterations - itersBefore));
    if (!stepOk) return result;
    timesteps.add();
    // Commit integrator history after a converged step.
    for (const auto& dev : net_.devices()) {
      if (dev->tranStateSize() > 0) {
        SimContext ctx{x};
        ctx.time = t;
        ctx.dt = dt;
        ctx.transient = true;
        dev->updateTranState(ctx, state.data() + dev->stateOffset());
      }
    }
    if (record) {
      result.time.push_back(t);
      result.solution.push_back(x);
    }
    if (callback) callback(t, x);
  }
  result.converged = true;
  return result;
}

std::vector<std::complex<double>> fourierCoefficients(const std::vector<double>& samples,
                                                      int nHarmonics) {
  if (samples.empty() || nHarmonics < 1)
    throw std::invalid_argument("fourierCoefficients: bad input");
  const std::size_t n = samples.size();
  std::vector<std::complex<double>> coeffs(static_cast<std::size_t>(nHarmonics) + 1);
  for (int k = 0; k <= nHarmonics; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double angle = -2.0 * std::numbers::pi * k * static_cast<double>(i) /
                           static_cast<double>(n);
      acc += samples[i] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    acc /= static_cast<double>(n);
    if (k >= 1) acc *= 2.0;  // one-sided peak amplitude
    coeffs[static_cast<std::size_t>(k)] = acc;
  }
  return coeffs;
}

}  // namespace crl::spice
