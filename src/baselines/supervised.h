#pragma once
// Supervised-learning baseline [8]: learn the static inverse mapping from
// desired specifications to device parameters with an FCNN, then size a
// circuit in one inference step. Suffers the approximation-error accuracy
// ceiling the paper describes (no iterative refinement).

#include <memory>

#include "circuit/benchmark.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "util/rng.h"

namespace crl::baselines {

struct SupervisedConfig {
  int datasetSize = 2000;
  int epochs = 60;
  int batchSize = 64;
  double learningRate = 1e-3;
  std::vector<std::size_t> hidden = {64, 64};
  circuit::Fidelity fidelity = circuit::Fidelity::Fine;
};

class SupervisedSizer {
 public:
  SupervisedSizer(circuit::Benchmark& bench, SupervisedConfig cfg, util::Rng rng);

  /// Generate the dataset (random sizings -> measured specs) and fit the
  /// inverse network. Returns the final training MSE.
  double train();

  /// One-step inference: predicted parameter vector for a target spec group.
  std::vector<double> predict(const std::vector<double>& target) const;

  /// Predict, simulate, and check whether the target is actually met.
  bool designMeets(const std::vector<double>& target);

  long datasetSimulations() const { return datasetSims_; }

 private:
  circuit::Benchmark& bench_;
  SupervisedConfig cfg_;
  util::Rng rng_;
  std::unique_ptr<nn::Mlp> net_;
  long datasetSims_ = 0;
};

}  // namespace crl::baselines
