#pragma once
// Optimization-based baselines of Sec. 4: Genetic Algorithm [6] and Bayesian
// Optimization [5]. Both maximize a scalar objective of the measured specs
// (Eq. (1)'s r for P2S; the FoM for FoM optimization) directly on the design
// grid, one circuit simulation per candidate, with no training phase.

#include <functional>
#include <vector>

#include "circuit/benchmark.h"
#include "util/rng.h"

namespace crl::baselines {

/// Objective over raw measured specs; larger is better. P2S uses Eq. (1)'s
/// r (<= 0, success at 0); FoM uses Pout + 3*eff.
using Objective = std::function<double(const std::vector<double>& specs)>;

struct OptResult {
  std::vector<double> bestParams;
  double bestObjective = -1e18;
  std::vector<double> curve;  ///< best-so-far objective per simulation
  int evaluations = 0;
  bool reachedTarget = false;   ///< objective >= 0 observed (P2S success)
  int stepsToTarget = -1;       ///< simulation count at first success
};

struct GaConfig {
  int population = 24;
  int generations = 16;
  int elites = 2;
  int tournament = 3;
  double crossoverRate = 0.9;
  double mutationSigma = 0.15;   ///< in normalized [0,1] parameter units
  double mutationRate = 0.25;
  int maxEvaluations = 400;      ///< ~ the paper's observed GA budget
  bool stopAtTarget = true;      ///< stop when objective >= 0 (P2S)
};

class GeneticAlgorithm {
 public:
  explicit GeneticAlgorithm(GaConfig cfg = {}) : cfg_(cfg) {}

  OptResult optimize(circuit::Benchmark& bench, circuit::Fidelity fidelity,
                     const Objective& objective, util::Rng& rng) const;

 private:
  GaConfig cfg_;
};

struct BoConfig {
  int initialSamples = 12;
  int iterations = 88;           ///< total budget ~100 sims (paper's BO)
  int candidatePool = 400;       ///< random acquisition maximization
  double lengthScale = 0.35;     ///< SE kernel, normalized parameter units
  double signalVariance = 1.0;
  double noiseVariance = 1e-4;
  double exploration = 0.01;     ///< EI xi
  bool stopAtTarget = true;
};

class BayesianOptimization {
 public:
  explicit BayesianOptimization(BoConfig cfg = {}) : cfg_(cfg) {}

  OptResult optimize(circuit::Benchmark& bench, circuit::Fidelity fidelity,
                     const Objective& objective, util::Rng& rng) const;

 private:
  BoConfig cfg_;
};

/// Eq. (1) objective for a fixed target spec group.
Objective p2sObjective(const circuit::SpecSpace& specs, std::vector<double> target);
/// Normalized FoM objective (P-Pr)/(P+Pr) + 3 (E-Er)/(E+Er)
/// ([eff, pout] spec order), matching envs::fomOf.
Objective fomObjective(double pRef = 2.5, double eRef = 0.55);

}  // namespace crl::baselines
