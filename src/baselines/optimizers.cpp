#include "baselines/optimizers.h"

#include <algorithm>
#include <cmath>

#include "linalg/solve.h"

namespace crl::baselines {

namespace {

/// Evaluation bookkeeping shared by both optimizers.
struct Evaluator {
  circuit::Benchmark& bench;
  circuit::Fidelity fidelity;
  const Objective& objective;
  OptResult& result;
  const bool stopAtTarget;

  double operator()(const std::vector<double>& params) {
    auto m = bench.measureAt(params, fidelity);
    const double score = objective(m.specs);
    ++result.evaluations;
    if (score > result.bestObjective) {
      result.bestObjective = score;
      result.bestParams = bench.currentParams();
    }
    result.curve.push_back(result.bestObjective);
    if (!result.reachedTarget && score >= 0.0) {
      result.reachedTarget = true;
      result.stepsToTarget = result.evaluations;
    }
    return score;
  }

  bool shouldStop() const { return stopAtTarget && result.reachedTarget; }
};

}  // namespace

Objective p2sObjective(const circuit::SpecSpace& specs, std::vector<double> target) {
  return [&specs, target = std::move(target)](const std::vector<double>& achieved) {
    return specs.reward(achieved, target);
  };
}

Objective fomObjective(double pRef, double eRef) {
  return [pRef, eRef](const std::vector<double>& specs) {
    const double p = specs[1], e = specs[0];
    return (p - pRef) / (p + pRef) + 3.0 * (e - eRef) / (e + eRef);
  };
}

OptResult GeneticAlgorithm::optimize(circuit::Benchmark& bench,
                                     circuit::Fidelity fidelity,
                                     const Objective& objective,
                                     util::Rng& rng) const {
  const auto& space = bench.designSpace();
  OptResult result;
  Evaluator eval{bench, fidelity, objective, result, cfg_.stopAtTarget};

  struct Individual {
    std::vector<double> genome;  ///< normalized [0,1] parameters
    double fitness = -1e18;
  };

  auto decode = [&space](const std::vector<double>& u) { return space.denormalize(u); };
  auto randomGenome = [&space, &rng]() {
    std::vector<double> u(space.size());
    for (auto& v : u) v = rng.uniform();
    return u;
  };

  std::vector<Individual> pop(static_cast<std::size_t>(cfg_.population));
  for (auto& ind : pop) {
    ind.genome = randomGenome();
    ind.fitness = eval(decode(ind.genome));
    if (eval.shouldStop() || result.evaluations >= cfg_.maxEvaluations) return result;
  }

  auto tournamentPick = [&]() -> const Individual& {
    const Individual* best = &pop[static_cast<std::size_t>(
        rng.randint(0, cfg_.population - 1))];
    for (int k = 1; k < cfg_.tournament; ++k) {
      const Individual& c =
          pop[static_cast<std::size_t>(rng.randint(0, cfg_.population - 1))];
      if (c.fitness > best->fitness) best = &c;
    }
    return *best;
  };

  for (int gen = 0; gen < cfg_.generations; ++gen) {
    std::sort(pop.begin(), pop.end(),
              [](const Individual& a, const Individual& b) { return a.fitness > b.fitness; });
    std::vector<Individual> next(pop.begin(), pop.begin() + cfg_.elites);

    while (static_cast<int>(next.size()) < cfg_.population) {
      Individual child;
      const Individual& pa = tournamentPick();
      const Individual& pb = tournamentPick();
      child.genome.resize(space.size());
      for (std::size_t i = 0; i < space.size(); ++i) {
        // Blend crossover followed by Gaussian mutation, clipped to [0,1].
        double g = rng.chance(cfg_.crossoverRate)
                       ? pa.genome[i] + rng.uniform() * (pb.genome[i] - pa.genome[i])
                       : pa.genome[i];
        if (rng.chance(cfg_.mutationRate)) g += rng.normal(0.0, cfg_.mutationSigma);
        child.genome[i] = std::clamp(g, 0.0, 1.0);
      }
      child.fitness = eval(decode(child.genome));
      next.push_back(std::move(child));
      if (eval.shouldStop() || result.evaluations >= cfg_.maxEvaluations) return result;
    }
    pop = std::move(next);
  }
  return result;
}

namespace {

double seKernel(const std::vector<double>& a, const std::vector<double>& b,
                double lengthScale, double signalVariance) {
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return signalVariance * std::exp(-0.5 * sq / (lengthScale * lengthScale));
}

double normalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
double normalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
}

}  // namespace

OptResult BayesianOptimization::optimize(circuit::Benchmark& bench,
                                         circuit::Fidelity fidelity,
                                         const Objective& objective,
                                         util::Rng& rng) const {
  const auto& space = bench.designSpace();
  OptResult result;
  Evaluator eval{bench, fidelity, objective, result, cfg_.stopAtTarget};

  std::vector<std::vector<double>> xs;  // normalized sample locations
  std::vector<double> ys;

  auto sampleRandom = [&]() {
    std::vector<double> u(space.size());
    for (auto& v : u) v = rng.uniform();
    return u;
  };
  auto evaluateAt = [&](const std::vector<double>& u) {
    double y = eval(space.denormalize(u));
    xs.push_back(u);
    ys.push_back(y);
    return y;
  };

  for (int i = 0; i < cfg_.initialSamples; ++i) {
    evaluateAt(sampleRandom());
    if (eval.shouldStop()) return result;
  }

  for (int it = 0; it < cfg_.iterations; ++it) {
    const std::size_t n = xs.size();
    // GP posterior via Cholesky of K + sigma_n^2 I.
    linalg::Mat k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double v = seKernel(xs[i], xs[j], cfg_.lengthScale, cfg_.signalVariance);
        k(i, j) = v;
        k(j, i) = v;
      }
      k(i, i) += cfg_.noiseVariance;
    }
    // Center targets for a zero-mean GP.
    double yMean = 0.0;
    for (double y : ys) yMean += y;
    yMean /= static_cast<double>(n);
    linalg::Vec centered(n);
    for (std::size_t i = 0; i < n; ++i) centered[i] = ys[i] - yMean;

    linalg::Cholesky chol(k);
    linalg::Vec alpha = chol.solve(centered);
    const double fBest = *std::max_element(ys.begin(), ys.end());

    // Expected-improvement maximization over a random candidate pool.
    std::vector<double> bestCand;
    double bestEi = -1.0;
    for (int c = 0; c < cfg_.candidatePool; ++c) {
      std::vector<double> u = sampleRandom();
      linalg::Vec kStar(n);
      for (std::size_t i = 0; i < n; ++i)
        kStar[i] = seKernel(u, xs[i], cfg_.lengthScale, cfg_.signalVariance);
      double mu = yMean + linalg::dot(kStar, alpha);
      linalg::Vec v = chol.solveLower(kStar);
      double var = cfg_.signalVariance - linalg::dot(v, v);
      double sd = std::sqrt(std::max(var, 1e-12));
      double z = (mu - fBest - cfg_.exploration) / sd;
      double ei = (mu - fBest - cfg_.exploration) * normalCdf(z) + sd * normalPdf(z);
      if (ei > bestEi) {
        bestEi = ei;
        bestCand = std::move(u);
      }
    }
    evaluateAt(bestCand);
    if (eval.shouldStop()) return result;
  }
  return result;
}

}  // namespace crl::baselines
