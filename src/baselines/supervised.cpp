#include "baselines/supervised.h"

namespace crl::baselines {

SupervisedSizer::SupervisedSizer(circuit::Benchmark& bench, SupervisedConfig cfg,
                                 util::Rng rng)
    : bench_(bench), cfg_(cfg), rng_(rng) {
  std::vector<std::size_t> dims;
  dims.push_back(bench_.specSpace().size());
  for (std::size_t h : cfg_.hidden) dims.push_back(h);
  dims.push_back(bench_.designSpace().size());
  // Sigmoid output: normalized parameters live in [0, 1].
  net_ = std::make_unique<nn::Mlp>(dims, rng_, nn::Activation::Tanh,
                                   nn::Activation::Sigmoid);
}

double SupervisedSizer::train() {
  // Dataset: sample sizings, measure specs, learn specs -> sizing.
  std::vector<std::vector<double>> specIn;
  std::vector<std::vector<double>> paramOut;
  while (static_cast<int>(specIn.size()) < cfg_.datasetSize) {
    auto p = bench_.designSpace().sample(rng_);
    auto m = bench_.measureAt(p, cfg_.fidelity);
    ++datasetSims_;
    if (!m.valid) continue;
    specIn.push_back(bench_.specSpace().normalize(m.specs));
    paramOut.push_back(bench_.designSpace().normalize(p));
  }

  nn::Adam opt(net_->parameters(), {.lr = cfg_.learningRate});
  const std::size_t n = specIn.size();
  double lastLoss = 0.0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    auto perm = rng_.permutation(n);
    double epochLoss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += cfg_.batchSize) {
      const std::size_t end = std::min(start + static_cast<std::size_t>(cfg_.batchSize), n);
      linalg::Mat x(end - start, bench_.specSpace().size());
      linalg::Mat y(end - start, bench_.designSpace().size());
      for (std::size_t r = start; r < end; ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) x(r - start, c) = specIn[perm[r]][c];
        for (std::size_t c = 0; c < y.cols(); ++c) y(r - start, c) = paramOut[perm[r]][c];
      }
      opt.zeroGrad();
      nn::Tensor pred = net_->forward(nn::Tensor(x));
      nn::Tensor diff = nn::sub(pred, nn::Tensor(y));
      nn::Tensor loss = nn::mean(nn::mul(diff, diff));
      nn::backward(loss);
      opt.step();
      epochLoss += loss.item();
      ++batches;
    }
    lastLoss = epochLoss / static_cast<double>(batches);
  }
  return lastLoss;
}

std::vector<double> SupervisedSizer::predict(const std::vector<double>& target) const {
  auto normTarget = bench_.specSpace().normalize(target);
  nn::Tensor out = net_->forward(nn::Tensor::row(normTarget));
  std::vector<double> u(out.cols());
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = out.value()(0, i);
  return bench_.designSpace().denormalize(u);
}

bool SupervisedSizer::designMeets(const std::vector<double>& target) {
  auto p = predict(target);
  auto m = bench_.measureAt(p, cfg_.fidelity);
  return m.valid && bench_.specSpace().satisfied(m.specs, target);
}

}  // namespace crl::baselines
