#include "core/policies.h"

#include <stdexcept>

#include "nn/arena.h"

namespace crl::core {

const char* policyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::GatFc: return "GAT-FC";
    case PolicyKind::GcnFc: return "GCN-FC";
    case PolicyKind::BaselineA: return "Baseline-A";
    case PolicyKind::BaselineB: return "Baseline-B";
    case PolicyKind::BaselineBGat: return "Baseline-B-GAT";
  }
  return "?";
}

GnnFcTower::GnnFcTower(const PolicyConfig& cfg, gnn::GraphEncoder::Variant variant,
                       bool useGraph, bool useSpecs, std::size_t outDim,
                       util::Rng& rng)
    : useGraph_(useGraph), useSpecs_(useSpecs) {
  std::size_t trunkIn = 0;
  if (useGraph_) {
    graphEnc_ = std::make_unique<gnn::GraphEncoder>(
        gnn::GraphEncoder::Config{variant, cfg.graphFeatureDim, cfg.gnnHidden,
                                  cfg.gnnLayers, cfg.gatHeads},
        rng);
    trunkIn += cfg.gnnHidden;
  }
  if (useSpecs_) {
    // FCNN over [intermediate specs ++ desired specs].
    specNet_ = std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{2 * cfg.numSpecs, cfg.specHidden, cfg.specHidden},
        rng, nn::Activation::Tanh, nn::Activation::Tanh);
    trunkIn += cfg.specHidden;
  }
  if (!useGraph_) {
    // Baseline A observes the raw parameter vector instead of the graph.
    paramNet_ = std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{cfg.numParams, cfg.specHidden, cfg.specHidden}, rng,
        nn::Activation::Tanh, nn::Activation::Tanh);
    trunkIn += cfg.specHidden;
  }
  trunk_ = std::make_unique<nn::Mlp>(
      std::vector<std::size_t>{trunkIn, cfg.trunkHidden, outDim}, rng,
      nn::Activation::Tanh, nn::Activation::None);
}

nn::Tensor GnnFcTower::forward(const rl::Observation& obs, const linalg::Mat& normAdj,
                               const linalg::Mat& mask) const {
  nn::Tensor features;
  bool first = true;
  if (useGraph_) {
    features = graphEnc_->encode(obs.nodeFeatures, normAdj, mask);
    first = false;
  } else {
    features = paramNet_->forward(nn::Tensor::row(obs.paramsNorm));
    first = false;
  }
  if (useSpecs_) {
    std::vector<double> specIn = obs.specNow;
    specIn.insert(specIn.end(), obs.specTarget.begin(), obs.specTarget.end());
    nn::Tensor specEmb = specNet_->forward(nn::Tensor::row(specIn));
    features = first ? specEmb : nn::concatCols(features, specEmb);
  }
  return trunk_->forward(features);
}

nn::Tensor GnnFcTower::forwardBatch(const std::vector<rl::Observation>& obs,
                                    const linalg::Mat& normAdj,
                                    const linalg::Mat& mask) const {
  const std::size_t batch = obs.size();
  nn::Tensor features;
  if (useGraph_) {
    const std::size_t nodes = obs[0].nodeFeatures.rows();
    const std::size_t dim = obs[0].nodeFeatures.cols();
    // Staging buffers come from the update's tape arena when one is
    // recording (pooledMat is a fresh Mat otherwise); encodeBatch moves
    // them into graph nodes, which reclaim them at the arena reset.
    linalg::Mat stacked = nn::pooledMat(batch * nodes, dim);
    for (std::size_t i = 0; i < batch; ++i)
      for (std::size_t r = 0; r < nodes; ++r)
        for (std::size_t c = 0; c < dim; ++c)
          stacked(i * nodes + r, c) = obs[i].nodeFeatures(r, c);
    features = graphEnc_->encodeBatch(std::move(stacked), batch, normAdj, mask);
  } else {
    const std::size_t numParams = obs[0].paramsNorm.size();
    linalg::Mat params = nn::pooledMat(batch, numParams);
    for (std::size_t i = 0; i < batch; ++i)
      for (std::size_t c = 0; c < numParams; ++c) params(i, c) = obs[i].paramsNorm[c];
    features = paramNet_->forward(nn::Tensor(std::move(params)));
  }
  if (useSpecs_) {
    const std::size_t numSpecs = obs[0].specNow.size();
    linalg::Mat specs = nn::pooledMat(batch, 2 * numSpecs);
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t c = 0; c < numSpecs; ++c) {
        specs(i, c) = obs[i].specNow[c];
        specs(i, numSpecs + c) = obs[i].specTarget[c];
      }
    }
    nn::Tensor specEmb = specNet_->forward(nn::Tensor(std::move(specs)));
    features = nn::concatCols(features, specEmb);
  }
  return trunk_->forward(features);
}

bool GnnFcTower::adaptLegacyParams(const std::vector<linalg::Mat>& in,
                                   std::size_t& pos,
                                   std::vector<linalg::Mat>& out) const {
  if (graphEnc_ && !graphEnc_->adaptLegacyParams(in, pos, out)) return false;
  // The spec/param/trunk MLPs never changed layout — copy their mats through
  // verbatim (parameters() order: specNet, paramNet, trunk).
  std::size_t passthrough = 0;
  if (specNet_) passthrough += specNet_->parameters().size();
  if (paramNet_) passthrough += paramNet_->parameters().size();
  passthrough += trunk_->parameters().size();
  if (pos + passthrough > in.size()) return false;
  for (std::size_t i = 0; i < passthrough; ++i) out.push_back(in[pos++]);
  return true;
}

std::vector<nn::Tensor> GnnFcTower::parameters() const {
  std::vector<nn::Tensor> out;
  auto append = [&out](const std::vector<nn::Tensor>& ps) {
    out.insert(out.end(), ps.begin(), ps.end());
  };
  if (graphEnc_) append(graphEnc_->parameters());
  if (specNet_) append(specNet_->parameters());
  if (paramNet_) append(paramNet_->parameters());
  append(trunk_->parameters());
  return out;
}

MultimodalPolicy::MultimodalPolicy(PolicyKind kind, PolicyConfig cfg,
                                   const linalg::Mat& normAdj, const linalg::Mat& mask,
                                   util::Rng& rng)
    : kind_(kind), cfg_(cfg), name_(policyKindName(kind)), normAdj_(normAdj),
      mask_(mask) {
  const bool useGraph = kind != PolicyKind::BaselineA;
  const bool useSpecs = kind == PolicyKind::GatFc || kind == PolicyKind::GcnFc ||
                        kind == PolicyKind::BaselineA;
  const auto variant = (kind == PolicyKind::GatFc || kind == PolicyKind::BaselineBGat)
                           ? gnn::GraphEncoder::Variant::Gat
                           : gnn::GraphEncoder::Variant::Gcn;
  actor_ = std::make_unique<GnnFcTower>(cfg_, variant, useGraph, useSpecs,
                                        3 * cfg_.numParams, rng);
  critic_ = std::make_unique<GnnFcTower>(cfg_, variant, useGraph, useSpecs, 1, rng);
}

rl::PolicyOutput MultimodalPolicy::forward(const rl::Observation& obs) const {
  rl::PolicyOutput out;
  nn::Tensor flat = actor_->forward(obs, normAdj_, mask_);  // 1 x 3M
  out.logits = nn::reshape(flat, cfg_.numParams, 3);
  out.value = critic_->forward(obs, normAdj_, mask_);
  return out;
}

void MultimodalPolicy::towerOutputs(const std::vector<rl::Observation>& obs,
                                    nn::Tensor* actorFlat, nn::Tensor* values) const {
  *actorFlat = actor_->forwardBatch(obs, normAdj_, mask_);
  *values = critic_->forwardBatch(obs, normAdj_, mask_);
}

std::vector<rl::PolicyOutput> MultimodalPolicy::forwardBatch(
    const std::vector<rl::Observation>& obs) const {
  if (obs.empty()) return {};
  if (obs.size() == 1) return {forward(obs[0])};

  nn::Tensor actorFlat, values;
  towerOutputs(obs, &actorFlat, &values);

  std::vector<rl::PolicyOutput> out(obs.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    out[i].logits =
        nn::reshape(nn::sliceRows(actorFlat, i, 1), cfg_.numParams, 3);
    out[i].value = nn::sliceRows(values, i, 1);
  }
  return out;
}

rl::BatchedPolicyOutput MultimodalPolicy::forwardBatchStacked(
    const std::vector<rl::Observation>& obs) const {
  if (obs.empty())
    throw std::invalid_argument("forwardBatchStacked: empty batch");
  rl::BatchedPolicyOutput out;
  if (obs.size() == 1) {
    rl::PolicyOutput one = forward(obs[0]);
    out.logits = one.logits;
    out.values = one.value;
    return out;
  }
  nn::Tensor actorFlat, values;
  towerOutputs(obs, &actorFlat, &values);
  // Row-major reshape: [B x 3M] -> [B*M x 3], observation i on rows
  // [i*M, (i+1)*M) — the same layout forward()'s per-observation reshape
  // produces.
  out.logits = nn::reshape(actorFlat, obs.size() * cfg_.numParams, 3);
  out.values = values;
  return out;
}

bool MultimodalPolicy::adaptLegacyParameterMats(std::vector<linalg::Mat>& mats) const {
  std::vector<linalg::Mat> out;
  out.reserve(mats.size());
  std::size_t pos = 0;
  if (!actor_->adaptLegacyParams(mats, pos, out)) return false;
  if (!critic_->adaptLegacyParams(mats, pos, out)) return false;
  if (pos != mats.size()) return false;
  if (out.size() != parameters().size()) return false;
  mats = std::move(out);
  return true;
}

std::vector<nn::Tensor> MultimodalPolicy::parameters() const {
  auto out = actor_->parameters();
  auto cp = critic_->parameters();
  out.insert(out.end(), cp.begin(), cp.end());
  return out;
}

std::unique_ptr<MultimodalPolicy> makePolicy(PolicyKind kind, const rl::Env& env,
                                             util::Rng& rng, PolicyConfig base) {
  base.numParams = env.numParams();
  base.numSpecs = env.numSpecs();
  base.graphFeatureDim = env.graphFeatureDim();
  return std::make_unique<MultimodalPolicy>(kind, base, env.normalizedAdjacency(),
                                            env.attentionMask(), rng);
}

}  // namespace crl::core
