#pragma once
// Concrete campaign jobs for the paper's circuits: expands seed x topology
// (circuit + policy architecture) x process-corner axes into self-contained
// rl::CampaignJob entries. The generic runner (rl/campaign.h) knows nothing
// about circuits; this is the layer that does.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/policies.h"
#include "rl/campaign.h"

namespace crl::core {

enum class CampaignCircuit { OpAmp, Ota, RfPa };

const char* campaignCircuitName(CampaignCircuit c);

/// One job's build recipe. cornerScale models a process corner by scaling
/// the technology transconductance (kpN/kpP for the CMOS circuits, the GaN
/// peak-current density for the PA) — the campaign analogue of
/// circuit::cornerSweep's slow/nominal/fast axis, applied to the device
/// models instead of the sizing.
struct SizingJobSpec {
  CampaignCircuit circuit = CampaignCircuit::OpAmp;
  PolicyKind kind = PolicyKind::GcnFc;
  int seed = 0;
  double cornerScale = 1.0;
  /// In-evaluation SPICE session workers. Only use > 1 when the campaign
  /// itself runs jobs serially — the two parallelism axes do not nest.
  std::size_t spiceWorkers = 1;
};

/// Context factory for rl::CampaignJob::make: builds benchmark + envs +
/// policy fresh in the worker thread (training fidelity matches the fig3
/// harnesses: fine for the CMOS circuits, coarse-train/fine-eval for the PA).
std::function<std::unique_ptr<rl::CampaignContext>()> makeSizingContext(
    SizingJobSpec spec);

/// Axes of a full campaign grid.
struct CampaignAxes {
  std::vector<CampaignCircuit> circuits{CampaignCircuit::OpAmp};
  std::vector<PolicyKind> kinds{PolicyKind::GcnFc};
  int seeds = 1;
  std::vector<std::string> corners{"nominal"};  ///< slow | nominal | fast
  double cornerSpread = 0.1;
  int episodes = 300;
  /// Intermediate-eval episode count; 0 = per-circuit default (the fig3
  /// harness values: 25 op-amp, 15 RF PA / OTA).
  int evalEpisodes = 0;
  std::size_t spiceWorkers = 1;
};

/// Expand the axes into the job grid, one job per circuit x kind x corner x
/// seed, with the fig3 harnesses' seeds, eval cadences, and PPO settings.
/// Throws std::invalid_argument on an unknown corner name.
std::vector<rl::CampaignJob> buildSizingJobs(const CampaignAxes& axes);

}  // namespace crl::core
