#include "core/deploy.h"

namespace crl::core {

DeploymentResult runDeployment(rl::Env& env, const rl::ActorCritic& policy,
                               const std::vector<double>& target, util::Rng& rng,
                               DeployOptions opt) {
  DeploymentResult result;
  rl::Observation obs = env.resetWithTarget(target, rng);
  if (opt.recordTrajectory) result.specTrajectory.push_back(env.rawSpecs());

  for (int t = 0; t < env.maxSteps(); ++t) {
    rl::PolicyOutput out = policy.forward(obs);
    rl::SampledAction act = opt.greedy ? rl::greedyAction(out.logits.value())
                                       : rl::sampleAction(out.logits.value(), rng);
    rl::StepResult res = env.step(act.actions);
    ++result.steps;
    if (opt.recordTrajectory) result.specTrajectory.push_back(env.rawSpecs());
    obs = res.obs;
    if (res.done) {
      result.success = res.success;
      break;
    }
  }
  result.finalParams = env.currentParams();
  result.finalSpecs = env.rawSpecs();
  return result;
}

AccuracyReport evaluateAccuracy(rl::Env& env, const rl::ActorCritic& policy,
                                int episodes, util::Rng& rng) {
  AccuracyReport report;
  report.episodes = episodes;
  long successSteps = 0;
  long allSteps = 0;
  int successes = 0;
  for (int i = 0; i < episodes; ++i) {
    // reset() samples a fresh target; reuse it via rawTarget for clarity.
    env.reset(rng);
    DeploymentResult r = runDeployment(env, policy, env.rawTarget(), rng);
    allSteps += r.steps;
    if (r.success) {
      ++successes;
      successSteps += r.steps;
    }
  }
  report.accuracy = static_cast<double>(successes) / episodes;
  report.meanSteps = static_cast<double>(allSteps) / episodes;
  report.meanStepsSuccess =
      successes > 0 ? static_cast<double>(successSteps) / successes : 0.0;
  return report;
}

}  // namespace crl::core
