#include "core/deploy.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace crl::core {

namespace {

/// Record a captured query failure: structured error result plus telemetry.
/// Serving keeps going — one bad query must never take down its batch.
void markQueryFailed(DeploymentResult& r, const std::string& what) {
  static auto& failures = obs::counter("deploy.query_failures");
  failures.add();
  r.failed = true;
  r.error = what;
  r.success = false;
  util::logWarn() << "deploy: query failed (" << what << ")";
}

}  // namespace

DeploymentResult runDeployment(rl::Env& env, const rl::ActorCritic& policy,
                               const std::vector<double>& target, util::Rng& rng,
                               DeployOptions opt) {
  static auto& queries = obs::counter("core.deploy.queries");
  static auto& latency = obs::histogram("core.deploy.query_seconds");
  queries.add();
  obs::ScopedTimer timer(latency);
  DeploymentResult result;
  try {
    // Chaos gate: "deploy.query=throw" makes the query itself hostile, which
    // is how tests pin down the isolation contract below.
    if (auto h = util::failpoint::check("deploy.query"); h && h->action == "throw")
      throw std::runtime_error("deploy: injected query failure");
    rl::Observation obs = env.resetWithTarget(target, rng);
    if (opt.recordTrajectory) result.specTrajectory.push_back(env.rawSpecs());

    for (int t = 0; t < env.maxSteps(); ++t) {
      rl::PolicyOutput out = policy.forward(obs);
      rl::SampledAction act = opt.greedy
                                  ? rl::greedyAction(out.logits.value())
                                  : rl::sampleAction(out.logits.value(), rng);
      rl::StepResult res = env.step(act.actions);
      ++result.steps;
      if (opt.recordTrajectory) result.specTrajectory.push_back(env.rawSpecs());
      obs = res.obs;
      if (res.done) {
        result.success = res.success;
        break;
      }
    }
  } catch (const std::exception& e) {
    markQueryFailed(result, e.what());
  }
  result.finalParams = env.currentParams();
  result.finalSpecs = env.rawSpecs();
  return result;
}

std::vector<DeploymentResult> runDeploymentBatch(
    rl::VecEnv& envs, const rl::ActorCritic& policy,
    const std::vector<std::vector<double>>& targets, DeployOptions opt) {
  obs::TraceSpan span("core.deploy.batch", "core");
  static auto& queries = obs::counter("core.deploy.queries");
  static auto& latency = obs::histogram("core.deploy.query_seconds");
  // Per-query latency = lane reset to retire (wave scheduling means a query
  // can wait on its wave-mates; that wait is real serving latency).
  const bool measure = obs::metricsEnabled();
  std::vector<DeploymentResult> results(targets.size());
  const std::size_t lanes = envs.size();

  for (std::size_t wave = 0; wave * lanes < targets.size(); ++wave) {
    // laneTarget[k]: index into targets handled by lane k this wave.
    std::vector<std::size_t> laneTarget;
    for (std::size_t k = 0; k < lanes && wave * lanes + k < targets.size(); ++k)
      laneTarget.push_back(wave * lanes + k);

    std::vector<rl::Observation> obs(laneTarget.size());
    std::vector<char> active(laneTarget.size(), 1);
    std::vector<std::int64_t> laneStartNs(laneTarget.size(), 0);
    std::size_t remaining = 0;
    for (std::size_t k = 0; k < laneTarget.size(); ++k) {
      if (measure) laneStartNs[k] = obs::monotonicNowNs();
      try {
        if (auto h = util::failpoint::check("deploy.query");
            h && h->action == "throw")
          throw std::runtime_error("deploy: injected query failure");
        obs[k] = envs.resetLaneWithTarget(k, targets[laneTarget[k]]);
      } catch (const std::exception& e) {
        // A query that cannot even initialize retires immediately with a
        // structured error; its wave-mates proceed untouched.
        markQueryFailed(results[laneTarget[k]], e.what());
        active[k] = 0;
        queries.add();
        continue;
      }
      ++remaining;
      if (opt.recordTrajectory)
        results[laneTarget[k]].specTrajectory.push_back(envs.lane(k).rawSpecs());
    }
    while (remaining > 0) {
      // Batch the policy over the still-active lanes only.
      std::vector<std::size_t> ids;
      std::vector<rl::Observation> batchObs;
      for (std::size_t k = 0; k < laneTarget.size(); ++k) {
        if (!active[k]) continue;
        ids.push_back(k);
        batchObs.push_back(obs[k]);
      }
      std::vector<rl::PolicyOutput> outs;
      {
        nn::NoGradGuard inference;
        outs = policy.forwardBatch(batchObs);
      }
      std::vector<std::vector<int>> actions(ids.size());
      for (std::size_t j = 0; j < ids.size(); ++j) {
        rl::SampledAction act =
            opt.greedy ? rl::greedyAction(outs[j].logits.value())
                       : rl::sampleAction(outs[j].logits.value(), envs.laneRng(ids[j]));
        actions[j] = act.actions;
      }

      // Guarded stepping: a lane whose step throws (env failure or a fault
      // injected into its pooled task) retires with a structured error while
      // its wave-mates' results stay valid.
      std::vector<rl::VecEnv::LaneStepOutcome> stepped =
          envs.stepLanesGuarded(ids, actions);

      for (std::size_t j = 0; j < ids.size(); ++j) {
        const std::size_t k = ids[j];
        DeploymentResult& r = results[laneTarget[k]];
        bool retire = false;
        if (stepped[j].failed) {
          markQueryFailed(r, stepped[j].error);
          retire = true;
        } else {
          ++r.steps;
          if (opt.recordTrajectory)
            r.specTrajectory.push_back(envs.lane(k).rawSpecs());
          obs[k] = std::move(stepped[j].result.obs);
          retire = stepped[j].result.done || r.steps >= envs.lane(k).maxSteps();
          if (retire)
            r.success = stepped[j].result.done && stepped[j].result.success;
        }
        if (retire) {
          r.finalParams = envs.lane(k).currentParams();
          r.finalSpecs = envs.lane(k).rawSpecs();
          active[k] = 0;
          --remaining;
          queries.add();
          if (measure)
            latency.observe(
                static_cast<double>(obs::monotonicNowNs() - laneStartNs[k]) /
                1e9);
        }
      }
    }
  }
  return results;
}

AccuracyReport evaluateAccuracyBatch(rl::VecEnv& envs, const rl::ActorCritic& policy,
                                     int episodes) {
  // Sample `episodes` targets round-robin from the lanes' own streams (a
  // reset draws a fresh target spec group), then deploy them in waves.
  std::vector<std::vector<double>> targets;
  targets.reserve(static_cast<std::size_t>(episodes));
  for (int i = 0; i < episodes; ++i) {
    envs.resetLane(static_cast<std::size_t>(i) % envs.size());
    targets.push_back(envs.lane(static_cast<std::size_t>(i) % envs.size()).rawTarget());
  }
  std::vector<DeploymentResult> results = runDeploymentBatch(envs, policy, targets);

  AccuracyReport report;
  report.episodes = episodes;
  long successSteps = 0, allSteps = 0;
  int successes = 0;
  for (const DeploymentResult& r : results) {
    allSteps += r.steps;
    if (r.success) {
      ++successes;
      successSteps += r.steps;
    }
  }
  report.accuracy = static_cast<double>(successes) / episodes;
  report.meanSteps = static_cast<double>(allSteps) / episodes;
  report.meanStepsSuccess =
      successes > 0 ? static_cast<double>(successSteps) / successes : 0.0;
  return report;
}

AccuracyReport evaluateAccuracy(rl::Env& env, const rl::ActorCritic& policy,
                                int episodes, util::Rng& rng) {
  AccuracyReport report;
  report.episodes = episodes;
  long successSteps = 0;
  long allSteps = 0;
  int successes = 0;
  for (int i = 0; i < episodes; ++i) {
    // reset() samples a fresh target; reuse it via rawTarget for clarity.
    env.reset(rng);
    DeploymentResult r = runDeployment(env, policy, env.rawTarget(), rng);
    allSteps += r.steps;
    if (r.success) {
      ++successes;
      successSteps += r.steps;
    }
  }
  report.accuracy = static_cast<double>(successes) / episodes;
  report.meanSteps = static_cast<double>(allSteps) / episodes;
  report.meanStepsSuccess =
      successes > 0 ? static_cast<double>(successSteps) / successes : 0.0;
  return report;
}

}  // namespace crl::core
