#pragma once
// Policy networks (the paper's contribution and its RL baselines).
//
//  * GnnFcPolicy — the domain-knowledge-infused multimodal network: a
//    circuit-topology GNN (GCN or GAT) distills the graph state into an
//    embedding; an FCNN extracts the couplings of the (intermediate +
//    desired) specifications; the concatenation feeds shared FC layers and
//    the M x 3 actor head. The critic has the same structure with a scalar
//    head (separate parameters, as in the paper).
//  * FcnnPolicy (Baseline A, AutoCkt-style) — specs and normalized
//    parameters through a plain feedforward network; no topology knowledge.
//  * GcnStaticPolicy (Baseline B, GCN-RL-style) — GNN over the circuit
//    graph only (the paper's conservative reimplementation: full topology
//    and dynamic parameters as node features) but no specification pathway,
//    i.e. no knowledge of the design target couplings.

#include <memory>
#include <string>

#include "gnn/layers.h"
#include "nn/module.h"
#include "rl/policy.h"

namespace crl::core {

enum class PolicyKind {
  GatFc,       ///< ours, GAT variant
  GcnFc,       ///< ours, GCN variant
  BaselineA,   ///< FCNN-only (AutoCkt-style)
  BaselineB,   ///< GCN over graph, no spec pathway (GCN-RL-style)
  BaselineBGat ///< GAT flavour of Baseline B (Table 2's parenthesized row)
};

const char* policyKindName(PolicyKind kind);

struct PolicyConfig {
  std::size_t numParams = 15;       ///< M (actor emits M x 3 logits)
  std::size_t numSpecs = 4;
  std::size_t graphFeatureDim = 6;
  std::size_t gnnHidden = 32;
  std::size_t gnnLayers = 2;
  std::size_t gatHeads = 4;
  std::size_t specHidden = 32;      ///< FCNN width
  std::size_t trunkHidden = 64;     ///< final FC width
};

/// One actor or critic tower; the ActorCritic below owns two.
class GnnFcTower {
 public:
  GnnFcTower(const PolicyConfig& cfg, gnn::GraphEncoder::Variant variant,
             bool useGraph, bool useSpecs, std::size_t outDim, util::Rng& rng);

  nn::Tensor forward(const rl::Observation& obs, const linalg::Mat& normAdj,
                     const linalg::Mat& mask) const;
  /// One matrix pass over N observations: graph pathway through the
  /// batched encoder (block-diagonal GCN propagation / block-local GAT
  /// attention against the shared single-graph matrices), spec/param
  /// pathways as [N x d] row stacks. Returns the [N x outDim] tower output.
  nn::Tensor forwardBatch(const std::vector<rl::Observation>& obs,
                          const linalg::Mat& normAdj,
                          const linalg::Mat& mask) const;
  std::vector<nn::Tensor> parameters() const;

  /// Checkpoint-migration walker: consume this tower's parameter mats in the
  /// legacy per-head GAT layout from `in` at `pos` (advancing it), appending
  /// current-layout mats to `out`. Non-GNN pathways copy through verbatim.
  bool adaptLegacyParams(const std::vector<linalg::Mat>& in, std::size_t& pos,
                         std::vector<linalg::Mat>& out) const;

 private:
  bool useGraph_;
  bool useSpecs_;
  std::unique_ptr<gnn::GraphEncoder> graphEnc_;
  std::unique_ptr<nn::Mlp> specNet_;
  std::unique_ptr<nn::Mlp> paramNet_;  ///< Baseline A's parameter pathway
  std::unique_ptr<nn::Mlp> trunk_;
};

class MultimodalPolicy : public rl::ActorCritic {
 public:
  /// normAdj/mask are the graph constants of the environment.
  MultimodalPolicy(PolicyKind kind, PolicyConfig cfg, const linalg::Mat& normAdj,
                   const linalg::Mat& mask, util::Rng& rng);

  rl::PolicyOutput forward(const rl::Observation& obs) const override;
  /// Batched evaluation in one matrix pass per tower (vs N single-row
  /// passes): node features are row-stacked against the shared single-graph
  /// adjacency/mask (applied block-wise), spec inputs become one [N x 2S]
  /// matrix.
  std::vector<rl::PolicyOutput> forwardBatch(
      const std::vector<rl::Observation>& obs) const override;
  /// Same one-pass sweep, keeping the whole minibatch stacked in two
  /// tensors for the batched PPO update (gradients recorded unless a
  /// NoGradGuard is alive).
  rl::BatchedPolicyOutput forwardBatchStacked(
      const std::vector<rl::Observation>& obs) const override;
  std::vector<nn::Tensor> parameters() const override;
  const char* name() const override { return name_.c_str(); }
  PolicyKind kind() const { return kind_; }
  /// Recognizes the retired per-head GAT parameter layout (3*heads mats per
  /// GAT layer) and repacks it into the packed layout — actor tower first,
  /// then critic, mirroring parameters() order.
  bool adaptLegacyParameterMats(std::vector<linalg::Mat>& mats) const override;

 private:
  /// Shared batched tower sweep: actor logits [N x 3M] + values [N x 1].
  void towerOutputs(const std::vector<rl::Observation>& obs, nn::Tensor* actorFlat,
                    nn::Tensor* values) const;

  PolicyKind kind_;
  PolicyConfig cfg_;
  std::string name_;
  linalg::Mat normAdj_;
  linalg::Mat mask_;
  std::unique_ptr<GnnFcTower> actor_;
  std::unique_ptr<GnnFcTower> critic_;
};

/// Factory: build the policy matching an environment's shapes.
std::unique_ptr<MultimodalPolicy> makePolicy(PolicyKind kind, const rl::Env& env,
                                             util::Rng& rng, PolicyConfig base = {});

}  // namespace crl::core
