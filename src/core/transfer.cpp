#include "core/transfer.h"

namespace crl::core {

TransferResult trainWithTransfer(
    circuit::Benchmark& bench, TransferConfig cfg,
    const std::function<void(const rl::EpisodeStats&)>& onEpisode) {
  TransferResult result;
  util::Rng rng(cfg.seed);

  envs::SizingEnvConfig trainCfg = cfg.envConfig;
  trainCfg.fidelity = circuit::Fidelity::Coarse;
  envs::SizingEnv trainEnv(bench, trainCfg);

  result.policy = makePolicy(cfg.kind, trainEnv, rng);
  rl::PpoTrainer trainer(trainEnv, *result.policy, cfg.ppo, rng.fork());
  trainer.train(cfg.trainEpisodes, onEpisode);

  util::Rng evalRng(cfg.seed + 1000);
  result.coarseAccuracy =
      evaluateAccuracy(trainEnv, *result.policy, cfg.evalEpisodes, evalRng);

  envs::SizingEnvConfig fineCfg = cfg.envConfig;
  fineCfg.fidelity = circuit::Fidelity::Fine;
  envs::SizingEnv fineEnv(bench, fineCfg);
  util::Rng evalRng2(cfg.seed + 2000);
  result.fineAccuracy =
      evaluateAccuracy(fineEnv, *result.policy, cfg.evalEpisodes, evalRng2);
  return result;
}

}  // namespace crl::core
