#include "core/campaign_jobs.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "circuit/opamp.h"
#include "circuit/ota.h"
#include "circuit/rfpa.h"
#include "core/deploy.h"
#include "envs/sizing_env.h"
#include "spice/session.h"

namespace crl::core {

const char* campaignCircuitName(CampaignCircuit c) {
  switch (c) {
    case CampaignCircuit::OpAmp: return "opamp";
    case CampaignCircuit::Ota: return "ota";
    case CampaignCircuit::RfPa: return "rfpa";
  }
  return "unknown";
}

namespace {

/// Owns one job's full simulation + learning stack. The benchmark is shared
/// by the train and eval environments (like the fig3 harnesses), so there is
/// exactly one solver-state snapshot to carry through checkpoints.
class SizingContext final : public rl::CampaignContext {
 public:
  explicit SizingContext(const SizingJobSpec& spec) {
    switch (spec.circuit) {
      case CampaignCircuit::OpAmp: {
        circuit::OpAmpConfig cfg;
        cfg.kpN *= spec.cornerScale;
        cfg.kpP *= spec.cornerScale;
        bench_ = std::make_unique<circuit::TwoStageOpAmp>(cfg);
        attachSession(spec.spiceWorkers);
        trainEnv_ = std::make_unique<envs::SizingEnv>(
            *bench_, envs::SizingEnvConfig{.maxSteps = 50});
        evalEnv_ = trainEnv_.get();
        initPolicy(spec, /*initSeedBase=*/100);
        break;
      }
      case CampaignCircuit::Ota: {
        circuit::OtaConfig cfg;
        cfg.kpN *= spec.cornerScale;
        cfg.kpP *= spec.cornerScale;
        bench_ = std::make_unique<circuit::FiveTransistorOta>(cfg);
        attachSession(spec.spiceWorkers);
        trainEnv_ = std::make_unique<envs::SizingEnv>(
            *bench_, envs::SizingEnvConfig{.maxSteps = 50});
        evalEnv_ = trainEnv_.get();
        initPolicy(spec, /*initSeedBase=*/300);
        break;
      }
      case CampaignCircuit::RfPa: {
        circuit::RfPaConfig cfg;
        cfg.ganModel.ipkPerWidth *= spec.cornerScale;
        bench_ = std::make_unique<circuit::GanRfPa>(cfg);
        // No session: the PA's coarse/fine paths are DC/transient — nothing
        // for an AC fan-out to parallelize (see fig3_rfpa_training.cpp).
        trainEnv_ = std::make_unique<envs::SizingEnv>(
            *bench_, envs::SizingEnvConfig{.maxSteps = 30,
                                           .fidelity = circuit::Fidelity::Coarse});
        evalEnvOwned_ = std::make_unique<envs::SizingEnv>(
            *bench_, envs::SizingEnvConfig{.maxSteps = 30,
                                           .fidelity = circuit::Fidelity::Fine});
        evalEnv_ = evalEnvOwned_.get();
        initPolicy(spec, /*initSeedBase=*/200);
        break;
      }
    }
  }

  rl::Env& trainEnv() override { return *trainEnv_; }
  rl::ActorCritic& policy() override { return *policy_; }

  rl::CampaignEvalReport evaluate(int episodes, util::Rng& rng) override {
    const AccuracyReport rep = evaluateAccuracy(*evalEnv_, *policy_, episodes, rng);
    return {rep.accuracy, rep.meanSteps, rep.meanStepsSuccess};
  }

  std::vector<std::string> solverSnapshots() const override {
    return {bench_->solverStateSnapshot()};
  }
  bool restoreSolverSnapshots(const std::vector<std::string>& blobs) override {
    return blobs.size() == 1 && bench_->restoreSolverStateSnapshot(blobs[0]);
  }

 private:
  void attachSession(std::size_t workers) {
    if (workers > 1) {
      session_ = std::make_unique<spice::SimSession>(workers);
      bench_->setSession(session_.get());
    }
  }
  void initPolicy(const SizingJobSpec& spec, std::uint64_t initSeedBase) {
    util::Rng initRng(initSeedBase + static_cast<std::uint64_t>(spec.seed));
    policy_ = makePolicy(spec.kind, *trainEnv_, initRng);
  }

  std::unique_ptr<circuit::Benchmark> bench_;
  std::unique_ptr<spice::SimSession> session_;
  std::unique_ptr<envs::SizingEnv> trainEnv_;
  std::unique_ptr<envs::SizingEnv> evalEnvOwned_;
  envs::SizingEnv* evalEnv_ = nullptr;
  std::unique_ptr<MultimodalPolicy> policy_;
};

double cornerScaleFor(const std::string& corner, double spread) {
  if (corner == "slow") return 1.0 - spread;
  if (corner == "nominal") return 1.0;
  if (corner == "fast") return 1.0 + spread;
  throw std::invalid_argument("unknown corner '" + corner +
                              "' (expected slow|nominal|fast)");
}

}  // namespace

std::function<std::unique_ptr<rl::CampaignContext>()> makeSizingContext(
    SizingJobSpec spec) {
  return [spec]() -> std::unique_ptr<rl::CampaignContext> {
    return std::make_unique<SizingContext>(spec);
  };
}

std::vector<rl::CampaignJob> buildSizingJobs(const CampaignAxes& axes) {
  std::vector<rl::CampaignJob> jobs;
  for (CampaignCircuit circuit : axes.circuits) {
    for (PolicyKind kind : axes.kinds) {
      for (const std::string& corner : axes.corners) {
        const double scale = cornerScaleFor(corner, axes.cornerSpread);
        for (int seed = 0; seed < axes.seeds; ++seed) {
          rl::CampaignJob job;
          job.name = std::string(campaignCircuitName(circuit)) + "_" +
                     policyKindName(kind) + "_" + corner + "_s" +
                     std::to_string(seed);
          job.episodes = axes.episodes;
          // The fig3 harnesses' seed scheme, so a nominal-corner campaign
          // reproduces their runs exactly.
          job.trainSeed = circuit == CampaignCircuit::RfPa
                              ? 17 + static_cast<std::uint64_t>(seed)
                              : static_cast<std::uint64_t>(seed);
          job.evalSeed = job.trainSeed + 9001;
          job.finalEvalSeed = job.trainSeed + 5555;
          job.evalEvery = std::max(
              100, axes.episodes / (circuit == CampaignCircuit::RfPa ? 4 : 5));
          job.evalEpisodes =
              axes.evalEpisodes > 0
                  ? axes.evalEpisodes
                  : (circuit == CampaignCircuit::OpAmp ? 25 : 15);
          job.ppo.batchedUpdate = true;
          job.make = makeSizingContext(
              {circuit, kind, seed, scale, axes.spiceWorkers});
          job.csvMethod = policyKindName(kind);
          job.csvSeedTag = seed;
          jobs.push_back(std::move(job));
        }
      }
    }
  }
  return jobs;
}

}  // namespace crl::core
