#pragma once
// Transfer-learning workflow (Sec. 3): train the RF agent in the coarse
// (fast DC) environment, deploy in the fine (harmonic-balance-equivalent)
// environment. The learned experiences transfer because the coarse rewards
// track the fine rewards within ~+-10%.

#include <functional>
#include <memory>

#include "core/deploy.h"
#include "core/policies.h"
#include "envs/sizing_env.h"
#include "rl/ppo.h"

namespace crl::core {

struct TransferConfig {
  rl::PpoConfig ppo;
  envs::SizingEnvConfig envConfig;  ///< fidelity fields are overridden
  int trainEpisodes = 1000;
  int evalEpisodes = 50;
  PolicyKind kind = PolicyKind::GcnFc;
  std::uint64_t seed = 0;
};

struct TransferResult {
  AccuracyReport coarseAccuracy;  ///< deployment accuracy in the training env
  AccuracyReport fineAccuracy;    ///< deployment accuracy in the target env
  std::unique_ptr<MultimodalPolicy> policy;
};

/// Train on Fidelity::Coarse, evaluate on both fidelities.
TransferResult trainWithTransfer(
    circuit::Benchmark& bench, TransferConfig cfg,
    const std::function<void(const rl::EpisodeStats&)>& onEpisode = {});

}  // namespace crl::core
