#pragma once
// Policy deployment (Sec. 4 "Automated Design with Policy Deployment"):
// run a trained policy greedily against a target spec group, optionally
// recording the per-step intermediate specifications (Figs. 5 and 6).

#include <string>
#include <vector>

#include "rl/env.h"
#include "rl/policy.h"
#include "rl/vec_env.h"

namespace crl::core {

struct DeployOptions {
  bool greedy = true;             ///< argmax actions (false: sample)
  bool recordTrajectory = false;  ///< keep per-step raw specs
};

struct DeploymentResult {
  bool success = false;
  int steps = 0;                  ///< steps taken (maxSteps if unsuccessful)
  std::vector<double> finalParams;
  std::vector<double> finalSpecs;
  /// Raw intermediate specs per step, starting with the initial state
  /// (filled when recordTrajectory is set).
  std::vector<std::vector<double>> specTrajectory;
  /// The query's evaluation threw (simulator error, injected fault, ...).
  /// A failed query is a structured per-result outcome, never an exception
  /// out of runDeploymentBatch: one hostile target cannot poison the batch.
  bool failed = false;
  std::string error;              ///< what() of the captured exception
};

DeploymentResult runDeployment(rl::Env& env, const rl::ActorCritic& policy,
                               const std::vector<double>& target, util::Rng& rng,
                               DeployOptions opt = {});

struct AccuracyReport {
  double accuracy = 0.0;       ///< fraction of targets reached
  double meanSteps = 0.0;      ///< mean episode length over all episodes
  double meanStepsSuccess = 0.0;  ///< mean steps among successful episodes
  int episodes = 0;
};

/// Deploy against `episodes` freshly sampled target spec groups.
AccuracyReport evaluateAccuracy(rl::Env& env, const rl::ActorCritic& policy,
                                int episodes, util::Rng& rng);

/// Batched deployment: one target per rollout lane, processed in waves of
/// envs.size(). In-flight lanes share one batched policy forward per step
/// and their SPICE steps run through the VecEnv's thread pool; retired
/// lanes drop out of the batch. Results align with `targets`. Sampling mode
/// (greedy=false) draws from each lane's own RNG stream.
std::vector<DeploymentResult> runDeploymentBatch(
    rl::VecEnv& envs, const rl::ActorCritic& policy,
    const std::vector<std::vector<double>>& targets, DeployOptions opt = {});

/// Batched counterpart of evaluateAccuracy. Targets are sampled from each
/// lane's own RNG stream (`episodes` of them in total).
AccuracyReport evaluateAccuracyBatch(rl::VecEnv& envs, const rl::ActorCritic& policy,
                                     int episodes);

}  // namespace crl::core
