// Transfer-learning example (Sec. 3): train a GaN RF-PA sizing agent in the
// cheap coarse (quasi-static DC) environment, then deploy in the expensive
// fine (transient steady-state) environment — the paper's recipe for making
// RL tractable on RF circuits.
//
//   $ ./build/examples/rfpa_transfer
#include <chrono>
#include <cstdio>

#include "circuit/rfpa.h"
#include "core/transfer.h"

using namespace crl;

int main() {
  circuit::GanRfPa pa;

  // Show the cost asymmetry that motivates the whole exercise.
  auto params = pa.designSpace().midpoint();
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) pa.measureAt(params, circuit::Fidelity::Coarse);
  auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) pa.measureAt(params, circuit::Fidelity::Fine);
  auto t2 = std::chrono::steady_clock::now();
  std::printf("simulation cost: coarse %.2f ms, fine %.2f ms per run\n",
              std::chrono::duration<double, std::milli>(t1 - t0).count() / 10,
              std::chrono::duration<double, std::milli>(t2 - t1).count() / 10);

  core::TransferConfig cfg;
  cfg.trainEpisodes = 800;
  cfg.evalEpisodes = 20;
  cfg.envConfig.maxSteps = 30;
  cfg.kind = core::PolicyKind::GcnFc;
  std::printf("training GCN-FC in the COARSE environment (%d episodes)...\n",
              cfg.trainEpisodes);
  int printed = 0;
  auto result = core::trainWithTransfer(pa, cfg, [&](const rl::EpisodeStats& s) {
    if (s.episode % 200 == 0 && printed++ < 10)
      std::printf("  episode %d: reward %.2f len %d\n", s.episode, s.episodeReward,
                  s.episodeLength);
  });

  std::printf("\ndeployment accuracy:  coarse env %.2f   fine env %.2f\n",
              result.coarseAccuracy.accuracy, result.fineAccuracy.accuracy);
  std::printf("mean steps to success (fine): %.1f\n",
              result.fineAccuracy.meanStepsSuccess);
  std::printf("=> experiences learned in the coarse environment transfer to the\n"
              "   fine environment because coarse rewards track fine within ~10%%.\n");
  return 0;
}
