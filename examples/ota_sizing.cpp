// Third-circuit demo: apply the full pipeline (benchmark -> environment ->
// multimodal policy -> PPO -> deployment) to a circuit the paper does NOT
// evaluate — a five-transistor OTA — showing the framework generalizes to
// new topologies with zero framework changes.
//
//   $ ./build/examples/ota_sizing
#include <cstdio>

#include "circuit/ota.h"
#include "core/deploy.h"
#include "core/policies.h"
#include "envs/sizing_env.h"
#include "rl/ppo.h"

using namespace crl;

int main() {
  circuit::FiveTransistorOta ota;
  std::printf("circuit: %s — %zu parameters, %zu graph nodes\n", ota.name().c_str(),
              ota.designSpace().size(), ota.graph().nodeCount());

  envs::SizingEnv env(ota, {.maxSteps = 30});
  util::Rng rng(1);
  auto policy = core::makePolicy(core::PolicyKind::GatFc, env, rng);

  std::printf("training GAT-FC policy (600 episodes)...\n");
  rl::PpoTrainer trainer(env, *policy, {}, util::Rng(2));
  int succ = 0, total = 0;
  trainer.train(600, [&](const rl::EpisodeStats& s) {
    ++total;
    succ += s.success;
    if (s.episode % 150 == 0)
      std::printf("  episode %4d: train success rate so far %.2f\n", s.episode,
                  static_cast<double>(succ) / total);
  });

  // Deploy on a handful of sampled targets.
  util::Rng deployRng(7);
  int ok = 0;
  const int groups = 10;
  for (int g = 0; g < groups; ++g) {
    auto target = ota.specSpace().sample(deployRng);
    auto result = core::runDeployment(env, *policy, target, deployRng);
    ok += result.success;
    std::printf("target {gain>=%.1f, ugbw>=%.2e, pm>=%.0f, power<=%.1e}: %s (%d steps)\n",
                target[0], target[1], target[2], target[3],
                result.success ? "reached" : "missed", result.steps);
  }
  std::printf("\ndeployment: %d/%d targets reached\n", ok, groups);
  return 0;
}
