// Simulator example: use the MNA engine directly — build a circuit, run DC /
// AC / transient analyses, and extract amplifier metrics. Useful as a
// starting point for adding new circuit benchmarks.
//
//   $ ./build/examples/spice_playground
#include <cstdio>

#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/mosfet.h"
#include "spice/netlist.h"
#include "spice/tran.h"

using namespace crl::spice;

int main() {
  // A resistively loaded common-source stage.
  Netlist net;
  NodeId vdd = net.node("vdd");
  NodeId in = net.node("in");
  NodeId out = net.node("out");

  net.add<VSource>("Vdd", vdd, kGround, 1.2);
  auto* vin = net.add<VSource>("Vin", in, kGround, 0.42);
  vin->setAcMag(1.0);

  MosModel nm;
  nm.kp = 300e-6;
  nm.vth = 0.35;
  nm.lambda = 0.2;
  nm.length = 150e-9;
  auto* m1 = net.add<Mosfet>("M1", out, in, kGround, nm, 5e-6, 4);
  net.add<Resistor>("Rd", vdd, out, 3e3);
  net.add<Capacitor>("CL", out, kGround, 200e-15);

  // DC operating point.
  DcAnalysis dc(net);
  DcResult op = dc.solve();
  std::printf("DC converged (%s, %d iterations)\n", op.strategy, op.iterations);
  std::printf("V(out) = %.4f V, Id(M1) = %.4g A, gm = %.4g S\n",
              dc.voltage(op, out), m1->evalAt(op.x).id, m1->evalAt(op.x).gm);

  // AC sweep + metrics.
  AcAnalysis ac(net, op.x);
  auto sweep = ac.sweep(out, 1e3, 1e11, 8);
  auto metrics = analyzeResponse(sweep);
  std::printf("gain %.2f (%.1f dB), f3dB %.3g Hz, unity-gain %.3g Hz, PM %.1f deg\n",
              metrics.dcGain, 20.0 * std::log10(metrics.dcGain), metrics.bandwidth3Db,
              metrics.unityGainFreq, metrics.phaseMarginDeg);

  // Transient: drive with a 1 MHz small sine and watch the amplified output.
  vin->setSine(0.005, 1e6);
  TranAnalysis tran(net);
  double vmin = 1e9, vmax = -1e9;
  tran.run(1e-8, 4e-6,
           [&](double t, const crl::linalg::Vec& x) {
             if (t > 2e-6) {  // after settling
               double v = Netlist::voltageOf(x, out);
               vmin = std::min(vmin, v);
               vmax = std::max(vmax, v);
             }
           },
           /*record=*/false);
  std::printf("transient output swing: %.4f V (expected ~ 2*0.005*gain = %.4f V)\n",
              vmax - vmin, 2 * 0.005 * metrics.dcGain);
  return 0;
}
