// Quickstart: size a two-stage op-amp for one target specification with a
// briefly-trained domain-knowledge-infused (GCN-FC) RL agent.
//
//   $ ./build/examples/quickstart
//
// The flow mirrors the paper end to end: build the benchmark circuit, wrap
// it in the P2S environment, train a multimodal GNN+FCNN policy with PPO,
// then deploy the policy against a desired spec group.
#include <cstdio>

#include "circuit/opamp.h"
#include "core/deploy.h"
#include "core/policies.h"
#include "envs/sizing_env.h"
#include "rl/ppo.h"

using namespace crl;

int main() {
  // 1. The benchmark circuit: a 45nm-flavoured two-stage Miller op-amp with
  //    15 tunable parameters (Table 1) simulated by the built-in MNA engine.
  circuit::TwoStageOpAmp amp;
  std::printf("circuit: %s, %zu parameters, %zu specs, %zu graph nodes\n",
              amp.name().c_str(), amp.designSpace().size(), amp.specSpace().size(),
              amp.graph().nodeCount());

  // 2. The P2S environment: Eq. (1) reward, M x 3 discrete action space.
  envs::SizingEnv env(amp, {.maxSteps = 50});

  // 3. The domain-knowledge-infused agent: circuit-topology GCN + spec FCNN.
  util::Rng rng(1);
  auto policy = core::makePolicy(core::PolicyKind::GcnFc, env, rng);

  // 4. Train with PPO (a short budget for the quickstart; see bench/fig3_*
  //    for experiment-scale budgets).
  std::printf("training GCN-FC policy (800 episodes)...\n");
  rl::PpoTrainer trainer(env, *policy, {}, util::Rng(2));
  trainer.train(800);

  // 5. Deploy: find device parameters for a desired spec group.
  std::vector<double> target{350.0, 1.8e7, 55.0, 4e-3};  // G, UGBW, PM, P
  util::Rng deployRng(3);
  auto result = core::runDeployment(env, *policy, target, deployRng,
                                    {.recordTrajectory = true});

  std::printf("\ntarget: gain>=%.0f, ugbw>=%.3g Hz, pm>=%.0f deg, power<=%.1e W\n",
              target[0], target[1], target[2], target[3]);
  std::printf("reached: %s in %d steps\n", result.success ? "YES" : "no", result.steps);
  std::printf("final specs: gain=%.1f ugbw=%.3g pm=%.1f power=%.3g\n",
              result.finalSpecs[0], result.finalSpecs[1], result.finalSpecs[2],
              result.finalSpecs[3]);
  std::printf("final sizing:");
  for (std::size_t i = 0; i < result.finalParams.size(); ++i) {
    std::printf(" %s=%.3g", amp.designSpace().param(i).name.c_str(),
                result.finalParams[i]);
  }
  std::printf("\n");
  return result.success ? 0 : 1;
}
