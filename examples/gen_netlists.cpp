// Regenerate the committed sparse-solver netlist fixtures.
//
//   ./gen_netlists [output_dir]      (default: tests/spice/fixtures)
//
// The fixtures are the verbatim output of spice::rcLadderDeck /
// spice::rcMeshDeck at the sizes the parity suite and bench_sparse_mna use;
// rerun this after changing the generators and commit the diff.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "spice/gen.h"

namespace {

void emit(const std::filesystem::path& dir, const std::string& name,
          const std::string& text) {
  const std::filesystem::path path = dir / name;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  out << text;
  std::cout << path.string() << " (" << text.size() << " bytes)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : "tests/spice/fixtures";
  std::filesystem::create_directories(dir);

  for (int n : {20, 50, 200, 500})
    emit(dir, "rc_ladder_" + std::to_string(n) + ".cir",
         crl::spice::rcLadderDeck(n));
  emit(dir, "diode_ladder_40.cir", crl::spice::rcLadderDeck(40, /*withDiodes=*/true));

  // Grid shapes sized so rows*cols matches the ladder unknown counts.
  emit(dir, "rc_mesh_20.cir", crl::spice::rcMeshDeck(5, 4));
  emit(dir, "rc_mesh_50.cir", crl::spice::rcMeshDeck(10, 5));
  emit(dir, "rc_mesh_200.cir", crl::spice::rcMeshDeck(20, 10));
  emit(dir, "rc_mesh_500.cir", crl::spice::rcMeshDeck(25, 20));
  return 0;
}
