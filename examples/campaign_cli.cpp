// Campaign CLI: run a crash-safe seed x topology x corner training campaign
// from the command line (the fleet-scale front door to rl::CampaignRunner).
//
//   $ ./build/campaign_cli --out campaign --circuits opamp,ota --seeds 3
//         --corners slow,nominal,fast --episodes 400 --workers 4
//
// Every job checkpoints periodically under <out>/<job>/ and the whole
// campaign is resumable: re-running the exact same command after a crash (or
// SIGKILL) skips completed jobs via their `done` markers and continues
// interrupted ones bitwise from their last checkpoint. The CI kill-and-resume
// smoke job and the resume-parity suite drive this binary; --crash-after-
// checkpoints hard-kills the process (std::_Exit, no cleanup) after the Nth
// checkpoint write to simulate a mid-campaign SIGKILL deterministically.
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign_jobs.h"
#include "obs/json.h"
#include "rl/campaign.h"

using namespace crl;

namespace {

// `--status <dir>`: pretty-print <dir>/campaign_status.json (or the file
// itself when <dir> is a file path) — the human front-end to the status
// board rl::CampaignRunner keeps atomically rewritten during a run.
int printStatus(const std::string& target) {
  std::string path = target;
  {
    std::ifstream probe(path + "/campaign_status.json");
    if (probe.good()) path += "/campaign_status.json";
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  obs::json::Value doc;
  std::string err;
  if (!obs::json::parse(buf.str(), doc, &err)) {
    std::fprintf(stderr, "error: %s: malformed status JSON (%s)\n", path.c_str(),
                 err.c_str());
    return 2;
  }
  const std::string schema = doc.string("schema");
  if (schema != "crl.campaign_status/v1") {
    std::fprintf(stderr, "error: %s: unexpected schema '%s'\n", path.c_str(),
                 schema.c_str());
    return 2;
  }

  const double elapsed = doc.number("elapsed_seconds");
  const int jobsFailed = static_cast<int>(doc.number("jobs_failed"));
  const int jobsQuarantined = static_cast<int>(doc.number("jobs_quarantined"));
  // Stale-heartbeat threshold: 3x the writer's own status cadence (the file
  // records it as status_every_seconds; older files fall back to the 2s
  // default). A running job whose heartbeat is older than that is rendered
  // as STALLED — either genuinely hung or starved of its heartbeat path.
  double cadence = 2.0;
  if (const obs::json::Value* c = doc.find("status_every_seconds");
      c && c->isNumber() && c->asNumber() > 0.0)
    cadence = c->asNumber();
  const double staleAfter = 3.0 * cadence;
  std::printf("campaign status  (%s)\n", path.c_str());
  std::printf("  elapsed %.1fs   workers %d   pending %d  running %d  done %d"
              "  skipped %d  failed %d  quarantined %d\n",
              elapsed, static_cast<int>(doc.number("workers")),
              static_cast<int>(doc.number("jobs_pending")),
              static_cast<int>(doc.number("jobs_running")),
              static_cast<int>(doc.number("jobs_done")),
              static_cast<int>(doc.number("jobs_skipped")), jobsFailed,
              jobsQuarantined);
  const double epDone = doc.number("episodes_done");
  const double epTotal = doc.number("episodes_total");
  const obs::json::Value* eta = doc.find("eta_seconds");
  if (eta && eta->isNumber())
    std::printf("  episodes %.0f/%.0f   eta %.1fs\n", epDone, epTotal,
                eta->asNumber());
  else
    std::printf("  episodes %.0f/%.0f   eta n/a\n", epDone, epTotal);

  bool anyStalled = false;
  const obs::json::Value* jobs = doc.find("jobs");
  if (jobs && jobs->isArray()) {
    std::printf("  %-40s %-11s %12s %12s %10s %10s\n", "job", "state",
                "episodes", "ema_reward", "ckpt_age", "beat_age");
    for (const obs::json::Value& j : jobs->array()) {
      const obs::json::Value* ckpt = j.find("checkpoint_age_seconds");
      const obs::json::Value* beat = j.find("heartbeat_age_seconds");
      char ckptBuf[32] = "-", beatBuf[32] = "-";
      if (ckpt && ckpt->isNumber())
        std::snprintf(ckptBuf, sizeof ckptBuf, "%.1fs", ckpt->asNumber());
      if (beat && beat->isNumber())
        std::snprintf(beatBuf, sizeof beatBuf, "%.1fs", beat->asNumber());
      const std::string state = j.string("state");
      const obs::json::Value* stalledFlag = j.find("stalled");
      const bool stalled =
          state == "running" &&
          ((stalledFlag && stalledFlag->isBool() && stalledFlag->asBool()) ||
           (beat && beat->isNumber() && beat->asNumber() > staleAfter));
      anyStalled = anyStalled || stalled;
      std::printf("  %-40s %-11s %7.0f/%-4.0f %12.3f %10s %10s%s\n",
                  j.string("name").c_str(), state.c_str(),
                  j.number("episodes_done"), j.number("episodes_total"),
                  j.number("ema_reward"), ckptBuf, beatBuf,
                  stalled ? "  ⚠ STALLED" : "");
      const std::string jobErr = j.string("error");
      if (!jobErr.empty())
        std::printf("  %-40s   error: %s\n", "", jobErr.c_str());
    }
  }
  if (anyStalled)
    std::printf("  ⚠ stalled job(s) detected: heartbeat older than %.1fs\n",
                staleAfter);
  // A monitoring-friendly exit code: anything failed or quarantined makes
  // --status itself nonzero, so `campaign_cli --status DIR && deploy` is a
  // legitimate gate.
  return jobsFailed > 0 || jobsQuarantined > 0 ? 1 : 0;
}

std::vector<std::string> splitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

core::CampaignCircuit parseCircuit(const std::string& name) {
  if (name == "opamp") return core::CampaignCircuit::OpAmp;
  if (name == "ota") return core::CampaignCircuit::Ota;
  if (name == "rfpa") return core::CampaignCircuit::RfPa;
  std::fprintf(stderr, "unknown circuit '%s' (expected opamp|ota|rfpa)\n",
               name.c_str());
  std::exit(2);
}

core::PolicyKind parseKind(const std::string& name) {
  for (core::PolicyKind k :
       {core::PolicyKind::GatFc, core::PolicyKind::GcnFc,
        core::PolicyKind::BaselineA, core::PolicyKind::BaselineB,
        core::PolicyKind::BaselineBGat})
    if (name == core::policyKindName(k)) return k;
  std::fprintf(stderr,
               "unknown method '%s' (expected GAT-FC|GCN-FC|Baseline-A|"
               "Baseline-B|Baseline-B-GAT)\n",
               name.c_str());
  std::exit(2);
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: campaign_cli [options]\n"
      "  --out DIR                 output/checkpoint directory (default: crl_campaign)\n"
      "  --circuits a,b            opamp|ota|rfpa (default: opamp)\n"
      "  --methods a,b             GAT-FC|GCN-FC|Baseline-A|Baseline-B|Baseline-B-GAT\n"
      "                            (default: GCN-FC)\n"
      "  --seeds N                 seeds per combination (default: 1)\n"
      "  --corners a,b             slow|nominal|fast (default: nominal)\n"
      "  --corner-spread X         corner technology spread (default: 0.1)\n"
      "  --episodes N              training episodes per job (default: 300)\n"
      "  --eval-episodes N         intermediate-eval episodes (default: per circuit)\n"
      "  --workers N               shared-pool workers (default: 1)\n"
      "  --checkpoint-every N      episodes between checkpoints (default: 50)\n"
      "  --retries N               retry budget per failed job; exhausted ->\n"
      "                            quarantined, campaign continues (default: 2)\n"
      "  --no-resume               ignore existing done markers and checkpoints\n"
      "  --crash-after-checkpoints N  _Exit(42) after the Nth checkpoint (testing)\n"
      "  --status DIR              pretty-print DIR/campaign_status.json and exit\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::CampaignAxes axes;
  rl::CampaignConfig cfg;
  cfg.outDir = "crl_campaign";
  cfg.checkpointEvery = 50;
  // The CLI front door assumes unattended fleet runs, so unlike the library
  // default (0: fail fast, the unit-test contract) a failed job gets retried
  // before being quarantined.
  cfg.maxJobRetries = 2;
  long crashAfter = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--status") return printStatus(value());
    else if (arg == "--out") cfg.outDir = value();
    else if (arg == "--circuits") {
      axes.circuits.clear();
      for (const auto& c : splitCsv(value())) axes.circuits.push_back(parseCircuit(c));
    } else if (arg == "--methods") {
      axes.kinds.clear();
      for (const auto& m : splitCsv(value())) axes.kinds.push_back(parseKind(m));
    } else if (arg == "--seeds") axes.seeds = std::atoi(value().c_str());
    else if (arg == "--corners") axes.corners = splitCsv(value());
    else if (arg == "--corner-spread") axes.cornerSpread = std::atof(value().c_str());
    else if (arg == "--episodes") axes.episodes = std::atoi(value().c_str());
    else if (arg == "--eval-episodes") axes.evalEpisodes = std::atoi(value().c_str());
    else if (arg == "--workers") cfg.workers = static_cast<std::size_t>(std::atoi(value().c_str()));
    else if (arg == "--checkpoint-every") cfg.checkpointEvery = std::atoi(value().c_str());
    else if (arg == "--retries") cfg.maxJobRetries = std::atoi(value().c_str());
    else if (arg == "--no-resume") cfg.resume = false;
    else if (arg == "--crash-after-checkpoints") crashAfter = std::atol(value().c_str());
    else usage();
  }
  if (axes.seeds <= 0 || axes.episodes <= 0) usage();

  if (crashAfter >= 0) {
    // Shared across worker threads: the campaign dies after N checkpoint
    // writes total, wherever they land.
    static std::atomic<long> checkpointsLeft{0};
    checkpointsLeft.store(crashAfter);
    cfg.onCheckpoint = [](const std::string& job, int episode) {
      if (checkpointsLeft.fetch_sub(1) <= 1) {
        std::fprintf(stderr, "crash-after-checkpoints: dying after %s @ episode %d\n",
                     job.c_str(), episode);
        std::fflush(stderr);
        std::_Exit(42);  // no destructors, no atexit — a SIGKILL stand-in
      }
    };
  }

  rl::CampaignRunner runner(cfg);
  std::vector<rl::CampaignJob> jobs;
  try {
    jobs = core::buildSizingJobs(axes);
    for (auto& job : jobs) runner.addJob(std::move(job));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("campaign: %zu job(s), %zu worker(s), checkpoint every %d episode(s), out=%s\n",
              jobs.size(), cfg.workers, cfg.checkpointEvery, cfg.outDir.c_str());
  const auto results = runner.run();

  bool anyFailed = false;
  for (const auto& r : results) {
    if (r.failed) {
      anyFailed = true;
      std::printf("%-40s %s after %d attempt(s): %s\n", r.name.c_str(),
                  r.quarantined ? "QUARANTINED" : "FAILED", r.attempts,
                  r.error.c_str());
      continue;
    }
    std::printf("%-40s reward %8.3f  length %6.2f  accuracy %.3f  (%d ep)%s%s\n",
                r.name.c_str(), r.finalMeanReward, r.finalMeanLength,
                r.finalAccuracy, r.episodes,
                r.skipped ? " [skipped]" : r.resumed ? " [resumed]" : "",
                r.attempts > 1 ? " [retried]" : "");
  }
  return anyFailed ? 1 : 0;
}
