// Sensitivity / robustness tour of a sized op-amp: the quantitative version
// of the "design trade-offs" a human designer (and the paper's FCNN spec
// pathway) reasons about.
//
//   $ ./build/sensitivity_analysis
//   $ CRL_SPICE_WORKERS=4 ./build/sensitivity_analysis   # pooled probes
//
// Prints the spec/parameter elasticity matrix, a Monte-Carlo yield estimate
// under mismatch-style parameter perturbations, and slow/nominal/fast
// corner specs. With CRL_SPICE_WORKERS > 1 every probe batch fans out over
// BenchmarkPool lanes — the numbers are bit-identical either way.
#include <cstdio>

#include "circuit/analysis.h"
#include "circuit/opamp.h"
#include "spice/session.h"

using namespace crl;

int main() {
  circuit::TwoStageOpAmp amp;
  spice::SimSession session(spice::SimSession::workersFromEnv());
  std::printf("simulation session: %zu worker(s)\n", session.workerCount());

  // A moderate sizing in the Miller-dominated regime.
  auto sizing = amp.designSpace().midpoint();
  for (std::size_t i = 0; i < 7; ++i) {
    sizing[2 * i] = 10.0;
    sizing[2 * i + 1] = 4.0;
  }
  sizing[14] = 4.0;
  sizing = amp.designSpace().clamp(sizing);

  auto m = amp.measureAt(sizing, circuit::Fidelity::Fine);
  std::printf("base sizing: gain=%.1f ugbw=%.3g Hz pm=%.1f deg power=%.3g W\n\n",
              m.specs[0], m.specs[1], m.specs[2], m.specs[3]);

  // 1. Elasticity matrix: % spec change per % parameter change.
  circuit::SensitivityOptions sopt;
  sopt.session = &session;
  auto sens = circuit::specSensitivity(amp, sizing, sopt);
  if (!sens.valid) {
    std::printf("sensitivity failed to simulate\n");
    return 1;
  }
  std::printf("elasticity (rows: gain, ugbw, pm, power; |e| > 0.05 shown):\n");
  const char* specNames[4] = {"gain ", "ugbw ", "pm   ", "power"};
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("  %s:", specNames[i]);
    for (std::size_t j = 0; j < amp.designSpace().size(); ++j) {
      const double e = sens.elasticity(i, j);
      if (e > 0.05 || e < -0.05)
        std::printf(" %s%+.2f", amp.designSpace().param(j).name.c_str(), e);
    }
    std::printf("\n");
  }

  // 2. Monte-Carlo yield against a spec target with some margin.
  std::vector<double> target{0.8 * m.specs[0], 0.5 * m.specs[1], 50.0, 2.0 * m.specs[3]};
  util::Rng rng(42);
  circuit::YieldOptions yopt;
  yopt.sigmaFrac = 0.03;
  yopt.samples = 60;
  yopt.session = &session;
  auto yld = circuit::monteCarloYield(amp, sizing, target, rng, yopt);
  std::printf("\nMonte-Carlo (sigma = 3%% of range, %d samples): yield %.0f%%"
              " (%d/%d valid)\n",
              yld.samples, 100.0 * yld.yield, yld.validCount, yld.samples);
  std::printf("  gain  spread: mean %.1f sd %.1f\n", yld.specStats[0].mean(),
              yld.specStats[0].stddev());
  std::printf("  power spread: mean %.3g sd %.3g\n", yld.specStats[3].mean(),
              yld.specStats[3].stddev());

  // 3. Corners.
  std::printf("\ncorners (all parameters scaled together):\n");
  for (const auto& c :
       circuit::cornerSweep(amp, sizing, 0.1, circuit::Fidelity::Fine, &session)) {
    if (!c.valid) {
      std::printf("  %-8s did not converge\n", c.name.c_str());
      continue;
    }
    std::printf("  %-8s gain=%.1f ugbw=%.3g pm=%.1f power=%.3g\n", c.name.c_str(),
                c.specs[0], c.specs[1], c.specs[2], c.specs[3]);
  }
  return 0;
}
