// Deployment CLI: load a policy trained by bench/fig3_opamp_training (or
// train a fresh one if no artifact exists) and size the two-stage op-amp
// for specs given on the command line.
//
//   $ ./build/examples/deploy_cli [gain ugbw_hz pm_deg power_w] [policy.bin]
//   $ ./build/examples/deploy_cli 350 1.8e7 55 4e-3 crl_artifacts/policy_opamp_GCN-FC.bin
//
// This is the "design automation" deployment mode of Sec. 4: the trained
// agent iteratively tunes the 15 device parameters until every spec is met,
// and the result is printed as a SPICE deck ready for any simulator.
#include <cstdio>
#include <cstdlib>

#include "circuit/opamp.h"
#include "core/deploy.h"
#include "core/policies.h"
#include "envs/sizing_env.h"
#include "nn/serialize.h"
#include "rl/ppo.h"
#include "spice/parser.h"

using namespace crl;

int main(int argc, char** argv) {
  std::vector<double> target{350.0, 1.8e7, 55.0, 4e-3};
  if (argc >= 5) {
    for (int i = 0; i < 4; ++i) target[static_cast<std::size_t>(i)] = std::atof(argv[i + 1]);
  }
  std::string artifact =
      argc >= 6 ? argv[5] : "crl_artifacts/policy_opamp_GCN-FC.bin";

  circuit::TwoStageOpAmp amp;
  envs::SizingEnv env(amp, {.maxSteps = 50});
  util::Rng rng(1);
  auto policy = core::makePolicy(core::PolicyKind::GcnFc, env, rng);

  // Missing artifact -> train from scratch. Present-but-unusable artifact
  // (corrupt, truncated, wrong architecture) -> hard error: silently
  // deploying a freshly initialized policy in its place would look like a
  // badly trained agent and waste a sizing run.
  auto params = policy->parameters();
  std::string loadError;
  // The adapter transparently repacks artifacts saved in the retired
  // per-head GAT parameter layout.
  nn::ParamAdapter adapter = [&policy](std::vector<linalg::Mat>& m) {
    return policy->adaptLegacyParameterMats(m);
  };
  switch (nn::loadParametersDetailed(artifact, params, &loadError, adapter)) {
    case nn::LoadResult::Ok:
      std::printf("loaded trained policy from %s\n", artifact.c_str());
      break;
    case nn::LoadResult::Missing: {
      std::printf("no artifact at %s — training a fresh policy (1200 episodes)...\n",
                  artifact.c_str());
      rl::PpoTrainer trainer(env, *policy, {}, util::Rng(2));
      trainer.train(1200);
      break;
    }
    case nn::LoadResult::Invalid:
      std::fprintf(stderr, "error: policy artifact %s is unusable: %s\n",
                   artifact.c_str(), loadError.c_str());
      return 2;
  }

  std::printf("target: gain>=%.4g, ugbw>=%.4g Hz, pm>=%.4g deg, power<=%.3g W\n",
              target[0], target[1], target[2], target[3]);

  util::Rng deployRng(7);
  auto result = core::runDeployment(env, *policy, target, deployRng,
                                    {.recordTrajectory = true});
  std::printf("%s in %d steps\n", result.success ? "SUCCESS" : "did not converge",
              result.steps);
  std::printf("final specs: gain=%.1f ugbw=%.4g Hz pm=%.1f deg power=%.4g W\n",
              result.finalSpecs[0], result.finalSpecs[1], result.finalSpecs[2],
              result.finalSpecs[3]);

  std::printf("\nsized parameters:\n");
  for (std::size_t i = 0; i < result.finalParams.size(); ++i)
    std::printf("  %-6s = %.4g\n", amp.designSpace().param(i).name.c_str(),
                result.finalParams[i]);

  // Emit the sized circuit as a SPICE deck (the DPM's "updated netlist").
  amp.setParams(result.finalParams);
  std::printf("\n%s", spice::writeDeck(amp.netlist(), "sized two-stage op-amp").c_str());
  return result.success ? 0 : 1;
}
