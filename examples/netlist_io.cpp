// Netlist I/O tour: parse a parameterized SPICE deck, simulate it (DC + AC),
// tweak a device programmatically, and write the deck back out.
//
//   $ ./build/examples/netlist_io
//
// Demonstrates the textual substrate of the paper's design environment: the
// data-processing module reads/updates/rewrites netlists exactly like this.
#include <cstdio>

#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/parser.h"

using namespace crl;

static const char* kDeck = R"(common-source amplifier with parameterized sizing
.param wamp=2u nfamp=2 rload=15k
.model nch NMOS (kp=300u vth=0.35 lambda=0.25 l=150n)
Vdd vdd 0 DC 1.2
Vin in 0 DC 0.45 AC 1
Rd vdd out {rload}
M1 out in 0 nch W={wamp} NF={nfamp}
CL out 0 50f
.end
)";

int main() {
  // 1. Parse. `.param` expressions are evaluated during parsing; callers can
  //    also inject sweep variables through DeckOptions::params.
  auto deck = spice::parseDeck(kDeck);
  std::printf("parsed \"%s\": %zu devices, %zu nodes\n", deck.title.c_str(),
              deck.netlist->devices().size(), deck.netlist->nodeCount());
  for (const auto& w : deck.warnings) std::printf("  warning: %s\n", w.c_str());

  // 2. Simulate: DC operating point, then the AC gain at the output.
  spice::DcAnalysis dc(*deck.netlist);
  auto op = dc.solve();
  std::printf("DC converged (%s): V(out) = %.3f V\n", op.strategy,
              spice::Netlist::voltageOf(op.x, deck.netlist->findNode("out")));

  spice::AcAnalysis ac(*deck.netlist, op.x);
  auto lowF = ac.nodeVoltage(1e3, deck.netlist->findNode("out"));
  std::printf("low-frequency gain: %.2f (%.1f dB)\n", std::abs(lowF),
              20.0 * std::log10(std::abs(lowF)));

  // 3. Rewrite a parameter the way the paper's DPM does after an RL action:
  //    here, halve the load resistor.
  auto* rd = dynamic_cast<spice::Resistor*>(deck.netlist->findDevice("Rd"));
  rd->setResistance(rd->resistance() / 2.0);
  auto op2 = spice::DcAnalysis(*deck.netlist).solve();
  spice::AcAnalysis ac2(*deck.netlist, op2.x);
  auto lowF2 = ac2.nodeVoltage(1e3, deck.netlist->findNode("out"));
  std::printf("after halving Rd: gain %.2f -> %.2f\n", std::abs(lowF), std::abs(lowF2));

  // 4. Serialize back to SPICE text (round-trips through parseDeck).
  std::printf("\nupdated deck:\n%s",
              spice::writeDeck(*deck.netlist, "updated common-source amplifier").c_str());

  // 5. Prove the round trip: parse the emitted text and re-simulate.
  auto again = spice::parseDeck(spice::writeDeck(*deck.netlist));
  auto op3 = spice::DcAnalysis(*again.netlist).solve();
  std::printf("round-trip DC matches: %.6f == %.6f\n",
              spice::Netlist::voltageOf(op2.x, deck.netlist->findNode("out")),
              spice::Netlist::voltageOf(op3.x, again.netlist->findNode("out")));
  return 0;
}
