// FoM-optimization example (Sec. 4): instead of hitting a spec group,
// maximize the RF PA figure of merit FoM = Pout + 3 * efficiency with the
// RL agent, and compare against Bayesian Optimization on the same budget
// of fine simulations.
//
//   $ ./build/examples/fom_optimization
#include <cstdio>

#include "baselines/optimizers.h"
#include "circuit/rfpa.h"
#include "core/policies.h"
#include "envs/fom_env.h"
#include "rl/ppo.h"

using namespace crl;

int main() {
  // RL agent on the normalized FoM reward, trained in the coarse env.
  circuit::GanRfPa pa;
  envs::FomEnv env(pa, {.maxSteps = 30, .fidelity = circuit::Fidelity::Coarse});
  util::Rng rng(7);
  auto policy = core::makePolicy(core::PolicyKind::GcnFc, env, rng);
  rl::PpoTrainer trainer(env, *policy, {}, util::Rng(3));

  double bestFom = -1e18;
  std::vector<double> bestParams = pa.designSpace().midpoint();
  std::printf("training GCN-FC on the FoM reward (500 episodes, coarse env)...\n");
  trainer.train(500, [&](const rl::EpisodeStats& s) {
    if (env.bestFom() > bestFom) {
      bestFom = env.bestFom();
      bestParams = env.bestParams();
    }
    if (s.episode % 100 == 0)
      std::printf("  episode %d: best coarse FoM so far %.3f\n", s.episode, bestFom);
  });

  auto fine = pa.measureAt(bestParams, circuit::Fidelity::Fine);
  std::printf("RL best design re-measured fine: FoM %.3f (eff %.3f, pout %.3f W)\n",
              envs::fomOf(fine.specs), fine.specs[0], fine.specs[1]);

  // Bayesian Optimization directly on the fine simulator.
  std::printf("\nrunning Bayesian Optimization on the fine simulator (~100 sims)...\n");
  util::Rng boRng(11);
  baselines::BoConfig cfg;
  cfg.stopAtTarget = false;
  baselines::BayesianOptimization bo(cfg);
  auto boRes = bo.optimize(pa, circuit::Fidelity::Fine, baselines::fomObjective(), boRng);
  std::printf("BO best FoM %.3f after %d fine simulations\n", boRes.bestObjective,
              boRes.evaluations);

  std::printf("\npaper's finding reproduced when RL FoM >= BO FoM.\n");
  return 0;
}
