#include "circuit/graph.h"

#include <gtest/gtest.h>

#include "spice/elements.h"

namespace crl::circuit {
namespace {

TEST(CircuitGraph, AdjacencyAndDegrees) {
  std::vector<GraphNode> nodes(3);
  nodes[0] = {"a", GraphNodeType::Nmos, nullptr};
  nodes[1] = {"b", GraphNodeType::Pmos, nullptr};
  nodes[2] = {"c", GraphNodeType::Supply, nullptr};
  CircuitGraph g(std::move(nodes), {{0, 1}, {1, 2}});
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_EQ(g.degree(1), 2);
}

TEST(CircuitGraph, RejectsBadEdges) {
  std::vector<GraphNode> nodes(2);
  nodes[0] = {"a", GraphNodeType::Nmos, nullptr};
  nodes[1] = {"b", GraphNodeType::Nmos, nullptr};
  EXPECT_THROW(CircuitGraph(std::move(nodes), {{0, 5}}), std::invalid_argument);
}

TEST(CircuitGraph, NormalizedAdjacencyRowsOfIsolatedNode) {
  std::vector<GraphNode> nodes(2);
  nodes[0] = {"a", GraphNodeType::Nmos, nullptr};
  nodes[1] = {"b", GraphNodeType::Nmos, nullptr};
  CircuitGraph g(std::move(nodes), {});
  // With no edges, A* = I (self loops normalized by degree 1).
  EXPECT_NEAR(g.normalizedAdjacency()(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(g.normalizedAdjacency()(0, 1), 0.0, 1e-12);
}

TEST(CircuitGraph, NormalizedAdjacencySymmetricAndScaled) {
  std::vector<GraphNode> nodes(3);
  for (int i = 0; i < 3; ++i) nodes[i] = {"n", GraphNodeType::Nmos, nullptr};
  CircuitGraph g(std::move(nodes), {{0, 1}, {1, 2}});
  const auto& a = g.normalizedAdjacency();
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(a(i, j), a(j, i), 1e-12);
  // Node 1 has degree 3 (with self loop); nodes 0,2 degree 2.
  EXPECT_NEAR(a(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(a(0, 1), 1.0 / std::sqrt(6.0), 1e-12);
}

TEST(CircuitGraph, AttentionMask) {
  std::vector<GraphNode> nodes(3);
  for (int i = 0; i < 3; ++i) nodes[i] = {"n", GraphNodeType::Nmos, nullptr};
  CircuitGraph g(std::move(nodes), {{0, 1}});
  EXPECT_DOUBLE_EQ(g.attentionMask()(0, 0), 0.0);   // self loop allowed
  EXPECT_DOUBLE_EQ(g.attentionMask()(0, 1), 0.0);   // edge
  EXPECT_LT(g.attentionMask()(0, 2), -1e8);          // non-edge
}

TEST(CircuitGraph, FeaturesEncodeTypeAndParams) {
  std::vector<GraphNode> nodes(2);
  nodes[0] = {"m", GraphNodeType::Pmos, [](double* s) { s[0] = 0.25; s[1] = 0.75; }};
  nodes[1] = {"vp", GraphNodeType::Supply, nullptr};
  CircuitGraph g(std::move(nodes), {{0, 1}});
  auto x = g.features();
  ASSERT_EQ(x.rows(), 2u);
  ASSERT_EQ(x.cols(), static_cast<std::size_t>(kNodeFeatureDim));
  // Pmos = 1 -> binary 0001.
  EXPECT_DOUBLE_EQ(x(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(x(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(x(0, 4), 0.25);
  EXPECT_DOUBLE_EQ(x(0, 5), 0.75);
  // Supply = 6 -> binary 0110; params zero-padded.
  EXPECT_DOUBLE_EQ(x(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(x(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(x(1, 3), 0.0);
  EXPECT_DOUBLE_EQ(x(1, 4), 0.0);
}

TEST(GraphBuilder, DerivesEdgesFromNetlist) {
  spice::Netlist net;
  auto vdd = net.node("vdd");
  auto a = net.node("a");
  auto b = net.node("b");
  auto* r1 = net.add<spice::Resistor>("R1", vdd, a, 1e3);
  auto* r2 = net.add<spice::Resistor>("R2", a, b, 1e3);
  auto* r3 = net.add<spice::Resistor>("R3", b, spice::kGround, 1e3);

  GraphBuilder builder(net);
  builder.addDevice(r1, GraphNodeType::Resistor, nullptr);
  builder.addDevice(r2, GraphNodeType::Resistor, nullptr);
  builder.addDevice(r3, GraphNodeType::Resistor, nullptr);
  builder.addNetNode(vdd, GraphNodeType::Supply, "VP", nullptr);
  builder.addNetNode(spice::kGround, GraphNodeType::Ground, "GND", nullptr);
  CircuitGraph g = builder.build();

  ASSERT_EQ(g.nodeCount(), 5u);
  EXPECT_TRUE(g.hasEdge(0, 1));   // share net a
  EXPECT_TRUE(g.hasEdge(1, 2));   // share net b
  EXPECT_FALSE(g.hasEdge(0, 2));  // no shared ordinary net
  EXPECT_TRUE(g.hasEdge(0, 3));   // R1 touches vdd
  EXPECT_FALSE(g.hasEdge(1, 3));
  EXPECT_TRUE(g.hasEdge(2, 4));   // R3 touches ground
}

TEST(GraphBuilder, SpecialNetsDoNotShortDevicesTogether) {
  // Two devices sharing only the supply net must not get a direct edge.
  spice::Netlist net;
  auto vdd = net.node("vdd");
  auto a = net.node("a");
  auto b = net.node("b");
  auto* r1 = net.add<spice::Resistor>("R1", vdd, a, 1e3);
  auto* r2 = net.add<spice::Resistor>("R2", vdd, b, 1e3);
  GraphBuilder builder(net);
  builder.addDevice(r1, GraphNodeType::Resistor, nullptr);
  builder.addDevice(r2, GraphNodeType::Resistor, nullptr);
  builder.addNetNode(vdd, GraphNodeType::Supply, "VP", nullptr);
  CircuitGraph g = builder.build();
  EXPECT_FALSE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(0, 2));
  EXPECT_TRUE(g.hasEdge(1, 2));
}

}  // namespace
}  // namespace crl::circuit
