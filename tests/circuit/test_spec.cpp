#include "circuit/spec.h"

#include <gtest/gtest.h>

namespace crl::circuit {
namespace {

SpecSpace opampLike() {
  return SpecSpace({
      {"gain", 300.0, 500.0, SpecDirection::Maximize, false},
      {"bw", 1e6, 2.5e7, SpecDirection::Maximize, true},
      {"power", 1e-4, 1e-2, SpecDirection::Minimize, true},
  });
}

TEST(SpecSpace, RejectsBadRanges) {
  EXPECT_THROW(SpecSpace({{"x", 2.0, 1.0, SpecDirection::Maximize, false}}),
               std::invalid_argument);
  EXPECT_THROW(SpecSpace({{"x", -1.0, 1.0, SpecDirection::Maximize, true}}),
               std::invalid_argument);
}

TEST(SpecSpace, SampleInRange) {
  SpecSpace s = opampLike();
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    auto g = s.sample(rng);
    EXPECT_GE(g[0], 300.0);
    EXPECT_LE(g[0], 500.0);
    EXPECT_GE(g[1], 1e6);
    EXPECT_LE(g[1], 2.5e7);
    EXPECT_GE(g[2], 1e-4);
    EXPECT_LE(g[2], 1e-2);
  }
}

TEST(SpecSpace, LogSamplingCoversDecades) {
  // A log-scaled spec should place a fair share of samples in the bottom
  // decade (uniform sampling would put ~4% there; log-uniform ~50%).
  SpecSpace s = opampLike();
  util::Rng rng(7);
  int lowDecade = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto g = s.sample(rng);
    if (g[2] < 1e-3) ++lowDecade;
  }
  EXPECT_GT(lowDecade, n / 3);
}

TEST(SpecSpace, SampleUnseenIsOutsideBox) {
  SpecSpace s = opampLike();
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    auto g = s.sampleUnseen(rng);
    for (std::size_t k = 0; k < s.size(); ++k) {
      const auto& d = s.spec(k);
      EXPECT_TRUE(g[k] < d.sampleMin || g[k] > d.sampleMax)
          << "spec " << k << " inside sampling box";
      EXPECT_GT(g[k], 0.0);
    }
  }
}

TEST(SpecSpace, RewardZeroWhenAllSatisfied) {
  SpecSpace s = opampLike();
  // gain above, bw above, power below target: all satisfied.
  EXPECT_DOUBLE_EQ(s.reward({400.0, 2e7, 1e-3}, {350.0, 1e7, 5e-3}), 0.0);
  EXPECT_TRUE(s.satisfied({400.0, 2e7, 1e-3}, {350.0, 1e7, 5e-3}));
}

TEST(SpecSpace, RewardNegativeWhenShort) {
  SpecSpace s = opampLike();
  double r = s.reward({300.0, 2e7, 1e-3}, {350.0, 1e7, 5e-3});
  EXPECT_LT(r, 0.0);
  // Only the gain term contributes: (300-350)/(300+350).
  EXPECT_NEAR(r, (300.0 - 350.0) / (300.0 + 350.0), 1e-12);
}

TEST(SpecSpace, MinimizeDirectionFlips) {
  SpecSpace s = opampLike();
  // Power above target hurts.
  double r = s.reward({400.0, 2e7, 8e-3}, {350.0, 1e7, 5e-3});
  EXPECT_NEAR(r, -(8e-3 - 5e-3) / (8e-3 + 5e-3), 1e-12);
  EXPECT_FALSE(s.satisfied({400.0, 2e7, 8e-3}, {350.0, 1e7, 5e-3}));
}

TEST(SpecSpace, RewardIsBoundedPerSpec) {
  SpecSpace s = opampLike();
  // Each normalized-difference term lies in [-1, 0].
  double r = s.reward({1e-6, 1.0, 1.0}, {500.0, 2.5e7, 1e-4});
  EXPECT_LE(r, 0.0);
  EXPECT_GE(r, -3.0);
}

TEST(SpecSpace, RewardNoOverOptimizationCredit) {
  // Exceeding targets hugely gives no more than zero (Eq. 1's upper bound).
  SpecSpace s = opampLike();
  EXPECT_DOUBLE_EQ(s.reward({1e6, 1e9, 1e-9}, {350.0, 1e7, 5e-3}), 0.0);
}

TEST(SpecSpace, NormalizeCentersSamplingBox) {
  SpecSpace s = opampLike();
  auto lo = s.normalize({300.0, 1e6, 1e-4});
  auto hi = s.normalize({500.0, 2.5e7, 1e-2});
  for (double v : lo) EXPECT_NEAR(v, -1.0, 1e-9);
  for (double v : hi) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(SpecSpace, NormalizeClipsExtremes) {
  SpecSpace s = opampLike();
  auto v = s.normalize({1e9, 1e12, 1e3});
  for (double x : v) {
    EXPECT_LE(x, 3.0);
    EXPECT_GE(x, -3.0);
  }
}

TEST(SpecSpace, ContributionMatchesRewardSum) {
  SpecSpace s = opampLike();
  std::vector<double> a{320.0, 5e6, 3e-3}, t{400.0, 1e7, 1e-3};
  double sum = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) sum += s.contribution(i, a[i], t[i]);
  EXPECT_NEAR(sum, s.reward(a, t), 1e-12);
}

}  // namespace
}  // namespace crl::circuit
