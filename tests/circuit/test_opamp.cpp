#include "circuit/opamp.h"

#include <gtest/gtest.h>

namespace crl::circuit {
namespace {

class OpAmpTest : public ::testing::Test {
 protected:
  TwoStageOpAmp amp_;
};

TEST_F(OpAmpTest, DesignSpaceMatchesTable1) {
  const auto& s = amp_.designSpace();
  ASSERT_EQ(s.size(), 15u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(s.param(2 * i).min, 1.0);
    EXPECT_DOUBLE_EQ(s.param(2 * i).max, 100.0);
    EXPECT_DOUBLE_EQ(s.param(2 * i + 1).min, 2.0);
    EXPECT_DOUBLE_EQ(s.param(2 * i + 1).max, 32.0);
    EXPECT_TRUE(s.param(2 * i + 1).integer);
  }
  EXPECT_DOUBLE_EQ(s.param(14).min, 0.1);
  EXPECT_DOUBLE_EQ(s.param(14).max, 10.0);
}

TEST_F(OpAmpTest, SpecSpaceMatchesTable1) {
  const auto& s = amp_.specSpace();
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.spec(0).name, "gain");
  EXPECT_DOUBLE_EQ(s.spec(0).sampleMin, 300.0);
  EXPECT_DOUBLE_EQ(s.spec(0).sampleMax, 500.0);
  EXPECT_DOUBLE_EQ(s.spec(1).sampleMin, 1e6);
  EXPECT_DOUBLE_EQ(s.spec(1).sampleMax, 2.5e7);
  EXPECT_DOUBLE_EQ(s.spec(2).sampleMin, 55.0);
  EXPECT_DOUBLE_EQ(s.spec(2).sampleMax, 60.0);
  EXPECT_EQ(s.spec(3).direction, SpecDirection::Minimize);
}

TEST_F(OpAmpTest, MidpointMeasurementIsValid) {
  auto m = amp_.measure(Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  ASSERT_EQ(m.specs.size(), 4u);
  EXPECT_GT(m.specs[0], 10.0);    // healthy gain
  EXPECT_GT(m.specs[1], 1e6);     // some bandwidth
  EXPECT_GT(m.specs[3], 1e-5);    // nonzero power
  EXPECT_LT(m.specs[3], 1.0);
}

TEST_F(OpAmpTest, MeasurementIsDeterministic) {
  auto p = amp_.designSpace().midpoint();
  auto a = amp_.measureAt(p, Fidelity::Fine);
  auto b = amp_.measureAt(p, Fidelity::Fine);
  ASSERT_TRUE(a.valid && b.valid);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(a.specs[i], b.specs[i], 1e-6 * std::abs(a.specs[i]) + 1e-9);
}

TEST_F(OpAmpTest, PowerScalesWithCurrentSourceWidth) {
  // Growing M5 (tail) and M7 (sink) raises the supply current.
  auto p = amp_.designSpace().midpoint();
  auto base = amp_.measureAt(p, Fidelity::Fine);
  auto bigger = p;
  bigger[8] = 100.0;  // M5.W
  bigger[9] = 32.0;   // M5.nf
  bigger[12] = 100.0; // M7.W
  bigger[13] = 32.0;  // M7.nf
  auto big = amp_.measureAt(bigger, Fidelity::Fine);
  ASSERT_TRUE(base.valid && big.valid);
  EXPECT_GT(big.specs[3], base.specs[3]);
}

TEST_F(OpAmpTest, BandwidthFallsWithBiggerCompCap) {
  // Use a small sizing where the Miller capacitor (not device parasitics)
  // sets the dominant pole; then UGBW ~ gm1 / (2 pi Cc).
  std::vector<double> p(15);
  for (int i = 0; i < 7; ++i) {
    p[2 * i] = 1.0;
    p[2 * i + 1] = 2.0;
  }
  p[14] = 0.43;
  auto fast = amp_.measureAt(p, Fidelity::Fine);
  p[14] = 10.0;
  auto slow = amp_.measureAt(p, Fidelity::Fine);
  ASSERT_TRUE(fast.valid && slow.valid);
  EXPECT_GT(fast.specs[1], 2.0 * slow.specs[1]);
}

TEST_F(OpAmpTest, MinimumSizingReachesLowPowerCorner) {
  std::vector<double> p(15);
  for (int i = 0; i < 7; ++i) {
    p[2 * i] = 1.0;
    p[2 * i + 1] = 2.0;
  }
  p[14] = 10.0;
  auto m = amp_.measureAt(p, Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  EXPECT_LT(m.specs[3], 1.2e-4);  // Table 1's lowest power target reachable
  EXPECT_GT(m.specs[2], 55.0);    // with healthy phase margin
}

TEST_F(OpAmpTest, GraphHasFullTopology) {
  const auto& g = amp_.graph();
  // 7 FETs + Cc + CL + Rz + VP + GND + Vbias = 13 nodes.
  EXPECT_EQ(g.nodeCount(), 13u);
  int supply = 0, ground = 0, bias = 0;
  for (std::size_t i = 0; i < g.nodeCount(); ++i) {
    auto t = g.node(i).type;
    supply += t == GraphNodeType::Supply;
    ground += t == GraphNodeType::Ground;
    bias += t == GraphNodeType::Bias;
  }
  EXPECT_EQ(supply, 1);
  EXPECT_EQ(ground, 1);
  EXPECT_EQ(bias, 1);
}

TEST_F(OpAmpTest, GraphFeaturesTrackParams) {
  auto p = amp_.designSpace().midpoint();
  p[0] = 1.0;  // M1.W at minimum
  amp_.setParams(p);
  auto x = amp_.graph().features();
  EXPECT_NEAR(x(0, kTypeBits + 0), 0.0, 1e-9);
  p[0] = 100.0;
  amp_.setParams(p);
  x = amp_.graph().features();
  EXPECT_NEAR(x(0, kTypeBits + 0), 1.0, 1e-9);
}

TEST_F(OpAmpTest, InvalidParamCountThrows) {
  EXPECT_THROW(amp_.setParams({1.0, 2.0}), std::invalid_argument);
}

TEST_F(OpAmpTest, SimCountIncrements) {
  long before = amp_.simCount(Fidelity::Fine);
  amp_.measure(Fidelity::Fine);
  EXPECT_EQ(amp_.simCount(Fidelity::Fine), before + 1);
}

}  // namespace
}  // namespace crl::circuit
