#include "circuit/design_space.h"

#include <gtest/gtest.h>

namespace crl::circuit {
namespace {

DesignSpace smallSpace() {
  return DesignSpace({
      {"w", 1.0, 10.0, 0.5, false},
      {"nf", 2.0, 8.0, 1.0, true},
  });
}

TEST(DesignSpace, RejectsBadSpecs) {
  EXPECT_THROW(DesignSpace({{"x", 5.0, 1.0, 0.5, false}}), std::invalid_argument);
  EXPECT_THROW(DesignSpace({{"x", 0.0, 1.0, 0.0, false}}), std::invalid_argument);
}

TEST(DesignSpace, SampleStaysOnGridAndInBounds) {
  DesignSpace s = smallSpace();
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    auto x = s.sample(rng);
    EXPECT_GE(x[0], 1.0);
    EXPECT_LE(x[0], 10.0);
    // Grid: value - min divisible by step.
    double k = (x[0] - 1.0) / 0.5;
    EXPECT_NEAR(k, std::round(k), 1e-9);
    EXPECT_DOUBLE_EQ(x[1], std::round(x[1]));  // integer param
  }
}

TEST(DesignSpace, MidpointSnapped) {
  DesignSpace s = smallSpace();
  auto m = s.midpoint();
  EXPECT_NEAR(m[0], 5.5, 0.26);
  EXPECT_NEAR(m[1], 5.0, 0.51);
}

TEST(DesignSpace, ClampPullsIntoBounds) {
  DesignSpace s = smallSpace();
  auto c = s.clamp({-5.0, 100.0});
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 8.0);
}

TEST(DesignSpace, ApplyActionsMovesOneStep) {
  DesignSpace s = smallSpace();
  std::vector<double> x{5.0, 4.0};
  auto up = s.applyActions(x, {1, 1});
  EXPECT_DOUBLE_EQ(up[0], 5.5);
  EXPECT_DOUBLE_EQ(up[1], 5.0);
  auto down = s.applyActions(x, {-1, 0});
  EXPECT_DOUBLE_EQ(down[0], 4.5);
  EXPECT_DOUBLE_EQ(down[1], 4.0);
}

TEST(DesignSpace, ApplyActionsClampsAtBounds) {
  DesignSpace s = smallSpace();
  auto x = s.applyActions({1.0, 2.0}, {-1, -1});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(DesignSpace, ApplyActionsValidatesInput) {
  DesignSpace s = smallSpace();
  EXPECT_THROW(s.applyActions({1.0, 2.0}, {2, 0}), std::invalid_argument);
  EXPECT_THROW(s.applyActions({1.0, 2.0}, {0}), std::invalid_argument);
}

TEST(DesignSpace, NormalizeRoundTrip) {
  DesignSpace s = smallSpace();
  std::vector<double> x{5.5, 6.0};
  auto u = s.normalize(x);
  EXPECT_NEAR(u[0], 0.5, 1e-12);
  auto back = s.denormalize(u);
  EXPECT_DOUBLE_EQ(back[0], 5.5);
  EXPECT_DOUBLE_EQ(back[1], 6.0);
}

TEST(DesignSpace, GridLevels) {
  DesignSpace s = smallSpace();
  EXPECT_EQ(s.gridLevels(0), 19);  // 1.0 .. 10.0 step 0.5
  EXPECT_EQ(s.gridLevels(1), 7);   // 2 .. 8 step 1
}

TEST(DesignSpace, Contains) {
  DesignSpace s = smallSpace();
  EXPECT_TRUE(s.contains({5.0, 4.0}));
  EXPECT_FALSE(s.contains({0.0, 4.0}));
  EXPECT_FALSE(s.contains({5.0}));
}

class GridSweep : public ::testing::TestWithParam<int> {};

TEST_P(GridSweep, ActionWalkStaysOnGrid) {
  // Property: any sequence of actions keeps every parameter on its grid.
  DesignSpace s = smallSpace();
  util::Rng rng(GetParam());
  auto x = s.sample(rng);
  for (int step = 0; step < 100; ++step) {
    std::vector<int> a{rng.randint(-1, 1), rng.randint(-1, 1)};
    x = s.applyActions(x, a);
    ASSERT_TRUE(s.contains(x));
    double k = (x[0] - 1.0) / 0.5;
    ASSERT_NEAR(k, std::round(k), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace crl::circuit
