#include "circuit/analysis.h"

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/opamp.h"

namespace crl::circuit {
namespace {

// Spec indices of the op-amp benchmark.
constexpr std::size_t kGain = 0;
constexpr std::size_t kUgbw = 1;
constexpr std::size_t kPm = 2;
constexpr std::size_t kPower = 3;
// Parameter indices: 2*i is W of fet i (M1..M7), 2*i+1 its finger count,
// 14 is the compensation cap Cc.
constexpr std::size_t kCc = 14;

class AnalysisOpAmp : public ::testing::Test {
 protected:
  /// A moderate sizing in the Miller-dominated regime (the midpoint's very
  /// large devices are parasitics-dominated and outside the power spec box).
  std::vector<double> base() const {
    auto p = amp_.designSpace().midpoint();
    for (std::size_t i = 0; i < 7; ++i) {
      p[2 * i] = 10.0;
      p[2 * i + 1] = 4.0;
    }
    p[14] = 4.0;
    return amp_.designSpace().clamp(p);
  }

  TwoStageOpAmp amp_;
};

TEST_F(AnalysisOpAmp, SensitivityValidAtMidpoint) {
  auto res = specSensitivity(amp_, base());
  ASSERT_TRUE(res.valid);
  ASSERT_EQ(res.jacobian.rows(), amp_.specSpace().size());
  ASSERT_EQ(res.jacobian.cols(), amp_.designSpace().size());
  ASSERT_EQ(res.baseSpecs.size(), 4u);
}

TEST_F(AnalysisOpAmp, MillerCapSlowsTheAmplifier) {
  // Increasing the compensation cap must reduce the unity-gain bandwidth
  // (UGBW ~ gm1 / Cc) — the canonical Miller trade-off.
  auto res = specSensitivity(amp_, base());
  ASSERT_TRUE(res.valid);
  EXPECT_LT(res.jacobian(kUgbw, kCc), 0.0);
}

TEST_F(AnalysisOpAmp, MillerCapImprovesPhaseMargin) {
  auto res = specSensitivity(amp_, base());
  ASSERT_TRUE(res.valid);
  EXPECT_GT(res.jacobian(kPm, kCc), 0.0);
}

TEST_F(AnalysisOpAmp, WideningTheTailRaisesPower) {
  // M5 is the first-stage tail current source: more width -> more bias
  // current -> more power. W index of M5 (fets are M1..M7) is 2*4.
  auto res = specSensitivity(amp_, base());
  ASSERT_TRUE(res.valid);
  EXPECT_GT(res.jacobian(kPower, 2 * 4), 0.0);
}

TEST_F(AnalysisOpAmp, ElasticityIsScaleFree) {
  auto res = specSensitivity(amp_, base());
  ASSERT_TRUE(res.valid);
  // Elasticity = jacobian * p0 / s0 wherever both are nonzero.
  for (std::size_t i = 0; i < res.jacobian.rows(); ++i) {
    for (std::size_t j = 0; j < res.jacobian.cols(); ++j) {
      if (std::fabs(res.baseSpecs[i]) < 1e-30) continue;
      const double expected =
          res.jacobian(i, j) * res.baseParams[j] / res.baseSpecs[i];
      EXPECT_NEAR(res.elasticity(i, j), expected, 1e-9 * std::max(1.0, std::fabs(expected)));
    }
  }
}

TEST_F(AnalysisOpAmp, SensitivityRestoresBaseSizing) {
  auto b = base();
  specSensitivity(amp_, b);
  EXPECT_EQ(amp_.currentParams(), b);
}

TEST_F(AnalysisOpAmp, GainSensitivityMatchesDirectMeasurement) {
  // Cross-check one Jacobian entry against a direct two-point measurement.
  auto mid = base();
  SensitivityOptions opt;
  opt.relStep = 0.05;
  auto res = specSensitivity(amp_, mid, opt);
  ASSERT_TRUE(res.valid);

  const std::size_t j = kCc;
  const auto& p = amp_.designSpace().param(j);
  const double h = std::max(opt.relStep * (p.max - p.min), p.step);
  auto up = mid, dn = mid;
  up[j] = std::min(up[j] + h, p.max);
  dn[j] = std::max(dn[j] - h, p.min);
  up = amp_.designSpace().clamp(up);
  dn = amp_.designSpace().clamp(dn);
  // The toolkit measures every probe from a reset solver state (that is what
  // makes pooled runs schedule-independent); match it for an exact check.
  amp_.resetSolverState();
  auto mu = amp_.measureAt(up, Fidelity::Fine);
  amp_.resetSolverState();
  auto md = amp_.measureAt(dn, Fidelity::Fine);
  ASSERT_TRUE(mu.valid && md.valid);
  const double fd = (mu.specs[kGain] - md.specs[kGain]) / (up[j] - dn[j]);
  EXPECT_NEAR(res.jacobian(kGain, j), fd, 1e-9 * std::max(1.0, std::fabs(fd)));
}

// ------------------------------------------------------------- Monte Carlo

/// Targets with a little slack in the success direction of every spec, so
/// the nominal design passes robustly (exact-equality targets are fragile
/// against warm-start jitter in the DC solver).
std::vector<double> slackedTargets(const SpecSpace& space, std::vector<double> specs) {
  for (std::size_t i = 0; i < space.size(); ++i) {
    const double slack = 0.05 * std::fabs(specs[i]);
    specs[i] += space.spec(i).direction == SpecDirection::Maximize ? -slack : slack;
  }
  return specs;
}

TEST_F(AnalysisOpAmp, ZeroSigmaYieldIsAllOrNothing) {
  auto mid = base();
  auto m = amp_.measureAt(mid, Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  // Pick a target the sizing passes (its own specs with slack) and one it fails.
  util::Rng rng(1);
  YieldOptions opt;
  opt.sigmaFrac = 0.0;
  opt.samples = 10;
  auto pass = monteCarloYield(amp_, mid, slackedTargets(amp_.specSpace(), m.specs), rng, opt);
  EXPECT_EQ(pass.passCount, 10);
  EXPECT_DOUBLE_EQ(pass.yield, 1.0);

  auto hard = m.specs;
  hard[kGain] *= 100.0;  // unreachable gain target
  auto fail = monteCarloYield(amp_, mid, hard, rng, opt);
  EXPECT_EQ(fail.passCount, 0);
}

TEST_F(AnalysisOpAmp, YieldIsDeterministicGivenSeed) {
  auto mid = base();
  auto m = amp_.measureAt(mid, Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  YieldOptions opt;
  opt.sigmaFrac = 0.05;
  opt.samples = 20;
  util::Rng rngA(7), rngB(7);
  auto a = monteCarloYield(amp_, mid, m.specs, rngA, opt);
  auto b = monteCarloYield(amp_, mid, m.specs, rngB, opt);
  EXPECT_EQ(a.passCount, b.passCount);
  EXPECT_EQ(a.validCount, b.validCount);
}

TEST_F(AnalysisOpAmp, PerturbationSpreadsTheSpecDistribution) {
  auto mid = base();
  auto m = amp_.measureAt(mid, Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  YieldOptions opt;
  opt.sigmaFrac = 0.05;
  opt.samples = 30;
  util::Rng rng(11);
  auto res = monteCarloYield(amp_, mid, m.specs, rng, opt);
  ASSERT_GT(res.validCount, 10);
  // The gain distribution has nonzero spread under perturbation.
  EXPECT_GT(res.specStats[kGain].stddev(), 0.0);
}

TEST_F(AnalysisOpAmp, YieldCountsAreConsistent) {
  auto mid = base();
  auto m = amp_.measureAt(mid, Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  YieldOptions opt;
  opt.sigmaFrac = 0.03;
  opt.samples = 25;
  util::Rng rng(3);
  auto res = monteCarloYield(amp_, mid, m.specs, rng, opt);
  EXPECT_EQ(res.samples, 25);
  EXPECT_LE(res.passCount, res.validCount);
  EXPECT_LE(res.validCount, res.samples);
  EXPECT_DOUBLE_EQ(res.yield, res.passCount / 25.0);
}

// ----------------------------------------------------------------- corners

TEST_F(AnalysisOpAmp, CornerSweepCoversSlowNominalFast) {
  auto res = cornerSweep(amp_, base(), 0.1);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].name, "slow");
  EXPECT_EQ(res[1].name, "nominal");
  EXPECT_EQ(res[2].name, "fast");
  EXPECT_LT(res[0].scale, res[1].scale);
  EXPECT_LT(res[1].scale, res[2].scale);
}

TEST_F(AnalysisOpAmp, FastCornerBurnsMorePower) {
  // The spread must clear the design grid: at W ~ 10.9 with a 3.3 um step, a
  // +-10% corner snaps back onto the nominal grid point and the corners
  // would be the *same* sizing (corner measurements are deterministic, so
  // identical sizings report identical power bit-for-bit).
  auto res = cornerSweep(amp_, base(), 0.3);
  ASSERT_TRUE(res[0].valid && res[2].valid);
  // Scaling all widths up raises bias currents, hence power.
  EXPECT_GT(res[2].specs[kPower], res[0].specs[kPower]);
}

TEST_F(AnalysisOpAmp, CornerSweepRestoresNominal) {
  auto b = base();
  cornerSweep(amp_, b, 0.1);
  EXPECT_EQ(amp_.currentParams(), b);
}

}  // namespace
}  // namespace crl::circuit
