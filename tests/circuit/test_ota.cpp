#include "circuit/ota.h"

#include <gtest/gtest.h>

#include "circuit/analysis.h"
#include "envs/sizing_env.h"
#include "spice/parser.h"

namespace crl::circuit {
namespace {

class OtaTest : public ::testing::Test {
 protected:
  FiveTransistorOta ota_;
};

TEST_F(OtaTest, ShapesMatchDeclaration) {
  EXPECT_EQ(ota_.designSpace().size(), 10u);
  EXPECT_EQ(ota_.specSpace().size(), 4u);
  EXPECT_EQ(FiveTransistorOta::kNumParams, 10u);
}

TEST_F(OtaTest, MidpointSimulates) {
  auto m = ota_.measureAt(ota_.designSpace().midpoint(), Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  EXPECT_GT(m.specs[0], 1.0);    // gain
  EXPECT_GT(m.specs[1], 1e5);    // ugbw
  EXPECT_GT(m.specs[3], 1e-9);   // power
}

TEST_F(OtaTest, SingleStageHasHealthyPhaseMargin) {
  // No Miller pole splitting needed: a plain capacitive load gives a
  // dominant single pole and PM well above 60 degrees.
  auto m = ota_.measureAt(ota_.designSpace().midpoint(), Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  EXPECT_GT(m.specs[2], 60.0);
}

TEST_F(OtaTest, GainIsMirrorLimited) {
  // Single-stage gain gm1/(gds2+gds4) stays within an order of magnitude of
  // the sampling box — far below the two-stage amplifier's thousands.
  auto m = ota_.measureAt(ota_.designSpace().midpoint(), Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  EXPECT_GT(m.specs[0], 5.0);
  EXPECT_LT(m.specs[0], 300.0);
}

TEST_F(OtaTest, SamplingBoxIsReachable) {
  // The easiest corner of the sampling box must be reachable from at least
  // one sizing: a moderate design (the midpoint burns too much power).
  auto p = ota_.designSpace().midpoint();
  for (std::size_t i = 0; i < 5; ++i) {
    p[2 * i] = 10.0;
    p[2 * i + 1] = 4.0;
  }
  auto m = ota_.measureAt(ota_.designSpace().clamp(p), Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  const std::vector<double> easy{30.0, 2e8, 60.0, 1e-2};
  EXPECT_TRUE(ota_.specSpace().satisfied(m.specs, easy));
}

TEST_F(OtaTest, WiderTailBurnsMorePowerAndLiftsUgbw) {
  auto sens = specSensitivity(ota_, ota_.designSpace().midpoint());
  ASSERT_TRUE(sens.valid);
  // M5 (tail) W index is 2*4 = 8.
  EXPECT_GT(sens.jacobian(3, 8), 0.0);  // power up
  EXPECT_GT(sens.jacobian(1, 8), 0.0);  // ugbw up (more gm per load cap)
}

TEST_F(OtaTest, FullTopologyGraphNodeCount) {
  // 5 FETs + CL + VP + GND + Vbias = 9 nodes.
  EXPECT_EQ(ota_.graph().nodeCount(), 9u);
}

TEST_F(OtaTest, PartialTopologyDropsThreeNodes) {
  OtaConfig cfg;
  cfg.fullTopologyGraph = false;
  FiveTransistorOta partial(cfg);
  EXPECT_EQ(partial.graph().nodeCount(), ota_.graph().nodeCount() - 3);
}

TEST_F(OtaTest, BadParameterCountThrows) {
  EXPECT_THROW(ota_.setParams(std::vector<double>(9, 1.0)), std::invalid_argument);
}

TEST_F(OtaTest, EnvIntegrationRunsAnEpisode) {
  envs::SizingEnv env(ota_, {.maxSteps = 15});
  util::Rng rng(3);
  auto obs = env.reset(rng);
  EXPECT_EQ(obs.nodeFeatures.rows(), ota_.graph().nodeCount());
  EXPECT_EQ(obs.paramsNorm.size(), 10u);
  int steps = 0;
  for (; steps < 15; ++steps) {
    auto res = env.step(std::vector<int>(10, 1));  // push everything up
    if (res.done) break;
  }
  SUCCEED();  // the episode must terminate without throwing
}

TEST_F(OtaTest, NetlistRoundTripsThroughTheParser) {
  auto text = spice::writeDeck(ota_.netlist(), "ota");
  auto deck = spice::parseDeck(text);
  EXPECT_EQ(deck.netlist->devices().size(), ota_.netlist().devices().size());
}

TEST_F(OtaTest, FailedSpecsAreWorstCase) {
  auto worst = FiveTransistorOta::failedSpecs();
  auto m = ota_.measureAt(ota_.designSpace().midpoint(), Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  // Any real measurement beats the failure sentinel on every axis.
  EXPECT_GT(m.specs[0], worst[0]);
  EXPECT_GT(m.specs[1], worst[1]);
  EXPECT_GT(m.specs[2], worst[2]);
  EXPECT_LT(m.specs[3], worst[3]);
}

}  // namespace
}  // namespace crl::circuit
