#include "circuit/rfpa.h"

#include <gtest/gtest.h>

#include <chrono>

#include "util/rng.h"
#include "util/stats.h"

namespace crl::circuit {
namespace {

class RfPaTest : public ::testing::Test {
 protected:
  GanRfPa pa_;
};

TEST_F(RfPaTest, DesignSpaceMatchesTable1) {
  const auto& s = pa_.designSpace();
  ASSERT_EQ(s.size(), 14u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(s.param(2 * i).min, 16.0);
    EXPECT_DOUBLE_EQ(s.param(2 * i).max, 100.0);
    EXPECT_DOUBLE_EQ(s.param(2 * i + 1).min, 1.0);
    EXPECT_DOUBLE_EQ(s.param(2 * i + 1).max, 16.0);
    EXPECT_TRUE(s.param(2 * i + 1).integer);
  }
}

TEST_F(RfPaTest, SpecSpaceMatchesTable1) {
  const auto& s = pa_.specSpace();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.spec(0).sampleMin, 0.50);
  EXPECT_DOUBLE_EQ(s.spec(0).sampleMax, 0.60);
  EXPECT_DOUBLE_EQ(s.spec(1).sampleMin, 2.0);
  EXPECT_DOUBLE_EQ(s.spec(1).sampleMax, 3.0);
}

TEST_F(RfPaTest, FineMeasurementAtMidpoint) {
  auto m = pa_.measure(Fidelity::Fine);
  ASSERT_TRUE(m.valid);
  EXPECT_GT(m.specs[0], 0.01);  // some efficiency
  EXPECT_LT(m.specs[0], 0.99);
  EXPECT_GT(m.specs[1], 0.1);   // some output power
}

TEST_F(RfPaTest, CoarseTracksFineWithinTolerance) {
  // The paper's transfer-learning contract: coarse rewards within ~+-10%
  // of fine. Verify on a handful of random sizings (allowing outliers).
  util::Rng rng(21);
  int checked = 0, close = 0;
  for (int i = 0; i < 12; ++i) {
    auto p = pa_.designSpace().sample(rng);
    auto fine = pa_.measureAt(p, Fidelity::Fine);
    auto coarse = pa_.measureAt(p, Fidelity::Coarse);
    if (!fine.valid || !coarse.valid || fine.specs[1] < 0.3) continue;
    ++checked;
    double ratio = coarse.specs[0] / fine.specs[0];
    if (ratio > 0.75 && ratio < 1.3) ++close;
  }
  ASSERT_GE(checked, 5);
  EXPECT_GE(static_cast<double>(close) / checked, 0.7);
}

TEST_F(RfPaTest, CoarseIsMuchCheaperThanFine) {
  // Wall-clock contract behind the paper's transfer-learning speedup.
  auto p = pa_.designSpace().midpoint();
  pa_.setParams(p);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) pa_.measure(Fidelity::Coarse);
  auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) pa_.measure(Fidelity::Fine);
  auto t2 = std::chrono::steady_clock::now();
  auto coarseUs = std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  auto fineUs = std::chrono::duration_cast<std::chrono::microseconds>(t2 - t1).count();
  EXPECT_LT(coarseUs * 5, fineUs);  // at least 5x cheaper
}

TEST_F(RfPaTest, BiggerPowerDeviceRaisesOutputPower) {
  auto p = pa_.designSpace().midpoint();
  p[12] = 30.0;  // M1.W
  p[13] = 4.0;   // M1.nf
  auto small = pa_.measureAt(p, Fidelity::Fine);
  p[12] = 100.0;
  p[13] = 16.0;
  auto big = pa_.measureAt(p, Fidelity::Fine);
  ASSERT_TRUE(small.valid && big.valid);
  EXPECT_GT(big.specs[1], small.specs[1]);
}

TEST_F(RfPaTest, SimCountersSeparateFidelities) {
  long f = pa_.simCount(Fidelity::Fine);
  long c = pa_.simCount(Fidelity::Coarse);
  pa_.measure(Fidelity::Coarse);
  EXPECT_EQ(pa_.simCount(Fidelity::Fine), f);
  EXPECT_EQ(pa_.simCount(Fidelity::Coarse), c + 1);
}

TEST_F(RfPaTest, GraphHasFullTopologyWithTwoBiasNodes) {
  const auto& g = pa_.graph();
  // 7 FETs + VP + VP1 + GND + Vbias1 + Vbias2 = 12 nodes.
  EXPECT_EQ(g.nodeCount(), 12u);
  int bias = 0, supply = 0;
  for (std::size_t i = 0; i < g.nodeCount(); ++i) {
    bias += g.node(i).type == GraphNodeType::Bias;
    supply += g.node(i).type == GraphNodeType::Supply;
  }
  EXPECT_EQ(bias, 2);
  EXPECT_EQ(supply, 2);
}

TEST_F(RfPaTest, ParallelStageDevicesShareEdges) {
  // D3/D4 share drain+gate+source nets: must be adjacent in the graph.
  const auto& g = pa_.graph();
  EXPECT_TRUE(g.hasEdge(2, 3));   // D3 - D4
  EXPECT_TRUE(g.hasEdge(4, 5));   // D5 - DF
  EXPECT_FALSE(g.hasEdge(5, 6));  // DF - M1 only meet through the coupling cap
}

TEST_F(RfPaTest, InvalidParamCountThrows) {
  EXPECT_THROW(pa_.setParams({1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace crl::circuit
