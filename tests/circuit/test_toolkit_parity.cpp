// Parity contract of the pooled analysis toolkit: sensitivity, Monte-Carlo
// yield and corner sweeps report bit-identical results at any worker count,
// and Benchmark::clone() produces independent, equivalent lanes.
#include "circuit/analysis.h"

#include <gtest/gtest.h>

#include "circuit/bench_pool.h"
#include "circuit/opamp.h"
#include "circuit/ota.h"
#include "circuit/rfpa.h"
#include "util/rng.h"

namespace crl::circuit {
namespace {

std::vector<double> moderateSizing(const TwoStageOpAmp& amp) {
  auto p = amp.designSpace().midpoint();
  for (std::size_t i = 0; i < 7; ++i) {
    p[2 * i] = 10.0;
    p[2 * i + 1] = 4.0;
  }
  p[14] = 4.0;
  return amp.designSpace().clamp(p);
}

TEST(ToolkitParity, SensitivityIsWorkerCountInvariant) {
  TwoStageOpAmp amp;
  const auto sizing = moderateSizing(amp);

  SensitivityOptions serialOpt;
  const auto ref = specSensitivity(amp, sizing, serialOpt);
  ASSERT_TRUE(ref.valid);

  for (std::size_t workers : {2u, 4u}) {
    spice::SimSession session(workers);
    SensitivityOptions opt;
    opt.session = &session;
    TwoStageOpAmp pooledAmp;
    const auto got = specSensitivity(pooledAmp, sizing, opt);
    ASSERT_TRUE(got.valid) << "workers=" << workers;
    EXPECT_EQ(got.baseParams, ref.baseParams);
    EXPECT_EQ(got.baseSpecs, ref.baseSpecs);
    ASSERT_EQ(got.jacobian.raw().size(), ref.jacobian.raw().size());
    EXPECT_EQ(got.jacobian.raw(), ref.jacobian.raw()) << "workers=" << workers;
    EXPECT_EQ(got.elasticity.raw(), ref.elasticity.raw()) << "workers=" << workers;
    // Pooled probes run on clone lanes but are credited back to the
    // prototype: simCount bookkeeping is worker-count invariant too.
    EXPECT_EQ(pooledAmp.simCount(Fidelity::Fine), amp.simCount(Fidelity::Fine))
        << "workers=" << workers;
  }
}

TEST(ToolkitParity, YieldIsWorkerCountInvariant) {
  TwoStageOpAmp amp;
  const auto sizing = moderateSizing(amp);
  const auto base = amp.measureAt(sizing, Fidelity::Fine);
  ASSERT_TRUE(base.valid);

  YieldOptions opt;
  opt.sigmaFrac = 0.04;
  opt.samples = 12;

  util::Rng refRng(99);
  const auto ref = monteCarloYield(amp, sizing, base.specs, refRng, opt);

  for (std::size_t workers : {2u, 4u}) {
    spice::SimSession session(workers);
    YieldOptions popt = opt;
    popt.session = &session;
    TwoStageOpAmp pooledAmp;
    util::Rng rng(99);
    const auto got = monteCarloYield(pooledAmp, sizing, base.specs, rng, popt);
    EXPECT_EQ(got.validCount, ref.validCount) << "workers=" << workers;
    EXPECT_EQ(got.passCount, ref.passCount) << "workers=" << workers;
    EXPECT_EQ(got.yield, ref.yield) << "workers=" << workers;
    ASSERT_EQ(got.specStats.size(), ref.specStats.size());
    for (std::size_t i = 0; i < ref.specStats.size(); ++i) {
      EXPECT_EQ(got.specStats[i].mean(), ref.specStats[i].mean()) << "spec=" << i;
      EXPECT_EQ(got.specStats[i].stddev(), ref.specStats[i].stddev()) << "spec=" << i;
    }
  }
}

TEST(ToolkitParity, CornerSweepIsWorkerCountInvariant) {
  TwoStageOpAmp amp;
  const auto sizing = moderateSizing(amp);
  const auto ref = cornerSweep(amp, sizing, 0.1);

  for (std::size_t workers : {2u, 4u}) {
    spice::SimSession session(workers);
    TwoStageOpAmp pooledAmp;
    const auto got = cornerSweep(pooledAmp, sizing, 0.1, Fidelity::Fine, &session);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(got[k].name, ref[k].name);
      EXPECT_EQ(got[k].valid, ref[k].valid);
      EXPECT_EQ(got[k].specs, ref[k].specs) << "corner=" << ref[k].name;
    }
  }
}

TEST(ToolkitParity, ToolkitRestoresBaseSizingInPooledMode) {
  TwoStageOpAmp amp;
  const auto sizing = moderateSizing(amp);
  spice::SimSession session(2);
  SensitivityOptions opt;
  opt.session = &session;
  specSensitivity(amp, sizing, opt);
  EXPECT_EQ(amp.currentParams(), sizing);
}

// ----------------------------------------------------------------- clone()

TEST(ToolkitParity, CloneMeasuresIdenticallyFromColdState) {
  TwoStageOpAmp amp;
  const auto sizing = moderateSizing(amp);
  amp.setParams(sizing);

  auto copy = amp.clone();
  EXPECT_EQ(copy->currentParams(), amp.currentParams());
  EXPECT_EQ(copy->simCount(Fidelity::Fine), 0);

  amp.resetSolverState();
  const auto a = amp.measure(Fidelity::Fine);
  const auto b = copy->measure(Fidelity::Fine);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.specs, b.specs);
}

TEST(ToolkitParity, CloneIsIndependentOfTheOriginal) {
  TwoStageOpAmp amp;
  const auto before = amp.currentParams();
  auto copy = amp.clone();
  auto shifted = before;
  shifted[0] = amp.designSpace().param(0).max;
  copy->setParams(shifted);
  EXPECT_NE(copy->currentParams(), amp.currentParams());
  EXPECT_EQ(amp.currentParams(), before);
}

TEST(ToolkitParity, RfPaAndOtaClone) {
  GanRfPa pa;
  auto paCopy = pa.clone();
  EXPECT_EQ(paCopy->currentParams(), pa.currentParams());
  const auto a = paCopy->measure(Fidelity::Coarse);
  GanRfPa fresh;
  const auto b = fresh.measure(Fidelity::Coarse);
  EXPECT_EQ(a.specs, b.specs);

  FiveTransistorOta ota;
  auto otaCopy = ota.clone();
  EXPECT_EQ(otaCopy->currentParams(), ota.currentParams());
}

TEST(ToolkitParity, BenchmarkPoolMeasureAllMatchesSerialLoop) {
  TwoStageOpAmp amp;
  util::Rng rng(5);
  std::vector<std::vector<double>> items;
  for (int k = 0; k < 6; ++k) items.push_back(amp.designSpace().sample(rng));

  // Serial reference: cold measure per item on a scratch clone.
  auto scratch = amp.clone();
  std::vector<Measurement> ref;
  for (const auto& p : items) {
    scratch->setParams(p);
    scratch->resetSolverState();
    ref.push_back(scratch->measure(Fidelity::Fine));
  }

  for (std::size_t workers : {1u, 3u}) {
    spice::SimSession session(workers);
    BenchmarkPool pool(amp, session);
    EXPECT_EQ(pool.laneCount(), session.workerCount());
    const auto got = pool.measureAll(items, Fidelity::Fine);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].valid, ref[i].valid) << "workers=" << workers << " i=" << i;
      EXPECT_EQ(got[i].specs, ref[i].specs) << "workers=" << workers << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace crl::circuit
