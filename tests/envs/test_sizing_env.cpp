#include "envs/sizing_env.h"

#include <gtest/gtest.h>

#include "circuit/opamp.h"
#include "circuit/rfpa.h"

namespace crl::envs {
namespace {

class SizingEnvTest : public ::testing::Test {
 protected:
  circuit::TwoStageOpAmp amp_;
  SizingEnv env_{amp_, {.maxSteps = 50}};
  util::Rng rng_{3};
};

TEST_F(SizingEnvTest, ShapesMatchBenchmark) {
  EXPECT_EQ(env_.numParams(), 15u);
  EXPECT_EQ(env_.numSpecs(), 4u);
  EXPECT_EQ(env_.maxSteps(), 50);
  EXPECT_EQ(env_.graphNodeCount(), amp_.graph().nodeCount());
  EXPECT_EQ(env_.graphFeatureDim(), 6u);
}

TEST_F(SizingEnvTest, ResetProducesConsistentObservation) {
  auto obs = env_.reset(rng_);
  EXPECT_EQ(obs.nodeFeatures.rows(), env_.graphNodeCount());
  EXPECT_EQ(obs.nodeFeatures.cols(), env_.graphFeatureDim());
  EXPECT_EQ(obs.specNow.size(), 4u);
  EXPECT_EQ(obs.specTarget.size(), 4u);
  EXPECT_EQ(obs.paramsNorm.size(), 15u);
  for (double v : obs.paramsNorm) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Target must be within the Table 1 sampling box.
  const auto& t = env_.rawTarget();
  EXPECT_GE(t[0], 300.0);
  EXPECT_LE(t[0], 500.0);
}

TEST_F(SizingEnvTest, StepMovesParametersOnGrid) {
  env_.reset(rng_);
  auto before = env_.currentParams();
  std::vector<int> actions(15, 0);
  actions[0] = 1;
  env_.step(actions);
  auto after = env_.currentParams();
  // Either moved one step or clamped at the upper bound.
  if (before[0] < 100.0 - 1e-9) {
    EXPECT_NEAR(after[0] - before[0], amp_.designSpace().param(0).step, 1e-9);
  } else {
    EXPECT_NEAR(after[0], before[0], 1e-9);
  }
  for (std::size_t i = 1; i < 15; ++i) EXPECT_NEAR(after[i], before[i], 1e-9);
}

TEST_F(SizingEnvTest, RewardIsNonPositiveUntilSuccess) {
  env_.reset(rng_);
  std::vector<int> keep(15, 0);
  auto res = env_.step(keep);
  if (!res.success) {
    EXPECT_LE(res.reward, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(res.reward, 10.0);
  }
}

TEST_F(SizingEnvTest, SuccessGivesBonusAndTerminates) {
  // Force success with an absurdly easy target.
  std::vector<double> easy{1.0, 1.0, -500.0, 10.0};  // any gain/bw/pm, power<10
  env_.resetWithTarget(easy, rng_);
  auto res = env_.step(std::vector<int>(15, 0));
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(res.done);
  EXPECT_DOUBLE_EQ(res.reward, 10.0);
}

TEST_F(SizingEnvTest, EpisodeTerminatesAtMaxSteps) {
  // Impossible target: must run exactly maxSteps then report done.
  std::vector<double> impossible{1e9, 1e12, 179.0, 1e-9};
  env_.resetWithTarget(impossible, rng_);
  rl::StepResult res;
  int steps = 0;
  do {
    res = env_.step(std::vector<int>(15, 0));
    ++steps;
  } while (!res.done && steps < 1000);
  EXPECT_EQ(steps, 50);
  EXPECT_FALSE(res.success);
}

TEST_F(SizingEnvTest, GraphFeaturesTrackEnvParams) {
  env_.reset(rng_);
  std::vector<int> up(15, 1);
  auto res = env_.step(up);
  auto u = amp_.designSpace().normalize(env_.currentParams());
  // Node 0 = M1: feature slots must equal the normalized (W, nf).
  EXPECT_NEAR(res.obs.nodeFeatures(0, circuit::kTypeBits + 0), u[0], 1e-9);
  EXPECT_NEAR(res.obs.nodeFeatures(0, circuit::kTypeBits + 1), u[1], 1e-9);
}

TEST_F(SizingEnvTest, TargetDimValidation) {
  EXPECT_THROW(env_.resetWithTarget({1.0}, rng_), std::invalid_argument);
}

TEST(SizingEnvRfPa, CoarseFidelityUsesCoarseCounter) {
  circuit::GanRfPa pa;
  SizingEnv env(pa, {.maxSteps = 30, .fidelity = circuit::Fidelity::Coarse});
  util::Rng rng(1);
  long coarseBefore = pa.simCount(circuit::Fidelity::Coarse);
  long fineBefore = pa.simCount(circuit::Fidelity::Fine);
  env.reset(rng);
  env.step(std::vector<int>(14, 0));
  EXPECT_GT(pa.simCount(circuit::Fidelity::Coarse), coarseBefore);
  EXPECT_EQ(pa.simCount(circuit::Fidelity::Fine), fineBefore);
}

}  // namespace
}  // namespace crl::envs
