#include "envs/fom_env.h"

#include <gtest/gtest.h>

#include "circuit/rfpa.h"

namespace crl::envs {
namespace {

TEST(FomOf, MatchesDefinition) {
  // Normalized form with explicit references.
  EXPECT_DOUBLE_EQ(fomOf({0.5, 2.0}, 2.0, 0.5), 0.0);  // at the references
  EXPECT_GT(fomOf({0.6, 3.0}, 2.0, 0.5), 0.0);
  EXPECT_LT(fomOf({0.4, 1.0}, 2.0, 0.5), 0.0);
  EXPECT_THROW(fomOf({0.5}), std::invalid_argument);
}

class FomEnvTest : public ::testing::Test {
 protected:
  circuit::GanRfPa pa_;
  FomEnv env_{pa_, {.maxSteps = 10, .fidelity = circuit::Fidelity::Coarse}};
  util::Rng rng_{5};
};

TEST_F(FomEnvTest, EpisodeRunsFixedLength) {
  env_.reset(rng_);
  int steps = 0;
  rl::StepResult res;
  do {
    res = env_.step(std::vector<int>(14, 0));
    ++steps;
  } while (!res.done);
  EXPECT_EQ(steps, 10);
  EXPECT_FALSE(res.success);  // FoM episodes have no success flag
}

TEST_F(FomEnvTest, RewardCenteredAtReferences) {
  // If the measured specs equal the references, the reward is exactly 0.
  FomEnvConfig cfg;
  const double p = 2.2, e = 0.43;
  double r = (p - cfg.pRef) / (p + cfg.pRef) + 3.0 * (e - cfg.eRef) / (e + cfg.eRef);
  EXPECT_LT(r, 0.0);  // below both references -> negative
  double r0 = (cfg.pRef - cfg.pRef) / (2 * cfg.pRef) +
              3.0 * (cfg.eRef - cfg.eRef) / (2 * cfg.eRef);
  EXPECT_DOUBLE_EQ(r0, 0.0);
}

TEST_F(FomEnvTest, TracksBestFom) {
  env_.reset(rng_);
  double best = -1e18;
  for (int t = 0; t < 10; ++t) {
    auto res = env_.step(std::vector<int>(14, t % 2 == 0 ? 1 : 0));
    best = std::max(best, fomOf(env_.rawSpecs()));
    if (res.done) break;
  }
  EXPECT_NEAR(env_.bestFom(), best, 1e-9);
  EXPECT_EQ(env_.bestParams().size(), 14u);
}

TEST_F(FomEnvTest, ResetClearsBest) {
  env_.reset(rng_);
  env_.step(std::vector<int>(14, 1));
  double bestBefore = env_.bestFom();
  EXPECT_GT(bestBefore, -1e18);
  env_.reset(rng_);
  // Best is re-seeded from the fresh initial measurement only.
  EXPECT_GT(env_.bestFom(), -1e18);
}

}  // namespace
}  // namespace crl::envs
