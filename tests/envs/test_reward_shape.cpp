// Tests of the reward-shaping variants: the paper's Eq. (1) (per-spec
// clipping + success bonus) versus the raw signed ablation, plus the
// partial-topology graph switch used by bench/ablation_topology.
#include <gtest/gtest.h>

#include "circuit/opamp.h"
#include "envs/sizing_env.h"

namespace crl::envs {
namespace {

class RewardShapeTest : public ::testing::Test {
 protected:
  circuit::TwoStageOpAmp amp_;
};

TEST_F(RewardShapeTest, Eq1RewardIsClippedAtZero) {
  SizingEnv env(amp_, {.maxSteps = 5});
  util::Rng rng(1);
  env.reset(rng);
  std::vector<int> hold(15, 0);
  auto res = env.step(hold);
  if (!res.success) {
    EXPECT_LE(res.reward, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(res.reward, 10.0);
  }
}

TEST_F(RewardShapeTest, RawRewardCanBePositive) {
  // Deploy against a trivially easy target: every spec overshoots, so the
  // raw signed reward is positive while Eq. (1) would pay exactly the bonus.
  SizingEnvConfig cfg{.maxSteps = 5};
  cfg.rewardShape = RewardShape::Raw;
  SizingEnv env(amp_, cfg);
  util::Rng rng(2);
  // An easy target: minimal gain/ugbw/pm, generous power budget.
  env.resetWithTarget({5.0, 1e5, 5.0, 0.5}, rng);
  std::vector<int> hold(15, 0);
  auto res = env.step(hold);
  ASSERT_TRUE(res.success);  // such a target is met by any valid sizing
  EXPECT_GT(res.reward, 0.0);
  EXPECT_NE(res.reward, 10.0);
}

TEST_F(RewardShapeTest, BothShapesAgreeOnSuccessDetection) {
  for (auto shape : {RewardShape::Eq1, RewardShape::Raw}) {
    SizingEnvConfig cfg{.maxSteps = 3};
    cfg.rewardShape = shape;
    cfg.randomInitialParams = false;
    SizingEnv env(amp_, cfg);
    util::Rng rng(3);
    env.resetWithTarget({5.0, 1e5, 5.0, 0.5}, rng);
    auto res = env.step(std::vector<int>(15, 0));
    EXPECT_TRUE(res.success) << "shape " << static_cast<int>(shape);
    EXPECT_TRUE(res.done);
  }
}

TEST_F(RewardShapeTest, RawRewardMatchesSignedSum) {
  SizingEnvConfig cfg{.maxSteps = 5};
  cfg.rewardShape = RewardShape::Raw;
  cfg.randomInitialParams = false;
  SizingEnv env(amp_, cfg);
  util::Rng rng(4);
  env.resetWithTarget({480.0, 2.4e7, 60.0, 2e-4}, rng);  // hard target
  auto res = env.step(std::vector<int>(15, 0));
  const double expected = amp_.specSpace().signedReward(env.rawSpecs(), env.rawTarget());
  EXPECT_DOUBLE_EQ(res.reward, expected);
}

// --------------------------------------------------------------- topology

TEST(PartialTopologyTest, DropsSupplyGroundBiasNodes) {
  circuit::OpAmpConfig full;
  circuit::OpAmpConfig partial;
  partial.fullTopologyGraph = false;
  circuit::TwoStageOpAmp ampFull(full);
  circuit::TwoStageOpAmp ampPartial(partial);
  EXPECT_EQ(ampFull.graph().nodeCount(), ampPartial.graph().nodeCount() + 3);
  for (std::size_t i = 0; i < ampPartial.graph().nodeCount(); ++i) {
    auto t = ampPartial.graph().node(i).type;
    EXPECT_NE(t, circuit::GraphNodeType::Supply);
    EXPECT_NE(t, circuit::GraphNodeType::Ground);
    EXPECT_NE(t, circuit::GraphNodeType::Bias);
  }
}

TEST(PartialTopologyTest, MeasurementIsUnaffectedByGraphChoice) {
  // The graph is a *state representation*; the circuit physics must not
  // change when the ablation drops net nodes.
  circuit::OpAmpConfig partialCfg;
  partialCfg.fullTopologyGraph = false;
  circuit::TwoStageOpAmp full;
  circuit::TwoStageOpAmp partial(partialCfg);
  auto p = full.designSpace().midpoint();
  auto mf = full.measureAt(p, circuit::Fidelity::Fine);
  auto mp = partial.measureAt(p, circuit::Fidelity::Fine);
  ASSERT_TRUE(mf.valid && mp.valid);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(mf.specs[i], mp.specs[i]);
}

TEST(PartialTopologyTest, EnvExposesTheSmallerGraph) {
  circuit::OpAmpConfig cfg;
  cfg.fullTopologyGraph = false;
  circuit::TwoStageOpAmp amp(cfg);
  SizingEnv env(amp, {.maxSteps = 10});
  EXPECT_EQ(env.graphNodeCount(), amp.graph().nodeCount());
  util::Rng rng(5);
  auto obs = env.reset(rng);
  EXPECT_EQ(obs.nodeFeatures.rows(), amp.graph().nodeCount());
}

}  // namespace
}  // namespace crl::envs
